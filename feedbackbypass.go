// Package feedbackbypass is a Go implementation of FeedbackBypass
// (Bartolini, Ciaccia, Waas: "FeedbackBypass: A New Approach to
// Interactive Similarity Query Processing", VLDB 2001).
//
// FeedbackBypass sits next to an interactive similarity-retrieval system
// that refines queries through relevance feedback. It learns the optimal
// query mapping Mopt: q ↦ (Δopt, Wopt) — from an initial query point to
// the optimal query-point offset and distance-function parameters past
// feedback loops converged to — and stores it in a Simplex Tree, a
// wavelet-based incremental triangulation of the query domain. For a new
// query it predicts near-optimal parameters immediately; for an
// already-seen query it returns the stored optimum, bypassing the feedback
// loop entirely.
//
// # Quick start
//
//	bypass, codec, err := feedbackbypass.NewForHistograms(32, feedbackbypass.Config{Epsilon: 0.05})
//	// before searching:
//	qp, _ := codec.QueryPoint(queryHistogram)
//	oqp, _ := bypass.Predict(qp)
//	qOpt, weights, _ := codec.DecodeOQP(queryHistogram, oqp)
//	// ... search with qOpt and weights; run the feedback loop if needed ...
//	// after the loop converges to (qBest, wBest):
//	learned, _ := codec.EncodeOQP(queryHistogram, qBest, wBest)
//	bypass.Insert(qp, learned)
//
// Trees persist across sessions with Save/Load — remembering feedback
// outcomes between sessions is the point of the technique.
//
// The packages under internal implement every substrate of the paper's
// evaluation: distance functions, relevance-feedback engines, HSV
// histogram extraction, a synthetic categorized image collection, k-NN
// query processing (sequential scan, VP-tree, M-tree), and the experiment
// harness reproducing Figures 1 and 9–16 (see DESIGN.md and
// EXPERIMENTS.md).
package feedbackbypass

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/persist"
	"repro/internal/reduce"
	"repro/internal/shardedbypass"
	"repro/internal/simplextree"
)

// ErrOutOfDomain is returned (wrapped, errors.Is-able) by Predict and
// Insert for query points outside the module's domain simplex.
var ErrOutOfDomain = core.ErrOutOfDomain

// OQP is the pair of optimal query parameters of §3 of the paper: the
// offset Δopt from the initial to the optimal query point, and the
// distance-function parameters Wopt.
type OQP = core.OQP

// Config tunes a Bypass module (insert threshold ε, geometric tolerance,
// custom query domain, default weight parameters).
type Config = core.Config

// Bypass is the FeedbackBypass module: Predict (the paper's Mopt method)
// and Insert over a Simplex Tree. Predictions are pure reads and run in
// parallel; PredictBatch/InsertBatch amortize one lock acquisition over a
// whole batch.
type Bypass = core.Bypass

// DurableBypass is a Bypass whose accepted inserts are journaled to a
// write-ahead log before the tree mutates; recovery is snapshot + replay
// (see OpenDurable).
type DurableBypass = core.DurableBypass

// DurableOptions tunes DurableBypass compaction and fsync behaviour.
type DurableOptions = core.DurableOptions

// PredictStats reports per-prediction lookup measurements (simplices
// traversed — the Figure 16 series).
type PredictStats = simplextree.PredictStats

// HistogramCodec maps between full normalized histograms (with one weight
// per bin) and the module's reduced query domain: the last bin is dropped
// and the last weight pinned to 1, exactly Example 1 of the paper. Weights
// travel in a log-ratio parameterization (see the core package docs).
type HistogramCodec = core.HistogramCodec

// TreeStats summarizes the Simplex Tree's shape (points, leaves, depth,
// average leaf depth).
type TreeStats = simplextree.Stats

// QuadraticCodec serves the quadratic (Mahalanobis) distance class of §2:
// OQPs carry a symmetric weight matrix flattened to D·(D+1)/2 parameters;
// interpolated matrices are projected back onto the PSD cone at decode
// time.
type QuadraticCodec = core.QuadraticCodec

// ReducedBypass is a module whose query domain has been PCA-reduced (the
// paper's §3 future-work direction); see Reducer.
type ReducedBypass = core.ReducedBypass

// Reducer fits PCA on sample query points and maps queries into [0,1]^k.
type Reducer = reduce.Reducer

// NewQuadraticCodec returns a codec for the quadratic distance class over
// features in [0,1]^dim (pair it with Config.Domain = CoveringSimplex(dim)
// and Config.DefaultWeights = codec.DefaultWeights()).
func NewQuadraticCodec(dim int) (QuadraticCodec, error) { return core.NewQuadraticCodec(dim) }

// FitReducer fits a k-dimensional PCA reducer on sample query points.
func FitReducer(samples [][]float64, k int) (*Reducer, error) { return reduce.Fit(samples, k) }

// NewReduced builds a module over a PCA-reduced query domain: queries are
// projected to the reducer's k dimensions while OQPs keep their full
// dimensionality (D-dimensional offsets, P weight parameters).
func NewReduced(r *Reducer, d, p int, cfg Config) (*ReducedBypass, error) {
	return core.NewReduced(r, d, p, cfg)
}

// Domain constructors for Config.Domain.
var (
	// StandardSimplex returns the simplex spanned by 0, e1, …, ed — the
	// query domain of normalized-histogram features with the last bin
	// dropped (§4.1).
	StandardSimplex = geom.StandardSimplex
	// CoveringSimplex returns the corner simplex 0, d·e1, …, d·ed, which
	// covers the unit hypercube [0,1]^d (§4.1).
	CoveringSimplex = geom.CoveringSimplex
)

// New creates a FeedbackBypass module for a D-dimensional query domain
// with P distance-function parameters.
func New(d, p int, cfg Config) (*Bypass, error) { return core.New(d, p, cfg) }

// ShardedBypass partitions the learned mapping across S independent
// Simplex Trees (each with its own lock and, in durable mode, its own
// WAL and snapshot), so insert throughput scales with partitions and an
// insert invalidates only its shard. S = 1 behaves bitwise-identically
// to a single tree. See internal/shardedbypass for the layout and
// recovery contract.
type ShardedBypass = shardedbypass.Sharded

// ShardedOptions tunes a ShardedBypass (shard count, per-shard WAL
// behaviour).
type ShardedOptions = shardedbypass.Options

// ErrShardReplaying is returned (wrapped, errors.Is-able) by sharded
// operations routed to a shard whose startup recovery has not finished;
// it is retryable.
var ErrShardReplaying = shardedbypass.ErrReplaying

// NewSharded creates an in-memory S-way partitioned module.
func NewSharded(d, p int, cfg Config, opts ShardedOptions) (*ShardedBypass, error) {
	return shardedbypass.New(d, p, cfg, opts)
}

// OpenSharded opens (or initializes) a durable sharded module rooted at
// dir, recovering every shard in parallel. The shard count is pinned by
// the directory's manifest: reopening with a different count fails.
func OpenSharded(dir string, d, p int, cfg Config, opts ShardedOptions) (*ShardedBypass, error) {
	return shardedbypass.Open(dir, d, p, cfg, opts)
}

// OpenDurable opens (or initializes) a crash-safe module rooted at dir:
// accepted inserts are journaled to a write-ahead log, recovery replays
// the journal on top of the latest snapshot, and compaction keeps the
// journal short. See core.DurableBypass for the consistency contract.
func OpenDurable(dir string, d, p int, cfg Config, opts DurableOptions) (*DurableBypass, error) {
	return core.OpenDurable(dir, d, p, cfg, opts)
}

// NewHistogramCodec returns the codec for normalized histograms with the
// given number of bins.
func NewHistogramCodec(bins int) (HistogramCodec, error) { return core.NewHistogramCodec(bins) }

// NewForHistograms wires a Bypass and its codec for normalized-histogram
// features in one call: D = P = bins−1, standard-simplex domain, log-ratio
// default weights. Only Epsilon and Tol of cfg are consulted.
func NewForHistograms(bins int, cfg Config) (*Bypass, HistogramCodec, error) {
	codec, err := core.NewHistogramCodec(bins)
	if err != nil {
		return nil, HistogramCodec{}, err
	}
	b, err := core.New(codec.D(), codec.P(), Config{
		Epsilon:        cfg.Epsilon,
		Tol:            cfg.Tol,
		DefaultWeights: codec.DefaultWeights(),
	})
	if err != nil {
		return nil, HistogramCodec{}, err
	}
	return b, codec, nil
}

// Save writes the module's Simplex Tree to w in the versioned, checksummed
// binary format of package persist.
func Save(w io.Writer, b *Bypass) error {
	if b == nil {
		return fmt.Errorf("feedbackbypass: nil module")
	}
	return persist.Save(w, b.Tree())
}

// SaveFile writes the module's Simplex Tree to the named file.
func SaveFile(path string, b *Bypass) error {
	if b == nil {
		return fmt.Errorf("feedbackbypass: nil module")
	}
	return persist.SaveFile(path, b.Tree())
}

// Load reads a Simplex Tree from r and wraps it as a Bypass with p
// distance-function parameters (the stored vectors must have length D+p).
func Load(r io.Reader, p int) (*Bypass, error) {
	tree, err := persist.Load(r)
	if err != nil {
		return nil, err
	}
	return core.FromTree(tree, p)
}

// LoadFile reads a Simplex Tree from the named file.
func LoadFile(path string, p int) (*Bypass, error) {
	tree, err := persist.LoadFile(path)
	if err != nil {
		return nil, err
	}
	return core.FromTree(tree, p)
}
