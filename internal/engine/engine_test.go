package engine

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/feedback"
	"repro/internal/knn"
	"repro/internal/vec"
)

// clusteredDataset builds a small synthetic collection with two categories
// separable only on dimension 0, whose gap (0.45 vs 0.55) is small against
// the uniform noise on dimension 1 — so the default Euclidean ranking mixes
// the categories and re-weighting genuinely helps.
func clusteredDataset(t *testing.T, n int, seed int64) *dataset.Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var items []dataset.Item
	for i := 0; i < n; i++ {
		cat := "A"
		base := 0.45
		if i%2 == 1 {
			cat = "B"
			base = 0.55
		}
		items = append(items, dataset.Item{
			ID:       i,
			Category: cat,
			Feature:  []float64{base + rng.NormFloat64()*0.02, rng.Float64()},
		})
	}
	ds, err := dataset.FromItems(items, []string{"A", "B"})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, Options{}); err == nil {
		t.Error("nil dataset should error")
	}
	ds := clusteredDataset(t, 10, 1)
	if _, err := New(ds, Options{MaxIterations: -2}); err == nil {
		t.Error("negative max iterations (other than NoFeedbackLoop) should error")
	}
	e, err := New(ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if e.Dataset() != ds {
		t.Error("Dataset accessor")
	}
	if !vec.Equal(e.UniformWeights(), []float64{1, 1}) {
		t.Error("UniformWeights")
	}
}

func TestRetrieveAndScore(t *testing.T) {
	ds := clusteredDataset(t, 40, 2)
	e, err := New(ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	q := ds.Items[0].Feature // category A
	rs, err := e.Retrieve(q, e.UniformWeights(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 5 {
		t.Fatalf("got %d results", len(rs))
	}
	if rs[0].Index != 0 || rs[0].Distance != 0 {
		t.Errorf("self should be first: %+v", rs[0])
	}
	scores := e.Score("A", rs)
	if scores[0] != feedback.ScoreGood {
		t.Error("self should be good")
	}
	good := e.GoodCount("A", rs)
	count := 0
	for _, s := range scores {
		if s > 0 {
			count++
		}
	}
	if good != count {
		t.Errorf("GoodCount %d vs scores %d", good, count)
	}
	if _, err := e.Retrieve(q, []float64{-1, 1}, 5); err == nil {
		t.Error("invalid weights should error")
	}
}

func TestRunLoopImprovesPrecision(t *testing.T) {
	ds := clusteredDataset(t, 200, 3)
	e, err := New(ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	k := 20
	improvedSome := false
	for qi := 0; qi < 10; qi++ {
		item := ds.Items[qi]
		out, err := e.RunLoop(item.Category, item.Feature, e.UniformWeights(), k)
		if err != nil {
			t.Fatal(err)
		}
		if !out.Converged {
			t.Errorf("query %d did not converge", qi)
		}
		if out.Retrievals != out.Iterations+1 {
			t.Errorf("retrievals %d vs iterations %d", out.Retrievals, out.Iterations)
		}
		first := e.GoodCount(item.Category, out.FirstResults)
		final := e.GoodCount(item.Category, out.FinalResults)
		if final < first {
			t.Errorf("query %d: feedback degraded precision %d -> %d", qi, first, final)
		}
		if final > first {
			improvedSome = true
		}
		if len(out.QOpt) != 2 || len(out.WOpt) != 2 {
			t.Errorf("query %d: OQP dims", qi)
		}
	}
	if !improvedSome {
		t.Error("feedback never improved any query on a noisy dataset")
	}
}

func TestRunLoopOptimalWeightsFavorSignalDimension(t *testing.T) {
	ds := clusteredDataset(t, 300, 4)
	e, err := New(ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	item := ds.Items[0]
	out, err := e.RunLoop(item.Category, item.Feature, e.UniformWeights(), 30)
	if err != nil {
		t.Fatal(err)
	}
	// Dimension 0 separates the categories (low variance among good
	// matches); dimension 1 is noise. The learned weights must reflect it.
	if out.WOpt[0] <= out.WOpt[1] {
		t.Errorf("weights = %v: signal dimension not favored", out.WOpt)
	}
}

func TestRunLoopStartingFromOptimalConvergesImmediately(t *testing.T) {
	ds := clusteredDataset(t, 200, 5)
	e, err := New(ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	item := ds.Items[2]
	k := 15
	out1, err := e.RunLoop(item.Category, item.Feature, e.UniformWeights(), k)
	if err != nil {
		t.Fatal(err)
	}
	// Restart from the converged parameters: no further iterations needed.
	out2, err := e.RunLoop(item.Category, out1.QOpt, out1.WOpt, k)
	if err != nil {
		t.Fatal(err)
	}
	if out2.Iterations != 0 {
		t.Errorf("restart took %d iterations, want 0", out2.Iterations)
	}
	if out2.Iterations > out1.Iterations {
		t.Error("restart should not need more cycles than the original loop")
	}
}

func TestRunLoopNoGoodMatches(t *testing.T) {
	ds := clusteredDataset(t, 50, 6)
	e, err := New(ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Query for a category that exists nowhere near: oracle never fires.
	out, err := e.RunLoop("Nonexistent", ds.Items[0].Feature, e.UniformWeights(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if out.Iterations != 0 || !out.Converged {
		t.Errorf("loop without good matches: %+v", out)
	}
	if !vec.Equal(out.QOpt, ds.Items[0].Feature) {
		t.Error("parameters should be unchanged")
	}
}

func TestRunLoopKValidation(t *testing.T) {
	ds := clusteredDataset(t, 20, 7)
	e, _ := New(ds, Options{})
	if _, err := e.RunLoop("A", ds.Items[0].Feature, e.UniformWeights(), 0); err == nil {
		t.Error("k=0 should error")
	}
}

func TestRunLoopIterationBound(t *testing.T) {
	ds := clusteredDataset(t, 100, 8)
	e, err := New(ds, Options{MaxIterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	item := ds.Items[0]
	out, err := e.RunLoop(item.Category, item.Feature, e.UniformWeights(), 20)
	if err != nil {
		t.Fatal(err)
	}
	if out.Iterations > 1 {
		t.Errorf("iterations %d exceeded bound", out.Iterations)
	}
}

func TestRunLoopWithRocchioAndMARS(t *testing.T) {
	ds := clusteredDataset(t, 150, 9)
	e, err := New(ds, Options{Feedback: feedback.Options{
		Movement:  feedback.MoveRocchio,
		Weighting: feedback.WeightMARS,
	}})
	if err != nil {
		t.Fatal(err)
	}
	item := ds.Items[1]
	out, err := e.RunLoop(item.Category, item.Feature, e.UniformWeights(), 15)
	if err != nil {
		t.Fatal(err)
	}
	first := e.GoodCount(item.Category, out.FirstResults)
	final := e.GoodCount(item.Category, out.FinalResults)
	if final < first {
		t.Errorf("Rocchio+MARS degraded precision %d -> %d", first, final)
	}
}

func TestSignatureDistinguishesLists(t *testing.T) {
	a := []knn.Result{{Index: 1}, {Index: 2}, {Index: 3}}
	b := []knn.Result{{Index: 1}, {Index: 2}, {Index: 4}}
	c := []knn.Result{{Index: 3}, {Index: 2}, {Index: 1}}
	if signature(a) == signature(b) {
		t.Error("different index sets should hash differently")
	}
	if signature(a) == signature(c) {
		t.Error("order must matter: reversed list should hash differently")
	}
	if signature(a) != signature([]knn.Result{{Index: 1}, {Index: 2}, {Index: 3}}) {
		t.Error("equal lists must hash equally")
	}
	if signature(nil) != signature([]knn.Result{}) {
		t.Error("empty list hash must be stable")
	}
}

func TestRetrieveBatchMatchesRetrieve(t *testing.T) {
	ds := clusteredDataset(t, 200, 11)
	e, err := New(ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	uniform := e.UniformWeights()
	shifted := make([]float64, ds.Dim)
	for i := range shifted {
		shifted[i] = 0.5 + float64(i%3)
	}
	qs := []WeightedQuery{
		{Q: ds.Items[0].Feature, W: uniform},
		{Q: ds.Items[1].Feature, W: uniform}, // same weights: grouped into one batch
		{Q: ds.Items[2].Feature, W: shifted}, // new weights: new group
	}
	batch, err := e.RetrieveBatch(qs, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i, wq := range qs {
		want, err := e.Retrieve(wq.Q, wq.W, 9)
		if err != nil {
			t.Fatal(err)
		}
		if len(batch[i]) != len(want) {
			t.Fatalf("query %d: %d results, want %d", i, len(batch[i]), len(want))
		}
		for j := range want {
			if batch[i][j] != want[j] {
				t.Fatalf("query %d result %d: %+v != %+v", i, j, batch[i][j], want[j])
			}
		}
	}
}

func TestRetrieveBatchWithIndex(t *testing.T) {
	ds := clusteredDataset(t, 150, 13)
	e, err := New(ds, Options{UseIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	uniform := e.UniformWeights()
	qs := []WeightedQuery{
		{Q: ds.Items[0].Feature, W: uniform},
		{Q: ds.Items[5].Feature, W: uniform},
	}
	batch, err := e.RetrieveBatch(qs, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i, wq := range qs {
		want, err := e.Retrieve(wq.Q, wq.W, 7)
		if err != nil {
			t.Fatal(err)
		}
		if !knn.SameIndexSet(batch[i], want) {
			t.Fatalf("query %d: index batch diverges from Retrieve", i)
		}
	}
}

// BenchmarkFeedbackSignature measures the allocation-free FNV-1a cycle
// key that replaced the fmt.Fprintf string builder in RunLoop.
func BenchmarkFeedbackSignature(b *testing.B) {
	results := make([]knn.Result, 50)
	for i := range results {
		results[i] = knn.Result{Index: i * 37}
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= signature(results)
	}
	_ = sink
}

// TestZeroFeedbackOptionsSurvive pins the regression where engine.New
// compared opts.Feedback against feedback.Options{} and silently replaced
// a deliberate all-none configuration with the paper defaults. With the
// MoveDefault/WeightDefault zero values, Options{} still means "paper
// defaults" but an explicit MoveNone/WeightNone survives construction.
func TestZeroFeedbackOptionsSurvive(t *testing.T) {
	ds := clusteredDataset(t, 40, 2)

	def, err := New(ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := def.FeedbackName(); got != "move=optimal,weight=optimal-1/sigma2" {
		t.Errorf("zero Options resolved to %q, want the paper defaults", got)
	}

	none, err := New(ds, Options{Feedback: feedback.Options{
		Movement:  feedback.MoveNone,
		Weighting: feedback.WeightNone,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if got := none.FeedbackName(); got != "move=none,weight=none" {
		t.Errorf("explicit none/none became %q", got)
	}
	// Behavioural check: a none/none loop can never move the parameters.
	item := ds.Items[0]
	out, err := none.RunLoop(item.Category, item.Feature, none.UniformWeights(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if !vec.Equal(out.QOpt, item.Feature) || !vec.Equal(out.WOpt, none.UniformWeights()) {
		t.Error("none/none feedback changed the query parameters")
	}
	if !out.Converged || out.Iterations != 0 {
		t.Errorf("none/none loop: converged=%v iterations=%d, want immediate convergence", out.Converged, out.Iterations)
	}
}

// TestNoFeedbackLoop pins the MaxIterations sentinel: NoFeedbackLoop runs
// zero feedback cycles (the zero value still selects the default bound).
func TestNoFeedbackLoop(t *testing.T) {
	ds := clusteredDataset(t, 40, 2)
	e, err := New(ds, Options{MaxIterations: NoFeedbackLoop})
	if err != nil {
		t.Fatal(err)
	}
	if e.MaxIterations() != 0 {
		t.Fatalf("MaxIterations() = %d, want 0", e.MaxIterations())
	}
	item := ds.Items[0]
	out, err := e.RunLoop(item.Category, item.Feature, e.UniformWeights(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if out.Iterations != 0 || out.Retrievals != 1 {
		t.Errorf("NoFeedbackLoop ran %d iterations, %d retrievals", out.Iterations, out.Retrievals)
	}
	if !knn.SameIndexSet(out.FirstResults, out.FinalResults) {
		t.Error("NoFeedbackLoop changed the result list")
	}

	def, err := New(ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if def.MaxIterations() != DefaultMaxIterations {
		t.Errorf("zero MaxIterations resolved to %d, want DefaultMaxIterations", def.MaxIterations())
	}
}

// TestRefineFromScores checks the externally driven feedback step agrees
// with the engine's own oracle-driven refinement.
func TestRefineFromScores(t *testing.T) {
	ds := clusteredDataset(t, 40, 2)
	e, err := New(ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	item := ds.Items[0]
	results, err := e.Retrieve(item.Feature, e.UniformWeights(), 8)
	if err != nil {
		t.Fatal(err)
	}
	scores := e.Score(item.Category, results)
	newQ, newW, err := e.RefineFromScores(item.Feature, results, scores)
	if err != nil {
		t.Fatal(err)
	}
	if len(newQ) != ds.Dim || len(newW) != ds.Dim {
		t.Fatalf("refined dimensions %d/%d, want %d", len(newQ), len(newW), ds.Dim)
	}
	// All-zero scores surface ErrNoGoodMatches, errors.Is-able.
	zero := make([]float64, len(results))
	if _, _, err := e.RefineFromScores(item.Feature, results, zero); !errors.Is(err, feedback.ErrNoGoodMatches) {
		t.Errorf("zero scores: error %v is not ErrNoGoodMatches", err)
	}
	// Mismatched lengths and bad indices are rejected.
	if _, _, err := e.RefineFromScores(item.Feature, results, scores[:1]); err == nil {
		t.Error("score-length mismatch accepted")
	}
	bad := []knn.Result{{Index: ds.Len() + 5}}
	if _, _, err := e.RefineFromScores(item.Feature, bad, []float64{1}); err == nil {
		t.Error("out-of-range result index accepted")
	}
}

// TestQuerySignature pins the cache key: equal points collide, any
// component difference (including ±0) separates.
func TestQuerySignature(t *testing.T) {
	a := []float64{0.25, 0.5, 0.125}
	b := []float64{0.25, 0.5, 0.125}
	if QuerySignature(a) != QuerySignature(b) {
		t.Error("equal points have different signatures")
	}
	c := []float64{0.25, 0.5, 0.1250000001}
	if QuerySignature(a) == QuerySignature(c) {
		t.Error("distinct points share a signature")
	}
	if QuerySignature([]float64{0}) == QuerySignature([]float64{math.Copysign(0, -1)}) {
		t.Error("+0 and -0 should hash differently (bitwise key)")
	}
	if ResultSignature([]knn.Result{{Index: 3}}) != signature([]knn.Result{{Index: 3}}) {
		t.Error("ResultSignature diverges from the internal hash")
	}
}

// TestShardOfPinned pins the sharded bypass plane's partition function to
// golden values. Durable sharded module directories bake their shard
// count into a manifest and route every WAL record by this function, so
// a change here silently orphans persisted state — if this test fails,
// you are doing a resharding migration, not a refactor.
func TestShardOfPinned(t *testing.T) {
	points := [][]float64{
		{0.25, 0.25, 0.25},
		{0.1, 0.2, 0.3, 0.4},
		{0.5},
		{0.031, 0.002, 0.967, 0, 0, 0.0001},
		{1, 0, 0},
	}
	sigs := []uint64{
		5361427632939035000,
		6192810792582908260,
		12315068107728651944,
		5852497454591052768,
		13656591783786892216,
	}
	// Rows follow points; columns follow shardCounts.
	shardCounts := []int{2, 3, 4, 5, 7, 8}
	want := [][]int{
		{0, 2, 0, 0, 0, 0},
		{0, 1, 0, 0, 4, 4},
		{0, 2, 0, 4, 0, 0},
		{0, 0, 0, 3, 6, 0},
		{0, 1, 0, 1, 3, 0},
	}
	for i, q := range points {
		if got := QuerySignature(q); got != sigs[i] {
			t.Errorf("QuerySignature(%v) = %d, want %d", q, got, sigs[i])
		}
		for j, s := range shardCounts {
			if got := ShardOf(q, s); got != want[i][j] {
				t.Errorf("ShardOf(%v, %d) = %d, want %d", q, s, got, want[i][j])
			}
		}
		// Degenerate shard counts collapse to one partition.
		if ShardOf(q, 1) != 0 || ShardOf(q, 0) != 0 || ShardOf(q, -3) != 0 {
			t.Errorf("ShardOf(%v, <=1) must be 0", q)
		}
	}
}
