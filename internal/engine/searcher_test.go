package engine

import (
	"reflect"
	"testing"

	"repro/internal/ann"
	"repro/internal/dataset"
	"repro/internal/histogram"
	"repro/internal/imagegen"
	"repro/internal/knn"
)

// TestInjectedSearcher pins the Options.Searcher seam: an injected IVF
// tier at nprobe = nlist answers Retrieve and RetrieveBatch identically
// to the default exact scan, and Retrieval reports the active tier.
func TestInjectedSearcher(t *testing.T) {
	ds, err := dataset.Build(imagegen.IMSILike(3, 0.05), histogram.DefaultExtractor)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := New(ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := exact.Retrieval(); got != "scan" {
		t.Fatalf("default Retrieval() = %q, want scan", got)
	}
	idx, err := ann.Build(ds.Matrix(), ann.Options{NList: 8, NProbe: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	approx, err := New(ds, Options{Searcher: idx})
	if err != nil {
		t.Fatal(err)
	}
	if got := approx.Retrieval(); got != "ivf(nlist=8,nprobe=8,quant=f32)" {
		t.Fatalf("injected Retrieval() = %q", got)
	}
	w := exact.UniformWeights()
	qs := make([]WeightedQuery, 4)
	for i := range qs {
		qs[i] = WeightedQuery{Q: ds.Items[i*7].Feature, W: w}
	}
	for _, wq := range qs {
		want, err := exact.Retrieve(wq.Q, wq.W, 10)
		if err != nil {
			t.Fatal(err)
		}
		got, err := approx.Retrieve(wq.Q, wq.W, 10)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatal("full-probe injected searcher differs from exact scan")
		}
	}
	wantB, err := exact.RetrieveBatch(qs, 10)
	if err != nil {
		t.Fatal(err)
	}
	gotB, err := approx.RetrieveBatch(qs, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotB, wantB) {
		t.Fatal("batch retrieval through injected searcher differs")
	}

	if _, err := New(ds, Options{Searcher: idx, UseIndex: true}); err == nil {
		t.Fatal("UseIndex + Searcher accepted")
	}
	small, err := knn.NewScan([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(ds, Options{Searcher: small}); err == nil {
		t.Fatal("searcher with mismatched length accepted")
	}
}
