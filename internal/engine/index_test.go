package engine

import (
	"math/rand"
	"testing"

	"repro/internal/knn"
)

// TestIndexedRetrieveMatchesScan verifies that the VP-tree retrieval path
// returns exactly the scan path's results for arbitrary weighted queries.
func TestIndexedRetrieveMatchesScan(t *testing.T) {
	ds := clusteredDataset(t, 300, 21)
	scanEng, err := New(ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	idxEng, err := New(ds, Options{UseIndex: true, IndexSeed: 5})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 25; trial++ {
		q := ds.Items[rng.Intn(ds.Len())].Feature
		w := []float64{0.25 + rng.Float64()*4, 0.25 + rng.Float64()*4}
		k := 1 + rng.Intn(20)
		a, err := scanEng.Retrieve(q, w, k)
		if err != nil {
			t.Fatal(err)
		}
		b, err := idxEng.Retrieve(q, w, k)
		if err != nil {
			t.Fatal(err)
		}
		if !knn.SameIndexSet(a, b) {
			t.Fatalf("trial %d: scan %v vs index %v", trial, knn.Indices(a), knn.Indices(b))
		}
	}
}

// TestIndexedLoopMatchesScanLoop runs full feedback loops through both
// retrieval paths; identical retrieval results must give identical loops.
func TestIndexedLoopMatchesScanLoop(t *testing.T) {
	ds := clusteredDataset(t, 200, 23)
	scanEng, err := New(ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	idxEng, err := New(ds, Options{UseIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	for qi := 0; qi < 5; qi++ {
		item := ds.Items[qi]
		a, err := scanEng.RunLoop(item.Category, item.Feature, scanEng.UniformWeights(), 12)
		if err != nil {
			t.Fatal(err)
		}
		b, err := idxEng.RunLoop(item.Category, item.Feature, idxEng.UniformWeights(), 12)
		if err != nil {
			t.Fatal(err)
		}
		if a.Iterations != b.Iterations {
			t.Errorf("query %d: iterations %d vs %d", qi, a.Iterations, b.Iterations)
		}
		if !knn.SameIndexSet(a.FinalResults, b.FinalResults) {
			t.Errorf("query %d: final results differ", qi)
		}
	}
}
