// Package engine implements the interactive retrieval system of §2 and §5:
// query processing over the image collection, the automatic category-
// driven relevance oracle, and the feedback loop that iterates until the
// result list stabilizes ("no changes are observed anymore in the result
// list"). The engine is the substrate FeedbackBypass plugs into, following
// the architecture of Figure 4.
package engine

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/dataset"
	"repro/internal/distance"
	"repro/internal/feedback"
	"repro/internal/knn"
	"repro/internal/vec"
	"repro/internal/vptree"
)

// DefaultMaxIterations bounds the feedback loop. Most queries stabilize in
// a handful of iterations, but convergence can be slow when precision
// creeps up one result at a time (§1: "numerous iterations might occur");
// the bound guards genuinely non-converging trajectories.
const DefaultMaxIterations = 30

// NoFeedbackLoop disables the feedback loop entirely when assigned to
// Options.MaxIterations: RunLoop returns after the initial retrieval. The
// zero value of MaxIterations selects DefaultMaxIterations, so "no
// iterations" needs its own sentinel.
const NoFeedbackLoop = -1

// Engine is an interactive similarity retrieval system over a dataset.
type Engine struct {
	ds       *dataset.Dataset
	scan     *knn.Scan
	searcher knn.BatchSearcher // the serving tier: the scan, or an injected index (e.g. ann.Index)
	index    *vptree.Tree      // optional: Euclidean VP-tree for weighted lower-bound search
	fb       *feedback.Engine
	maxIters int
}

// Options configures an engine.
type Options struct {
	// Feedback selects the relevance-feedback strategy. The zero value
	// resolves to the paper's default (optimal movement + optimal
	// re-weighting) inside feedback.New via the MoveDefault/WeightDefault
	// rules, so a deliberate MoveNone/WeightNone configuration is passed
	// through unchanged.
	Feedback feedback.Options
	// MaxIterations bounds the feedback loop; DefaultMaxIterations when 0,
	// no loop at all when NoFeedbackLoop. Other negatives are errors.
	MaxIterations int
	// UseIndex answers retrievals through a VP-tree built on the Euclidean
	// metric, serving the per-query weighted distances exactly via the
	// √(min wᵢ)·L2 lower bound. At the paper's dimensionality (D = 32)
	// metric pruning rarely beats a scan — see BenchmarkKNN* — but the
	// option exercises the index path the paper's query-processing step
	// describes.
	UseIndex bool
	// IndexSeed seeds vantage-point selection when UseIndex is set.
	IndexSeed int64
	// Searcher injects a pre-built retrieval tier — typically an IVF
	// ann.Index over the dataset's backend — in place of the exact scan.
	// The tier must cover exactly the dataset's rows. Mutually exclusive
	// with UseIndex.
	Searcher knn.BatchSearcher
}

// New builds an engine over the dataset. Sequential scan is the default
// query-processing strategy because the feedback loop changes the metric
// at every iteration; Options.UseIndex switches to an exact VP-tree path.
func New(ds *dataset.Dataset, opts Options) (*Engine, error) {
	if ds == nil || ds.Len() == 0 {
		return nil, errors.New("engine: empty dataset")
	}
	switch {
	case opts.MaxIterations == 0:
		opts.MaxIterations = DefaultMaxIterations
	case opts.MaxIterations == NoFeedbackLoop:
		opts.MaxIterations = 0
	case opts.MaxIterations < 0:
		return nil, fmt.Errorf("engine: max iterations must be positive, 0 (default) or NoFeedbackLoop, got %d", opts.MaxIterations)
	}
	fb, err := feedback.New(opts.Feedback)
	if err != nil {
		return nil, err
	}
	scan, err := knn.NewScanBackend(ds.Matrix())
	if err != nil {
		return nil, err
	}
	e := &Engine{ds: ds, scan: scan, searcher: scan, fb: fb, maxIters: opts.MaxIterations}
	if opts.Searcher != nil {
		if opts.UseIndex {
			return nil, errors.New("engine: UseIndex and Searcher are mutually exclusive")
		}
		if opts.Searcher.Len() != ds.Len() {
			return nil, fmt.Errorf("engine: injected searcher covers %d rows, dataset has %d", opts.Searcher.Len(), ds.Len())
		}
		e.searcher = opts.Searcher
	}
	if opts.UseIndex {
		idx, err := vptree.Build(ds.Features(), distance.Euclidean{}, opts.IndexSeed)
		if err != nil {
			return nil, err
		}
		e.index = idx
	}
	return e, nil
}

// Dataset returns the underlying collection.
func (e *Engine) Dataset() *dataset.Dataset { return e.ds }

// MaxIterations returns the feedback-loop bound the engine was built with
// (0 when constructed with NoFeedbackLoop).
func (e *Engine) MaxIterations() int { return e.maxIters }

// FeedbackName describes the configured relevance-feedback strategy.
func (e *Engine) FeedbackName() string { return e.fb.Name() }

// Retrieve runs the query-processing step: the k nearest items to q under
// the weighted Euclidean distance with the given weights (uniform weights
// = the default Euclidean distance of §5).
func (e *Engine) Retrieve(q, w []float64, k int) ([]knn.Result, error) {
	m, err := distance.NewWeightedEuclidean(w)
	if err != nil {
		return nil, err
	}
	if e.index != nil {
		return e.index.SearchWeighted(q, k, m)
	}
	return e.searcher.Search(q, k, m)
}

// Retrieval names the active retrieval tier — "scan", "vptree", or the
// injected searcher's own description (e.g. "ivf(nlist=…,nprobe=…)") —
// for the serving layer's stats surface.
func (e *Engine) Retrieval() string {
	if e.index != nil {
		return "vptree"
	}
	return e.searcher.Describe()
}

// WeightedQuery pairs a query point with the weight vector of its
// re-weighted metric.
type WeightedQuery struct {
	Q, W []float64
}

// RetrieveBatch answers several weighted retrievals in one call through
// the scan's cache-tiled SearchBatchMulti: every L2-sized block of the
// collection is streamed once for the whole batch, with each query
// evaluated under its own weighted metric against the hot block. Results
// are positionally aligned with qs and identical to calling Retrieve per
// query. Singleton batches and the index path answer queries one by one
// (a lone kernel query is served with more parallelism by the sharded
// Search; tree descent has no batch variant).
func (e *Engine) RetrieveBatch(qs []WeightedQuery, k int) ([][]knn.Result, error) {
	if e.index != nil || len(qs) == 1 {
		out := make([][]knn.Result, len(qs))
		for i, wq := range qs {
			res, err := e.Retrieve(wq.Q, wq.W, k)
			if err != nil {
				return nil, err
			}
			out[i] = res
		}
		return out, nil
	}
	points := make([][]float64, len(qs))
	metrics := make([]distance.Metric, len(qs))
	for i, wq := range qs {
		m, err := distance.NewWeightedEuclidean(wq.W)
		if err != nil {
			return nil, err
		}
		points[i] = wq.Q
		metrics[i] = m
	}
	return e.searcher.SearchBatchMulti(points, k, metrics)
}

// Score applies the automatic relevance oracle of §5: an item scores
// ScoreGood iff it belongs to the query's category.
func (e *Engine) Score(queryCategory string, results []knn.Result) []float64 {
	scores := make([]float64, len(results))
	for i, r := range results {
		if e.ds.IsGood(r.Index, queryCategory) {
			scores[i] = feedback.ScoreGood
		} else {
			scores[i] = feedback.ScoreBad
		}
	}
	return scores
}

// GoodCount returns how many results are relevant to the query category.
func (e *Engine) GoodCount(queryCategory string, results []knn.Result) int {
	n := 0
	for _, r := range results {
		if e.ds.IsGood(r.Index, queryCategory) {
			n++
		}
	}
	return n
}

// RefineFromScores computes the next query point and weight vector from
// caller-provided relevance scores for the given result list — the
// feedback step of Figure 5 driven by an external user (e.g. a service
// session) instead of the category oracle RunLoop embeds. It passes
// feedback.ErrNoGoodMatches through unchanged so callers can terminate
// their loop the way RunLoop does.
func (e *Engine) RefineFromScores(q []float64, results []knn.Result, scores []float64) (newQ, newW []float64, err error) {
	if len(results) != len(scores) {
		return nil, nil, fmt.Errorf("engine: %d results but %d scores", len(results), len(scores))
	}
	vectors := make([][]float64, len(results))
	for i, r := range results {
		// The bounds-checked accessor turns a hostile index from a
		// serving-path client into an errors.Is-able store.ErrOutOfRange
		// instead of a slice-bounds panic inside an HTTP handler.
		v, err := e.ds.Feature(r.Index)
		if err != nil {
			return nil, nil, fmt.Errorf("engine: result index %d: %w", r.Index, err)
		}
		vectors[i] = v
	}
	return e.fb.Refine(q, vectors, scores)
}

// LoopOutcome summarizes one run of the feedback loop.
type LoopOutcome struct {
	// QOpt and WOpt are the converged optimal query parameters.
	QOpt, WOpt []float64
	// Iterations counts the feedback cycles performed: each cycle is one
	// round of user scores, parameter refinement, and re-retrieval. Zero
	// means the very first refinement left the result list unchanged or no
	// feedback was available.
	Iterations int
	// Retrievals counts database searches, Iterations+1.
	Retrievals int
	// FirstResults is the result list of the initial retrieval (what the
	// user sees before any feedback).
	FirstResults []knn.Result
	// FinalResults is the stable result list of Result(Qopt, dopt).
	FinalResults []knn.Result
	// Converged is false when the iteration bound stopped the loop.
	Converged bool
}

// RunLoop executes the interactive feedback loop of Figure 5 starting from
// the given query point and weights, using the category oracle in place of
// the user. It iterates until the result list no longer changes, no good
// matches are found, or the iteration bound is reached.
func (e *Engine) RunLoop(queryCategory string, q0, w0 []float64, k int) (LoopOutcome, error) {
	if k <= 0 {
		return LoopOutcome{}, fmt.Errorf("engine: k must be positive, got %d", k)
	}
	q, w := vec.Clone(q0), vec.Clone(w0)
	results, err := e.Retrieve(q, w, k)
	if err != nil {
		return LoopOutcome{}, err
	}
	out := LoopOutcome{FirstResults: results}
	// The refinement is a deterministic function of the result list, so a
	// repeated list means the loop has entered a limit cycle and no further
	// improvement is possible ("stable situation", §5). Track every list
	// seen to terminate both on fixed points and on longer cycles.
	seen := map[uint64]bool{signature(results): true}
	for iter := 0; iter < e.maxIters; iter++ {
		scores := e.Score(queryCategory, results)
		vectors := make([][]float64, len(results))
		for i, r := range results {
			vectors[i] = e.ds.Items[r.Index].Feature
		}
		newQ, newW, err := e.fb.Refine(q, vectors, scores)
		if errors.Is(err, feedback.ErrNoGoodMatches) {
			// Nothing to learn from: the loop terminates with the current
			// parameters (§5: improvement requires good matches).
			out.Converged = true
			break
		}
		if err != nil {
			return LoopOutcome{}, err
		}
		newResults, err := e.Retrieve(newQ, newW, k)
		if err != nil {
			return LoopOutcome{}, err
		}
		q, w = newQ, newW
		if knn.SameIndexSet(newResults, results) {
			results = newResults
			out.Converged = true
			break
		}
		results = newResults
		out.Iterations++
		sig := signature(results)
		if seen[sig] {
			out.Converged = true
			break
		}
		seen[sig] = true
	}
	out.QOpt, out.WOpt = q, w
	out.FinalResults = results
	out.Retrievals = out.Iterations + 1
	return out, nil
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnvMix(h, x uint64) uint64 {
	for s := 0; s < 64; s += 8 {
		h ^= (x >> s) & 0xff
		h *= fnvPrime64
	}
	return h
}

// signature encodes a result list's index sequence for cycle detection:
// FNV-1a over the little-endian index bytes. The previous implementation
// built a string with one fmt.Fprintf per result per iteration, which
// dominated the loop's bookkeeping cost; the hash is allocation-free. A
// 64-bit collision between the handful of lists one loop can see is
// vanishingly unlikely (and a collision merely ends refinement one
// iteration early, it cannot corrupt results).
func signature(results []knn.Result) uint64 {
	h := uint64(fnvOffset64)
	for _, r := range results {
		h = fnvMix(h, uint64(r.Index))
	}
	return h
}

// ResultSignature is the exported form of the loop's cycle-detection hash;
// service sessions use it to detect stable result lists across feedback
// rounds exactly the way RunLoop does.
func ResultSignature(results []knn.Result) uint64 { return signature(results) }

// QuerySignature hashes a query point (FNV-1a over the little-endian
// IEEE-754 bits of each component) — the cache key of the serving layer's
// prediction cache. It is allocation-free and distinguishes +0/−0 and any
// NaN payloads bitwise, so two queries with equal signatures are, for
// finite inputs, overwhelmingly likely to be the same point; callers that
// cannot tolerate the residual collision risk must compare the points.
func QuerySignature(q []float64) uint64 {
	h := uint64(fnvOffset64)
	for _, x := range q {
		h = fnvMix(h, math.Float64bits(x))
	}
	return h
}

// ShardOf is the partition function of the sharded bypass plane: it maps
// a query point to one of `shards` partitions by reducing QuerySignature
// modulo the shard count. Every layer that routes by query point — the
// sharded bypass's insert path, the serving layer's per-shard cache
// generations, recovery replay — must agree on this function, and any
// durable module directory bakes its shard count into its manifest, so
// the mapping is pinned by test (TestShardOfPinned): changing it is a
// resharding migration of every existing module, not a refactor.
func ShardOf(q []float64, shards int) int {
	if shards <= 1 {
		return 0
	}
	return int(QuerySignature(q) % uint64(shards))
}

// UniformWeights returns the all-ones weight vector of the collection's
// dimensionality — the default distance function.
func (e *Engine) UniformWeights() []float64 { return vec.Ones(e.ds.Dim) }
