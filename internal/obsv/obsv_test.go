package obsv

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "")
	g := r.Gauge("x", "")
	h := r.Histogram("x_seconds", "", LatencyBounds())
	r.GaugeFunc("y", "", func() float64 { return 1 })
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(1)
	h.Observe(0.1)
	h.ObserveSince(time.Now())
	h.ObserveDuration(time.Millisecond)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatalf("nil instruments must read zero")
	}
	if h.Snapshot() != nil {
		t.Fatalf("nil histogram snapshot must be nil")
	}
	if err := r.WriteProm(nil); err != nil {
		t.Fatalf("nil registry WriteProm: %v", err)
	}
	if s := r.Snapshot(); s == nil || len(s.Families) != 0 {
		t.Fatalf("nil registry snapshot must be empty, got %+v", s)
	}
}

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("req_total", "requests", L("op", "open"))
	c.Inc()
	c.Add(9)
	if c.Value() != 10 {
		t.Fatalf("counter = %d, want 10", c.Value())
	}
	// Same name+labels returns the same instrument.
	if r.Counter("req_total", "requests", L("op", "open")) != c {
		t.Fatalf("get-or-create must return the existing counter")
	}
	// Label order must not matter.
	c2 := r.Counter("multi_total", "", L("b", "2"), L("a", "1"))
	if r.Counter("multi_total", "", L("a", "1"), L("b", "2")) != c2 {
		t.Fatalf("label order must not create a distinct instrument")
	}
	g := r.Gauge("depth", "")
	g.Set(4)
	g.Add(-1.5)
	if g.Value() != 2.5 {
		t.Fatalf("gauge = %g, want 2.5", g.Value())
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("thing", "")
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic on kind mismatch")
		}
	}()
	r.Gauge("thing", "")
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "", []float64{1, 2, 4})
	// le semantics: an observation equal to an edge belongs to that edge's bucket.
	for _, v := range []float64{0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 100.0} {
		h.Observe(v)
	}
	s := h.Snapshot()
	want := []uint64{2, 2, 2, 1} // (-inf,1], (1,2], (2,4], (4,+inf)
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (counts=%v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 7 {
		t.Fatalf("count = %d, want 7", s.Count)
	}
	if math.Abs(s.Sum-112.0) > 1e-9 {
		t.Fatalf("sum = %g, want 112", s.Sum)
	}
}

func TestQuantileAccuracy(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "", LatencyBounds())
	// Uniform 0..10ms: 10000 samples. True p50 = 5ms, p95 = 9.5ms.
	n := 10000
	for i := 0; i < n; i++ {
		h.Observe(float64(i) / float64(n) * 0.010)
	}
	s := h.Snapshot()
	p50 := s.Quantile(0.50)
	p95 := s.Quantile(0.95)
	p99 := s.Quantile(0.99)
	// Bucketed quantiles are exact only up to the containing bucket:
	// p50 lands in (4.096ms, 8.192ms], which the uniform distribution
	// fills completely, so interpolation recovers ~5ms tightly. p95 and
	// p99 land in (8.192ms, 16.384ms], which the data only part-fills,
	// so the honest bound is the bucket itself.
	if p50 < 0.0045 || p50 > 0.0055 {
		t.Fatalf("p50 = %g, want ~0.005", p50)
	}
	if p95 <= 0.008192 || p95 > 0.016384 {
		t.Fatalf("p95 = %g, want within (8.192ms, 16.384ms]", p95)
	}
	if p99 <= 0.008192 || p99 > 0.016384 {
		t.Fatalf("p99 = %g, want within (8.192ms, 16.384ms]", p99)
	}
	if !(p50 <= p95 && p95 <= p99) {
		t.Fatalf("quantiles not monotone: p50=%g p95=%g p99=%g", p50, p95, p99)
	}
	if !math.IsNaN((&HistSnapshot{}).Quantile(0.5)) {
		t.Fatalf("empty histogram quantile must be NaN")
	}
}

func TestQuantileOverflowClamps(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", []float64{1, 2})
	h.Observe(50) // +Inf bucket
	if q := h.Snapshot().Quantile(0.99); q != 2 {
		t.Fatalf("overflow quantile = %g, want clamp to 2", q)
	}
}

func TestMerge(t *testing.T) {
	r := NewRegistry()
	a := r.Histogram("a", "", []float64{1, 2})
	b := r.Histogram("b", "", []float64{1, 2})
	a.Observe(0.5)
	b.Observe(1.5)
	b.Observe(9)
	sa, sb := a.Snapshot(), b.Snapshot()
	if err := sa.Merge(sb); err != nil {
		t.Fatalf("merge: %v", err)
	}
	if sa.Count != 3 || sa.Counts[0] != 1 || sa.Counts[1] != 1 || sa.Counts[2] != 1 {
		t.Fatalf("merged = %+v", sa)
	}
	if math.Abs(sa.Sum-11.0) > 1e-9 {
		t.Fatalf("merged sum = %g, want 11", sa.Sum)
	}
	bad := &HistSnapshot{Bounds: []float64{1}, Counts: []uint64{0, 0}}
	if err := sa.Merge(bad); err == nil {
		t.Fatalf("merge with mismatched bounds must error")
	}
}

func TestLatencyBounds(t *testing.T) {
	b := LatencyBounds()
	if b[0] != 1e-6 {
		t.Fatalf("first bound = %g, want 1e-6", b[0])
	}
	if b[len(b)-1] != 10 {
		t.Fatalf("last bound = %g, want 10", b[len(b)-1])
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("bounds not ascending at %d: %g <= %g", i, b[i], b[i-1])
		}
	}
}

func TestGaugeFuncAndFind(t *testing.T) {
	r := NewRegistry()
	v := 7.0
	r.GaugeFunc("pool_size", "pull gauge", func() float64 { return v }, L("pool", "a"))
	s := r.Snapshot()
	m := s.Find("pool_size", L("pool", "a"))
	if m == nil || m.Value != 7 {
		t.Fatalf("Find = %+v, want value 7", m)
	}
	if s.Find("pool_size", L("pool", "zzz")) != nil {
		t.Fatalf("Find with wrong label must be nil")
	}
	// Re-registering replaces the callback.
	r.GaugeFunc("pool_size", "pull gauge", func() float64 { return 42 }, L("pool", "a"))
	if m := r.Snapshot().Find("pool_size", L("pool", "a")); m == nil || m.Value != 42 {
		t.Fatalf("replaced gauge func = %+v, want 42", m)
	}
}

// TestRegistryRace hammers every instrument kind from many goroutines
// while concurrently snapshotting and exposing; run under -race in CI.
func TestRegistryRace(t *testing.T) {
	r := NewRegistry()
	const workers = 16
	const iters = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			lbl := L("w", string(rune('a'+id%4)))
			for i := 0; i < iters; i++ {
				r.Counter("race_total", "", lbl).Inc()
				r.Gauge("race_gauge", "", lbl).Add(1)
				r.Histogram("race_seconds", "", LatencyBounds(), lbl).Observe(float64(i) * 1e-6)
				if i%64 == 0 {
					r.GaugeFunc("race_fn", "", func() float64 { return float64(i) }, lbl)
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			r.Snapshot()
			var sb discard
			_ = r.WriteProm(&sb)
		}
	}()
	wg.Wait()
	<-done
	total := uint64(0)
	for _, lbl := range []Label{L("w", "a"), L("w", "b"), L("w", "c"), L("w", "d")} {
		total += r.Counter("race_total", "", lbl).Value()
	}
	if total != workers*iters {
		t.Fatalf("race_total = %d, want %d", total, workers*iters)
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

func BenchmarkCounterInc(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench_total", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("bench_seconds", "", LatencyBounds())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%1000) * 1e-6)
	}
}

func BenchmarkNilHistogramObserve(b *testing.B) {
	var h *Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(1e-6)
	}
}
