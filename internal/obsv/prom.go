package obsv

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// WriteProm writes the registry contents in Prometheus text exposition
// format (version 0.0.4). Families appear in registration order; each
// emits # HELP / # TYPE once. No-op on a nil registry.
func (r *Registry) WriteProm(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	fams := append([]*family(nil), r.order...)
	r.mu.Unlock()
	for _, f := range fams {
		if err := f.writeProm(w); err != nil {
			return err
		}
	}
	return nil
}

func (f *family) writeProm(w io.Writer) error {
	f.mu.Lock()
	metrics := append([]any(nil), f.order...)
	f.mu.Unlock()
	if len(metrics) == 0 {
		return nil
	}
	if f.help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
		return err
	}
	for _, m := range metrics {
		switch v := m.(type) {
		case *Counter:
			if err := writeSample(w, f.name, v.labels, "", "", float64(v.Value())); err != nil {
				return err
			}
		case *Gauge:
			if err := writeSample(w, f.name, v.labels, "", "", v.Value()); err != nil {
				return err
			}
		case *gaugeFunc:
			if err := writeSample(w, f.name, v.labels, "", "", v.fn()); err != nil {
				return err
			}
		case *Histogram:
			s := v.Snapshot()
			cum := uint64(0)
			for i, b := range s.Bounds {
				cum += s.Counts[i]
				if err := writeSample(w, f.name+"_bucket", v.labels, "le", formatFloat(b), float64(cum)); err != nil {
					return err
				}
			}
			cum += s.Counts[len(s.Bounds)]
			if err := writeSample(w, f.name+"_bucket", v.labels, "le", "+Inf", float64(cum)); err != nil {
				return err
			}
			if err := writeSample(w, f.name+"_sum", v.labels, "", "", s.Sum); err != nil {
				return err
			}
			if err := writeSample(w, f.name+"_count", v.labels, "", "", float64(s.Count)); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeSample emits one `name{labels} value` line. extraKey/extraVal
// append a synthetic label (the histogram `le` edge) after the fixed
// labels.
func writeSample(w io.Writer, name string, labels []Label, extraKey, extraVal string, value float64) error {
	var sb strings.Builder
	sb.WriteString(name)
	if len(labels) > 0 || extraKey != "" {
		sb.WriteByte('{')
		first := true
		for _, l := range labels {
			if !first {
				sb.WriteByte(',')
			}
			first = false
			sb.WriteString(l.Key)
			sb.WriteString(`="`)
			sb.WriteString(escapeLabel(l.Value))
			sb.WriteByte('"')
		}
		if extraKey != "" {
			if !first {
				sb.WriteByte(',')
			}
			sb.WriteString(extraKey)
			sb.WriteString(`="`)
			sb.WriteString(escapeLabel(extraVal))
			sb.WriteByte('"')
		}
		sb.WriteByte('}')
	}
	sb.WriteByte(' ')
	sb.WriteString(formatFloat(value))
	sb.WriteByte('\n')
	_, err := io.WriteString(w, sb.String())
	return err
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeLabel(s string) string {
	return strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`).Replace(s)
}

func escapeHelp(s string) string {
	return strings.NewReplacer(`\`, `\\`, "\n", `\n`).Replace(s)
}

// HistSnapshot is a point-in-time copy of one histogram. Counts has
// len(Bounds)+1 entries; the final entry is the +Inf overflow bucket.
type HistSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
}

// Quantile estimates the q-th quantile (0..1) by linear interpolation
// within the containing bucket, Prometheus histogram_quantile style.
// Returns NaN on an empty histogram; values in the +Inf bucket clamp to
// the highest finite bound.
func (s *HistSnapshot) Quantile(q float64) float64 {
	if s == nil || s.Count == 0 {
		return math.NaN()
	}
	rank := q * float64(s.Count)
	cum := 0.0
	for i, c := range s.Counts {
		prev := cum
		cum += float64(c)
		if cum < rank {
			continue
		}
		if i >= len(s.Bounds) {
			// +Inf bucket: clamp to the largest finite edge.
			return s.Bounds[len(s.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := s.Bounds[i]
		if c == 0 {
			return hi
		}
		return lo + (hi-lo)*(rank-prev)/float64(c)
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Merge adds o's observations into s. The bounds must match.
func (s *HistSnapshot) Merge(o *HistSnapshot) error {
	if o == nil {
		return nil
	}
	if len(s.Bounds) != len(o.Bounds) {
		return fmt.Errorf("obsv: merge bounds mismatch: %d vs %d", len(s.Bounds), len(o.Bounds))
	}
	for i, b := range s.Bounds {
		if b != o.Bounds[i] {
			return fmt.Errorf("obsv: merge bounds mismatch at %d: %g vs %g", i, b, o.Bounds[i])
		}
	}
	for i := range s.Counts {
		s.Counts[i] += o.Counts[i]
	}
	s.Count += o.Count
	s.Sum += o.Sum
	return nil
}

// MetricSnapshot is one instrument's state inside a Snapshot.
type MetricSnapshot struct {
	Labels []Label       `json:"labels,omitempty"`
	Value  float64       `json:"value,omitempty"`
	Hist   *HistSnapshot `json:"hist,omitempty"`
}

// FamilySnapshot is one metric family's state inside a Snapshot.
type FamilySnapshot struct {
	Name    string           `json:"name"`
	Kind    string           `json:"kind"`
	Help    string           `json:"help,omitempty"`
	Metrics []MetricSnapshot `json:"metrics"`
}

// Snapshot is a point-in-time, JSON-encodable copy of a whole registry,
// suitable for embedding in benchmark artifacts.
type Snapshot struct {
	Families []FamilySnapshot `json:"families"`
}

// Snapshot captures every family and instrument. Nil-safe (returns an
// empty snapshot).
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{}
	if r == nil {
		return s
	}
	r.mu.Lock()
	fams := append([]*family(nil), r.order...)
	r.mu.Unlock()
	for _, f := range fams {
		f.mu.Lock()
		metrics := append([]any(nil), f.order...)
		f.mu.Unlock()
		fs := FamilySnapshot{Name: f.name, Kind: f.kind, Help: f.help}
		for _, m := range metrics {
			var ms MetricSnapshot
			switch v := m.(type) {
			case *Counter:
				ms = MetricSnapshot{Labels: v.labels, Value: float64(v.Value())}
			case *Gauge:
				ms = MetricSnapshot{Labels: v.labels, Value: v.Value()}
			case *gaugeFunc:
				ms = MetricSnapshot{Labels: v.labels, Value: v.fn()}
			case *Histogram:
				ms = MetricSnapshot{Labels: v.labels, Hist: v.Snapshot()}
			}
			fs.Metrics = append(fs.Metrics, ms)
		}
		s.Families = append(s.Families, fs)
	}
	return s
}

// Find returns the metric with the given family name whose labels are a
// superset of want, or nil. Convenience for tests and reports.
func (s *Snapshot) Find(name string, want ...Label) *MetricSnapshot {
	if s == nil {
		return nil
	}
	for fi := range s.Families {
		if s.Families[fi].Name != name {
			continue
		}
		for mi := range s.Families[fi].Metrics {
			m := &s.Families[fi].Metrics[mi]
			if labelsContain(m.Labels, want) {
				return m
			}
		}
	}
	return nil
}

func labelsContain(have, want []Label) bool {
	for _, w := range want {
		found := false
		for _, h := range have {
			if h.Key == w.Key && h.Value == w.Value {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}
