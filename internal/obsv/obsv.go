// Package obsv is the repo's observability plane: a zero-dependency
// metrics registry with atomic counters, gauges, and fixed-bucket
// lock-free latency histograms.
//
// Design constraints, in order:
//
//  1. Allocation-free on the hot path. Instruments are created once at
//     wire-up time; Inc/Set/Observe touch only pre-allocated atomics.
//  2. Nil-safe everywhere. A nil *Registry returns nil instruments and a
//     nil instrument's methods no-op, so instrumented packages never
//     branch on "is observability enabled" — they just call through.
//     Packages that would otherwise pay for time.Now() still guard the
//     timing itself with a nil check.
//  3. Zero dependencies. Exposition (prom.go) is hand-rolled Prometheus
//     text format; snapshots are plain JSON-encodable structs so bench
//     artifacts can embed them.
package obsv

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is a metric dimension. Labels are fixed at instrument creation.
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Instrument kinds, used in exposition and snapshots.
const (
	KindCounter   = "counter"
	KindGauge     = "gauge"
	KindHistogram = "histogram"
)

// Counter is a monotonically increasing uint64.
type Counter struct {
	labels []Label
	v      atomic.Uint64
}

// Inc adds 1. Safe on a nil receiver.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n. Safe on a nil receiver.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count. Zero on a nil receiver.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 that can go up and down.
type Gauge struct {
	labels []Label
	bits   atomic.Uint64
}

// Set stores v. Safe on a nil receiver.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add CAS-adds delta. Safe on a nil receiver.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value. Zero on a nil receiver.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// gaugeFunc is a gauge whose value is pulled from a callback at
// collection time (exposition / snapshot), not pushed.
type gaugeFunc struct {
	labels []Label
	fn     func() float64
}

// Histogram is a fixed-bucket lock-free histogram. Bounds are upper
// bucket edges in ascending order; an implicit +Inf bucket catches
// overflow. Observe is wait-free on the bucket counts; the running sum
// uses a CAS loop on float64 bits.
type Histogram struct {
	labels  []Label
	bounds  []float64 // shared, never mutated after creation
	buckets []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

// Observe records v. Safe on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Branchless-ish binary search over the bounds; len(bounds) is the
	// +Inf bucket index.
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since t0. Safe on a nil
// receiver, but callers on hot paths should nil-check first to skip the
// time.Now() that produced t0.
func (h *Histogram) ObserveSince(t0 time.Time) {
	if h != nil {
		h.Observe(time.Since(t0).Seconds())
	}
}

// ObserveDuration records d in seconds. Safe on a nil receiver.
func (h *Histogram) ObserveDuration(d time.Duration) {
	if h != nil {
		h.Observe(d.Seconds())
	}
}

// Count returns the number of observations. Zero on a nil receiver.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Snapshot returns a point-in-time copy of the histogram state.
func (h *Histogram) Snapshot() *HistSnapshot {
	if h == nil {
		return nil
	}
	s := &HistSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.buckets)),
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sumBits.Load()),
	}
	for i := range h.buckets {
		s.Counts[i] = h.buckets[i].Load()
	}
	return s
}

// LatencyBounds returns the standard latency bucket edges: exponential
// (doubling) from 1µs up through ~8.4s, capped with a final 10s edge.
// Everything above 10s lands in the implicit +Inf bucket.
func LatencyBounds() []float64 {
	var b []float64
	for v := 1e-6; v < 10; v *= 2 {
		b = append(b, v)
	}
	return append(b, 10)
}

// CountBounds returns bucket edges for small-integer size distributions
// (nprobe, shortlist sizes): powers of two from 1 to 65536.
func CountBounds() []float64 {
	var b []float64
	for v := 1.0; v <= 65536; v *= 2 {
		b = append(b, v)
	}
	return b
}

// family groups all instruments sharing one metric name. HELP/TYPE are
// emitted once per family; label sets distinguish members.
type family struct {
	name   string
	help   string
	kind   string
	bounds []float64 // histograms only

	mu      sync.Mutex
	byLabel map[string]any // *Counter | *Gauge | *gaugeFunc | *Histogram
	order   []any
}

// Registry is a named collection of metric families. All methods are
// safe for concurrent use and safe on a nil receiver (returning nil
// instruments / empty output).
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func (r *Registry) getFamily(name, help, kind string, bounds []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, bounds: bounds, byLabel: make(map[string]any)}
		r.families[name] = f
		r.order = append(r.order, f)
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obsv: metric %q registered as %s, requested as %s", name, f.kind, kind))
	}
	return f
}

func labelSig(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var sb strings.Builder
	for _, l := range labels {
		sb.WriteString(l.Key)
		sb.WriteByte('\x00')
		sb.WriteString(l.Value)
		sb.WriteByte('\x00')
	}
	return sb.String()
}

// sortLabels returns a copy of labels sorted by key so that the same
// label set always maps to the same instrument regardless of call-site
// ordering.
func sortLabels(labels []Label) []Label {
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	return ls
}

// Counter returns the counter for name+labels, creating it on first use.
// Returns nil on a nil registry.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	f := r.getFamily(name, help, KindCounter, nil)
	ls := sortLabels(labels)
	sig := labelSig(ls)
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.byLabel[sig]; ok {
		return m.(*Counter)
	}
	c := &Counter{labels: ls}
	f.byLabel[sig] = c
	f.order = append(f.order, c)
	return c
}

// Gauge returns the gauge for name+labels, creating it on first use.
// Returns nil on a nil registry.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	f := r.getFamily(name, help, KindGauge, nil)
	ls := sortLabels(labels)
	sig := labelSig(ls)
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.byLabel[sig]; ok {
		return m.(*Gauge)
	}
	g := &Gauge{labels: ls}
	f.byLabel[sig] = g
	f.order = append(f.order, g)
	return g
}

// GaugeFunc registers a pull-style gauge whose value is fn() at
// collection time. Re-registering the same name+labels replaces fn.
// No-op on a nil registry.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	f := r.getFamily(name, help, KindGauge, nil)
	ls := sortLabels(labels)
	sig := labelSig(ls)
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.byLabel[sig]; ok {
		if gf, ok := m.(*gaugeFunc); ok {
			gf.fn = fn
			return
		}
		panic(fmt.Sprintf("obsv: metric %q already registered as a plain gauge", name))
	}
	gf := &gaugeFunc{labels: ls, fn: fn}
	f.byLabel[sig] = gf
	f.order = append(f.order, gf)
}

// Histogram returns the histogram for name+labels, creating it with the
// given bucket bounds on first use. Bounds must be ascending; they are
// fixed by the first registration of the family. Returns nil on a nil
// registry.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	f := r.getFamily(name, help, KindHistogram, bounds)
	ls := sortLabels(labels)
	sig := labelSig(ls)
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.byLabel[sig]; ok {
		return m.(*Histogram)
	}
	h := &Histogram{
		labels:  ls,
		bounds:  f.bounds,
		buckets: make([]atomic.Uint64, len(f.bounds)+1),
	}
	f.byLabel[sig] = h
	f.order = append(f.order, h)
	return h
}
