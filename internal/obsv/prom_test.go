package obsv

import (
	"bufio"
	"fmt"
	"math"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// promSampleRE matches one exposition sample line:
//
//	name{k="v",...} value
//
// with the label block optional. Values may be +Inf/-Inf/NaN or a Go
// float literal.
var promSampleRE = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"(,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*\})? (\+Inf|-Inf|NaN|[-+0-9.eE]+)$`)

// validateProm parses text as Prometheus 0.0.4 exposition format,
// returning the set of sample names seen. It enforces: every non-comment
// line matches the sample grammar, every TYPE is declared before its
// samples, and histogram buckets are cumulative with a +Inf terminal.
func validateProm(t *testing.T, text string) map[string]bool {
	t.Helper()
	names := map[string]bool{}
	types := map[string]string{}
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 4 {
				t.Fatalf("malformed comment line: %q", line)
			}
			if fields[1] == "TYPE" {
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					t.Fatalf("bad TYPE %q in %q", fields[3], line)
				}
				types[fields[2]] = fields[3]
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("unknown comment form: %q", line)
		}
		if !promSampleRE.MatchString(line) {
			t.Fatalf("line does not match sample grammar: %q", line)
		}
		name := line
		if i := strings.IndexAny(name, "{ "); i >= 0 {
			name = name[:i]
		}
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		if _, ok := types[name]; !ok {
			if _, ok := types[base]; !ok {
				t.Fatalf("sample %q has no preceding TYPE declaration", name)
			}
		}
		names[name] = true
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("scan: %v", err)
	}
	return names
}

func TestWritePromFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("fb_requests_total", "total requests", L("op", "open"), L("outcome", "ok")).Add(3)
	r.Counter("fb_requests_total", "total requests", L("op", "open"), L("outcome", "error")).Inc()
	r.Gauge("fb_sessions_active", "live sessions").Set(12)
	r.GaugeFunc("fb_tree_points", "vertices", func() float64 { return 99 }, L("shard", "0"))
	h := r.Histogram("fb_latency_seconds", "op latency", LatencyBounds(), L("op", "feedback"))
	h.Observe(0.0001)
	h.Observe(0.5)
	h.Observe(30) // +Inf

	var sb strings.Builder
	if err := r.WriteProm(&sb); err != nil {
		t.Fatalf("WriteProm: %v", err)
	}
	out := sb.String()
	names := validateProm(t, out)
	for _, want := range []string{
		"fb_requests_total", "fb_sessions_active", "fb_tree_points",
		"fb_latency_seconds_bucket", "fb_latency_seconds_sum", "fb_latency_seconds_count",
	} {
		if !names[want] {
			t.Fatalf("missing series %q in output:\n%s", want, out)
		}
	}
	if !strings.Contains(out, `fb_requests_total{op="open",outcome="ok"} 3`) {
		t.Fatalf("labeled counter sample missing:\n%s", out)
	}
	if !strings.Contains(out, `le="+Inf"`) {
		t.Fatalf("+Inf bucket missing:\n%s", out)
	}
	if !strings.Contains(out, "fb_latency_seconds_count{op=\"feedback\"} 3") {
		t.Fatalf("histogram count sample missing:\n%s", out)
	}
	// Buckets must be cumulative and the +Inf bucket must equal _count.
	var lastCum float64 = -1
	var infCum float64 = -1
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "fb_latency_seconds_bucket") {
			continue
		}
		v, err := strconv.ParseFloat(line[strings.LastIndexByte(line, ' ')+1:], 64)
		if err != nil {
			t.Fatalf("parse bucket value in %q: %v", line, err)
		}
		if v < lastCum {
			t.Fatalf("buckets not cumulative: %q after %g", line, lastCum)
		}
		lastCum = v
		if strings.Contains(line, `le="+Inf"`) {
			infCum = v
		}
	}
	if infCum != 3 {
		t.Fatalf("+Inf cumulative = %g, want 3", infCum)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "", L("path", "a\"b\\c\nd")).Inc()
	var sb strings.Builder
	if err := r.WriteProm(&sb); err != nil {
		t.Fatalf("WriteProm: %v", err)
	}
	out := sb.String()
	validateProm(t, out)
	if !strings.Contains(out, `path="a\"b\\c\nd"`) {
		t.Fatalf("label not escaped:\n%s", out)
	}
}

func TestFormatFloatSpecials(t *testing.T) {
	for _, tc := range []struct {
		v    float64
		want string
	}{
		{math.Inf(1), "+Inf"},
		{math.Inf(-1), "-Inf"},
		{1.5, "1.5"},
		{1e-6, "1e-06"},
	} {
		if got := formatFloat(tc.v); got != tc.want {
			t.Fatalf("formatFloat(%v) = %q, want %q", tc.v, got, tc.want)
		}
	}
	if got := formatFloat(math.NaN()); got != "NaN" {
		t.Fatalf("formatFloat(NaN) = %q", got)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "").Add(2)
	r.Histogram("h_seconds", "", []float64{1, 2}).Observe(1.5)
	s := r.Snapshot()
	if len(s.Families) != 2 {
		t.Fatalf("families = %d, want 2", len(s.Families))
	}
	m := s.Find("h_seconds")
	if m == nil || m.Hist == nil || m.Hist.Count != 1 {
		t.Fatalf("hist snapshot = %+v", m)
	}
	if got := fmt.Sprintf("%v", m.Hist.Counts); got != "[0 1 0]" {
		t.Fatalf("counts = %s, want [0 1 0]", got)
	}
}
