package dataset

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/histogram"
	"repro/internal/imagegen"
)

func testItems() []Item {
	return []Item{
		{ID: 0, Category: "A", Feature: []float64{1, 0}},
		{ID: 1, Category: "A", Feature: []float64{0.9, 0.1}},
		{ID: 2, Category: "B", Feature: []float64{0, 1}},
		{ID: 3, Category: "B", Feature: []float64{0.1, 0.9}},
		{ID: 4, Category: "C", Feature: []float64{0.5, 0.5}},
	}
}

func TestFromItems(t *testing.T) {
	d, err := FromItems(testItems(), []string{"A", "B"})
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 5 || d.Dim != 2 {
		t.Errorf("Len=%d Dim=%d", d.Len(), d.Dim)
	}
	if d.Relevant("A") != 2 || d.Relevant("C") != 1 || d.Relevant("Z") != 0 {
		t.Error("Relevant counts wrong")
	}
	if !d.IsGood(0, "A") || d.IsGood(2, "A") {
		t.Error("IsGood oracle wrong")
	}
	feats := d.Features()
	if len(feats) != 5 || feats[4][0] != 0.5 {
		t.Error("Features view wrong")
	}
}

func TestFromItemsValidation(t *testing.T) {
	if _, err := FromItems(nil, nil); err == nil {
		t.Error("empty items should error")
	}
	bad := testItems()
	bad[1].Feature = []float64{1}
	if _, err := FromItems(bad, nil); err == nil {
		t.Error("ragged features should error")
	}
}

func TestSampleQueries(t *testing.T) {
	d, _ := FromItems(testItems(), []string{"A", "B"})
	rng := rand.New(rand.NewSource(1))
	qs, err := d.SampleQueries(rng, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 10 {
		t.Fatalf("got %d queries", len(qs))
	}
	for _, q := range qs {
		cat := d.Items[q].Category
		if cat != "A" && cat != "B" {
			t.Fatalf("query %d from non-query category %s", q, cat)
		}
	}
	// Small n samples without replacement: 4 distinct pool items.
	qs4, _ := d.SampleQueries(rng, 4)
	seen := map[int]bool{}
	for _, q := range qs4 {
		if seen[q] {
			t.Error("duplicate query before pool exhaustion")
		}
		seen[q] = true
	}
}

func TestSampleQueriesErrors(t *testing.T) {
	d, _ := FromItems(testItems(), nil)
	rng := rand.New(rand.NewSource(1))
	if _, err := d.SampleQueries(rng, 3); err == nil {
		t.Error("no query categories should error")
	}
	d2, _ := FromItems(testItems(), []string{"Missing"})
	if _, err := d2.SampleQueries(rng, 3); err == nil {
		t.Error("empty query pool should error")
	}
}

func TestSampleQueriesFromCategory(t *testing.T) {
	d, _ := FromItems(testItems(), []string{"A"})
	rng := rand.New(rand.NewSource(2))
	qs, err := d.SampleQueriesFromCategory(rng, "B", 6)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range qs {
		if d.Items[q].Category != "B" {
			t.Fatalf("query %d not from B", q)
		}
	}
	if _, err := d.SampleQueriesFromCategory(rng, "Nope", 1); err == nil {
		t.Error("missing category should error")
	}
}

func TestBuildFromGenerator(t *testing.T) {
	cfg := imagegen.IMSILike(11, 0.02)
	d, err := Build(cfg, histogram.DefaultExtractor)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != cfg.TotalCount() {
		t.Errorf("Len = %d, want %d", d.Len(), cfg.TotalCount())
	}
	if d.Dim != 32 {
		t.Errorf("Dim = %d", d.Dim)
	}
	if len(d.QueryCats) != 7 {
		t.Errorf("QueryCats = %v", d.QueryCats)
	}
	for _, it := range d.Items[:5] {
		var sum float64
		for _, v := range it.Feature {
			if v < 0 {
				t.Fatal("negative bin")
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("item %d histogram sum %v", it.ID, sum)
		}
	}
	// ByCategory index is consistent.
	total := 0
	for cat, idxs := range d.ByCategory {
		total += len(idxs)
		for _, i := range idxs {
			if d.Items[i].Category != cat {
				t.Fatalf("index inconsistency for %s", cat)
			}
		}
	}
	if total != d.Len() {
		t.Errorf("category index covers %d of %d", total, d.Len())
	}
}

func TestBuildInvalidConfig(t *testing.T) {
	cfg := imagegen.IMSILike(1, 0.02)
	cfg.ImageW = 0
	if _, err := Build(cfg, histogram.DefaultExtractor); err == nil {
		t.Error("invalid config should error")
	}
}

func TestSameCategoryCloserOnAverage(t *testing.T) {
	// Sanity check of the generator + extractor pipeline: average same-
	// category distance must be smaller than cross-category distance, but
	// with enough overlap that retrieval is non-trivial.
	cfg := imagegen.IMSILike(5, 0.05)
	d, err := Build(cfg, histogram.DefaultExtractor)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	var same, cross float64
	var nSame, nCross int
	for trial := 0; trial < 3000; trial++ {
		i := rng.Intn(d.Len())
		j := rng.Intn(d.Len())
		if i == j {
			continue
		}
		var dist float64
		for b := range d.Items[i].Feature {
			diff := d.Items[i].Feature[b] - d.Items[j].Feature[b]
			dist += diff * diff
		}
		dist = math.Sqrt(dist)
		if d.Items[i].Category == d.Items[j].Category {
			same += dist
			nSame++
		} else {
			cross += dist
			nCross++
		}
	}
	if nSame < 20 || nCross < 20 {
		t.Skip("too few pairs sampled")
	}
	avgSame, avgCross := same/float64(nSame), cross/float64(nCross)
	if avgSame >= avgCross {
		t.Errorf("same-category avg distance %v not below cross-category %v", avgSame, avgCross)
	}
	if avgSame < 0.2*avgCross {
		t.Errorf("categories too separable (%v vs %v): retrieval would be trivial", avgSame, avgCross)
	}
}
