// Package dataset assembles the experimental collection of §5: it renders
// the synthetic image collection, extracts 32-bin HSV histograms, records
// category labels, and provides the ground-truth relevance oracle ("for
// each query image, any image in the same category was considered a good
// match... regardless of their color similarity").
package dataset

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/histogram"
	"repro/internal/imagegen"
	"repro/internal/store"
)

// Item is one database object: a feature vector with its category label.
type Item struct {
	ID       int
	Category string
	Theme    string
	Feature  []float64 // normalized colour histogram (sums to 1)
}

// Dataset is the collection the retrieval engine searches. Feature
// vectors live behind one contiguous row-major store.Backend — an
// in-heap FlatMatrix for generated collections, or an mmap-resident
// MmapMatrix for collections opened from FBMX files — and every
// Item.Feature is a view into it, so the scan kernels stream the whole
// collection as one slab regardless of where it resides.
type Dataset struct {
	Items      []Item
	Dim        int
	ByCategory map[string][]int // category → item indices
	QueryCats  []string         // categories queries are sampled from

	mat store.Backend
}

// Build generates the collection from cfg and extracts features with the
// given extractor.
func Build(cfg imagegen.Config, ex histogram.Extractor) (*Dataset, error) {
	imgs, err := imagegen.Generate(cfg)
	if err != nil {
		return nil, err
	}
	if len(imgs) == 0 {
		return nil, errors.New("dataset: configuration generates no images")
	}
	d := &Dataset{
		Dim:        ex.Bins(),
		ByCategory: make(map[string][]int),
		QueryCats:  cfg.QueryCategoryNames(),
	}
	mat, err := store.NewFlatMatrix(len(imgs), ex.Bins())
	if err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	d.mat = mat
	for _, g := range imgs {
		feat, err := ex.Extract(g.Image)
		if err != nil {
			return nil, fmt.Errorf("dataset: extracting image %d: %w", g.ID, err)
		}
		i := len(d.Items)
		if err := mat.SetRow(i, feat); err != nil {
			return nil, fmt.Errorf("dataset: %w", err)
		}
		d.ByCategory[g.Category] = append(d.ByCategory[g.Category], i)
		d.Items = append(d.Items, Item{ID: g.ID, Category: g.Category, Theme: g.Theme, Feature: mat.Row(i)})
	}
	return d, nil
}

// FromItems builds a dataset directly from items, for tests and custom
// collections. Every feature must have the same length.
func FromItems(items []Item, queryCats []string) (*Dataset, error) {
	if len(items) == 0 {
		return nil, errors.New("dataset: no items")
	}
	dim := len(items[0].Feature)
	d := &Dataset{Dim: dim, ByCategory: make(map[string][]int), QueryCats: queryCats}
	mat, err := store.NewFlatMatrix(len(items), dim)
	if err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	d.mat = mat
	for i, it := range items {
		if len(it.Feature) != dim {
			return nil, fmt.Errorf("dataset: item %d has dimension %d, want %d", i, len(it.Feature), dim)
		}
		if err := mat.SetRow(i, it.Feature); err != nil {
			return nil, fmt.Errorf("dataset: %w", err)
		}
		it.Feature = mat.Row(i)
		d.ByCategory[it.Category] = append(d.ByCategory[it.Category], i)
		d.Items = append(d.Items, it)
	}
	return d, nil
}

// FromBackend builds a dataset directly over an existing feature
// backend — the open path for FBMX collection files, whose rows are
// served in place (mmap-resident) rather than copied into the heap.
// items supplies per-row metadata positionally aligned with the backend
// (Feature fields are ignored and replaced by backend views); a nil
// items gives every row an unlabeled item (empty category), which is
// sufficient for serving externally-scored sessions where relevance
// comes from the client, not the category oracle.
func FromBackend(b store.Backend, items []Item, queryCats []string) (*Dataset, error) {
	if b == nil || b.Len() == 0 {
		return nil, errors.New("dataset: empty backend")
	}
	if items != nil && len(items) != b.Len() {
		return nil, fmt.Errorf("dataset: %d item labels for %d rows", len(items), b.Len())
	}
	d := &Dataset{Dim: b.Dim(), ByCategory: make(map[string][]int), QueryCats: queryCats, mat: b}
	for i := 0; i < b.Len(); i++ {
		it := Item{ID: i}
		if items != nil {
			it = items[i]
		}
		it.Feature = b.Row(i)
		d.ByCategory[it.Category] = append(d.ByCategory[it.Category], i)
		d.Items = append(d.Items, it)
	}
	return d, nil
}

// Len returns the collection size.
func (d *Dataset) Len() int { return len(d.Items) }

// Feature returns item i's feature vector through the bounds-checked
// accessor: an out-of-range index (e.g. from an unvalidated client
// request) returns an error wrapping store.ErrOutOfRange instead of
// panicking.
func (d *Dataset) Feature(i int) ([]float64, error) {
	row, err := store.RowChecked(d.mat, i)
	if err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	return row, nil
}

// Relevant returns the number of items in the given category — the
// denominator of the recall metric.
func (d *Dataset) Relevant(category string) int { return len(d.ByCategory[category]) }

// IsGood implements the paper's relevance oracle: item i is a good match
// for a query from queryCategory iff it belongs to the same category.
func (d *Dataset) IsGood(i int, queryCategory string) bool {
	return d.Items[i].Category == queryCategory
}

// Features returns the feature matrix as a slice of rows (aliasing the
// backend; callers must not mutate).
func (d *Dataset) Features() [][]float64 {
	return store.RowsOf(d.mat)
}

// Matrix returns the feature backend the collection is served from
// (aliased; callers must not mutate).
func (d *Dataset) Matrix() store.Backend { return d.mat }

// SampleQueries draws n item indices uniformly at random from the query
// categories, without replacement when possible (with replacement once the
// pool is exhausted). The paper samples queries randomly from the 2,491
// images of the 7 selected categories.
func (d *Dataset) SampleQueries(rng *rand.Rand, n int) ([]int, error) {
	if len(d.QueryCats) == 0 {
		return nil, errors.New("dataset: no query categories configured")
	}
	var pool []int
	for _, c := range d.QueryCats {
		pool = append(pool, d.ByCategory[c]...)
	}
	if len(pool) == 0 {
		return nil, errors.New("dataset: query categories contain no items")
	}
	out := make([]int, 0, n)
	perm := rng.Perm(len(pool))
	for len(out) < n {
		for _, p := range perm {
			if len(out) == n {
				break
			}
			out = append(out, pool[p])
		}
	}
	return out, nil
}

// SampleQueriesFromCategory draws n item indices from one category.
func (d *Dataset) SampleQueriesFromCategory(rng *rand.Rand, category string, n int) ([]int, error) {
	pool := d.ByCategory[category]
	if len(pool) == 0 {
		return nil, fmt.Errorf("dataset: category %q has no items", category)
	}
	out := make([]int, 0, n)
	for len(out) < n {
		for _, p := range rng.Perm(len(pool)) {
			if len(out) == n {
				break
			}
			out = append(out, pool[p])
		}
	}
	return out, nil
}
