// Memory-mapped FBMX open path. Gated to unix-like platforms with a
// little-endian word order: the mapping reinterprets the file's
// little-endian float64 payload in place, so a big-endian host (or a
// platform without syscall.Mmap) takes the decode-into-heap fallback in
// mmap_portable.go instead.

//go:build (linux || darwin || freebsd || netbsd || openbsd || dragonfly) && (amd64 || arm64 || 386 || arm || riscv64 || loong64 || ppc64le || mips64le || mipsle)

package store

import (
	"fmt"
	"os"
	"syscall"
	"unsafe"
)

// OpenMmap opens the FBMX collection at path as a read-only file
// mapping. The header is validated eagerly (shape, header CRC, exact
// file size); the payload checksum is deferred to Verify so the open
// itself touches no payload pages. All format failures wrap ErrCorrupt;
// a missing file satisfies errors.Is(err, os.ErrNotExist).
func OpenMmap(path string) (*MmapMatrix, error) {
	//fbvet:ok mmap requires a real *os.File descriptor; read-only open outside the faultfs crash schedules
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if info.Size() < fbmxHeaderPage {
		return nil, fmt.Errorf("%w: FBMX file %s is %d bytes, want at least the %d-byte header page", ErrCorrupt, path, info.Size(), fbmxHeaderPage)
	}
	var hdr [fbmxHeaderSize]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		return nil, fmt.Errorf("store: reading FBMX header of %s: %w", path, err)
	}
	n, dim, dataCRC, err := parseFBMXHeader(hdr[:], info.Size())
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	mapped, err := syscall.Mmap(int(f.Fd()), 0, int(info.Size()), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("store: mmap %s: %w", path, err)
	}
	payload := mapped[fbmxHeaderPage:]
	// The payload begins on a page boundary of a page-aligned mapping,
	// so the float64 view is 8-byte aligned by construction.
	data := unsafe.Slice((*float64)(unsafe.Pointer(&payload[0])), n*dim)
	return &MmapMatrix{data: data, n: n, dim: dim, path: path, dataCRC: dataCRC, mapped: mapped}, nil
}

func munmap(b []byte) error { return syscall.Munmap(b) }

// floatsAsBytes reinterprets the float64 slab as its underlying bytes —
// exactly the file's little-endian payload on the platforms this build
// tag admits.
func floatsAsBytes(v []float64) []byte {
	if len(v) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), 8*len(v))
}
