// Portable FBMX open path for platforms without a little-endian mmap:
// the file is read and decoded into the heap. Semantics match the
// mapped path exactly (same validation, same sentinels, bitwise-equal
// rows); only residency differs, which MmapMatrix.Resident reports.

//go:build !((linux || darwin || freebsd || netbsd || openbsd || dragonfly) && (amd64 || arm64 || 386 || arm || riscv64 || loong64 || ppc64le || mips64le || mipsle))

package store

import (
	"encoding/binary"
	"math"
	"os"
)

// OpenMmap opens the FBMX collection at path by decoding it into the
// heap. Unlike the mapped path, the payload checksum is verified here
// eagerly — the bytes are all in hand anyway.
func OpenMmap(path string) (*MmapMatrix, error) {
	//fbvet:ok portable fallback of the mmap open path; read-only, outside the faultfs crash schedules
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	m, err := DecodeFBMX(raw)
	if err != nil {
		return nil, err
	}
	dataCRC := binary.LittleEndian.Uint32(raw[24:28])
	return &MmapMatrix{data: m.data, n: m.n, dim: m.dim, path: path, dataCRC: dataCRC}, nil
}

// munmap is never reached on this build (MmapMatrix.mapped stays nil);
// it exists so mmap.go compiles identically everywhere.
func munmap([]byte) error { return nil }

// floatsAsBytes re-encodes the slab as the file's little-endian payload
// bytes, endianness-independently.
func floatsAsBytes(v []float64) []byte {
	buf := make([]byte, 8*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(x))
	}
	return buf
}
