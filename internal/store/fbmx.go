package store

// FBMX is the on-disk form of a feature collection: a page-aligned,
// CRC-headered row-major float64 matrix, written once and opened
// read-only — usually through OpenMmap, which maps the payload straight
// into the scan kernels' address space (no heap copy of the collection).
//
// Format (little-endian):
//
//	magic   [4]byte  "FBMX"
//	version uint32   currently 1
//	n       uint64   number of rows
//	dim     uint64   row dimensionality
//	dataCRC uint32   IEEE checksum of the payload bytes
//	hdrCRC  uint32   IEEE checksum of the 28 header bytes before it
//	pad     zeros to fbmxHeaderPage (4096)
//	payload n*dim float64, row-major
//
// The payload starts at a page boundary, so a read-only mmap of the file
// yields an 8-byte-aligned float64 slab and whole-page access patterns
// for the tiled scans. Files are written atomically (tmp + fsync +
// rename + directory fsync, like persist.Manifest), so a crash leaves
// either no file or a complete one. All parse failures wrap ErrCorrupt.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"path/filepath"

	"repro/internal/persist"
)

var fbmxMagic = [4]byte{'F', 'B', 'M', 'X'}

// FBMXVersion is the current collection file format version.
const FBMXVersion = 1

// fbmxHeaderPage is the page-aligned size of the header block; the
// payload begins at this offset.
const fbmxHeaderPage = 4096

// fbmxHeaderSize is the meaningful prefix of the header block.
const fbmxHeaderSize = 4 + 4 + 8 + 8 + 4 + 4

// maxFBMXSide bounds n and dim read from untrusted files so their
// product cannot overflow and a corrupt header cannot trigger an
// enormous allocation beyond the input's own size.
const maxFBMXSide = 1 << 31

// WriteFBMX writes the backend's rows to path as an FBMX collection
// file, atomically: a temporary file is written, fsynced, renamed into
// place, and the directory entry made durable.
func WriteFBMX(path string, b Backend) error {
	return WriteFBMXFS(nil, path, b)
}

// WriteFBMXFS is WriteFBMX with every filesystem operation routed
// through fs (nil means the real filesystem) — the fault-injection seam
// for collection writes.
func WriteFBMXFS(fsys persist.FS, path string, b Backend) error {
	if b == nil || b.Len() == 0 || b.Dim() <= 0 {
		return fmt.Errorf("store: cannot write empty collection to %s", path)
	}
	fsys = persist.OrOS(fsys)
	n, dim := b.Len(), b.Dim()
	tmp := path + ".tmp"
	f, err := persist.CreateFile(fsys, tmp)
	if err != nil {
		return err
	}
	cleanup := func(err error) error {
		_ = f.Close()
		_ = fsys.Remove(tmp)
		return err
	}
	// Single pass over the rows: reserve the header page, stream the
	// payload through one reused row buffer while accumulating its
	// checksum, then drop the finalized header in at offset 0. The file
	// only becomes visible at the rename below, so the temporarily
	// zeroed header is never observable.
	hdr := make([]byte, fbmxHeaderPage)
	if _, err := f.Write(hdr); err != nil {
		return cleanup(err)
	}
	rowBuf := make([]byte, 8*dim)
	crc := crc32.NewIEEE()
	for i := 0; i < n; i++ {
		encodeRow(rowBuf, b.Row(i))
		crc.Write(rowBuf)
		if _, err := f.Write(rowBuf); err != nil {
			return cleanup(err)
		}
	}
	copy(hdr[0:4], fbmxMagic[:])
	binary.LittleEndian.PutUint32(hdr[4:8], FBMXVersion)
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(n))
	binary.LittleEndian.PutUint64(hdr[16:24], uint64(dim))
	binary.LittleEndian.PutUint32(hdr[24:28], crc.Sum32())
	binary.LittleEndian.PutUint32(hdr[28:32], crc32.ChecksumIEEE(hdr[:28]))
	if _, err := f.WriteAt(hdr, 0); err != nil {
		return cleanup(err)
	}
	if err := f.Sync(); err != nil {
		return cleanup(err)
	}
	if err := f.Close(); err != nil {
		_ = fsys.Remove(tmp)
		return err
	}
	if err := fsys.Rename(tmp, path); err != nil {
		_ = fsys.Remove(tmp)
		return err
	}
	return fsys.SyncDir(filepath.Dir(path))
}

func encodeRow(dst []byte, row []float64) {
	for j, x := range row {
		binary.LittleEndian.PutUint64(dst[8*j:], math.Float64bits(x))
	}
}

// parseFBMXHeader validates the header block of an FBMX image and
// returns its shape and payload checksum. size is the total file (or
// buffer) length, checked against the shape. All failures wrap
// ErrCorrupt.
func parseFBMXHeader(data []byte, size int64) (n, dim int, dataCRC uint32, err error) {
	if len(data) < fbmxHeaderSize {
		return 0, 0, 0, fmt.Errorf("%w: FBMX header is %d bytes, want at least %d", ErrCorrupt, len(data), fbmxHeaderSize)
	}
	if [4]byte(data[0:4]) != fbmxMagic {
		return 0, 0, 0, fmt.Errorf("%w: bad FBMX magic %q", ErrCorrupt, data[0:4])
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != FBMXVersion {
		return 0, 0, 0, fmt.Errorf("%w: unsupported FBMX version %d", ErrCorrupt, v)
	}
	if want, got := binary.LittleEndian.Uint32(data[28:32]), crc32.ChecksumIEEE(data[:28]); want != got {
		return 0, 0, 0, fmt.Errorf("%w: FBMX header checksum mismatch (stored %08x, computed %08x)", ErrCorrupt, want, got)
	}
	un := binary.LittleEndian.Uint64(data[8:16])
	udim := binary.LittleEndian.Uint64(data[16:24])
	if un == 0 || udim == 0 || un >= maxFBMXSide || udim >= maxFBMXSide {
		return 0, 0, 0, fmt.Errorf("%w: implausible FBMX shape %dx%d", ErrCorrupt, un, udim)
	}
	// Compare element counts, not byte counts: un and udim are each
	// < 2^31, so un*udim fits a uint64 exactly, whereas multiplying the
	// product by 8 (or converting to int64) could wrap and let a crafted
	// header with an astronomically large shape masquerade as a tiny
	// file.
	if size < fbmxHeaderPage || (size-fbmxHeaderPage)%8 != 0 {
		return 0, 0, 0, fmt.Errorf("%w: FBMX file is %d bytes, not a whole float64 payload past the header page", ErrCorrupt, size)
	}
	if elems := uint64(size-fbmxHeaderPage) / 8; un*udim != elems {
		return 0, 0, 0, fmt.Errorf("%w: FBMX file holds %d payload elements, want %d for a %dx%d collection", ErrCorrupt, elems, un*udim, un, udim)
	}
	return int(un), int(udim), binary.LittleEndian.Uint32(data[24:28]), nil
}

// verifyFBMXPayload checks the payload bytes against the header's
// checksum.
func verifyFBMXPayload(payload []byte, dataCRC uint32) error {
	if got := crc32.ChecksumIEEE(payload); got != dataCRC {
		return fmt.Errorf("%w: FBMX payload checksum mismatch (stored %08x, computed %08x)", ErrCorrupt, dataCRC, got)
	}
	return nil
}

// DecodeFBMX parses a complete FBMX image from memory into a fresh
// in-heap FlatMatrix, verifying both checksums. It is the portable
// open path (used when mmap is unavailable) and the fuzzing target: any
// input either decodes fully or returns an error wrapping ErrCorrupt —
// never a panic, never an allocation beyond the input's own size.
func DecodeFBMX(data []byte) (*FlatMatrix, error) {
	if len(data) < fbmxHeaderPage {
		return nil, fmt.Errorf("%w: FBMX image is %d bytes, want at least the %d-byte header page", ErrCorrupt, len(data), fbmxHeaderPage)
	}
	n, dim, dataCRC, err := parseFBMXHeader(data, int64(len(data)))
	if err != nil {
		return nil, err
	}
	payload := data[fbmxHeaderPage:]
	if err := verifyFBMXPayload(payload, dataCRC); err != nil {
		return nil, err
	}
	vals := make([]float64, n*dim)
	for i := range vals {
		vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[8*i:]))
	}
	return &FlatMatrix{data: vals, n: n, dim: dim}, nil
}
