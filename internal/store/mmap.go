package store

import (
	"fmt"
	"sync/atomic"
)

// MmapMatrix is a read-only, file-resident feature collection: the
// payload of an FBMX file viewed in place. On platforms with mmap
// support the float64 slab is the mapped file itself — opening a
// collection costs no heap proportional to its size, the OS pages rows
// in on first touch and evicts them under memory pressure, and several
// processes serving the same collection share one physical copy. On
// other platforms OpenMmap falls back to reading the file into the heap
// (mmap_portable.go), with identical semantics except residency.
//
// Lifetime rules: Row and Slab views alias the mapping and become
// invalid at Close — Close after the last retrieval, never while a scan
// is in flight (cmd/fbserve closes collections only at shutdown, after
// the HTTP server has drained). MmapMatrix is immutable and therefore
// trivially safe for concurrent readers.
type MmapMatrix struct {
	data   []float64
	n, dim int
	path   string
	// dataCRC is the header's payload checksum; Verify checks the live
	// mapping against it.
	dataCRC uint32
	mapped  []byte // the raw mapping; nil on the portable fallback
	closed  atomic.Bool
}

// Len returns the number of rows.
func (m *MmapMatrix) Len() int { return m.n }

// Dim returns the row dimensionality.
func (m *MmapMatrix) Dim() int { return m.dim }

// Path returns the backing file's path.
func (m *MmapMatrix) Path() string { return m.path }

// Resident reports whether the collection is served from a live file
// mapping (false on the portable read-into-heap fallback).
func (m *MmapMatrix) Resident() bool { return m.mapped != nil }

// Row returns row i as a full-capacity-clipped view into the mapping.
// The view is read-only: the mapping is PROT_READ, so a write through it
// faults instead of corrupting the collection.
func (m *MmapMatrix) Row(i int) []float64 {
	off := i * m.dim
	return m.data[off : off+m.dim : off+m.dim]
}

// Slab returns the half-open row range [lo, hi) as one contiguous slice.
func (m *MmapMatrix) Slab(lo, hi int) []float64 {
	return m.data[lo*m.dim : hi*m.dim]
}

// Verify re-checks the payload checksum against the live mapping,
// touching every page. OpenMmap validates the header eagerly but defers
// the payload walk to keep cold opens O(1); long-lived servers call
// Verify once at startup, benchmarks measuring cold-page behaviour skip
// it.
func (m *MmapMatrix) Verify() error {
	if m.closed.Load() {
		return fmt.Errorf("store: Verify on closed mapping of %s", m.path)
	}
	return verifyFBMXPayload(floatsAsBytes(m.data), m.dataCRC)
}

// Close releases the mapping. Views returned by Row and Slab must not be
// used afterwards. Close is idempotent.
func (m *MmapMatrix) Close() error {
	if m.closed.Swap(true) {
		return nil
	}
	m.data = nil
	if m.mapped == nil {
		return nil
	}
	mapped := m.mapped
	m.mapped = nil
	return munmap(mapped)
}
