package store

import (
	"testing"
)

func TestFromRowsAndAccessors(t *testing.T) {
	rows := [][]float64{{1, 2, 3}, {4, 5, 6}}
	m, err := FromRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 2 || m.Dim() != 3 {
		t.Fatalf("shape = %dx%d", m.Len(), m.Dim())
	}
	r1 := m.Row(1)
	if r1[0] != 4 || r1[2] != 6 {
		t.Errorf("Row(1) = %v", r1)
	}
	// FromRows copies: mutating the source must not change the matrix.
	rows[0][0] = 99
	if m.Row(0)[0] != 1 {
		t.Error("FromRows aliased its input")
	}
	if len(m.Data()) != 6 {
		t.Errorf("Data length = %d", len(m.Data()))
	}
	if got := m.Slab(1, 2); len(got) != 3 || got[0] != 4 {
		t.Errorf("Slab(1,2) = %v", got)
	}
}

func TestFromRowsValidation(t *testing.T) {
	if _, err := FromRows(nil); err == nil {
		t.Error("empty collection should error")
	}
	if _, err := FromRows([][]float64{{}}); err == nil {
		t.Error("zero-dim rows should error")
	}
	if _, err := FromRows([][]float64{{1, 2}, {3}}); err == nil {
		t.Error("ragged rows should error")
	}
}

func TestFromData(t *testing.T) {
	data := []float64{1, 2, 3, 4}
	m, err := FromData(data, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	// FromData aliases: a write through the matrix is visible in data.
	m.SetRow(0, []float64{7, 8})
	if data[0] != 7 || data[1] != 8 {
		t.Errorf("data = %v", data)
	}
	if _, err := FromData(data, 3, 2); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := FromData(data, 0, 2); err == nil {
		t.Error("zero rows should error")
	}
}

func TestRowsViewsShareStorage(t *testing.T) {
	m, err := NewFlatMatrix(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	rows := m.Rows()
	rows[2][1] = 42
	if m.Row(2)[1] != 42 {
		t.Error("Rows() views should alias the backing storage")
	}
}

func TestRowViewCapacityClipped(t *testing.T) {
	m, _ := NewFlatMatrix(2, 2)
	r := m.Row(0)
	if cap(r) != 2 {
		t.Errorf("row view capacity = %d, want 2 (clipped so append cannot clobber the next row)", cap(r))
	}
}
