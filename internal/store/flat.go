// Package store provides the contiguous feature storage backing the
// retrieval core. A FlatMatrix keeps every feature vector of a collection
// in one row-major []float64, so sequential scans walk memory linearly
// (one cache-friendly stream instead of a pointer chase through per-row
// allocations) and distance kernels can slice rows without bounds churn.
//
// DESIGN.md ("Flat feature store") describes how the retrieval layers
// (knn, engine, dataset) share one FlatMatrix without copying.
package store

import (
	"errors"
	"fmt"
)

// FlatMatrix is an n×dim row-major matrix of float64 features.
type FlatMatrix struct {
	data []float64
	n    int
	dim  int
}

// NewFlatMatrix allocates a zeroed n×dim matrix.
func NewFlatMatrix(n, dim int) (*FlatMatrix, error) {
	if n <= 0 || dim <= 0 {
		return nil, fmt.Errorf("store: invalid matrix shape %dx%d", n, dim)
	}
	return &FlatMatrix{data: make([]float64, n*dim), n: n, dim: dim}, nil
}

// FromRows copies the given rows into a fresh contiguous matrix. Every row
// must have the same length.
func FromRows(rows [][]float64) (*FlatMatrix, error) {
	if len(rows) == 0 {
		return nil, errors.New("store: empty collection")
	}
	dim := len(rows[0])
	if dim == 0 {
		return nil, errors.New("store: zero-dimensional rows")
	}
	m := &FlatMatrix{data: make([]float64, len(rows)*dim), n: len(rows), dim: dim}
	for i, r := range rows {
		if len(r) != dim {
			return nil, fmt.Errorf("store: row %d has dimension %d, want %d", i, len(r), dim)
		}
		copy(m.data[i*dim:(i+1)*dim], r)
	}
	return m, nil
}

// FromData wraps an existing row-major backing slice (aliased, not
// copied). len(data) must equal n*dim.
func FromData(data []float64, n, dim int) (*FlatMatrix, error) {
	if n <= 0 || dim <= 0 {
		return nil, fmt.Errorf("store: invalid matrix shape %dx%d", n, dim)
	}
	if len(data) != n*dim {
		return nil, fmt.Errorf("store: backing slice has %d elements, want %d", len(data), n*dim)
	}
	return &FlatMatrix{data: data, n: n, dim: dim}, nil
}

// Len returns the number of rows.
func (m *FlatMatrix) Len() int { return m.n }

// Dim returns the row dimensionality.
func (m *FlatMatrix) Dim() int { return m.dim }

// Row returns row i as a full-capacity-clipped view into the backing
// slice. The view aliases the matrix; callers must not append to it.
// Like a slice expression, Row panics on an out-of-range index — it sits
// on the scan kernels' hot path, whose callers derive i from Len.
// Serving-path code holding untrusted indices must use RowChecked, which
// returns ErrOutOfRange instead.
func (m *FlatMatrix) Row(i int) []float64 {
	off := i * m.dim
	return m.data[off : off+m.dim : off+m.dim]
}

// SetRow copies v into row i. Bounds and shape failures return errors
// wrapping ErrOutOfRange so a bad index arriving over a serving path is
// a classifiable client error, not a panic inside a handler.
func (m *FlatMatrix) SetRow(i int, v []float64) error {
	if i < 0 || i >= m.n {
		return fmt.Errorf("%w: row %d of %d", ErrOutOfRange, i, m.n)
	}
	if len(v) != m.dim {
		return fmt.Errorf("%w: row has dimension %d, want %d", ErrOutOfRange, len(v), m.dim)
	}
	copy(m.data[i*m.dim:(i+1)*m.dim], v)
	return nil
}

// Data returns the row-major backing slice (aliased; treat as read-only
// unless you own the matrix).
func (m *FlatMatrix) Data() []float64 { return m.data }

// Rows materializes the matrix as a slice of row views sharing the
// backing storage — the bridge for APIs that still take [][]float64.
func (m *FlatMatrix) Rows() [][]float64 {
	out := make([][]float64, m.n)
	for i := range out {
		out[i] = m.Row(i)
	}
	return out
}

// Slab returns the half-open row range [lo, hi) as one contiguous slice —
// the unit a scan shard walks. Panics on out-of-range bounds like a
// slice expression; use SlabChecked for untrusted ranges.
func (m *FlatMatrix) Slab(lo, hi int) []float64 {
	return m.data[lo*m.dim : hi*m.dim]
}
