package store

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// randomMatrix builds an n×dim FlatMatrix with NormFloat64 entries plus
// the awkward values an on-disk roundtrip must preserve bitwise.
func randomMatrix(t *testing.T, rng *rand.Rand, n, dim int) *FlatMatrix {
	t.Helper()
	m, err := NewFlatMatrix(n, dim)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		row := make([]float64, dim)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		if i == 0 && dim >= 4 {
			row[0], row[1], row[2], row[3] = 0, math.Copysign(0, -1), math.Inf(1), math.NaN()
		}
		if err := m.SetRow(i, row); err != nil {
			t.Fatal(err)
		}
	}
	return m
}

func writeTempFBMX(t *testing.T, m *FlatMatrix) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "coll.fbmx")
	if err := WriteFBMX(path, m); err != nil {
		t.Fatal(err)
	}
	return path
}

// rowsBitwiseEqual compares two backends row by row on float64 bit
// patterns (so NaNs and signed zeros count as preserved).
func rowsBitwiseEqual(a, b Backend) bool {
	if a.Len() != b.Len() || a.Dim() != b.Dim() {
		return false
	}
	for i := 0; i < a.Len(); i++ {
		ra, rb := a.Row(i), b.Row(i)
		for j := range ra {
			if math.Float64bits(ra[j]) != math.Float64bits(rb[j]) {
				return false
			}
		}
	}
	return true
}

// TestFBMXRoundTrip: write → OpenMmap and write → DecodeFBMX must both
// reproduce the matrix bitwise, including NaN payloads and -0.
func TestFBMXRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, shape := range []struct{ n, dim int }{{1, 1}, {3, 5}, {70, 32}, {600, 7}} {
		m := randomMatrix(t, rng, shape.n, shape.dim)
		path := writeTempFBMX(t, m)

		mm, err := OpenMmap(path)
		if err != nil {
			t.Fatalf("%dx%d: OpenMmap: %v", shape.n, shape.dim, err)
		}
		if mm.Len() != shape.n || mm.Dim() != shape.dim {
			t.Fatalf("mmap shape %dx%d, want %dx%d", mm.Len(), mm.Dim(), shape.n, shape.dim)
		}
		if err := mm.Verify(); err != nil {
			t.Fatalf("Verify: %v", err)
		}
		if !rowsBitwiseEqual(m, mm) {
			t.Fatalf("%dx%d: mmap rows differ from source", shape.n, shape.dim)
		}

		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := DecodeFBMX(raw)
		if err != nil {
			t.Fatalf("DecodeFBMX: %v", err)
		}
		if !rowsBitwiseEqual(m, dec) {
			t.Fatalf("%dx%d: decoded rows differ from source", shape.n, shape.dim)
		}
		if err := mm.Close(); err != nil {
			t.Fatal(err)
		}
		if err := mm.Close(); err != nil {
			t.Fatalf("second Close: %v", err)
		}
	}
}

// TestFBMXSlabMatchesRows pins the slab view the tiled kernels consume
// against per-row access on both backends.
func TestFBMXSlabMatchesRows(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := randomMatrix(t, rng, 40, 8)
	mm, err := OpenMmap(writeTempFBMX(t, m))
	if err != nil {
		t.Fatal(err)
	}
	defer mm.Close()
	for _, b := range []Backend{m, mm} {
		slab := b.Slab(10, 25)
		if len(slab) != 15*8 {
			t.Fatalf("slab length %d", len(slab))
		}
		for i := 0; i < 15; i++ {
			row := b.Row(10 + i)
			for j := range row {
				if math.Float64bits(slab[i*8+j]) != math.Float64bits(row[j]) {
					t.Fatalf("slab[%d,%d] != row", i, j)
				}
			}
		}
	}
}

// corrupt returns a mutated copy of raw.
func corrupt(raw []byte, mutate func([]byte)) []byte {
	c := make([]byte, len(raw))
	copy(c, raw)
	mutate(c)
	return c
}

// TestFBMXCorruptionDetected: every malformed input must be rejected
// with an error wrapping ErrCorrupt — never a panic, never silent
// acceptance.
func TestFBMXCorruptionDetected(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := randomMatrix(t, rng, 12, 6)
	path := writeTempFBMX(t, m)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"short-header", raw[:16]},
		{"header-only", raw[:fbmxHeaderPage]},
		{"bad-magic", corrupt(raw, func(b []byte) { b[0] = 'X' })},
		{"bad-version", corrupt(raw, func(b []byte) {
			binary.LittleEndian.PutUint32(b[4:8], 99)
			binary.LittleEndian.PutUint32(b[28:32], crc32.ChecksumIEEE(b[:28]))
		})},
		{"header-crc", corrupt(raw, func(b []byte) { b[9] ^= 1 })},
		{"zero-rows", corrupt(raw, func(b []byte) {
			binary.LittleEndian.PutUint64(b[8:16], 0)
			binary.LittleEndian.PutUint32(b[28:32], crc32.ChecksumIEEE(b[:28]))
		})},
		{"huge-shape", corrupt(raw, func(b []byte) {
			binary.LittleEndian.PutUint64(b[8:16], 1<<40)
			binary.LittleEndian.PutUint32(b[28:32], crc32.ChecksumIEEE(b[:28]))
		})},
		{"truncated-payload", raw[:len(raw)-8]},
		{"trailing-bytes", append(append([]byte{}, raw...), 0)},
		{"payload-flip", corrupt(raw, func(b []byte) { b[fbmxHeaderPage+3] ^= 1 })},
	}
	for _, tc := range cases {
		if _, err := DecodeFBMX(tc.data); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: DecodeFBMX error %v, want ErrCorrupt", tc.name, err)
		}
		// The same bytes on disk must be rejected by the mmap open path
		// too (payload damage surfaces at Verify).
		p := filepath.Join(t.TempDir(), "bad.fbmx")
		if err := os.WriteFile(p, tc.data, 0o644); err != nil {
			t.Fatal(err)
		}
		mm, err := OpenMmap(p)
		if err == nil {
			err = mm.Verify()
			mm.Close()
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: OpenMmap(+Verify) error %v, want ErrCorrupt", tc.name, err)
		}
	}
	if _, err := OpenMmap(filepath.Join(t.TempDir(), "missing.fbmx")); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("missing file: %v, want os.ErrNotExist", err)
	}
}

// TestFBMXShapeOverflowRejected is the regression test for the header
// size-check overflow: a CRC-valid header whose n*dim*8 wraps 64-bit
// arithmetic back to a tiny payload size must be rejected as corrupt,
// not accepted (which would panic DecodeFBMX's allocation and hand
// OpenMmap a wildly out-of-bounds slice view).
func TestFBMXShapeOverflowRejected(t *testing.T) {
	// n*dim ≈ 2.3e18, so 8*n*dim mod 2^64 = 64: with naive byte-count
	// arithmetic this 4160-byte file (64-byte payload) looks exactly the
	// right size for a ~2^61-element collection.
	const n, dim = 1073807362, 2147352580
	data := make([]byte, fbmxHeaderPage+64)
	copy(data[0:4], fbmxMagic[:])
	binary.LittleEndian.PutUint32(data[4:8], FBMXVersion)
	binary.LittleEndian.PutUint64(data[8:16], n)
	binary.LittleEndian.PutUint64(data[16:24], dim)
	binary.LittleEndian.PutUint32(data[24:28], crc32.ChecksumIEEE(data[fbmxHeaderPage:]))
	binary.LittleEndian.PutUint32(data[28:32], crc32.ChecksumIEEE(data[:28]))

	var un, ud uint64 = n, dim
	if wrapped := un * ud * 8; wrapped != 64 {
		t.Fatalf("test premise broken: 8*n*dim wraps to %d, want 64", wrapped)
	}
	if _, err := DecodeFBMX(data); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("DecodeFBMX accepted an overflowed shape: %v", err)
	}
	path := filepath.Join(t.TempDir(), "overflow.fbmx")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	mm, err := OpenMmap(path)
	if err == nil {
		mm.Close()
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("OpenMmap accepted an overflowed shape: %v", err)
	}
}

// TestFBMXAtomicWrite: a successful write leaves no temporary file, and
// writing over an existing collection replaces it whole.
func TestFBMXAtomicWrite(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	dir := t.TempDir()
	path := filepath.Join(dir, "coll.fbmx")
	first := randomMatrix(t, rng, 8, 4)
	if err := WriteFBMX(path, first); err != nil {
		t.Fatal(err)
	}
	second := randomMatrix(t, rng, 9, 4)
	if err := WriteFBMX(path, second); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("temporary file left behind: %v", err)
	}
	mm, err := OpenMmap(path)
	if err != nil {
		t.Fatal(err)
	}
	defer mm.Close()
	if !rowsBitwiseEqual(second, mm) {
		t.Error("rewrite did not replace the collection")
	}
	if err := WriteFBMX(filepath.Join(dir, "empty.fbmx"), nil); err == nil {
		t.Error("writing a nil backend should fail")
	}
}

// TestCheckedBoundsSentinels is the satellite regression: Row/SetRow/
// Slab bounds violations on the serving path surface as errors.Is-able
// ErrOutOfRange, for both backends, instead of slice-bounds panics.
func TestCheckedBoundsSentinels(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := randomMatrix(t, rng, 10, 3)
	mm, err := OpenMmap(writeTempFBMX(t, m))
	if err != nil {
		t.Fatal(err)
	}
	defer mm.Close()

	for _, b := range []Backend{m, mm} {
		for _, i := range []int{-1, 10, 1 << 30} {
			if _, err := RowChecked(b, i); !errors.Is(err, ErrOutOfRange) {
				t.Errorf("RowChecked(%d): %v, want ErrOutOfRange", i, err)
			}
		}
		if row, err := RowChecked(b, 9); err != nil || len(row) != 3 {
			t.Errorf("RowChecked(9): %v, %v", row, err)
		}
		for _, r := range [][2]int{{-1, 2}, {3, 2}, {0, 11}} {
			if _, err := SlabChecked(b, r[0], r[1]); !errors.Is(err, ErrOutOfRange) {
				t.Errorf("SlabChecked(%d,%d): %v, want ErrOutOfRange", r[0], r[1], err)
			}
		}
		if slab, err := SlabChecked(b, 0, 10); err != nil || len(slab) != 30 {
			t.Errorf("SlabChecked full: %v", err)
		}
	}

	if err := m.SetRow(-1, []float64{1, 2, 3}); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("SetRow(-1): %v, want ErrOutOfRange", err)
	}
	if err := m.SetRow(10, []float64{1, 2, 3}); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("SetRow(10): %v, want ErrOutOfRange", err)
	}
	if err := m.SetRow(0, []float64{1}); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("SetRow wrong dim: %v, want ErrOutOfRange", err)
	}
	if err := m.SetRow(0, []float64{1, 2, 3}); err != nil {
		t.Errorf("valid SetRow: %v", err)
	}
}

// TestMmapRowsAreReadOnlyViews documents the aliasing contract: rows of
// a mapped collection reflect the file, and RowsOf bridges both
// backends identically.
func TestMmapRowsAreReadOnlyViews(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := randomMatrix(t, rng, 5, 4)
	mm, err := OpenMmap(writeTempFBMX(t, m))
	if err != nil {
		t.Fatal(err)
	}
	defer mm.Close()
	rows := RowsOf(mm)
	if len(rows) != 5 || len(rows[2]) != 4 {
		t.Fatalf("RowsOf shape %dx%d", len(rows), len(rows[2]))
	}
	for i := range rows {
		for j := range rows[i] {
			if math.Float64bits(rows[i][j]) != math.Float64bits(m.Row(i)[j]) {
				t.Fatalf("RowsOf[%d][%d] differs", i, j)
			}
		}
	}
}
