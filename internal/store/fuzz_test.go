package store

// Native fuzzer for the FBMX collection parser, completing the fuzz
// plane over the three binary formats (WAL and manifest fuzzers live in
// internal/persist). Contract: any byte stream either decodes into a
// well-shaped matrix or fails with an error wrapping ErrCorrupt — never
// a panic, and never an allocation larger than the input itself (a
// corrupt shape field must not become a multi-gigabyte make).

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// fbmxImage builds a valid FBMX byte image through the real writer.
func fbmxImage(tb testing.TB, n, dim int) []byte {
	tb.Helper()
	m, err := NewFlatMatrix(n, dim)
	if err != nil {
		tb.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	row := make([]float64, dim)
	for i := 0; i < n; i++ {
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		if err := m.SetRow(i, row); err != nil {
			tb.Fatal(err)
		}
	}
	path := filepath.Join(tb.(interface{ TempDir() string }).TempDir(), "seed.fbmx")
	if err := WriteFBMX(path, m); err != nil {
		tb.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		tb.Fatal(err)
	}
	return data
}

func FuzzFBMX(f *testing.F) {
	valid := fbmxImage(f, 6, 4)
	f.Add(valid)
	f.Add(valid[:len(valid)-5])            // truncated payload
	f.Add(valid[:fbmxHeaderPage])          // header page only
	f.Add(append([]byte{}, valid[:40]...)) // torn header page
	f.Add(bytes.Repeat([]byte{0}, 64))     // zeros
	flipped := append([]byte{}, valid...)
	flipped[9] ^= 0x40 // header shape bit
	f.Add(flipped)
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeFBMX(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("DecodeFBMX returned a non-ErrCorrupt error: %v", err)
			}
			return
		}
		if m.Len() <= 0 || m.Dim() <= 0 {
			t.Fatalf("DecodeFBMX accepted empty shape %dx%d", m.Len(), m.Dim())
		}
		// The accepted shape is bounded by the input's own size.
		if want := fbmxHeaderPage + 8*m.Len()*m.Dim(); want != len(data) {
			t.Fatalf("decoded %dx%d from %d bytes, want exactly %d", m.Len(), m.Dim(), len(data), want)
		}
		// Accessors over an accepted image must be in-bounds and
		// consistent.
		if got := len(m.Slab(0, m.Len())); got != m.Len()*m.Dim() {
			t.Fatalf("full slab has %d elements, want %d", got, m.Len()*m.Dim())
		}
		if _, err := RowChecked(m, m.Len()); !errors.Is(err, ErrOutOfRange) {
			t.Fatalf("RowChecked past the end: %v", err)
		}
	})
}
