package store

import (
	"errors"
	"fmt"
)

// Backend is what the retrieval core needs from a feature collection:
// shape, per-row views, and contiguous slab access for the tiled scan
// kernels. The in-heap FlatMatrix and the mmap-resident MmapMatrix both
// satisfy it; everything above this interface (knn, dataset, engine,
// service) is backend-agnostic, and the mmap parity suite pins the two
// implementations bitwise against each other.
//
// Row and Slab return views that alias the backend's storage — callers
// must not mutate or append to them, and for an MmapMatrix the views die
// with Close (see DESIGN.md, "Multi-backend store"). Both panic on
// out-of-range arguments exactly like a slice expression; serving-path
// callers that hold untrusted indices use the checked wrappers below,
// which return ErrOutOfRange instead.
type Backend interface {
	// Len returns the number of rows.
	Len() int
	// Dim returns the row dimensionality.
	Dim() int
	// Row returns row i as a full-capacity-clipped view.
	Row(i int) []float64
	// Slab returns the half-open row range [lo, hi) as one contiguous
	// slice — the unit a scan shard or cache tile walks.
	Slab(lo, hi int) []float64
}

// ErrOutOfRange is wrapped by all bounds failures of the checked
// accessors, so a bad index arriving over the serving path surfaces as a
// classifiable client error instead of a slice-bounds panic inside an
// HTTP handler.
var ErrOutOfRange = errors.New("store: index out of range")

// ErrCorrupt is wrapped by all errors caused by malformed FBMX input, so
// callers (and the fuzzers) can classify parser failures with errors.Is.
var ErrCorrupt = errors.New("store: corrupt file")

// RowChecked returns row i of any backend, validating bounds: an
// out-of-range index returns an error wrapping ErrOutOfRange.
func RowChecked(b Backend, i int) ([]float64, error) {
	if i < 0 || i >= b.Len() {
		return nil, fmt.Errorf("%w: row %d of %d", ErrOutOfRange, i, b.Len())
	}
	return b.Row(i), nil
}

// SlabChecked returns rows [lo, hi) of any backend, validating bounds.
func SlabChecked(b Backend, lo, hi int) ([]float64, error) {
	if lo < 0 || hi < lo || hi > b.Len() {
		return nil, fmt.Errorf("%w: slab [%d, %d) of %d rows", ErrOutOfRange, lo, hi, b.Len())
	}
	return b.Slab(lo, hi), nil
}

// RowsOf materializes any backend as a slice of row views sharing the
// backing storage — the bridge for APIs that still take [][]float64.
func RowsOf(b Backend) [][]float64 {
	out := make([][]float64, b.Len())
	for i := range out {
		out[i] = b.Row(i)
	}
	return out
}
