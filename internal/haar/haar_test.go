package haar

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIsPowerOfTwo(t *testing.T) {
	for _, c := range []struct {
		n    int
		want bool
	}{{1, true}, {2, true}, {4, true}, {1024, true}, {0, false}, {-4, false}, {3, false}, {6, false}} {
		if got := IsPowerOfTwo(c.n); got != c.want {
			t.Errorf("IsPowerOfTwo(%d) = %v", c.n, got)
		}
	}
}

func TestNextPowerOfTwo(t *testing.T) {
	for _, c := range []struct{ n, want int }{{-3, 1}, {0, 1}, {1, 1}, {2, 2}, {3, 4}, {5, 8}, {17, 32}, {64, 64}} {
		if got := NextPowerOfTwo(c.n); got != c.want {
			t.Errorf("NextPowerOfTwo(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestForwardRejectsBadLength(t *testing.T) {
	for _, n := range []int{0, 3, 5, 12} {
		if _, err := Forward(make([]float64, n)); err == nil {
			t.Errorf("Forward should reject length %d", n)
		}
		if _, err := Inverse(make([]float64, n)); err == nil {
			t.Errorf("Inverse should reject length %d", n)
		}
	}
}

func TestForwardConstantSignal(t *testing.T) {
	xs := []float64{5, 5, 5, 5}
	coeffs, err := Forward(xs)
	if err != nil {
		t.Fatal(err)
	}
	// Constant signal: only the average coefficient is nonzero, and in the
	// orthonormal basis it equals √n·mean = 2·5 = 10.
	if math.Abs(coeffs[0]-10) > 1e-12 {
		t.Errorf("average coeff = %v, want 10", coeffs[0])
	}
	for i := 1; i < len(coeffs); i++ {
		if math.Abs(coeffs[i]) > 1e-12 {
			t.Errorf("detail coeff %d = %v, want 0", i, coeffs[i])
		}
	}
}

func TestForwardKnownPair(t *testing.T) {
	coeffs, err := Forward([]float64{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	// Orthonormal Haar of (1,3): smooth = (1+3)/√2 = 2√2, detail = (3-1)/√2 = √2.
	if math.Abs(coeffs[0]-2*math.Sqrt2) > 1e-12 {
		t.Errorf("smooth = %v", coeffs[0])
	}
	if math.Abs(coeffs[1]-math.Sqrt2) > 1e-12 {
		t.Errorf("detail = %v", coeffs[1])
	}
}

func TestRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{1, 2, 4, 8, 64, 256} {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
		}
		coeffs, err := Forward(xs)
		if err != nil {
			t.Fatal(err)
		}
		back, err := Inverse(coeffs)
		if err != nil {
			t.Fatal(err)
		}
		for i := range xs {
			if math.Abs(back[i]-xs[i]) > 1e-9 {
				t.Fatalf("n=%d: round trip failed at %d: %v vs %v", n, i, back[i], xs[i])
			}
		}
	}
}

func TestForwardPreservesEnergy(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 20; trial++ {
		n := 1 << (1 + rng.Intn(7))
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
		}
		coeffs, err := Forward(xs)
		if err != nil {
			t.Fatal(err)
		}
		e1, e2 := Energy(xs), Energy(coeffs)
		if math.Abs(e1-e2) > 1e-8*(1+e1) {
			t.Fatalf("trial %d: energy not preserved: %v vs %v", trial, e1, e2)
		}
	}
}

// Property: round trip holds for arbitrary signals via testing/quick.
func TestRoundTripQuick(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e8 {
				return true
			}
		}
		n := NextPowerOfTwo(len(raw))
		xs := make([]float64, n)
		copy(xs, raw)
		coeffs, err := Forward(xs)
		if err != nil {
			return false
		}
		back, err := Inverse(coeffs)
		if err != nil {
			return false
		}
		for i := range xs {
			if math.Abs(back[i]-xs[i]) > 1e-6*(1+math.Abs(xs[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestThreshold(t *testing.T) {
	coeffs := []float64{10, 0.01, -5, 0.001}
	kept := Threshold(coeffs, 0.1)
	if kept != 2 {
		t.Errorf("kept = %d, want 2", kept)
	}
	if coeffs[0] != 10 {
		t.Error("average coefficient must never be dropped")
	}
	if coeffs[1] != 0 || coeffs[3] != 0 {
		t.Error("small details should be zeroed")
	}
	if coeffs[2] != -5 {
		t.Error("large detail should survive")
	}
}

func TestThresholdKeepsAverageEvenIfSmall(t *testing.T) {
	coeffs := []float64{0.0001, 1}
	kept := Threshold(coeffs, 0.1)
	if kept != 2 || coeffs[0] != 0.0001 {
		t.Errorf("average must be kept: coeffs=%v kept=%d", coeffs, kept)
	}
}

func TestTopK(t *testing.T) {
	coeffs := []float64{7, 1, -9, 3, 0.5}
	kept := TopK(coeffs, 2)
	if kept != 3 { // 2 details + average
		t.Errorf("kept = %d", kept)
	}
	if coeffs[2] != -9 || coeffs[3] != 3 {
		t.Errorf("largest details should survive: %v", coeffs)
	}
	if coeffs[1] != 0 || coeffs[4] != 0 {
		t.Errorf("small details should be zeroed: %v", coeffs)
	}
	// k larger than available keeps everything.
	c2 := []float64{1, 2, 3}
	if kept := TopK(c2, 10); kept != 3 {
		t.Errorf("over-large k kept = %d", kept)
	}
	single := []float64{4}
	if kept := TopK(single, 0); kept != 1 {
		t.Errorf("single kept = %d", kept)
	}
}

func TestCompressDecompressLossless(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5} // non-power-of-two: exercises padding
	s, err := Compress(xs, 0)
	if err != nil {
		t.Fatal(err)
	}
	back, err := s.Decompress()
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(xs) {
		t.Fatalf("length %d, want %d", len(back), len(xs))
	}
	for i := range xs {
		if math.Abs(back[i]-xs[i]) > 1e-10 {
			t.Errorf("lossless decompress differs at %d: %v vs %v", i, back[i], xs[i])
		}
	}
}

func TestCompressLossyErrorBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	xs := make([]float64, 62) // OQP vector length at the paper's operating point
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	eps := 0.05
	s, err := Compress(xs, eps)
	if err != nil {
		t.Fatal(err)
	}
	lossless, err := Compress(xs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.StorageSize() > lossless.StorageSize() {
		t.Errorf("thresholding should not grow storage: %d > %d", s.StorageSize(), lossless.StorageSize())
	}
	back, err := s.Decompress()
	if err != nil {
		t.Fatal(err)
	}
	// In the orthonormal basis, the squared L2 error equals the energy of
	// the dropped coefficients, each of which is < eps. N=64 here, so the
	// error is below eps·√64.
	var errNorm float64
	for i := range xs {
		d := back[i] - xs[i]
		errNorm += d * d
	}
	errNorm = math.Sqrt(errNorm)
	bound := eps * math.Sqrt(64)
	if errNorm > bound {
		t.Errorf("reconstruction error %v exceeds bound %v", errNorm, bound)
	}
}

func TestCompressMoreAggressiveIsSmaller(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	xs := make([]float64, 128)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	prev := math.MaxInt
	for _, eps := range []float64{0, 0.01, 0.1, 1, 10} {
		s, err := Compress(xs, eps)
		if err != nil {
			t.Fatal(err)
		}
		if s.StorageSize() > prev {
			t.Errorf("eps=%v: storage %d grew from %d", eps, s.StorageSize(), prev)
		}
		prev = s.StorageSize()
	}
	if prev != 1 {
		t.Errorf("huge eps should keep only the average coefficient, kept %d", prev)
	}
}

func TestCompressEmpty(t *testing.T) {
	if _, err := Compress(nil, 0.1); err == nil {
		t.Error("empty signal should error")
	}
}

func TestDecompressCorruptHeaders(t *testing.T) {
	s := &Sparse{N: 3, Orig: 2, Indices: []int32{0}, Values: []float64{1}}
	if _, err := s.Decompress(); err == nil {
		t.Error("non-power-of-two N should error")
	}
	s = &Sparse{N: 2, Orig: 4, Indices: []int32{0}, Values: []float64{1}}
	if _, err := s.Decompress(); err == nil {
		t.Error("Orig > N should error")
	}
	s = &Sparse{N: 4, Orig: 4, Indices: []int32{9}, Values: []float64{1}}
	if _, err := s.Decompress(); err == nil {
		t.Error("out-of-range index should error")
	}
	s = &Sparse{N: 4, Orig: 4, Indices: []int32{-1}, Values: []float64{1}}
	if _, err := s.Decompress(); err == nil {
		t.Error("negative index should error")
	}
}

func TestEnergy(t *testing.T) {
	if got := Energy([]float64{3, 4}); got != 25 {
		t.Errorf("Energy = %v", got)
	}
	if got := Energy(nil); got != 0 {
		t.Errorf("Energy(nil) = %v", got)
	}
}
