// Package haar implements the Haar wavelet machinery referenced by the
// paper (§4, [Kai94], [Swe96]): a lifting-scheme forward/inverse 1-D Haar
// transform, multi-level decomposition, and coefficient thresholding.
//
// Two roles in this reproduction:
//
//  1. The Simplex Tree's interpolation is an *unbalanced Haar wavelet* over
//     the triangulation; package simplextree realizes it as barycentric
//     interpolation. This package supplies the classical (balanced) Haar
//     transform used to reason about and test that construction.
//  2. The paper notes that "storage requirements can be easily traded-off
//     for the accuracy of the prediction"; Compress/Decompress implement
//     that knob for stored OQP vectors by thresholding small detail
//     coefficients.
package haar

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrLength is returned when an input length is not a positive power of
// two, which the balanced transform requires.
var ErrLength = errors.New("haar: length must be a positive power of two")

// IsPowerOfTwo reports whether n is a positive power of two.
func IsPowerOfTwo(n int) bool { return n > 0 && n&(n-1) == 0 }

// NextPowerOfTwo returns the smallest power of two ≥ n (n ≥ 1).
func NextPowerOfTwo(n int) int {
	if n < 1 {
		return 1
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Forward computes the full multi-level orthonormal Haar transform of xs,
// whose length must be a power of two. The result stores the overall
// average coefficient at index 0 followed by detail coefficients from the
// coarsest to the finest level. The input is not modified.
//
// The implementation uses the lifting scheme [Swe96]:
//
//	predict: d = odd − even
//	update:  s = even + d/2     (so s is the pairwise mean)
//
// followed by per-level orthonormal rescaling so that the transform
// preserves the Euclidean norm (Parseval).
func Forward(xs []float64) ([]float64, error) {
	n := len(xs)
	if !IsPowerOfTwo(n) {
		return nil, fmt.Errorf("%w: got %d", ErrLength, n)
	}
	out := make([]float64, n)
	copy(out, xs)
	buf := make([]float64, n)
	for length := n; length > 1; length /= 2 {
		half := length / 2
		for i := 0; i < half; i++ {
			even, odd := out[2*i], out[2*i+1]
			d := odd - even              // predict
			s := even + d/2              // update: pairwise mean
			buf[i] = s * math.Sqrt2      // orthonormal smooth coefficient
			buf[half+i] = d / math.Sqrt2 // orthonormal detail coefficient
		}
		copy(out[:length], buf[:length])
	}
	// Each level multiplies the smooth part by √2, so out[0] = √n·mean —
	// exactly the orthonormal Haar basis, making the transform an isometry
	// (Parseval; verified by TestForwardPreservesEnergy).
	return out, nil
}

// Inverse reconstructs the signal from coefficients produced by Forward.
// The input is not modified.
func Inverse(coeffs []float64) ([]float64, error) {
	n := len(coeffs)
	if !IsPowerOfTwo(n) {
		return nil, fmt.Errorf("%w: got %d", ErrLength, n)
	}
	out := make([]float64, n)
	copy(out, coeffs)
	buf := make([]float64, n)
	for length := 2; length <= n; length *= 2 {
		half := length / 2
		for i := 0; i < half; i++ {
			s := out[i] / math.Sqrt2
			d := out[half+i] * math.Sqrt2
			even := s - d/2
			odd := even + d
			buf[2*i] = even
			buf[2*i+1] = odd
		}
		copy(out[:length], buf[:length])
	}
	return out, nil
}

// Threshold zeroes every detail coefficient with absolute value below eps,
// returning the number of coefficients kept (including the average term,
// which is never dropped). The slice is modified in place. This is the
// storage/accuracy trade-off knob of §3.1.
func Threshold(coeffs []float64, eps float64) int {
	kept := 0
	for i, c := range coeffs {
		if i == 0 {
			kept++
			continue
		}
		if math.Abs(c) < eps {
			coeffs[i] = 0
		} else {
			kept++
		}
	}
	return kept
}

// TopK keeps the k largest-magnitude detail coefficients (plus the average
// term) and zeroes the rest, in place. It returns the number kept.
func TopK(coeffs []float64, k int) int {
	if len(coeffs) <= 1 {
		return len(coeffs)
	}
	type ic struct {
		idx int
		abs float64
	}
	details := make([]ic, 0, len(coeffs)-1)
	for i := 1; i < len(coeffs); i++ {
		details = append(details, ic{i, math.Abs(coeffs[i])})
	}
	sort.Slice(details, func(a, b int) bool { return details[a].abs > details[b].abs })
	if k > len(details) {
		k = len(details)
	}
	drop := details[k:]
	for _, d := range drop {
		coeffs[d.idx] = 0
	}
	return k + 1
}

// Sparse is a compact representation of a thresholded coefficient vector:
// only nonzero coefficients are stored, with their positions.
type Sparse struct {
	N       int // original length (power of two ≥ the padded signal)
	Orig    int // length before padding
	Indices []int32
	Values  []float64
}

// Compress transforms xs (any positive length; zero-padded to a power of
// two), drops detail coefficients below eps, and returns the sparse
// representation. Decompress inverts it with reconstruction error bounded
// by eps per dropped coefficient (in the orthonormal basis, the L2 error
// equals the L2 norm of the dropped coefficients).
func Compress(xs []float64, eps float64) (*Sparse, error) {
	if len(xs) == 0 {
		return nil, errors.New("haar: cannot compress empty signal")
	}
	n := NextPowerOfTwo(len(xs))
	padded := make([]float64, n)
	copy(padded, xs)
	coeffs, err := Forward(padded)
	if err != nil {
		return nil, err
	}
	Threshold(coeffs, eps)
	s := &Sparse{N: n, Orig: len(xs)}
	for i, c := range coeffs {
		if c != 0 || i == 0 {
			s.Indices = append(s.Indices, int32(i))
			s.Values = append(s.Values, c)
		}
	}
	return s, nil
}

// Decompress reconstructs the (truncated) original signal.
func (s *Sparse) Decompress() ([]float64, error) {
	if s.N < s.Orig || !IsPowerOfTwo(s.N) {
		return nil, fmt.Errorf("haar: corrupt sparse header (N=%d, Orig=%d)", s.N, s.Orig)
	}
	coeffs := make([]float64, s.N)
	for i, idx := range s.Indices {
		if idx < 0 || int(idx) >= s.N {
			return nil, fmt.Errorf("haar: coefficient index %d out of range [0,%d)", idx, s.N)
		}
		coeffs[idx] = s.Values[i]
	}
	full, err := Inverse(coeffs)
	if err != nil {
		return nil, err
	}
	return full[:s.Orig], nil
}

// StorageSize returns the number of stored coefficients.
func (s *Sparse) StorageSize() int { return len(s.Values) }

// Energy returns the squared L2 norm of a coefficient (or signal) vector;
// by Parseval's identity it is invariant under Forward.
func Energy(xs []float64) float64 {
	var e float64
	for _, x := range xs {
		e += x * x
	}
	return e
}
