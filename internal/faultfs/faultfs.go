// Package faultfs is the fault-injection side of the persist.FS seam: a
// filesystem wrapper with scripted failpoints. Tests script it two ways:
//
//   - Rules target a specific operation class — "fail the 2nd fsync of
//     any path containing tree.fbwl", "tear the next write in half",
//     "ENOSPC every write from now on", "kill the process at this
//     rename" — and exercise the error paths of one writer (WAL
//     rollback-truncate, compaction cleanup, degraded-mode flips).
//
//   - SetCrashAt(n) arms a whole-run crash schedule: the nth mutating
//     operation (write, fsync, rename, truncate, remove, mkdir,
//     dir-fsync, writable open) is applied *partially* — a write
//     persists only its first half, a metadata op does not happen — and
//     every later operation fails with ErrCrashed. Combined with a
//     counting run (no crash armed, Ops() reports the total M), a
//     harness enumerates every crash point n = 1..M along
//     insert → WAL-append → compact → manifest and asserts recovery.
//
// The crash model is process-kill durability: everything the process
// wrote before the crash point is on disk (the repo's writers use
// unbuffered writes), the crashing operation may be torn, and nothing
// after it happens. Power-loss reordering (surviving an unsynced write's
// *absence*) is strictly harsher and not modeled here; the WAL's
// CRC-per-record format already covers torn tails of either origin.
package faultfs

import (
	"errors"
	"fmt"
	"os"
	"strings"
	"sync"
	"syscall"

	"repro/internal/persist"
)

// ErrInjected marks a scripted (rule-based) fault.
var ErrInjected = errors.New("faultfs: injected fault")

// ErrCrashed marks every operation at and after an armed crash point —
// the filesystem of a process that no longer exists.
var ErrCrashed = errors.New("faultfs: crashed")

// Op classifies the filesystem operations rules can target.
type Op string

const (
	OpOpen     Op = "open"  // writable OpenFile (O_WRONLY/O_RDWR/O_CREATE/O_TRUNC)
	OpWrite    Op = "write" // File.Write and File.WriteAt
	OpSync     Op = "sync"  // File.Sync
	OpTruncate Op = "truncate"
	OpRename   Op = "rename"
	OpRemove   Op = "remove"
	OpMkdir    Op = "mkdir"
	OpSyncDir  Op = "syncdir"
)

// Kind is what happens when a rule fires.
type Kind int

const (
	// Fail returns ErrInjected without touching the disk.
	Fail Kind = iota
	// ENOSPC returns an error satisfying errors.Is(err, syscall.ENOSPC)
	// without touching the disk.
	ENOSPC
	// ShortWrite applies only the first half of the buffer, then returns
	// ErrInjected (non-write operations just fail). The torn bytes stay
	// on disk — exactly what a partial write leaves for recovery.
	ShortWrite
	// Crash fires this rule as a kill point: the operation applies
	// partially (like ShortWrite for writes, not at all otherwise) and
	// every subsequent operation fails with ErrCrashed.
	Crash
)

// Rule is one scripted failpoint.
type Rule struct {
	// Op is the operation class the rule watches.
	Op Op
	// Path, when non-empty, restricts the rule to operations whose path
	// contains it as a substring.
	Path string
	// Nth fires the rule on exactly the Nth matching operation observed
	// after the rule was armed (1-based). Nth <= 0 fires on every
	// matching operation — the disk-went-bad mode.
	Nth int
	// Kind is the fault to inject.
	Kind Kind
}

// FS wraps a real persist.FS with scripted faults. Safe for concurrent
// use (the sharded layout recovers and compacts shards in parallel).
type FS struct {
	real persist.FS

	mu      sync.Mutex
	rules   []*ruleState
	ops     int  // mutating operations observed
	crashAt int  // crash on the nth mutating op; 0 = disarmed
	crashed bool // sticky once a crash fired
}

type ruleState struct {
	Rule
	seen int
}

// New wraps real (nil means the real filesystem) with no faults armed.
func New(real persist.FS) *FS {
	return &FS{real: persist.OrOS(real)}
}

// AddRule arms one scripted failpoint. Rules are checked in the order
// they were added; the first one that fires wins.
func (f *FS) AddRule(r Rule) {
	f.mu.Lock()
	f.rules = append(f.rules, &ruleState{Rule: r})
	f.mu.Unlock()
}

// SetCrashAt arms the crash schedule: the nth mutating operation from
// now (1-based) becomes the kill point. n = 0 disarms.
func (f *FS) SetCrashAt(n int) {
	f.mu.Lock()
	f.crashAt = f.ops + n
	if n == 0 {
		f.crashAt = 0
	}
	f.mu.Unlock()
}

// Ops reports the number of mutating operations observed so far — run
// once without a crash armed to learn the schedule length M, then
// enumerate SetCrashAt(1..M) on fresh copies.
func (f *FS) Ops() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// Crashed reports whether an armed crash point has fired.
func (f *FS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

type verdict int

const (
	vProceed verdict = iota
	vShort           // writes: apply the first half, then report the error
	vFail            // do not touch the disk
)

// before accounts one mutating operation and decides its fate.
func (f *FS) before(op Op, path string) (verdict, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return vFail, ErrCrashed
	}
	f.ops++
	if f.crashAt > 0 && f.ops >= f.crashAt {
		f.crashed = true
		if op == OpWrite {
			return vShort, ErrCrashed
		}
		return vFail, ErrCrashed
	}
	for _, r := range f.rules {
		if r.Op != op || (r.Path != "" && !strings.Contains(path, r.Path)) {
			continue
		}
		r.seen++
		if r.Nth > 0 && r.seen != r.Nth {
			continue
		}
		switch r.Kind {
		case Fail:
			return vFail, ErrInjected
		case ENOSPC:
			return vFail, fmt.Errorf("faultfs: %w", syscall.ENOSPC)
		case ShortWrite:
			if op == OpWrite {
				return vShort, ErrInjected
			}
			return vFail, ErrInjected
		case Crash:
			f.crashed = true
			if op == OpWrite {
				return vShort, ErrCrashed
			}
			return vFail, ErrCrashed
		}
	}
	return vProceed, nil
}

// readGate fails read-side operations only after a crash (a dead
// process reads nothing); rules never target reads.
func (f *FS) readGate() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed
	}
	return nil
}

func (f *FS) OpenFile(name string, flag int, perm os.FileMode) (persist.File, error) {
	writable := flag&(os.O_WRONLY|os.O_RDWR|os.O_CREATE|os.O_TRUNC|os.O_APPEND) != 0
	if writable {
		if v, err := f.before(OpOpen, name); v != vProceed {
			return nil, err
		}
	} else if err := f.readGate(); err != nil {
		return nil, err
	}
	fl, err := f.real.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &file{fs: f, f: fl, name: name}, nil
}

func (f *FS) Rename(oldpath, newpath string) error {
	if v, err := f.before(OpRename, newpath); v != vProceed {
		return err
	}
	return f.real.Rename(oldpath, newpath)
}

func (f *FS) Remove(name string) error {
	if v, err := f.before(OpRemove, name); v != vProceed {
		return err
	}
	return f.real.Remove(name)
}

func (f *FS) MkdirAll(path string, perm os.FileMode) error {
	if v, err := f.before(OpMkdir, path); v != vProceed {
		return err
	}
	return f.real.MkdirAll(path, perm)
}

func (f *FS) Stat(name string) (os.FileInfo, error) {
	if err := f.readGate(); err != nil {
		return nil, err
	}
	return f.real.Stat(name)
}

func (f *FS) ReadFile(name string) ([]byte, error) {
	if err := f.readGate(); err != nil {
		return nil, err
	}
	return f.real.ReadFile(name)
}

func (f *FS) SyncDir(dir string) error {
	if v, err := f.before(OpSyncDir, dir); v != vProceed {
		return err
	}
	return f.real.SyncDir(dir)
}

// file wraps one open handle, routing its mutating calls through the
// owning FS's fault script.
type file struct {
	fs   *FS
	f    persist.File
	name string
}

func (fl *file) Write(p []byte) (int, error) {
	switch v, err := fl.fs.before(OpWrite, fl.name); v {
	case vFail:
		return 0, err
	case vShort:
		n, _ := fl.f.Write(p[:len(p)/2])
		return n, err
	}
	return fl.f.Write(p)
}

func (fl *file) WriteAt(p []byte, off int64) (int, error) {
	switch v, err := fl.fs.before(OpWrite, fl.name); v {
	case vFail:
		return 0, err
	case vShort:
		n, _ := fl.f.WriteAt(p[:len(p)/2], off)
		return n, err
	}
	return fl.f.WriteAt(p, off)
}

func (fl *file) Sync() error {
	if v, err := fl.fs.before(OpSync, fl.name); v != vProceed {
		return err
	}
	return fl.f.Sync()
}

func (fl *file) Truncate(size int64) error {
	if v, err := fl.fs.before(OpTruncate, fl.name); v != vProceed {
		return err
	}
	return fl.f.Truncate(size)
}

func (fl *file) Read(p []byte) (int, error) {
	if err := fl.fs.readGate(); err != nil {
		return 0, err
	}
	return fl.f.Read(p)
}

func (fl *file) Seek(offset int64, whence int) (int64, error) {
	if err := fl.fs.readGate(); err != nil {
		return 0, err
	}
	return fl.f.Seek(offset, whence)
}

func (fl *file) Stat() (os.FileInfo, error) {
	if err := fl.fs.readGate(); err != nil {
		return nil, err
	}
	return fl.f.Stat()
}

// Close always reaches the real handle: leaking descriptors would make
// crash sweeps (hundreds of opens per test) hit ulimits, and closing a
// dead process's fd is the kernel's job anyway.
func (fl *file) Close() error { return fl.f.Close() }
