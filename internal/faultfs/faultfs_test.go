package faultfs

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

func TestRuleNthSync(t *testing.T) {
	dir := t.TempDir()
	fs := New(nil)
	fs.AddRule(Rule{Op: OpSync, Nth: 2, Kind: Fail})

	f, err := fs.OpenFile(filepath.Join(dir, "x"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.Sync(); err != nil {
		t.Fatalf("first sync: %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("second sync = %v, want ErrInjected", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("third sync (one-shot rule should be spent): %v", err)
	}
}

func TestRuleENOSPCEveryWrite(t *testing.T) {
	dir := t.TempDir()
	fs := New(nil)
	fs.AddRule(Rule{Op: OpWrite, Nth: 0, Kind: ENOSPC})

	f, err := fs.OpenFile(filepath.Join(dir, "x"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for i := 0; i < 3; i++ {
		if _, err := f.Write([]byte("data")); !errors.Is(err, syscall.ENOSPC) {
			t.Fatalf("write %d = %v, want ENOSPC", i, err)
		}
	}
}

func TestShortWriteTearsBytes(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x")
	fs := New(nil)
	fs.AddRule(Rule{Op: OpWrite, Path: "x", Nth: 1, Kind: ShortWrite})

	f, err := fs.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("12345678"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("torn write error = %v, want ErrInjected", err)
	}
	if n != 4 {
		t.Fatalf("torn write wrote %d bytes, want 4", n)
	}
	f.Close()
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "1234" {
		t.Fatalf("on-disk bytes %q, want the torn half %q", got, "1234")
	}
}

func TestCrashAtStopsTheWorld(t *testing.T) {
	dir := t.TempDir()
	fs := New(nil)

	// Counting pass: open + two writes + sync + rename = 5 mutating ops.
	f, err := fs.OpenFile(filepath.Join(dir, "a"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("xx"))
	f.Write([]byte("yy"))
	f.Sync()
	f.Close()
	if err := fs.Rename(filepath.Join(dir, "a"), filepath.Join(dir, "b")); err != nil {
		t.Fatal(err)
	}
	if got := fs.Ops(); got != 5 {
		t.Fatalf("counted %d ops, want 5", got)
	}

	// Crash at the rename (op 5 relative to now): everything before
	// lands, the rename does not, and later ops are dead.
	fs.SetCrashAt(5)
	g, err := fs.OpenFile(filepath.Join(dir, "c"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	g.Write([]byte("xx"))
	g.Write([]byte("yy"))
	g.Sync()
	g.Close()
	if err := fs.Rename(filepath.Join(dir, "c"), filepath.Join(dir, "d")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("crash-point rename = %v, want ErrCrashed", err)
	}
	if !fs.Crashed() {
		t.Fatal("FS not marked crashed")
	}
	if _, err := fs.OpenFile(filepath.Join(dir, "e"), os.O_RDWR|os.O_CREATE, 0o644); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash open = %v, want ErrCrashed", err)
	}
	if _, err := fs.ReadFile(filepath.Join(dir, "c")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash read = %v, want ErrCrashed", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "c")); err != nil {
		t.Fatalf("pre-crash writes should persist on the real disk: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "d")); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("crashed rename must not reach the real disk")
	}
}
