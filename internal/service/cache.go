package service

import (
	"container/list"
	"sync"

	"repro/internal/core"
	"repro/internal/vec"
)

// predictionCache is a thread-safe LRU of Mopt predictions keyed by the
// engine's FNV query signature. Because a 64-bit hash can collide, every
// hit is confirmed by comparing the stored query point; a colliding key
// simply evicts the older entry on Put.
//
// Correctness against concurrent inserts is generational, per shard:
// every entry belongs to the bypass shard that predicted it, and each
// shard has its own generation counter. Readers capture Generation(shard)
// before predicting and Put is a no-op when that shard's generation
// moved, so an entry computed against a tree that has since changed can
// never land in the cache (see Service.predict). Invalidate(shard) drops
// only that shard's entries — an insert into shard k leaves every other
// shard's cached predictions valid, which is the whole point of the
// sharded bypass plane (an unsharded Bypass is simply the one-shard
// special case, where Invalidate(0) is the old drop-everything).
type predictionCache struct {
	mu    sync.Mutex
	cap   int
	gens  []uint64   // invalidation epoch per shard
	ll    *list.List // front = most recently used
	byKey map[uint64]*list.Element
}

type cacheEntry struct {
	shard int
	sig   uint64
	q     []float64
	oqp   core.OQP
}

func newPredictionCache(capacity, shards int) *predictionCache {
	if shards < 1 {
		shards = 1
	}
	return &predictionCache{
		cap:   capacity,
		gens:  make([]uint64, shards),
		ll:    list.New(),
		byKey: make(map[uint64]*list.Element, capacity),
	}
}

// Generation returns the invalidation epoch a subsequent Put for the
// shard must present.
func (c *predictionCache) Generation(shard int) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.gens[shard]
}

// Generations snapshots every shard's invalidation epoch (for stats).
func (c *predictionCache) Generations() []uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]uint64, len(c.gens))
	copy(out, c.gens)
	return out
}

// Get returns a deep copy of the cached prediction for (sig, q), if any.
func (c *predictionCache) Get(sig uint64, q []float64) (core.OQP, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.byKey[sig]
	if !ok {
		return core.OQP{}, false
	}
	ent := e.Value.(*cacheEntry)
	if !vec.Equal(ent.q, q) {
		// Signature collision between distinct points: treat as a miss.
		return core.OQP{}, false
	}
	c.ll.MoveToFront(e)
	return core.OQP{Delta: vec.Clone(ent.oqp.Delta), Weights: vec.Clone(ent.oqp.Weights)}, true
}

// Put stores a prediction computed by the given shard at generation gen;
// it is discarded when that shard was invalidated in between.
func (c *predictionCache) Put(shard int, gen, sig uint64, q []float64, oqp core.OQP) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if gen != c.gens[shard] {
		return
	}
	if e, ok := c.byKey[sig]; ok {
		// Same key: refresh (same point) or replace (collision) in place.
		e.Value = &cacheEntry{shard: shard, sig: sig, q: vec.Clone(q), oqp: cloneOQP(oqp)}
		c.ll.MoveToFront(e)
		return
	}
	c.byKey[sig] = c.ll.PushFront(&cacheEntry{shard: shard, sig: sig, q: vec.Clone(q), oqp: cloneOQP(oqp)})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest) //errgate:ok list.Remove returns the value, not an error
		delete(c.byKey, oldest.Value.(*cacheEntry).sig)
	}
}

// Invalidate drops the shard's entries and bumps its generation so
// in-flight Puts computed against the shard's old tree are discarded.
// Entries belonging to other shards survive untouched. The walk is
// O(entries), bounded by the cache capacity and paid only on inserts that
// changed a tree — the rare path by design.
func (c *predictionCache) Invalidate(shard int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gens[shard]++
	var next *list.Element
	for e := c.ll.Front(); e != nil; e = next {
		next = e.Next()
		ent := e.Value.(*cacheEntry)
		if ent.shard == shard {
			c.ll.Remove(e) //errgate:ok list.Remove returns the value, not an error
			delete(c.byKey, ent.sig)
		}
	}
}

// Len reports the number of cached predictions.
func (c *predictionCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

func cloneOQP(oqp core.OQP) core.OQP {
	return core.OQP{Delta: vec.Clone(oqp.Delta), Weights: vec.Clone(oqp.Weights)}
}
