package service

import (
	"container/list"
	"sync"

	"repro/internal/core"
	"repro/internal/vec"
)

// predictionCache is a thread-safe LRU of Mopt predictions keyed by the
// engine's FNV query signature. Because a 64-bit hash can collide, every
// hit is confirmed by comparing the stored query point; a colliding key
// simply evicts the older entry on Put.
//
// Correctness against concurrent inserts is generational: readers capture
// Generation() before predicting and Put is a no-op when the generation
// moved, so an entry computed against a tree that has since changed can
// never land in the cache (see Service.predict).
type predictionCache struct {
	mu    sync.Mutex
	cap   int
	gen   uint64
	ll    *list.List // front = most recently used
	byKey map[uint64]*list.Element
}

type cacheEntry struct {
	sig uint64
	q   []float64
	oqp core.OQP
}

func newPredictionCache(capacity int) *predictionCache {
	return &predictionCache{
		cap:   capacity,
		ll:    list.New(),
		byKey: make(map[uint64]*list.Element, capacity),
	}
}

// Generation returns the invalidation epoch a subsequent Put must present.
func (c *predictionCache) Generation() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.gen
}

// Get returns a deep copy of the cached prediction for (sig, q), if any.
func (c *predictionCache) Get(sig uint64, q []float64) (core.OQP, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.byKey[sig]
	if !ok {
		return core.OQP{}, false
	}
	ent := e.Value.(*cacheEntry)
	if !vec.Equal(ent.q, q) {
		// Signature collision between distinct points: treat as a miss.
		return core.OQP{}, false
	}
	c.ll.MoveToFront(e)
	return core.OQP{Delta: vec.Clone(ent.oqp.Delta), Weights: vec.Clone(ent.oqp.Weights)}, true
}

// Put stores a prediction computed at generation gen; it is discarded when
// an Invalidate happened in between.
func (c *predictionCache) Put(gen, sig uint64, q []float64, oqp core.OQP) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if gen != c.gen {
		return
	}
	if e, ok := c.byKey[sig]; ok {
		// Same key: refresh (same point) or replace (collision) in place.
		e.Value = &cacheEntry{sig: sig, q: vec.Clone(q), oqp: cloneOQP(oqp)}
		c.ll.MoveToFront(e)
		return
	}
	c.byKey[sig] = c.ll.PushFront(&cacheEntry{sig: sig, q: vec.Clone(q), oqp: cloneOQP(oqp)})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.byKey, oldest.Value.(*cacheEntry).sig)
	}
}

// Invalidate drops every entry and bumps the generation so in-flight Puts
// computed against the old tree are discarded.
func (c *predictionCache) Invalidate() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gen++
	c.ll.Init()
	clear(c.byKey)
}

// Len reports the number of cached predictions.
func (c *predictionCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

func cloneOQP(oqp core.OQP) core.OQP {
	return core.OQP{Delta: vec.Clone(oqp.Delta), Weights: vec.Clone(oqp.Weights)}
}
