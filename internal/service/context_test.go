package service

import (
	"context"
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/faultfs"
	"repro/internal/histogram"
	"repro/internal/imagegen"
)

// TestContextCancellation: every lifecycle method returns the context's
// own error when the request is already dead, and a cancelled Open does
// not leak an admission slot.
func TestContextCancellation(t *testing.T) {
	svc, ds := newTestService(t, Options{})
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()

	if _, err := svc.Open(cancelled, ds.Items[0].Feature, 5); !errors.Is(err, context.Canceled) {
		t.Fatalf("Open on cancelled ctx = %v, want context.Canceled", err)
	}
	if _, err := svc.Query(cancelled, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("Query on cancelled ctx = %v, want context.Canceled", err)
	}
	if _, err := svc.Feedback(cancelled, 1, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("Feedback on cancelled ctx = %v, want context.Canceled", err)
	}
	if _, err := svc.Close(cancelled, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("Close on cancelled ctx = %v, want context.Canceled", err)
	}
	if st := svc.Stats(); st.ActiveSessions != 0 || st.Opened != 0 {
		t.Fatalf("cancelled requests leaked state: %+v", st)
	}

	// An already-expired deadline is reported as DeadlineExceeded so the
	// transport can map it to 503 rather than 499.
	expired, cancel2 := context.WithTimeout(context.Background(), -1)
	defer cancel2()
	if _, err := svc.Open(expired, ds.Items[0].Feature, 5); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Open on expired ctx = %v, want context.DeadlineExceeded", err)
	}

	// A live context passes through untouched: the session opens, serves
	// and closes normally.
	res := runSession(t, svc, ds, 0, 5)
	if res.ID == 0 {
		t.Fatal("live-context session did not run")
	}
}

// newDurableService wires a service over a durable bypass rooted on the
// given fault-injection filesystem — the stack TestDegradedServing
// degrades mid-flight.
func newDurableService(t *testing.T, fs *faultfs.FS) (*Service, *dataset.Dataset) {
	t.Helper()
	ds, err := dataset.Build(imagegen.IMSILike(7, 0.03), histogram.DefaultExtractor)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.New(ds, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	codec, err := core.NewHistogramCodec(ds.Dim)
	if err != nil {
		t.Fatal(err)
	}
	byp, err := core.OpenDurable(t.TempDir(), codec.D(), codec.P(), core.Config{
		Epsilon:        0.05,
		DefaultWeights: codec.DefaultWeights(),
	}, core.DurableOptions{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { byp.Close() })
	svc, err := New(eng, byp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return svc, ds
}

// TestDegradedServing: when the store under the service flips read-only,
// Close reports the typed sentinel, the degraded rejection is counted,
// Stats carries the root cause, and new sessions keep serving
// predictions.
func TestDegradedServing(t *testing.T) {
	fs := faultfs.New(nil)
	svc, ds := newDurableService(t, fs)

	// The journal disk goes bad before any session completes.
	fs.AddRule(faultfs.Rule{Op: faultfs.OpWrite, Path: core.JournalFile, Nth: 0, Kind: faultfs.Fail})

	// Find a session whose outcome the service actually tries to insert.
	var sawDegraded bool
	for i := 0; i < 32 && !sawDegraded; i++ {
		item := ds.Items[i]
		st, err := svc.Open(context.Background(), item.Feature, 10)
		if err != nil {
			t.Fatal(err)
		}
		for !st.Converged {
			if st, err = svc.Feedback(context.Background(), st.ID, oracleScores(ds, item.Category, st.Results)); err != nil {
				t.Fatal(err)
			}
		}
		_, err = svc.Close(context.Background(), st.ID)
		switch {
		case err == nil:
			// ε-skipped or zero-iteration session: nothing reached the disk.
		case errors.Is(err, core.ErrDegraded):
			sawDegraded = true
		default:
			t.Fatalf("close %d: %v", i, err)
		}
	}
	if !sawDegraded {
		t.Fatal("no session outcome reached the failing journal")
	}

	st := svc.Stats()
	if st.DegradedRejects == 0 {
		t.Fatal("degraded rejection not counted")
	}
	if st.Degraded == "" {
		t.Fatal("Stats does not carry the degraded cause")
	}
	if !errors.Is(svc.Degraded(), core.ErrDegraded) {
		t.Fatalf("Degraded() = %v, want ErrDegraded", svc.Degraded())
	}
	// The read path is unharmed: a fresh session opens and serves.
	if _, err := svc.Open(context.Background(), ds.Items[0].Feature, 5); err != nil {
		t.Fatalf("degraded store broke the read path: %v", err)
	}
}

// TestQuotaRejectionCounted: a quota-full store rejects the session's
// insert with the typed sentinel and the service counts it, while the
// session itself closes cleanly.
func TestQuotaRejectionCounted(t *testing.T) {
	ds, err := dataset.Build(imagegen.IMSILike(7, 0.03), histogram.DefaultExtractor)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.New(ds, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	codec, err := core.NewHistogramCodec(ds.Dim)
	if err != nil {
		t.Fatal(err)
	}
	// Quota exactly at the corner count: every split is refused.
	byp, err := core.New(codec.D(), codec.P(), core.Config{
		Epsilon:        0.05,
		DefaultWeights: codec.DefaultWeights(),
		MaxVertices:    codec.D() + 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := New(eng, byp, Options{})
	if err != nil {
		t.Fatal(err)
	}

	var sawQuota bool
	for i := 0; i < 32 && !sawQuota; i++ {
		item := ds.Items[i]
		st, err := svc.Open(context.Background(), item.Feature, 10)
		if err != nil {
			t.Fatal(err)
		}
		for !st.Converged {
			if st, err = svc.Feedback(context.Background(), st.ID, oracleScores(ds, item.Category, st.Results)); err != nil {
				t.Fatal(err)
			}
		}
		_, err = svc.Close(context.Background(), st.ID)
		switch {
		case err == nil:
		case errors.Is(err, core.ErrQuotaExceeded):
			sawQuota = true
		default:
			t.Fatalf("close %d: %v", i, err)
		}
	}
	if !sawQuota {
		t.Fatal("no session outcome hit the quota")
	}
	st := svc.Stats()
	if st.QuotaRejects == 0 {
		t.Fatal("quota rejection not counted")
	}
	if st.Degraded != "" {
		t.Fatal("quota exhaustion must not report degraded")
	}
	// Sessions keep opening and predicting at full quota.
	if _, err := svc.Open(context.Background(), ds.Items[0].Feature, 5); err != nil {
		t.Fatalf("quota-full store broke the read path: %v", err)
	}
}
