// Package service is the concurrent multi-session serving layer of the
// reproduction: the long-lived process that places FeedbackBypass beside a
// live interactive retrieval system (Figure 4 of the paper) and serves
// many user sessions against one shared engine and one shared learned
// mapping.
//
// A session is one user's interactive loop: Open predicts OQPs for the
// query (through an LRU prediction cache keyed by the engine's FNV query
// signature), warm-starts retrieval from the predicted parameters, and
// returns the first result list; Feedback applies one round of
// user-provided relevance scores (the externally driven form of the
// Figure 5 loop) and re-retrieves; Close inserts the converged OQPs into
// the shared Bypass — the moment the whole service learns from the
// session. Query reads the session's current state without advancing it.
//
// Concurrency model (see DESIGN.md, "Serving layer"):
//
//   - the session table is guarded by one RWMutex; per-session state by a
//     per-session mutex, so sessions never contend with each other except
//     on the table's short map operations;
//   - retrieval (knn.Scan) is stateless and prediction (simplextree) is
//     read-locked, so any number of sessions retrieve and predict in
//     parallel; only Insert takes the tree's exclusive lock;
//   - admission control bounds in-flight sessions (ErrOverloaded beyond
//     Options.MaxSessions) and a per-session iteration budget bounds each
//     feedback loop, so one slow or adversarial session cannot starve the
//     rest;
//   - the prediction cache is invalidated generationally: an insert that
//     changes the tree bumps the generation and drops every entry, and a
//     prediction raced by such an insert is never cached, so a cached
//     prediction is always bitwise identical to an uncached one.
package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/feedback"
	"repro/internal/knn"
	"repro/internal/obsv"
	"repro/internal/shardedbypass"
	"repro/internal/simplextree"
	"repro/internal/vec"
)

// ErrSessionNotFound is returned for operations on a session ID that was
// never opened or has already been closed.
var ErrSessionNotFound = errors.New("service: session not found")

// ErrOverloaded is returned by Open when the service is at its in-flight
// session bound; callers should back off and retry.
var ErrOverloaded = errors.New("service: too many in-flight sessions")

// ErrInvalidArgument wraps client-input failures (wrong query
// dimensionality, score-count mismatches, malformed scores) so transports
// can classify them with errors.Is instead of string-matching.
var ErrInvalidArgument = errors.New("service: invalid argument")

// Bypass is the learned-mapping dependency of the service: the in-memory
// core.Bypass, the WAL-backed core.DurableBypass and the partitioned
// shardedbypass.Sharded all satisfy it.
type Bypass interface {
	D() int
	P() int
	Predict(q []float64) (core.OQP, error)
	Insert(q []float64, oqp core.OQP) (bool, error)
	Stats() simplextree.Stats
}

// PartitionedBypass is the optional sharding surface of a Bypass
// (implemented by shardedbypass.Sharded). When the service's Bypass
// provides it, the prediction cache keeps one generation per shard and an
// insert into shard k invalidates only shard k's cached predictions;
// Stats additionally reports per-shard counters. A plain Bypass behaves
// as a single shard.
//
// ShardOf must agree with the pinned partition function engine.ShardOf —
// QuerySignature mod NumShards — which the whole plane routes by; the
// service exploits the identity to derive an entry's shard from the
// cache key it already computed.
type PartitionedBypass interface {
	Bypass
	NumShards() int
	ShardOf(q []float64) int
	ShardInfos() []shardedbypass.ShardInfo
}

// DegradableBypass is the optional health surface of a Bypass
// (implemented by core.DurableBypass and shardedbypass.Sharded): Degraded
// reports the sticky persistence failure that flipped the module — or one
// of its shards — to read-only serving, nil while healthy. The service
// surfaces it in Stats so transports can expose degraded state on their
// health endpoints without probing the store with writes.
type DegradableBypass interface {
	Bypass
	Degraded() error
}

// CompactableBypass is the optional lifecycle surface of a Bypass
// (implemented by core.Bypass, core.DurableBypass and
// shardedbypass.Sharded): CompactAged rebuilds the tree(s) keeping only
// vertices reinforced within the aging horizon and reports one
// CompactionStats per shard, indexed by shard id (a one-element slice for
// an unsharded module). The service exposes it as Service.CompactAged so
// transports and schedulers drive compaction through the layer that owns
// the prediction cache — a compaction that reclaims vertices changes
// prediction outputs and must invalidate the affected shards' entries.
type CompactableBypass interface {
	Bypass
	CompactAged() ([]core.CompactionStats, error)
}

// Options tunes the serving layer.
type Options struct {
	// MaxSessions bounds concurrently open sessions; Open returns
	// ErrOverloaded beyond it. Default 1024.
	MaxSessions int
	// IterationBudget bounds feedback rounds per session; a session that
	// reaches it is reported converged with BudgetLeft 0. Default
	// engine.DefaultMaxIterations.
	IterationBudget int
	// CacheSize bounds the LRU prediction cache (entries). 0 selects the
	// default (1024); negative disables caching.
	CacheSize int
	// DefaultK is the result-list size used when Open is called with
	// k <= 0. Default 10.
	DefaultK int
	// Obs, when non-nil, registers the serving-layer instruments
	// (request latency histograms, per-outcome request counters, cache
	// hit/miss counters, live-session and cache-size gauges) in the
	// given registry. Nil disables instrumentation: the request path
	// then takes no clock readings at all.
	Obs *obsv.Registry
	// ObsLabels are attached to every instrument the service registers
	// (typically the collection name).
	ObsLabels []obsv.Label
}

func (o *Options) fill() {
	if o.MaxSessions == 0 {
		o.MaxSessions = 1024
	}
	if o.IterationBudget == 0 {
		o.IterationBudget = engine.DefaultMaxIterations
	}
	if o.CacheSize == 0 {
		o.CacheSize = 1024
	}
	if o.DefaultK == 0 {
		o.DefaultK = 10
	}
}

// Service is a thread-safe multi-session FeedbackBypass server over one
// shared engine and one shared Bypass.
type Service struct {
	eng   *engine.Engine
	byp   Bypass
	parts PartitionedBypass // byp's sharding surface; nil when unsharded
	deg   DegradableBypass  // byp's health surface; nil when not degradable
	comp  CompactableBypass // byp's lifecycle surface; nil when not compactable
	codec core.HistogramCodec
	opts  Options
	cache *predictionCache // nil when disabled

	mu       sync.RWMutex
	sessions map[uint64]*session
	nextID   uint64

	// counters (atomic: bumped outside the table lock)
	opened      atomic.Int64
	rejected    atomic.Int64
	closed      atomic.Int64
	feedbacks   atomic.Int64
	predictions atomic.Int64
	cacheHits   atomic.Int64
	warmStarts  atomic.Int64
	inserts     atomic.Int64
	stored      atomic.Int64
	// Resource-governance rejections, classified from Close's insert path:
	// quotaRejects counts outcomes refused by the store's vertex/byte
	// quota, degradedRejects outcomes refused because the store had flipped
	// to read-only after a persistence failure. In both cases the session
	// itself completed normally — only the learning was lost.
	quotaRejects    atomic.Int64
	degradedRejects atomic.Int64
	// Lifecycle counters: compactions driven through Service.CompactAged
	// and the vertices those passes reclaimed. Compactions triggered
	// below the service (quota-pressure compact-then-retry inside the
	// store) are visible in the per-shard ShardInfo counters instead.
	compactions        atomic.Int64
	reclaimedByService atomic.Int64

	met *svcMetrics // nil when Options.Obs is nil
}

// Request-path operations and outcomes, indexing the pre-created
// instrument arrays of svcMetrics so the hot path never allocates or
// hashes a label set.
const (
	opOpen = iota
	opFeedback
	opClose
	opQuery
	opPredict
	numOps
)

var opNames = [numOps]string{"open", "feedback", "close", "query", "predict"}

const (
	outOK = iota
	outInvalid
	outOverloaded
	outNotFound
	outCanceled
	outDeadline
	outQuota
	outDegraded
	outReplaying
	outError
	numOutcomes
)

var outcomeNames = [numOutcomes]string{
	"ok", "invalid_argument", "overloaded", "not_found", "canceled",
	"deadline_exceeded", "quota_exceeded", "degraded", "replaying", "error",
}

// classifyOutcome maps a request error to its outcome bucket using the
// same sentinel taxonomy transports use for HTTP status codes.
func classifyOutcome(err error) int {
	switch {
	case err == nil:
		return outOK
	case errors.Is(err, ErrInvalidArgument), errors.Is(err, core.ErrOutOfDomain):
		return outInvalid
	case errors.Is(err, ErrOverloaded):
		return outOverloaded
	case errors.Is(err, ErrSessionNotFound):
		return outNotFound
	case errors.Is(err, context.Canceled):
		return outCanceled
	case errors.Is(err, context.DeadlineExceeded):
		return outDeadline
	case errors.Is(err, core.ErrQuotaExceeded):
		return outQuota
	case errors.Is(err, core.ErrDegraded):
		return outDegraded
	case errors.Is(err, shardedbypass.ErrReplaying):
		return outReplaying
	default:
		return outError
	}
}

// svcMetrics holds every pre-created serving-layer instrument. Creating
// them once at New time keeps the request path allocation-free: an
// observation is two atomic adds plus (for histograms) a CAS loop.
type svcMetrics struct {
	lat       [numOps]*obsv.Histogram
	req       [numOps][numOutcomes]*obsv.Counter
	cacheHit  *obsv.Counter
	cacheMiss *obsv.Counter
}

func newSvcMetrics(reg *obsv.Registry, labels []obsv.Label) *svcMetrics {
	m := &svcMetrics{}
	for op := 0; op < numOps; op++ {
		ls := append(append([]obsv.Label(nil), labels...), obsv.L("op", opNames[op]))
		m.lat[op] = reg.Histogram("fb_service_request_seconds", "Serving-layer request latency by operation.", obsv.LatencyBounds(), ls...)
		for out := 0; out < numOutcomes; out++ {
			rls := append(append([]obsv.Label(nil), ls...), obsv.L("outcome", outcomeNames[out]))
			m.req[op][out] = reg.Counter("fb_service_requests_total", "Serving-layer requests by operation and outcome.", rls...)
		}
	}
	m.cacheHit = reg.Counter("fb_service_cache_requests_total", "Prediction-cache lookups by result.",
		append(append([]obsv.Label(nil), labels...), obsv.L("result", "hit"))...)
	m.cacheMiss = reg.Counter("fb_service_cache_requests_total", "Prediction-cache lookups by result.",
		append(append([]obsv.Label(nil), labels...), obsv.L("result", "miss"))...)
	return m
}

// done records one finished request: latency into the op's histogram and
// a count into the (op, outcome) counter.
func (m *svcMetrics) done(op int, t0 time.Time, err error) {
	m.lat[op].ObserveSince(t0)
	m.req[op][classifyOutcome(err)].Inc()
}

// session is one user's in-flight interactive loop.
type session struct {
	id uint64
	mu sync.Mutex

	q0        []float64 // initial query feature (full histogram)
	q, w      []float64 // current query point and weights
	k         int
	results   []knn.Result
	seen      map[uint64]bool // result-list signatures, for cycle detection
	iters     int
	budget    int
	cacheHit  bool
	warm      bool // predicted OQP differed from the untrained default
	converged bool
	closed    bool
}

// New validates that the engine's collection and the Bypass agree on the
// histogram geometry (D = P = dim−1) and returns a serving layer over
// them. The Bypass may be shared with other writers (e.g. a background
// trainer); the service's cache stays correct as long as every insert
// goes through the service.
func New(eng *engine.Engine, byp Bypass, opts Options) (*Service, error) {
	if eng == nil {
		return nil, errors.New("service: nil engine")
	}
	if byp == nil {
		return nil, errors.New("service: nil bypass")
	}
	if opts.MaxSessions < 0 {
		return nil, fmt.Errorf("service: negative MaxSessions %d", opts.MaxSessions)
	}
	if opts.IterationBudget < 0 {
		return nil, fmt.Errorf("service: negative IterationBudget %d", opts.IterationBudget)
	}
	opts.fill()
	codec, err := core.NewHistogramCodec(eng.Dataset().Dim)
	if err != nil {
		return nil, err
	}
	if byp.D() != codec.D() || byp.P() != codec.P() {
		return nil, fmt.Errorf("service: bypass is D=%d P=%d, want D=P=%d for a %d-bin collection",
			byp.D(), byp.P(), codec.D(), eng.Dataset().Dim)
	}
	s := &Service{
		eng:      eng,
		byp:      byp,
		codec:    codec,
		opts:     opts,
		sessions: make(map[uint64]*session),
		nextID:   1,
	}
	shards := 1
	if parts, ok := byp.(PartitionedBypass); ok {
		s.parts = parts
		shards = parts.NumShards()
	}
	if deg, ok := byp.(DegradableBypass); ok {
		s.deg = deg
	}
	if comp, ok := byp.(CompactableBypass); ok {
		s.comp = comp
	}
	if opts.CacheSize > 0 {
		s.cache = newPredictionCache(opts.CacheSize, shards)
	}
	if opts.Obs != nil {
		s.met = newSvcMetrics(opts.Obs, opts.ObsLabels)
		opts.Obs.GaugeFunc("fb_service_sessions_active", "Sessions currently open.", func() float64 {
			s.mu.RLock()
			n := len(s.sessions)
			s.mu.RUnlock()
			return float64(n)
		}, opts.ObsLabels...)
		opts.Obs.GaugeFunc("fb_service_cache_entries", "Prediction-cache entries resident.", func() float64 {
			if s.cache == nil {
				return 0
			}
			return float64(s.cache.Len())
		}, opts.ObsLabels...)
	}
	return s, nil
}

// shardOf maps a query point to its bypass shard (0 for an unsharded
// Bypass) — the scope of cache invalidation for inserts at that point.
func (s *Service) shardOf(qp []float64) int {
	if s.parts == nil {
		return 0
	}
	return s.parts.ShardOf(qp)
}

// Degraded reports the sticky persistence failure that flipped the
// underlying store (or one of its shards) to read-only serving, or nil —
// when the store is healthy, or when it does not expose a health surface
// (a plain in-memory Bypass cannot degrade).
func (s *Service) Degraded() error {
	if s.deg == nil {
		return nil
	}
	return s.deg.Degraded()
}

// Codec returns the histogram codec the service maps queries with.
func (s *Service) Codec() core.HistogramCodec { return s.codec }

// Engine returns the shared retrieval engine.
func (s *Service) Engine() *engine.Engine { return s.eng }

// SessionState is a snapshot of one session, returned by every lifecycle
// method. Results is a fresh copy the caller owns.
type SessionState struct {
	ID         uint64
	K          int
	Results    []knn.Result
	Iterations int
	BudgetLeft int
	Converged  bool
	// CacheHit reports whether Open served the prediction from the LRU
	// cache; Warm whether the predicted OQP differed from the untrained
	// default (i.e. the tree had learned something for this region).
	CacheHit bool
	Warm     bool
}

func (sess *session) stateLocked() SessionState {
	res := make([]knn.Result, len(sess.results))
	copy(res, sess.results)
	return SessionState{
		ID:         sess.id,
		K:          sess.k,
		Results:    res,
		Iterations: sess.iters,
		BudgetLeft: sess.budget - sess.iters,
		Converged:  sess.converged,
		CacheHit:   sess.cacheHit,
		Warm:       sess.warm,
	}
}

// predict answers the Mopt lookup through the LRU cache. The per-shard
// generation fence makes a cached entry impossible to go stale: a Put
// races an invalidation of its own shard only in the discarded
// direction, and inserts into other shards cannot touch this entry's
// tree at all.
func (s *Service) predict(qp []float64) (core.OQP, bool, error) {
	s.predictions.Add(1)
	var t0 time.Time
	if s.met != nil {
		t0 = time.Now()
	}
	if s.cache == nil {
		oqp, err := s.byp.Predict(qp)
		if s.met != nil {
			s.met.done(opPredict, t0, err)
			s.met.cacheMiss.Inc()
		}
		return oqp, false, err
	}
	sig := engine.QuerySignature(qp)
	if oqp, ok := s.cache.Get(sig, qp); ok {
		s.cacheHits.Add(1)
		if s.met != nil {
			s.met.done(opPredict, t0, nil)
			s.met.cacheHit.Inc()
		}
		return oqp, true, nil
	}
	// The shard is the signature reduced mod S (the pinned partition
	// function), so the cache key already in hand names it — no second
	// pass over the query point.
	shard := 0
	if s.parts != nil {
		shard = int(sig % uint64(s.parts.NumShards()))
	}
	gen := s.cache.Generation(shard)
	oqp, err := s.byp.Predict(qp)
	if s.met != nil {
		s.met.done(opPredict, t0, err)
		s.met.cacheMiss.Inc()
	}
	if err != nil {
		return core.OQP{}, false, err
	}
	s.cache.Put(shard, gen, sig, qp, oqp)
	return oqp, false, nil
}

// isDefaultOQP reports whether the prediction is the untrained module's
// answer: zero offset and neutral (zero log-ratio) weights.
func isDefaultOQP(oqp core.OQP) bool {
	for _, x := range oqp.Delta {
		if x != 0 {
			return false
		}
	}
	for _, x := range oqp.Weights {
		if x != 0 {
			return false
		}
	}
	return true
}

// Open admits a new session for the given query feature (a normalized
// histogram of the collection's dimensionality): it predicts OQPs through
// the cache, warm-starts retrieval from the predicted parameters, and
// returns the session's first state. k <= 0 selects Options.DefaultK.
// Position failures wrap core.ErrOutOfDomain; admission failures wrap
// ErrOverloaded.
//
// ctx bounds the request: a cancelled or expired context aborts before
// the admission slot is taken and again before the retrieval scan, and
// the returned error is the context's (context.Canceled /
// context.DeadlineExceeded), so transports can map client disconnects
// and deadline overruns distinctly.
func (s *Service) Open(ctx context.Context, feature []float64, k int) (SessionState, error) {
	if s.met == nil {
		return s.open(ctx, feature, k)
	}
	t0 := time.Now()
	st, err := s.open(ctx, feature, k)
	s.met.done(opOpen, t0, err)
	return st, err
}

func (s *Service) open(ctx context.Context, feature []float64, k int) (SessionState, error) {
	if err := ctx.Err(); err != nil {
		return SessionState{}, err
	}
	dim := s.eng.Dataset().Dim
	if len(feature) != dim {
		return SessionState{}, fmt.Errorf("query has %d bins, want %d: %w", len(feature), dim, ErrInvalidArgument)
	}
	if k <= 0 {
		k = s.opts.DefaultK
	}
	// A k beyond the collection returns the whole collection anyway, but
	// the scan pre-allocates k-sized result buffers per worker — so an
	// unclamped client-supplied k is a one-request memory bomb.
	if k > s.eng.Dataset().Len() {
		k = s.eng.Dataset().Len()
	}
	qp, err := s.codec.QueryPoint(feature)
	if err != nil {
		return SessionState{}, err
	}

	// Reserve the admission slot first (cheap, under the table lock); the
	// expensive predict+retrieve runs outside it, with the half-built
	// session holding its own lock so concurrent lookups block rather
	// than observe a torn session.
	sess := &session{
		k:      k,
		budget: s.opts.IterationBudget,
		seen:   make(map[uint64]bool),
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	s.mu.Lock()
	if len(s.sessions) >= s.opts.MaxSessions {
		s.mu.Unlock()
		s.rejected.Add(1)
		return SessionState{}, fmt.Errorf("service: %d sessions in flight: %w", s.opts.MaxSessions, ErrOverloaded)
	}
	sess.id = s.nextID
	s.nextID++
	s.sessions[sess.id] = sess
	s.mu.Unlock()

	abort := func(err error) (SessionState, error) {
		// Mark the session closed before unpublishing: a concurrent
		// lookup that grabbed the pointer before the delete blocks on
		// sess.mu (held until Open returns) and must then see a dead
		// session, not a half-built live one.
		sess.closed = true
		s.mu.Lock()
		delete(s.sessions, sess.id)
		s.mu.Unlock()
		return SessionState{}, err
	}
	oqp, cacheHit, err := s.predict(qp)
	if err != nil {
		return abort(err)
	}
	qPred, wPred, err := s.codec.DecodeOQP(feature, oqp)
	if err != nil {
		return abort(err)
	}
	// Re-check before the scan — the one stage whose cost scales with the
	// collection; a client that disconnected during admission should not
	// burn a full k-NN pass.
	if err := ctx.Err(); err != nil {
		return abort(err)
	}
	results, err := s.eng.Retrieve(qPred, wPred, k)
	if err != nil {
		return abort(err)
	}
	sess.q0 = vec.Clone(feature)
	sess.q, sess.w = qPred, wPred
	sess.results = results
	sess.seen[engine.ResultSignature(results)] = true
	sess.cacheHit = cacheHit
	sess.warm = !isDefaultOQP(oqp)
	s.opened.Add(1)
	if sess.warm {
		s.warmStarts.Add(1)
	}
	return sess.stateLocked(), nil
}

// lookup returns the live session for id.
func (s *Service) lookup(id uint64) (*session, error) {
	s.mu.RLock()
	sess := s.sessions[id]
	s.mu.RUnlock()
	if sess == nil {
		return nil, fmt.Errorf("service: session %d: %w", id, ErrSessionNotFound)
	}
	return sess, nil
}

// Query returns the session's current state without advancing it.
func (s *Service) Query(ctx context.Context, id uint64) (SessionState, error) {
	if s.met == nil {
		return s.query(ctx, id)
	}
	t0 := time.Now()
	st, err := s.query(ctx, id)
	s.met.done(opQuery, t0, err)
	return st, err
}

func (s *Service) query(ctx context.Context, id uint64) (SessionState, error) {
	if err := ctx.Err(); err != nil {
		return SessionState{}, err
	}
	sess, err := s.lookup(id)
	if err != nil {
		return SessionState{}, err
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.closed {
		return SessionState{}, fmt.Errorf("service: session %d: %w", id, ErrSessionNotFound)
	}
	return sess.stateLocked(), nil
}

// Feedback applies one round of relevance scores (one per current result,
// non-negative, 0 = irrelevant) to the session: parameters are refined,
// retrieval re-runs, and the new state is returned. A session that has
// converged — stable result list, no good matches to learn from, or
// exhausted iteration budget — is returned unchanged with Converged set;
// the client should Close it.
func (s *Service) Feedback(ctx context.Context, id uint64, scores []float64) (SessionState, error) {
	if s.met == nil {
		return s.feedback(ctx, id, scores)
	}
	t0 := time.Now()
	st, err := s.feedback(ctx, id, scores)
	s.met.done(opFeedback, t0, err)
	return st, err
}

func (s *Service) feedback(ctx context.Context, id uint64, scores []float64) (SessionState, error) {
	if err := ctx.Err(); err != nil {
		return SessionState{}, err
	}
	sess, err := s.lookup(id)
	if err != nil {
		return SessionState{}, err
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.closed {
		return SessionState{}, fmt.Errorf("service: session %d: %w", id, ErrSessionNotFound)
	}
	if sess.converged || sess.iters >= sess.budget {
		sess.converged = true
		return sess.stateLocked(), nil
	}
	if len(scores) != len(sess.results) {
		return SessionState{}, fmt.Errorf("%d scores for %d results: %w", len(scores), len(sess.results), ErrInvalidArgument)
	}
	s.feedbacks.Add(1)
	newQ, newW, err := s.eng.RefineFromScores(sess.q, sess.results, scores)
	if errors.Is(err, feedback.ErrNoGoodMatches) {
		// Nothing to learn from: the loop terminates with the current
		// parameters, exactly like engine.RunLoop.
		sess.converged = true
		return sess.stateLocked(), nil
	}
	if err != nil {
		// The session's own state is validated; a refine failure means the
		// scores were malformed (NaN, negative, ...) — a client error.
		return SessionState{}, fmt.Errorf("%w: %w", err, ErrInvalidArgument)
	}
	// As in Open: abort before the collection-sized scan if the client is
	// gone or the deadline has passed. The session is unchanged (q, w and
	// results only update after a successful retrieve), so a retried
	// Feedback with the same scores reproduces this round exactly.
	if err := ctx.Err(); err != nil {
		return SessionState{}, err
	}
	newResults, err := s.eng.Retrieve(newQ, newW, sess.k)
	if err != nil {
		return SessionState{}, err
	}
	sess.q, sess.w = newQ, newW
	sess.iters++
	if knn.SameIndexSet(newResults, sess.results) {
		sess.converged = true
	}
	sess.results = newResults
	sig := engine.ResultSignature(newResults)
	if sess.seen[sig] {
		sess.converged = true
	}
	sess.seen[sig] = true
	if sess.iters >= sess.budget {
		sess.converged = true
	}
	return sess.stateLocked(), nil
}

// CloseResult reports what Close did with the session.
type CloseResult struct {
	ID         uint64
	Iterations int
	// Inserted reports whether the session's converged OQPs changed the
	// shared Bypass (an outcome within ε of the current prediction is
	// skipped, §4.2; a session that never gave feedback is not inserted).
	Inserted bool
}

// Close ends the session and — when the session actually refined its
// parameters — inserts the converged OQPs into the shared Bypass, making
// the outcome available to every future session. The session is removed
// even when the insert fails; an insert refused by the store's quota or
// its degraded read-only mode returns the typed sentinel
// (core.ErrQuotaExceeded / core.ErrDegraded) so transports can map it,
// while the session itself still closed cleanly.
//
// ctx is consulted only before the session is unpublished: once Close
// commits to removing the session it finishes the insert even if the
// client disconnects, so a learned outcome is never dropped halfway.
func (s *Service) Close(ctx context.Context, id uint64) (CloseResult, error) {
	if s.met == nil {
		return s.closeSession(ctx, id)
	}
	t0 := time.Now()
	res, err := s.closeSession(ctx, id)
	s.met.done(opClose, t0, err)
	return res, err
}

func (s *Service) closeSession(ctx context.Context, id uint64) (CloseResult, error) {
	if err := ctx.Err(); err != nil {
		return CloseResult{}, err
	}
	s.mu.Lock()
	sess, ok := s.sessions[id]
	if ok {
		delete(s.sessions, id)
	}
	s.mu.Unlock()
	if !ok {
		return CloseResult{}, fmt.Errorf("service: session %d: %w", id, ErrSessionNotFound)
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	sess.closed = true
	s.closed.Add(1)
	out := CloseResult{ID: id, Iterations: sess.iters}
	if sess.iters == 0 {
		// No feedback was given: the final parameters are the prediction
		// itself; re-inserting it teaches the tree nothing.
		return out, nil
	}
	qp, err := s.codec.QueryPoint(sess.q0)
	if err != nil {
		return out, err
	}
	oqp, err := s.codec.EncodeOQP(sess.q0, sess.q, sess.w)
	if err != nil {
		return out, err
	}
	s.inserts.Add(1)
	changed, err := s.byp.Insert(qp, oqp)
	if err != nil {
		switch {
		case errors.Is(err, core.ErrQuotaExceeded):
			s.quotaRejects.Add(1)
		case errors.Is(err, core.ErrDegraded):
			s.degradedRejects.Add(1)
		}
		return out, err
	}
	out.Inserted = changed
	if changed {
		s.stored.Add(1)
	}
	if changed && s.cache != nil {
		// One shard's tree changed: cached predictions computed by that
		// shard may now differ from fresh ones. Generation-bump-and-drop
		// scoped to the shard keeps the parity guarantee without touching
		// entries the insert cannot have affected.
		s.cache.Invalidate(s.shardOf(qp))
	}
	return out, nil
}

// Drain closes every in-flight session (inserting converged outcomes) and
// returns how many sessions were closed and how many inserts changed the
// Bypass. It is the graceful-shutdown path of cmd/fbserve; ctx bounds the
// sweep — when it expires, Drain stops and reports the context error
// alongside whatever it managed to close.
func (s *Service) Drain(ctx context.Context) (closedSessions, inserted int, err error) {
	s.mu.RLock()
	ids := make([]uint64, 0, len(s.sessions))
	for id := range s.sessions {
		ids = append(ids, id)
	}
	s.mu.RUnlock()
	var firstErr error
	for _, id := range ids {
		if cerr := ctx.Err(); cerr != nil {
			if firstErr == nil {
				firstErr = cerr
			}
			break
		}
		res, cerr := s.Close(ctx, id)
		if errors.Is(cerr, ErrSessionNotFound) {
			continue // raced with a client Close; already gone
		}
		closedSessions++
		if cerr != nil && firstErr == nil {
			firstErr = cerr
		}
		if res.Inserted {
			inserted++
		}
	}
	return closedSessions, inserted, firstErr
}

// ErrNotCompactable is returned by CompactAged when the underlying
// Bypass does not expose a lifecycle surface.
var ErrNotCompactable = errors.New("service: bypass does not support compaction")

// CompactAged runs one aging pass over the shared Bypass: every shard
// rebuilds its tree keeping only vertices reinforced within the aging
// horizon (corner vertices always survive; a zero horizon reclaims
// nothing). It returns one CompactionStats per shard, indexed by shard
// id.
//
// The service owns the prediction-cache coherence: a shard whose pass
// reclaimed vertices serves different predictions afterwards, so its
// cache generation is bumped — and only its generation, so a pass that
// reclaims from shard 3 alone cannot evict shard 5's still-valid
// entries. Shards with Reclaimed == 0 rebuilt into a geometrically
// identical tree (re-inserting the same census is deterministic) and
// keep their cached predictions.
//
// A partial failure (one shard degraded or mid-replay) still compacts
// and invalidates the shards that succeeded; the joined error reports
// the rest. ctx is consulted only on entry — once a pass starts, the
// atomic snapshot+WAL swap must complete.
func (s *Service) CompactAged(ctx context.Context) ([]core.CompactionStats, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if s.comp == nil {
		return nil, ErrNotCompactable
	}
	stats, err := s.comp.CompactAged()
	for shard, st := range stats {
		if st.Reclaimed > 0 {
			s.reclaimedByService.Add(int64(st.Reclaimed))
			if s.cache != nil {
				s.cache.Invalidate(shard)
			}
		}
	}
	if len(stats) > 0 {
		s.compactions.Add(1)
	}
	return stats, err
}

// ShardStat is one bypass shard's counters as the serving layer sees
// them: the shard's own state (tree shape, accepted inserts, journal
// depth, WAL bytes) plus the prediction cache's invalidation generation
// for that shard.
type ShardStat struct {
	shardedbypass.ShardInfo
	CacheGen uint64 `json:"cache_gen"`
}

// Stats is a point-in-time snapshot of the serving layer.
type Stats struct {
	ActiveSessions int   `json:"active_sessions"`
	Opened         int64 `json:"opened"`
	Rejected       int64 `json:"rejected"`
	Closed         int64 `json:"closed"`
	Feedbacks      int64 `json:"feedbacks"`
	Predictions    int64 `json:"predictions"`
	CacheHits      int64 `json:"cache_hits"`
	CacheEntries   int   `json:"cache_entries"`
	WarmStarts     int64 `json:"warm_starts"`
	Inserts        int64 `json:"inserts"`
	InsertsStored  int64 `json:"inserts_stored"`

	// Retrieval names the engine's active retrieval tier — "scan",
	// "vptree", or an approximate index like "ivf(nlist=64,nprobe=8,
	// quant=f32)" — so operators can see which tier is answering queries.
	Retrieval string `json:"retrieval,omitempty"`

	// Degraded carries the store's sticky persistence failure (empty while
	// healthy): the module — or at least one shard — serves reads but
	// rejects inserts. QuotaRejects / DegradedRejects count session
	// outcomes the store refused to learn from, by cause.
	Degraded        string `json:"degraded,omitempty"`
	QuotaRejects    int64  `json:"quota_rejects,omitempty"`
	DegradedRejects int64  `json:"degraded_rejects,omitempty"`

	// Lifecycle: Compactions counts aging passes driven through
	// Service.CompactAged; Reclaimed sums the vertices those passes
	// removed. (Store-internal quota-pressure compactions appear in the
	// per-shard counters of Shards, not here.)
	Compactions int64 `json:"compactions,omitempty"`
	Reclaimed   int64 `json:"reclaimed,omitempty"`

	// Tree aggregates every shard (the whole learned mapping); Shards
	// breaks it down per partition when the Bypass is sharded.
	Tree   simplextree.Stats `json:"tree"`
	Shards []ShardStat       `json:"shards,omitempty"`
}

// Stats snapshots the service counters and the shared tree's shape,
// including per-shard counters when the Bypass is partitioned.
func (s *Service) Stats() Stats {
	s.mu.RLock()
	active := len(s.sessions)
	s.mu.RUnlock()
	st := Stats{
		ActiveSessions:  active,
		Opened:          s.opened.Load(),
		Rejected:        s.rejected.Load(),
		Closed:          s.closed.Load(),
		Feedbacks:       s.feedbacks.Load(),
		Predictions:     s.predictions.Load(),
		CacheHits:       s.cacheHits.Load(),
		WarmStarts:      s.warmStarts.Load(),
		Inserts:         s.inserts.Load(),
		InsertsStored:   s.stored.Load(),
		QuotaRejects:    s.quotaRejects.Load(),
		DegradedRejects: s.degradedRejects.Load(),
		Compactions:     s.compactions.Load(),
		Reclaimed:       s.reclaimedByService.Load(),
		Retrieval:       s.eng.Retrieval(),
		Tree:            s.byp.Stats(),
	}
	if derr := s.Degraded(); derr != nil {
		st.Degraded = derr.Error()
	}
	if s.cache != nil {
		st.CacheEntries = s.cache.Len()
	}
	if s.parts != nil {
		infos := s.parts.ShardInfos()
		var gens []uint64
		if s.cache != nil {
			gens = s.cache.Generations()
		}
		st.Shards = make([]ShardStat, len(infos))
		for i, info := range infos {
			st.Shards[i] = ShardStat{ShardInfo: info}
			if i < len(gens) {
				st.Shards[i].CacheGen = gens[i]
			}
		}
	}
	return st
}
