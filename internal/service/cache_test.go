package service

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/histogram"
	"repro/internal/imagegen"
	"repro/internal/shardedbypass"
)

func oqpFor(x float64, n int) core.OQP {
	oqp := core.OQP{Delta: make([]float64, n), Weights: make([]float64, n)}
	for i := range oqp.Delta {
		oqp.Delta[i] = x
	}
	return oqp
}

// TestCachePerShardInvalidation is the regression test for the
// all-or-nothing invalidation the sharded plane removed: entries cached
// for untouched shards must survive an Invalidate of another shard, and
// only the invalidated shard's generation may move.
func TestCachePerShardInvalidation(t *testing.T) {
	const shards = 4
	c := newPredictionCache(16, shards)
	qs := make([][]float64, shards)
	sigs := make([]uint64, shards)
	for sh := 0; sh < shards; sh++ {
		qs[sh] = []float64{float64(sh) * 0.1, 0.2, 0.3}
		sigs[sh] = engine.QuerySignature(qs[sh])
		c.Put(sh, c.Generation(sh), sigs[sh], qs[sh], oqpFor(float64(sh), 3))
	}
	if c.Len() != shards {
		t.Fatalf("cache holds %d entries, want %d", c.Len(), shards)
	}

	c.Invalidate(1)

	if c.Len() != shards-1 {
		t.Fatalf("after Invalidate(1): %d entries, want %d", c.Len(), shards-1)
	}
	for sh := 0; sh < shards; sh++ {
		oqp, ok := c.Get(sigs[sh], qs[sh])
		if sh == 1 {
			if ok {
				t.Error("invalidated shard 1 still serves its entry")
			}
			continue
		}
		if !ok {
			t.Errorf("shard %d entry dropped by an insert into shard 1", sh)
			continue
		}
		if oqp.Delta[0] != float64(sh) {
			t.Errorf("shard %d entry corrupted: %v", sh, oqp.Delta)
		}
	}
	gens := c.Generations()
	for sh, g := range gens {
		want := uint64(0)
		if sh == 1 {
			want = 1
		}
		if g != want {
			t.Errorf("shard %d generation %d, want %d", sh, g, want)
		}
	}

	// A Put computed against the pre-invalidation generation is discarded;
	// one at the current generation lands.
	c.Put(1, 0, sigs[1], qs[1], oqpFor(1, 3))
	if _, ok := c.Get(sigs[1], qs[1]); ok {
		t.Error("stale-generation Put landed in the cache")
	}
	c.Put(1, c.Generation(1), sigs[1], qs[1], oqpFor(1, 3))
	if _, ok := c.Get(sigs[1], qs[1]); !ok {
		t.Error("current-generation Put did not land")
	}
}

// newShardedTestService is newTestService over a partitioned in-memory
// bypass.
func newShardedTestService(t *testing.T, shards int, opts Options) (*Service, *dataset.Dataset) {
	t.Helper()
	ds, err := dataset.Build(imagegen.IMSILike(7, 0.03), histogram.DefaultExtractor)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.New(ds, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	codec, err := core.NewHistogramCodec(ds.Dim)
	if err != nil {
		t.Fatal(err)
	}
	byp, err := shardedbypass.New(codec.D(), codec.P(), core.Config{
		Epsilon:        0.05,
		DefaultWeights: codec.DefaultWeights(),
	}, shardedbypass.Options{Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := New(eng, byp, opts)
	if err != nil {
		t.Fatal(err)
	}
	return svc, ds
}

// TestShardedServiceScopedInvalidation drives the whole serving stack
// over a 4-shard bypass: predictions for many items fill the cache, one
// session's insert lands in one shard, and every cached entry belonging
// to the other shards must still be served as a cache hit afterwards.
func TestShardedServiceScopedInvalidation(t *testing.T) {
	const shards = 4
	svc, ds := newShardedTestService(t, shards, Options{DefaultK: 5})
	parts := svc.parts
	if parts == nil || parts.NumShards() != shards {
		t.Fatalf("service did not detect the partitioned bypass")
	}

	// Fill the cache: open+close (no feedback → no insert) across items
	// covering at least two shards.
	codec := svc.Codec()
	items := []int{}
	shardsSeen := map[int]bool{}
	for i := 0; i < ds.Len() && len(items) < 12; i++ {
		qp, err := codec.QueryPoint(ds.Items[i].Feature)
		if err != nil {
			t.Fatal(err)
		}
		items = append(items, i)
		shardsSeen[parts.ShardOf(qp)] = true
	}
	if len(shardsSeen) < 2 {
		t.Skip("collection sample maps to one shard; partition degeneracy")
	}
	for _, i := range items {
		st, err := svc.Open(ds.Items[i].Feature, 5)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := svc.Close(st.ID); err != nil {
			t.Fatal(err)
		}
	}
	if got := svc.Stats().CacheEntries; got == 0 {
		t.Fatal("cache not filled")
	}

	// Run one full feedback session until an insert changes some shard.
	insertedShard := -1
	for _, i := range items {
		res := runSession(t, svc, ds, i, 5)
		if res.Inserted {
			qp, err := codec.QueryPoint(ds.Items[i].Feature)
			if err != nil {
				t.Fatal(err)
			}
			insertedShard = parts.ShardOf(qp)
			break
		}
	}
	if insertedShard < 0 {
		t.Fatal("no session produced an insert")
	}

	// Every item cached for a different shard must still hit.
	st := svc.Stats()
	gens := st.Shards
	if len(gens) != shards {
		t.Fatalf("stats report %d shards, want %d", len(gens), shards)
	}
	for sh, g := range gens {
		if sh == insertedShard {
			if g.CacheGen == 0 {
				t.Errorf("inserted shard %d generation did not move", sh)
			}
			continue
		}
		if g.CacheGen != 0 {
			t.Errorf("untouched shard %d generation moved to %d", sh, g.CacheGen)
		}
	}
	for _, i := range items {
		qp, err := codec.QueryPoint(ds.Items[i].Feature)
		if err != nil {
			t.Fatal(err)
		}
		if parts.ShardOf(qp) == insertedShard {
			continue
		}
		before := svc.Stats().CacheHits
		stOpen, err := svc.Open(ds.Items[i].Feature, 5)
		if err != nil {
			t.Fatal(err)
		}
		if !stOpen.CacheHit {
			t.Errorf("item %d (shard %d): cache entry lost to an insert into shard %d",
				i, parts.ShardOf(qp), insertedShard)
		}
		if svc.Stats().CacheHits != before+1 && stOpen.CacheHit {
			t.Errorf("cache-hit counter inconsistent")
		}
		if _, err := svc.Close(stOpen.ID); err != nil {
			t.Fatal(err)
		}
	}
}

// TestUnshardedSingleShardCache pins the compatibility mode at the
// service layer: an unsharded Bypass behaves as one shard whose
// invalidation drops everything (the pre-sharding semantics).
func TestUnshardedSingleShardCache(t *testing.T) {
	svc, ds := newTestService(t, Options{DefaultK: 5})
	if svc.parts != nil {
		t.Fatal("plain core.Bypass detected as partitioned")
	}
	for i := 0; i < 6; i++ {
		st, err := svc.Open(ds.Items[i].Feature, 5)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := svc.Close(st.ID); err != nil {
			t.Fatal(err)
		}
	}
	if svc.Stats().CacheEntries == 0 {
		t.Fatal("cache not filled")
	}
	// Find a session that inserts; afterwards the whole cache is empty.
	for i := 0; i < ds.Len(); i++ {
		if runSession(t, svc, ds, i, 5).Inserted {
			if got := svc.Stats().CacheEntries; got != 0 {
				t.Fatalf("unsharded insert left %d cache entries, want 0", got)
			}
			if len(svc.Stats().Shards) != 0 {
				t.Error("unsharded stats report per-shard counters")
			}
			return
		}
	}
	t.Fatal("no session produced an insert")
}
