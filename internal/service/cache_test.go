package service

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/histogram"
	"repro/internal/imagegen"
	"repro/internal/shardedbypass"
)

func oqpFor(x float64, n int) core.OQP {
	oqp := core.OQP{Delta: make([]float64, n), Weights: make([]float64, n)}
	for i := range oqp.Delta {
		oqp.Delta[i] = x
	}
	return oqp
}

// TestCachePerShardInvalidation is the regression test for the
// all-or-nothing invalidation the sharded plane removed: entries cached
// for untouched shards must survive an Invalidate of another shard, and
// only the invalidated shard's generation may move.
func TestCachePerShardInvalidation(t *testing.T) {
	const shards = 4
	c := newPredictionCache(16, shards)
	qs := make([][]float64, shards)
	sigs := make([]uint64, shards)
	for sh := 0; sh < shards; sh++ {
		qs[sh] = []float64{float64(sh) * 0.1, 0.2, 0.3}
		sigs[sh] = engine.QuerySignature(qs[sh])
		c.Put(sh, c.Generation(sh), sigs[sh], qs[sh], oqpFor(float64(sh), 3))
	}
	if c.Len() != shards {
		t.Fatalf("cache holds %d entries, want %d", c.Len(), shards)
	}

	c.Invalidate(1)

	if c.Len() != shards-1 {
		t.Fatalf("after Invalidate(1): %d entries, want %d", c.Len(), shards-1)
	}
	for sh := 0; sh < shards; sh++ {
		oqp, ok := c.Get(sigs[sh], qs[sh])
		if sh == 1 {
			if ok {
				t.Error("invalidated shard 1 still serves its entry")
			}
			continue
		}
		if !ok {
			t.Errorf("shard %d entry dropped by an insert into shard 1", sh)
			continue
		}
		if oqp.Delta[0] != float64(sh) {
			t.Errorf("shard %d entry corrupted: %v", sh, oqp.Delta)
		}
	}
	gens := c.Generations()
	for sh, g := range gens {
		want := uint64(0)
		if sh == 1 {
			want = 1
		}
		if g != want {
			t.Errorf("shard %d generation %d, want %d", sh, g, want)
		}
	}

	// A Put computed against the pre-invalidation generation is discarded;
	// one at the current generation lands.
	c.Put(1, 0, sigs[1], qs[1], oqpFor(1, 3))
	if _, ok := c.Get(sigs[1], qs[1]); ok {
		t.Error("stale-generation Put landed in the cache")
	}
	c.Put(1, c.Generation(1), sigs[1], qs[1], oqpFor(1, 3))
	if _, ok := c.Get(sigs[1], qs[1]); !ok {
		t.Error("current-generation Put did not land")
	}
}

// cachePoint builds a distinct query point and its signature for cache
// key tests.
func cachePoint(i int) ([]float64, uint64) {
	q := []float64{float64(i) * 0.01, 0.5, 0.25}
	return q, engine.QuerySignature(q)
}

// TestCacheCapacityBound pins the LRU's capacity invariant directly:
// the entry count never exceeds the configured capacity no matter how
// many distinct keys are inserted.
func TestCacheCapacityBound(t *testing.T) {
	const cap = 8
	c := newPredictionCache(cap, 1)
	for i := 0; i < 5*cap; i++ {
		q, sig := cachePoint(i)
		c.Put(0, c.Generation(0), sig, q, oqpFor(float64(i), 3))
		if c.Len() > cap {
			t.Fatalf("after %d puts: %d entries exceed capacity %d", i+1, c.Len(), cap)
		}
	}
	if c.Len() != cap {
		t.Fatalf("steady state holds %d entries, want %d", c.Len(), cap)
	}
	// The cap survivors are exactly the most recent cap inserts.
	for i := 0; i < 5*cap; i++ {
		q, sig := cachePoint(i)
		_, ok := c.Get(sig, q)
		if want := i >= 4*cap; ok != want {
			t.Errorf("entry %d cached=%v, want %v", i, ok, want)
		}
	}
}

// TestCacheLRUEvictionOrder pins the eviction order: filling the cache,
// touching a subset via Get, then overflowing must evict the
// least-recently-used entries — not the oldest-inserted ones.
func TestCacheLRUEvictionOrder(t *testing.T) {
	const cap = 4
	c := newPredictionCache(cap, 1)
	qs := make([][]float64, 6)
	sigs := make([]uint64, 6)
	for i := 0; i < 6; i++ {
		qs[i], sigs[i] = cachePoint(i)
	}
	for i := 0; i < cap; i++ { // cache: [3 2 1 0] (front = MRU)
		c.Put(0, c.Generation(0), sigs[i], qs[i], oqpFor(float64(i), 3))
	}
	// Touch 0 then 1: recency becomes [1 0 3 2].
	if _, ok := c.Get(sigs[0], qs[0]); !ok {
		t.Fatal("entry 0 missing before eviction")
	}
	if _, ok := c.Get(sigs[1], qs[1]); !ok {
		t.Fatal("entry 1 missing before eviction")
	}
	// Two more inserts evict exactly 2 then 3 (the LRU tail), sparing
	// the older-but-recently-touched 0 and 1.
	c.Put(0, c.Generation(0), sigs[4], qs[4], oqpFor(4, 3))
	if _, ok := c.Get(sigs[2], qs[2]); ok {
		t.Error("LRU entry 2 survived the first overflow")
	}
	c.Put(0, c.Generation(0), sigs[5], qs[5], oqpFor(5, 3))
	if _, ok := c.Get(sigs[3], qs[3]); ok {
		t.Error("LRU entry 3 survived the second overflow")
	}
	for _, i := range []int{0, 1, 4, 5} {
		if _, ok := c.Get(sigs[i], qs[i]); !ok {
			t.Errorf("entry %d evicted out of LRU order", i)
		}
	}
}

// TestCachePutRefreshAndCollision: re-putting an existing key refreshes
// its value and recency in place (no growth), and a signature collision
// between distinct points replaces the older entry while Get on the
// displaced point misses.
func TestCachePutRefreshAndCollision(t *testing.T) {
	c := newPredictionCache(4, 1)
	q0, sig0 := cachePoint(0)
	c.Put(0, c.Generation(0), sig0, q0, oqpFor(1, 3))
	c.Put(0, c.Generation(0), sig0, q0, oqpFor(2, 3))
	if c.Len() != 1 {
		t.Fatalf("refresh grew the cache to %d entries", c.Len())
	}
	if oqp, ok := c.Get(sig0, q0); !ok || oqp.Delta[0] != 2 {
		t.Fatalf("refresh did not replace the value: %v %v", oqp, ok)
	}
	// Same signature, different point (a forced collision): the entry is
	// replaced, and the old point no longer hits.
	q1, _ := cachePoint(1)
	c.Put(0, c.Generation(0), sig0, q1, oqpFor(3, 3))
	if c.Len() != 1 {
		t.Fatalf("collision replace grew the cache to %d entries", c.Len())
	}
	if _, ok := c.Get(sig0, q0); ok {
		t.Error("displaced point still served after collision replace")
	}
	if oqp, ok := c.Get(sig0, q1); !ok || oqp.Delta[0] != 3 {
		t.Errorf("colliding point not served: %v %v", oqp, ok)
	}
	// A Get returns a deep copy: mutating it must not corrupt the cache.
	oqp, _ := c.Get(sig0, q1)
	oqp.Delta[0] = 99
	if again, _ := c.Get(sig0, q1); again.Delta[0] != 3 {
		t.Error("Get returned an aliased OQP; cache corrupted by caller mutation")
	}
}

// newShardedTestService is newTestService over a partitioned in-memory
// bypass.
func newShardedTestService(t *testing.T, shards int, opts Options) (*Service, *dataset.Dataset) {
	t.Helper()
	ds, err := dataset.Build(imagegen.IMSILike(7, 0.03), histogram.DefaultExtractor)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.New(ds, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	codec, err := core.NewHistogramCodec(ds.Dim)
	if err != nil {
		t.Fatal(err)
	}
	byp, err := shardedbypass.New(codec.D(), codec.P(), core.Config{
		Epsilon:        0.05,
		DefaultWeights: codec.DefaultWeights(),
	}, shardedbypass.Options{Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := New(eng, byp, opts)
	if err != nil {
		t.Fatal(err)
	}
	return svc, ds
}

// TestShardedServiceScopedInvalidation drives the whole serving stack
// over a 4-shard bypass: predictions for many items fill the cache, one
// session's insert lands in one shard, and every cached entry belonging
// to the other shards must still be served as a cache hit afterwards.
func TestShardedServiceScopedInvalidation(t *testing.T) {
	const shards = 4
	svc, ds := newShardedTestService(t, shards, Options{DefaultK: 5})
	parts := svc.parts
	if parts == nil || parts.NumShards() != shards {
		t.Fatalf("service did not detect the partitioned bypass")
	}

	// Fill the cache: open+close (no feedback → no insert) across items
	// covering at least two shards.
	codec := svc.Codec()
	items := []int{}
	shardsSeen := map[int]bool{}
	for i := 0; i < ds.Len() && len(items) < 12; i++ {
		qp, err := codec.QueryPoint(ds.Items[i].Feature)
		if err != nil {
			t.Fatal(err)
		}
		items = append(items, i)
		shardsSeen[parts.ShardOf(qp)] = true
	}
	if len(shardsSeen) < 2 {
		t.Skip("collection sample maps to one shard; partition degeneracy")
	}
	for _, i := range items {
		st, err := svc.Open(context.Background(), ds.Items[i].Feature, 5)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := svc.Close(context.Background(), st.ID); err != nil {
			t.Fatal(err)
		}
	}
	if got := svc.Stats().CacheEntries; got == 0 {
		t.Fatal("cache not filled")
	}

	// Run one full feedback session until an insert changes some shard.
	insertedShard := -1
	for _, i := range items {
		res := runSession(t, svc, ds, i, 5)
		if res.Inserted {
			qp, err := codec.QueryPoint(ds.Items[i].Feature)
			if err != nil {
				t.Fatal(err)
			}
			insertedShard = parts.ShardOf(qp)
			break
		}
	}
	if insertedShard < 0 {
		t.Fatal("no session produced an insert")
	}

	// Every item cached for a different shard must still hit.
	st := svc.Stats()
	gens := st.Shards
	if len(gens) != shards {
		t.Fatalf("stats report %d shards, want %d", len(gens), shards)
	}
	for sh, g := range gens {
		if sh == insertedShard {
			if g.CacheGen == 0 {
				t.Errorf("inserted shard %d generation did not move", sh)
			}
			continue
		}
		if g.CacheGen != 0 {
			t.Errorf("untouched shard %d generation moved to %d", sh, g.CacheGen)
		}
	}
	for _, i := range items {
		qp, err := codec.QueryPoint(ds.Items[i].Feature)
		if err != nil {
			t.Fatal(err)
		}
		if parts.ShardOf(qp) == insertedShard {
			continue
		}
		before := svc.Stats().CacheHits
		stOpen, err := svc.Open(context.Background(), ds.Items[i].Feature, 5)
		if err != nil {
			t.Fatal(err)
		}
		if !stOpen.CacheHit {
			t.Errorf("item %d (shard %d): cache entry lost to an insert into shard %d",
				i, parts.ShardOf(qp), insertedShard)
		}
		if svc.Stats().CacheHits != before+1 && stOpen.CacheHit {
			t.Errorf("cache-hit counter inconsistent")
		}
		if _, err := svc.Close(context.Background(), stOpen.ID); err != nil {
			t.Fatal(err)
		}
	}
}

// TestUnshardedSingleShardCache pins the compatibility mode at the
// service layer: an unsharded Bypass behaves as one shard whose
// invalidation drops everything (the pre-sharding semantics).
func TestUnshardedSingleShardCache(t *testing.T) {
	svc, ds := newTestService(t, Options{DefaultK: 5})
	if svc.parts != nil {
		t.Fatal("plain core.Bypass detected as partitioned")
	}
	for i := 0; i < 6; i++ {
		st, err := svc.Open(context.Background(), ds.Items[i].Feature, 5)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := svc.Close(context.Background(), st.ID); err != nil {
			t.Fatal(err)
		}
	}
	if svc.Stats().CacheEntries == 0 {
		t.Fatal("cache not filled")
	}
	// Find a session that inserts; afterwards the whole cache is empty.
	for i := 0; i < ds.Len(); i++ {
		if runSession(t, svc, ds, i, 5).Inserted {
			if got := svc.Stats().CacheEntries; got != 0 {
				t.Fatalf("unsharded insert left %d cache entries, want 0", got)
			}
			if len(svc.Stats().Shards) != 0 {
				t.Error("unsharded stats report per-shard counters")
			}
			return
		}
	}
	t.Fatal("no session produced an insert")
}
