package service

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

// TestConcurrentSessions exercises the whole lifecycle from many
// goroutines against one shared engine and Bypass — the workload the race
// detector must come back clean on (CI runs this package with -race).
// Every goroutine runs complete oracle-driven sessions: Open, interleaved
// Query, Feedback to convergence, Close (inserting into the shared tree,
// which invalidates the shared prediction cache under the readers).
func TestConcurrentSessions(t *testing.T) {
	svc, ds := newTestService(t, Options{MaxSessions: 64, IterationBudget: 6})
	const (
		goroutines   = 8
		perGoroutine = 6
	)
	var (
		wg        sync.WaitGroup
		completed atomic.Int64
	)
	errCh := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perGoroutine; i++ {
				item := ds.Items[(g*perGoroutine+i*13)%ds.Len()]
				st, err := svc.Open(context.Background(), item.Feature, 8)
				if err != nil {
					errCh <- err
					return
				}
				for !st.Converged {
					if _, err := svc.Query(context.Background(), st.ID); err != nil {
						errCh <- err
						return
					}
					st, err = svc.Feedback(context.Background(), st.ID, oracleScores(ds, item.Category, st.Results))
					if err != nil {
						errCh <- err
						return
					}
				}
				if _, err := svc.Close(context.Background(), st.ID); err != nil {
					errCh <- err
					return
				}
				completed.Add(1)
			}
		}(g)
	}
	// Stats readers run concurrently with the sessions.
	stop := make(chan struct{})
	var statsWG sync.WaitGroup
	statsWG.Add(1)
	go func() {
		defer statsWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = svc.Stats()
			}
		}
	}()
	wg.Wait()
	close(stop)
	statsWG.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if completed.Load() != goroutines*perGoroutine {
		t.Fatalf("completed %d sessions, want %d", completed.Load(), goroutines*perGoroutine)
	}
	stats := svc.Stats()
	if stats.ActiveSessions != 0 {
		t.Errorf("%d sessions leaked", stats.ActiveSessions)
	}
	if stats.Opened != goroutines*perGoroutine || stats.Closed != stats.Opened {
		t.Errorf("opened %d / closed %d, want %d", stats.Opened, stats.Closed, goroutines*perGoroutine)
	}
	if stats.Inserts == 0 {
		t.Error("no session ever inserted into the shared bypass")
	}
}

// TestConcurrentAdmission hammers a tiny admission bound: the invariant is
// that in-flight sessions never exceed MaxSessions and every Open either
// succeeds or fails with ErrOverloaded.
func TestConcurrentAdmission(t *testing.T) {
	const maxSessions = 4
	svc, ds := newTestService(t, Options{MaxSessions: maxSessions})
	var wg sync.WaitGroup
	errCh := make(chan error, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				st, err := svc.Open(context.Background(), ds.Items[(g+i)%ds.Len()].Feature, 4)
				if errors.Is(err, ErrOverloaded) {
					continue
				}
				if err != nil {
					errCh <- err
					return
				}
				if n := svc.Stats().ActiveSessions; n > maxSessions {
					errCh <- errors.New("admission bound exceeded")
					return
				}
				if _, err := svc.Close(context.Background(), st.ID); err != nil {
					errCh <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if svc.Stats().ActiveSessions != 0 {
		t.Error("sessions leaked")
	}
}
