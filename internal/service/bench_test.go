package service

import (
	"context"
	"testing"

	"repro/internal/obsv"
)

// benchSession drives one full Open → Feedback* → Close session — the
// serve-path unit the ≤5% instrumentation-overhead budget is measured
// over (see DESIGN.md, "Observability plane").
func benchSession(b *testing.B, svc *Service, feature []float64, scores []float64) {
	ctx := context.Background()
	st, err := svc.Open(ctx, feature, 10)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 3 && !st.Converged; i++ {
		sc := scores[:len(st.Results)]
		st, err = svc.Feedback(ctx, st.ID, sc)
		if err != nil {
			b.Fatal(err)
		}
	}
	if _, err := svc.Close(ctx, st.ID); err != nil {
		b.Fatal(err)
	}
}

func runServeBench(b *testing.B, opts Options) {
	svc, ds := newTestService(b, opts)
	item := ds.Items[0]
	scores := make([]float64, 64)
	for i := range scores {
		if i%2 == 0 {
			scores[i] = 1
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSession(b, svc, item.Feature, scores)
	}
}

// BenchmarkServe is the uninstrumented serve path (Options.Obs nil: no
// registry, no clock reads).
func BenchmarkServe(b *testing.B) {
	runServeBench(b, Options{})
}

// BenchmarkServeInstrumented is the same path with the full observability
// plane attached. Compare against BenchmarkServe to measure the
// instrumentation overhead; budget is ≤5%.
func BenchmarkServeInstrumented(b *testing.B) {
	runServeBench(b, Options{
		Obs:       obsv.NewRegistry(),
		ObsLabels: []obsv.Label{obsv.L("collection", "bench")},
	})
}
