package service

import (
	"context"
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/obsv"
	"repro/internal/shardedbypass"
)

func TestClassifyOutcome(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{nil, outOK},
		{ErrInvalidArgument, outInvalid},
		{ErrOverloaded, outOverloaded},
		{ErrSessionNotFound, outNotFound},
		{context.Canceled, outCanceled},
		{context.DeadlineExceeded, outDeadline},
		{core.ErrQuotaExceeded, outQuota},
		{core.ErrDegraded, outDegraded},
		{shardedbypass.ErrReplaying, outReplaying},
		{errors.New("boom"), outError},
		// Wrapped sentinels classify the same as bare ones.
		{errors.Join(core.ErrDegraded, errors.New("disk gone")), outDegraded},
	}
	for _, tc := range cases {
		if got := classifyOutcome(tc.err); got != tc.want {
			t.Errorf("classifyOutcome(%v) = %s, want %s", tc.err, outcomeNames[got], outcomeNames[tc.want])
		}
	}
}

// TestServiceInstrumentation drives a full session through an
// instrumented service and checks the registry ends up with the series
// the /metrics endpoint and the soak report read.
func TestServiceInstrumentation(t *testing.T) {
	reg := obsv.NewRegistry()
	svc, ds := newTestService(t, Options{Obs: reg, ObsLabels: []obsv.Label{obsv.L("collection", "test")}})
	runSession(t, svc, ds, 0, 5)
	// A second session on the same item exercises the cache-hit path.
	runSession(t, svc, ds, 0, 5)
	// And one invalid open for the error taxonomy.
	if _, err := svc.Open(context.Background(), []float64{1}, 5); !errors.Is(err, ErrInvalidArgument) {
		t.Fatalf("short feature: %v", err)
	}

	s := reg.Snapshot()
	okOpens := s.Find("fb_service_requests_total", obsv.L("op", "open"), obsv.L("outcome", "ok"))
	if okOpens == nil || okOpens.Value != 2 {
		t.Fatalf("open/ok = %+v, want 2", okOpens)
	}
	badOpens := s.Find("fb_service_requests_total", obsv.L("op", "open"), obsv.L("outcome", "invalid_argument"))
	if badOpens == nil || badOpens.Value != 1 {
		t.Fatalf("open/invalid_argument = %+v, want 1", badOpens)
	}
	lat := s.Find("fb_service_request_seconds", obsv.L("op", "open"))
	if lat == nil || lat.Hist == nil || lat.Hist.Count != 3 {
		t.Fatalf("open latency histogram = %+v, want 3 observations", lat)
	}
	closes := s.Find("fb_service_requests_total", obsv.L("op", "close"), obsv.L("outcome", "ok"))
	if closes == nil || closes.Value != 2 {
		t.Fatalf("close/ok = %+v, want 2", closes)
	}
	hits := s.Find("fb_service_cache_requests_total", obsv.L("result", "hit"))
	misses := s.Find("fb_service_cache_requests_total", obsv.L("result", "miss"))
	if misses == nil || misses.Value < 1 {
		t.Fatalf("cache misses = %+v, want >= 1", misses)
	}
	if hits == nil {
		t.Fatalf("cache hit counter was not registered")
	}
	if int64(hits.Value) != svc.Stats().CacheHits {
		t.Fatalf("cache hits metric %v != Stats().CacheHits %d", hits.Value, svc.Stats().CacheHits)
	}
	if g := s.Find("fb_service_sessions_active"); g == nil || g.Value != 0 {
		t.Fatalf("sessions_active = %+v, want 0 after all sessions closed", g)
	}
	if g := s.Find("fb_service_cache_entries"); g == nil {
		t.Fatalf("cache_entries gauge missing")
	}
}

// TestUninstrumentedServiceHasNoMetrics pins the contract the overhead
// benchmark relies on: with Options.Obs nil the service keeps met == nil
// and takes the zero-clock fast path.
func TestUninstrumentedServiceHasNoMetrics(t *testing.T) {
	svc, ds := newTestService(t, Options{})
	if svc.met != nil {
		t.Fatalf("service without Obs must not carry metrics")
	}
	runSession(t, svc, ds, 0, 5)
}
