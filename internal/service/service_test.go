package service

import (
	"context"
	"errors"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/histogram"
	"repro/internal/imagegen"
	"repro/internal/knn"
)

// newTestService builds a small IMSI-like collection and a service over a
// fresh in-memory Bypass — the identical wiring cmd/fbserve performs.
func newTestService(t testing.TB, opts Options) (*Service, *dataset.Dataset) {
	t.Helper()
	ds, err := dataset.Build(imagegen.IMSILike(7, 0.03), histogram.DefaultExtractor)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.New(ds, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	codec, err := core.NewHistogramCodec(ds.Dim)
	if err != nil {
		t.Fatal(err)
	}
	byp, err := core.New(codec.D(), codec.P(), core.Config{
		Epsilon:        0.05,
		DefaultWeights: codec.DefaultWeights(),
	})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := New(eng, byp, opts)
	if err != nil {
		t.Fatal(err)
	}
	return svc, ds
}

// oracleScores marks each result good iff it belongs to the query's
// category — the automatic user of §5.
func oracleScores(ds *dataset.Dataset, category string, results []knn.Result) []float64 {
	scores := make([]float64, len(results))
	for i, r := range results {
		if ds.IsGood(r.Index, category) {
			scores[i] = 1
		}
	}
	return scores
}

// runSession drives one full interactive session with the oracle and
// returns the close result.
func runSession(t *testing.T, svc *Service, ds *dataset.Dataset, itemIdx, k int) CloseResult {
	t.Helper()
	item := ds.Items[itemIdx]
	st, err := svc.Open(context.Background(), item.Feature, k)
	if err != nil {
		t.Fatal(err)
	}
	for !st.Converged {
		st, err = svc.Feedback(context.Background(), st.ID, oracleScores(ds, item.Category, st.Results))
		if err != nil {
			t.Fatal(err)
		}
	}
	res, err := svc.Close(context.Background(), st.ID)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestNewValidation(t *testing.T) {
	svc, ds := newTestService(t, Options{})
	if _, err := New(nil, nil, Options{}); err == nil {
		t.Error("nil engine accepted")
	}
	if _, err := New(svc.Engine(), nil, Options{}); err == nil {
		t.Error("nil bypass accepted")
	}
	// A bypass with the wrong geometry must be rejected.
	wrong, err := core.New(3, 3, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(svc.Engine(), wrong, Options{}); err == nil {
		t.Error("mismatched bypass dimensions accepted")
	}
	if _, err := New(svc.Engine(), wrong, Options{MaxSessions: -1}); err == nil {
		t.Error("negative MaxSessions accepted")
	}
	_ = ds
}

func TestSessionLifecycle(t *testing.T) {
	svc, ds := newTestService(t, Options{DefaultK: 8})
	item := ds.Items[0]
	st, err := svc.Open(context.Background(), item.Feature, 0) // k<=0 → DefaultK
	if err != nil {
		t.Fatal(err)
	}
	if st.K != 8 || len(st.Results) != 8 {
		t.Fatalf("k = %d, %d results, want 8", st.K, len(st.Results))
	}
	if st.Iterations != 0 || st.Converged {
		t.Fatalf("fresh session state: %+v", st)
	}
	// Query returns the same snapshot without advancing.
	qst, err := svc.Query(context.Background(), st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if qst.Iterations != 0 || len(qst.Results) != len(st.Results) {
		t.Fatalf("Query state diverged: %+v", qst)
	}
	// Drive to convergence with the oracle.
	rounds := 0
	for !st.Converged {
		st, err = svc.Feedback(context.Background(), st.ID, oracleScores(ds, item.Category, st.Results))
		if err != nil {
			t.Fatal(err)
		}
		rounds++
		if rounds > 100 {
			t.Fatal("session never converged")
		}
	}
	res, err := svc.Close(context.Background(), st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != st.Iterations {
		t.Errorf("close iterations %d vs state %d", res.Iterations, st.Iterations)
	}
	if st.Iterations > 0 && !res.Inserted {
		t.Error("a session that refined its parameters should insert into the bypass")
	}
	// The session is gone: every lifecycle method must say so, Is-ably.
	if _, err := svc.Query(context.Background(), st.ID); !errors.Is(err, ErrSessionNotFound) {
		t.Errorf("Query after close: %v", err)
	}
	if _, err := svc.Feedback(context.Background(), st.ID, nil); !errors.Is(err, ErrSessionNotFound) {
		t.Errorf("Feedback after close: %v", err)
	}
	if _, err := svc.Close(context.Background(), st.ID); !errors.Is(err, ErrSessionNotFound) {
		t.Errorf("double Close: %v", err)
	}
	stats := svc.Stats()
	if stats.Opened != 1 || stats.Closed != 1 || stats.ActiveSessions != 0 {
		t.Errorf("stats after one session: %+v", stats)
	}
}

func TestOpenValidation(t *testing.T) {
	svc, ds := newTestService(t, Options{})
	if _, err := svc.Open(context.Background(), []float64{0.5, 0.5}, 5); err == nil {
		t.Error("wrong-dimension query accepted")
	}
	// A "histogram" far outside the standard simplex must surface the
	// domain sentinel through the service.
	bad := make([]float64, ds.Dim)
	bad[0] = 2.0
	if _, err := svc.Open(context.Background(), bad, 5); !errors.Is(err, core.ErrOutOfDomain) {
		t.Errorf("out-of-domain query: error %v is not core.ErrOutOfDomain", err)
	}
	if svc.Stats().ActiveSessions != 0 {
		t.Error("failed Open leaked a session slot")
	}
	// An absurd k is clamped to the collection size instead of driving a
	// k-sized allocation in every scan worker.
	st, err := svc.Open(context.Background(), ds.Items[0].Feature, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	if st.K != ds.Len() || len(st.Results) != ds.Len() {
		t.Errorf("k clamp: K=%d results=%d, want collection size %d", st.K, len(st.Results), ds.Len())
	}
	if _, err := svc.Close(context.Background(), st.ID); err != nil {
		t.Fatal(err)
	}
}

func TestAdmissionControl(t *testing.T) {
	svc, ds := newTestService(t, Options{MaxSessions: 2})
	st1, err := svc.Open(context.Background(), ds.Items[0].Feature, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Open(context.Background(), ds.Items[1].Feature, 5); err != nil {
		t.Fatal(err)
	}
	_, err = svc.Open(context.Background(), ds.Items[2].Feature, 5)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("third session: error %v is not ErrOverloaded", err)
	}
	if svc.Stats().Rejected != 1 {
		t.Errorf("rejected counter = %d", svc.Stats().Rejected)
	}
	// Closing a session frees the slot.
	if _, err := svc.Close(context.Background(), st1.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Open(context.Background(), ds.Items[2].Feature, 5); err != nil {
		t.Errorf("open after close: %v", err)
	}
}

func TestIterationBudget(t *testing.T) {
	svc, ds := newTestService(t, Options{IterationBudget: 1})
	item := ds.Items[0]
	st, err := svc.Open(context.Background(), item.Feature, 10)
	if err != nil {
		t.Fatal(err)
	}
	if st.BudgetLeft != 1 {
		t.Fatalf("BudgetLeft = %d, want 1", st.BudgetLeft)
	}
	st, err = svc.Feedback(context.Background(), st.ID, oracleScores(ds, item.Category, st.Results))
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged || st.BudgetLeft != 0 {
		t.Fatalf("after budgeted round: %+v", st)
	}
	// Further feedback is a no-op, not an error.
	again, err := svc.Feedback(context.Background(), st.ID, oracleScores(ds, item.Category, st.Results))
	if err != nil {
		t.Fatal(err)
	}
	if again.Iterations != st.Iterations {
		t.Error("feedback past the budget advanced the session")
	}
}

// bitwiseEqualOQP compares two OQPs at the float64-bit level — the parity
// bar the prediction cache must clear.
func bitwiseEqualOQP(a, b core.OQP) bool {
	if len(a.Delta) != len(b.Delta) || len(a.Weights) != len(b.Weights) {
		return false
	}
	for i := range a.Delta {
		if math.Float64bits(a.Delta[i]) != math.Float64bits(b.Delta[i]) {
			return false
		}
	}
	for i := range a.Weights {
		if math.Float64bits(a.Weights[i]) != math.Float64bits(b.Weights[i]) {
			return false
		}
	}
	return true
}

func TestCachedPredictionParity(t *testing.T) {
	svc, ds := newTestService(t, Options{})
	// Train the tree through real sessions so predictions are non-trivial.
	for i := 0; i < 8; i++ {
		runSession(t, svc, ds, i, 10)
	}
	for i := 0; i < 20; i++ {
		qp, err := svc.Codec().QueryPoint(ds.Items[i*3].Feature)
		if err != nil {
			t.Fatal(err)
		}
		miss, hit1, err := svc.predict(qp)
		if err != nil {
			t.Fatal(err)
		}
		cached, hit2, err := svc.predict(qp)
		if err != nil {
			t.Fatal(err)
		}
		if hit1 && i == 0 {
			t.Error("first prediction cannot be a cache hit")
		}
		if !hit2 {
			t.Fatalf("query %d: repeat prediction missed the cache", i)
		}
		fresh, err := svc.byp.Predict(qp)
		if err != nil {
			t.Fatal(err)
		}
		if !bitwiseEqualOQP(cached, fresh) || !bitwiseEqualOQP(miss, fresh) {
			t.Fatalf("query %d: cached prediction is not bitwise identical to uncached Predict", i)
		}
	}
	if svc.Stats().CacheHits == 0 {
		t.Error("cache hit counter never moved")
	}
}

func TestCacheInvalidationOnInsert(t *testing.T) {
	svc, ds := newTestService(t, Options{})
	qp, err := svc.Codec().QueryPoint(ds.Items[40].Feature)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := svc.predict(qp); err != nil { // fill
		t.Fatal(err)
	}
	if _, hit, _ := svc.predict(qp); !hit {
		t.Fatal("expected a warm cache before the insert")
	}
	// A session whose close inserts into the tree must drop the cache.
	res := runSession(t, svc, ds, 40, 10)
	if !res.Inserted {
		t.Skip("session outcome was within ε; cannot exercise invalidation")
	}
	if _, hit, _ := svc.predict(qp); hit {
		t.Fatal("cache served a prediction from before the insert")
	}
	cached, hit, err := svc.predict(qp)
	if err != nil || !hit {
		t.Fatalf("refill failed: hit=%v err=%v", hit, err)
	}
	fresh, err := svc.byp.Predict(qp)
	if err != nil {
		t.Fatal(err)
	}
	if !bitwiseEqualOQP(cached, fresh) {
		t.Fatal("post-insert cached prediction diverges from the tree")
	}
}

func TestCacheEviction(t *testing.T) {
	svc, ds := newTestService(t, Options{CacheSize: 2})
	for i := 0; i < 5; i++ {
		qp, err := svc.Codec().QueryPoint(ds.Items[i].Feature)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := svc.predict(qp); err != nil {
			t.Fatal(err)
		}
	}
	if n := svc.Stats().CacheEntries; n > 2 {
		t.Errorf("cache holds %d entries, cap 2", n)
	}
	// Disabled cache: no entries, no hits, predictions still work.
	off, _ := newTestService(t, Options{CacheSize: -1})
	qp, _ := off.Codec().QueryPoint(ds.Items[0].Feature)
	if _, hit, err := off.predict(qp); err != nil || hit {
		t.Errorf("disabled cache: hit=%v err=%v", hit, err)
	}
	if _, hit, err := off.predict(qp); err != nil || hit {
		t.Errorf("disabled cache repeat: hit=%v err=%v", hit, err)
	}
}

func TestDrain(t *testing.T) {
	svc, ds := newTestService(t, Options{})
	var ids []uint64
	for i := 0; i < 4; i++ {
		item := ds.Items[i]
		st, err := svc.Open(context.Background(), item.Feature, 8)
		if err != nil {
			t.Fatal(err)
		}
		// Give two of them feedback so Drain has outcomes to insert.
		if i%2 == 0 {
			if _, err := svc.Feedback(context.Background(), st.ID, oracleScores(ds, item.Category, st.Results)); err != nil {
				t.Fatal(err)
			}
		}
		ids = append(ids, st.ID)
	}
	closed, _, err := svc.Drain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if closed != 4 {
		t.Errorf("drained %d sessions, want 4", closed)
	}
	if svc.Stats().ActiveSessions != 0 {
		t.Error("sessions survived the drain")
	}
	for _, id := range ids {
		if _, err := svc.Query(context.Background(), id); !errors.Is(err, ErrSessionNotFound) {
			t.Errorf("session %d survived the drain: %v", id, err)
		}
	}
}
