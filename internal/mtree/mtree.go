// Package mtree implements an M-tree [CPZ97], the dynamic metric access
// method the paper cites for the query-processing step of §2. Objects are
// inserted one at a time; internal nodes hold routing entries (a pivot
// object, a covering radius, and the distance to the parent pivot) that
// support triangle-inequality pruning during k-NN search.
//
// The implementation follows the original design choices:
//
//   - insertion descends into the subtree whose pivot is closest (picking
//     the smallest radius enlargement on ties outside all radii);
//   - overflowing nodes split with mM_RAD promotion (choose the pair of
//     pivots minimizing the larger covering radius) over a bounded
//     candidate sample, and generalized-hyperplane partition;
//   - k-NN search uses a priority queue on lower-bound distances with the
//     d(parent, q) shortcut test that skips distance computations.
package mtree

import (
	"container/heap"
	"errors"
	"fmt"
	"math"

	"repro/internal/distance"
	"repro/internal/knn"
)

// Tree is a dynamic M-tree over vectors with a fixed metric.
type Tree struct {
	metric   distance.Metric
	capacity int
	dim      int
	root     *node
	size     int
	objects  [][]float64 // objects by insertion index

	// kern is the metric's squared-space kernel when it has one: object
	// entries in Search are then evaluated by early-abandoning squared
	// accumulation, paying one square root per surviving candidate
	// instead of one per visited object.
	kern    distance.Kernel
	hasKern bool

	lastDistCalls int
}

// entry is a routing (internal) or object (leaf) entry.
type entry struct {
	obj     int     // index into Tree.objects
	dParent float64 // distance to the parent routing pivot
	radius  float64 // covering radius (routing entries only)
	child   *node   // subtree (routing entries only)
}

type node struct {
	leaf    bool
	entries []*entry
	parent  *node
	// parentEntry is the routing entry in parent that points to this node.
	parentEntry *entry
}

// DefaultCapacity is the default maximum number of entries per node.
const DefaultCapacity = 16

// New creates an empty M-tree for vectors of the given dimensionality.
// capacity ≤ 1 selects DefaultCapacity.
func New(dim int, m distance.Metric, capacity int) (*Tree, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("mtree: invalid dimension %d", dim)
	}
	if capacity <= 1 {
		capacity = DefaultCapacity
	}
	t := &Tree{
		metric:   m,
		capacity: capacity,
		dim:      dim,
		root:     &node{leaf: true},
	}
	t.kern, t.hasKern = distance.KernelFor(m)
	return t, nil
}

// BuildFrom creates a tree and inserts every vector, returning the tree.
func BuildFrom(data [][]float64, m distance.Metric, capacity int) (*Tree, error) {
	if len(data) == 0 {
		return nil, errors.New("mtree: empty collection")
	}
	t, err := New(len(data[0]), m, capacity)
	if err != nil {
		return nil, err
	}
	for i, v := range data {
		if err := t.Insert(v); err != nil {
			return nil, fmt.Errorf("mtree: inserting vector %d: %w", i, err)
		}
	}
	return t, nil
}

// Len returns the number of stored objects.
func (t *Tree) Len() int { return t.size }

// Metric returns the tree's metric.
func (t *Tree) Metric() distance.Metric { return t.metric }

// LastDistanceCalls reports metric evaluations in the last Search.
func (t *Tree) LastDistanceCalls() int { return t.lastDistCalls }

// Insert adds a vector to the tree. The vector is aliased, not copied.
func (t *Tree) Insert(v []float64) error {
	if len(v) != t.dim {
		return fmt.Errorf("mtree: vector has dimension %d, want %d", len(v), t.dim)
	}
	idx := len(t.objects)
	t.objects = append(t.objects, v)
	t.size++

	n := t.chooseLeaf(t.root, v)
	e := &entry{obj: idx}
	if n.parentEntry != nil {
		e.dParent = t.metric.Distance(v, t.objects[n.parentEntry.obj])
	}
	n.entries = append(n.entries, e)
	t.ensureCovers(n, e)
	if len(n.entries) > t.capacity {
		t.split(n)
	}
	return nil
}

// chooseLeaf descends to the leaf whose pivots are closest to v.
func (t *Tree) chooseLeaf(n *node, v []float64) *node {
	for !n.leaf {
		var best *entry
		bestKey := math.Inf(1)
		bestEnl := math.Inf(1)
		for _, e := range n.entries {
			d := t.metric.Distance(v, t.objects[e.obj])
			if d <= e.radius {
				// Inside a covering ball: prefer the closest such pivot
				// (bestEnl is +Inf until a ball has matched).
				if bestEnl > 0 || d < bestKey {
					best, bestKey, bestEnl = e, d, 0
				}
			} else if bestEnl > 0 {
				// Outside every ball so far: prefer the smallest
				// enlargement d − radius.
				if enl := d - e.radius; enl < bestEnl {
					best, bestKey, bestEnl = e, d, enl
				}
			}
		}
		n = best.child
	}
	return n
}

// ensureCovers maintains the nested-ball invariant upward from entry ce
// housed in node cur: every routing ball must contain the ball of each of
// its child entries (d(child pivot, pivot) + child radius ≤ radius). The
// walk stops as soon as an ancestor already covers the grown ball, since
// coverage above it is then unchanged. The invariant is slightly
// conservative compared to the minimal M-tree radii but keeps pruning
// admissible and is cheap to maintain and to validate.
func (t *Tree) ensureCovers(cur *node, ce *entry) {
	for cur.parentEntry != nil {
		pe := cur.parentEntry
		need := t.metric.Distance(t.objects[ce.obj], t.objects[pe.obj]) + ce.radius
		if need <= pe.radius {
			return
		}
		pe.radius = need
		cur, ce = cur.parent, pe
	}
}

// split handles node overflow: promote two pivots, partition the entries,
// and push a new routing entry into the parent (splitting it recursively
// when it overflows too).
func (t *Tree) split(n *node) {
	entries := n.entries
	p1, p2 := t.promote(entries)

	n1 := &node{leaf: n.leaf}
	n2 := &node{leaf: n.leaf}
	r1, r2 := t.partition(entries, p1, p2, n1, n2)

	e1 := &entry{obj: p1, radius: r1, child: n1}
	e2 := &entry{obj: p2, radius: r2, child: n2}
	n1.parentEntry = e1
	n2.parentEntry = e2

	if n.parent == nil {
		// Root split: the tree grows one level.
		root := &node{leaf: false, entries: []*entry{e1, e2}}
		n1.parent = root
		n2.parent = root
		t.root = root
		return
	}

	parent := n.parent
	n1.parent = parent
	n2.parent = parent
	// Replace n's routing entry with e1 and append e2.
	for i, e := range parent.entries {
		if e == n.parentEntry {
			parent.entries[i] = e1
			break
		}
	}
	parent.entries = append(parent.entries, e2)
	// Recompute parent distances for the two new routing entries.
	if parent.parentEntry != nil {
		pp := t.objects[parent.parentEntry.obj]
		e1.dParent = t.metric.Distance(t.objects[e1.obj], pp)
		e2.dParent = t.metric.Distance(t.objects[e2.obj], pp)
	}
	// Growing radii up the path keeps ancestors covering both pivots'
	// balls.
	t.ensureCovers(parent, e1)
	t.ensureCovers(parent, e2)
	if len(parent.entries) > t.capacity {
		t.split(parent)
	}
}

// promote selects two pivot objects with the mM_RAD heuristic over a
// bounded candidate sample: the pair minimizing the larger of the two
// covering radii after a hyperplane partition.
func (t *Tree) promote(entries []*entry) (int, int) {
	// Bounded sampling keeps promotion O(c²·n) with a small constant.
	const maxCandidates = 8
	step := 1
	if len(entries) > maxCandidates {
		step = len(entries) / maxCandidates
	}
	var cands []int
	for i := 0; i < len(entries); i += step {
		cands = append(cands, entries[i].obj)
	}
	if len(cands) < 2 {
		return entries[0].obj, entries[len(entries)-1].obj
	}
	bestA, bestB := cands[0], cands[1]
	best := math.Inf(1)
	for i := 0; i < len(cands); i++ {
		for j := i + 1; j < len(cands); j++ {
			a, b := cands[i], cands[j]
			var ra, rb float64
			for _, e := range entries {
				da := t.metric.Distance(t.objects[e.obj], t.objects[a])
				db := t.metric.Distance(t.objects[e.obj], t.objects[b])
				if da <= db {
					if da+e.radius > ra {
						ra = da + e.radius
					}
				} else {
					if db+e.radius > rb {
						rb = db + e.radius
					}
				}
			}
			if m := math.Max(ra, rb); m < best {
				best, bestA, bestB = m, a, b
			}
		}
	}
	return bestA, bestB
}

// partition assigns each entry to the closer pivot (generalized
// hyperplane) and returns the covering radii.
func (t *Tree) partition(entries []*entry, p1, p2 int, n1, n2 *node) (r1, r2 float64) {
	v1, v2 := t.objects[p1], t.objects[p2]
	for _, e := range entries {
		d1 := t.metric.Distance(t.objects[e.obj], v1)
		d2 := t.metric.Distance(t.objects[e.obj], v2)
		if d1 <= d2 {
			e.dParent = d1
			n1.entries = append(n1.entries, e)
			if !e.leafEntry() {
				e.child.parent = n1
			}
			if d1+e.radius > r1 {
				r1 = d1 + e.radius
			}
		} else {
			e.dParent = d2
			n2.entries = append(n2.entries, e)
			if !e.leafEntry() {
				e.child.parent = n2
			}
			if d2+e.radius > r2 {
				r2 = d2 + e.radius
			}
		}
	}
	return r1, r2
}

func (e *entry) leafEntry() bool { return e.child == nil }

// pqItem orders subtrees by their optimistic lower-bound distance.
type pqItem struct {
	n     *node
	dq    float64 // distance from query to the node's routing pivot
	lower float64 // max(dq − radius, 0)
}

type pq []pqItem

func (p pq) Len() int            { return len(p) }
func (p pq) Less(i, j int) bool  { return p[i].lower < p[j].lower }
func (p pq) Swap(i, j int)       { p[i], p[j] = p[j], p[i] }
func (p *pq) Push(x interface{}) { *p = append(*p, x.(pqItem)) }
func (p *pq) Pop() interface{} {
	old := *p
	n := len(old)
	x := old[n-1]
	*p = old[:n-1]
	return x
}

// Search returns the k nearest neighbours of q under the tree's metric.
func (t *Tree) Search(q []float64, k int) ([]knn.Result, error) {
	if k <= 0 {
		return nil, fmt.Errorf("mtree: k must be positive, got %d", k)
	}
	if len(q) != t.dim {
		return nil, fmt.Errorf("mtree: query has dimension %d, want %d", len(q), t.dim)
	}
	if t.size == 0 {
		return nil, errors.New("mtree: empty tree")
	}
	t.lastDistCalls = 0
	top := knn.NewTopK(k)
	var queue pq
	heap.Push(&queue, pqItem{n: t.root, dq: 0, lower: 0})
	for queue.Len() > 0 {
		item := heap.Pop(&queue).(pqItem)
		if tau, ok := top.Bound(); ok && item.lower > tau {
			continue // everything in this subtree is too far
		}
		n := item.n
		for _, e := range n.entries {
			// The dParent shortcut of [CPZ97]: if |d(q, parent) − d(e,
			// parent)| already exceeds the pruning radius plus the entry's
			// covering radius, skip the distance computation entirely.
			if tau, ok := top.Bound(); ok && n.parentEntry != nil {
				if math.Abs(item.dq-e.dParent) > tau+e.radius {
					continue
				}
			}
			t.lastDistCalls++
			if e.leafEntry() && t.hasKern {
				// Kernel fast path: accumulate in squared space and give
				// up once the partial sum provably exceeds the pruning
				// radius (SquaredBoundAbove keeps the bound admissible
				// under rounding); the sqrt is paid only by survivors.
				bound2 := math.Inf(1)
				if tau, ok := top.Bound(); ok {
					bound2 = distance.SquaredBoundAbove(tau)
				}
				if s, abandoned := t.kern.SquaredAbandon(q, t.objects[e.obj], bound2); !abandoned {
					top.Offer(e.obj, math.Sqrt(s))
				}
				continue
			}
			d := t.metric.Distance(q, t.objects[e.obj])
			if e.leafEntry() {
				top.Offer(e.obj, d)
				continue
			}
			lower := d - e.radius
			if lower < 0 {
				lower = 0
			}
			if tau, ok := top.Bound(); ok && lower > tau {
				continue
			}
			heap.Push(&queue, pqItem{n: e.child, dq: d, lower: lower})
		}
	}
	return top.Results(), nil
}

// RangeSearch returns every object within radius r of q, in ascending
// distance order.
func (t *Tree) RangeSearch(q []float64, r float64) ([]knn.Result, error) {
	if len(q) != t.dim {
		return nil, fmt.Errorf("mtree: query has dimension %d, want %d", len(q), t.dim)
	}
	if r < 0 {
		return nil, fmt.Errorf("mtree: negative radius %v", r)
	}
	t.lastDistCalls = 0
	var out []knn.Result
	t.rangeSearch(t.root, q, r, math.NaN(), &out)
	// Order by distance then index for determinism.
	top := knn.NewTopK(len(out) + 1)
	for _, res := range out {
		top.Offer(res.Index, res.Distance)
	}
	if len(out) == 0 {
		return nil, nil
	}
	return top.Results(), nil
}

func (t *Tree) rangeSearch(n *node, q []float64, r, dqParent float64, out *[]knn.Result) {
	for _, e := range n.entries {
		if !math.IsNaN(dqParent) {
			if math.Abs(dqParent-e.dParent) > r+e.radius {
				continue
			}
		}
		t.lastDistCalls++
		d := t.metric.Distance(q, t.objects[e.obj])
		if e.leafEntry() {
			if d <= r {
				*out = append(*out, knn.Result{Index: e.obj, Distance: d})
			}
			continue
		}
		if d-e.radius <= r {
			t.rangeSearch(e.child, q, r, d, out)
		}
	}
}

// Depth returns the height of the tree (1 for a single leaf root).
func (t *Tree) Depth() int {
	d := 0
	for n := t.root; ; {
		d++
		if n.leaf {
			return d
		}
		n = n.entries[0].child
	}
}

// Validate checks the M-tree invariants: every object in a subtree lies
// within the covering radius of the subtree's routing pivot, and dParent
// fields match the metric. It is used by tests and returns the first
// violation found.
func (t *Tree) Validate() error {
	return t.validate(t.root, -1)
}

func (t *Tree) validate(n *node, pivot int) error {
	for _, e := range n.entries {
		if pivot >= 0 {
			d := t.metric.Distance(t.objects[e.obj], t.objects[pivot])
			if math.Abs(d-e.dParent) > 1e-9 {
				return fmt.Errorf("mtree: stale dParent for object %d: stored %v, actual %v", e.obj, e.dParent, d)
			}
		}
		if e.leafEntry() {
			continue
		}
		if err := t.checkCovered(e.child, e.obj, e.radius); err != nil {
			return err
		}
		if err := t.validate(e.child, e.obj); err != nil {
			return err
		}
	}
	return nil
}

func (t *Tree) checkCovered(n *node, pivot int, radius float64) error {
	for _, e := range n.entries {
		d := t.metric.Distance(t.objects[e.obj], t.objects[pivot])
		if e.leafEntry() {
			if d > radius+1e-9 {
				return fmt.Errorf("mtree: object %d at distance %v outside covering radius %v of pivot %d", e.obj, d, radius, pivot)
			}
			continue
		}
		if d+e.radius > radius+1e-9 {
			return fmt.Errorf("mtree: subtree ball of %d (d %v + r %v) outside covering radius %v of pivot %d", e.obj, d, e.radius, radius, pivot)
		}
		if err := t.checkCovered(e.child, pivot, radius); err != nil {
			return err
		}
	}
	return nil
}
