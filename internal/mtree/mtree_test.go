package mtree

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/distance"
	"repro/internal/knn"
)

func randomData(rng *rand.Rand, n, dim int) [][]float64 {
	data := make([][]float64, n)
	for i := range data {
		v := make([]float64, dim)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		data[i] = v
	}
	return data
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, distance.Euclidean{}, 4); err == nil {
		t.Error("zero dimension should error")
	}
	tr, err := New(3, distance.Euclidean{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tr.capacity != DefaultCapacity {
		t.Errorf("capacity = %d", tr.capacity)
	}
}

func TestBuildFromValidation(t *testing.T) {
	if _, err := BuildFrom(nil, distance.Euclidean{}, 4); err == nil {
		t.Error("empty collection should error")
	}
	if _, err := BuildFrom([][]float64{{1, 2}, {3}}, distance.Euclidean{}, 4); err == nil {
		t.Error("ragged collection should error")
	}
}

func TestInsertDimensionMismatch(t *testing.T) {
	tr, _ := New(2, distance.Euclidean{}, 4)
	if err := tr.Insert([]float64{1}); err == nil {
		t.Error("dimension mismatch should error")
	}
}

func TestInvariantsAfterInserts(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tr, _ := New(4, distance.Euclidean{}, 4) // small capacity: force many splits
	for i := 0; i < 300; i++ {
		v := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		if err := tr.Insert(v); err != nil {
			t.Fatal(err)
		}
		if i%50 == 0 {
			if err := tr.Validate(); err != nil {
				t.Fatalf("after %d inserts: %v", i+1, err)
			}
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 300 {
		t.Errorf("Len = %d", tr.Len())
	}
	if tr.Depth() < 2 {
		t.Errorf("300 inserts at capacity 4 should split: depth = %d", tr.Depth())
	}
}

func TestSearchMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	data := randomData(rng, 500, 6)
	tr, err := BuildFrom(data, distance.Euclidean{}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	scan, _ := knn.NewScan(data)
	for trial := 0; trial < 30; trial++ {
		q := make([]float64, 6)
		for j := range q {
			q[j] = rng.NormFloat64()
		}
		k := 1 + rng.Intn(25)
		got, err := tr.Search(q, k)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := scan.Search(q, k, distance.Euclidean{})
		if !knn.SameIndexSet(got, want) {
			t.Fatalf("trial %d (k=%d): mtree %v vs scan %v", trial, k, knn.Indices(got), knn.Indices(want))
		}
	}
}

func TestSearchMatchesScanManhattan(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	data := randomData(rng, 300, 4)
	m := distance.Manhattan{}
	tr, err := BuildFrom(data, m, 6)
	if err != nil {
		t.Fatal(err)
	}
	scan, _ := knn.NewScan(data)
	for trial := 0; trial < 15; trial++ {
		q := make([]float64, 4)
		for j := range q {
			q[j] = rng.NormFloat64()
		}
		got, _ := tr.Search(q, 12)
		want, _ := scan.Search(q, 12, m)
		if !knn.SameIndexSet(got, want) {
			t.Fatalf("trial %d: mtree %v vs scan %v", trial, knn.Indices(got), knn.Indices(want))
		}
	}
}

func TestSearchErrors(t *testing.T) {
	tr, _ := New(2, distance.Euclidean{}, 4)
	if _, err := tr.Search([]float64{0, 0}, 1); err == nil {
		t.Error("empty tree should error")
	}
	tr.Insert([]float64{0, 0})
	if _, err := tr.Search([]float64{0, 0}, 0); err == nil {
		t.Error("k=0 should error")
	}
	if _, err := tr.Search([]float64{0}, 1); err == nil {
		t.Error("dimension mismatch should error")
	}
}

func TestSearchPrunes(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	data := randomData(rng, 3000, 3)
	tr, err := BuildFrom(data, distance.Euclidean{}, 16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Search([]float64{0, 0, 0}, 5); err != nil {
		t.Fatal(err)
	}
	if calls := tr.LastDistanceCalls(); calls >= len(data) {
		t.Errorf("no pruning: %d distance calls for %d items", calls, len(data))
	}
}

func TestRangeSearchMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	data := randomData(rng, 400, 3)
	tr, err := BuildFrom(data, distance.Euclidean{}, 8)
	if err != nil {
		t.Fatal(err)
	}
	m := distance.Euclidean{}
	for trial := 0; trial < 10; trial++ {
		q := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		r := 0.5 + rng.Float64()
		got, err := tr.RangeSearch(q, r)
		if err != nil {
			t.Fatal(err)
		}
		want := map[int]bool{}
		for i, v := range data {
			if m.Distance(q, v) <= r {
				want[i] = true
			}
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d results, want %d", trial, len(got), len(want))
		}
		prev := -1.0
		for _, res := range got {
			if !want[res.Index] {
				t.Fatalf("trial %d: unexpected result %d", trial, res.Index)
			}
			if res.Distance < prev {
				t.Fatalf("trial %d: results not sorted", trial)
			}
			prev = res.Distance
		}
	}
}

func TestRangeSearchErrors(t *testing.T) {
	tr, _ := New(2, distance.Euclidean{}, 4)
	tr.Insert([]float64{0, 0})
	if _, err := tr.RangeSearch([]float64{0}, 1); err == nil {
		t.Error("dimension mismatch should error")
	}
	if _, err := tr.RangeSearch([]float64{0, 0}, -1); err == nil {
		t.Error("negative radius should error")
	}
	rs, err := tr.RangeSearch([]float64{100, 100}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 0 {
		t.Errorf("expected no results, got %d", len(rs))
	}
}

func TestDuplicatePoints(t *testing.T) {
	tr, _ := New(2, distance.Euclidean{}, 4)
	for i := 0; i < 50; i++ {
		if err := tr.Insert([]float64{1, 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	rs, err := tr.Search([]float64{1, 1}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 5 {
		t.Fatalf("got %d results", len(rs))
	}
	for _, r := range rs {
		if r.Distance != 0 {
			t.Errorf("distance = %v", r.Distance)
		}
	}
}

func TestHistogramLikeData(t *testing.T) {
	// Normalized-histogram vectors (the paper's data shape): verify
	// exactness and invariants at D = 32.
	rng := rand.New(rand.NewSource(6))
	n, dim := 400, 32
	data := make([][]float64, n)
	for i := range data {
		v := make([]float64, dim)
		var sum float64
		for j := range v {
			v[j] = rng.ExpFloat64()
			sum += v[j]
		}
		for j := range v {
			v[j] /= sum
		}
		data[i] = v
	}
	tr, err := BuildFrom(data, distance.Euclidean{}, 12)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	scan, _ := knn.NewScan(data)
	for trial := 0; trial < 10; trial++ {
		q := data[rng.Intn(n)]
		got, _ := tr.Search(q, 20)
		want, _ := scan.Search(q, 20, distance.Euclidean{})
		if !knn.SameIndexSet(got, want) {
			t.Fatalf("trial %d: mismatch", trial)
		}
		if got[0].Distance != 0 {
			t.Errorf("self-query distance = %v", got[0].Distance)
		}
	}
}

func TestDepthGrowsLogarithmically(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr, _ := New(3, distance.Euclidean{}, 8)
	for i := 0; i < 1000; i++ {
		tr.Insert([]float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()})
	}
	d := tr.Depth()
	// capacity 8, 1000 objects: expect depth around log_4..8(1000) ≈ 3-6,
	// allow generous slack but reject linear behaviour.
	if d < 2 || d > 12 {
		t.Errorf("depth = %d", d)
	}
	if math.IsNaN(float64(d)) {
		t.Error("unreachable")
	}
}
