package vec

import (
	"fmt"
	"math"
	"sort"
)

// Eigen holds the eigendecomposition of a symmetric matrix: A = V·diag(λ)·Vᵀ
// with eigenvalues sorted in descending order and eigenvectors stored as the
// columns of V.
type Eigen struct {
	Values  []float64
	Vectors *Matrix // column j is the eigenvector for Values[j]
}

// SymmetricEigen computes the eigendecomposition of the symmetric matrix a
// using the cyclic Jacobi rotation method. It is used by the Mahalanobis
// distance (to validate positive definiteness) and by the PCA
// dimensionality-reduction extension. The input must be symmetric within
// tolerance symTol; pass 0 for an exact symmetry requirement.
func SymmetricEigen(a *Matrix, symTol float64) (*Eigen, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("%w: eigendecomposition requires a square matrix, got %dx%d", ErrDimensionMismatch, a.Rows, a.Cols)
	}
	n := a.Rows
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if math.Abs(a.At(i, j)-a.At(j, i)) > symTol {
				return nil, fmt.Errorf("vec: matrix is not symmetric at (%d,%d): %g vs %g", i, j, a.At(i, j), a.At(j, i))
			}
		}
	}
	w := a.Clone()
	v := Identity(n)

	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := offDiagNorm(w)
		if off < 1e-14 {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app, aqq := w.At(p, p), w.At(q, q)
				// Compute the Jacobi rotation that annihilates w[p][q].
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c
				applyJacobi(w, v, p, q, c, s)
			}
		}
	}

	vals := make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = w.At(i, i)
	}
	// Sort eigenpairs by descending eigenvalue.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(x, y int) bool { return vals[idx[x]] > vals[idx[y]] })
	sortedVals := make([]float64, n)
	sortedVecs := NewMatrix(n, n)
	for j, k := range idx {
		sortedVals[j] = vals[k]
		for i := 0; i < n; i++ {
			sortedVecs.Set(i, j, v.At(i, k))
		}
	}
	return &Eigen{Values: sortedVals, Vectors: sortedVecs}, nil
}

// applyJacobi applies a Jacobi rotation in the (p, q) plane with cosine c
// and sine s to the working matrix w (two-sided) and accumulates it into
// the eigenvector matrix v (one-sided).
func applyJacobi(w, v *Matrix, p, q int, c, s float64) {
	n := w.Rows
	for i := 0; i < n; i++ {
		wip, wiq := w.At(i, p), w.At(i, q)
		w.Set(i, p, c*wip-s*wiq)
		w.Set(i, q, s*wip+c*wiq)
	}
	for j := 0; j < n; j++ {
		wpj, wqj := w.At(p, j), w.At(q, j)
		w.Set(p, j, c*wpj-s*wqj)
		w.Set(q, j, s*wpj+c*wqj)
	}
	for i := 0; i < n; i++ {
		vip, viq := v.At(i, p), v.At(i, q)
		v.Set(i, p, c*vip-s*viq)
		v.Set(i, q, s*vip+c*viq)
	}
}

func offDiagNorm(m *Matrix) float64 {
	var s float64
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if i != j {
				s += m.At(i, j) * m.At(i, j)
			}
		}
	}
	return math.Sqrt(s)
}

// IsPositiveDefinite reports whether the symmetric matrix a has strictly
// positive eigenvalues, within tolerance tol. Weight matrices for quadratic
// distance functions must satisfy this to define a metric.
func IsPositiveDefinite(a *Matrix, tol float64) (bool, error) {
	e, err := SymmetricEigen(a, 1e-9)
	if err != nil {
		return false, err
	}
	for _, v := range e.Values {
		if v <= tol {
			return false, nil
		}
	}
	return true, nil
}

// PCA computes the principal components of the row-sample matrix x
// (rows are observations, columns are features). It returns the eigen
// decomposition of the sample covariance matrix and the column means.
// This implements the dimensionality-reduction hook the paper leaves as
// future work (§3).
func PCA(x *Matrix) (*Eigen, []float64, error) {
	if x.Rows < 2 {
		return nil, nil, fmt.Errorf("vec: PCA requires at least 2 samples, got %d", x.Rows)
	}
	n, d := x.Rows, x.Cols
	means := make([]float64, d)
	for i := 0; i < n; i++ {
		row := x.Row(i)
		for j, v := range row {
			means[j] += v
		}
	}
	for j := range means {
		means[j] /= float64(n)
	}
	cov := NewMatrix(d, d)
	for i := 0; i < n; i++ {
		row := x.Row(i)
		for a := 0; a < d; a++ {
			da := row[a] - means[a]
			if da == 0 {
				continue
			}
			covRow := cov.Row(a)
			for b := 0; b < d; b++ {
				covRow[b] += da * (row[b] - means[b])
			}
		}
	}
	inv := 1 / float64(n-1)
	for i := range cov.Data {
		cov.Data[i] *= inv
	}
	e, err := SymmetricEigen(cov, 1e-9)
	if err != nil {
		return nil, nil, err
	}
	return e, means, nil
}

// Project maps v onto the first k principal components of e, after
// subtracting means. The result has length k.
func (e *Eigen) Project(v, means []float64, k int) []float64 {
	if k > len(e.Values) {
		k = len(e.Values)
	}
	centered := Sub(v, means)
	out := make([]float64, k)
	for j := 0; j < k; j++ {
		var s float64
		for i := 0; i < e.Vectors.Rows; i++ {
			s += e.Vectors.At(i, j) * centered[i]
		}
		out[j] = s
	}
	return out
}
