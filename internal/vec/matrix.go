package vec

import (
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense row-major matrix of float64 values.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewMatrix returns a zeroed rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("vec: invalid matrix shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// MatrixFromRows builds a matrix from row slices, copying the data. All
// rows must have equal length.
func MatrixFromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	cols := len(rows[0])
	m := NewMatrix(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			panic(fmt.Sprintf("vec: ragged rows: row %d has %d cols, want %d", i, len(r), cols))
		}
		copy(m.Data[i*cols:(i+1)*cols], r)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Col returns a copy of column j.
func (m *Matrix) Col(j int) []float64 {
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = m.At(i, j)
	}
	return out
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Transpose returns mᵀ.
func (m *Matrix) Transpose() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// MulVec returns m·v.
func (m *Matrix) MulVec(v []float64) []float64 {
	if len(v) != m.Cols {
		panic(fmt.Sprintf("vec: matrix-vector mismatch: %dx%d · %d", m.Rows, m.Cols, len(v)))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		var s float64
		for j, x := range row {
			s += x * v[j]
		}
		out[i] = s
	}
	return out
}

// Mul returns m·other.
func (m *Matrix) Mul(other *Matrix) *Matrix {
	if m.Cols != other.Rows {
		panic(fmt.Sprintf("vec: matrix-matrix mismatch: %dx%d · %dx%d", m.Rows, m.Cols, other.Rows, other.Cols))
	}
	out := NewMatrix(m.Rows, other.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			otherRow := other.Row(k)
			outRow := out.Row(i)
			for j := range otherRow {
				outRow[j] += a * otherRow[j]
			}
		}
	}
	return out
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.Rows; i++ {
		fmt.Fprintf(&b, "%v\n", m.Row(i))
	}
	return b.String()
}

// LU holds an LU decomposition with partial pivoting: P·A = L·U where L is
// unit lower triangular and U upper triangular, stored compactly in LU.
type LU struct {
	lu    *Matrix
	pivot []int
	sign  float64 // +1 or -1 depending on the permutation parity
}

// Factorize computes the LU decomposition of the square matrix a using
// Gaussian elimination with partial pivoting. The input is not modified.
// It returns ErrSingular when a pivot is exactly zero.
func Factorize(a *Matrix) (*LU, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("%w: LU requires a square matrix, got %dx%d", ErrDimensionMismatch, a.Rows, a.Cols)
	}
	n := a.Rows
	lu := a.Clone()
	pivot := make([]int, n)
	for i := range pivot {
		pivot[i] = i
	}
	sign := 1.0
	for col := 0; col < n; col++ {
		// Find the pivot row: largest absolute value in this column at or
		// below the diagonal.
		p := col
		maxAbs := math.Abs(lu.At(col, col))
		for r := col + 1; r < n; r++ {
			if a := math.Abs(lu.At(r, col)); a > maxAbs {
				maxAbs = a
				p = r
			}
		}
		if maxAbs == 0 {
			return nil, fmt.Errorf("%w: zero pivot in column %d", ErrSingular, col)
		}
		if p != col {
			swapRows(lu, p, col)
			pivot[p], pivot[col] = pivot[col], pivot[p]
			sign = -sign
		}
		inv := 1 / lu.At(col, col)
		for r := col + 1; r < n; r++ {
			f := lu.At(r, col) * inv
			lu.Set(r, col, f)
			if f == 0 {
				continue
			}
			rowR := lu.Row(r)
			rowC := lu.Row(col)
			for j := col + 1; j < n; j++ {
				rowR[j] -= f * rowC[j]
			}
		}
	}
	return &LU{lu: lu, pivot: pivot, sign: sign}, nil
}

// Det returns the determinant of the factorized matrix.
func (f *LU) Det() float64 {
	d := f.sign
	for i := 0; i < f.lu.Rows; i++ {
		d *= f.lu.At(i, i)
	}
	return d
}

// Solve solves A·x = b for x. b is not modified.
func (f *LU) Solve(b []float64) ([]float64, error) {
	x := make([]float64, f.lu.Rows)
	if err := f.SolveInto(x, b); err != nil {
		return nil, err
	}
	return x, nil
}

// SolveInto solves A·x = b, writing the solution into dst without
// allocating. dst and b must have length n and must not alias each other
// (the permuted right-hand side is staged in dst while b is still being
// read).
func (f *LU) SolveInto(dst, b []float64) error {
	n := f.lu.Rows
	if len(b) != n || len(dst) != n {
		return fmt.Errorf("%w: rhs/dst have %d/%d rows, want %d", ErrDimensionMismatch, len(b), len(dst), n)
	}
	// Apply the permutation.
	for i, p := range f.pivot {
		dst[i] = b[p]
	}
	// Forward substitution with unit lower triangular L.
	for i := 1; i < n; i++ {
		row := f.lu.Row(i)
		var s float64
		for j := 0; j < i; j++ {
			s += row[j] * dst[j]
		}
		dst[i] -= s
	}
	// Back substitution with U.
	for i := n - 1; i >= 0; i-- {
		row := f.lu.Row(i)
		s := dst[i]
		for j := i + 1; j < n; j++ {
			s -= row[j] * dst[j]
		}
		dst[i] = s / row[i]
	}
	return nil
}

// Solve solves the square linear system a·x = b using LU with partial
// pivoting. Neither input is modified.
func Solve(a *Matrix, b []float64) ([]float64, error) {
	f, err := Factorize(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}

// Det returns the determinant of the square matrix a, and 0 for singular
// matrices.
func Det(a *Matrix) float64 {
	f, err := Factorize(a)
	if err != nil {
		return 0
	}
	return f.Det()
}

// Inverse returns a⁻¹, or ErrSingular when a is not invertible.
func Inverse(a *Matrix) (*Matrix, error) {
	f, err := Factorize(a)
	if err != nil {
		return nil, err
	}
	n := a.Rows
	out := NewMatrix(n, n)
	e := make([]float64, n)
	for j := 0; j < n; j++ {
		for i := range e {
			e[i] = 0
		}
		e[j] = 1
		col, err := f.Solve(e)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			out.Set(i, j, col[i])
		}
	}
	return out, nil
}

func swapRows(m *Matrix, a, b int) {
	ra, rb := m.Row(a), m.Row(b)
	for j := range ra {
		ra[j], rb[j] = rb[j], ra[j]
	}
}
