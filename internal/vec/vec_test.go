package vec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestCloneIndependence(t *testing.T) {
	a := []float64{1, 2, 3}
	b := Clone(a)
	b[0] = 99
	if a[0] != 1 {
		t.Fatalf("Clone aliases input: a[0] = %v", a[0])
	}
	if Clone(nil) != nil {
		t.Fatal("Clone(nil) should be nil")
	}
}

func TestBasicConstructors(t *testing.T) {
	if got := Zeros(3); !Equal(got, []float64{0, 0, 0}) {
		t.Errorf("Zeros(3) = %v", got)
	}
	if got := Ones(3); !Equal(got, []float64{1, 1, 1}) {
		t.Errorf("Ones(3) = %v", got)
	}
	if got := Constant(2, 4.5); !Equal(got, []float64{4.5, 4.5}) {
		t.Errorf("Constant(2, 4.5) = %v", got)
	}
}

func TestAddSubScale(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	if got := Add(a, b); !Equal(got, []float64{5, 7, 9}) {
		t.Errorf("Add = %v", got)
	}
	if got := Sub(b, a); !Equal(got, []float64{3, 3, 3}) {
		t.Errorf("Sub = %v", got)
	}
	if got := Scale(a, 2); !Equal(got, []float64{2, 4, 6}) {
		t.Errorf("Scale = %v", got)
	}
}

func TestInPlaceOps(t *testing.T) {
	a := []float64{1, 2}
	AddInPlace(a, []float64{1, 1})
	if !Equal(a, []float64{2, 3}) {
		t.Errorf("AddInPlace = %v", a)
	}
	SubInPlace(a, []float64{1, 1})
	if !Equal(a, []float64{1, 2}) {
		t.Errorf("SubInPlace = %v", a)
	}
	ScaleInPlace(a, 3)
	if !Equal(a, []float64{3, 6}) {
		t.Errorf("ScaleInPlace = %v", a)
	}
	Axpy(a, 2, []float64{1, 1})
	if !Equal(a, []float64{5, 8}) {
		t.Errorf("Axpy = %v", a)
	}
}

func TestDotNormDist(t *testing.T) {
	a := []float64{3, 4}
	if got := Dot(a, a); got != 25 {
		t.Errorf("Dot = %v", got)
	}
	if got := Norm(a); got != 5 {
		t.Errorf("Norm = %v", got)
	}
	if got := Norm1(a); got != 7 {
		t.Errorf("Norm1 = %v", got)
	}
	if got := NormInf([]float64{-9, 2}); got != 9 {
		t.Errorf("NormInf = %v", got)
	}
	if got := Dist([]float64{0, 0}, a); got != 5 {
		t.Errorf("Dist = %v", got)
	}
	if got := Sum(a); got != 7 {
		t.Errorf("Sum = %v", got)
	}
}

func TestDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimension mismatch")
		}
	}()
	Add([]float64{1}, []float64{1, 2})
}

func TestEqualTol(t *testing.T) {
	if !EqualTol([]float64{1, 2}, []float64{1.0001, 2}, 1e-3) {
		t.Error("EqualTol should accept within tolerance")
	}
	if EqualTol([]float64{1, 2}, []float64{1.1, 2}, 1e-3) {
		t.Error("EqualTol should reject beyond tolerance")
	}
	if EqualTol([]float64{1}, []float64{1, 2}, 1) {
		t.Error("EqualTol should reject length mismatch")
	}
}

func TestIsFinite(t *testing.T) {
	if !IsFinite([]float64{1, -2, 0}) {
		t.Error("finite vector reported non-finite")
	}
	if IsFinite([]float64{1, math.NaN()}) {
		t.Error("NaN not detected")
	}
	if IsFinite([]float64{math.Inf(1)}) {
		t.Error("Inf not detected")
	}
}

func TestNormalize(t *testing.T) {
	got, err := Normalize([]float64{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !EqualTol(got, []float64{0.25, 0.75}, 1e-15) {
		t.Errorf("Normalize = %v", got)
	}
	if _, err := Normalize([]float64{0, 0}); err == nil {
		t.Error("expected error normalizing zero vector")
	}
	if _, err := Normalize([]float64{math.NaN()}); err == nil {
		t.Error("expected error normalizing NaN vector")
	}
}

func TestLerpEndpointsAndMid(t *testing.T) {
	a, b := []float64{0, 0}, []float64{2, 4}
	if got := Lerp(a, b, 0); !Equal(got, a) {
		t.Errorf("Lerp t=0: %v", got)
	}
	if got := Lerp(a, b, 1); !Equal(got, b) {
		t.Errorf("Lerp t=1: %v", got)
	}
	if got := Lerp(a, b, 0.5); !Equal(got, []float64{1, 2}) {
		t.Errorf("Lerp t=0.5: %v", got)
	}
}

func TestMinMaxClampArg(t *testing.T) {
	a, b := []float64{1, 5}, []float64{3, 2}
	if got := Min(a, b); !Equal(got, []float64{1, 2}) {
		t.Errorf("Min = %v", got)
	}
	if got := Max(a, b); !Equal(got, []float64{3, 5}) {
		t.Errorf("Max = %v", got)
	}
	if got := Clamp([]float64{-1, 0.5, 2}, 0, 1); !Equal(got, []float64{0, 0.5, 1}) {
		t.Errorf("Clamp = %v", got)
	}
	if got := ArgMax([]float64{1, 3, 2}); got != 1 {
		t.Errorf("ArgMax = %v", got)
	}
	if got := ArgMin([]float64{1, -3, 2}); got != 1 {
		t.Errorf("ArgMin = %v", got)
	}
	if ArgMax(nil) != -1 || ArgMin(nil) != -1 {
		t.Error("Arg* on empty should be -1")
	}
}

// Property: Dot is symmetric and bilinear in its first argument.
func TestDotPropertiesQuick(t *testing.T) {
	f := func(raw []float64, s float64) bool {
		if len(raw) < 2 {
			return true
		}
		n := len(raw) / 2
		a, b := raw[:n], raw[n:2*n]
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e6 {
				return true
			}
		}
		if math.IsNaN(s) || math.IsInf(s, 0) || math.Abs(s) > 1e3 {
			return true
		}
		sym := almostEqual(Dot(a, b), Dot(b, a), 1e-6)
		lin := almostEqual(Dot(Scale(a, s), b), s*Dot(a, b), 1e-3*(1+math.Abs(s*Dot(a, b))))
		return sym && lin
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: triangle inequality for the Euclidean distance.
func TestDistTriangleInequalityQuick(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 3 {
			return true
		}
		n := len(raw) / 3
		a, b, c := raw[:n], raw[n:2*n], raw[2*n:3*n]
		for _, x := range raw[:3*n] {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e6 {
				return true
			}
		}
		return Dist(a, c) <= Dist(a, b)+Dist(b, c)+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSolveKnownSystem(t *testing.T) {
	a := MatrixFromRows([][]float64{
		{2, 1, -1},
		{-3, -1, 2},
		{-2, 1, 2},
	})
	x, err := Solve(a, []float64{8, -11, -3})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -1}
	if !EqualTol(x, want, 1e-10) {
		t.Errorf("Solve = %v, want %v", x, want)
	}
}

func TestSolveSingular(t *testing.T) {
	a := MatrixFromRows([][]float64{
		{1, 2},
		{2, 4},
	})
	if _, err := Solve(a, []float64{1, 2}); err == nil {
		t.Error("expected singular error")
	}
}

func TestSolveRequiresSquare(t *testing.T) {
	a := NewMatrix(2, 3)
	if _, err := Solve(a, []float64{1, 2}); err == nil {
		t.Error("expected error for non-square matrix")
	}
}

func TestSolveRhsMismatch(t *testing.T) {
	a := Identity(3)
	f, err := Factorize(a)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Solve([]float64{1}); err == nil {
		t.Error("expected rhs length error")
	}
}

func TestDetKnownValues(t *testing.T) {
	cases := []struct {
		rows [][]float64
		want float64
	}{
		{[][]float64{{1}}, 1},
		{[][]float64{{2, 0}, {0, 3}}, 6},
		{[][]float64{{0, 1}, {1, 0}}, -1},
		{[][]float64{{1, 2}, {2, 4}}, 0},
		{[][]float64{{1, 2, 3}, {4, 5, 6}, {7, 8, 10}}, -3},
	}
	for i, c := range cases {
		if got := Det(MatrixFromRows(c.rows)); !almostEqual(got, c.want, 1e-9) {
			t.Errorf("case %d: Det = %v, want %v", i, got, c.want)
		}
	}
}

func TestInverseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		n := 1 + rng.Intn(6)
		a := NewMatrix(n, n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		// Make it diagonally dominant so it is comfortably invertible.
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n)+1)
		}
		inv, err := Inverse(a)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		prod := a.Mul(inv)
		id := Identity(n)
		for i := range prod.Data {
			if !almostEqual(prod.Data[i], id.Data[i], 1e-8) {
				t.Fatalf("trial %d: A·A⁻¹ != I at %d: %v", trial, i, prod.Data[i])
			}
		}
	}
}

// Property: Solve(A, A·x) == x for well-conditioned random A.
func TestSolveRoundTripQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(8)
		a := NewMatrix(n, n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n)+2)
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64() * 10
		}
		b := a.MulVec(x)
		got, err := Solve(a, b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !EqualTol(got, x, 1e-7) {
			t.Fatalf("trial %d: round trip failed: got %v want %v", trial, got, x)
		}
	}
}

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 1, 5)
	if m.At(0, 1) != 5 {
		t.Error("Set/At failed")
	}
	if got := m.Col(1); !Equal(got, []float64{5, 0}) {
		t.Errorf("Col = %v", got)
	}
	tr := m.Transpose()
	if tr.Rows != 3 || tr.Cols != 2 || tr.At(1, 0) != 5 {
		t.Errorf("Transpose wrong: %+v", tr)
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) == 9 {
		t.Error("Clone aliases storage")
	}
	if m.String() == "" {
		t.Error("String should be non-empty")
	}
}

func TestMatrixFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for ragged rows")
		}
	}()
	MatrixFromRows([][]float64{{1, 2}, {3}})
}

func TestMulVecIdentity(t *testing.T) {
	id := Identity(4)
	v := []float64{1, 2, 3, 4}
	if got := id.MulVec(v); !Equal(got, v) {
		t.Errorf("I·v = %v", got)
	}
}

func TestMatrixMul(t *testing.T) {
	a := MatrixFromRows([][]float64{{1, 2}, {3, 4}})
	b := MatrixFromRows([][]float64{{5, 6}, {7, 8}})
	got := a.Mul(b)
	want := MatrixFromRows([][]float64{{19, 22}, {43, 50}})
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("Mul = %v, want %v", got, want)
		}
	}
}

func TestSymmetricEigenDiagonal(t *testing.T) {
	a := MatrixFromRows([][]float64{{3, 0}, {0, 1}})
	e, err := SymmetricEigen(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !EqualTol(e.Values, []float64{3, 1}, 1e-12) {
		t.Errorf("Values = %v", e.Values)
	}
}

func TestSymmetricEigenKnown2x2(t *testing.T) {
	// Eigenvalues of [[2,1],[1,2]] are 3 and 1.
	a := MatrixFromRows([][]float64{{2, 1}, {1, 2}})
	e, err := SymmetricEigen(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !EqualTol(e.Values, []float64{3, 1}, 1e-10) {
		t.Errorf("Values = %v", e.Values)
	}
	// Verify A·v = λ·v for each eigenpair.
	for j := 0; j < 2; j++ {
		v := e.Vectors.Col(j)
		av := a.MulVec(v)
		lv := Scale(v, e.Values[j])
		if !EqualTol(av, lv, 1e-9) {
			t.Errorf("eigenpair %d: A·v = %v, λ·v = %v", j, av, lv)
		}
	}
}

func TestSymmetricEigenRejectsAsymmetric(t *testing.T) {
	a := MatrixFromRows([][]float64{{1, 2}, {0, 1}})
	if _, err := SymmetricEigen(a, 1e-12); err == nil {
		t.Error("expected asymmetry error")
	}
}

func TestSymmetricEigenRandomReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 5; trial++ {
		n := 2 + rng.Intn(6)
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				v := rng.NormFloat64()
				a.Set(i, j, v)
				a.Set(j, i, v)
			}
		}
		e, err := SymmetricEigen(a, 0)
		if err != nil {
			t.Fatal(err)
		}
		// Reconstruct V·diag(λ)·Vᵀ and compare with A.
		d := NewMatrix(n, n)
		for i, v := range e.Values {
			d.Set(i, i, v)
		}
		recon := e.Vectors.Mul(d).Mul(e.Vectors.Transpose())
		for i := range a.Data {
			if !almostEqual(recon.Data[i], a.Data[i], 1e-8) {
				t.Fatalf("trial %d: reconstruction mismatch at %d: %v vs %v", trial, i, recon.Data[i], a.Data[i])
			}
		}
		// Eigenvalues must be sorted descending.
		for i := 1; i < n; i++ {
			if e.Values[i] > e.Values[i-1]+1e-12 {
				t.Fatalf("trial %d: eigenvalues not sorted: %v", trial, e.Values)
			}
		}
	}
}

func TestIsPositiveDefinite(t *testing.T) {
	pd := MatrixFromRows([][]float64{{2, 0}, {0, 3}})
	ok, err := IsPositiveDefinite(pd, 0)
	if err != nil || !ok {
		t.Errorf("diag(2,3) should be PD: %v %v", ok, err)
	}
	nd := MatrixFromRows([][]float64{{1, 0}, {0, -1}})
	ok, err = IsPositiveDefinite(nd, 0)
	if err != nil || ok {
		t.Errorf("diag(1,-1) should not be PD: %v %v", ok, err)
	}
}

func TestPCARecoveredDirection(t *testing.T) {
	// Samples along the direction (1, 1) with tiny noise orthogonally:
	// the top principal component must align with (1,1)/√2.
	rng := rand.New(rand.NewSource(5))
	n := 200
	x := NewMatrix(n, 2)
	for i := 0; i < n; i++ {
		tval := rng.NormFloat64() * 10
		noise := rng.NormFloat64() * 0.01
		x.Set(i, 0, tval+noise)
		x.Set(i, 1, tval-noise)
	}
	e, means, err := PCA(x)
	if err != nil {
		t.Fatal(err)
	}
	if len(means) != 2 {
		t.Fatalf("means = %v", means)
	}
	v := e.Vectors.Col(0)
	// Direction can point either way.
	dot := math.Abs(v[0]*math.Sqrt2/2 + v[1]*math.Sqrt2/2)
	if dot < 0.999 {
		t.Errorf("top PC misaligned: %v (|cos|=%v)", v, dot)
	}
	if e.Values[0] < 100*e.Values[1] {
		t.Errorf("variance ratio too small: %v", e.Values)
	}
}

func TestPCAProject(t *testing.T) {
	x := MatrixFromRows([][]float64{{0, 0}, {1, 1}, {2, 2}, {3, 3}})
	e, means, err := PCA(x)
	if err != nil {
		t.Fatal(err)
	}
	p := e.Project([]float64{4, 4}, means, 1)
	if len(p) != 1 {
		t.Fatalf("Project len = %d", len(p))
	}
	// Requesting more components than exist clamps.
	p2 := e.Project([]float64{4, 4}, means, 10)
	if len(p2) != 2 {
		t.Fatalf("clamped Project len = %d", len(p2))
	}
}

func TestPCATooFewSamples(t *testing.T) {
	if _, _, err := PCA(MatrixFromRows([][]float64{{1, 2}})); err == nil {
		t.Error("expected error for single-sample PCA")
	}
}
