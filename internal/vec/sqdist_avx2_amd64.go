//go:build amd64

package vec

// AVX2 full-sum kernels (sqdist_avx2_amd64.s). Each is bitwise identical
// to its Go reference in sqdist_dispatch.go: one 4-lane ymm register IS
// the four stripe accumulators (lane L = sL), every VSUBPD/VMULPD/VADDPD
// performs exactly the per-lane scalar IEEE operation — deliberately no
// FMA, whose fused single rounding would change low bits — and the
// reduction extracts the lanes and adds ((s0+s1)+(s2+s3))+tail in the
// canonical association.

func sqDistAVX2(a, b []float64) float64

func sqDistWAVX2(a, b, w []float64) float64

func sqDist32AVX2(q []float64, row []float32) float64

func sqDist32WAVX2(q []float64, row []float32, w []float64) float64

func init() {
	if hasAVX2 {
		sqDistFull = sqDistAVX2
		sqDistWFull = sqDistWAVX2
		sqDist32Full = sqDist32AVX2
		sqDist32WFull = sqDist32WAVX2
	}
}
