package vec

import "math"

// Full-sum kernel dispatch. SqDist, SqDistW, SqDist32 and SqDist32W call
// through these variables; the defaults are the portable Go loops, and
// the amd64 build replaces them at init with AVX2 routines when the CPU
// supports them (sqdist_avx2_amd64.go). Every implementation performs
// the identical IEEE operation sequence — the canonical 4-stripe
// accumulation — so dispatch never changes a sum's bits, only how many
// cycles it takes; the parity tests assert this against the Go
// references. Only the full (non-abandoning) sums dispatch to AVX2: the
// abandoning variants' block-boundary bound checks are branchy enough
// that the wider vectors buy nothing over SSE2/portable there.
var (
	sqDistFull    = sqDistFullGo
	sqDistWFull   = sqDistWFullGo
	sqDist32Full  = sqDist32FullGo
	sqDist32WFull = sqDist32WFullGo
)

func sqDistFullGo(a, b []float64) float64 {
	s, _ := sqDistAbandon(a, b, math.Inf(1))
	return s
}

func sqDistWFullGo(a, b, w []float64) float64 {
	s, _ := sqDistWAbandon(a, b, w, math.Inf(1))
	return s
}

func sqDist32FullGo(q []float64, row []float32) float64 {
	s, _ := sqDist32Abandon(q, row, math.Inf(1))
	return s
}

func sqDist32WFullGo(q []float64, row []float32, w []float64) float64 {
	s, _ := sqDist32WAbandon(q, row, w, math.Inf(1))
	return s
}
