package vec

import "strings"

// godebugDisables reports whether the GODEBUG value disables key
// (key=off or key=0). Like the runtime's handling, the last setting of a
// repeated key wins.
func godebugDisables(godebug, key string) bool {
	off := false
	for _, kv := range strings.Split(godebug, ",") {
		if k, v, ok := strings.Cut(kv, "="); ok && k == key {
			off = v == "off" || v == "0"
		}
	}
	return off
}
