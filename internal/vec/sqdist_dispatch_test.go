package vec

import (
	"math"
	"math/rand"
	"testing"
)

// TestDispatchParity pins the dispatched full-sum kernels (AVX2 when the
// host supports it, otherwise the same Go functions) bitwise to the
// portable references, across lengths that exercise every tail shape and
// across adversarial values (zeros, ties, subnormal-scale, huge-scale).
func TestDispatchParity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	scales := []float64{1, 1e-160, 1e150, 0}
	for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 15, 16, 31, 32, 33, 100, 257} {
		for _, scale := range scales {
			a := make([]float64, n)
			b := make([]float64, n)
			w := make([]float64, n)
			r32 := make([]float32, n)
			for i := range a {
				a[i] = scale * rng.NormFloat64()
				b[i] = scale * rng.NormFloat64()
				w[i] = rng.Float64() * 3
				if i%5 == 0 {
					w[i] = 0 // zero weights must contribute exactly +0
				}
				if i%7 == 0 {
					b[i] = a[i] // exact ties
				}
				r32[i] = float32(b[i])
			}
			if got, want := SqDist(a, b), sqDistFullGo(a, b); math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("n=%d scale=%g: SqDist=%x want %x", n, scale, math.Float64bits(got), math.Float64bits(want))
			}
			if got, want := SqDistW(a, b, w), sqDistWFullGo(a, b, w); math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("n=%d scale=%g: SqDistW=%x want %x", n, scale, math.Float64bits(got), math.Float64bits(want))
			}
			if got, want := SqDist32(a, r32), sqDist32FullGo(a, r32); math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("n=%d scale=%g: SqDist32=%x want %x", n, scale, math.Float64bits(got), math.Float64bits(want))
			}
			if got, want := SqDist32W(a, r32, w), sqDist32WFullGo(a, r32, w); math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("n=%d scale=%g: SqDist32W=%x want %x", n, scale, math.Float64bits(got), math.Float64bits(want))
			}
			// The abandoning float32 variants must agree with the full sums
			// whenever they survive.
			if s, ab := SqDist32Abandon(a, r32, math.Inf(1)); ab || math.Float64bits(s) != math.Float64bits(SqDist32(a, r32)) {
				t.Fatalf("n=%d: SqDist32Abandon(+Inf) = (%v, %v), want full sum", n, s, ab)
			}
			if s, ab := SqDist32WAbandon(a, r32, w, math.Inf(1)); ab || math.Float64bits(s) != math.Float64bits(SqDist32W(a, r32, w)) {
				t.Fatalf("n=%d: SqDist32WAbandon(+Inf) = (%v, %v), want full sum", n, s, ab)
			}
		}
	}
}

// TestSqDist32Widening checks that a float32 row behaves exactly like a
// float64 row holding the widened values.
func TestSqDist32Widening(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 4, 13, 32} {
		q := make([]float64, n)
		row32 := make([]float32, n)
		row64 := make([]float64, n)
		w := make([]float64, n)
		for i := range q {
			q[i] = rng.NormFloat64()
			row32[i] = float32(rng.NormFloat64())
			row64[i] = float64(row32[i])
			w[i] = rng.Float64()
		}
		if got, want := SqDist32(q, row32), SqDist(q, row64); math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("n=%d: SqDist32 %v != SqDist %v", n, got, want)
		}
		if got, want := SqDist32W(q, row32, w), SqDistW(q, row64, w); math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("n=%d: SqDist32W %v != SqDistW %v", n, got, want)
		}
		bound := SqDist(q, row64) / 2
		s32, ab32 := SqDist32Abandon(q, row32, bound)
		s64, ab64 := SqDistAbandon(q, row64, bound)
		if ab32 != ab64 || math.Float64bits(s32) != math.Float64bits(s64) {
			t.Fatalf("n=%d: abandoning mismatch (%v,%v) vs (%v,%v)", n, s32, ab32, s64, ab64)
		}
	}
}

func TestGodebugDisables(t *testing.T) {
	cases := []struct {
		godebug string
		want    bool
	}{
		{"", false},
		{"cpu.avx2=off", true},
		{"cpu.avx2=0", true},
		{"cpu.avx2=on", false},
		{"gctrace=1,cpu.avx2=off", true},
		{"cpu.avx2=off,cpu.avx2=on", false}, // last wins
		{"cpu.avx2=on,cpu.avx2=off", true},
		{"cpu.avx512=off", false}, // different key
	}
	for _, c := range cases {
		if got := godebugDisables(c.godebug, "cpu.avx2"); got != c.want {
			t.Errorf("godebugDisables(%q) = %v, want %v", c.godebug, got, c.want)
		}
	}
}
