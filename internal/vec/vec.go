// Package vec provides the dense vector and matrix algebra used throughout
// the FeedbackBypass reproduction: element-wise vector operations, Gaussian
// elimination with partial pivoting, LU decomposition, determinants, matrix
// inversion and a Jacobi eigensolver for symmetric matrices.
//
// Everything operates on float64 slices so callers can share storage with
// feature vectors, barycentric coordinates and optimal-query-parameter
// (OQP) vectors without conversion.
package vec

import (
	"errors"
	"fmt"
	"math"
)

// ErrDimensionMismatch is returned when two operands have incompatible
// lengths or shapes.
var ErrDimensionMismatch = errors.New("vec: dimension mismatch")

// ErrSingular is returned when a linear system has no unique solution.
var ErrSingular = errors.New("vec: singular matrix")

// Clone returns a fresh copy of v.
func Clone(v []float64) []float64 {
	if v == nil {
		return nil
	}
	out := make([]float64, len(v))
	copy(out, v)
	return out
}

// Zeros returns a zero vector of length n.
func Zeros(n int) []float64 { return make([]float64, n) }

// Ones returns a vector of length n with every component set to 1.
func Ones(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = 1
	}
	return v
}

// Constant returns a vector of length n with every component set to c.
func Constant(n int, c float64) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = c
	}
	return v
}

// Add returns a + b.
func Add(a, b []float64) []float64 {
	mustSameLen(a, b)
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}

// Sub returns a - b.
func Sub(a, b []float64) []float64 {
	mustSameLen(a, b)
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out
}

// Scale returns s * v.
func Scale(v []float64, s float64) []float64 {
	out := make([]float64, len(v))
	for i := range v {
		out[i] = v[i] * s
	}
	return out
}

// AddInPlace sets dst = dst + v and returns dst.
func AddInPlace(dst, v []float64) []float64 {
	mustSameLen(dst, v)
	for i := range dst {
		dst[i] += v[i]
	}
	return dst
}

// SubInPlace sets dst = dst - v and returns dst.
func SubInPlace(dst, v []float64) []float64 {
	mustSameLen(dst, v)
	for i := range dst {
		dst[i] -= v[i]
	}
	return dst
}

// ScaleInPlace sets dst = s * dst and returns dst.
func ScaleInPlace(dst []float64, s float64) []float64 {
	for i := range dst {
		dst[i] *= s
	}
	return dst
}

// Axpy sets dst = dst + s*v and returns dst ("a x plus y").
func Axpy(dst []float64, s float64, v []float64) []float64 {
	mustSameLen(dst, v)
	for i := range dst {
		dst[i] += s * v[i]
	}
	return dst
}

// Dot returns the inner product of a and b.
func Dot(a, b []float64) float64 {
	mustSameLen(a, b)
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm returns the Euclidean (L2) norm of v.
func Norm(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// Norm1 returns the L1 norm of v.
func Norm1(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += math.Abs(x)
	}
	return s
}

// NormInf returns the maximum absolute component of v.
func NormInf(v []float64) float64 {
	var s float64
	for _, x := range v {
		if a := math.Abs(x); a > s {
			s = a
		}
	}
	return s
}

// Sum returns the sum of the components of v.
func Sum(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

// Dist returns the Euclidean distance between a and b. It is defined as
// math.Sqrt(SqDist(a, b)), so true distances everywhere agree bitwise
// with the squared-space retrieval kernels.
func Dist(a, b []float64) float64 {
	return math.Sqrt(SqDist(a, b))
}

// Equal reports whether a and b have the same length and identical
// components.
func Equal(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// EqualTol reports whether a and b have the same length and agree
// component-wise within absolute tolerance tol.
func EqualTol(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}

// IsFinite reports whether every component of v is finite (no NaN or Inf).
func IsFinite(v []float64) bool {
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}

// Normalize returns v scaled so its components sum to 1. It returns an
// error when the component sum is zero or not finite, since such a vector
// cannot represent a normalized histogram.
func Normalize(v []float64) ([]float64, error) {
	s := Sum(v)
	if s == 0 || math.IsNaN(s) || math.IsInf(s, 0) {
		return nil, fmt.Errorf("vec: cannot normalize vector with component sum %v", s)
	}
	return Scale(v, 1/s), nil
}

// Lerp returns the linear interpolation (1-t)*a + t*b.
func Lerp(a, b []float64, t float64) []float64 {
	mustSameLen(a, b)
	out := make([]float64, len(a))
	for i := range a {
		out[i] = (1-t)*a[i] + t*b[i]
	}
	return out
}

// Min returns the component-wise minimum of a and b.
func Min(a, b []float64) []float64 {
	mustSameLen(a, b)
	out := make([]float64, len(a))
	for i := range a {
		out[i] = math.Min(a[i], b[i])
	}
	return out
}

// Max returns the component-wise maximum of a and b.
func Max(a, b []float64) []float64 {
	mustSameLen(a, b)
	out := make([]float64, len(a))
	for i := range a {
		out[i] = math.Max(a[i], b[i])
	}
	return out
}

// Clamp returns v with every component clamped into [lo, hi].
func Clamp(v []float64, lo, hi float64) []float64 {
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = math.Min(math.Max(x, lo), hi)
	}
	return out
}

// ArgMax returns the index of the largest component of v, or -1 when v is
// empty. Ties resolve to the smallest index.
func ArgMax(v []float64) int {
	if len(v) == 0 {
		return -1
	}
	best := 0
	for i := 1; i < len(v); i++ {
		if v[i] > v[best] {
			best = i
		}
	}
	return best
}

// ArgMin returns the index of the smallest component of v, or -1 when v is
// empty. Ties resolve to the smallest index.
func ArgMin(v []float64) int {
	if len(v) == 0 {
		return -1
	}
	best := 0
	for i := 1; i < len(v); i++ {
		if v[i] < v[best] {
			best = i
		}
	}
	return best
}

func mustSameLen(a, b []float64) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: dimension mismatch: %d vs %d", len(a), len(b)))
	}
}
