//go:build amd64

package vec

import "os"

// cpuid executes the CPUID instruction (cpu_amd64.s).
func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads extended control register index (cpu_amd64.s). Only valid
// when CPUID reports OSXSAVE.
func xgetbv(index uint32) (eax, edx uint32)

// hasAVX2 is resolved once at startup; kernel dispatch must not change
// mid-run, or sums computed before and after would mix code paths.
var hasAVX2 = detectAVX2()

// HasAVX2 reports whether the AVX2 kernels are active: the CPU supports
// AVX2, the OS saves YMM state, and GODEBUG=cpu.avx2=off was not set at
// startup. The stdlib honors the same GODEBUG key for its own vector
// code, so one environment setting pins the whole process to the
// SSE2/portable paths — how CI exercises the fallback on AVX2 hosts.
func HasAVX2() bool { return hasAVX2 }

func detectAVX2() bool {
	if godebugDisables(os.Getenv("GODEBUG"), "cpu.avx2") {
		return false
	}
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	const (
		osxsaveBit = 1 << 27 // CPUID.1:ECX.OSXSAVE
		avxBit     = 1 << 28 // CPUID.1:ECX.AVX
	)
	_, _, ecx1, _ := cpuid(1, 0)
	if ecx1&osxsaveBit == 0 || ecx1&avxBit == 0 {
		return false
	}
	// The OS must context-switch both XMM and YMM state (XCR0 bits 1,2),
	// or executing VEX-256 instructions faults.
	if xlo, _ := xgetbv(0); xlo&0x6 != 0x6 {
		return false
	}
	const avx2Bit = 1 << 5 // CPUID.(7,0):EBX.AVX2
	_, ebx7, _, _ := cpuid(7, 0)
	return ebx7&avx2Bit != 0
}
