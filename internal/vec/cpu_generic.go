//go:build !amd64

package vec

// HasAVX2 reports whether the AVX2 kernels are active; off amd64 there
// are none, so it is always false and the portable paths run.
func HasAVX2() bool { return false }
