// Mixed-precision squared-distance primitives: float64 query against a
// float32 row. These serve the ANN probe stage, whose partition slabs
// are stored in float32 to halve memory bandwidth; each element is
// widened to float64 (exact — every float32 is representable) and then
// accumulated with the same canonical 4-stripe order as SqDist, so a
// probe distance computed from a float32 slab equals bit for bit the
// float64 distance against the rounded row values, on every code path
// (portable, and AVX2 via dispatch).
package vec

import "fmt"

// SqDist32 returns Σ (qᵢ − float64(rowᵢ))².
func SqDist32(q []float64, row []float32) float64 {
	mustSameLen32(q, row)
	return sqDist32Full(q, row)
}

// SqDist32W returns Σ wᵢ(qᵢ − float64(rowᵢ))².
func SqDist32W(q []float64, row []float32, w []float64) float64 {
	mustSameLen32(q, row)
	mustSameLen(q, w)
	return sqDist32WFull(q, row, w)
}

// SqDist32Abandon accumulates SqDist32(q, row) but gives up once the
// partial sum exceeds bound2, with the same contract as SqDistAbandon: a
// surviving sum is complete and bitwise identical to SqDist32, and the
// comparison is strict so ties on the bound are fully evaluated.
func SqDist32Abandon(q []float64, row []float32, bound2 float64) (sum float64, abandoned bool) {
	mustSameLen32(q, row)
	return sqDist32Abandon(q, row, bound2)
}

// SqDist32WAbandon is the weighted counterpart of SqDist32Abandon.
func SqDist32WAbandon(q []float64, row []float32, w []float64, bound2 float64) (sum float64, abandoned bool) {
	mustSameLen32(q, row)
	mustSameLen(q, w)
	return sqDist32WAbandon(q, row, w, bound2)
}

func sqDist32Abandon(q []float64, row []float32, bound2 float64) (float64, bool) {
	n := len(q)
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= n; i += 4 {
		qq := q[i : i+4 : i+4]
		rr := row[i : i+4 : i+4]
		d0 := qq[0] - float64(rr[0])
		s0 += d0 * d0
		d1 := qq[1] - float64(rr[1])
		s1 += d1 * d1
		d2 := qq[2] - float64(rr[2])
		s2 += d2 * d2
		d3 := qq[3] - float64(rr[3])
		s3 += d3 * d3
		if (s0+s1)+(s2+s3) > bound2 {
			return (s0 + s1) + (s2 + s3), true
		}
	}
	var st float64
	for ; i < n; i++ {
		d := q[i] - float64(row[i])
		st += d * d
	}
	s := (s0 + s1) + (s2 + s3) + st
	return s, s > bound2
}

func sqDist32WAbandon(q []float64, row []float32, w []float64, bound2 float64) (float64, bool) {
	n := len(q)
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= n; i += 4 {
		qq := q[i : i+4 : i+4]
		rr := row[i : i+4 : i+4]
		ww := w[i : i+4 : i+4]
		d0 := qq[0] - float64(rr[0])
		s0 += ww[0] * d0 * d0
		d1 := qq[1] - float64(rr[1])
		s1 += ww[1] * d1 * d1
		d2 := qq[2] - float64(rr[2])
		s2 += ww[2] * d2 * d2
		d3 := qq[3] - float64(rr[3])
		s3 += ww[3] * d3 * d3
		if (s0+s1)+(s2+s3) > bound2 {
			return (s0 + s1) + (s2 + s3), true
		}
	}
	var st float64
	for ; i < n; i++ {
		d := q[i] - float64(row[i])
		st += w[i] * d * d
	}
	s := (s0 + s1) + (s2 + s3) + st
	return s, s > bound2
}

func mustSameLen32(a []float64, b []float32) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: dimension mismatch: %d vs %d", len(a), len(b)))
	}
}
