// AVX2 full-sum squared-distance kernels (see sqdist_avx2_amd64.go for
// the parity contract). Lane L of the ymm accumulator is stripe
// accumulator sL; blocks of four elements map one element per lane, so
// each packed op is the four scalar stripe ops of one block. No FMA
// anywhere: VFMADD's fused single rounding would diverge from the
// two-rounding scalar sequence the portable code performs. Reductions
// extract [s0,s1] and [s2,s3] and combine as ((s0+s1)+(s2+s3))+tail,
// the association every other implementation uses. These routines only
// run when cpu_amd64.go detected AVX2+OS support.

#include "textflag.h"

// func sqDistAVX2(a, b []float64) float64
TEXT ·sqDistAVX2(SB), NOSPLIT, $0-56
	MOVQ a_base+0(FP), SI
	MOVQ a_len+8(FP), CX
	MOVQ b_base+24(FP), DI

	VXORPD Y0, Y0, Y0 // [s0,s1,s2,s3]
	MOVQ   CX, DX
	SHRQ   $2, DX     // whole 4-element blocks
	JZ     reduce

loop4:
	VMOVUPD (SI), Y1
	VSUBPD  (DI), Y1, Y1 // d = a - b
	VMULPD  Y1, Y1, Y1   // d*d
	VADDPD  Y1, Y0, Y0   // sL += dL*dL
	ADDQ    $32, SI
	ADDQ    $32, DI
	DECQ    DX
	JNZ     loop4

reduce:
	// X0 = (s0+s1)+(s2+s3)
	VEXTRACTF128 $1, Y0, X1 // [s2,s3]
	VUNPCKHPD    X0, X0, X2 // [s1,s1]
	VADDSD       X2, X0, X0 // s0+s1
	VUNPCKHPD    X1, X1, X3 // [s3,s3]
	VADDSD       X3, X1, X1 // s2+s3
	VADDSD       X1, X0, X0

	// Sequential tail accumulator, added once at the end.
	ANDQ   $3, CX
	JZ     done
	VXORPD X4, X4, X4

tail:
	VMOVSD (SI), X5
	VSUBSD (DI), X5, X5
	VMULSD X5, X5, X5
	VADDSD X5, X4, X4
	ADDQ   $8, SI
	ADDQ   $8, DI
	DECQ   CX
	JNZ    tail
	VADDSD X4, X0, X0

done:
	VMOVSD X0, ret+48(FP)
	VZEROUPPER
	RET

// func sqDistWAVX2(a, b, w []float64) float64
TEXT ·sqDistWAVX2(SB), NOSPLIT, $0-80
	MOVQ a_base+0(FP), SI
	MOVQ a_len+8(FP), CX
	MOVQ b_base+24(FP), DI
	MOVQ w_base+48(FP), R8

	VXORPD Y0, Y0, Y0
	MOVQ   CX, DX
	SHRQ   $2, DX
	JZ     wreduce

wloop4:
	VMOVUPD (SI), Y1
	VSUBPD  (DI), Y1, Y1 // d
	VMOVUPD (R8), Y2
	VMULPD  Y1, Y2, Y2   // w*d
	VMULPD  Y1, Y2, Y2   // (w*d)*d
	VADDPD  Y2, Y0, Y0
	ADDQ    $32, SI
	ADDQ    $32, DI
	ADDQ    $32, R8
	DECQ    DX
	JNZ     wloop4

wreduce:
	VEXTRACTF128 $1, Y0, X1
	VUNPCKHPD    X0, X0, X2
	VADDSD       X2, X0, X0
	VUNPCKHPD    X1, X1, X3
	VADDSD       X3, X1, X1
	VADDSD       X1, X0, X0

	ANDQ   $3, CX
	JZ     wdone
	VXORPD X4, X4, X4

wtail:
	VMOVSD (SI), X5
	VSUBSD (DI), X5, X5 // d
	VMOVSD (R8), X6
	VMULSD X5, X6, X6   // w*d
	VMULSD X5, X6, X6   // (w*d)*d
	VADDSD X6, X4, X4
	ADDQ   $8, SI
	ADDQ   $8, DI
	ADDQ   $8, R8
	DECQ   CX
	JNZ    wtail
	VADDSD X4, X0, X0

wdone:
	VMOVSD X0, ret+72(FP)
	VZEROUPPER
	RET

// func sqDist32AVX2(q []float64, row []float32) float64
//
// float32 rows widen losslessly through VCVTPS2PD, then the arithmetic
// is identical to sqDistAVX2.
TEXT ·sqDist32AVX2(SB), NOSPLIT, $0-56
	MOVQ q_base+0(FP), SI
	MOVQ q_len+8(FP), CX
	MOVQ row_base+24(FP), DI

	VXORPD Y0, Y0, Y0
	MOVQ   CX, DX
	SHRQ   $2, DX
	JZ     f32reduce

f32loop4:
	VCVTPS2PD (DI), Y1   // widen 4 float32 row elements
	VMOVUPD   (SI), Y2
	VSUBPD    Y1, Y2, Y2 // d = q - row
	VMULPD    Y2, Y2, Y2
	VADDPD    Y2, Y0, Y0
	ADDQ      $32, SI
	ADDQ      $16, DI
	DECQ      DX
	JNZ       f32loop4

f32reduce:
	VEXTRACTF128 $1, Y0, X1
	VUNPCKHPD    X0, X0, X2
	VADDSD       X2, X0, X0
	VUNPCKHPD    X1, X1, X3
	VADDSD       X3, X1, X1
	VADDSD       X1, X0, X0

	ANDQ   $3, CX
	JZ     f32done
	VXORPD X4, X4, X4

f32tail:
	VCVTSS2SD (DI), X5, X5
	VMOVSD    (SI), X6
	VSUBSD    X5, X6, X6
	VMULSD    X6, X6, X6
	VADDSD    X6, X4, X4
	ADDQ      $8, SI
	ADDQ      $4, DI
	DECQ      CX
	JNZ       f32tail
	VADDSD X4, X0, X0

f32done:
	VMOVSD X0, ret+48(FP)
	VZEROUPPER
	RET

// func sqDist32WAVX2(q []float64, row []float32, w []float64) float64
TEXT ·sqDist32WAVX2(SB), NOSPLIT, $0-80
	MOVQ q_base+0(FP), SI
	MOVQ q_len+8(FP), CX
	MOVQ row_base+24(FP), DI
	MOVQ w_base+48(FP), R8

	VXORPD Y0, Y0, Y0
	MOVQ   CX, DX
	SHRQ   $2, DX
	JZ     f32wreduce

f32wloop4:
	VCVTPS2PD (DI), Y1
	VMOVUPD   (SI), Y2
	VSUBPD    Y1, Y2, Y2 // d
	VMOVUPD   (R8), Y3
	VMULPD    Y2, Y3, Y3 // w*d
	VMULPD    Y2, Y3, Y3 // (w*d)*d
	VADDPD    Y3, Y0, Y0
	ADDQ      $32, SI
	ADDQ      $16, DI
	ADDQ      $32, R8
	DECQ      DX
	JNZ       f32wloop4

f32wreduce:
	VEXTRACTF128 $1, Y0, X1
	VUNPCKHPD    X0, X0, X2
	VADDSD       X2, X0, X0
	VUNPCKHPD    X1, X1, X3
	VADDSD       X3, X1, X1
	VADDSD       X1, X0, X0

	ANDQ   $3, CX
	JZ     f32wdone
	VXORPD X4, X4, X4

f32wtail:
	VCVTSS2SD (DI), X5, X5
	VMOVSD    (SI), X6
	VSUBSD    X5, X6, X6 // d
	VMOVSD    (R8), X7
	VMULSD    X6, X7, X7 // w*d
	VMULSD    X6, X7, X7 // (w*d)*d
	VADDSD    X7, X4, X4
	ADDQ      $8, SI
	ADDQ      $4, DI
	ADDQ      $8, R8
	DECQ      CX
	JNZ       f32wtail
	VADDSD X4, X0, X0

f32wdone:
	VMOVSD X0, ret+72(FP)
	VZEROUPPER
	RET
