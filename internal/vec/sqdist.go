// Canonical squared-distance primitives. These are the one true
// implementation of Σ (aᵢ−bᵢ)² and Σ wᵢ(aᵢ−bᵢ)² in the codebase: the
// naive Metric.Distance implementations, the scan kernels, and the index
// leaf loops all route through them, so every layer produces bitwise-
// identical sums (the knn parity tests depend on this).
//
// The accumulation order is fixed: four independent accumulators striped
// over blocks of four elements (breaking the FP-add latency chain that
// serializes a single-accumulator loop), a sequential tail accumulator,
// and the final reduction ((s0+s1)+(s2+s3))+tail. The early-abandoning
// variants materialize the same reduction at block boundaries purely for
// the bound comparison — the accumulators themselves are untouched, so a
// surviving candidate's final sum is identical to the non-abandoning
// computation. Blocks are loaded through fixed-size subslices so the
// compiler drops per-element bounds checks.
package vec

// SqDist returns the squared Euclidean distance Σ (aᵢ−bᵢ)². Full sums
// dispatch through sqDistFull (AVX2 when available); every
// implementation is bitwise identical.
func SqDist(a, b []float64) float64 {
	mustSameLen(a, b)
	return sqDistFull(a, b)
}

// SqDistW returns the weighted squared distance Σ wᵢ(aᵢ−bᵢ)².
func SqDistW(a, b, w []float64) float64 {
	mustSameLen(a, b)
	mustSameLen(a, w)
	return sqDistWFull(a, b, w)
}

// SqDistAbandon accumulates SqDist(a, b) but gives up once the partial
// sum exceeds bound2, returning the partial sum and abandoned=true. When
// abandoned is false the sum is complete and bitwise identical to
// SqDist(a, b). The comparison is strict (> bound2): candidates landing
// exactly on the bound are fully evaluated, leaving ties to the caller's
// index-ordered tie-break.
func SqDistAbandon(a, b []float64, bound2 float64) (sum float64, abandoned bool) {
	mustSameLen(a, b)
	return sqDistAbandon(a, b, bound2)
}

// SqDistWAbandon is the weighted counterpart of SqDistAbandon.
func SqDistWAbandon(a, b, w []float64, bound2 float64) (sum float64, abandoned bool) {
	mustSameLen(a, b)
	mustSameLen(a, w)
	return sqDistWAbandon(a, b, w, bound2)
}

func sqDistAbandon(a, b []float64, bound2 float64) (float64, bool) {
	n := len(a)
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= n; i += 4 {
		aa := a[i : i+4 : i+4]
		bb := b[i : i+4 : i+4]
		d0 := aa[0] - bb[0]
		s0 += d0 * d0
		d1 := aa[1] - bb[1]
		s1 += d1 * d1
		d2 := aa[2] - bb[2]
		s2 += d2 * d2
		d3 := aa[3] - bb[3]
		s3 += d3 * d3
		if (s0+s1)+(s2+s3) > bound2 {
			return (s0 + s1) + (s2 + s3), true
		}
	}
	var st float64
	for ; i < n; i++ {
		d := a[i] - b[i]
		st += d * d
	}
	s := (s0 + s1) + (s2 + s3) + st
	return s, s > bound2
}

func sqDistWAbandon(a, b, w []float64, bound2 float64) (float64, bool) {
	n := len(a)
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= n; i += 4 {
		aa := a[i : i+4 : i+4]
		bb := b[i : i+4 : i+4]
		ww := w[i : i+4 : i+4]
		d0 := aa[0] - bb[0]
		s0 += ww[0] * d0 * d0
		d1 := aa[1] - bb[1]
		s1 += ww[1] * d1 * d1
		d2 := aa[2] - bb[2]
		s2 += ww[2] * d2 * d2
		d3 := aa[3] - bb[3]
		s3 += ww[3] * d3 * d3
		if (s0+s1)+(s2+s3) > bound2 {
			return (s0 + s1) + (s2 + s3), true
		}
	}
	var st float64
	for ; i < n; i++ {
		d := a[i] - b[i]
		st += w[i] * d * d
	}
	s := (s0 + s1) + (s2 + s3) + st
	return s, s > bound2
}
