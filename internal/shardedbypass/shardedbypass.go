// Package shardedbypass partitions the learned Mopt mapping across S
// independent Simplex Trees so the write path of the serving layer scales
// with partitions instead of serializing on one tree.
//
// The single-tree core.Bypass is the right shape for one interactive user
// — the paper's setting — but as a shared serving substrate every Close
// insert takes the one tree's exclusive lock and (through the serving
// layer's generational cache) invalidates every cached prediction in the
// process. Sharded splits the query domain by the pinned partition
// function engine.ShardOf (FNV-1a query signature mod S): each shard is a
// full Bypass — its own RWMutex, its own snapshot + WAL pair, its own
// compaction schedule — so inserts to different shards never contend and
// an insert invalidates only its own shard's cached predictions.
//
// Durable layout: a module directory holds a manifest (persist.Manifest,
// written once before any shard state exists) and one subdirectory per
// shard (shard-000/, shard-001/, ...), each an ordinary core.DurableBypass
// directory. Recovery opens every shard in parallel and is deterministic
// per shard because each shard's WAL holds exactly that shard's accepted
// inserts in application order; cross-shard ordering is not recorded and
// not needed — the partition function makes shards independent learners.
// A crash mid-compaction of shard k is shard k's problem alone and is
// healed by core.DurableBypass's atomic-rename recovery inside that
// shard's directory. The manifest pins S, D and N: opening with a
// different geometry is refused, so resharding is an explicit migration
// (drain every shard's WAL through compaction, then re-insert every
// stored point under the new partition function), never an accident.
//
// S = 1 is the compatibility mode: one shard, the identity partition, and
// behavior bitwise-identical to core.DurableBypass — same ε decisions,
// same predictions, same WAL bytes (pinned by TestSingleShardParity).
package shardedbypass

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/obsv"
	"repro/internal/persist"
	"repro/internal/simplextree"
)

// ManifestFile is the manifest's name inside a sharded module directory.
const ManifestFile = "MANIFEST"

// MaxShards bounds the partition count; beyond this the per-shard
// overhead (file handles, locks, directories) stops buying anything.
const MaxShards = 1024

// ErrReplaying is wrapped by every operation routed to a shard whose
// recovery (snapshot load + WAL replay) has not finished yet. It is a
// retryable condition, not a failure: serving layers should map it to
// 503, and WaitReady blocks until it can no longer occur.
var ErrReplaying = errors.New("shardedbypass: shard is replaying")

// Options tunes a sharded bypass.
type Options struct {
	// Shards is the partition count S; 1 (the compatibility mode) when
	// zero. When opening an existing durable module, Shards must match
	// the manifest (or be zero to adopt it).
	Shards int
	// Durable tunes each shard's WAL behaviour (durable mode only). Note
	// CompactEvery is per shard: S shards compact independently, each
	// after its own CompactEvery journaled inserts.
	Durable core.DurableOptions
	// Obs, when non-nil, registers per-shard instruments (insert
	// latency histograms, tree-size and WAL-size gauges) and is
	// propagated into each shard's DurableOptions for the WAL and
	// snapshot histograms. Every instrument carries ObsLabels plus a
	// shard="N" label.
	Obs *obsv.Registry
	// ObsLabels are attached to every instrument this module registers
	// (typically the collection name).
	ObsLabels []obsv.Label
}

// shard is one partition: an independent Bypass plus its durability and
// counters. byp/durable/err are written exactly once, before ready is
// closed; readers must observe ready first.
type shard struct {
	id      int
	ready   chan struct{}
	byp     *core.Bypass        // always set once ready (points into durable when durable)
	durable *core.DurableBypass // nil in memory mode
	err     error               // recovery failure, set before ready closes
	inserts atomic.Int64        // accepted (tree-changing) inserts since open
	insertH *obsv.Histogram     // optional: per-shard insert latency

	// Lifecycle counters for memory-mode shards (durable shards count
	// inside core.DurableBypass, which also sees its own insert-path
	// compactions).
	compactions atomic.Uint64
	reclaimed   atomic.Uint64
}

// compactAged runs one aged compaction on this shard through its durable
// write path when present.
func (p *shard) compactAged() (core.CompactionStats, error) {
	var (
		sts []core.CompactionStats
		err error
	)
	if p.durable != nil {
		sts, err = p.durable.CompactAged()
	} else {
		sts, err = p.byp.CompactAged()
	}
	if err != nil {
		return core.CompactionStats{}, err
	}
	st := sts[0]
	if p.durable == nil {
		p.compactions.Add(1)
		p.reclaimed.Add(uint64(st.Reclaimed))
	}
	return st, nil
}

// lifecycleCounters reports this shard's aged-compaction counters from
// whichever layer tracks them.
func (p *shard) lifecycleCounters() (compactions, reclaimed uint64) {
	if p.durable != nil {
		return p.durable.Compactions(), p.durable.Reclaimed()
	}
	return p.compactions.Load(), p.reclaimed.Load()
}

// observe registers this shard's instruments in reg. The gauge callbacks
// tolerate every shard state: they report zero until recovery settles
// and after a recovery failure.
func (p *shard) observe(reg *obsv.Registry, labels []obsv.Label) {
	if reg == nil {
		return
	}
	ls := append(append([]obsv.Label(nil), labels...), obsv.L("shard", strconv.Itoa(p.id)))
	p.insertH = reg.Histogram("fb_shard_insert_seconds", "Per-shard bypass insert latency (tree insert + WAL append).", obsv.LatencyBounds(), ls...)
	live := func() bool {
		select {
		case <-p.ready:
			return p.err == nil
		default:
			return false
		}
	}
	reg.GaugeFunc("fb_tree_points", "Simplex Tree stored points per shard.", func() float64 {
		if !live() {
			return 0
		}
		return float64(p.byp.Stats().Points)
	}, ls...)
	reg.GaugeFunc("fb_tree_depth", "Simplex Tree depth per shard.", func() float64 {
		if !live() {
			return 0
		}
		return float64(p.byp.Stats().Depth)
	}, ls...)
	reg.GaugeFunc("fb_wal_bytes", "Journal on-disk size per shard (recovery debt).", func() float64 {
		if !live() || p.durable == nil {
			return 0
		}
		return float64(p.durable.WALSize())
	}, ls...)
}

// Sharded is an S-way partitioned bypass. It satisfies the serving
// layer's Bypass interface (D/P/Predict/Insert/Stats), routing every call
// by engine.ShardOf, and adds the partition-aware surface the serving
// layer's per-shard cache generations build on (NumShards, ShardOf,
// ShardInfos).
type Sharded struct {
	d, p   int
	dir    string // "" in memory mode
	shards []*shard
}

// ShardInfo is one shard's point-in-time counters, exported by serving
// layers (fbserve /stats).
type ShardInfo struct {
	Shard     int    `json:"shard"`
	Replaying bool   `json:"replaying,omitempty"`
	Error     string `json:"error,omitempty"`    // recovery failure; terminal, unlike Replaying
	Degraded  string `json:"degraded,omitempty"` // persistence failure; shard serves read-only
	Points    int    `json:"points"`
	Depth     int    `json:"depth"`
	Inserts   int64  `json:"inserts"`
	Journaled int    `json:"journaled,omitempty"`
	WALBytes  int64  `json:"wal_bytes,omitempty"`
	// Lifecycle plane: aged compactions completed on this shard and the
	// vertices they reclaimed.
	Compactions uint64 `json:"compactions,omitempty"`
	Reclaimed   uint64 `json:"reclaimed,omitempty"`
}

// shardDir names shard i's subdirectory: shard-000, shard-001, ...
// Three digits are a display convention, not a limit (shard-1023 is fine).
func shardDir(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%03d", i))
}

func validateOptions(d, p int, opts Options) (int, error) {
	if d <= 0 || p < 0 {
		return 0, fmt.Errorf("shardedbypass: invalid dimensions D=%d, P=%d", d, p)
	}
	s := opts.Shards
	if s == 0 {
		s = 1
	}
	if s < 0 || s > MaxShards {
		return 0, fmt.Errorf("shardedbypass: shard count %d outside [1, %d]", opts.Shards, MaxShards)
	}
	return s, nil
}

// shardConfig divides the module-level quotas across S shards —
// ceil(total/S) each — so the aggregate bound holds up to rounding
// while every shard enforces its slice independently (no cross-shard
// accounting on the insert path).
func shardConfig(cfg core.Config, s int) core.Config {
	if s > 1 {
		if cfg.MaxVertices > 0 {
			cfg.MaxVertices = (cfg.MaxVertices + s - 1) / s
		}
		if cfg.MaxBytes > 0 {
			cfg.MaxBytes = (cfg.MaxBytes + int64(s) - 1) / int64(s)
		}
	}
	return cfg
}

// New creates an in-memory sharded bypass (no WAL, no directory): S
// independent core.Bypass partitions behind one routing front. Every
// shard is ready immediately.
func New(d, p int, cfg core.Config, opts Options) (*Sharded, error) {
	s, err := validateOptions(d, p, opts)
	if err != nil {
		return nil, err
	}
	cfg = shardConfig(cfg, s)
	sh := &Sharded{d: d, p: p, shards: make([]*shard, s)}
	for i := range sh.shards {
		b, err := core.New(d, p, cfg)
		if err != nil {
			return nil, err
		}
		ready := make(chan struct{})
		close(ready)
		sh.shards[i] = &shard{id: i, ready: ready, byp: b}
		sh.shards[i].observe(opts.Obs, opts.ObsLabels)
	}
	return sh, nil
}

// Open opens (or initializes) a durable sharded module rooted at dir,
// recovering every shard in parallel, and blocks until all shards are
// ready. See OpenAsync for the layout and recovery contract.
func Open(dir string, d, p int, cfg core.Config, opts Options) (*Sharded, error) {
	sh, err := OpenAsync(dir, d, p, cfg, opts)
	if err != nil {
		return nil, err
	}
	if err := sh.WaitReady(); err != nil {
		_ = sh.Close()
		return nil, err
	}
	return sh, nil
}

// OpenAsync opens a durable sharded module and returns as soon as the
// manifest is settled, with every shard recovering (snapshot load + WAL
// replay) in its own goroutine. Operations routed to a shard still
// replaying fail with an error wrapping ErrReplaying; WaitReady blocks
// until every shard is live (or reports the first recovery failure).
//
// On first open the manifest is written before any shard directory is
// created, so a crash between manifest and shard creation recovers as S
// empty shards. On later opens the manifest is the source of truth:
// opts.Shards must match it (zero adopts it), and a geometry mismatch is
// an error, never a silent reshard.
func OpenAsync(dir string, d, p int, cfg core.Config, opts Options) (*Sharded, error) {
	s, err := validateOptions(d, p, opts)
	if err != nil {
		return nil, err
	}
	fsys := persist.OrOS(opts.Durable.FS)
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	manifestPath := filepath.Join(dir, ManifestFile)
	m, err := persist.LoadManifestFS(fsys, manifestPath)
	switch {
	case err == nil:
		if opts.Shards != 0 && m.Shards != opts.Shards {
			return nil, fmt.Errorf("shardedbypass: module at %s has %d shards, asked for %d (resharding is an explicit migration)", dir, m.Shards, opts.Shards)
		}
		if m.Dim != d || m.OQPDim != d+p {
			return nil, fmt.Errorf("shardedbypass: module at %s is for D=%d N=%d, want D=%d N=%d", dir, m.Dim, m.OQPDim, d, d+p)
		}
		s = m.Shards
	case errors.Is(err, os.ErrNotExist):
		// No manifest: only a directory with no module state at all may be
		// initialized. A legacy single-tree module (root-level snapshot or
		// journal, the pre-sharding fbserve layout) must not be silently
		// shadowed by S fresh empty shards — sharding it is a migration.
		for _, name := range []string{core.SnapshotFile, core.JournalFile} {
			if _, serr := fsys.Stat(filepath.Join(dir, name)); serr == nil {
				return nil, fmt.Errorf("shardedbypass: %s holds a legacy single-tree module (%s present, no manifest); sharding an existing module is an explicit migration", dir, name)
			}
		}
		m = persist.Manifest{Shards: s, Dim: d, OQPDim: d + p}
		if err := persist.SaveManifestFS(fsys, manifestPath, m); err != nil {
			return nil, fmt.Errorf("shardedbypass: writing manifest: %w", err)
		}
	default:
		return nil, fmt.Errorf("shardedbypass: reading manifest: %w", err)
	}

	shardCfg := shardConfig(cfg, s)
	sh := &Sharded{d: d, p: p, dir: dir, shards: make([]*shard, s)}
	for i := range sh.shards {
		sh.shards[i] = &shard{id: i, ready: make(chan struct{})}
		sh.shards[i].observe(opts.Obs, opts.ObsLabels)
	}
	for _, p0 := range sh.shards {
		go func(p0 *shard) {
			defer close(p0.ready)
			sd := shardDir(dir, p0.id)
			dopts := opts.Durable
			if opts.Obs != nil {
				dopts.Obs = opts.Obs
				dopts.ObsLabels = append(append([]obsv.Label(nil), opts.ObsLabels...), obsv.L("shard", strconv.Itoa(p0.id)))
			}
			db, err := core.OpenDurable(sd, d, p, shardCfg, dopts)
			if err != nil {
				p0.err = fmt.Errorf("shardedbypass: shard %d: %w", p0.id, err)
				return
			}
			// The shard's directory entries (shard-NNN/ in the module dir,
			// tree.fbwl inside it) must be durable before the shard serves:
			// with Options.Durable.Sync an acknowledged insert fsyncs only
			// the WAL's *contents*, and a power loss that erased the
			// never-synced directory entry would make recovery read the
			// missing directory as an empty shard — silently dropping the
			// acked insert. No insert can be acknowledged before ready
			// closes, so syncing here closes the window.
			if err := fsys.SyncDir(sd); err != nil {
				_ = db.Close()
				p0.err = fmt.Errorf("shardedbypass: shard %d: syncing shard directory: %w", p0.id, err)
				return
			}
			if err := fsys.SyncDir(dir); err != nil {
				_ = db.Close()
				p0.err = fmt.Errorf("shardedbypass: shard %d: syncing module directory: %w", p0.id, err)
				return
			}
			p0.durable = db
			p0.byp = db.Bypass
		}(p0)
	}
	return sh, nil
}

// ReadManifest reports the sharded-module manifest at dir, with ok false
// when dir is not a sharded module directory (no manifest). Serving
// layers use it to refuse opening a sharded directory through the legacy
// single-tree path.
func ReadManifest(dir string) (persist.Manifest, bool, error) {
	m, err := persist.LoadManifest(filepath.Join(dir, ManifestFile))
	if errors.Is(err, os.ErrNotExist) {
		return persist.Manifest{}, false, nil
	}
	if err != nil {
		return persist.Manifest{}, false, err
	}
	return m, true, nil
}

// D returns the query-domain dimensionality.
func (s *Sharded) D() int { return s.d }

// P returns the number of distance parameters.
func (s *Sharded) P() int { return s.p }

// NumShards returns the partition count S.
func (s *Sharded) NumShards() int { return len(s.shards) }

// ShardOf returns the shard index serving query point q — the pinned
// partition function engine.ShardOf.
func (s *Sharded) ShardOf(q []float64) int { return engine.ShardOf(q, len(s.shards)) }

// get returns shard i if it is live, or an ErrReplaying / recovery error.
func (s *Sharded) get(i int) (*shard, error) {
	p := s.shards[i]
	select {
	case <-p.ready:
		if p.err != nil {
			return nil, p.err
		}
		return p, nil
	default:
		return nil, fmt.Errorf("shardedbypass: shard %d: %w", i, ErrReplaying)
	}
}

// Ready reports whether every shard is live — recovery finished with no
// error. Use Err to tell a failed recovery apart from one still running.
func (s *Sharded) Ready() bool {
	for _, p := range s.shards {
		select {
		case <-p.ready:
			if p.err != nil {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// Err returns the first shard's recovery failure without blocking: nil
// while shards are still replaying and when every settled shard
// recovered cleanly.
func (s *Sharded) Err() error {
	for _, p := range s.shards {
		select {
		case <-p.ready:
			if p.err != nil {
				return p.err
			}
		default:
		}
	}
	return nil
}

// WaitReady blocks until every shard finished recovering and returns the
// first (lowest-shard-index) recovery failure, if any.
func (s *Sharded) WaitReady() error {
	for _, p := range s.shards {
		<-p.ready
	}
	for _, p := range s.shards {
		if p.err != nil {
			return p.err
		}
	}
	return nil
}

// Predict returns the OQPs for query point q from q's shard. Reads on
// different shards (and on the same shard) run in parallel; only an
// insert into the same shard contends.
func (s *Sharded) Predict(q []float64) (core.OQP, error) {
	p, err := s.get(s.ShardOf(q))
	if err != nil {
		return core.OQP{}, err
	}
	return p.byp.Predict(q)
}

// insert applies one insert to a live shard through its durable write
// path when present.
func (p *shard) insert(q []float64, oqp core.OQP) (bool, error) {
	var t0 time.Time
	if p.insertH != nil {
		t0 = time.Now()
	}
	var (
		changed bool
		err     error
	)
	if p.durable != nil {
		// The durable layer owns compact-then-retry on quota pressure.
		changed, err = p.durable.Insert(q, oqp)
	} else {
		changed, err = p.byp.Insert(q, oqp)
		if err != nil && errors.Is(err, core.ErrQuotaExceeded) && p.byp.Tree().AgeHorizon() > 0 {
			// Memory-mode compact-then-retry: one aged compaction, one
			// retry iff it reclaimed space. The compaction changed the
			// served tree even when the retry is ε-skipped, so report
			// changed=true either way (per-shard caches must refresh).
			if st, cerr := p.compactAged(); cerr == nil && st.Reclaimed > 0 {
				_, err = p.byp.Insert(q, oqp)
				changed = true
			}
		}
	}
	if changed {
		p.inserts.Add(1)
	}
	if p.insertH != nil {
		p.insertH.ObserveSince(t0)
	}
	return changed, err
}

// Insert stores a converged feedback outcome in q's shard, taking only
// that shard's exclusive lock (and journaling to that shard's WAL in
// durable mode).
func (s *Sharded) Insert(q []float64, oqp core.OQP) (bool, error) {
	p, err := s.get(s.ShardOf(q))
	if err != nil {
		return false, err
	}
	return p.insert(q, oqp)
}

// InsertBatch stores many outcomes, grouped by shard: within a shard,
// pairs apply in their original relative order with single-Insert ε
// semantics; across shards there is no ordering (shards are independent
// learners). It returns the number of pairs that changed some shard; on
// the first error it stops with earlier groups (and the failing shard's
// earlier pairs) applied.
func (s *Sharded) InsertBatch(qs [][]float64, oqps []core.OQP) (int, error) {
	if len(qs) != len(oqps) {
		return 0, fmt.Errorf("shardedbypass: batch has %d points but %d OQPs", len(qs), len(oqps))
	}
	if len(s.shards) == 1 {
		p, err := s.get(0)
		if err != nil {
			return 0, err
		}
		if p.durable != nil {
			stored, err := p.durable.InsertBatch(qs, oqps)
			p.inserts.Add(int64(stored))
			return stored, err
		}
		stored, err := p.byp.InsertBatch(qs, oqps)
		p.inserts.Add(int64(stored))
		return stored, err
	}
	byShard := make(map[int][]int)
	for i, q := range qs {
		sh := s.ShardOf(q)
		byShard[sh] = append(byShard[sh], i)
	}
	stored := 0
	for sh := 0; sh < len(s.shards); sh++ {
		idxs := byShard[sh]
		if len(idxs) == 0 {
			continue
		}
		p, err := s.get(sh)
		if err != nil {
			return stored, err
		}
		for _, i := range idxs {
			changed, err := p.insert(qs[i], oqps[i])
			if changed {
				stored++
			}
			if err != nil {
				return stored, err
			}
		}
	}
	return stored, nil
}

// Stats aggregates the shape of every live shard's tree: Points, Leaves,
// Nodes and DistinctVertices sum; Depth is the maximum; AvgLeafDepth is
// the leaf-weighted mean. Shards still replaying contribute nothing (the
// snapshot is what is servable right now).
func (s *Sharded) Stats() simplextree.Stats {
	agg := simplextree.Stats{Dim: s.d, OQPDim: s.d + s.p}
	var leafDepthSum float64
	for i := range s.shards {
		p, err := s.get(i)
		if err != nil {
			continue
		}
		st := p.byp.Stats()
		agg.Points += st.Points
		agg.Leaves += st.Leaves
		agg.Nodes += st.Nodes
		agg.DistinctVertices += st.DistinctVertices
		if st.Depth > agg.Depth {
			agg.Depth = st.Depth
		}
		leafDepthSum += st.AvgLeafDepth * float64(st.Leaves)
	}
	if agg.Leaves > 0 {
		agg.AvgLeafDepth = leafDepthSum / float64(agg.Leaves)
	}
	return agg
}

// Walk visits every distinct vertex of every live shard exactly once —
// the module-wide census of the learned mapping (the sharded analogue of
// Bypass.Tree().Walk). It fails if any shard is still replaying or its
// recovery failed: a partial census would silently under-count.
func (s *Sharded) Walk(fn func(v *simplextree.Vertex)) error {
	for i := range s.shards {
		p, err := s.get(i)
		if err != nil {
			return fmt.Errorf("shardedbypass: shard %d: %w", i, err)
		}
		p.byp.Tree().Walk(fn)
	}
	return nil
}

// ShardInfos snapshots every shard's counters (per-shard tree shape,
// accepted inserts, journal depth and WAL bytes); a shard still
// replaying is marked Replaying with zero counters, one whose recovery
// failed carries the error.
func (s *Sharded) ShardInfos() []ShardInfo {
	out := make([]ShardInfo, len(s.shards))
	for i, p := range s.shards {
		out[i] = ShardInfo{Shard: i}
		select {
		case <-p.ready:
		default:
			out[i].Replaying = true
			continue
		}
		if p.err != nil {
			out[i].Error = p.err.Error()
			continue
		}
		st := p.byp.Stats()
		out[i].Points = st.Points
		out[i].Depth = st.Depth
		out[i].Inserts = p.inserts.Load()
		out[i].Compactions, out[i].Reclaimed = p.lifecycleCounters()
		if p.durable != nil {
			out[i].Journaled = p.durable.Journaled()
			out[i].WALBytes = p.durable.WALSize()
			if derr := p.durable.Degraded(); derr != nil {
				out[i].Degraded = derr.Error()
			}
		}
	}
	return out
}

// Degraded reports the first settled shard that has flipped to
// read-only after a persistence failure, or nil when no shard is
// degraded. The returned error satisfies errors.Is(err,
// core.ErrDegraded); predictions on every shard (including degraded
// ones) stay live.
func (s *Sharded) Degraded() error {
	for i := range s.shards {
		p := s.shards[i]
		select {
		case <-p.ready:
		default:
			continue
		}
		if p.durable == nil || p.err != nil {
			continue
		}
		if derr := p.durable.Degraded(); derr != nil {
			return fmt.Errorf("shardedbypass: shard %d: %w", i, derr)
		}
	}
	return nil
}

// Journaled sums the journaled-insert counts of every live shard
// (durable mode).
func (s *Sharded) Journaled() int {
	total := 0
	for i := range s.shards {
		if p, err := s.get(i); err == nil && p.durable != nil {
			total += p.durable.Journaled()
		}
	}
	return total
}

// Compact snapshots every shard's tree and truncates its journal — the
// all-shard compaction of a graceful shutdown. Shards compact in
// parallel; the first error is returned after every shard finished (a
// failed compaction of shard k must not abort shard j's).
func (s *Sharded) Compact() error {
	errs := make([]error, len(s.shards))
	var wg sync.WaitGroup
	for i := range s.shards {
		p, err := s.get(i)
		if err != nil {
			errs[i] = err
			continue
		}
		if p.durable == nil {
			continue
		}
		wg.Add(1)
		go func(i int, p *shard) {
			defer wg.Done()
			if err := p.durable.Compact(); err != nil {
				errs[i] = fmt.Errorf("shardedbypass: compacting shard %d: %w", i, err)
			}
		}(i, p)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// CompactAged runs one aged compaction on every live shard in parallel,
// returning per-shard stats indexed by shard id — the scoped shape
// serving layers need to invalidate only the shards that actually
// reclaimed something. Shards still replaying (or whose recovery failed)
// contribute zero stats and an error; like Compact, one shard's failure
// never aborts another's compaction, and the joined error is returned
// after every shard finished.
func (s *Sharded) CompactAged() ([]core.CompactionStats, error) {
	stats := make([]core.CompactionStats, len(s.shards))
	errs := make([]error, len(s.shards))
	var wg sync.WaitGroup
	for i := range s.shards {
		p, err := s.get(i)
		if err != nil {
			errs[i] = err
			continue
		}
		wg.Add(1)
		go func(i int, p *shard) {
			defer wg.Done()
			st, err := p.compactAged()
			if err != nil {
				errs[i] = fmt.Errorf("shardedbypass: compacting shard %d: %w", i, err)
				return
			}
			stats[i] = st
		}(i, p)
	}
	wg.Wait()
	return stats, errors.Join(errs...)
}

// Close waits for every shard's recovery to settle and closes each
// shard's journal. The module must not be used afterwards; reopen with
// Open.
func (s *Sharded) Close() error {
	var errs []error
	for _, p := range s.shards {
		<-p.ready
		if p.durable != nil {
			if err := p.durable.Close(); err != nil {
				errs = append(errs, fmt.Errorf("shardedbypass: closing shard %d: %w", p.id, err))
			}
		}
	}
	return errors.Join(errs...)
}
