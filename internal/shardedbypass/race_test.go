package shardedbypass

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
)

// TestConcurrentShardTraffic hammers a durable sharded module with
// parallel writers and readers across every shard — the contention shape
// the partitioning exists to absorb. Run under -race (the package is in
// the CI race matrix); correctness here is "no race, no error, and every
// accepted insert is countable afterwards".
func TestConcurrentShardTraffic(t *testing.T) {
	const (
		d, p    = 4, 4
		shards  = 4
		writers = 4
		readers = 4
		perG    = 60
	)
	sh, err := Open(t.TempDir(), d, p, core.Config{Epsilon: 0}, Options{Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()

	// Pre-generate per-goroutine workloads (rand.Rand is not
	// goroutine-safe).
	points := make([][][]float64, writers+readers)
	oqps := make([][]core.OQP, writers)
	for g := 0; g < writers+readers; g++ {
		rng := rand.New(rand.NewSource(int64(300 + g)))
		points[g] = make([][]float64, perG)
		for i := range points[g] {
			points[g][i] = randomSimplexPoint(rng, d)
		}
		if g < writers {
			oqps[g] = make([]core.OQP, perG)
			for i := range oqps[g] {
				oqps[g][i] = randomOQP(rng, d, p)
			}
		}
	}

	var wg sync.WaitGroup
	errs := make([]error, writers+readers)
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if _, err := sh.Insert(points[g][i], oqps[g][i]); err != nil {
					errs[g] = err
					return
				}
			}
		}(g)
	}
	for g := writers; g < writers+readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if _, err := sh.Predict(points[g][i]); err != nil {
					errs[g] = err
					return
				}
				// Aggregations race against inserts by design; they must
				// stay consistent, not quiescent.
				_ = sh.Stats()
				_ = sh.ShardInfos()
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}

	var counted int64
	for _, info := range sh.ShardInfos() {
		counted += info.Inserts
	}
	if counted == 0 {
		t.Fatal("no insert was accepted")
	}
	if got := int64(sh.Journaled()); got != counted {
		t.Errorf("journaled %d records, counted %d accepted inserts", got, counted)
	}
}

// TestConcurrentOpenPredict exercises the async-open window: predictions
// issued while shards are still replaying either succeed or fail with
// ErrReplaying, never race or corrupt.
func TestConcurrentOpenPredict(t *testing.T) {
	const d, p, shards = 3, 3, 4
	cfg := core.Config{Epsilon: 0}
	dir := t.TempDir()
	// Seed the module with enough state that replay is not instant.
	seedRng := rand.New(rand.NewSource(71))
	seed, err := Open(dir, d, p, cfg, Options{Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if _, err := seed.Insert(randomSimplexPoint(seedRng, d), randomOQP(seedRng, d, p)); err != nil {
			t.Fatal(err)
		}
	}
	if err := seed.Close(); err != nil {
		t.Fatal(err)
	}

	sh, err := OpenAsync(dir, d, p, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()
	var wg sync.WaitGroup
	var raced error
	var mu sync.Mutex
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(500 + g)))
			for i := 0; i < 50; i++ {
				_, err := sh.Predict(randomSimplexPoint(rng, d))
				if err != nil && !isReplaying(err) {
					mu.Lock()
					raced = err
					mu.Unlock()
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if raced != nil {
		t.Fatalf("predict during async open: %v", raced)
	}
	if err := sh.WaitReady(); err != nil {
		t.Fatal(err)
	}
	if got := sh.Stats().Points; got == 0 {
		t.Fatal("recovered module is empty")
	}
}

func isReplaying(err error) bool { return errors.Is(err, ErrReplaying) }
