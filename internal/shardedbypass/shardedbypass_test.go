package shardedbypass

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/persist"
	"repro/internal/vec"
)

func randomSimplexPoint(rng *rand.Rand, d int) []float64 {
	w := make([]float64, d+1)
	var sum float64
	for i := range w {
		w[i] = 0.05 + rng.Float64()
		sum += w[i]
	}
	q := make([]float64, d)
	for i := 0; i < d; i++ {
		q[i] = w[i+1] / sum
	}
	return q
}

func randomOQP(rng *rand.Rand, d, p int) core.OQP {
	oqp := core.OQP{Delta: make([]float64, d), Weights: make([]float64, p)}
	for i := range oqp.Delta {
		oqp.Delta[i] = rng.NormFloat64() * 0.1
	}
	for i := range oqp.Weights {
		oqp.Weights[i] = rng.NormFloat64()
	}
	return oqp
}

func samePrediction(t *testing.T, label string, a, b core.OQP) {
	t.Helper()
	if !vec.Equal(a.Delta, b.Delta) || !vec.Equal(a.Weights, b.Weights) {
		t.Fatalf("%s: predictions diverge: %+v vs %+v", label, a, b)
	}
}

// TestSingleShardParity pins the compatibility mode: with S = 1 the
// sharded module must be bitwise-identical to a plain core.DurableBypass
// — same ε accept/reject decisions, same predictions, same on-disk WAL
// bytes, and the same state after a crash-reopen.
func TestSingleShardParity(t *testing.T) {
	const d, p = 4, 4
	cfg := core.Config{Epsilon: 0.01}
	rng := rand.New(rand.NewSource(7))

	plainDir, shardedDir := t.TempDir(), t.TempDir()
	plain, err := core.OpenDurable(plainDir, d, p, cfg, core.DurableOptions{CompactEvery: 16})
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := Open(shardedDir, d, p, cfg, Options{Shards: 1, Durable: core.DurableOptions{CompactEvery: 16}})
	if err != nil {
		t.Fatal(err)
	}

	var qs [][]float64
	for i := 0; i < 50; i++ {
		q := randomSimplexPoint(rng, d)
		oqp := randomOQP(rng, d, p)
		qs = append(qs, q)
		cp, err := plain.Insert(q, oqp)
		if err != nil {
			t.Fatal(err)
		}
		cs, err := sharded.Insert(q, oqp)
		if err != nil {
			t.Fatal(err)
		}
		if cp != cs {
			t.Fatalf("insert %d: ε decision diverged (plain %v, sharded %v)", i, cp, cs)
		}
	}
	if ps, ss := plain.Stats(), sharded.Stats(); ps != ss {
		t.Fatalf("stats diverged: plain %+v, sharded %+v", ps, ss)
	}
	for _, q := range qs {
		po, err := plain.Predict(q)
		if err != nil {
			t.Fatal(err)
		}
		so, err := sharded.Predict(q)
		if err != nil {
			t.Fatal(err)
		}
		samePrediction(t, "live", po, so)
	}

	// The shard's journal must be byte-for-byte the single tree's journal.
	plainWAL, err := os.ReadFile(filepath.Join(plainDir, "tree.fbwl"))
	if err != nil {
		t.Fatal(err)
	}
	shardWAL, err := os.ReadFile(filepath.Join(shardDir(shardedDir, 0), "tree.fbwl"))
	if err != nil {
		t.Fatal(err)
	}
	if string(plainWAL) != string(shardWAL) {
		t.Fatalf("WAL bytes diverge: plain %d bytes, shard-000 %d bytes", len(plainWAL), len(shardWAL))
	}

	// Crash both (no Close) and recover: still identical.
	plain2, err := core.OpenDurable(plainDir, d, p, cfg, core.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer plain2.Close()
	sharded2, err := Open(shardedDir, d, p, cfg, Options{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer sharded2.Close()
	if ps, ss := plain2.Stats(), sharded2.Stats(); ps != ss {
		t.Fatalf("recovered stats diverged: plain %+v, sharded %+v", ps, ss)
	}
	for _, q := range qs {
		po, err := plain2.Predict(q)
		if err != nil {
			t.Fatal(err)
		}
		so, err := sharded2.Predict(q)
		if err != nil {
			t.Fatal(err)
		}
		samePrediction(t, "recovered", po, so)
	}
}

// TestInsertRouting checks that inserts land in the shard the pinned
// partition function names, and only there.
func TestInsertRouting(t *testing.T) {
	const d, p, shards = 4, 4, 4
	rng := rand.New(rand.NewSource(21))
	sh, err := New(d, p, core.Config{Epsilon: 0}, Options{Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	wantPerShard := make([]int64, shards)
	for i := 0; i < 80; i++ {
		q := randomSimplexPoint(rng, d)
		changed, err := sh.Insert(q, randomOQP(rng, d, p))
		if err != nil {
			t.Fatal(err)
		}
		if changed {
			wantPerShard[sh.ShardOf(q)]++
		}
	}
	infos := sh.ShardInfos()
	touched := 0
	for i, info := range infos {
		if info.Inserts != wantPerShard[i] {
			t.Errorf("shard %d: %d inserts, want %d", i, info.Inserts, wantPerShard[i])
		}
		if info.Inserts > 0 {
			touched++
		}
	}
	if touched < 2 {
		t.Fatalf("80 random inserts touched %d shards; want ≥ 2 (degenerate partition)", touched)
	}
	// The aggregate point count is the sum over shards.
	sum := 0
	for _, info := range infos {
		sum += info.Points
	}
	if got := sh.Stats().Points; got != sum {
		t.Errorf("aggregate Points %d != per-shard sum %d", got, sum)
	}
}

// TestInsertBatchMatchesSerial pins InsertBatch to repeated Insert calls
// on a twin: same accepted count, same per-shard state.
func TestInsertBatchMatchesSerial(t *testing.T) {
	const d, p, shards = 3, 3, 4
	rng := rand.New(rand.NewSource(31))
	batch, err := New(d, p, core.Config{Epsilon: 0.01}, Options{Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	serial, err := New(d, p, core.Config{Epsilon: 0.01}, Options{Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	qs := make([][]float64, 40)
	oqps := make([]core.OQP, 40)
	for i := range qs {
		qs[i] = randomSimplexPoint(rng, d)
		oqps[i] = randomOQP(rng, d, p)
	}
	stored, err := batch.InsertBatch(qs, oqps)
	if err != nil {
		t.Fatal(err)
	}
	serialStored := 0
	for i := range qs {
		changed, err := serial.Insert(qs[i], oqps[i])
		if err != nil {
			t.Fatal(err)
		}
		if changed {
			serialStored++
		}
	}
	if stored != serialStored {
		t.Errorf("batch stored %d, serial stored %d", stored, serialStored)
	}
	for _, q := range qs {
		bo, err := batch.Predict(q)
		if err != nil {
			t.Fatal(err)
		}
		so, err := serial.Predict(q)
		if err != nil {
			t.Fatal(err)
		}
		samePrediction(t, "batch-vs-serial", bo, so)
	}
}

// TestManifestPinsLayout: reopening with a different shard count or
// geometry is refused; Shards = 0 adopts the manifest.
func TestManifestPinsLayout(t *testing.T) {
	const d, p = 3, 3
	dir := t.TempDir()
	cfg := core.Config{Epsilon: 0}
	sh, err := Open(dir, d, p, cfg, Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := sh.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, d, p, cfg, Options{Shards: 2}); err == nil {
		t.Fatal("reopening a 4-shard module with Shards=2 must fail")
	}
	if _, err := Open(dir, d+1, p, cfg, Options{Shards: 4}); err == nil {
		t.Fatal("reopening with a different D must fail")
	}
	adopted, err := Open(dir, d, p, cfg, Options{})
	if err != nil {
		t.Fatalf("Shards=0 should adopt the manifest: %v", err)
	}
	defer adopted.Close()
	if adopted.NumShards() != 4 {
		t.Fatalf("adopted %d shards, want 4", adopted.NumShards())
	}
	m, err := persist.LoadManifest(filepath.Join(dir, ManifestFile))
	if err != nil {
		t.Fatal(err)
	}
	if (m != persist.Manifest{Shards: 4, Dim: d, OQPDim: d + p}) {
		t.Fatalf("manifest %+v", m)
	}
}

// TestMissingShardDirRecovers: a crash between the manifest write and the
// creation of shard directories (or a manually deleted shard) recovers
// as an empty shard, not an error.
func TestMissingShardDirRecovers(t *testing.T) {
	const d, p = 3, 3
	dir := t.TempDir()
	cfg := core.Config{Epsilon: 0}
	sh, err := Open(dir, d, p, cfg, Options{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(41))
	for i := 0; i < 30; i++ {
		if _, err := sh.Insert(randomSimplexPoint(rng, d), randomOQP(rng, d, p)); err != nil {
			t.Fatal(err)
		}
	}
	if err := sh.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.RemoveAll(shardDir(dir, 1)); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir, d, p, cfg, Options{})
	if err != nil {
		t.Fatalf("reopen with missing shard dir: %v", err)
	}
	defer re.Close()
	infos := re.ShardInfos()
	if infos[1].Points != 0 {
		t.Errorf("wiped shard recovered %d points, want 0", infos[1].Points)
	}
}

// TestValidation covers the constructor guards.
func TestValidation(t *testing.T) {
	if _, err := New(0, 3, core.Config{}, Options{Shards: 2}); err == nil {
		t.Error("D=0 accepted")
	}
	if _, err := New(3, 3, core.Config{}, Options{Shards: -1}); err == nil {
		t.Error("negative shard count accepted")
	}
	if _, err := New(3, 3, core.Config{}, Options{Shards: MaxShards + 1}); err == nil {
		t.Error("absurd shard count accepted")
	}
	sh, err := New(3, 3, core.Config{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sh.NumShards() != 1 {
		t.Errorf("default shard count %d, want 1", sh.NumShards())
	}
}

// TestReplayingSentinel: operations on a shard that has not finished
// recovery fail with ErrReplaying (errors.Is-able), and WaitReady clears
// the condition.
func TestReplayingSentinel(t *testing.T) {
	const d, p = 3, 3
	sh := &Sharded{d: d, p: p, shards: []*shard{{id: 0, ready: make(chan struct{})}}}
	q := []float64{0.2, 0.3, 0.4}
	if _, err := sh.Predict(q); !errors.Is(err, ErrReplaying) {
		t.Errorf("Predict during replay: %v, want ErrReplaying", err)
	}
	if _, err := sh.Insert(q, core.OQP{Delta: make([]float64, d), Weights: make([]float64, p)}); !errors.Is(err, ErrReplaying) {
		t.Errorf("Insert during replay: %v, want ErrReplaying", err)
	}
	if sh.Ready() {
		t.Error("Ready() true while a shard is replaying")
	}
	infos := sh.ShardInfos()
	if !infos[0].Replaying {
		t.Error("ShardInfos does not mark the replaying shard")
	}
	b, err := core.New(d, p, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	sh.shards[0].byp = b
	close(sh.shards[0].ready)
	if err := sh.WaitReady(); err != nil {
		t.Fatal(err)
	}
	if _, err := sh.Predict(q); err != nil {
		t.Errorf("Predict after ready: %v", err)
	}
}

// TestLegacyDirRefused: a directory holding a pre-sharding single-tree
// module (root-level snapshot/journal, no manifest) must not be
// silently shadowed by fresh empty shards.
func TestLegacyDirRefused(t *testing.T) {
	const d, p = 3, 3
	dir := t.TempDir()
	legacy, err := core.OpenDurable(dir, d, p, core.Config{Epsilon: 0}, core.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(51))
	if _, err := legacy.Insert(randomSimplexPoint(rng, d), randomOQP(rng, d, p)); err != nil {
		t.Fatal(err)
	}
	if err := legacy.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, d, p, core.Config{Epsilon: 0}, Options{Shards: 4}); err == nil {
		t.Fatal("sharding a legacy single-tree directory must be refused")
	}
	// ReadManifest reports it as not-sharded (the serving layer's legacy
	// path uses this to keep serving it).
	if _, ok, err := ReadManifest(dir); err != nil || ok {
		t.Fatalf("ReadManifest on legacy dir: ok=%v err=%v", ok, err)
	}
}

// TestReadManifest covers the sharded-dir detection the serving layer's
// legacy path guards with.
func TestReadManifest(t *testing.T) {
	const d, p = 3, 3
	dir := t.TempDir()
	sh, err := Open(dir, d, p, core.Config{}, Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()
	m, ok, err := ReadManifest(dir)
	if err != nil || !ok {
		t.Fatalf("ReadManifest on sharded dir: ok=%v err=%v", ok, err)
	}
	if m.Shards != 4 || m.Dim != d || m.OQPDim != d+p {
		t.Fatalf("manifest %+v", m)
	}
	if _, ok, err := ReadManifest(t.TempDir()); err != nil || ok {
		t.Fatalf("ReadManifest on empty dir: ok=%v err=%v", ok, err)
	}
}

// TestFailedRecoveryNotReady: a shard whose recovery failed must make
// Ready() false and Err() non-nil — a terminal state, distinct from the
// retryable Replaying window.
func TestFailedRecoveryNotReady(t *testing.T) {
	const d, p = 3, 3
	failed := make(chan struct{})
	close(failed)
	sh := &Sharded{d: d, p: p, shards: []*shard{
		{id: 0, ready: failed, err: errors.New("boom")},
	}}
	if sh.Ready() {
		t.Error("Ready() true with a failed shard")
	}
	if sh.Err() == nil {
		t.Error("Err() nil with a failed shard")
	}
	infos := sh.ShardInfos()
	if infos[0].Replaying {
		t.Error("failed shard reported as Replaying")
	}
	if infos[0].Error == "" {
		t.Error("failed shard's error not surfaced in ShardInfos")
	}
	// A still-replaying shard: Ready false, Err nil (retryable).
	sh2 := &Sharded{d: d, p: p, shards: []*shard{{id: 0, ready: make(chan struct{})}}}
	if sh2.Ready() || sh2.Err() != nil {
		t.Error("replaying shard must be not-ready with nil Err")
	}
}
