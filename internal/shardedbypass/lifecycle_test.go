package shardedbypass

import (
	"encoding/binary"
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/faultfs"
	"repro/internal/simplextree"
)

// stampedShardedVertexSet unions the bitwise Point ++ Value ++ Stamp
// keys of every live shard's tree — the stamped variant of
// shardedVertexSet, so recovery is checked down to the vertex ages the
// aging horizon acts on. Identical corner vertices dedupe in the union.
func stampedShardedVertexSet(s *Sharded) map[string]bool {
	set := make(map[string]bool)
	for i := range s.shards {
		p := s.shards[i]
		select {
		case <-p.ready:
		default:
			continue
		}
		if p.err != nil || p.byp == nil {
			continue
		}
		p.byp.Tree().Walk(func(v *simplextree.Vertex) {
			buf := make([]byte, 0, 8*(len(v.Point)+len(v.Value)+1))
			var b [8]byte
			for _, x := range v.Point {
				binary.LittleEndian.PutUint64(b[:], math.Float64bits(x))
				buf = append(buf, b[:]...)
			}
			for _, x := range v.Value {
				binary.LittleEndian.PutUint64(b[:], math.Float64bits(x))
				buf = append(buf, b[:]...)
			}
			binary.LittleEndian.PutUint64(b[:], v.Stamp())
			buf = append(buf, b[:]...)
			set[string(buf)] = true
		})
	}
	return set
}

func shardedSetSubset(sub, super map[string]bool) bool {
	for k := range sub {
		if !super[k] {
			return false
		}
	}
	return true
}

func shardedSetEqual(a, b map[string]bool) bool {
	return len(a) == len(b) && shardedSetSubset(a, b)
}

// shardedLifecycleOp is one step of the deterministic sharded
// compaction workload: a single routed insert or a module-wide aged
// compaction (every shard rebuilds and swaps).
type shardedLifecycleOp struct {
	compact bool
	q       []float64
	oqp     core.OQP
}

// shardedLifecycleOps builds the fixed schedule: 12 inserts with an
// aged compaction after every 4th. Each shard's logical clock only
// advances on its own inserts, so the horizon-2 cutoff starts
// reclaiming once a shard has seen more than two — with seed 47 the
// healthy run reclaims on the later compactions.
func shardedLifecycleOps() []shardedLifecycleOp {
	const d, p = 3, 2
	rng := rand.New(rand.NewSource(47))
	var ops []shardedLifecycleOp
	for i := 0; i < 12; i++ {
		ops = append(ops, shardedLifecycleOp{q: randomSimplexPoint(rng, d), oqp: randomOQP(rng, d, p)})
		if (i+1)%4 == 0 {
			ops = append(ops, shardedLifecycleOp{compact: true})
		}
	}
	return ops
}

// openShardedCompacting opens the 3-shard lifecycle harness: aging on
// (horizon 2) and journal-depth auto-compaction disabled, so the only
// snapshot swaps in a crash schedule are the workload's explicit
// CompactAged calls.
func openShardedCompacting(dir string, fs *faultfs.FS) (*Sharded, error) {
	durable := core.DurableOptions{CompactEvery: 1 << 30, Sync: true}
	if fs != nil {
		durable.FS = fs
	}
	return Open(dir, 3, 2, core.Config{Epsilon: 0, AgeHorizon: 2}, Options{
		Shards:  3,
		Durable: durable,
	})
}

func applyShardedLifecycleOp(s *Sharded, op shardedLifecycleOp) error {
	if op.compact {
		_, err := s.CompactAged()
		return err
	}
	_, err := s.Insert(op.q, op.oqp)
	return err
}

// TestCrashScheduleShardedCompaction enumerates every crash point along
// manifest-write → shard-open → insert → WAL-append → per-shard
// compaction swap for the 3-shard layout. The healthy run records the
// union census sequence S[0..len(ops)]; a crashed run with k acked ops
// must recover between the floor and ceiling of the in-flight op: an
// insert only adds (S[k] ⊆ got ⊆ S[k+1]); a module-wide compaction only
// removes (S[k+1] ⊆ got ⊆ S[k]) — and because shards swap
// independently, a crash mid-compaction legitimately recovers a partial
// state (some shards post, some pre) that the sandwich still brackets.
// Below the floor is acked-insert loss; above the ceiling is a hybrid
// state no run ever held.
func TestCrashScheduleShardedCompaction(t *testing.T) {
	ops := shardedLifecycleOps()

	// Healthy run: census after every op.
	sh, err := openShardedCompacting(t.TempDir(), nil)
	if err != nil {
		t.Fatalf("healthy open: %v", err)
	}
	seq := []map[string]bool{stampedShardedVertexSet(sh)}
	reclaimed := 0
	for i, op := range ops {
		if err := applyShardedLifecycleOp(sh, op); err != nil {
			t.Fatalf("healthy op %d: %v", i, err)
		}
		seq = append(seq, stampedShardedVertexSet(sh))
	}
	for _, info := range sh.ShardInfos() {
		reclaimed += int(info.Reclaimed)
	}
	if reclaimed == 0 {
		t.Fatal("healthy workload reclaimed nothing; the schedule misses the aging path")
	}
	if err := sh.Close(); err != nil {
		t.Fatalf("healthy close: %v", err)
	}

	// Counting run: measure the schedule length including Close.
	counting := faultfs.New(nil)
	csh, err := openShardedCompacting(t.TempDir(), counting)
	if err != nil {
		t.Fatalf("counting open: %v", err)
	}
	for i, op := range ops {
		if err := applyShardedLifecycleOp(csh, op); err != nil {
			t.Fatalf("counting op %d: %v", i, err)
		}
	}
	if !shardedSetEqual(stampedShardedVertexSet(csh), seq[len(ops)]) {
		t.Fatal("counting run diverged from the healthy census sequence")
	}
	if err := csh.Close(); err != nil {
		t.Fatalf("counting close: %v", err)
	}
	m := counting.Ops()
	if m < 30 {
		t.Fatalf("suspiciously short schedule: %d mutating ops", m)
	}
	t.Logf("sharded compaction crash schedule: %d mutating filesystem operations across 3 shards", m)

	for n := 1; n <= m; n++ {
		dir := t.TempDir()
		fs := faultfs.New(nil)
		fs.SetCrashAt(n)

		acked := 0
		opened := false
		if sh, err := openShardedCompacting(dir, fs); err == nil {
			opened = true
			for _, op := range ops {
				if applyShardedLifecycleOp(sh, op) != nil {
					break // the FS is dead after the crash; later ops all fail
				}
				acked++
			}
			_ = sh.Close()
		}
		if !fs.Crashed() {
			t.Fatalf("crash point %d/%d never fired", n, m)
		}

		recovered, err := openShardedCompacting(dir, nil)
		if err != nil {
			t.Fatalf("crash point %d/%d: recovery failed: %v", n, m, err)
		}
		got := stampedShardedVertexSet(recovered)
		if err := recovered.Close(); err != nil {
			t.Fatalf("crash point %d/%d: closing recovered module: %v", n, m, err)
		}

		var lo, hi map[string]bool
		switch {
		case !opened:
			lo, hi = seq[0], seq[0]
		case acked == len(ops):
			lo, hi = seq[acked], seq[acked]
		case ops[acked].compact:
			lo, hi = seq[acked+1], seq[acked]
		default:
			lo, hi = seq[acked], seq[acked+1]
		}
		if !shardedSetSubset(lo, got) {
			t.Fatalf("crash point %d/%d: acknowledged state lost (acked %d ops, recovered %d vertices, floor %d)",
				n, m, acked, len(got), len(lo))
		}
		if !shardedSetSubset(got, hi) {
			t.Fatalf("crash point %d/%d: hybrid state: recovery holds vertices neither pre- nor post-op census had (acked %d ops)",
				n, m, acked)
		}
	}
}

// TestShardedAgingDisabledParity pins the disabled-horizon no-op at the
// sharded layer: with AgeHorizon 0, CompactAged reclaims nothing on any
// shard and the union stamped census is bitwise unchanged.
func TestShardedAgingDisabledParity(t *testing.T) {
	const d, p = 3, 2
	sh, err := New(d, p, core.Config{Epsilon: 0}, Options{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(51))
	for i := 0; i < 18; i++ {
		if _, err := sh.Insert(randomSimplexPoint(rng, d), randomOQP(rng, d, p)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	before := stampedShardedVertexSet(sh)
	stats, err := sh.CompactAged()
	if err != nil {
		t.Fatalf("CompactAged: %v", err)
	}
	for shard, st := range stats {
		if st.Reclaimed != 0 {
			t.Fatalf("shard %d: disabled horizon reclaimed %d vertices", shard, st.Reclaimed)
		}
	}
	if !shardedSetEqual(before, stampedShardedVertexSet(sh)) {
		t.Fatal("CompactAged changed the stamped census with aging disabled")
	}
}

// TestShardedQuotaCompactRetryMemory pins the memory-mode
// compact-then-retry branch: a single-shard in-memory module at its
// vertex quota compacts under insert pressure and acknowledges the
// retried insert instead of surfacing ErrQuotaExceeded. Same geometry
// as the durable test: 4 corners + quota 8 admits 4 inserts, the 5th
// trips the quota at clock 4, and the horizon-2 cutoff reclaims the
// stamp-1 vertex.
func TestShardedQuotaCompactRetryMemory(t *testing.T) {
	const d, p = 3, 2
	sh, err := New(d, p, core.Config{Epsilon: 0, MaxVertices: 8, AgeHorizon: 2}, Options{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(61))
	for i := 0; i < 5; i++ {
		changed, err := sh.Insert(randomSimplexPoint(rng, d), randomOQP(rng, d, p))
		if err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		if !changed {
			t.Fatalf("insert %d not acknowledged", i)
		}
	}
	infos := sh.ShardInfos()
	if len(infos) != 1 {
		t.Fatalf("shard infos: got %d, want 1", len(infos))
	}
	if infos[0].Compactions != 1 {
		t.Fatalf("compactions after quota retry: got %d, want 1", infos[0].Compactions)
	}
	if infos[0].Reclaimed == 0 {
		t.Fatal("quota-pressure compaction reclaimed nothing")
	}
}
