package shardedbypass

import (
	"encoding/binary"
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/faultfs"
	"repro/internal/simplextree"
)

// shardedVertexSet unions the bitwise (Point ++ Value) vertex keys of
// every live shard's tree. Shards share identical domain-corner
// vertices, which dedupe in the union.
func shardedVertexSet(s *Sharded) map[string]bool {
	set := make(map[string]bool)
	for i := range s.shards {
		p := s.shards[i]
		select {
		case <-p.ready:
		default:
			continue
		}
		if p.err != nil || p.byp == nil {
			continue
		}
		p.byp.Tree().Walk(func(v *simplextree.Vertex) {
			buf := make([]byte, 0, 8*(len(v.Point)+len(v.Value)))
			var b [8]byte
			for _, x := range v.Point {
				binary.LittleEndian.PutUint64(b[:], math.Float64bits(x))
				buf = append(buf, b[:]...)
			}
			for _, x := range v.Value {
				binary.LittleEndian.PutUint64(b[:], math.Float64bits(x))
				buf = append(buf, b[:]...)
			}
			set[string(buf)] = true
		})
	}
	return set
}

// shardedCrashWorkload opens a 3-shard module through fs and drives a
// fixed insert schedule. Returns nil when Open itself died at the crash
// point; insert errors after the crash are expected and swallowed.
func shardedCrashWorkload(t *testing.T, dir string, fs *faultfs.FS) *Sharded {
	t.Helper()
	const d, p = 3, 2
	sh, err := Open(dir, d, p, core.Config{Epsilon: 0}, Options{
		Shards: 3,
		Durable: core.DurableOptions{
			CompactEvery: 3,
			Sync:         true,
			FS:           fs,
		},
	})
	if err != nil {
		return nil
	}
	rng := rand.New(rand.NewSource(43))
	for i := 0; i < 12; i++ {
		q := randomSimplexPoint(rng, d)
		oqp := randomOQP(rng, d, p)
		_, _ = sh.Insert(q, oqp) // post-crash failures are the point
	}
	return sh
}

// TestCrashScheduleSharded enumerates every crash point along
// manifest-write → shard-open → insert → WAL-append → compact for the
// 3-shard layout. Shard recovery runs in parallel goroutines, so which
// operation is "nth" varies run to run — the property is stronger for
// it: from *any* reachable crash state, recovery on the real filesystem
// must reproduce every vertex the crash-time in-memory trees held
// (write-ahead: the journals never lag the trees), plus at most the one
// insert in flight at the crash.
func TestCrashScheduleSharded(t *testing.T) {
	const d, p = 3, 2

	counting := faultfs.New(nil)
	sh := shardedCrashWorkload(t, t.TempDir(), counting)
	if sh == nil {
		t.Fatal("counting run failed to open")
	}
	m := counting.Ops()
	if m < 30 {
		t.Fatalf("suspiciously short schedule: %d mutating ops", m)
	}
	if sh.Journaled() >= 12 {
		t.Fatalf("no shard compacted in the workload (journaled=%d); the schedule misses the compact path", sh.Journaled())
	}
	t.Logf("crash schedule: %d mutating filesystem operations across 3 shards", m)

	for n := 1; n <= m; n++ {
		dir := t.TempDir()
		fs := faultfs.New(nil)
		fs.SetCrashAt(n)
		sh := shardedCrashWorkload(t, dir, fs)
		var want map[string]bool
		if sh != nil {
			want = shardedVertexSet(sh)
		}

		recovered, err := Open(dir, d, p, core.Config{Epsilon: 0}, Options{Shards: 3})
		if err != nil {
			t.Fatalf("crash point %d/%d: recovery failed: %v", n, m, err)
		}
		got := shardedVertexSet(recovered)
		if err := recovered.Close(); err != nil {
			t.Fatalf("crash point %d/%d: closing recovered module: %v", n, m, err)
		}
		for k := range want {
			if !got[k] {
				t.Fatalf("crash point %d/%d: acknowledged vertex lost in recovery (%d recovered, %d expected)", n, m, len(got), len(want))
			}
		}
		if sh != nil && len(got) > len(want)+1 {
			t.Fatalf("crash point %d/%d: recovered %d vertices, crash-time trees had %d (more than the one in-flight insert extra)", n, m, len(got), len(want))
		}
	}
}
