package shardedbypass

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/faultfs"
	"repro/internal/vec"
)

// TestShardedDegradedIsolation: one shard's disk going bad degrades that
// shard alone — its inserts get the typed sentinel, its reads stay
// bitwise-correct, the other shards keep accepting writes, and the
// module-level surfaces (Degraded, ShardInfos) report it.
func TestShardedDegradedIsolation(t *testing.T) {
	const d, p = 3, 2
	rng := rand.New(rand.NewSource(61))
	fs := faultfs.New(nil)

	sh, err := Open(t.TempDir(), d, p, core.Config{Epsilon: 0}, Options{
		Shards:  3,
		Durable: core.DurableOptions{FS: fs},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()
	twin, err := New(d, p, core.Config{Epsilon: 0}, Options{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}

	var qs [][]float64
	for len(qs) < 12 {
		q := randomSimplexPoint(rng, d)
		oqp := randomOQP(rng, d, p)
		if _, err := sh.Insert(q, oqp); err != nil {
			t.Fatal(err)
		}
		if _, err := twin.Insert(q, oqp); err != nil {
			t.Fatal(err)
		}
		qs = append(qs, q)
	}
	if sh.Degraded() != nil {
		t.Fatal("healthy module reports degraded")
	}

	// Shard 1's journal disk goes bad.
	fs.AddRule(faultfs.Rule{Op: faultfs.OpWrite, Path: "shard-001", Nth: 0, Kind: faultfs.Fail})

	var hit, elsewhere int
	for hit == 0 || elsewhere == 0 {
		q := randomSimplexPoint(rng, d)
		oqp := randomOQP(rng, d, p)
		_, err := sh.Insert(q, oqp)
		if sh.ShardOf(q) == 1 {
			if !errors.Is(err, core.ErrDegraded) {
				t.Fatalf("insert to bad shard = %v, want ErrDegraded", err)
			}
			hit++
			continue
		}
		if err != nil {
			t.Fatalf("insert to healthy shard %d: %v", sh.ShardOf(q), err)
		}
		if _, err := twin.Insert(q, oqp); err != nil {
			t.Fatal(err)
		}
		qs = append(qs, q)
		elsewhere++
	}

	if err := sh.Degraded(); !errors.Is(err, core.ErrDegraded) {
		t.Fatalf("module Degraded() = %v, want ErrDegraded", err)
	}
	infos := sh.ShardInfos()
	if infos[1].Degraded == "" {
		t.Fatal("ShardInfos does not mark shard 1 degraded")
	}
	if infos[0].Degraded != "" || infos[2].Degraded != "" {
		t.Fatalf("healthy shards marked degraded: %+v", infos)
	}

	// Every prediction — including those served by the degraded shard —
	// matches the healthy twin bitwise.
	for i, q := range qs {
		got, err := sh.Predict(q)
		if err != nil {
			t.Fatalf("predict %d: %v", i, err)
		}
		want, err := twin.Predict(q)
		if err != nil {
			t.Fatal(err)
		}
		if !vec.Equal(got.Delta, want.Delta) || !vec.Equal(got.Weights, want.Weights) {
			t.Fatalf("prediction %d diverged from twin with shard 1 degraded", i)
		}
	}
}

// TestShardedQuotaDivision: a module-level vertex quota divides
// ceil(total/S) per shard, rejections carry the sentinel, and reads
// stay live once every shard is full.
func TestShardedQuotaDivision(t *testing.T) {
	const d, p = 3, 2
	const perShard = 2 // headroom above the d+1 corners, per shard
	rng := rand.New(rand.NewSource(63))

	total := 3 * (d + 1 + perShard)
	sh, err := New(d, p, core.Config{Epsilon: 0, MaxVertices: total}, Options{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}

	var accepted int
	var kept [][]float64
	for i := 0; i < 60; i++ {
		q := randomSimplexPoint(rng, d)
		_, err := sh.Insert(q, randomOQP(rng, d, p))
		switch {
		case err == nil:
			accepted++
			kept = append(kept, q)
		case errors.Is(err, core.ErrQuotaExceeded):
		default:
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	// Each of the 3 shards can accept exactly perShard inserts; the
	// random stream hits every shard well within 60 tries.
	if accepted != 3*perShard {
		t.Fatalf("accepted %d inserts, want %d (per-shard division)", accepted, 3*perShard)
	}
	for i, q := range kept {
		if _, err := sh.Predict(q); err != nil {
			t.Fatalf("quota-full predict %d: %v", i, err)
		}
	}
}
