package shardedbypass

import (
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/persist"
)

// TestMultiShardKillRecovery is the acceptance test of the sharded
// durability contract: a module abandoned mid-run without Close (the
// process-kill simulation), with acknowledged inserts landing in several
// shards, must recover every shard deterministically — per-shard stats
// and predictions bitwise-identical to an uncrashed in-memory twin that
// received the same insert stream.
func TestMultiShardKillRecovery(t *testing.T) {
	const d, p, shards = 4, 4, 4
	cfg := core.Config{Epsilon: 0.01}
	rng := rand.New(rand.NewSource(97))
	dir := t.TempDir()

	crashed, err := Open(dir, d, p, cfg, Options{Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	twin, err := New(d, p, cfg, Options{Shards: shards})
	if err != nil {
		t.Fatal(err)
	}

	var qs [][]float64
	shardsTouched := map[int]bool{}
	for i := 0; i < 120; i++ {
		q := randomSimplexPoint(rng, d)
		oqp := randomOQP(rng, d, p)
		qs = append(qs, q)
		cc, err := crashed.Insert(q, oqp)
		if err != nil {
			t.Fatal(err)
		}
		ct, err := twin.Insert(q, oqp)
		if err != nil {
			t.Fatal(err)
		}
		if cc != ct {
			t.Fatalf("insert %d: ε decision diverged between durable and twin", i)
		}
		if cc {
			shardsTouched[crashed.ShardOf(q)] = true
		}
	}
	if len(shardsTouched) < 2 {
		t.Fatalf("writes landed in %d shards, need ≥ 2 for this test to mean anything", len(shardsTouched))
	}
	// Crash: no Close, no Compact; the per-shard WAL handles are abandoned
	// mid-stream exactly as a kill -9 would leave them.

	recovered, err := Open(dir, d, p, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer recovered.Close()
	if got, want := recovered.Stats(), twin.Stats(); got != want {
		t.Errorf("recovered aggregate stats %+v, want %+v", got, want)
	}
	gotInfos, wantInfos := recovered.ShardInfos(), twin.ShardInfos()
	for i := range gotInfos {
		if gotInfos[i].Points != wantInfos[i].Points || gotInfos[i].Depth != wantInfos[i].Depth {
			t.Errorf("shard %d recovered shape (%d points, depth %d), twin (%d, %d)",
				i, gotInfos[i].Points, gotInfos[i].Depth, wantInfos[i].Points, wantInfos[i].Depth)
		}
		// Every record the crashed module journaled must have been replayed.
		if gotInfos[i].Journaled != int(wantInfos[i].Inserts) {
			t.Errorf("shard %d replayed %d journal records, twin accepted %d inserts",
				i, gotInfos[i].Journaled, wantInfos[i].Inserts)
		}
	}
	for _, q := range qs {
		ro, err := recovered.Predict(q)
		if err != nil {
			t.Fatal(err)
		}
		to, err := twin.Predict(q)
		if err != nil {
			t.Fatal(err)
		}
		samePrediction(t, "crash-recovery", ro, to)
	}
	// Fresh probes (not inserted points) must also agree: interpolation
	// inside every leaf, not just stored vertices.
	for i := 0; i < 40; i++ {
		q := randomSimplexPoint(rng, d)
		ro, err := recovered.Predict(q)
		if err != nil {
			t.Fatal(err)
		}
		to, err := twin.Predict(q)
		if err != nil {
			t.Fatal(err)
		}
		samePrediction(t, "crash-recovery-probe", ro, to)
	}
}

// TestTornShardCompaction covers a crash inside shard k's compaction,
// between the snapshot rename and the journal truncation: shard k then
// holds a snapshot that already contains its journal's records, and
// recovery must replay them idempotently while every other shard is
// untouched.
func TestTornShardCompaction(t *testing.T) {
	const d, p, shards = 3, 3, 4
	cfg := core.Config{Epsilon: 0.01}
	rng := rand.New(rand.NewSource(101))
	dir := t.TempDir()

	sh, err := Open(dir, d, p, cfg, Options{Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	var qs [][]float64
	for i := 0; i < 80; i++ {
		q := randomSimplexPoint(rng, d)
		if _, err := sh.Insert(q, randomOQP(rng, d, p)); err != nil {
			t.Fatal(err)
		}
		qs = append(qs, q)
	}
	want := make([]core.OQP, len(qs))
	for i, q := range qs {
		if want[i], err = sh.Predict(q); err != nil {
			t.Fatal(err)
		}
	}
	wantStats := sh.Stats()

	// Pick a shard that actually holds points and simulate its torn
	// compaction: write the snapshot, leave the journal as-is.
	infos := sh.ShardInfos()
	torn := -1
	for i, info := range infos {
		if info.Inserts > 0 {
			torn = i
			break
		}
	}
	if torn < 0 {
		t.Fatal("no shard received an insert")
	}
	victim := sh.shards[torn].durable
	if err := persist.SaveFile(filepath.Join(shardDir(dir, torn), "tree.fbsx"), victim.Tree()); err != nil {
		t.Fatal(err)
	}
	// Crash (no Close) and recover.

	recovered, err := Open(dir, d, p, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer recovered.Close()
	if got := recovered.Stats(); got != wantStats {
		t.Errorf("double-replay changed the module: %+v, want %+v", got, wantStats)
	}
	for i, q := range qs {
		got, err := recovered.Predict(q)
		if err != nil {
			t.Fatal(err)
		}
		samePrediction(t, "torn-compaction", got, want[i])
	}
}
