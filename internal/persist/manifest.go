package persist

// Manifest for sharded module directories. A sharded bypass splits its
// durable state across per-shard subdirectories (shard-000/, shard-001/,
// ...), each holding an independent snapshot + WAL pair; the manifest at
// the directory root pins the layout those pieces must be reassembled
// under. It is written once, before any shard directory is created, and
// rewritten never: a crash at any later point — mid-insert, mid-compaction
// of shard k, mid-creation of the shard directories themselves — recovers
// by reading the manifest and opening every named shard (missing shard
// directories are simply empty shards). Opening with a different shard
// count or geometry is refused, so resharding is an explicit migration.
//
// Format (little-endian):
//
//	magic   [4]byte  "FBMN"
//	version uint32   currently 1
//	shards  uint32   partition count S
//	dim     uint32   query-domain dimensionality D
//	oqpDim  uint32   stored-vector dimensionality N
//	crc32   uint32   IEEE checksum of everything before it

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"path/filepath"
)

var manifestMagic = [4]byte{'F', 'B', 'M', 'N'}

// ManifestVersion is the current manifest format version.
const ManifestVersion = 1

const manifestSize = 4 + 4 + 4 + 4 + 4 + 4

// Manifest describes the fixed layout of a sharded module directory.
type Manifest struct {
	Shards int // partition count S
	Dim    int // query-domain dimensionality D
	OQPDim int // stored-vector dimensionality N
}

// SaveManifest writes the manifest to path atomically: a temporary file
// is written, fsynced, renamed into place, and the directory entry made
// durable — a crash leaves either no manifest or a complete one, never a
// torn header.
func SaveManifest(path string, m Manifest) error {
	return SaveManifestFS(nil, path, m)
}

// SaveManifestFS is SaveManifest with every filesystem operation routed
// through fs (nil means OSFS).
func SaveManifestFS(fsys FS, path string, m Manifest) error {
	if m.Shards <= 0 || m.Dim <= 0 || m.OQPDim <= 0 {
		return fmt.Errorf("persist: invalid manifest %+v", m)
	}
	fsys = OrOS(fsys)
	var buf [manifestSize]byte
	copy(buf[0:4], manifestMagic[:])
	binary.LittleEndian.PutUint32(buf[4:8], ManifestVersion)
	binary.LittleEndian.PutUint32(buf[8:12], uint32(m.Shards))
	binary.LittleEndian.PutUint32(buf[12:16], uint32(m.Dim))
	binary.LittleEndian.PutUint32(buf[16:20], uint32(m.OQPDim))
	binary.LittleEndian.PutUint32(buf[20:24], crc32.ChecksumIEEE(buf[:20]))

	tmp := path + ".tmp"
	f, err := CreateFile(fsys, tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf[:]); err != nil {
		_ = f.Close()
		_ = fsys.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		_ = fsys.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		_ = fsys.Remove(tmp)
		return err
	}
	if err := fsys.Rename(tmp, path); err != nil {
		_ = fsys.Remove(tmp)
		return err
	}
	return fsys.SyncDir(filepath.Dir(path))
}

// LoadManifest reads and validates the manifest at path. A missing file
// is reported with an error satisfying errors.Is(err, os.ErrNotExist);
// any malformed content wraps ErrCorrupt.
func LoadManifest(path string) (Manifest, error) {
	return LoadManifestFS(nil, path)
}

// LoadManifestFS is LoadManifest reading through fs (nil means OSFS).
func LoadManifestFS(fsys FS, path string) (Manifest, error) {
	data, err := OrOS(fsys).ReadFile(path)
	if err != nil {
		return Manifest{}, err
	}
	return DecodeManifest(data)
}

// DecodeManifest validates and decodes a manifest image from memory —
// the byte-level parser LoadManifest wraps, exposed so untrusted input
// (and the fuzzer) can exercise it without touching the filesystem. Any
// malformed content returns an error wrapping ErrCorrupt; it never
// panics.
func DecodeManifest(data []byte) (Manifest, error) {
	if len(data) != manifestSize {
		return Manifest{}, fmt.Errorf("%w: manifest is %d bytes, want %d", ErrCorrupt, len(data), manifestSize)
	}
	if [4]byte(data[0:4]) != manifestMagic {
		return Manifest{}, fmt.Errorf("%w: bad manifest magic %q", ErrCorrupt, data[0:4])
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != ManifestVersion {
		return Manifest{}, fmt.Errorf("%w: unsupported manifest version %d", ErrCorrupt, v)
	}
	if want, got := binary.LittleEndian.Uint32(data[20:24]), crc32.ChecksumIEEE(data[:20]); want != got {
		return Manifest{}, fmt.Errorf("%w: manifest checksum mismatch (stored %08x, computed %08x)", ErrCorrupt, want, got)
	}
	m := Manifest{
		Shards: int(binary.LittleEndian.Uint32(data[8:12])),
		Dim:    int(binary.LittleEndian.Uint32(data[12:16])),
		OQPDim: int(binary.LittleEndian.Uint32(data[16:20])),
	}
	if m.Shards <= 0 || m.Shards > maxSaneCount || m.Dim <= 0 || m.Dim > maxSaneCount || m.OQPDim <= 0 || m.OQPDim > maxSaneCount {
		return Manifest{}, fmt.Errorf("%w: implausible manifest %+v", ErrCorrupt, m)
	}
	return m, nil
}

// SyncDir fsyncs a directory, making the creations and renames inside it
// durable. Every layer that needs a directory entry to survive power
// loss (snapshot renames, manifest writes, shard-directory creation)
// shares the one implementation behind OSFS.
func SyncDir(dir string) error {
	return OSFS.SyncDir(dir)
}
