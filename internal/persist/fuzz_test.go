package persist

// Native fuzzers for the binary parsers that consume untrusted on-disk
// state. The contract under fuzzing is the recovery contract: any byte
// stream either parses, or fails with an error wrapping ErrCorrupt —
// never a panic, never an unclassifiable error, never an allocation
// driven by a corrupt length field. Seed corpora live under
// testdata/fuzz/ (one valid image plus truncation/bit-flip variants);
// CI runs each fuzzer briefly (-fuzztime) on top of the committed
// seeds, which always run as regular tests.

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math/rand"
	"os"
	"reflect"
	"testing"

	"repro/internal/geom"
	"repro/internal/simplextree"
	"repro/internal/vec"
)

// walImage builds a valid WAL byte image (header + records) through the
// real writer, for seeding.
func walImage(tb testing.TB, dim, oqpDim, records int) []byte {
	tb.Helper()
	path := tb.(interface{ TempDir() string }).TempDir() + "/seed.fbwl"
	w, err := OpenWAL(path, dim, oqpDim)
	if err != nil {
		tb.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	q := make([]float64, dim)
	v := make([]float64, oqpDim)
	for r := 0; r < records; r++ {
		for i := range q {
			q[i] = rng.NormFloat64()
		}
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		if err := w.Append(q, v, uint64(r+1)); err != nil {
			tb.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		tb.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		tb.Fatal(err)
	}
	return data
}

// walV1Image builds a legacy version-1 image (16-byte header, stampless
// records) so the fuzzer's committed seeds keep covering the
// compatibility path.
func walV1Image(tb testing.TB, dim, oqpDim, records int) []byte {
	tb.Helper()
	rng := rand.New(rand.NewSource(43))
	var qs, vs [][]float64
	for r := 0; r < records; r++ {
		q := make([]float64, dim)
		for i := range q {
			q[i] = rng.NormFloat64()
		}
		v := make([]float64, oqpDim)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		qs = append(qs, q)
		vs = append(vs, v)
	}
	path := tb.(interface{ TempDir() string }).TempDir() + "/seed-v1.fbwl"
	writeV1WAL(tb, path, qs, vs)
	data, err := os.ReadFile(path)
	if err != nil {
		tb.Fatal(err)
	}
	return data
}

// FuzzWALReplay drives ReplayWAL over arbitrary bytes. The first two
// input bytes pick the replay dimensions (so the fuzzer can also
// exercise header/shape mismatches); the rest is the log image.
func FuzzWALReplay(f *testing.F) {
	valid := walImage(f, 3, 6, 4)
	validV1 := walV1Image(f, 3, 6, 4)
	f.Add(append([]byte{2, 5}, valid...))                     // v2: dims match (1+2=3, 1+5=6)
	f.Add(append([]byte{0, 0}, valid...))                     // dim mismatch → ErrCorrupt
	f.Add(append([]byte{2, 5}, valid[:len(valid)-7]...))      // torn tail record → tolerated
	f.Add(append([]byte{2, 5}, valid[:walHeaderSizeV2-3]...)) // torn v2 epoch field → ErrCorrupt
	f.Add(append([]byte{2, 5}, validV1...))                   // legacy v1: replays with stamp 0
	f.Add(append([]byte{2, 5}, validV1[:len(validV1)-5]...))  // v1 torn tail → tolerated
	f.Add([]byte{2, 5})                                       // empty log → short header
	f.Add(append([]byte{2, 5}, []byte("FBWLgarbage....")...)) // bad header fields
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		dim := 1 + int(data[0])%8
		oqpDim := 1 + int(data[1])%8
		img := data[2:]

		replayed := 0
		n, err := ReplayWAL(bytes.NewReader(img), dim, oqpDim, func(q, value []float64, stamp uint64) error {
			if len(q) != dim || len(value) != oqpDim {
				t.Fatalf("replay handed %d/%d-dim record, want %d/%d", len(q), len(value), dim, oqpDim)
			}
			replayed++
			return nil
		})
		if err != nil && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("ReplayWAL returned a non-ErrCorrupt error: %v", err)
		}
		if n != replayed {
			t.Fatalf("ReplayWAL reported %d records, callback saw %d", n, replayed)
		}
		// A replayed record must have fit inside the input. When records
		// replayed without error the header parsed, so its version field is
		// trustworthy for the size arithmetic.
		if err == nil && n > 0 {
			version := binary.LittleEndian.Uint32(img[4:8])
			max := (len(img) - walHeaderSize(version)) / walRecordSize(version, dim, oqpDim)
			if n > max {
				t.Fatalf("replayed %d version-%d records from %d bytes (max %d)", n, version, len(img), max)
			}
		}
		// Determinism: a second replay of the same bytes sees the same
		// outcome.
		n2, err2 := ReplayWAL(bytes.NewReader(img), dim, oqpDim, func(q, value []float64, stamp uint64) error { return nil })
		if n2 != n || (err == nil) != (err2 == nil) {
			t.Fatalf("replay not deterministic: (%d, %v) then (%d, %v)", n, err, n2, err2)
		}
	})
}

// fbsxImage builds a valid version-2 snapshot image (with live clock,
// stamps and a nonzero epoch) through the real writer, for seeding.
func fbsxImage(tb testing.TB, d, n, inserts int, epoch uint64) []byte {
	tb.Helper()
	tr, err := simplextree.New(geom.StandardSimplex(d), vec.Zeros(n), simplextree.Options{Epsilon: 0.001})
	if err != nil {
		tb.Fatal(err)
	}
	rng := rand.New(rand.NewSource(44))
	for i := 0; i < inserts; i++ {
		w := make([]float64, d+1)
		var sum float64
		for j := range w {
			w[j] = 0.05 + rng.Float64()
			sum += w[j]
		}
		q := make([]float64, d)
		for j := 0; j < d; j++ {
			q[j] = w[j+1] / sum
		}
		v := make([]float64, n)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		if _, err := tr.Insert(q, v); err != nil {
			tb.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := SaveEpoch(&buf, tr, epoch); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// fbsxV1Image rewrites a version-2 snapshot image into the legacy
// version-1 layout (no epoch/clock header fields, stampless vertices)
// so the committed seeds keep covering the compatibility path.
func fbsxV1Image(tb testing.TB, v2 []byte) []byte {
	tb.Helper()
	dim := int(binary.LittleEndian.Uint32(v2[8:12]))
	oqp := int(binary.LittleEndian.Uint32(v2[12:16]))
	nVerts := int(binary.LittleEndian.Uint32(v2[52:56]))
	vsz := 8*dim + 8*oqp + 8 // v2 vertex: point, value, stamp
	vtab := 56
	nodes := vtab + nVerts*vsz
	out := make([]byte, 0, len(v2))
	out = append(out, v2[0:4]...) // magic
	out = binary.LittleEndian.AppendUint32(out, 1)
	out = append(out, v2[8:36]...)  // dim..points (epoch+clock dropped)
	out = append(out, v2[52:56]...) // nVerts
	for i := 0; i < nVerts; i++ {
		off := vtab + i*vsz
		out = append(out, v2[off:off+vsz-8]...) // drop the stamp
	}
	out = append(out, v2[nodes:len(v2)-4]...) // node section
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(out))
	return out
}

// FuzzFBSX drives the snapshot loader over arbitrary bytes. The
// recovery contract: parse or ErrCorrupt, never a panic, never an
// unclassifiable error. An accepted image must additionally round-trip:
// re-saving the loaded tree and re-loading it reproduces the snapshot
// (vertices, stamps, clock, epoch) exactly — the lifecycle fields the
// aging horizon acts on survive the trip bitwise.
func FuzzFBSX(f *testing.F) {
	valid := fbsxImage(f, 3, 6, 4, 7)
	validV1 := fbsxV1Image(f, valid)
	f.Add(valid)
	f.Add(validV1)
	f.Add(valid[:36])                    // torn v2 lifecycle header
	f.Add(valid[:52])                    // torn clock field
	f.Add(valid[:len(valid)-3])          // torn checksum
	f.Add(validV1[:len(validV1)-5])      // torn v1 tail
	f.Add([]byte("FBSXgarbage........")) // bad header fields
	flipped := append([]byte(nil), valid...)
	flipped[56+8*3+8*6] ^= 0xff // bit-flip in vertex 0's stamp → checksum mismatch
	f.Add(flipped)
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, epoch, err := LoadWithEpoch(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("LoadWithEpoch returned a non-ErrCorrupt error: %v", err)
			}
			return
		}
		var buf bytes.Buffer
		if err := SaveEpoch(&buf, tr, epoch); err != nil {
			t.Fatalf("re-saving an accepted snapshot failed: %v", err)
		}
		tr2, epoch2, err := LoadWithEpoch(&buf)
		if err != nil {
			t.Fatalf("re-loading a re-saved snapshot failed: %v", err)
		}
		if epoch2 != epoch {
			t.Fatalf("epoch changed across round-trip: %d then %d", epoch, epoch2)
		}
		if !reflect.DeepEqual(tr.Snapshot(), tr2.Snapshot()) {
			t.Fatal("snapshot not stable across save/load round-trip")
		}
	})
}

// FuzzManifest drives DecodeManifest over arbitrary bytes.
func FuzzManifest(f *testing.F) {
	var valid bytes.Buffer
	{
		dir := f.TempDir()
		if err := SaveManifest(dir+"/MANIFEST", Manifest{Shards: 4, Dim: 31, OQPDim: 62}); err != nil {
			f.Fatal(err)
		}
		data, err := os.ReadFile(dir + "/MANIFEST")
		if err != nil {
			f.Fatal(err)
		}
		valid.Write(data)
	}
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:12])                       // truncated
	f.Add(append(valid.Bytes(), 0))                 // trailing byte
	f.Add([]byte("FBMNxxxxxxxxxxxxxxxxxxxx"))       // right size, bad fields
	f.Add(bytes.Repeat([]byte{0xff}, manifestSize)) // right size, junk
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeManifest(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("DecodeManifest returned a non-ErrCorrupt error: %v", err)
			}
			return
		}
		if m.Shards <= 0 || m.Dim <= 0 || m.OQPDim <= 0 ||
			m.Shards > maxSaneCount || m.Dim > maxSaneCount || m.OQPDim > maxSaneCount {
			t.Fatalf("DecodeManifest accepted implausible manifest %+v", m)
		}
	})
}
