package persist

// Native fuzzers for the binary parsers that consume untrusted on-disk
// state. The contract under fuzzing is the recovery contract: any byte
// stream either parses, or fails with an error wrapping ErrCorrupt —
// never a panic, never an unclassifiable error, never an allocation
// driven by a corrupt length field. Seed corpora live under
// testdata/fuzz/ (one valid image plus truncation/bit-flip variants);
// CI runs each fuzzer briefly (-fuzztime) on top of the committed
// seeds, which always run as regular tests.

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"testing"
)

// walImage builds a valid WAL byte image (header + records) through the
// real writer, for seeding.
func walImage(tb testing.TB, dim, oqpDim, records int) []byte {
	tb.Helper()
	path := tb.(interface{ TempDir() string }).TempDir() + "/seed.fbwl"
	w, err := OpenWAL(path, dim, oqpDim)
	if err != nil {
		tb.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	q := make([]float64, dim)
	v := make([]float64, oqpDim)
	for r := 0; r < records; r++ {
		for i := range q {
			q[i] = rng.NormFloat64()
		}
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		if err := w.Append(q, v); err != nil {
			tb.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		tb.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		tb.Fatal(err)
	}
	return data
}

// FuzzWALReplay drives ReplayWAL over arbitrary bytes. The first two
// input bytes pick the replay dimensions (so the fuzzer can also
// exercise header/shape mismatches); the rest is the log image.
func FuzzWALReplay(f *testing.F) {
	valid := walImage(f, 3, 6, 4)
	f.Add(append([]byte{2, 5}, valid...))                     // dims match (1+2=3, 1+5=6)
	f.Add(append([]byte{0, 0}, valid...))                     // dim mismatch → ErrCorrupt
	f.Add(append([]byte{2, 5}, valid[:len(valid)-7]...))      // torn tail record → tolerated
	f.Add([]byte{2, 5})                                       // empty log → short header
	f.Add(append([]byte{2, 5}, []byte("FBWLgarbage....")...)) // bad header fields
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		dim := 1 + int(data[0])%8
		oqpDim := 1 + int(data[1])%8
		img := data[2:]
		recSize := 8*(dim+oqpDim) + 4

		replayed := 0
		n, err := ReplayWAL(bytes.NewReader(img), dim, oqpDim, func(q, value []float64) error {
			if len(q) != dim || len(value) != oqpDim {
				t.Fatalf("replay handed %d/%d-dim record, want %d/%d", len(q), len(value), dim, oqpDim)
			}
			replayed++
			return nil
		})
		if err != nil && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("ReplayWAL returned a non-ErrCorrupt error: %v", err)
		}
		if n != replayed {
			t.Fatalf("ReplayWAL reported %d records, callback saw %d", n, replayed)
		}
		// A replayed record must have fit inside the input.
		if max := (len(img) - 16) / recSize; err == nil && len(img) >= 16 && n > max {
			t.Fatalf("replayed %d records from %d bytes (max %d)", n, len(img), max)
		}
		// Determinism: a second replay of the same bytes sees the same
		// outcome.
		n2, err2 := ReplayWAL(bytes.NewReader(img), dim, oqpDim, func(q, value []float64) error { return nil })
		if n2 != n || (err == nil) != (err2 == nil) {
			t.Fatalf("replay not deterministic: (%d, %v) then (%d, %v)", n, err, n2, err2)
		}
	})
}

// FuzzManifest drives DecodeManifest over arbitrary bytes.
func FuzzManifest(f *testing.F) {
	var valid bytes.Buffer
	{
		dir := f.TempDir()
		if err := SaveManifest(dir+"/MANIFEST", Manifest{Shards: 4, Dim: 31, OQPDim: 62}); err != nil {
			f.Fatal(err)
		}
		data, err := os.ReadFile(dir + "/MANIFEST")
		if err != nil {
			f.Fatal(err)
		}
		valid.Write(data)
	}
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:12])                       // truncated
	f.Add(append(valid.Bytes(), 0))                 // trailing byte
	f.Add([]byte("FBMNxxxxxxxxxxxxxxxxxxxx"))       // right size, bad fields
	f.Add(bytes.Repeat([]byte{0xff}, manifestSize)) // right size, junk
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeManifest(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("DecodeManifest returned a non-ErrCorrupt error: %v", err)
			}
			return
		}
		if m.Shards <= 0 || m.Dim <= 0 || m.OQPDim <= 0 ||
			m.Shards > maxSaneCount || m.Dim > maxSaneCount || m.OQPDim > maxSaneCount {
			t.Fatalf("DecodeManifest accepted implausible manifest %+v", m)
		}
	})
}
