package persist

// Write-ahead log for Simplex Tree inserts. The snapshot format of Save/
// Load captures a whole tree; the WAL complements it with incremental
// durability: every accepted insert appends one fixed-size record, and
// recovery is snapshot + replay. Compaction rewrites the snapshot and
// truncates the log (core.DurableBypass wires the two together).
//
// Format (little-endian):
//
//	header:
//	  magic   [4]byte  "FBWL"
//	  version uint32   1 or 2
//	  dim     uint32   query-domain dimensionality D
//	  oqpDim  uint32   stored-vector dimensionality N
//	  epoch   uint64   (version 2 only) compaction epoch of the module
//	record (fixed size per version, repeated):
//	  q       [D]float64
//	  value   [N]float64
//	  stamp   uint64   (version 2 only) logical insert timestamp
//	  crc32   uint32   IEEE checksum of the record bytes before it
//
// Version 2 is the lifecycle-plane format: the header's epoch pairs the
// log with the snapshot it extends (a log whose epoch trails the
// snapshot's is a stale pre-compaction journal and is discarded on
// recovery), and each record carries the logical timestamp its vertex
// was stamped with, so replay reconstructs ages bitwise. Version 1 logs
// (no epoch, no stamps) remain fully replayable — records surface with
// stamp 0 and the log keeps appending in its own format until the next
// Reset rewrites it as version 2.
//
// Records carry the same CRC-32/IEEE checksum the snapshot format uses,
// but per record, so a torn final write (a crash mid-append) is
// detectable and cheap to drop: replay and open both tolerate a
// truncated tail record, while a size-complete record with a checksum
// mismatch is reported as ErrCorrupt.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"time"

	"repro/internal/obsv"
)

var walMagic = [4]byte{'F', 'B', 'W', 'L'}

// WALVersion is the current log format version, written by every fresh
// header. Version 1 logs are still read (see the format comment).
const WALVersion = 2

const (
	walHeaderSizeV1 = 4 + 4 + 4 + 4
	walHeaderSizeV2 = walHeaderSizeV1 + 8
)

// errTornWALHeader marks a file too short to hold its own header — the
// signature of a crash during header creation or mid-Reset. It wraps
// ErrCorrupt for readers; the open path rewrites the header instead
// (a file that short holds no records, so nothing is lost).
var errTornWALHeader = fmt.Errorf("%w: torn WAL header", ErrCorrupt)

// WAL is an append-only insert journal for one Simplex Tree. Appends are
// single unbuffered writes, so every record acknowledged by Append has
// reached the kernel when Append returns (call Sync to force it to
// stable storage). A WAL is not safe for concurrent use by itself; the
// tree's exclusive write lock already serializes the observer appends.
type WAL struct {
	fs      FS
	f       File
	path    string
	dim     int
	oqpDim  int
	version uint32 // on-disk format of this log (v1 until a Reset upgrades it)
	epoch   uint64 // header epoch (0 for v1 logs)
	buf     []byte // reused record encoding buffer
	records int    // valid records on disk
	off     int64  // offset just past the last valid record
	sync    bool   // fsync after every append
	broken  error  // set when a failed append could not be rolled back

	appendH *obsv.Histogram // optional: whole-append latency
	fsyncH  *obsv.Histogram // optional: fsync latency (per-append and explicit)
}

func walHeaderSize(version uint32) int {
	if version >= 2 {
		return walHeaderSizeV2
	}
	return walHeaderSizeV1
}

func walRecordSize(version uint32, dim, oqpDim int) int {
	size := 8*(dim+oqpDim) + 4
	if version >= 2 {
		size += 8 // stamp
	}
	return size
}

// OpenWAL opens (or creates) the write-ahead log at path for trees of
// query dimension dim and OQP dimension oqpDim. An existing log is
// validated record by record: a truncated tail record — the signature of
// a crash mid-append — is discarded by truncating the file, while a
// size-complete record with a bad checksum returns ErrCorrupt. The
// returned WAL is positioned for appending.
func OpenWAL(path string, dim, oqpDim int) (*WAL, error) {
	return OpenWALFS(nil, path, dim, oqpDim)
}

// OpenWALFS is OpenWAL with every filesystem operation routed through fs
// (nil means OSFS) — the fault-injection seam for the journal.
func OpenWALFS(fsys FS, path string, dim, oqpDim int) (*WAL, error) {
	if dim <= 0 || oqpDim <= 0 {
		return nil, fmt.Errorf("persist: invalid WAL dimensions D=%d N=%d", dim, oqpDim)
	}
	fsys = OrOS(fsys)
	f, err := fsys.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	w := &WAL{
		fs:      fsys,
		f:       f,
		path:    path,
		dim:     dim,
		oqpDim:  oqpDim,
		version: WALVersion,
	}
	info, err := f.Stat()
	if err != nil {
		_ = f.Close()
		return nil, err
	}
	rewriteFresh := func() (*WAL, error) {
		if err := f.Truncate(0); err != nil {
			_ = f.Close()
			return nil, err
		}
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			_ = f.Close()
			return nil, err
		}
		if err := w.writeHeader(); err != nil {
			_ = f.Close()
			return nil, err
		}
		w.off = int64(walHeaderSize(w.version))
		w.buf = make([]byte, walRecordSize(w.version, dim, oqpDim))
		return w, nil
	}
	if info.Size() < walHeaderSizeV1 {
		// Empty file, or a header torn by a crash during creation (or
		// during Reset, between the truncate and the header rewrite). A
		// file this short cannot hold records, so nothing is lost:
		// rewrite the header instead of reporting corruption.
		return rewriteFresh()
	}
	validEnd, records, version, epoch, err := scanWAL(f, dim, oqpDim)
	if errors.Is(err, errTornWALHeader) {
		// A version-2 header torn after its fixed prefix: still too short
		// for records, same recovery.
		return rewriteFresh()
	}
	if err != nil {
		_ = f.Close()
		return nil, err
	}
	if validEnd < info.Size() {
		// Torn tail record: drop it so the next append starts on a
		// record boundary.
		if err := f.Truncate(validEnd); err != nil {
			_ = f.Close()
			return nil, err
		}
	}
	if _, err := f.Seek(validEnd, io.SeekStart); err != nil {
		_ = f.Close()
		return nil, err
	}
	w.version = version
	w.epoch = epoch
	w.buf = make([]byte, walRecordSize(version, dim, oqpDim))
	w.records = records
	w.off = validEnd
	return w, nil
}

// SetSyncOnAppend makes every Append fsync before acknowledging, giving
// power-loss durability per record instead of process-kill durability.
func (w *WAL) SetSyncOnAppend(sync bool) { w.sync = sync }

// SetMetrics attaches optional latency histograms: appendH observes the
// full Append (encode + write + any per-append fsync), fsyncH observes
// every fsync (per-append and explicit Sync). Either may be nil; with
// both nil the hot path takes no clock readings at all. Not safe to
// call concurrently with Append — wire metrics up before serving.
func (w *WAL) SetMetrics(appendH, fsyncH *obsv.Histogram) {
	w.appendH = appendH
	w.fsyncH = fsyncH
}

// Epoch reports the compaction epoch stamped in the log header (0 for
// version-1 logs, which predate epochs).
func (w *WAL) Epoch() uint64 { return w.epoch }

// Version reports the on-disk format version of this log.
func (w *WAL) Version() uint32 { return w.version }

// writeHeader writes the log header at the current (zero) offset.
func (w *WAL) writeHeader() error {
	hdr := make([]byte, walHeaderSize(w.version))
	copy(hdr[0:4], walMagic[:])
	binary.LittleEndian.PutUint32(hdr[4:8], w.version)
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(w.dim))
	binary.LittleEndian.PutUint32(hdr[12:16], uint32(w.oqpDim))
	if w.version >= 2 {
		binary.LittleEndian.PutUint64(hdr[16:24], w.epoch)
	}
	_, err := w.f.Write(hdr)
	return err
}

// scanWAL validates the header and every record of r, returning the file
// offset just past the last valid record, the record count, and the
// header's version and epoch. A truncated tail is tolerated (the
// returned offset excludes it); a complete record with a checksum
// mismatch is ErrCorrupt.
func scanWAL(f File, dim, oqpDim int) (validEnd int64, records int, version uint32, epoch uint64, err error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return 0, 0, 0, 0, err
	}
	br := bufio.NewReader(f)
	version, epoch, err = readWALHeader(br, dim, oqpDim)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	recSize := walRecordSize(version, dim, oqpDim)
	buf := make([]byte, recSize)
	offset := int64(walHeaderSize(version))
	for {
		_, err := io.ReadFull(br, buf)
		if err == io.EOF {
			return offset, records, version, epoch, nil // clean end on a record boundary
		}
		if err == io.ErrUnexpectedEOF {
			return offset, records, version, epoch, nil // torn tail: tolerate, drop
		}
		if err != nil {
			return 0, 0, 0, 0, err
		}
		if err := checkWALRecord(buf); err != nil {
			return 0, 0, 0, 0, err
		}
		offset += int64(recSize)
		records++
	}
}

// readWALHeader consumes and validates the header from r, returning the
// format version and (for version 2) the epoch.
func readWALHeader(r io.Reader, dim, oqpDim int) (version uint32, epoch uint64, err error) {
	var hdr [walHeaderSizeV1]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, fmt.Errorf("%w: reading WAL header: %w", ErrCorrupt, err)
	}
	if [4]byte(hdr[0:4]) != walMagic {
		return 0, 0, fmt.Errorf("%w: bad WAL magic %q", ErrCorrupt, hdr[0:4])
	}
	version = binary.LittleEndian.Uint32(hdr[4:8])
	if version < 1 || version > WALVersion {
		return 0, 0, fmt.Errorf("%w: unsupported WAL version %d", ErrCorrupt, version)
	}
	gotDim := binary.LittleEndian.Uint32(hdr[8:12])
	gotOQP := binary.LittleEndian.Uint32(hdr[12:16])
	if gotDim != uint32(dim) || gotOQP != uint32(oqpDim) {
		return 0, 0, fmt.Errorf("%w: WAL is for D=%d N=%d, want D=%d N=%d", ErrCorrupt, gotDim, gotOQP, dim, oqpDim)
	}
	if version >= 2 {
		var ep [8]byte
		if _, err := io.ReadFull(r, ep[:]); err != nil {
			return 0, 0, fmt.Errorf("reading WAL epoch: %w", errTornWALHeader)
		}
		epoch = binary.LittleEndian.Uint64(ep[:])
	}
	return version, epoch, nil
}

// checkWALRecord verifies the trailing checksum of one complete record.
func checkWALRecord(rec []byte) error {
	payload := rec[:len(rec)-4]
	want := binary.LittleEndian.Uint32(rec[len(rec)-4:])
	if got := crc32.ChecksumIEEE(payload); got != want {
		return fmt.Errorf("%w: WAL record checksum mismatch (stored %08x, computed %08x)", ErrCorrupt, want, got)
	}
	return nil
}

// Append journals one accepted insert with its logical timestamp. The
// write is a single unbuffered write call, so a process kill after
// Append returns cannot lose the record (power-loss durability
// additionally needs Sync, or SetSyncOnAppend). Append is
// all-or-nothing: a partial write or a failed per-append fsync is rolled
// back by truncating to the last record boundary, so the log never
// advances misaligned; if even the rollback fails, the WAL refuses
// further appends instead of corrupting the records already
// acknowledged. Appending to a version-1 log keeps that log's record
// format (the stamp is not persisted until a Reset upgrades the file).
func (w *WAL) Append(q, value []float64, stamp uint64) error {
	if w.broken != nil {
		return w.broken
	}
	if len(q) != w.dim {
		return fmt.Errorf("persist: WAL append point has dimension %d, want %d", len(q), w.dim)
	}
	if len(value) != w.oqpDim {
		return fmt.Errorf("persist: WAL append value has dimension %d, want %d", len(value), w.oqpDim)
	}
	var t0 time.Time
	if w.appendH != nil {
		t0 = time.Now()
	}
	off := 0
	for _, x := range q {
		binary.LittleEndian.PutUint64(w.buf[off:], math.Float64bits(x))
		off += 8
	}
	for _, x := range value {
		binary.LittleEndian.PutUint64(w.buf[off:], math.Float64bits(x))
		off += 8
	}
	if w.version >= 2 {
		binary.LittleEndian.PutUint64(w.buf[off:], stamp)
		off += 8
	}
	binary.LittleEndian.PutUint32(w.buf[off:], crc32.ChecksumIEEE(w.buf[:off]))
	if _, err := w.f.Write(w.buf); err != nil {
		return w.rollback(err)
	}
	if w.sync {
		if err := w.syncTimed(); err != nil {
			return w.rollback(err)
		}
	}
	w.off += int64(len(w.buf))
	w.records++
	if w.appendH != nil {
		w.appendH.ObserveSince(t0)
	}
	return nil
}

// syncTimed fsyncs the log, observing the latency when a metrics
// histogram is attached.
func (w *WAL) syncTimed() error {
	if w.fsyncH == nil {
		return w.f.Sync()
	}
	t0 := time.Now()
	err := w.f.Sync()
	w.fsyncH.ObserveSince(t0)
	return err
}

// rollback restores the log to the last record boundary after a failed
// append. When the truncate itself fails the WAL is marked broken: the
// on-disk tail is in an unknown state, and appending past it would make
// the whole log unreadable (a size-complete record spanning torn bytes
// fails its checksum and turns every later record into ErrCorrupt).
func (w *WAL) rollback(cause error) error {
	if terr := w.f.Truncate(w.off); terr != nil {
		w.broken = fmt.Errorf("persist: WAL append failed (%w) and rollback failed (%w); log closed to appends", cause, terr)
		return w.broken
	}
	if _, serr := w.f.Seek(w.off, io.SeekStart); serr != nil {
		w.broken = fmt.Errorf("persist: WAL append failed (%w) and reposition failed (%w); log closed to appends", cause, serr)
		return w.broken
	}
	return cause
}

// Records reports the number of valid records in the log (found at open
// plus appended since).
func (w *WAL) Records() int { return w.records }

// Size reports the log's on-disk size in bytes (header plus every valid
// record) — the recovery debt a compaction would clear.
func (w *WAL) Size() int64 { return w.off }

// Sync flushes the log to stable storage.
func (w *WAL) Sync() error { return w.syncTimed() }

// Reset truncates the log back to an empty header carrying the given
// compaction epoch — the log-compaction step after the tree state has
// been captured in a snapshot stamped with the same epoch. A Reset
// always writes the current format version, upgrading a version-1 log
// in place (it holds no records afterwards, so no stamps are invented).
// A successful Reset also clears the broken state left by an
// unrecoverable append failure, since the rewritten log is aligned
// again.
func (w *WAL) Reset(epoch uint64) error {
	if err := w.f.Truncate(0); err != nil {
		return err
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	prevVersion, prevEpoch := w.version, w.epoch
	w.version = WALVersion
	w.epoch = epoch
	if err := w.writeHeader(); err != nil {
		w.version, w.epoch = prevVersion, prevEpoch
		return err
	}
	w.buf = make([]byte, walRecordSize(w.version, w.dim, w.oqpDim))
	w.records = 0
	w.off = int64(walHeaderSize(w.version))
	w.broken = nil
	return w.f.Sync()
}

// Close closes the underlying file.
func (w *WAL) Close() error { return w.f.Close() }

// Replay reads the log from the beginning through a separate read handle
// and invokes fn for every valid record in order, returning the number
// replayed. A truncated tail record is silently dropped; a checksum
// mismatch on a complete record is ErrCorrupt. Version-1 records carry
// stamp 0. The q and value slices are reused across calls; fn must not
// retain them.
func (w *WAL) Replay(fn func(q, value []float64, stamp uint64) error) (int, error) {
	f, err := OpenRead(w.fs, w.path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	return ReplayWAL(f, w.dim, w.oqpDim, fn)
}

// ReplayWAL replays every valid record of the log read from r (see
// WAL.Replay for the tolerance semantics).
func ReplayWAL(r io.Reader, dim, oqpDim int, fn func(q, value []float64, stamp uint64) error) (int, error) {
	if dim <= 0 || oqpDim <= 0 {
		return 0, fmt.Errorf("persist: invalid WAL dimensions D=%d N=%d", dim, oqpDim)
	}
	br := bufio.NewReader(r)
	version, _, err := readWALHeader(br, dim, oqpDim)
	if err != nil {
		return 0, err
	}
	recSize := walRecordSize(version, dim, oqpDim)
	buf := make([]byte, recSize)
	q := make([]float64, dim)
	value := make([]float64, oqpDim)
	replayed := 0
	for {
		_, err := io.ReadFull(br, buf)
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return replayed, nil // clean end, or tolerated torn tail
		}
		if err != nil {
			return replayed, err
		}
		if err := checkWALRecord(buf); err != nil {
			return replayed, err
		}
		for i := range q {
			q[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
		}
		base := 8 * dim
		for i := range value {
			value[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[base+8*i:]))
		}
		var stamp uint64
		if version >= 2 {
			stamp = binary.LittleEndian.Uint64(buf[base+8*oqpDim:])
		}
		if err := fn(q, value, stamp); err != nil {
			return replayed, err
		}
		replayed++
	}
}
