package persist

// The filesystem seam. Every durability-bearing writer in the tree — the
// write-ahead log, the snapshot writer, the sharded-module manifest and
// the FBMX collection writer — performs its I/O through the FS interface
// instead of calling the os package directly. Production code passes OSFS
// (or nil, which means OSFS); the fault-injection plane
// (internal/faultfs) substitutes a scripted implementation so tests can
// fail the Nth fsync, tear a write in half, return ENOSPC, or simulate a
// kill at any durability-relevant operation and then assert that
// recovery from the resulting on-disk state loses nothing that was
// acknowledged.
//
// The interface is deliberately the subset of the os package those
// writers actually use. *os.File satisfies File directly, so OSFS is a
// trivial forwarding shim.

import (
	"io"
	"os"
)

// File is the open-file surface the persistence layer needs: sequential
// and positioned writes, reads for replay, truncation for WAL rollback,
// and fsync. *os.File implements it.
type File interface {
	io.Reader
	io.Writer
	io.WriterAt
	io.Seeker
	io.Closer
	Sync() error
	Truncate(size int64) error
	Stat() (os.FileInfo, error)
}

// FS is the filesystem surface the persistence layer needs. All paths
// are interpreted exactly as the os package would.
type FS interface {
	// OpenFile is os.OpenFile.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// Rename is os.Rename — the commit point of every atomic write.
	Rename(oldpath, newpath string) error
	// Remove is os.Remove (temp-file cleanup after a failed write).
	Remove(name string) error
	// MkdirAll is os.MkdirAll.
	MkdirAll(path string, perm os.FileMode) error
	// Stat is os.Stat.
	Stat(name string) (os.FileInfo, error)
	// ReadFile is os.ReadFile.
	ReadFile(name string) ([]byte, error)
	// SyncDir fsyncs a directory, making creations and renames inside it
	// durable.
	SyncDir(dir string) error
}

// OSFS is the production FS: direct passthrough to the os package.
var OSFS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                     { return os.Remove(name) }
func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) Stat(name string) (os.FileInfo, error)        { return os.Stat(name) }
func (osFS) ReadFile(name string) ([]byte, error)         { return os.ReadFile(name) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		_ = d.Close()
		return err
	}
	return d.Close()
}

// OrOS returns fs, or OSFS when fs is nil — the default-filling idiom of
// every entry point that takes an optional FS.
func OrOS(fs FS) FS {
	if fs == nil {
		return OSFS
	}
	return fs
}

// CreateFile opens name for writing through fs, truncating any existing
// file — the os.Create idiom.
func CreateFile(fs FS, name string) (File, error) {
	return OrOS(fs).OpenFile(name, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
}

// OpenRead opens name read-only through fs — the os.Open idiom.
func OpenRead(fs FS, name string) (File, error) {
	return OrOS(fs).OpenFile(name, os.O_RDONLY, 0)
}
