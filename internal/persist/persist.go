// Package persist stores Simplex Trees on disk in a versioned,
// checksummed binary format. Persistence is the point of FeedbackBypass:
// the parameters learned from feedback loops must survive across query
// sessions instead of being forgotten (§1, problem 2).
//
// Format (little-endian):
//
//	magic   [4]byte  "FBSX"
//	version uint32   1 or 2
//	dim     uint32   query-domain dimensionality D
//	oqpDim  uint32   stored-vector dimensionality N
//	epsilon float64
//	tol     float64
//	points  uint32   stored-point counter
//	epoch   uint64   (version 2 only) compaction epoch
//	clock   uint64   (version 2 only) logical insert clock
//	nVerts  uint32   vertex table size
//	  vertex: D float64 point, N float64 value,
//	          stamp uint64 (version 2 only)         (× nVerts)
//	node (recursive, pre-order):
//	  verts    [D+1]int32
//	  nChild   uint32            0 for leaves
//	  if inner: split int32, mu [D+1]float64,
//	            then per child: replaced int32, node
//	crc32   uint32   IEEE checksum of everything before it
//
// Version 2 adds the lifecycle-plane fields: the compaction epoch pairs
// the snapshot with the WAL that extends it, the clock and per-vertex
// stamps carry the logical ages that aging decisions are made from.
// Version 1 files load with epoch, clock, and all stamps zero.
package persist

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"

	"repro/internal/simplextree"
)

var magic = [4]byte{'F', 'B', 'S', 'X'}

// Version is the current format version. Version-1 files remain
// loadable (their lifecycle fields read as zero).
const Version = 2

// maxSaneCount bounds table sizes read from untrusted files so a corrupt
// length prefix cannot trigger an enormous allocation.
const maxSaneCount = 1 << 28

// ErrCorrupt is wrapped by all errors caused by malformed input files.
var ErrCorrupt = errors.New("persist: corrupt file")

// Save writes the tree to w with compaction epoch 0. Use SaveEpoch when
// the snapshot must pair with an epoch-stamped WAL.
func Save(w io.Writer, tree *simplextree.Tree) error {
	return SaveEpoch(w, tree, 0)
}

// SaveEpoch writes the tree to w, stamping the snapshot with the given
// compaction epoch (recovery matches it against the WAL header's epoch
// to detect a stale pre-compaction journal).
func SaveEpoch(w io.Writer, tree *simplextree.Tree, epoch uint64) error {
	if tree == nil {
		return errors.New("persist: nil tree")
	}
	snap := tree.Snapshot()
	bw := bufio.NewWriter(w)
	crc := crc32.NewIEEE()
	mw := io.MultiWriter(bw, crc)

	if _, err := mw.Write(magic[:]); err != nil {
		return err
	}
	if err := writeAll(mw,
		uint32(Version), uint32(snap.Dim), uint32(snap.OQPDim),
		snap.Epsilon, snap.Tol, uint32(snap.Points),
		epoch, snap.Clock, uint32(len(snap.Vertices)),
	); err != nil {
		return err
	}
	for _, v := range snap.Vertices {
		if err := writeFloats(mw, v.Point); err != nil {
			return err
		}
		if err := writeFloats(mw, v.Value); err != nil {
			return err
		}
		if err := writeAll(mw, v.Stamp); err != nil {
			return err
		}
	}
	if err := writeNode(mw, snap.Root); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, crc.Sum32()); err != nil {
		return err
	}
	return bw.Flush()
}

// SaveFile writes the tree to the named file, creating or truncating
// it. The write flows through the OSFS seam so it stays visible to the
// same accounting as every other persistence op.
func SaveFile(path string, tree *simplextree.Tree) error {
	f, err := CreateFile(nil, path)
	if err != nil {
		return err
	}
	if err := Save(f, tree); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// Load reads a tree from r, verifying the checksum and every structural
// invariant.
func Load(r io.Reader) (*simplextree.Tree, error) {
	tree, _, err := LoadWithEpoch(r)
	return tree, err
}

// LoadWithEpoch is Load returning also the compaction epoch stamped in
// the snapshot (0 for version-1 files, which predate epochs).
func LoadWithEpoch(r io.Reader) (*simplextree.Tree, uint64, error) {
	crc := crc32.NewIEEE()
	br := &checksumReader{r: bufio.NewReader(r), h: crc}

	var gotMagic [4]byte
	if _, err := io.ReadFull(br, gotMagic[:]); err != nil {
		return nil, 0, fmt.Errorf("%w: reading magic: %w", ErrCorrupt, err)
	}
	if gotMagic != magic {
		return nil, 0, fmt.Errorf("%w: bad magic %q", ErrCorrupt, gotMagic[:])
	}
	var version, dim, oqpDim, points, nVerts uint32
	var epsilon, tol float64
	var epoch, clock uint64
	if err := readAll(br, &version, &dim, &oqpDim, &epsilon, &tol, &points); err != nil {
		return nil, 0, fmt.Errorf("%w: reading header: %w", ErrCorrupt, err)
	}
	if version < 1 || version > Version {
		return nil, 0, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, version)
	}
	if version >= 2 {
		if err := readAll(br, &epoch, &clock); err != nil {
			return nil, 0, fmt.Errorf("%w: reading lifecycle header: %w", ErrCorrupt, err)
		}
	}
	if err := readAll(br, &nVerts); err != nil {
		return nil, 0, fmt.Errorf("%w: reading vertex count: %w", ErrCorrupt, err)
	}
	if dim == 0 || dim > maxSaneCount || oqpDim == 0 || oqpDim > maxSaneCount || nVerts > maxSaneCount {
		return nil, 0, fmt.Errorf("%w: implausible header (D=%d N=%d verts=%d)", ErrCorrupt, dim, oqpDim, nVerts)
	}
	snap := &simplextree.Snapshot{
		Dim:     int(dim),
		OQPDim:  int(oqpDim),
		Epsilon: epsilon,
		Tol:     tol,
		Points:  int(points),
		Clock:   clock,
	}
	for i := uint32(0); i < nVerts; i++ {
		point, err := readFloats(br, int(dim))
		if err != nil {
			return nil, 0, fmt.Errorf("%w: vertex %d point: %w", ErrCorrupt, i, err)
		}
		value, err := readFloats(br, int(oqpDim))
		if err != nil {
			return nil, 0, fmt.Errorf("%w: vertex %d value: %w", ErrCorrupt, i, err)
		}
		var stamp uint64
		if version >= 2 {
			if err := readAll(br, &stamp); err != nil {
				return nil, 0, fmt.Errorf("%w: vertex %d stamp: %w", ErrCorrupt, i, err)
			}
		}
		snap.Vertices = append(snap.Vertices, simplextree.SnapshotVertex{Point: point, Value: value, Stamp: stamp})
	}
	root, err := readNode(br, int(dim), 0)
	if err != nil {
		return nil, 0, err
	}
	snap.Root = root
	wantSum := crc.Sum32()
	var gotSum uint32
	// The trailing checksum is read outside the checksummed stream.
	if err := binary.Read(br.r, binary.LittleEndian, &gotSum); err != nil {
		return nil, 0, fmt.Errorf("%w: reading checksum: %w", ErrCorrupt, err)
	}
	if gotSum != wantSum {
		return nil, 0, fmt.Errorf("%w: checksum mismatch (stored %08x, computed %08x)", ErrCorrupt, gotSum, wantSum)
	}
	tree, err := simplextree.FromSnapshot(snap)
	if err != nil {
		return nil, 0, fmt.Errorf("%w: %w", ErrCorrupt, err)
	}
	return tree, epoch, nil
}

// LoadFile reads a tree from the named file.
func LoadFile(path string) (*simplextree.Tree, error) {
	return LoadFileFS(nil, path)
}

// LoadFileFS is LoadFile reading through fs (nil means OSFS).
func LoadFileFS(fsys FS, path string) (*simplextree.Tree, error) {
	tree, _, err := LoadFileEpochFS(fsys, path)
	return tree, err
}

// LoadFileEpochFS is LoadFileFS returning also the snapshot's compaction
// epoch (0 for version-1 files).
func LoadFileEpochFS(fsys FS, path string) (*simplextree.Tree, uint64, error) {
	f, err := OpenRead(fsys, path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	return LoadWithEpoch(f)
}

const maxTreeDepth = 1 << 20 // recursion guard against cyclic/corrupt files

func writeNode(w io.Writer, n *simplextree.SnapshotNode) error {
	if err := writeInts(w, n.Verts); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(len(n.Children))); err != nil {
		return err
	}
	if len(n.Children) == 0 {
		return nil
	}
	if err := binary.Write(w, binary.LittleEndian, n.Split); err != nil {
		return err
	}
	if err := writeFloats(w, n.Mu); err != nil {
		return err
	}
	for i, c := range n.Children {
		if err := binary.Write(w, binary.LittleEndian, n.Replaced[i]); err != nil {
			return err
		}
		if err := writeNode(w, c); err != nil {
			return err
		}
	}
	return nil
}

func readNode(r io.Reader, dim, depth int) (*simplextree.SnapshotNode, error) {
	if depth > maxTreeDepth {
		return nil, fmt.Errorf("%w: tree deeper than %d", ErrCorrupt, maxTreeDepth)
	}
	n := &simplextree.SnapshotNode{Split: -1}
	verts, err := readInts(r, dim+1)
	if err != nil {
		return nil, fmt.Errorf("%w: node vertices: %w", ErrCorrupt, err)
	}
	n.Verts = verts
	var nChildren uint32
	if err := binary.Read(r, binary.LittleEndian, &nChildren); err != nil {
		return nil, fmt.Errorf("%w: child count: %w", ErrCorrupt, err)
	}
	if nChildren == 0 {
		return n, nil
	}
	if nChildren > uint32(dim)+1 {
		return nil, fmt.Errorf("%w: node claims %d children in dimension %d", ErrCorrupt, nChildren, dim)
	}
	if err := binary.Read(r, binary.LittleEndian, &n.Split); err != nil {
		return nil, fmt.Errorf("%w: split index: %w", ErrCorrupt, err)
	}
	mu, err := readFloats(r, dim+1)
	if err != nil {
		return nil, fmt.Errorf("%w: split coordinates: %w", ErrCorrupt, err)
	}
	n.Mu = mu
	for i := uint32(0); i < nChildren; i++ {
		var replaced int32
		if err := binary.Read(r, binary.LittleEndian, &replaced); err != nil {
			return nil, fmt.Errorf("%w: replaced index: %w", ErrCorrupt, err)
		}
		child, err := readNode(r, dim, depth+1)
		if err != nil {
			return nil, err
		}
		n.Replaced = append(n.Replaced, replaced)
		n.Children = append(n.Children, child)
	}
	return n, nil
}

func writeAll(w io.Writer, vals ...interface{}) error {
	for _, v := range vals {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	return nil
}

func readAll(r io.Reader, vals ...interface{}) error {
	for _, v := range vals {
		if err := binary.Read(r, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	return nil
}

func writeFloats(w io.Writer, xs []float64) error {
	buf := make([]byte, 8*len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(x))
	}
	_, err := w.Write(buf)
	return err
}

func readFloats(r io.Reader, n int) ([]float64, error) {
	buf := make([]byte, 8*n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	return out, nil
}

func writeInts(w io.Writer, xs []int32) error {
	buf := make([]byte, 4*len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint32(buf[4*i:], uint32(x))
	}
	_, err := w.Write(buf)
	return err
}

func readInts(r io.Reader, n int) ([]int32, error) {
	buf := make([]byte, 4*n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(buf[4*i:]))
	}
	return out, nil
}

// checksumReader feeds everything read through the hash, so the checksum
// covers exactly the bytes consumed.
type checksumReader struct {
	r io.Reader
	h hash.Hash32
}

func (c *checksumReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	if n > 0 {
		c.h.Write(p[:n])
	}
	return n, err
}
