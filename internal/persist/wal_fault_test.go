package persist_test

// Fault-injected coverage for the WAL Append error paths — the
// rollback-truncate and broken-log guard were dead code under ordinary
// tests because only a real I/O failure can reach them. faultfs lives
// above persist in the import graph, so these tests drive the exported
// surface from an external test package.

import (
	"errors"
	"path/filepath"
	"syscall"
	"testing"

	"repro/internal/faultfs"
	"repro/internal/persist"
)

const faultDim, faultOQP = 2, 3

func openFaultWAL(t *testing.T, fs *faultfs.FS) *persist.WAL {
	t.Helper()
	w, err := persist.OpenWALFS(fs, filepath.Join(t.TempDir(), "tree.fbwl"), faultDim, faultOQP)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	return w
}

func appendN(t *testing.T, w *persist.WAL, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		q := []float64{float64(i), float64(i) + 0.5}
		v := []float64{1, 2, 3}
		if err := w.Append(q, v, uint64(i+1)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
}

func replayCount(t *testing.T, w *persist.WAL) int {
	t.Helper()
	n, err := w.Replay(func(q, value []float64, stamp uint64) error { return nil })
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return n
}

// TestAppendRollbackShortWrite: a torn append (half the record reaches
// disk) must roll the log back to the last record boundary, leaving it
// open for business — the next append lands where the torn one was, and
// replay never sees the tear.
func TestAppendRollbackShortWrite(t *testing.T) {
	fs := faultfs.New(nil)
	w := openFaultWAL(t, fs)
	appendN(t, w, 2)
	sizeBefore := w.Size()

	// Rule counts start when the rule is armed: tear the very next write.
	fs.AddRule(faultfs.Rule{Op: faultfs.OpWrite, Nth: 1, Kind: faultfs.ShortWrite})
	err := w.Append([]float64{9, 9}, []float64{9, 9, 9}, 99)
	if !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("torn append = %v, want ErrInjected", err)
	}
	if w.Records() != 2 || w.Size() != sizeBefore {
		t.Fatalf("after rollback: records=%d size=%d, want 2 records at size %d", w.Records(), w.Size(), sizeBefore)
	}

	appendN(t, w, 1)
	if got := replayCount(t, w); got != 3 {
		t.Fatalf("replay saw %d records, want 3 (2 before the tear + 1 after)", got)
	}
}

// TestAppendRollbackFsyncFailure: with per-append fsync, a record whose
// write landed but whose fsync failed must NOT be acknowledged — Append
// rolls the fully-written record back out so the log holds exactly the
// acknowledged set.
func TestAppendRollbackFsyncFailure(t *testing.T) {
	fs := faultfs.New(nil)
	w := openFaultWAL(t, fs)
	w.SetSyncOnAppend(true)
	appendN(t, w, 1)

	fs.AddRule(faultfs.Rule{Op: faultfs.OpSync, Nth: 1, Kind: faultfs.Fail})
	err := w.Append([]float64{9, 9}, []float64{9, 9, 9}, 99)
	if !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("failed-fsync append = %v, want ErrInjected", err)
	}
	if w.Records() != 1 {
		t.Fatalf("records = %d after failed fsync, want 1", w.Records())
	}
	if got := replayCount(t, w); got != 1 {
		t.Fatalf("replay saw %d records, want only the acknowledged 1", got)
	}

	appendN(t, w, 1)
	if got := replayCount(t, w); got != 2 {
		t.Fatalf("replay saw %d records after recovery append, want 2", got)
	}
}

// TestAppendENOSPC: out-of-space behaves like any failed write — rolled
// back, typed, and non-fatal to the log.
func TestAppendENOSPC(t *testing.T) {
	fs := faultfs.New(nil)
	w := openFaultWAL(t, fs)
	appendN(t, w, 1)

	fs.AddRule(faultfs.Rule{Op: faultfs.OpWrite, Nth: 1, Kind: faultfs.ENOSPC})
	err := w.Append([]float64{9, 9}, []float64{9, 9, 9}, 99)
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("ENOSPC append = %v, want syscall.ENOSPC", err)
	}
	appendN(t, w, 1)
	if got := replayCount(t, w); got != 2 {
		t.Fatalf("replay saw %d records, want 2", got)
	}
}

// TestBrokenLogGuard: when the rollback truncate itself fails the tail
// is in an unknown state, and the WAL must refuse every further append
// (appending past torn bytes would corrupt the whole log) until a Reset
// rewrites it from scratch.
func TestBrokenLogGuard(t *testing.T) {
	fs := faultfs.New(nil)
	w := openFaultWAL(t, fs)
	appendN(t, w, 2)

	// Tear the next append AND fail its rollback truncate.
	fs.AddRule(faultfs.Rule{Op: faultfs.OpWrite, Nth: 1, Kind: faultfs.ShortWrite})
	fs.AddRule(faultfs.Rule{Op: faultfs.OpTruncate, Nth: 1, Kind: faultfs.Fail})
	err := w.Append([]float64{9, 9}, []float64{9, 9, 9}, 99)
	if err == nil {
		t.Fatal("append with failed rollback reported success")
	}

	// The guard: every further append refuses without touching the disk.
	opsBefore := fs.Ops()
	err2 := w.Append([]float64{8, 8}, []float64{8, 8, 8}, 100)
	if err2 == nil {
		t.Fatal("append on a broken log reported success")
	}
	if fs.Ops() != opsBefore {
		t.Fatalf("broken-log append touched the disk (%d ops, was %d)", fs.Ops(), opsBefore)
	}

	// Reset rewrites the log from offset zero, clearing the guard.
	if err := w.Reset(1); err != nil {
		t.Fatalf("reset: %v", err)
	}
	appendN(t, w, 1)
	if got := replayCount(t, w); got != 1 {
		t.Fatalf("replay saw %d records after reset, want 1", got)
	}
}
