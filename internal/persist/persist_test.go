package persist

import (
	"bytes"
	"errors"
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/geom"
	"repro/internal/simplextree"
	"repro/internal/vec"
)

func buildTree(t *testing.T, d, n, inserts int, seed int64) *simplextree.Tree {
	t.Helper()
	def := vec.Zeros(n)
	tr, err := simplextree.New(geom.StandardSimplex(d), def, simplextree.Options{Epsilon: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < inserts; i++ {
		w := make([]float64, d+1)
		var sum float64
		for j := range w {
			w[j] = 0.05 + rng.Float64()
			sum += w[j]
		}
		q := make([]float64, d)
		for j := 0; j < d; j++ {
			q[j] = w[j+1] / sum
		}
		v := make([]float64, n)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		if _, err := tr.Insert(q, v); err != nil {
			t.Fatal(err)
		}
	}
	return tr
}

func roundTrip(t *testing.T, tr *simplextree.Tree) *simplextree.Tree {
	t.Helper()
	var buf bytes.Buffer
	if err := Save(&buf, tr); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return back
}

func TestRoundTripEmptyTree(t *testing.T) {
	tr := buildTree(t, 3, 4, 0, 1)
	back := roundTrip(t, tr)
	if back.Dim() != 3 || back.OQPDim() != 4 || back.NumPoints() != 0 || back.NumLeaves() != 1 {
		t.Errorf("shape: D=%d N=%d points=%d leaves=%d", back.Dim(), back.OQPDim(), back.NumPoints(), back.NumLeaves())
	}
	got, err := back.Predict([]float64{0.2, 0.2, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if !vec.EqualTol(got, vec.Zeros(4), 1e-12) {
		t.Errorf("empty prediction = %v", got)
	}
}

func TestRoundTripPreservesPredictions(t *testing.T) {
	for _, d := range []int{2, 3, 7} {
		tr := buildTree(t, d, 2*d, 50, int64(d))
		back := roundTrip(t, tr)
		if back.NumPoints() != tr.NumPoints() || back.NumLeaves() != tr.NumLeaves() || back.Epsilon() != tr.Epsilon() {
			t.Fatalf("d=%d: shape mismatch", d)
		}
		rng := rand.New(rand.NewSource(99))
		for trial := 0; trial < 40; trial++ {
			w := make([]float64, d+1)
			var sum float64
			for j := range w {
				w[j] = 0.05 + rng.Float64()
				sum += w[j]
			}
			q := make([]float64, d)
			for j := 0; j < d; j++ {
				q[j] = w[j+1] / sum
			}
			want, err1 := tr.Predict(q)
			got, err2 := back.Predict(q)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("d=%d trial %d: error mismatch %v vs %v", d, trial, err1, err2)
			}
			if err1 != nil {
				continue
			}
			if !vec.EqualTol(got, want, 1e-12) {
				t.Fatalf("d=%d trial %d: prediction %v vs %v", d, trial, got, want)
			}
		}
	}
}

func TestRoundTripAllowsFurtherInserts(t *testing.T) {
	tr := buildTree(t, 2, 2, 10, 7)
	back := roundTrip(t, tr)
	changed, err := back.Insert([]float64{0.123, 0.456}, []float64{9, 9})
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Error("insert into loaded tree should work")
	}
	got, err := back.Predict([]float64{0.123, 0.456})
	if err != nil {
		t.Fatal(err)
	}
	if !vec.EqualTol(got, []float64{9, 9}, 1e-9) {
		t.Errorf("prediction after post-load insert = %v", got)
	}
}

func TestSaveLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "tree.fbsx")
	tr := buildTree(t, 3, 3, 20, 3)
	if err := SaveFile(path, tr); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumPoints() != tr.NumPoints() {
		t.Errorf("points %d vs %d", back.NumPoints(), tr.NumPoints())
	}
	if _, err := LoadFile(filepath.Join(dir, "missing.fbsx")); err == nil {
		t.Error("missing file should error")
	}
}

func TestSaveNil(t *testing.T) {
	var buf bytes.Buffer
	if err := Save(&buf, nil); err == nil {
		t.Error("nil tree should error")
	}
}

func TestLoadRejectsBadMagic(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("NOPEnope"))); !errors.Is(err, ErrCorrupt) {
		t.Errorf("err = %v", err)
	}
}

func TestLoadRejectsTruncation(t *testing.T) {
	tr := buildTree(t, 2, 2, 10, 5)
	var buf bytes.Buffer
	if err := Save(&buf, tr); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{1, 4, 10, len(full) / 2, len(full) - 1} {
		if _, err := Load(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncation at %d should error", cut)
		}
	}
}

func TestLoadRejectsBitFlips(t *testing.T) {
	tr := buildTree(t, 2, 2, 15, 6)
	var buf bytes.Buffer
	if err := Save(&buf, tr); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	rng := rand.New(rand.NewSource(8))
	rejected := 0
	const trials = 50
	for trial := 0; trial < trials; trial++ {
		corrupted := make([]byte, len(full))
		copy(corrupted, full)
		pos := rng.Intn(len(corrupted))
		corrupted[pos] ^= 1 << uint(rng.Intn(8))
		if _, err := Load(bytes.NewReader(corrupted)); err != nil {
			rejected++
		}
	}
	// Every structural flip must be caught by the checksum or validation;
	// the only survivable flips would be inside the checksum itself
	// colliding, which CRC32 makes vanishingly unlikely at this size.
	if rejected != trials {
		t.Errorf("only %d/%d corruptions rejected", rejected, trials)
	}
}

func TestLoadRejectsWrongVersion(t *testing.T) {
	tr := buildTree(t, 2, 2, 5, 9)
	var buf bytes.Buffer
	if err := Save(&buf, tr); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[4] = 99 // version byte (little-endian uint32 after 4-byte magic)
	if _, err := Load(bytes.NewReader(b)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("err = %v", err)
	}
}

func TestSnapshotValidationCatchesTampering(t *testing.T) {
	tr := buildTree(t, 2, 2, 10, 10)
	snap := tr.Snapshot()
	// Break the child/parent vertex-sharing invariant.
	if len(snap.Root.Children) > 0 {
		snap.Root.Children[0].Verts[0] = snap.Root.Children[0].Verts[1]
		if _, err := simplextree.FromSnapshot(snap); err == nil {
			t.Error("tampered snapshot should fail validation")
		}
	}
}

func TestFromSnapshotNil(t *testing.T) {
	if _, err := simplextree.FromSnapshot(nil); err == nil {
		t.Error("nil snapshot should error")
	}
}
