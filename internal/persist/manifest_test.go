package persist

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestManifestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "MANIFEST")
	want := Manifest{Shards: 8, Dim: 31, OQPDim: 62}
	if err := SaveManifest(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := LoadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("loaded %+v, want %+v", got, want)
	}
	// Overwriting is atomic and idempotent.
	if err := SaveManifest(path, want); err != nil {
		t.Fatal(err)
	}
	if got, err = LoadManifest(path); err != nil || got != want {
		t.Errorf("after rewrite: %+v, %v", got, err)
	}
}

func TestManifestMissing(t *testing.T) {
	_, err := LoadManifest(filepath.Join(t.TempDir(), "MANIFEST"))
	if !errors.Is(err, os.ErrNotExist) {
		t.Errorf("missing manifest: got %v, want os.ErrNotExist", err)
	}
}

func TestManifestCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "MANIFEST")
	if err := SaveManifest(path, Manifest{Shards: 4, Dim: 3, OQPDim: 6}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	cases := map[string][]byte{
		"truncated":    data[:len(data)-3],
		"bad magic":    append([]byte("XXXX"), data[4:]...),
		"flipped bits": flip(data, 9),
		"trailing":     append(append([]byte{}, data...), 0),
	}
	for name, mut := range cases {
		p := filepath.Join(dir, "bad-"+name)
		if err := os.WriteFile(p, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadManifest(p); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: got %v, want ErrCorrupt", name, err)
		}
	}
}

func TestManifestValidation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "MANIFEST")
	for _, m := range []Manifest{
		{Shards: 0, Dim: 3, OQPDim: 6},
		{Shards: 4, Dim: 0, OQPDim: 6},
		{Shards: 4, Dim: 3, OQPDim: -1},
	} {
		if err := SaveManifest(path, m); err == nil {
			t.Errorf("SaveManifest accepted invalid %+v", m)
		}
	}
}

func flip(data []byte, i int) []byte {
	out := append([]byte{}, data...)
	out[i] ^= 0x40
	return out
}
