package persist

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func walRecordsForTest(rng *rand.Rand, n, dim, oqpDim int) (qs, vs [][]float64) {
	for i := 0; i < n; i++ {
		q := make([]float64, dim)
		for j := range q {
			q[j] = rng.Float64()
		}
		v := make([]float64, oqpDim)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		qs = append(qs, q)
		vs = append(vs, v)
	}
	return qs, vs
}

func appendAll(t *testing.T, w *WAL, qs, vs [][]float64) {
	t.Helper()
	for i := range qs {
		if err := w.Append(qs[i], vs[i]); err != nil {
			t.Fatal(err)
		}
	}
}

func TestWALRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.fbwl")
	const dim, oqpDim = 3, 5
	qs, vs := walRecordsForTest(rand.New(rand.NewSource(1)), 17, dim, oqpDim)

	w, err := OpenWAL(path, dim, oqpDim)
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, w, qs, vs)
	if w.Records() != len(qs) {
		t.Errorf("records = %d, want %d", w.Records(), len(qs))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: every record must be found, and replay must return them in
	// order.
	w2, err := OpenWAL(path, dim, oqpDim)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if w2.Records() != len(qs) {
		t.Errorf("reopened records = %d, want %d", w2.Records(), len(qs))
	}
	i := 0
	n, err := w2.Replay(func(q, v []float64) error {
		if !equalFloats(q, qs[i]) || !equalFloats(v, vs[i]) {
			t.Errorf("record %d mismatch", i)
		}
		i++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != len(qs) {
		t.Errorf("replayed %d, want %d", n, len(qs))
	}

	// Appending after reopen continues the log.
	if err := w2.Append(qs[0], vs[0]); err != nil {
		t.Fatal(err)
	}
	if w2.Records() != len(qs)+1 {
		t.Errorf("records after append = %d, want %d", w2.Records(), len(qs)+1)
	}
}

// TestWALTruncatedTailTolerated simulates a crash mid-append: the torn
// final record must be dropped by both Replay and OpenWAL, and the log
// must stay appendable.
func TestWALTruncatedTailTolerated(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.fbwl")
	const dim, oqpDim = 4, 6
	qs, vs := walRecordsForTest(rand.New(rand.NewSource(2)), 9, dim, oqpDim)
	w, err := OpenWAL(path, dim, oqpDim)
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, w, qs, vs)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the last record in half.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	recSize := walRecordSize(dim, oqpDim)
	torn := data[:len(data)-recSize/2]
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	n, err := ReplayWAL(bytes.NewReader(torn), dim, oqpDim, func(q, v []float64) error { return nil })
	if err != nil {
		t.Fatalf("replay of torn log: %v", err)
	}
	if n != len(qs)-1 {
		t.Errorf("replayed %d, want %d (torn tail dropped)", n, len(qs)-1)
	}

	w2, err := OpenWAL(path, dim, oqpDim)
	if err != nil {
		t.Fatalf("open of torn log: %v", err)
	}
	defer w2.Close()
	if w2.Records() != len(qs)-1 {
		t.Errorf("reopened records = %d, want %d", w2.Records(), len(qs)-1)
	}
	// The torn bytes must have been truncated away so the next append
	// lands on a record boundary.
	if err := w2.Append(qs[0], vs[0]); err != nil {
		t.Fatal(err)
	}
	n = 0
	if _, err := w2.Replay(func(q, v []float64) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != len(qs) {
		t.Errorf("after truncate+append replayed %d, want %d", n, len(qs))
	}
}

// TestWALCorruptChecksumErrors flips a payload byte of a complete record:
// replay and open must both fail with ErrCorrupt.
func TestWALCorruptChecksumErrors(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.fbwl")
	const dim, oqpDim = 2, 3
	qs, vs := walRecordsForTest(rand.New(rand.NewSource(3)), 5, dim, oqpDim)
	w, err := OpenWAL(path, dim, oqpDim)
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, w, qs, vs)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt a byte inside the third record's payload.
	recSize := walRecordSize(dim, oqpDim)
	data[walHeaderSize+2*recSize+5] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := ReplayWAL(bytes.NewReader(data), dim, oqpDim, func(q, v []float64) error { return nil }); !errors.Is(err, ErrCorrupt) {
		t.Errorf("replay of corrupt log: err = %v, want ErrCorrupt", err)
	}
	if _, err := OpenWAL(path, dim, oqpDim); !errors.Is(err, ErrCorrupt) {
		t.Errorf("open of corrupt log: err = %v, want ErrCorrupt", err)
	}
}

func TestWALHeaderValidation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.fbwl")
	w, err := OpenWAL(path, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Dimension mismatch must be rejected.
	if _, err := OpenWAL(path, 4, 4); !errors.Is(err, ErrCorrupt) {
		t.Errorf("dim mismatch: err = %v, want ErrCorrupt", err)
	}
	// Bad magic must be rejected.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[0] = 'X'
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenWAL(path, 3, 4); !errors.Is(err, ErrCorrupt) {
		t.Errorf("bad magic: err = %v, want ErrCorrupt", err)
	}
	// Append dimension validation.
	w2, err := OpenWAL(filepath.Join(dir, "y.fbwl"), 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if err := w2.Append([]float64{1, 2}, []float64{1, 2, 3, 4}); err == nil {
		t.Error("short point accepted")
	}
	if err := w2.Append([]float64{1, 2, 3}, []float64{1}); err == nil {
		t.Error("short value accepted")
	}
}

func TestWALReset(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.fbwl")
	const dim, oqpDim = 3, 3
	qs, vs := walRecordsForTest(rand.New(rand.NewSource(4)), 6, dim, oqpDim)
	w, err := OpenWAL(path, dim, oqpDim)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	appendAll(t, w, qs, vs)
	if err := w.Reset(); err != nil {
		t.Fatal(err)
	}
	if w.Records() != 0 {
		t.Errorf("records after reset = %d, want 0", w.Records())
	}
	n := 0
	if _, err := w.Replay(func(q, v []float64) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("replayed %d after reset, want 0", n)
	}
	// The log keeps working after a reset.
	if err := w.Append(qs[0], vs[0]); err != nil {
		t.Fatal(err)
	}
	if w.Records() != 1 {
		t.Errorf("records = %d, want 1", w.Records())
	}
}

func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestWALTornHeaderRecovered covers a crash during header creation (or
// mid-Reset): a file shorter than the header holds no records, so
// reopening must rewrite the header instead of reporting corruption.
func TestWALTornHeaderRecovered(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.fbwl")
	for _, size := range []int{1, 7, walHeaderSize - 1} {
		if err := os.WriteFile(path, make([]byte, size), 0o644); err != nil {
			t.Fatal(err)
		}
		w, err := OpenWAL(path, 3, 4)
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		if w.Records() != 0 {
			t.Errorf("size %d: records = %d, want 0", size, w.Records())
		}
		if err := w.Append(make([]float64, 3), make([]float64, 4)); err != nil {
			t.Fatal(err)
		}
		n := 0
		if _, err := w.Replay(func(q, v []float64) error { n++; return nil }); err != nil {
			t.Fatal(err)
		}
		if n != 1 {
			t.Errorf("size %d: replayed %d, want 1", size, n)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}
}
