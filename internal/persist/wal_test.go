package persist

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func walRecordsForTest(rng *rand.Rand, n, dim, oqpDim int) (qs, vs [][]float64) {
	for i := 0; i < n; i++ {
		q := make([]float64, dim)
		for j := range q {
			q[j] = rng.Float64()
		}
		v := make([]float64, oqpDim)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		qs = append(qs, q)
		vs = append(vs, v)
	}
	return qs, vs
}

func appendAll(t *testing.T, w *WAL, qs, vs [][]float64) {
	t.Helper()
	for i := range qs {
		// Stamp records 1..n so round-trips can verify stamp persistence.
		if err := w.Append(qs[i], vs[i], uint64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestWALRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.fbwl")
	const dim, oqpDim = 3, 5
	qs, vs := walRecordsForTest(rand.New(rand.NewSource(1)), 17, dim, oqpDim)

	w, err := OpenWAL(path, dim, oqpDim)
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, w, qs, vs)
	if w.Records() != len(qs) {
		t.Errorf("records = %d, want %d", w.Records(), len(qs))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: every record must be found, and replay must return them in
	// order.
	w2, err := OpenWAL(path, dim, oqpDim)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if w2.Records() != len(qs) {
		t.Errorf("reopened records = %d, want %d", w2.Records(), len(qs))
	}
	i := 0
	n, err := w2.Replay(func(q, v []float64, stamp uint64) error {
		if !equalFloats(q, qs[i]) || !equalFloats(v, vs[i]) {
			t.Errorf("record %d mismatch", i)
		}
		if stamp != uint64(i+1) {
			t.Errorf("record %d stamp = %d, want %d", i, stamp, i+1)
		}
		i++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != len(qs) {
		t.Errorf("replayed %d, want %d", n, len(qs))
	}

	// Appending after reopen continues the log.
	if err := w2.Append(qs[0], vs[0], 99); err != nil {
		t.Fatal(err)
	}
	if w2.Records() != len(qs)+1 {
		t.Errorf("records after append = %d, want %d", w2.Records(), len(qs)+1)
	}
}

// TestWALTruncatedTailTolerated simulates a crash mid-append: the torn
// final record must be dropped by both Replay and OpenWAL, and the log
// must stay appendable.
func TestWALTruncatedTailTolerated(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.fbwl")
	const dim, oqpDim = 4, 6
	qs, vs := walRecordsForTest(rand.New(rand.NewSource(2)), 9, dim, oqpDim)
	w, err := OpenWAL(path, dim, oqpDim)
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, w, qs, vs)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the last record in half.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	recSize := walRecordSize(WALVersion, dim, oqpDim)
	torn := data[:len(data)-recSize/2]
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	n, err := ReplayWAL(bytes.NewReader(torn), dim, oqpDim, func(q, v []float64, stamp uint64) error { return nil })
	if err != nil {
		t.Fatalf("replay of torn log: %v", err)
	}
	if n != len(qs)-1 {
		t.Errorf("replayed %d, want %d (torn tail dropped)", n, len(qs)-1)
	}

	w2, err := OpenWAL(path, dim, oqpDim)
	if err != nil {
		t.Fatalf("open of torn log: %v", err)
	}
	defer w2.Close()
	if w2.Records() != len(qs)-1 {
		t.Errorf("reopened records = %d, want %d", w2.Records(), len(qs)-1)
	}
	// The torn bytes must have been truncated away so the next append
	// lands on a record boundary.
	if err := w2.Append(qs[0], vs[0], 50); err != nil {
		t.Fatal(err)
	}
	n = 0
	if _, err := w2.Replay(func(q, v []float64, stamp uint64) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != len(qs) {
		t.Errorf("after truncate+append replayed %d, want %d", n, len(qs))
	}
}

// TestWALCorruptChecksumErrors flips a payload byte of a complete record:
// replay and open must both fail with ErrCorrupt.
func TestWALCorruptChecksumErrors(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.fbwl")
	const dim, oqpDim = 2, 3
	qs, vs := walRecordsForTest(rand.New(rand.NewSource(3)), 5, dim, oqpDim)
	w, err := OpenWAL(path, dim, oqpDim)
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, w, qs, vs)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt a byte inside the third record's payload.
	recSize := walRecordSize(WALVersion, dim, oqpDim)
	data[walHeaderSizeV2+2*recSize+5] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := ReplayWAL(bytes.NewReader(data), dim, oqpDim, func(q, v []float64, stamp uint64) error { return nil }); !errors.Is(err, ErrCorrupt) {
		t.Errorf("replay of corrupt log: err = %v, want ErrCorrupt", err)
	}
	if _, err := OpenWAL(path, dim, oqpDim); !errors.Is(err, ErrCorrupt) {
		t.Errorf("open of corrupt log: err = %v, want ErrCorrupt", err)
	}
}

func TestWALHeaderValidation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.fbwl")
	w, err := OpenWAL(path, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Dimension mismatch must be rejected.
	if _, err := OpenWAL(path, 4, 4); !errors.Is(err, ErrCorrupt) {
		t.Errorf("dim mismatch: err = %v, want ErrCorrupt", err)
	}
	// Bad magic must be rejected.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[0] = 'X'
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenWAL(path, 3, 4); !errors.Is(err, ErrCorrupt) {
		t.Errorf("bad magic: err = %v, want ErrCorrupt", err)
	}
	// Append dimension validation.
	w2, err := OpenWAL(filepath.Join(dir, "y.fbwl"), 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if err := w2.Append([]float64{1, 2}, []float64{1, 2, 3, 4}, 1); err == nil {
		t.Error("short point accepted")
	}
	if err := w2.Append([]float64{1, 2, 3}, []float64{1}, 1); err == nil {
		t.Error("short value accepted")
	}
}

func TestWALReset(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.fbwl")
	const dim, oqpDim = 3, 3
	qs, vs := walRecordsForTest(rand.New(rand.NewSource(4)), 6, dim, oqpDim)
	w, err := OpenWAL(path, dim, oqpDim)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	appendAll(t, w, qs, vs)
	if err := w.Reset(7); err != nil {
		t.Fatal(err)
	}
	if w.Records() != 0 {
		t.Errorf("records after reset = %d, want 0", w.Records())
	}
	if w.Epoch() != 7 {
		t.Errorf("epoch after reset = %d, want 7", w.Epoch())
	}
	n := 0
	if _, err := w.Replay(func(q, v []float64, stamp uint64) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("replayed %d after reset, want 0", n)
	}
	// The log keeps working after a reset.
	if err := w.Append(qs[0], vs[0], 9); err != nil {
		t.Fatal(err)
	}
	if w.Records() != 1 {
		t.Errorf("records = %d, want 1", w.Records())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// The epoch survives a reopen.
	w2, err := OpenWAL(path, dim, oqpDim)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if w2.Epoch() != 7 {
		t.Errorf("reopened epoch = %d, want 7", w2.Epoch())
	}
	if w2.Records() != 1 {
		t.Errorf("reopened records = %d, want 1", w2.Records())
	}
}

// writeV1WAL builds a legacy version-1 log image by hand: 16-byte header
// (no epoch), records without stamps.
func writeV1WAL(t testing.TB, path string, qs, vs [][]float64) {
	t.Helper()
	var buf bytes.Buffer
	buf.Write(walMagic[:])
	hdr := make([]byte, 12)
	binary.LittleEndian.PutUint32(hdr[0:4], 1)
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(qs[0])))
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(vs[0])))
	buf.Write(hdr)
	for i := range qs {
		rec := make([]byte, 8*(len(qs[i])+len(vs[i]))+4)
		off := 0
		for _, x := range append(append([]float64(nil), qs[i]...), vs[i]...) {
			binary.LittleEndian.PutUint64(rec[off:], math.Float64bits(x))
			off += 8
		}
		binary.LittleEndian.PutUint32(rec[off:], crc32.ChecksumIEEE(rec[:off]))
		buf.Write(rec)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestWALV1Compatibility pins the legacy contract: version-1 logs replay
// with stamp 0, keep appending in their own format, and upgrade to the
// current version only at Reset.
func TestWALV1Compatibility(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "legacy.fbwl")
	const dim, oqpDim = 3, 4
	qs, vs := walRecordsForTest(rand.New(rand.NewSource(8)), 5, dim, oqpDim)
	writeV1WAL(t, path, qs, vs)

	w, err := OpenWAL(path, dim, oqpDim)
	if err != nil {
		t.Fatal(err)
	}
	if w.Version() != 1 || w.Epoch() != 0 {
		t.Errorf("v1 log opened as version %d epoch %d, want 1/0", w.Version(), w.Epoch())
	}
	if w.Records() != len(qs) {
		t.Errorf("records = %d, want %d", w.Records(), len(qs))
	}
	// Appending keeps the file's own record format; the stamp is dropped.
	if err := w.Append(qs[0], vs[0], 42); err != nil {
		t.Fatal(err)
	}
	i, stamps := 0, []uint64(nil)
	if _, err := w.Replay(func(q, v []float64, stamp uint64) error {
		if !equalFloats(q, qs[i%len(qs)]) {
			t.Errorf("record %d point mismatch", i)
		}
		stamps = append(stamps, stamp)
		i++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if i != len(qs)+1 {
		t.Fatalf("replayed %d, want %d", i, len(qs)+1)
	}
	for j, s := range stamps {
		if s != 0 {
			t.Errorf("v1 record %d replayed with stamp %d, want 0", j, s)
		}
	}
	// Reset upgrades the log to the current version with the given epoch.
	if err := w.Reset(3); err != nil {
		t.Fatal(err)
	}
	if w.Version() != WALVersion || w.Epoch() != 3 {
		t.Errorf("after reset: version %d epoch %d, want %d/3", w.Version(), w.Epoch(), WALVersion)
	}
	if err := w.Append(qs[1], vs[1], 7); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2, err := OpenWAL(path, dim, oqpDim)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if w2.Version() != WALVersion || w2.Epoch() != 3 || w2.Records() != 1 {
		t.Errorf("upgraded log reopened as version %d epoch %d records %d, want %d/3/1",
			w2.Version(), w2.Epoch(), w2.Records(), WALVersion)
	}
	if _, err := w2.Replay(func(q, v []float64, stamp uint64) error {
		if stamp != 7 {
			t.Errorf("upgraded record stamp = %d, want 7", stamp)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestWALTornHeaderRecovered covers a crash during header creation (or
// mid-Reset): a file shorter than the header holds no records, so
// reopening must rewrite the header instead of reporting corruption.
func TestWALTornHeaderRecovered(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.fbwl")
	// A valid current-format header, for tearing at v2-specific offsets.
	full, err := OpenWAL(path, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := full.Close(); err != nil {
		t.Fatal(err)
	}
	validHdr, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, size := range []int{1, 7, walHeaderSizeV1 - 1, walHeaderSizeV1, walHeaderSizeV2 - 1} {
		if size < walHeaderSizeV1 {
			// Below the fixed prefix any content recovers; use zeros.
			if err := os.WriteFile(path, make([]byte, size), 0o644); err != nil {
				t.Fatal(err)
			}
		} else {
			// At or past the fixed prefix the magic/version must be intact
			// (zeros there are corruption, not a torn header): tear a valid
			// version-2 header before its epoch field completes.
			if err := os.WriteFile(path, validHdr[:size], 0o644); err != nil {
				t.Fatal(err)
			}
		}
		w, err := OpenWAL(path, 3, 4)
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		if w.Records() != 0 {
			t.Errorf("size %d: records = %d, want 0", size, w.Records())
		}
		if err := w.Append(make([]float64, 3), make([]float64, 4), 1); err != nil {
			t.Fatal(err)
		}
		n := 0
		if _, err := w.Replay(func(q, v []float64, stamp uint64) error { n++; return nil }); err != nil {
			t.Fatal(err)
		}
		if n != 1 {
			t.Errorf("size %d: replayed %d, want 1", size, n)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}
}
