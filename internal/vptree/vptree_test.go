package vptree

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/distance"
	"repro/internal/knn"
)

func randomData(rng *rand.Rand, n, dim int) [][]float64 {
	data := make([][]float64, n)
	for i := range data {
		v := make([]float64, dim)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		data[i] = v
	}
	return data
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(nil, distance.Euclidean{}, 1); err == nil {
		t.Error("empty collection should error")
	}
	if _, err := Build([][]float64{{1, 2}, {3}}, distance.Euclidean{}, 1); err == nil {
		t.Error("ragged collection should error")
	}
}

func TestSearchMatchesScanEuclidean(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	data := randomData(rng, 500, 8)
	tree, err := Build(data, distance.Euclidean{}, 7)
	if err != nil {
		t.Fatal(err)
	}
	scan, err := knn.NewScan(data)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 30; trial++ {
		q := make([]float64, 8)
		for j := range q {
			q[j] = rng.NormFloat64()
		}
		k := 1 + rng.Intn(30)
		got, err := tree.Search(q, k)
		if err != nil {
			t.Fatal(err)
		}
		want, err := scan.Search(q, k, distance.Euclidean{})
		if err != nil {
			t.Fatal(err)
		}
		if !knn.SameIndexSet(got, want) {
			t.Fatalf("trial %d (k=%d): tree %v vs scan %v", trial, k, knn.Indices(got), knn.Indices(want))
		}
	}
}

func TestSearchMatchesScanManhattan(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	data := randomData(rng, 300, 4)
	m := distance.Manhattan{}
	tree, err := Build(data, m, 9)
	if err != nil {
		t.Fatal(err)
	}
	scan, _ := knn.NewScan(data)
	for trial := 0; trial < 20; trial++ {
		q := make([]float64, 4)
		for j := range q {
			q[j] = rng.NormFloat64()
		}
		got, _ := tree.Search(q, 10)
		want, _ := scan.Search(q, 10, m)
		if !knn.SameIndexSet(got, want) {
			t.Fatalf("trial %d: tree %v vs scan %v", trial, knn.Indices(got), knn.Indices(want))
		}
	}
}

func TestSearchPrunes(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	data := randomData(rng, 2000, 3) // low dimension: pruning should bite
	tree, err := Build(data, distance.Euclidean{}, 5)
	if err != nil {
		t.Fatal(err)
	}
	q := []float64{0, 0, 0}
	if _, err := tree.Search(q, 5); err != nil {
		t.Fatal(err)
	}
	if calls := tree.LastDistanceCalls(); calls >= len(data) {
		t.Errorf("no pruning: %d distance calls for %d items", calls, len(data))
	}
}

func TestSearchErrors(t *testing.T) {
	tree, _ := Build([][]float64{{0, 0}}, distance.Euclidean{}, 1)
	if _, err := tree.Search([]float64{0, 0}, 0); err == nil {
		t.Error("k=0 should error")
	}
	if _, err := tree.Search([]float64{0}, 1); err == nil {
		t.Error("dimension mismatch should error")
	}
}

func TestSearchKLargerThanCollection(t *testing.T) {
	data := [][]float64{{0}, {1}, {2}}
	tree, _ := Build(data, distance.Euclidean{}, 1)
	rs, err := tree.Search([]float64{0}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 {
		t.Errorf("got %d results", len(rs))
	}
}

func TestDuplicatePointsLeafFallback(t *testing.T) {
	// All identical points defeat the median split; builder must fall back
	// to a leaf, and search must still work.
	data := make([][]float64, 100)
	for i := range data {
		data[i] = []float64{1, 1}
	}
	tree, err := Build(data, distance.Euclidean{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := tree.Search([]float64{1, 1}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 5 {
		t.Fatalf("got %d results", len(rs))
	}
	for i, r := range rs {
		if r.Distance != 0 || r.Index != i {
			t.Errorf("result %d = %+v", i, r)
		}
	}
}

func TestSearchWeightedMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	data := randomData(rng, 400, 6)
	tree, err := Build(data, distance.Euclidean{}, 11)
	if err != nil {
		t.Fatal(err)
	}
	scan, _ := knn.NewScan(data)
	for trial := 0; trial < 20; trial++ {
		w := make([]float64, 6)
		for j := range w {
			w[j] = 0.2 + rng.Float64()*3
		}
		wm, err := distance.NewWeightedEuclidean(w)
		if err != nil {
			t.Fatal(err)
		}
		q := make([]float64, 6)
		for j := range q {
			q[j] = rng.NormFloat64()
		}
		got, err := tree.SearchWeighted(q, 10, wm)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := scan.Search(q, 10, wm)
		if !knn.SameIndexSet(got, want) {
			t.Fatalf("trial %d: weighted tree %v vs scan %v", trial, knn.Indices(got), knn.Indices(want))
		}
	}
}

func TestSearchWeightedZeroWeightStillExact(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	data := randomData(rng, 200, 3)
	tree, _ := Build(data, distance.Euclidean{}, 13)
	scan, _ := knn.NewScan(data)
	wm, err := distance.NewWeightedEuclidean([]float64{0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	q := []float64{0.5, -0.5, 0.2}
	got, err := tree.SearchWeighted(q, 8, wm)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := scan.Search(q, 8, wm)
	if !knn.SameIndexSet(got, want) {
		t.Fatalf("zero-weight search: tree %v vs scan %v", knn.Indices(got), knn.Indices(want))
	}
}

func TestSearchWeightedRequiresEuclideanTree(t *testing.T) {
	data := [][]float64{{0, 0}, {1, 1}}
	tree, _ := Build(data, distance.Manhattan{}, 1)
	wm, _ := distance.NewWeightedEuclidean([]float64{1, 1})
	if _, err := tree.SearchWeighted([]float64{0, 0}, 1, wm); err == nil {
		t.Error("non-Euclidean tree should reject weighted search")
	}
	uniform := distance.UniformWeighted(2)
	tree2, _ := Build(data, uniform, 1)
	if _, err := tree2.SearchWeighted([]float64{0, 0}, 1, wm); err != nil {
		t.Errorf("all-ones weighted tree should allow weighted search: %v", err)
	}
}

func TestSearchWeightedErrors(t *testing.T) {
	tree, _ := Build([][]float64{{0, 0}}, distance.Euclidean{}, 1)
	wm, _ := distance.NewWeightedEuclidean([]float64{1, 1})
	if _, err := tree.SearchWeighted([]float64{0, 0}, 0, wm); err == nil {
		t.Error("k=0 should error")
	}
	if _, err := tree.SearchWeighted([]float64{0}, 1, wm); err == nil {
		t.Error("dimension mismatch should error")
	}
}

func TestDepthAndLen(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	data := randomData(rng, 1000, 4)
	tree, _ := Build(data, distance.Euclidean{}, 15)
	if tree.Len() != 1000 {
		t.Errorf("Len = %d", tree.Len())
	}
	d := tree.Depth()
	// 1000 items with leaf size 16: depth should be moderate (≈ log2(63)).
	if d < 3 || d > 20 {
		t.Errorf("unexpected depth %d", d)
	}
	if tree.Metric().Name() != "euclidean" {
		t.Errorf("Metric = %s", tree.Metric().Name())
	}
}

func TestRangeSearchMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	data := randomData(rng, 400, 3)
	tree, err := Build(data, distance.Euclidean{}, 15)
	if err != nil {
		t.Fatal(err)
	}
	m := distance.Euclidean{}
	for trial := 0; trial < 15; trial++ {
		q := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		r := 0.4 + rng.Float64()
		got, err := tree.RangeSearch(q, r)
		if err != nil {
			t.Fatal(err)
		}
		want := map[int]bool{}
		for i, v := range data {
			if m.Distance(q, v) <= r {
				want[i] = true
			}
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d results, want %d", trial, len(got), len(want))
		}
		prev := -1.0
		for _, res := range got {
			if !want[res.Index] {
				t.Fatalf("trial %d: unexpected result %d", trial, res.Index)
			}
			if res.Distance < prev {
				t.Fatalf("trial %d: results not sorted", trial)
			}
			prev = res.Distance
		}
	}
}

func TestRangeSearchErrors(t *testing.T) {
	tree, _ := Build([][]float64{{0, 0}}, distance.Euclidean{}, 1)
	if _, err := tree.RangeSearch([]float64{0}, 1); err == nil {
		t.Error("dimension mismatch should error")
	}
	if _, err := tree.RangeSearch([]float64{0, 0}, -1); err == nil {
		t.Error("negative radius should error")
	}
	rs, err := tree.RangeSearch([]float64{100, 100}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 0 {
		t.Errorf("expected no results, got %d", len(rs))
	}
}

// TestSearchWeightedZeroWeightFullTraversal pins the zero-min-weight
// behaviour the old clamp hid: pruning is impossible (the √(min wᵢ)·L2
// lower bound is identically zero), but the unprunable traversal must
// stay exact against the scan path.
func TestSearchWeightedZeroWeightFullTraversal(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	data := randomData(rng, 400, 6)
	tree, err := Build(data, distance.Euclidean{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	scan, err := knn.NewScan(data)
	if err != nil {
		t.Fatal(err)
	}
	w := []float64{0, 2, 0.5, 1, 3, 0} // two zero weights → minW = 0
	wm, err := distance.NewWeightedEuclidean(w)
	if err != nil {
		t.Fatal(err)
	}
	if wm.MinWeight() != 0 {
		t.Fatalf("MinWeight = %v, want 0", wm.MinWeight())
	}
	for qi := 0; qi < 20; qi++ {
		q := data[qi*7]
		got, err := tree.SearchWeighted(q, 10, wm)
		if err != nil {
			t.Fatal(err)
		}
		want, err := scan.Search(q, 10, wm)
		if err != nil {
			t.Fatal(err)
		}
		if !knn.SameIndexSet(got, want) {
			t.Fatalf("query %d: zero-weight weighted search diverges from scan", qi)
		}
		// With a zero lower bound nothing can be pruned: every item must
		// have been evaluated (vantage points are counted twice, once per
		// metric, so the count is at least the collection size).
		if tree.LastDistanceCalls() < len(data) {
			t.Fatalf("query %d: %d distance calls < collection size %d — pruned with a zero lower bound",
				qi, tree.LastDistanceCalls(), len(data))
		}
	}
}

// TestSearchWeightedNegativeWeightRejected pins the other half of the old
// clamp bug: a negative weight is not a metric and must surface as an
// errors.Is-able validation error instead of silently degrading.
func TestSearchWeightedNegativeWeightRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	data := randomData(rng, 100, 4)
	tree, err := Build(data, distance.Euclidean{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	wm, err := distance.NewWeightedEuclidean([]float64{1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	// The constructor rejects negative weights, so corrupt the metric the
	// only way a caller can: through the exposed parameter slice.
	wm.Params()[2] = -0.5
	_, err = tree.SearchWeighted(data[0], 5, wm)
	if !errors.Is(err, ErrNegativeWeight) {
		t.Fatalf("negative weight: error %v is not ErrNegativeWeight", err)
	}
}

// TestSearchWeightedValidation covers the remaining SearchWeighted
// guards: wrong tree metric (sentinel) and metric dimension mismatch.
func TestSearchWeightedValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	data := randomData(rng, 80, 3)
	manhattan, err := Build(data, distance.Manhattan{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	wm, err := distance.NewWeightedEuclidean([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := manhattan.SearchWeighted(data[0], 5, wm); !errors.Is(err, ErrTreeMetric) {
		t.Errorf("Manhattan tree: error %v is not ErrTreeMetric", err)
	}
	euclid, err := Build(data, distance.Euclidean{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	short, err := distance.NewWeightedEuclidean([]float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := euclid.SearchWeighted(data[0], 5, short); err == nil {
		t.Error("dimension-mismatched metric accepted")
	}
}

// TestConcurrentSearches runs Search/SearchWeighted/RangeSearch from many
// goroutines against one tree: since the per-search distance-call counter
// became a published atomic, searches are pure reads and must be
// race-clean (this test is meaningful under -race).
func TestConcurrentSearches(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	data := randomData(rng, 600, 5)
	tree, err := Build(data, distance.Euclidean{}, 11)
	if err != nil {
		t.Fatal(err)
	}
	wm, err := distance.NewWeightedEuclidean([]float64{2, 1, 0.5, 1, 3})
	if err != nil {
		t.Fatal(err)
	}
	scan, err := knn.NewScan(data)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 24)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				q := data[(g*131+i*17)%len(data)]
				got, err := tree.Search(q, 7)
				if err != nil {
					errCh <- err
					return
				}
				want, err := scan.Search(q, 7, distance.Euclidean{})
				if err != nil {
					errCh <- err
					return
				}
				if !knn.SameIndexSet(got, want) {
					errCh <- fmt.Errorf("goroutine %d: concurrent Search diverges from scan", g)
					return
				}
				if _, err := tree.SearchWeighted(q, 7, wm); err != nil {
					errCh <- err
					return
				}
				if _, err := tree.RangeSearch(q, 0.4); err != nil {
					errCh <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}
