// Package vptree implements a vantage-point tree: an exact metric index
// for k-nearest-neighbour search under a fixed metric. It serves the
// "query processing" step of §2 for the default distance function; for
// re-weighted queries it offers an exact lower-bound search that prunes
// with the underlying metric (DESIGN.md, system 10).
package vptree

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync/atomic"

	"repro/internal/distance"
	"repro/internal/knn"
)

// ErrNegativeWeight is returned by SearchWeighted when the query metric
// carries a negative weight: the √(min wᵢ)·L2 lower bound is meaningless
// for a non-metric, so the search refuses it instead of silently falling
// back to an unprunable traversal. (A zero minimum weight is valid: the
// lower bound degenerates to zero, pruning is disabled, and the full
// traversal remains exact.)
var ErrNegativeWeight = errors.New("vptree: weighted search metric has a negative weight")

// ErrTreeMetric is returned by SearchWeighted when the tree was not built
// on the plain Euclidean metric, the only geometry the weighted lower
// bound is admissible for.
var ErrTreeMetric = errors.New("vptree: weighted search requires a tree built on the Euclidean metric")

// Tree is a vantage-point tree over a fixed collection and metric.
type Tree struct {
	data   [][]float64
	metric distance.Metric
	root   *node
	// kern is the squared-space kernel of the tree metric, when it has
	// one (Euclidean / weighted Euclidean): searches then descend
	// entirely in squared space — candidates early-abandon against the
	// squared k-th-best bound, shell pruning uses the square-free
	// comparison below, and the only square roots taken are one per
	// reported result.
	kern    distance.Kernel
	hasKern bool
	// lastDistCalls is the metric-evaluation count of the most recently
	// completed search, stored atomically so searches themselves are pure
	// reads of the tree and can run in parallel. Each search accumulates
	// into a stack-local counter and publishes it once at the end.
	lastDistCalls atomic.Int64
}

type node struct {
	vp      int     // vantage point index
	radius  float64 // median distance from vp to the items in inside
	radius2 float64 // radius squared, for squared-space descent
	inside  *node
	outside *node
	bucket  []int // leaf: remaining item indices (including vp when leaf)
	leaf    bool
}

const leafSize = 16

// Build constructs the tree. The data slice is aliased; the metric must be
// the one later searches use directly.
func Build(data [][]float64, m distance.Metric, seed int64) (*Tree, error) {
	if len(data) == 0 {
		return nil, errors.New("vptree: empty collection")
	}
	dim := len(data[0])
	for i, v := range data {
		if len(v) != dim {
			return nil, fmt.Errorf("vptree: vector %d has dimension %d, want %d", i, len(v), dim)
		}
	}
	t := &Tree{data: data, metric: m}
	t.kern, t.hasKern = distance.KernelFor(m)
	idx := make([]int, len(data))
	for i := range idx {
		idx[i] = i
	}
	rng := rand.New(rand.NewSource(seed))
	t.root = t.build(idx, rng)
	return t, nil
}

func (t *Tree) build(idx []int, rng *rand.Rand) *node {
	if len(idx) == 0 {
		return nil
	}
	if len(idx) <= leafSize {
		return &node{leaf: true, bucket: idx, vp: -1}
	}
	// Choose a random vantage point and partition the rest by the median
	// distance to it.
	pos := rng.Intn(len(idx))
	idx[0], idx[pos] = idx[pos], idx[0]
	vp := idx[0]
	rest := idx[1:]
	type di struct {
		i int
		d float64
	}
	ds := make([]di, len(rest))
	for j, i := range rest {
		ds[j] = di{i, t.metric.Distance(t.data[vp], t.data[i])}
	}
	sort.Slice(ds, func(a, b int) bool { return ds[a].d < ds[b].d })
	mid := len(ds) / 2
	radius := ds[mid].d
	insideIdx := make([]int, 0, mid+1)
	outsideIdx := make([]int, 0, len(ds)-mid)
	for _, e := range ds {
		if e.d < radius || (e.d == radius && len(insideIdx) <= mid) {
			insideIdx = append(insideIdx, e.i)
		} else {
			outsideIdx = append(outsideIdx, e.i)
		}
	}
	// Degenerate split (all equal distances): fall back to a leaf.
	if len(insideIdx) == 0 || len(outsideIdx) == 0 {
		return &node{leaf: true, bucket: idx, vp: -1}
	}
	return &node{
		vp:      vp,
		radius:  radius,
		radius2: radius * radius,
		inside:  t.build(insideIdx, rng),
		outside: t.build(outsideIdx, rng),
	}
}

// Len returns the collection size.
func (t *Tree) Len() int { return len(t.data) }

// Metric returns the metric the tree was built with.
func (t *Tree) Metric() distance.Metric { return t.metric }

// LastDistanceCalls reports the number of metric evaluations performed by
// the most recent completed search — the cost measure index benchmarks
// use. Under concurrent searches it reports the count of whichever search
// published last; it is a diagnostic, not a synchronized aggregate.
func (t *Tree) LastDistanceCalls() int { return int(t.lastDistCalls.Load()) }

// Search returns the k nearest neighbours of q under the tree's metric.
// Searches never mutate the tree and run in parallel.
func (t *Tree) Search(q []float64, k int) ([]knn.Result, error) {
	if k <= 0 {
		return nil, fmt.Errorf("vptree: k must be positive, got %d", k)
	}
	if len(q) != len(t.data[0]) {
		return nil, fmt.Errorf("vptree: query has dimension %d, want %d", len(q), len(t.data[0]))
	}
	calls := 0
	defer func() { t.lastDistCalls.Store(int64(calls)) }()
	top := knn.NewTopK(k)
	if t.hasKern {
		t.search2(t.root, q, top, &calls)
		return sqrtResults(top), nil
	}
	t.search(t.root, q, top, &calls)
	return top.Results(), nil
}

// sqrtResults converts a squared-space TopK into final results: one sqrt
// per reported result, then the canonical (distance, index) sort.
func sqrtResults(top *knn.TopK) []knn.Result {
	items := top.Items()
	for i := range items {
		items[i].Distance = math.Sqrt(items[i].Distance)
	}
	knn.SortResults(items)
	return items
}

// pruneSlack widens the pruning radius by a relative margin before the
// square-free test below: the inputs are rounded squares (≤ ~D·ε
// relative accumulation error each) and the test squares them again, so
// without slack a shell boundary within a few ulps could be pruned even
// though the exact test d − r > τ is false. 1e-9 is ~10⁴× the worst
// accumulated relative error at the dimensionalities used here, and a
// relatively enlarged τ only makes pruning more conservative — never
// less exact.
const pruneSlack = 1 + 1e-9

// pruneFar reports, in squared space, whether d - r > tau (all true-space
// quantities non-negative, given as squares): equivalent to
// d² − r² − τ² > 2·r·τ, compared square-free as D > 0 ∧ D² > 4·r²·τ²,
// with tau2 widened by pruneSlack for floating-point admissibility.
func pruneFar(d2, r2, tau2 float64) bool {
	tau2 *= pruneSlack
	D := d2 - r2 - tau2
	return D > 0 && D*D > 4*r2*tau2
}

// SearchWeighted answers an exact k-NN query under the weighted Euclidean
// metric w using a tree built on the plain Euclidean metric: since
// √(min w_i)·L2(a,b) ≤ d_w(a,b), triangle-inequality pruning in L2 space
// with the scaled radius is admissible. The tree must have been built with
// distance.Euclidean or an all-ones weighted metric.
func (t *Tree) SearchWeighted(q []float64, k int, w *distance.WeightedEuclidean) ([]knn.Result, error) {
	if k <= 0 {
		return nil, fmt.Errorf("vptree: k must be positive, got %d", k)
	}
	if len(q) != len(t.data[0]) {
		return nil, fmt.Errorf("vptree: query has dimension %d, want %d", len(q), len(t.data[0]))
	}
	switch m := t.metric.(type) {
	case distance.Euclidean:
	case *distance.WeightedEuclidean:
		if m.MinWeight() != 1 || m.MaxWeight() != 1 {
			return nil, ErrTreeMetric
		}
	default:
		return nil, ErrTreeMetric
	}
	if w.Dim() != len(t.data[0]) {
		return nil, fmt.Errorf("vptree: weighted metric has dimension %d, want %d", w.Dim(), len(t.data[0]))
	}
	minW := w.MinWeight()
	if minW < 0 {
		// A negative weight is not a metric: √(min wᵢ) is undefined and
		// the lower-bound pruning math below would be fed garbage.
		return nil, fmt.Errorf("vptree: min weight %v: %w", minW, ErrNegativeWeight)
	}
	// minW == 0 stays as is: the lower bound is zero, so the shell tests
	// below never prune and the search degrades to an exact full traversal.
	calls := 0
	defer func() { t.lastDistCalls.Store(int64(calls)) }()
	top := knn.NewTopK(k)
	if t.hasKern {
		if kw, ok := distance.KernelFor(w); ok {
			t.searchWeighted2(t.root, q, top, kw, minW, &calls)
			return sqrtResults(top), nil
		}
	}
	t.searchWeighted(t.root, q, top, w, math.Sqrt(minW), &calls)
	return top.Results(), nil
}

// search descends the tree under the tree's own metric, accumulating
// results in top and pruning subtrees with the triangle inequality.
func (t *Tree) search(n *node, q []float64, top *knn.TopK, calls *int) {
	if n == nil {
		return
	}
	if n.leaf {
		for _, i := range n.bucket {
			*calls++
			top.Offer(i, t.metric.Distance(q, t.data[i]))
		}
		return
	}
	*calls++
	dvp := t.metric.Distance(q, t.data[n.vp])
	top.Offer(n.vp, dvp)
	first, second := n.inside, n.outside
	if dvp >= n.radius {
		first, second = n.outside, n.inside
	}
	t.search(first, q, top, calls)
	if tau, ok := top.Bound(); ok {
		// The other side can only contain an improvement when the ball of
		// radius tau around q crosses the splitting shell.
		if dvp >= n.radius {
			if dvp-n.radius > tau {
				return
			}
		} else {
			if n.radius-dvp > tau {
				return
			}
		}
	}
	t.search(second, q, top, calls)
}

// search2 is the squared-space descent used when the tree metric has a
// kernel: the TopK accumulates squared distances, leaf candidates
// early-abandon against the exact squared bound, and the shell test runs
// square-free (pruneFar), so no square root is taken anywhere in the
// descent.
func (t *Tree) search2(n *node, q []float64, top *knn.TopK, calls *int) {
	if n == nil {
		return
	}
	bound2 := math.Inf(1)
	if b, ok := top.Bound(); ok {
		bound2 = b
	}
	if n.leaf {
		for _, i := range n.bucket {
			*calls++
			if s, abandoned := t.kern.SquaredAbandon(q, t.data[i], bound2); !abandoned {
				top.Offer(i, s)
				if b, ok := top.Bound(); ok {
					bound2 = b
				}
			}
		}
		return
	}
	*calls++
	dvp2 := t.kern.Squared(q, t.data[n.vp])
	top.Offer(n.vp, dvp2)
	first, second := n.inside, n.outside
	far := dvp2 >= n.radius2
	if far {
		first, second = n.outside, n.inside
	}
	t.search2(first, q, top, calls)
	if tau2, ok := top.Bound(); ok {
		// The other side can only contain an improvement when the ball
		// of squared radius tau2 around q crosses the splitting shell.
		if far {
			if pruneFar(dvp2, n.radius2, tau2) {
				return
			}
		} else {
			if pruneFar(n.radius2, dvp2, tau2) {
				return
			}
		}
	}
	t.search2(second, q, top, calls)
}

// searchWeighted mirrors search but evaluates candidates with the weighted
// metric while pruning with tree-metric (Euclidean) geometry: the shell
// test compares L2 distances against tau_w / √(min w), the largest L2
// radius that could still contain a weighted improvement.
func (t *Tree) searchWeighted(n *node, q []float64, top *knn.TopK, w *distance.WeightedEuclidean, sqrtMinW float64, calls *int) {
	if n == nil {
		return
	}
	if n.leaf {
		for _, i := range n.bucket {
			*calls++
			top.Offer(i, w.Distance(q, t.data[i]))
		}
		return
	}
	*calls += 2
	dTree := t.metric.Distance(q, t.data[n.vp])
	top.Offer(n.vp, w.Distance(q, t.data[n.vp]))
	first, second := n.inside, n.outside
	if dTree >= n.radius {
		first, second = n.outside, n.inside
	}
	t.searchWeighted(first, q, top, w, sqrtMinW, calls)
	if tau, ok := top.Bound(); ok && sqrtMinW > 0 {
		l2tau := tau / sqrtMinW
		if dTree >= n.radius {
			if dTree-n.radius > l2tau {
				return
			}
		} else {
			if n.radius-dTree > l2tau {
				return
			}
		}
	}
	t.searchWeighted(second, q, top, w, sqrtMinW, calls)
}

// searchWeighted2 is the squared-space weighted descent: candidates are
// compared by their weighted squared distance (early-abandoned against
// the exact squared bound), while shell pruning runs in the tree
// metric's squared space against τ²/min(wᵢ) — the squared form of the
// √(min wᵢ)·L2 lower bound — using the square-free comparison pruneFar.
func (t *Tree) searchWeighted2(n *node, q []float64, top *knn.TopK, kw distance.Kernel, minW float64, calls *int) {
	if n == nil {
		return
	}
	bound2 := math.Inf(1)
	if b, ok := top.Bound(); ok {
		bound2 = b
	}
	if n.leaf {
		for _, i := range n.bucket {
			*calls++
			if s, abandoned := kw.SquaredAbandon(q, t.data[i], bound2); !abandoned {
				top.Offer(i, s)
				if b, ok := top.Bound(); ok {
					bound2 = b
				}
			}
		}
		return
	}
	*calls += 2
	dTree2 := t.kern.Squared(q, t.data[n.vp])
	top.Offer(n.vp, kw.Squared(q, t.data[n.vp]))
	first, second := n.inside, n.outside
	far := dTree2 >= n.radius2
	if far {
		first, second = n.outside, n.inside
	}
	t.searchWeighted2(first, q, top, kw, minW, calls)
	if tau2, ok := top.Bound(); ok && minW > 0 {
		l2tau2 := tau2 / minW
		if far {
			if pruneFar(dTree2, n.radius2, l2tau2) {
				return
			}
		} else {
			if pruneFar(n.radius2, dTree2, l2tau2) {
				return
			}
		}
	}
	t.searchWeighted2(second, q, top, kw, minW, calls)
}

// RangeSearch returns every item within radius r of q under the tree's
// metric, ordered by ascending distance (ties by index).
func (t *Tree) RangeSearch(q []float64, r float64) ([]knn.Result, error) {
	if len(q) != len(t.data[0]) {
		return nil, fmt.Errorf("vptree: query has dimension %d, want %d", len(q), len(t.data[0]))
	}
	if r < 0 {
		return nil, fmt.Errorf("vptree: negative radius %v", r)
	}
	calls := 0
	defer func() { t.lastDistCalls.Store(int64(calls)) }()
	var out []knn.Result
	t.rangeSearch(t.root, q, r, &out, &calls)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Distance != out[j].Distance {
			return out[i].Distance < out[j].Distance
		}
		return out[i].Index < out[j].Index
	})
	return out, nil
}

func (t *Tree) rangeSearch(n *node, q []float64, r float64, out *[]knn.Result, calls *int) {
	if n == nil {
		return
	}
	if n.leaf {
		for _, i := range n.bucket {
			*calls++
			if d := t.metric.Distance(q, t.data[i]); d <= r {
				*out = append(*out, knn.Result{Index: i, Distance: d})
			}
		}
		return
	}
	*calls++
	dvp := t.metric.Distance(q, t.data[n.vp])
	if dvp <= r {
		*out = append(*out, knn.Result{Index: n.vp, Distance: dvp})
	}
	// The inside ball can contain matches when the query ball reaches
	// inside the shell; symmetrically for the outside.
	if dvp-r < n.radius {
		t.rangeSearch(n.inside, q, r, out, calls)
	}
	if dvp+r >= n.radius {
		t.rangeSearch(n.outside, q, r, out, calls)
	}
}

// Depth returns the maximum depth of the tree (1 for a single leaf).
func (t *Tree) Depth() int { return depth(t.root) }

func depth(n *node) int {
	if n == nil {
		return 0
	}
	if n.leaf {
		return 1
	}
	din, dout := depth(n.inside), depth(n.outside)
	if dout > din {
		din = dout
	}
	return 1 + din
}
