// Package vptree implements a vantage-point tree: an exact metric index
// for k-nearest-neighbour search under a fixed metric. It serves the
// "query processing" step of §2 for the default distance function; for
// re-weighted queries it offers an exact lower-bound search that prunes
// with the underlying metric (DESIGN.md, system 10).
package vptree

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/distance"
	"repro/internal/knn"
)

// Tree is a vantage-point tree over a fixed collection and metric.
type Tree struct {
	data   [][]float64
	metric distance.Metric
	root   *node
	// stats
	lastDistCalls int
}

type node struct {
	vp      int     // vantage point index
	radius  float64 // median distance from vp to the items in inside
	inside  *node
	outside *node
	bucket  []int // leaf: remaining item indices (including vp when leaf)
	leaf    bool
}

const leafSize = 16

// Build constructs the tree. The data slice is aliased; the metric must be
// the one later searches use directly.
func Build(data [][]float64, m distance.Metric, seed int64) (*Tree, error) {
	if len(data) == 0 {
		return nil, errors.New("vptree: empty collection")
	}
	dim := len(data[0])
	for i, v := range data {
		if len(v) != dim {
			return nil, fmt.Errorf("vptree: vector %d has dimension %d, want %d", i, len(v), dim)
		}
	}
	t := &Tree{data: data, metric: m}
	idx := make([]int, len(data))
	for i := range idx {
		idx[i] = i
	}
	rng := rand.New(rand.NewSource(seed))
	t.root = t.build(idx, rng)
	return t, nil
}

func (t *Tree) build(idx []int, rng *rand.Rand) *node {
	if len(idx) == 0 {
		return nil
	}
	if len(idx) <= leafSize {
		return &node{leaf: true, bucket: idx, vp: -1}
	}
	// Choose a random vantage point and partition the rest by the median
	// distance to it.
	pos := rng.Intn(len(idx))
	idx[0], idx[pos] = idx[pos], idx[0]
	vp := idx[0]
	rest := idx[1:]
	type di struct {
		i int
		d float64
	}
	ds := make([]di, len(rest))
	for j, i := range rest {
		ds[j] = di{i, t.metric.Distance(t.data[vp], t.data[i])}
	}
	sort.Slice(ds, func(a, b int) bool { return ds[a].d < ds[b].d })
	mid := len(ds) / 2
	radius := ds[mid].d
	insideIdx := make([]int, 0, mid+1)
	outsideIdx := make([]int, 0, len(ds)-mid)
	for _, e := range ds {
		if e.d < radius || (e.d == radius && len(insideIdx) <= mid) {
			insideIdx = append(insideIdx, e.i)
		} else {
			outsideIdx = append(outsideIdx, e.i)
		}
	}
	// Degenerate split (all equal distances): fall back to a leaf.
	if len(insideIdx) == 0 || len(outsideIdx) == 0 {
		return &node{leaf: true, bucket: idx, vp: -1}
	}
	return &node{
		vp:      vp,
		radius:  radius,
		inside:  t.build(insideIdx, rng),
		outside: t.build(outsideIdx, rng),
	}
}

// Len returns the collection size.
func (t *Tree) Len() int { return len(t.data) }

// Metric returns the metric the tree was built with.
func (t *Tree) Metric() distance.Metric { return t.metric }

// LastDistanceCalls reports the number of metric evaluations performed by
// the most recent search — the cost measure index benchmarks use.
func (t *Tree) LastDistanceCalls() int { return t.lastDistCalls }

// Search returns the k nearest neighbours of q under the tree's metric.
func (t *Tree) Search(q []float64, k int) ([]knn.Result, error) {
	if k <= 0 {
		return nil, fmt.Errorf("vptree: k must be positive, got %d", k)
	}
	if len(q) != len(t.data[0]) {
		return nil, fmt.Errorf("vptree: query has dimension %d, want %d", len(q), len(t.data[0]))
	}
	t.lastDistCalls = 0
	top := knn.NewTopK(k)
	t.search(t.root, q, top)
	return top.Results(), nil
}

// SearchWeighted answers an exact k-NN query under the weighted Euclidean
// metric w using a tree built on the plain Euclidean metric: since
// √(min w_i)·L2(a,b) ≤ d_w(a,b), triangle-inequality pruning in L2 space
// with the scaled radius is admissible. The tree must have been built with
// distance.Euclidean or an all-ones weighted metric.
func (t *Tree) SearchWeighted(q []float64, k int, w *distance.WeightedEuclidean) ([]knn.Result, error) {
	if k <= 0 {
		return nil, fmt.Errorf("vptree: k must be positive, got %d", k)
	}
	if len(q) != len(t.data[0]) {
		return nil, fmt.Errorf("vptree: query has dimension %d, want %d", len(q), len(t.data[0]))
	}
	switch m := t.metric.(type) {
	case distance.Euclidean:
	case *distance.WeightedEuclidean:
		if m.MinWeight() != 1 || m.MaxWeight() != 1 {
			return nil, errors.New("vptree: weighted search requires a tree built on the Euclidean metric")
		}
	default:
		return nil, errors.New("vptree: weighted search requires a tree built on the Euclidean metric")
	}
	minW := w.MinWeight()
	if minW <= 0 {
		// Zero weights give a zero lower bound: pruning impossible, but a
		// full traversal is still exact.
		minW = 0
	}
	t.lastDistCalls = 0
	top := knn.NewTopK(k)
	t.searchWeighted(t.root, q, top, w, math.Sqrt(minW))
	return top.Results(), nil
}

// search descends the tree under the tree's own metric, accumulating
// results in top and pruning subtrees with the triangle inequality.
func (t *Tree) search(n *node, q []float64, top *knn.TopK) {
	if n == nil {
		return
	}
	if n.leaf {
		for _, i := range n.bucket {
			t.lastDistCalls++
			top.Offer(i, t.metric.Distance(q, t.data[i]))
		}
		return
	}
	t.lastDistCalls++
	dvp := t.metric.Distance(q, t.data[n.vp])
	top.Offer(n.vp, dvp)
	first, second := n.inside, n.outside
	if dvp >= n.radius {
		first, second = n.outside, n.inside
	}
	t.search(first, q, top)
	if tau, ok := top.Bound(); ok {
		// The other side can only contain an improvement when the ball of
		// radius tau around q crosses the splitting shell.
		if dvp >= n.radius {
			if dvp-n.radius > tau {
				return
			}
		} else {
			if n.radius-dvp > tau {
				return
			}
		}
	}
	t.search(second, q, top)
}

// searchWeighted mirrors search but evaluates candidates with the weighted
// metric while pruning with tree-metric (Euclidean) geometry: the shell
// test compares L2 distances against tau_w / √(min w), the largest L2
// radius that could still contain a weighted improvement.
func (t *Tree) searchWeighted(n *node, q []float64, top *knn.TopK, w *distance.WeightedEuclidean, sqrtMinW float64) {
	if n == nil {
		return
	}
	if n.leaf {
		for _, i := range n.bucket {
			t.lastDistCalls++
			top.Offer(i, w.Distance(q, t.data[i]))
		}
		return
	}
	t.lastDistCalls += 2
	dTree := t.metric.Distance(q, t.data[n.vp])
	top.Offer(n.vp, w.Distance(q, t.data[n.vp]))
	first, second := n.inside, n.outside
	if dTree >= n.radius {
		first, second = n.outside, n.inside
	}
	t.searchWeighted(first, q, top, w, sqrtMinW)
	if tau, ok := top.Bound(); ok && sqrtMinW > 0 {
		l2tau := tau / sqrtMinW
		if dTree >= n.radius {
			if dTree-n.radius > l2tau {
				return
			}
		} else {
			if n.radius-dTree > l2tau {
				return
			}
		}
	}
	t.searchWeighted(second, q, top, w, sqrtMinW)
}

// RangeSearch returns every item within radius r of q under the tree's
// metric, ordered by ascending distance (ties by index).
func (t *Tree) RangeSearch(q []float64, r float64) ([]knn.Result, error) {
	if len(q) != len(t.data[0]) {
		return nil, fmt.Errorf("vptree: query has dimension %d, want %d", len(q), len(t.data[0]))
	}
	if r < 0 {
		return nil, fmt.Errorf("vptree: negative radius %v", r)
	}
	t.lastDistCalls = 0
	var out []knn.Result
	t.rangeSearch(t.root, q, r, &out)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Distance != out[j].Distance {
			return out[i].Distance < out[j].Distance
		}
		return out[i].Index < out[j].Index
	})
	return out, nil
}

func (t *Tree) rangeSearch(n *node, q []float64, r float64, out *[]knn.Result) {
	if n == nil {
		return
	}
	if n.leaf {
		for _, i := range n.bucket {
			t.lastDistCalls++
			if d := t.metric.Distance(q, t.data[i]); d <= r {
				*out = append(*out, knn.Result{Index: i, Distance: d})
			}
		}
		return
	}
	t.lastDistCalls++
	dvp := t.metric.Distance(q, t.data[n.vp])
	if dvp <= r {
		*out = append(*out, knn.Result{Index: n.vp, Distance: dvp})
	}
	// The inside ball can contain matches when the query ball reaches
	// inside the shell; symmetrically for the outside.
	if dvp-r < n.radius {
		t.rangeSearch(n.inside, q, r, out)
	}
	if dvp+r >= n.radius {
		t.rangeSearch(n.outside, q, r, out)
	}
}

// Depth returns the maximum depth of the tree (1 for a single leaf).
func (t *Tree) Depth() int { return depth(t.root) }

func depth(n *node) int {
	if n == nil {
		return 0
	}
	if n.leaf {
		return 1
	}
	din, dout := depth(n.inside), depth(n.outside)
	if dout > din {
		din = dout
	}
	return 1 + din
}
