package eval

import (
	"math"
	"testing"
)

func TestPrecision(t *testing.T) {
	p, err := Precision(5, 50)
	if err != nil || p != 0.1 {
		t.Errorf("Precision = %v, %v", p, err)
	}
	if _, err := Precision(1, 0); err == nil {
		t.Error("k=0 should error")
	}
	if _, err := Precision(-1, 10); err == nil {
		t.Error("negative relevant should error")
	}
	if _, err := Precision(11, 10); err == nil {
		t.Error("relevant > k should error")
	}
}

func TestRecall(t *testing.T) {
	r, err := Recall(5, 100)
	if err != nil || r != 0.05 {
		t.Errorf("Recall = %v, %v", r, err)
	}
	if _, err := Recall(1, 0); err == nil {
		t.Error("zero total should error")
	}
	if _, err := Recall(5, 4); err == nil {
		t.Error("relevant > total should error")
	}
}

func TestPrecisionGain(t *testing.T) {
	g, err := PrecisionGain(0.4, 0.2)
	if err != nil || math.Abs(g-100) > 1e-12 {
		t.Errorf("gain = %v, %v", g, err)
	}
	g, _ = PrecisionGain(0.2, 0.2)
	if g != 0 {
		t.Errorf("no-gain = %v", g)
	}
	if _, err := PrecisionGain(0.4, 0); err == nil {
		t.Error("zero default should error")
	}
}

func TestSavedMetrics(t *testing.T) {
	if SavedCycles(4, 1) != 3 {
		t.Error("SavedCycles")
	}
	if SavedObjects(3, 50) != 150 {
		t.Error("SavedObjects")
	}
	if SavedCycles(1, 2) != -1 {
		t.Error("SavedCycles can be negative (prediction hurt)")
	}
}

func TestRunning(t *testing.T) {
	var r Running
	if r.Mean() != 0 || r.N() != 0 {
		t.Error("empty running")
	}
	r.Add(1)
	r.Add(3)
	if r.Mean() != 2 || r.N() != 2 {
		t.Errorf("Mean = %v N = %d", r.Mean(), r.N())
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Append(1, 2)
	s.Append(3, 4)
	if s.Len() != 2 || s.X[1] != 3 || s.Y[1] != 4 {
		t.Errorf("series = %+v", s)
	}
}

func TestCumulativeSeries(t *testing.T) {
	obs := []float64{1, 2, 3, 4, 5}
	s, err := CumulativeSeries("test", obs, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Samples at 2, 4, and the final 5.
	if s.Len() != 3 {
		t.Fatalf("len = %d", s.Len())
	}
	if s.X[0] != 2 || math.Abs(s.Y[0]-1.5) > 1e-12 {
		t.Errorf("point 0 = (%v, %v)", s.X[0], s.Y[0])
	}
	if s.X[2] != 5 || math.Abs(s.Y[2]-3) > 1e-12 {
		t.Errorf("final point = (%v, %v)", s.X[2], s.Y[2])
	}
	if _, err := CumulativeSeries("x", obs, 0); err == nil {
		t.Error("zero interval should error")
	}
}

func TestWindowSeries(t *testing.T) {
	obs := []float64{0, 0, 0, 10, 10, 10}
	s, err := WindowSeries("w", obs, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Samples at 3 (avg of first 3 = 0) and 6 (avg of last 3 = 10).
	if s.Len() != 2 {
		t.Fatalf("len = %d", s.Len())
	}
	if s.Y[0] != 0 || s.Y[1] != 10 {
		t.Errorf("windows = %v", s.Y)
	}
	if _, err := WindowSeries("w", obs, 0, 1); err == nil {
		t.Error("zero window should error")
	}
}

func TestMeanOf(t *testing.T) {
	if MeanOf(nil) != 0 {
		t.Error("empty mean")
	}
	if MeanOf([]float64{2, 4}) != 3 {
		t.Error("mean")
	}
}
