// Package eval implements the retrieval-effectiveness and efficiency
// metrics of §5: precision, recall, precision gain, precision-recall
// curves, and the Saved-Cycles / Saved-Objects measures, together with the
// running-average series the paper's figures plot.
package eval

import (
	"errors"
	"fmt"
)

// Precision is the number of retrieved relevant objects over the number of
// retrieved objects k ([Sal88], §5).
func Precision(relevantRetrieved, k int) (float64, error) {
	if k <= 0 {
		return 0, fmt.Errorf("eval: k must be positive, got %d", k)
	}
	if relevantRetrieved < 0 || relevantRetrieved > k {
		return 0, fmt.Errorf("eval: relevant retrieved %d outside [0,%d]", relevantRetrieved, k)
	}
	return float64(relevantRetrieved) / float64(k), nil
}

// Recall is the number of retrieved relevant objects over the total number
// of relevant objects in the collection (the size of the query's category,
// §5).
func Recall(relevantRetrieved, totalRelevant int) (float64, error) {
	if totalRelevant <= 0 {
		return 0, fmt.Errorf("eval: total relevant must be positive, got %d", totalRelevant)
	}
	if relevantRetrieved < 0 || relevantRetrieved > totalRelevant {
		return 0, fmt.Errorf("eval: relevant retrieved %d outside [0,%d]", relevantRetrieved, totalRelevant)
	}
	return float64(relevantRetrieved) / float64(totalRelevant), nil
}

// PrecisionGain is the percentage improvement over the Default strategy
// (Figure 10b):
//
//	PrGain = (Pr(method) / Pr(Default) − 1) × 100.
func PrecisionGain(method, deflt float64) (float64, error) {
	if deflt <= 0 {
		return 0, errors.New("eval: default precision must be positive")
	}
	return (method/deflt - 1) * 100, nil
}

// SavedCycles is the average number of feedback iterations saved by
// starting from predicted instead of default parameters (Figure 15a).
func SavedCycles(itersFromDefault, itersFromPredicted int) int {
	return itersFromDefault - itersFromPredicted
}

// SavedObjects converts saved cycles into the number of objects that did
// not have to be retrieved: Saved-Objects = Saved-Cycles × k (Figure 15b).
func SavedObjects(savedCycles, k int) int { return savedCycles * k }

// Running accumulates a running (cumulative) average, the smoothing the
// paper's learning-curve figures use.
type Running struct {
	n   int
	sum float64
}

// Add incorporates an observation.
func (r *Running) Add(x float64) {
	r.n++
	r.sum += x
}

// Mean returns the current average (0 when empty).
func (r *Running) Mean() float64 {
	if r.n == 0 {
		return 0
	}
	return r.sum / float64(r.n)
}

// N returns the number of observations.
func (r *Running) N() int { return r.n }

// Series is one plotted curve: parallel X and Y slices.
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// Append adds a point.
func (s *Series) Append(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.X) }

// CumulativeSeries converts per-query observations into the running-average
// curve sampled every `every` queries (and at the final query).
func CumulativeSeries(label string, obs []float64, every int) (*Series, error) {
	if every <= 0 {
		return nil, fmt.Errorf("eval: sampling interval must be positive, got %d", every)
	}
	s := &Series{Label: label}
	var r Running
	for i, x := range obs {
		r.Add(x)
		if (i+1)%every == 0 || i == len(obs)-1 {
			s.Append(float64(i+1), r.Mean())
		}
	}
	return s, nil
}

// WindowSeries converts per-query observations into a trailing-window
// average curve: each sample averages the last `window` observations. The
// savings figures use this to show improvement over time.
func WindowSeries(label string, obs []float64, window, every int) (*Series, error) {
	if window <= 0 || every <= 0 {
		return nil, fmt.Errorf("eval: window %d and interval %d must be positive", window, every)
	}
	s := &Series{Label: label}
	for i := range obs {
		if (i+1)%every != 0 && i != len(obs)-1 {
			continue
		}
		lo := i + 1 - window
		if lo < 0 {
			lo = 0
		}
		var sum float64
		for j := lo; j <= i; j++ {
			sum += obs[j]
		}
		s.Append(float64(i+1), sum/float64(i-lo+1))
	}
	return s, nil
}

// MeanOf averages a slice (0 for empty input).
func MeanOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}
