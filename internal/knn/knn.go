// Package knn implements the "query processing" step of §2: given a query
// point and a distance function, return the k closest database objects.
// It provides a Searcher interface with a sequential-scan implementation;
// packages vptree and mtree provide index-accelerated implementations for
// fixed metrics (the paper cites X-trees and M-trees for this role).
package knn

import (
	"container/heap"
	"errors"
	"fmt"
	"sort"

	"repro/internal/distance"
)

// Result is one retrieved object.
type Result struct {
	Index    int     // position in the collection
	Distance float64 // distance to the query
}

// Searcher answers k-nearest-neighbour queries over a fixed collection.
type Searcher interface {
	// Search returns the k items closest to q under m, ordered by
	// ascending distance (ties broken by ascending index, making results
	// deterministic). Fewer than k results are returned only when the
	// collection is smaller than k.
	Search(q []float64, k int, m distance.Metric) ([]Result, error)
	// Len returns the collection size.
	Len() int
}

// Scan is the exact sequential-scan searcher: it supports *any* metric,
// including the per-query re-weighted distances of the feedback loop,
// which fixed-metric indexes cannot serve directly.
type Scan struct {
	data [][]float64
}

// NewScan builds a scan searcher over the given vectors (aliased, not
// copied).
func NewScan(data [][]float64) (*Scan, error) {
	if len(data) == 0 {
		return nil, errors.New("knn: empty collection")
	}
	dim := len(data[0])
	for i, v := range data {
		if len(v) != dim {
			return nil, fmt.Errorf("knn: vector %d has dimension %d, want %d", i, len(v), dim)
		}
	}
	return &Scan{data: data}, nil
}

// Len implements Searcher.
func (s *Scan) Len() int { return len(s.data) }

// Search implements Searcher.
func (s *Scan) Search(q []float64, k int, m distance.Metric) ([]Result, error) {
	if k <= 0 {
		return nil, fmt.Errorf("knn: k must be positive, got %d", k)
	}
	if len(q) != len(s.data[0]) {
		return nil, fmt.Errorf("knn: query has dimension %d, want %d", len(q), len(s.data[0]))
	}
	h := NewTopK(k)
	for i, v := range s.data {
		h.Offer(i, m.Distance(q, v))
	}
	return h.Results(), nil
}

// TopK maintains the k smallest (distance, index) pairs seen so far using
// a bounded max-heap. It is shared by all Searcher implementations.
type TopK struct {
	k int
	h resultMaxHeap
}

// NewTopK returns an accumulator for the k nearest results.
func NewTopK(k int) *TopK {
	return &TopK{k: k, h: make(resultMaxHeap, 0, k+1)}
}

// Offer considers a candidate.
func (t *TopK) Offer(index int, dist float64) {
	if len(t.h) < t.k {
		heap.Push(&t.h, Result{Index: index, Distance: dist})
		return
	}
	if worse(Result{Index: index, Distance: dist}, t.h[0]) {
		return
	}
	t.h[0] = Result{Index: index, Distance: dist}
	heap.Fix(&t.h, 0)
}

// Bound returns the current k-th smallest distance, or +Inf semantics via
// ok=false when fewer than k candidates have been offered. Index pruning
// in tree searchers uses this radius.
func (t *TopK) Bound() (float64, bool) {
	if len(t.h) < t.k {
		return 0, false
	}
	return t.h[0].Distance, true
}

// Results returns the accumulated results sorted by ascending distance,
// ties broken by ascending index.
func (t *TopK) Results() []Result {
	out := make([]Result, len(t.h))
	copy(out, t.h)
	sort.Slice(out, func(i, j int) bool { return worse(out[j], out[i]) })
	return out
}

// worse reports whether a is strictly worse (farther, then higher index)
// than b.
func worse(a, b Result) bool {
	if a.Distance != b.Distance {
		return a.Distance > b.Distance
	}
	return a.Index > b.Index
}

// resultMaxHeap is a max-heap on (distance, index) so the root is the
// current worst retained result.
type resultMaxHeap []Result

func (h resultMaxHeap) Len() int            { return len(h) }
func (h resultMaxHeap) Less(i, j int) bool  { return worse(h[i], h[j]) }
func (h resultMaxHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *resultMaxHeap) Push(x interface{}) { *h = append(*h, x.(Result)) }
func (h *resultMaxHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Indices extracts the index sequence of a result list.
func Indices(rs []Result) []int {
	out := make([]int, len(rs))
	for i, r := range rs {
		out[i] = r.Index
	}
	return out
}

// SameIndexSet reports whether two result lists contain exactly the same
// indices in the same order — the feedback loop's convergence test ("no
// changes are observed anymore in the result list", §5).
func SameIndexSet(a, b []Result) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Index != b[i].Index {
			return false
		}
	}
	return true
}
