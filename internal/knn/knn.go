// Package knn implements the "query processing" step of §2: given a query
// point and a distance function, return the k closest database objects.
// It provides a Searcher interface with a sequential-scan implementation;
// packages vptree and mtree provide index-accelerated implementations for
// fixed metrics (the paper cites X-trees and M-trees for this role).
package knn

import (
	"fmt"
	"slices"

	"repro/internal/distance"
	"repro/internal/store"
)

// Result is one retrieved object.
type Result struct {
	Index    int     // position in the collection
	Distance float64 // distance to the query
}

// Searcher answers k-nearest-neighbour queries over a fixed collection.
type Searcher interface {
	// Search returns the k items closest to q under m, ordered by
	// ascending distance (ties broken by ascending index, making results
	// deterministic). Fewer than k results are returned only when the
	// collection is smaller than k.
	Search(q []float64, k int, m distance.Metric) ([]Result, error)
	// Len returns the collection size.
	Len() int
}

// BatchSearcher is a Searcher that also answers positionally-aligned
// query batches, each under its own metric, in one call — the retrieval
// surface the engine consumes, implemented by the exact Scan and by the
// approximate ann.Index. Results must be identical to calling Search per
// query; batching changes throughput, never answers.
type BatchSearcher interface {
	Searcher
	// SearchBatchMulti answers qs[i] under ms[i]; results are positionally
	// aligned with qs.
	SearchBatchMulti(qs [][]float64, k int, ms []distance.Metric) ([][]Result, error)
	// Describe names the retrieval tier for stats surfaces.
	Describe() string
}

// Scan is the exact scan searcher: it supports *any* metric, including
// the per-query re-weighted distances of the feedback loop, which
// fixed-metric indexes cannot serve directly. Features live behind a
// store.Backend — the in-heap FlatMatrix or an mmap-resident FBMX
// collection — whose contiguous slabs the kernels consume directly; for
// Euclidean and weighted-Euclidean metrics the scan runs a squared-space
// early-abandoning kernel sharded over GOMAXPROCS workers (see
// DESIGN.md, "Retrieval core").
type Scan struct {
	mat store.Backend
	// batchTile is the row count per cache block of the tiled batch scan;
	// 0 means DefaultBatchTile (see SetBatchTile).
	batchTile int
}

// NewScan builds a scan searcher over the given vectors (copied into a
// contiguous flat store).
func NewScan(data [][]float64) (*Scan, error) {
	mat, err := store.FromRows(data)
	if err != nil {
		return nil, fmt.Errorf("knn: %w", err)
	}
	return &Scan{mat: mat}, nil
}

// SetBatchTile sets the number of rows per cache block of the tiled
// batch scan (SearchBatch / SearchBatchMulti). The default,
// DefaultBatchTile, suits a full-collection scan on a typical L2; the
// ANN rerank path and unusual cache hierarchies can tune it. Any
// positive value returns identical results — tiling never changes which
// candidates are offered, only the streaming granularity. Not safe to
// call concurrently with searches.
func (s *Scan) SetBatchTile(rows int) error {
	if rows <= 0 {
		return fmt.Errorf("knn: batch tile must be positive, got %d", rows)
	}
	s.batchTile = rows
	return nil
}

// BatchTile returns the active batch tile size.
func (s *Scan) BatchTile() int { return s.tile() }

func (s *Scan) tile() int {
	if s.batchTile <= 0 {
		return DefaultBatchTile
	}
	return s.batchTile
}

// NewScanBackend builds a scan searcher directly over any feature
// backend (aliased, not copied). The kernels stream the backend's slabs
// without per-row copies, so an mmap-resident collection is scanned in
// place.
func NewScanBackend(b store.Backend) (*Scan, error) {
	if b == nil || b.Len() == 0 {
		return nil, fmt.Errorf("knn: empty collection")
	}
	return &Scan{mat: b}, nil
}

// NewScanMatrix builds a scan searcher directly over a flat feature
// matrix (aliased, not copied).
func NewScanMatrix(mat *store.FlatMatrix) (*Scan, error) {
	if mat == nil {
		return nil, fmt.Errorf("knn: empty collection")
	}
	return NewScanBackend(mat)
}

// Len implements Searcher.
func (s *Scan) Len() int { return s.mat.Len() }

// Describe implements BatchSearcher: the exact tier has no parameters.
func (s *Scan) Describe() string { return "scan" }

// Matrix returns the underlying feature backend.
func (s *Scan) Matrix() store.Backend { return s.mat }

func (s *Scan) checkQuery(q []float64, k int) error {
	if k <= 0 {
		return fmt.Errorf("knn: k must be positive, got %d", k)
	}
	if len(q) != s.mat.Dim() {
		return fmt.Errorf("knn: query has dimension %d, want %d", len(q), s.mat.Dim())
	}
	return nil
}

// Search implements Searcher.
func (s *Scan) Search(q []float64, k int, m distance.Metric) ([]Result, error) {
	if err := s.checkQuery(q, k); err != nil {
		return nil, err
	}
	if kern, ok := distance.KernelFor(m); ok {
		return s.searchKernel(q, k, kern), nil
	}
	return s.searchGeneric(q, k, m), nil
}

// searchGeneric is the virtual-dispatch fallback path for metrics without
// a specialized kernel. It is also the reference implementation the
// parity tests compare the kernels against.
func (s *Scan) searchGeneric(q []float64, k int, m distance.Metric) []Result {
	h := NewTopK(k)
	for i, n := 0, s.mat.Len(); i < n; i++ {
		h.Offer(i, m.Distance(q, s.mat.Row(i)))
	}
	return h.Results()
}

// SearchNaive answers the query through the generic per-row Metric path
// regardless of whether m has a specialized kernel. It exists as the
// reference implementation for the kernel parity tests and benchmarks;
// production callers should use Search.
func (s *Scan) SearchNaive(q []float64, k int, m distance.Metric) ([]Result, error) {
	if err := s.checkQuery(q, k); err != nil {
		return nil, err
	}
	return s.searchGeneric(q, k, m), nil
}

// TopK maintains the k smallest (distance, index) pairs seen so far using
// a bounded max-heap. It is shared by all Searcher implementations. The
// heap is hand-rolled rather than container/heap: Offer sits on the
// per-candidate hot path of every scan and index search, and the
// interface-based heap costs a virtual Less/Swap call per sift level.
type TopK struct {
	k int
	h []Result
}

// NewTopK returns an accumulator for the k nearest results.
func NewTopK(k int) *TopK {
	return &TopK{k: k, h: make([]Result, 0, k)}
}

// Offer considers a candidate.
func (t *TopK) Offer(index int, dist float64) {
	if len(t.h) < t.k {
		t.h = append(t.h, Result{Index: index, Distance: dist})
		t.siftUp(len(t.h) - 1)
		return
	}
	if worse(Result{Index: index, Distance: dist}, t.h[0]) {
		return
	}
	t.h[0] = Result{Index: index, Distance: dist}
	t.siftDown(0)
}

// siftUp restores the max-heap property from leaf i upward, moving the
// displaced element once (hole insertion) instead of swapping per level.
func (t *TopK) siftUp(i int) {
	h := t.h
	item := h[i]
	for i > 0 {
		parent := (i - 1) / 2
		if !worse(item, h[parent]) {
			break
		}
		h[i] = h[parent]
		i = parent
	}
	h[i] = item
}

// siftDown restores the max-heap property from node i downward.
func (t *TopK) siftDown(i int) {
	h := t.h
	n := len(h)
	item := h[i]
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		largest := left
		if right := left + 1; right < n && worse(h[right], h[left]) {
			largest = right
		}
		if !worse(h[largest], item) {
			break
		}
		h[i] = h[largest]
		i = largest
	}
	h[i] = item
}

// Bound returns the current k-th smallest distance, or +Inf semantics via
// ok=false when fewer than k candidates have been offered. Index pruning
// in tree searchers uses this radius.
func (t *TopK) Bound() (float64, bool) {
	if len(t.h) < t.k {
		return 0, false
	}
	return t.h[0].Distance, true
}

// Results returns the accumulated results sorted by ascending distance,
// ties broken by ascending index.
func (t *TopK) Results() []Result {
	out := make([]Result, len(t.h))
	copy(out, t.h)
	SortResults(out)
	return out
}

// SortResults orders results by ascending (distance, index) — the
// canonical result order every searcher returns.
func SortResults(rs []Result) {
	slices.SortFunc(rs, func(a, b Result) int {
		switch {
		case a.Distance < b.Distance:
			return -1
		case a.Distance > b.Distance:
			return 1
		case a.Index < b.Index:
			return -1
		case a.Index > b.Index:
			return 1
		}
		return 0
	})
}

// Items returns the retained candidates in internal heap order — an
// unsorted copy used by the parallel-scan merge, which re-ranks across
// shards anyway.
func (t *TopK) Items() []Result {
	out := make([]Result, len(t.h))
	copy(out, t.h)
	return out
}

// K returns the accumulator's capacity.
func (t *TopK) K() int { return t.k }

// worse reports whether a is strictly worse (farther, then higher index)
// than b.
func worse(a, b Result) bool {
	if a.Distance != b.Distance {
		return a.Distance > b.Distance
	}
	return a.Index > b.Index
}

// Indices extracts the index sequence of a result list.
func Indices(rs []Result) []int {
	out := make([]int, len(rs))
	for i, r := range rs {
		out[i] = r.Index
	}
	return out
}

// SameIndexSet reports whether two result lists contain exactly the same
// indices in the same order — the feedback loop's convergence test ("no
// changes are observed anymore in the result list", §5).
func SameIndexSet(a, b []Result) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Index != b[i].Index {
			return false
		}
	}
	return true
}
