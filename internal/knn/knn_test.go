package knn

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/distance"
)

func TestNewScanValidation(t *testing.T) {
	if _, err := NewScan(nil); err == nil {
		t.Error("empty collection should error")
	}
	if _, err := NewScan([][]float64{{1, 2}, {3}}); err == nil {
		t.Error("ragged collection should error")
	}
}

func TestScanBasics(t *testing.T) {
	data := [][]float64{{0, 0}, {1, 0}, {2, 0}, {10, 0}}
	s, err := NewScan(data)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 4 {
		t.Errorf("Len = %d", s.Len())
	}
	rs, err := s.Search([]float64{0.1, 0}, 2, distance.Euclidean{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 || rs[0].Index != 0 || rs[1].Index != 1 {
		t.Errorf("results = %+v", rs)
	}
	if rs[0].Distance > rs[1].Distance {
		t.Error("results not sorted")
	}
}

func TestScanKLargerThanCollection(t *testing.T) {
	s, _ := NewScan([][]float64{{0}, {1}})
	rs, err := s.Search([]float64{0}, 10, distance.Euclidean{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 {
		t.Errorf("got %d results", len(rs))
	}
}

func TestScanErrors(t *testing.T) {
	s, _ := NewScan([][]float64{{0, 0}})
	if _, err := s.Search([]float64{0, 0}, 0, distance.Euclidean{}); err == nil {
		t.Error("k=0 should error")
	}
	if _, err := s.Search([]float64{0}, 1, distance.Euclidean{}); err == nil {
		t.Error("dimension mismatch should error")
	}
}

func TestScanTieBreaksByIndex(t *testing.T) {
	data := [][]float64{{1}, {1}, {1}, {0}}
	s, _ := NewScan(data)
	rs, err := s.Search([]float64{1}, 3, distance.Euclidean{})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2}
	for i, r := range rs {
		if r.Index != want[i] {
			t.Fatalf("results = %+v, want indices %v", rs, want)
		}
	}
}

func TestScanMatchesBruteForceSort(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data := make([][]float64, 200)
	for i := range data {
		data[i] = []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
	}
	s, _ := NewScan(data)
	m := distance.Euclidean{}
	for trial := 0; trial < 20; trial++ {
		q := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		k := 1 + rng.Intn(20)
		got, err := s.Search(q, k, m)
		if err != nil {
			t.Fatal(err)
		}
		// Brute force by full sort.
		type di struct {
			i int
			d float64
		}
		all := make([]di, len(data))
		for i, v := range data {
			all[i] = di{i, m.Distance(q, v)}
		}
		sort.Slice(all, func(a, b int) bool {
			if all[a].d != all[b].d {
				return all[a].d < all[b].d
			}
			return all[a].i < all[b].i
		})
		for i := 0; i < k; i++ {
			if got[i].Index != all[i].i {
				t.Fatalf("trial %d: result %d = %d, want %d", trial, i, got[i].Index, all[i].i)
			}
		}
	}
}

func TestTopKBound(t *testing.T) {
	top := NewTopK(2)
	if _, ok := top.Bound(); ok {
		t.Error("bound should be unavailable before k offers")
	}
	top.Offer(0, 5)
	if _, ok := top.Bound(); ok {
		t.Error("bound should be unavailable with 1 of 2")
	}
	top.Offer(1, 3)
	b, ok := top.Bound()
	if !ok || b != 5 {
		t.Errorf("bound = %v, %v", b, ok)
	}
	top.Offer(2, 1)
	b, _ = top.Bound()
	if b != 3 {
		t.Errorf("bound after improvement = %v", b)
	}
	// A worse candidate leaves the heap unchanged.
	top.Offer(3, 100)
	b, _ = top.Bound()
	if b != 3 {
		t.Errorf("bound after worse candidate = %v", b)
	}
	rs := top.Results()
	if len(rs) != 2 || rs[0].Index != 2 || rs[1].Index != 1 {
		t.Errorf("results = %+v", rs)
	}
}

func TestIndices(t *testing.T) {
	rs := []Result{{Index: 3}, {Index: 1}}
	got := Indices(rs)
	if len(got) != 2 || got[0] != 3 || got[1] != 1 {
		t.Errorf("Indices = %v", got)
	}
}

func TestSameIndexSet(t *testing.T) {
	a := []Result{{Index: 1}, {Index: 2}}
	b := []Result{{Index: 1}, {Index: 2}}
	c := []Result{{Index: 2}, {Index: 1}}
	d := []Result{{Index: 1}}
	if !SameIndexSet(a, b) {
		t.Error("equal lists should match")
	}
	if SameIndexSet(a, c) {
		t.Error("order matters")
	}
	if SameIndexSet(a, d) {
		t.Error("length matters")
	}
}
