// AVX2 phase kernels of the tiled batch scan. Lane L of the ymm
// accumulator is stripe accumulator sL (dim i feeds stripe i%4, exactly
// the scalar striping), each VSUBPD/VMULPD/VADDPD is the four scalar
// IEEE ops of one 4-dim block — no FMA, whose single rounding would
// diverge from the two-rounding scalar sequence — and the reduction adds
// (s0+s1)+(s2+s3) in the canonical association. Survivor compaction,
// cursor arithmetic and the strict bound comparison mirror the SSE2
// kernels in phase1_amd64.s line for line.

#include "textflag.h"

// func phase1x32AVX2(q, slab *float64, rows int, bound2 float64, s0b, s1b, s2b, s3b *float64, surv *int32) int
TEXT ·phase1x32AVX2(SB), NOSPLIT, $0-80
	MOVQ   q+0(FP), SI
	MOVQ   slab+8(FP), DI
	MOVQ   rows+16(FP), CX
	VMOVSD bound2+24(FP), X12
	MOVQ   s0b+32(FP), R8
	MOVQ   s1b+40(FP), R9
	MOVQ   s2b+48(FP), R10
	MOVQ   s3b+56(FP), R11
	MOVQ   surv+64(FP), R12

	// q[0..3], q[4..7] stay in registers for the whole tile.
	VMOVUPD 0(SI), Y8
	VMOVUPD 32(SI), Y9

	XORQ  BX, BX // c1 (survivor cursor)
	XORQ  DX, DX // r  (row index)
	TESTQ CX, CX
	JZ    done

loop:
	VMOVUPD 0(DI), Y0   // row[0..3]
	VSUBPD  Y0, Y8, Y4  // d0..d3
	VMULPD  Y4, Y4, Y4  // s0..s3 = d*d
	VMOVUPD 32(DI), Y1  // row[4..7]
	VSUBPD  Y1, Y9, Y5  // d4..d7
	VMULPD  Y5, Y5, Y5
	VADDPD  Y5, Y4, Y4  // sL += d(L+4)^2

	// Store stripes and row id at the survivor cursor.
	VEXTRACTF128 $1, Y4, X5 // [s2,s3]; X4 = [s0,s1]
	VMOVLPD      X4, (R8)(BX*8)
	VMOVHPD      X4, (R9)(BX*8)
	VMOVLPD      X5, (R10)(BX*8)
	VMOVHPD      X5, (R11)(BX*8)
	MOVL         DX, (R12)(BX*4)

	// t = (s0+s1)+(s2+s3); advance cursor when t <= bound2.
	VUNPCKHPD X4, X4, X6 // [s1,s1]
	VADDSD    X6, X4, X6 // s0+s1
	VUNPCKHPD X5, X5, X7 // [s3,s3]
	VADDSD    X7, X5, X7 // s2+s3
	VADDSD    X7, X6, X6
	VUCOMISD  X6, X12    // flags: bound2 cmp t; CF=1 iff bound2 < t
	SETCC     AX         // AX = (t <= bound2), 0 on unordered
	MOVBLZX   AX, AX
	ADDQ      AX, BX

	ADDQ $256, DI // next row (32 dims x 8 bytes)
	INCQ DX
	DECQ CX
	JNZ  loop

done:
	MOVQ BX, ret+72(FP)
	VZEROUPPER
	RET

// func phase1x32wAVX2(q, w, slab *float64, rows int, bound2 float64, s0b, s1b, s2b, s3b *float64, surv *int32) int
TEXT ·phase1x32wAVX2(SB), NOSPLIT, $0-88
	MOVQ   q+0(FP), SI
	MOVQ   w+8(FP), R13
	MOVQ   slab+16(FP), DI
	MOVQ   rows+24(FP), CX
	VMOVSD bound2+32(FP), X12
	MOVQ   s0b+40(FP), R8
	MOVQ   s1b+48(FP), R9
	MOVQ   s2b+56(FP), R10
	MOVQ   s3b+64(FP), R11
	MOVQ   surv+72(FP), R12

	VMOVUPD 0(SI), Y8
	VMOVUPD 32(SI), Y9
	VMOVUPD 0(R13), Y10  // w[0..3]
	VMOVUPD 32(R13), Y11 // w[4..7]

	XORQ  BX, BX
	XORQ  DX, DX
	TESTQ CX, CX
	JZ    wdone

wloop:
	// sL = (w*d)*d, matching the scalar association.
	VMOVUPD 0(DI), Y0
	VSUBPD  Y0, Y8, Y4   // d0..d3
	VMULPD  Y4, Y10, Y6  // w*d
	VMULPD  Y4, Y6, Y4   // (w*d)*d
	VMOVUPD 32(DI), Y1
	VSUBPD  Y1, Y9, Y5   // d4..d7
	VMULPD  Y5, Y11, Y7
	VMULPD  Y5, Y7, Y5
	VADDPD  Y5, Y4, Y4

	VEXTRACTF128 $1, Y4, X5
	VMOVLPD      X4, (R8)(BX*8)
	VMOVHPD      X4, (R9)(BX*8)
	VMOVLPD      X5, (R10)(BX*8)
	VMOVHPD      X5, (R11)(BX*8)
	MOVL         DX, (R12)(BX*4)

	VUNPCKHPD X4, X4, X6
	VADDSD    X6, X4, X6
	VUNPCKHPD X5, X5, X7
	VADDSD    X7, X5, X7
	VADDSD    X7, X6, X6
	VUCOMISD  X6, X12
	SETCC     AX
	MOVBLZX   AX, AX
	ADDQ      AX, BX

	ADDQ $256, DI
	INCQ DX
	DECQ CX
	JNZ  wloop

wdone:
	MOVQ BX, ret+80(FP)
	VZEROUPPER
	RET

// func phaseNext8AVX2(q8, slab8 *float64, surv *int32, count int, bound2 float64, s0b, s1b, s2b, s3b *float64, rows int) int
//
// Same contract as the SSE2 phaseNext8: continues compacted survivors by
// eight dimensions, reading stripes at the iteration index and writing
// them back at the survivor cursor. rows is unused (portable-fallback
// bound only).
TEXT ·phaseNext8AVX2(SB), NOSPLIT, $0-88
	MOVQ   q8+0(FP), SI
	MOVQ   slab8+8(FP), DI
	MOVQ   surv+16(FP), R12
	MOVQ   count+24(FP), CX
	VMOVSD bound2+32(FP), X12
	MOVQ   s0b+40(FP), R8
	MOVQ   s1b+48(FP), R9
	MOVQ   s2b+56(FP), R10
	MOVQ   s3b+64(FP), R11

	VMOVUPD 0(SI), Y8
	VMOVUPD 32(SI), Y9

	XORQ  BX, BX // cursor c
	XORQ  DX, DX // index j
	TESTQ CX, CX
	JZ    ndone

nloop:
	MOVLQSX (R12)(DX*4), R14 // r = surv[j]
	MOVQ    R14, R15
	SHLQ    $8, R15
	ADDQ    DI, R15          // row segment

	// Y4 = [s0,s1,s2,s3] gathered from the stripe buffers.
	VMOVSD      (R8)(DX*8), X4
	VMOVHPD     (R9)(DX*8), X4, X4
	VMOVSD      (R10)(DX*8), X5
	VMOVHPD     (R11)(DX*8), X5, X5
	VINSERTF128 $1, X5, Y4, Y4

	VMOVUPD 0(R15), Y0
	VSUBPD  Y0, Y8, Y6
	VMULPD  Y6, Y6, Y6
	VADDPD  Y6, Y4, Y4  // sL += dL^2
	VMOVUPD 32(R15), Y1
	VSUBPD  Y1, Y9, Y7
	VMULPD  Y7, Y7, Y7
	VADDPD  Y7, Y4, Y4  // sL += d(L+4)^2

	VEXTRACTF128 $1, Y4, X5
	VMOVLPD      X4, (R8)(BX*8)
	VMOVHPD      X4, (R9)(BX*8)
	VMOVLPD      X5, (R10)(BX*8)
	VMOVHPD      X5, (R11)(BX*8)
	MOVL         R14, (R12)(BX*4)

	VUNPCKHPD X4, X4, X6
	VADDSD    X6, X4, X6
	VUNPCKHPD X5, X5, X7
	VADDSD    X7, X5, X7
	VADDSD    X7, X6, X6
	VUCOMISD  X6, X12
	SETCC     AX
	MOVBLZX   AX, AX
	ADDQ      AX, BX

	INCQ DX
	DECQ CX
	JNZ  nloop

ndone:
	MOVQ BX, ret+80(FP)
	VZEROUPPER
	RET

// func phaseNext8wAVX2(q8, w8, slab8 *float64, surv *int32, count int, bound2 float64, s0b, s1b, s2b, s3b *float64, rows int) int
TEXT ·phaseNext8wAVX2(SB), NOSPLIT, $0-96
	MOVQ   q8+0(FP), SI
	MOVQ   w8+8(FP), R13
	MOVQ   slab8+16(FP), DI
	MOVQ   surv+24(FP), R12
	MOVQ   count+32(FP), CX
	VMOVSD bound2+40(FP), X12
	MOVQ   s0b+48(FP), R8
	MOVQ   s1b+56(FP), R9
	MOVQ   s2b+64(FP), R10
	MOVQ   s3b+72(FP), R11

	VMOVUPD 0(SI), Y8
	VMOVUPD 32(SI), Y9
	VMOVUPD 0(R13), Y10
	VMOVUPD 32(R13), Y11

	XORQ  BX, BX
	XORQ  DX, DX
	TESTQ CX, CX
	JZ    nwdone

nwloop:
	MOVLQSX (R12)(DX*4), R14
	MOVQ    R14, R15
	SHLQ    $8, R15
	ADDQ    DI, R15

	VMOVSD      (R8)(DX*8), X4
	VMOVHPD     (R9)(DX*8), X4, X4
	VMOVSD      (R10)(DX*8), X5
	VMOVHPD     (R11)(DX*8), X5, X5
	VINSERTF128 $1, X5, Y4, Y4

	VMOVUPD 0(R15), Y0
	VSUBPD  Y0, Y8, Y6   // d0..d3
	VMULPD  Y6, Y10, Y7  // w*d
	VMULPD  Y6, Y7, Y6   // (w*d)*d
	VADDPD  Y6, Y4, Y4
	VMOVUPD 32(R15), Y1
	VSUBPD  Y1, Y9, Y6
	VMULPD  Y6, Y11, Y7
	VMULPD  Y6, Y7, Y6
	VADDPD  Y6, Y4, Y4

	VEXTRACTF128 $1, Y4, X5
	VMOVLPD      X4, (R8)(BX*8)
	VMOVHPD      X4, (R9)(BX*8)
	VMOVLPD      X5, (R10)(BX*8)
	VMOVHPD      X5, (R11)(BX*8)
	MOVL         R14, (R12)(BX*4)

	VUNPCKHPD X4, X4, X6
	VADDSD    X6, X4, X6
	VUNPCKHPD X5, X5, X7
	VADDSD    X7, X5, X7
	VADDSD    X7, X6, X6
	VUCOMISD  X6, X12
	SETCC     AX
	MOVBLZX   AX, AX
	ADDQ      AX, BX

	INCQ DX
	DECQ CX
	JNZ  nwloop

nwdone:
	MOVQ BX, ret+88(FP)
	VZEROUPPER
	RET
