package knn

import (
	"math/rand"
	"path/filepath"
	"runtime"
	"testing"

	"repro/internal/distance"
	"repro/internal/store"
)

// mmapTwin writes the collection to a temporary FBMX file and opens it
// back as an mmap-resident backend, so every test below can run the
// same query stream against heap- and file-resident storage.
func mmapTwin(t *testing.T, data [][]float64) (heap, mapped *Scan) {
	t.Helper()
	mat, err := store.FromRows(data)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "twin.fbmx")
	if err := store.WriteFBMX(path, mat); err != nil {
		t.Fatal(err)
	}
	mm, err := store.OpenMmap(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := mm.Verify(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mm.Close() })
	heap, err = NewScanBackend(mat)
	if err != nil {
		t.Fatal(err)
	}
	mapped, err = NewScanBackend(mm)
	if err != nil {
		t.Fatal(err)
	}
	return heap, mapped
}

// TestMmapParityAllPaths mirrors the PR 1 parity suite across backends:
// for randomized dims (including the D=32 fast/asm paths), collection
// sizes, weights (with zeros), and tie-heavy data, the mmap-backed scan
// must return []Result bitwise identical to the heap-backed scan on
// every optimized path — naive Metric, squared-space kernel, and the
// per-path reference anchor SearchNaive.
func TestMmapParityAllPaths(t *testing.T) {
	rng := rand.New(rand.NewSource(811))
	for _, dim := range []int{1, 3, 8, 32, 45} {
		for _, n := range []int{1, 60, 700} {
			data := randomCollection(rng, n, dim)
			heap, mapped := mmapTwin(t, data)
			for trial := 0; trial < 5; trial++ {
				q := make([]float64, dim)
				for j := range q {
					q[j] = rng.NormFloat64()
				}
				if trial == 0 {
					q = data[rng.Intn(n)]
				}
				w := make([]float64, dim)
				for j := range w {
					w[j] = rng.Float64() * 2
				}
				if trial%2 == 1 {
					for j := 0; j < dim-1; j++ {
						if rng.Float64() < 0.3 {
							w[j] = 0
						}
					}
				}
				wm, err := distance.NewWeightedEuclidean(w)
				if err != nil {
					t.Fatal(err)
				}
				k := 1 + rng.Intn(n+3)
				for _, m := range []distance.Metric{distance.Euclidean{}, wm, distance.Manhattan{}} {
					wantNaive, err := heap.SearchNaive(q, k, m)
					if err != nil {
						t.Fatal(err)
					}
					gotNaive, err := mapped.SearchNaive(q, k, m)
					if err != nil {
						t.Fatal(err)
					}
					if !resultsBitwiseEqual(gotNaive, wantNaive) {
						t.Fatalf("dim=%d n=%d k=%d %s: mmap naive != heap naive", dim, n, k, m.Name())
					}
					want, err := heap.Search(q, k, m)
					if err != nil {
						t.Fatal(err)
					}
					got, err := mapped.Search(q, k, m)
					if err != nil {
						t.Fatal(err)
					}
					if !resultsBitwiseEqual(got, want) {
						t.Fatalf("dim=%d n=%d k=%d %s: mmap kernel != heap kernel", dim, n, k, m.Name())
					}
					if !resultsBitwiseEqual(got, wantNaive) {
						t.Fatalf("dim=%d n=%d k=%d %s: mmap kernel != naive reference", dim, n, k, m.Name())
					}
				}
			}
		}
	}
}

// TestMmapParityTiledBatch pins the cache-tiled batch path — including
// the D=32 vertical cascade with its SSE2 phase kernels on amd64 — and
// the mixed-metric SearchBatchMulti against the heap backend bitwise.
func TestMmapParityTiledBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(911))
	for _, dim := range []int{6, 32} {
		for _, n := range []int{40, DefaultBatchTile + 37, 2*DefaultBatchTile + 11} {
			data := randomCollection(rng, n, dim)
			heap, mapped := mmapTwin(t, data)
			qs := make([][]float64, 9)
			ms := make([]distance.Metric, len(qs))
			for i := range qs {
				qs[i] = data[rng.Intn(n)]
				w := make([]float64, dim)
				for j := range w {
					w[j] = 0.25 + rng.Float64()
				}
				if i%3 == 0 {
					ms[i] = distance.Euclidean{}
					continue
				}
				wm, err := distance.NewWeightedEuclidean(w)
				if err != nil {
					t.Fatal(err)
				}
				ms[i] = wm
			}
			k := 1 + rng.Intn(70)
			wantB, err := heap.SearchBatch(qs, k, distance.Euclidean{})
			if err != nil {
				t.Fatal(err)
			}
			gotB, err := mapped.SearchBatch(qs, k, distance.Euclidean{})
			if err != nil {
				t.Fatal(err)
			}
			wantM, err := heap.SearchBatchMulti(qs, k, ms)
			if err != nil {
				t.Fatal(err)
			}
			gotM, err := mapped.SearchBatchMulti(qs, k, ms)
			if err != nil {
				t.Fatal(err)
			}
			for i := range qs {
				if !resultsBitwiseEqual(gotB[i], wantB[i]) {
					t.Fatalf("dim=%d n=%d query %d: mmap SearchBatch != heap", dim, n, i)
				}
				if !resultsBitwiseEqual(gotM[i], wantM[i]) {
					t.Fatalf("dim=%d n=%d query %d: mmap SearchBatchMulti != heap", dim, n, i)
				}
			}
		}
	}
}

// TestMmapParityShardedScan drives the real goroutine fan-out of Search
// (sharded scan) and the query-split batch under raised GOMAXPROCS on
// an mmap backend, anchored to the heap backend's naive path.
func TestMmapParityShardedScan(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)

	rng := rand.New(rand.NewSource(1011))
	data := randomCollection(rng, 3*minShardRows, 32)
	heap, mapped := mmapTwin(t, data)
	qs := make([][]float64, 8)
	for i := range qs {
		qs[i] = data[rng.Intn(len(data))]
	}
	m := distance.Euclidean{}
	batch, err := mapped.SearchBatch(qs, 40, m)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range qs {
		want, err := heap.SearchNaive(q, 40, m)
		if err != nil {
			t.Fatal(err)
		}
		if !resultsBitwiseEqual(batch[i], want) {
			t.Fatalf("mmap batch query %d diverges under GOMAXPROCS=4", i)
		}
		got, err := mapped.Search(q, 40, m)
		if err != nil {
			t.Fatal(err)
		}
		if !resultsBitwiseEqual(got, want) {
			t.Fatalf("mmap sharded search query %d diverges under GOMAXPROCS=4", i)
		}
	}
	// The shard-merge internals, run explicitly over the mmap backend's
	// slabs (the same decomposition TestParallelScanParity uses).
	kern, ok := distance.KernelFor(m)
	if !ok {
		t.Fatal("no kernel for Euclidean")
	}
	q := qs[0]
	want, err := heap.SearchNaive(q, 25, m)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 5} {
		n := mapped.Len()
		merged := newScanState(25)
		for wkr := 0; wkr < workers; wkr++ {
			lo, hi := wkr*n/workers, (wkr+1)*n/workers
			st := newScanState(25)
			scanRows(mapped.Matrix(), q, kern, lo, hi, &st)
			for _, r := range st.items {
				if r.Distance <= merged.bound2 {
					merged.offer(r.Index, r.Distance)
				}
			}
		}
		if got := finishSquared(merged.items, 25); !resultsBitwiseEqual(got, want) {
			t.Fatalf("workers=%d: mmap shard merge != heap naive", workers)
		}
	}
}
