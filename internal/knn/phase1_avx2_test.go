//go:build amd64

package knn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/vec"
)

// TestPhaseAVX2Parity pins the AVX2 phase kernels bitwise to the portable
// Go references across random tiles, bounds, weights and tie-heavy data.
// Skipped (and the SSE2 parity test in phase1_test.go still runs) when
// the host lacks AVX2 or GODEBUG=cpu.avx2=off pinned the fallback.
func TestPhaseAVX2Parity(t *testing.T) {
	if !vec.HasAVX2() {
		t.Skip("AVX2 unavailable or disabled; dispatch uses SSE2 kernels")
	}
	rng := rand.New(rand.NewSource(23))
	type bufs struct {
		s0, s1, s2, s3 []float64
		surv           []int32
		c              int
	}
	mk := func(rows int) *bufs {
		return &bufs{
			s0: make([]float64, rows), s1: make([]float64, rows),
			s2: make([]float64, rows), s3: make([]float64, rows),
			surv: make([]int32, rows),
		}
	}
	for trial := 0; trial < 200; trial++ {
		rows := 1 + rng.Intn(160)
		slab := make([]float64, rows*32)
		for i := range slab {
			slab[i] = math.Trunc(rng.NormFloat64() * 8) // many exact ties
		}
		q := make([]float64, 32)
		w := make([]float64, 32)
		for i := range q {
			q[i] = math.Trunc(rng.NormFloat64() * 8)
			w[i] = math.Trunc(rng.Float64() * 4) // includes zero weights
		}
		var bound2 float64
		switch trial % 3 {
		case 0:
			bound2 = math.Inf(1)
		case 1:
			bound2 = float64(rng.Intn(2000))
		default:
			bound2 = 0
		}
		weighted := trial%2 == 1

		ref, got := mk(rows), mk(rows)
		if weighted {
			ref.c = phase1x32wGo(q, w, slab, rows, bound2, ref.s0, ref.s1, ref.s2, ref.s3, ref.surv)
			got.c = phase1x32wAVX2(&q[0], &w[0], &slab[0], rows, bound2, &got.s0[0], &got.s1[0], &got.s2[0], &got.s3[0], &got.surv[0])
		} else {
			ref.c = phase1x32Go(q, slab, rows, bound2, ref.s0, ref.s1, ref.s2, ref.s3, ref.surv)
			got.c = phase1x32AVX2(&q[0], &slab[0], rows, bound2, &got.s0[0], &got.s1[0], &got.s2[0], &got.s3[0], &got.surv[0])
		}
		check := func(stage string) {
			t.Helper()
			if ref.c != got.c {
				t.Fatalf("trial %d %s: survivor count %d != %d", trial, stage, got.c, ref.c)
			}
			for j := 0; j < ref.c; j++ {
				if ref.surv[j] != got.surv[j] {
					t.Fatalf("trial %d %s: surv[%d] %d != %d", trial, stage, j, got.surv[j], ref.surv[j])
				}
				for bi, pair := range [][2][]float64{{ref.s0, got.s0}, {ref.s1, got.s1}, {ref.s2, got.s2}, {ref.s3, got.s3}} {
					if math.Float64bits(pair[0][j]) != math.Float64bits(pair[1][j]) {
						t.Fatalf("trial %d %s: stripe %d row %d: %x != %x",
							trial, stage, bi, j, math.Float64bits(pair[1][j]), math.Float64bits(pair[0][j]))
					}
				}
			}
		}
		check("phase1")
		for seg := 1; seg < 4; seg++ {
			if weighted {
				ref.c = phaseNext8wGo(q[seg*8:seg*8+8], w[seg*8:seg*8+8], slab[seg*8:], ref.surv, ref.c, bound2, ref.s0, ref.s1, ref.s2, ref.s3)
				got.c = phaseNext8wAVX2(&q[seg*8], &w[seg*8], &slab[seg*8], &got.surv[0], got.c, bound2, &got.s0[0], &got.s1[0], &got.s2[0], &got.s3[0], rows)
			} else {
				ref.c = phaseNext8Go(q[seg*8:seg*8+8], slab[seg*8:], ref.surv, ref.c, bound2, ref.s0, ref.s1, ref.s2, ref.s3)
				got.c = phaseNext8AVX2(&q[seg*8], &slab[seg*8], &got.surv[0], got.c, bound2, &got.s0[0], &got.s1[0], &got.s2[0], &got.s3[0], rows)
			}
			check("next8")
		}
	}
}
