package knn

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/distance"
)

func TestSetBatchTileValidation(t *testing.T) {
	s, err := NewScan([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.BatchTile(); got != DefaultBatchTile {
		t.Fatalf("default batch tile = %d, want %d", got, DefaultBatchTile)
	}
	for _, bad := range []int{0, -1, -512} {
		if err := s.SetBatchTile(bad); err == nil {
			t.Fatalf("SetBatchTile(%d) accepted, want error", bad)
		}
	}
	if got := s.BatchTile(); got != DefaultBatchTile {
		t.Fatalf("rejected SetBatchTile changed tile to %d", got)
	}
	if err := s.SetBatchTile(64); err != nil {
		t.Fatal(err)
	}
	if got := s.BatchTile(); got != 64 {
		t.Fatalf("batch tile = %d, want 64", got)
	}
}

// TestBatchTileParity asserts SearchBatch results are identical for every
// tile size — including tiles larger than the collection, non-powers of
// two, and 1 — at both the D=32 fast path and a generic dimensionality.
func TestBatchTileParity(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for _, dim := range []int{32, 7} {
		n := 1200
		rows := make([][]float64, n)
		for i := range rows {
			r := make([]float64, dim)
			for j := range r {
				r[j] = float64(rng.Intn(40)) / 4
			}
			rows[i] = r
		}
		qs := make([][]float64, 9)
		ms := make([]distance.Metric, len(qs))
		for qi := range qs {
			q := make([]float64, dim)
			w := make([]float64, dim)
			for j := range q {
				q[j] = float64(rng.Intn(40)) / 4
				w[j] = float64(rng.Intn(5))
			}
			qs[qi] = q
			if qi%2 == 0 {
				ms[qi] = distance.Euclidean{}
			} else {
				wm, err := distance.NewWeightedEuclidean(w)
				if err != nil {
					t.Fatal(err)
				}
				ms[qi] = wm
			}
		}
		ref, err := NewScan(rows)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ref.SearchBatchMulti(qs, 10, ms)
		if err != nil {
			t.Fatal(err)
		}
		for _, tile := range []int{1, 3, 64, 100, 511, 512, 513, 5000} {
			s, err := NewScan(rows)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.SetBatchTile(tile); err != nil {
				t.Fatal(err)
			}
			got, err := s.SearchBatchMulti(qs, 10, ms)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("dim %d tile %d: batch results differ from default tile", dim, tile)
			}
		}
	}
}
