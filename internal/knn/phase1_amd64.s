// SSE2 phase-1 kernels of the tiled batch scan (see kernel.go). Each
// routine mirrors the canonical stripe accumulation bit for bit: lane L
// of the two accumulator registers is stripe accumulator sL, every
// SUBPD/MULPD/ADDPD performs exactly the scalar IEEE operation per lane,
// and the final reduction adds (s0+s1) and (s2+s3) before combining —
// the same association the scalar code and vec.SqDist use (addition
// commutes exactly in IEEE 754, so lane order within a pair is free).
// SSE2 is baseline on amd64, so no feature detection is needed.

#include "textflag.h"

// func phase1x32(q, slab *float64, rows int, bound2 float64, s0b, s1b, s2b, s3b *float64, surv *int32) int
TEXT ·phase1x32(SB), NOSPLIT, $0-80
	MOVQ  q+0(FP), SI
	MOVQ  slab+8(FP), DI
	MOVQ  rows+16(FP), CX
	MOVSD bound2+24(FP), X12
	MOVQ  s0b+32(FP), R8
	MOVQ  s1b+40(FP), R9
	MOVQ  s2b+48(FP), R10
	MOVQ  s3b+56(FP), R11
	MOVQ  surv+64(FP), R12

	// q[0..7] stays in registers for the whole tile.
	MOVUPD 0(SI), X8
	MOVUPD 16(SI), X9
	MOVUPD 32(SI), X10
	MOVUPD 48(SI), X11

	XORQ BX, BX // c1 (survivor cursor)
	XORQ DX, DX // r  (row index)
	TESTQ CX, CX
	JZ   done

loop:
	MOVUPD 0(DI), X0  // row[0],row[1]
	MOVUPD 16(DI), X1 // row[2],row[3]
	MOVUPD 32(DI), X2 // row[4],row[5]
	MOVUPD 48(DI), X3 // row[6],row[7]

	MOVAPD X8, X4
	SUBPD  X0, X4 // d0,d1
	MULPD  X4, X4 // s0=d0*d0, s1=d1*d1
	MOVAPD X9, X5
	SUBPD  X1, X5 // d2,d3
	MULPD  X5, X5 // s2,s3
	MOVAPD X10, X6
	SUBPD  X2, X6 // d4,d5
	MULPD  X6, X6
	ADDPD  X6, X4 // s0+=d4*d4, s1+=d5*d5
	MOVAPD X11, X7
	SUBPD  X3, X7 // d6,d7
	MULPD  X7, X7
	ADDPD  X7, X5 // s2+=d6*d6, s3+=d7*d7

	// Store stripes and row id at the survivor cursor.
	MOVLPD X4, (R8)(BX*8)
	MOVHPD X4, (R9)(BX*8)
	MOVLPD X5, (R10)(BX*8)
	MOVHPD X5, (R11)(BX*8)
	MOVL   DX, (R12)(BX*4)

	// t = (s0+s1)+(s2+s3); advance cursor when t <= bound2.
	MOVAPD   X4, X6
	UNPCKHPD X6, X6 // s1,s1
	ADDSD    X4, X6 // s0+s1
	MOVAPD   X5, X7
	UNPCKHPD X7, X7 // s3,s3
	ADDSD    X5, X7 // s2+s3
	ADDSD    X7, X6 // (s0+s1)+(s2+s3)
	UCOMISD  X6, X12 // flags: bound2 cmp t; CF=1 iff bound2 < t
	SETCC    AX      // AX = (t <= bound2), 0 on unordered
	MOVBLZX  AX, AX
	ADDQ     AX, BX

	ADDQ $256, DI // next row (32 dims x 8 bytes)
	INCQ DX
	DECQ CX
	JNZ  loop

done:
	MOVQ BX, ret+72(FP)
	RET

// func phase1x32w(q, w, slab *float64, rows int, bound2 float64, s0b, s1b, s2b, s3b *float64, surv *int32) int
TEXT ·phase1x32w(SB), NOSPLIT, $0-88
	MOVQ  q+0(FP), SI
	MOVQ  w+8(FP), R13
	MOVQ  slab+16(FP), DI
	MOVQ  rows+24(FP), CX
	MOVSD bound2+32(FP), X12
	MOVQ  s0b+40(FP), R8
	MOVQ  s1b+48(FP), R9
	MOVQ  s2b+56(FP), R10
	MOVQ  s3b+64(FP), R11
	MOVQ  surv+72(FP), R12

	MOVUPD 0(SI), X8
	MOVUPD 16(SI), X9
	MOVUPD 32(SI), X10
	MOVUPD 48(SI), X11
	MOVUPD 0(R13), X13  // w0,w1
	MOVUPD 16(R13), X14 // w2,w3
	MOVUPD 32(R13), X15 // w4,w5

	XORQ BX, BX
	XORQ DX, DX
	TESTQ CX, CX
	JZ   wdone

wloop:
	// Pair 0: lanes s0,s1 <- w*(q-r)*(q-r), matching scalar (w*d)*d.
	MOVUPD 0(DI), X0
	MOVAPD X8, X4
	SUBPD  X0, X4  // d0,d1
	MOVAPD X4, X6
	MULPD  X13, X4 // w*d
	MULPD  X6, X4  // (w*d)*d -> s0,s1

	// Pair 1: lanes s2,s3.
	MOVUPD 16(DI), X1
	MOVAPD X9, X5
	SUBPD  X1, X5
	MOVAPD X5, X7
	MULPD  X14, X5
	MULPD  X7, X5 // s2,s3

	// Pair 2 adds into s0,s1.
	MOVUPD 32(DI), X2
	MOVAPD X10, X6
	SUBPD  X2, X6
	MOVAPD X6, X7
	MULPD  X15, X6
	MULPD  X7, X6
	ADDPD  X6, X4

	// Pair 3 adds into s2,s3 (w6,w7 reloaded from memory; L1-resident).
	MOVUPD 48(DI), X3
	MOVAPD X11, X7
	SUBPD  X3, X7
	MOVAPD X7, X6
	MULPD  48(R13), X7
	MULPD  X6, X7
	ADDPD  X7, X5

	MOVLPD X4, (R8)(BX*8)
	MOVHPD X4, (R9)(BX*8)
	MOVLPD X5, (R10)(BX*8)
	MOVHPD X5, (R11)(BX*8)
	MOVL   DX, (R12)(BX*4)

	MOVAPD   X4, X6
	UNPCKHPD X6, X6
	ADDSD    X4, X6
	MOVAPD   X5, X7
	UNPCKHPD X7, X7
	ADDSD    X5, X7
	ADDSD    X7, X6
	UCOMISD  X6, X12
	SETCC    AX
	MOVBLZX  AX, AX
	ADDQ     AX, BX

	ADDQ $256, DI
	INCQ DX
	DECQ CX
	JNZ  wloop

wdone:
	MOVQ BX, ret+80(FP)
	RET

// func phaseNext8(q8, slab8 *float64, surv *int32, count int, bound2 float64, s0b, s1b, s2b, s3b *float64, rows int) int
//
// Continues the stripe accumulation of compacted survivors by eight more
// dimensions: q8 points at the query's 8-dim segment, slab8 at the slab
// base advanced by the same dimension offset, so row r's segment lives at
// slab8 + r*256. Reads stripes at the iteration index, writes them back
// at the survivor cursor (in place, cursor <= index), and returns the new
// survivor count. rows (the tile's row count) is unused here — the
// portable fallback needs it to bound its slices.
TEXT ·phaseNext8(SB), NOSPLIT, $0-88
	MOVQ  q8+0(FP), SI
	MOVQ  slab8+8(FP), DI
	MOVQ  surv+16(FP), R12
	MOVQ  count+24(FP), CX
	MOVSD bound2+32(FP), X12
	MOVQ  s0b+40(FP), R8
	MOVQ  s1b+48(FP), R9
	MOVQ  s2b+56(FP), R10
	MOVQ  s3b+64(FP), R11

	MOVUPD 0(SI), X8
	MOVUPD 16(SI), X9
	MOVUPD 32(SI), X10
	MOVUPD 48(SI), X11

	XORQ BX, BX // cursor c
	XORQ DX, DX // index j
	TESTQ CX, CX
	JZ   ndone

nloop:
	MOVLQSX (R12)(DX*4), R14 // r = surv[j]
	MOVQ    R14, R15
	SHLQ    $8, R15
	ADDQ    DI, R15          // row segment

	MOVLPD (R8)(DX*8), X4 // s0
	MOVHPD (R9)(DX*8), X4 // s1
	MOVLPD (R10)(DX*8), X5
	MOVHPD (R11)(DX*8), X5

	MOVUPD 0(R15), X0
	MOVAPD X8, X6
	SUBPD  X0, X6
	MULPD  X6, X6
	ADDPD  X6, X4
	MOVUPD 16(R15), X1
	MOVAPD X9, X7
	SUBPD  X1, X7
	MULPD  X7, X7
	ADDPD  X7, X5
	MOVUPD 32(R15), X2
	MOVAPD X10, X6
	SUBPD  X2, X6
	MULPD  X6, X6
	ADDPD  X6, X4
	MOVUPD 48(R15), X3
	MOVAPD X11, X7
	SUBPD  X3, X7
	MULPD  X7, X7
	ADDPD  X7, X5

	MOVLPD X4, (R8)(BX*8)
	MOVHPD X4, (R9)(BX*8)
	MOVLPD X5, (R10)(BX*8)
	MOVHPD X5, (R11)(BX*8)
	MOVL   R14, (R12)(BX*4)

	MOVAPD   X4, X6
	UNPCKHPD X6, X6
	ADDSD    X4, X6
	MOVAPD   X5, X7
	UNPCKHPD X7, X7
	ADDSD    X5, X7
	ADDSD    X7, X6
	UCOMISD  X6, X12
	SETCC    AX
	MOVBLZX  AX, AX
	ADDQ     AX, BX

	INCQ DX
	DECQ CX
	JNZ  nloop

ndone:
	MOVQ BX, ret+80(FP)
	RET

// func phaseNext8w(q8, w8, slab8 *float64, surv *int32, count int, bound2 float64, s0b, s1b, s2b, s3b *float64, rows int) int
TEXT ·phaseNext8w(SB), NOSPLIT, $0-96
	MOVQ  q8+0(FP), SI
	MOVQ  w8+8(FP), R13
	MOVQ  slab8+16(FP), DI
	MOVQ  surv+24(FP), R12
	MOVQ  count+32(FP), CX
	MOVSD bound2+40(FP), X12
	MOVQ  s0b+48(FP), R8
	MOVQ  s1b+56(FP), R9
	MOVQ  s2b+64(FP), R10
	MOVQ  s3b+72(FP), R11

	MOVUPD 0(SI), X8
	MOVUPD 16(SI), X9
	MOVUPD 32(SI), X10
	MOVUPD 48(SI), X11
	MOVUPD 0(R13), X13
	MOVUPD 16(R13), X14
	MOVUPD 32(R13), X15

	XORQ BX, BX
	XORQ DX, DX
	TESTQ CX, CX
	JZ   nwdone

nwloop:
	MOVLQSX (R12)(DX*4), R14
	MOVQ    R14, R15
	SHLQ    $8, R15
	ADDQ    DI, R15

	MOVLPD (R8)(DX*8), X4
	MOVHPD (R9)(DX*8), X4
	MOVLPD (R10)(DX*8), X5
	MOVHPD (R11)(DX*8), X5

	MOVUPD 0(R15), X0
	MOVAPD X8, X6
	SUBPD  X0, X6
	MOVAPD X6, X7
	MULPD  X13, X6
	MULPD  X7, X6
	ADDPD  X6, X4
	MOVUPD 16(R15), X1
	MOVAPD X9, X7
	SUBPD  X1, X7
	MOVAPD X7, X6
	MULPD  X14, X7
	MULPD  X6, X7
	ADDPD  X7, X5
	MOVUPD 32(R15), X2
	MOVAPD X10, X6
	SUBPD  X2, X6
	MOVAPD X6, X7
	MULPD  X15, X6
	MULPD  X7, X6
	ADDPD  X6, X4
	MOVUPD 48(R15), X3
	MOVAPD X11, X7
	SUBPD  X3, X7
	MOVAPD X7, X6
	MULPD  48(R13), X7
	MULPD  X6, X7
	ADDPD  X7, X5

	MOVLPD X4, (R8)(BX*8)
	MOVHPD X4, (R9)(BX*8)
	MOVLPD X5, (R10)(BX*8)
	MOVHPD X5, (R11)(BX*8)
	MOVL   R14, (R12)(BX*4)

	MOVAPD   X4, X6
	UNPCKHPD X6, X6
	ADDSD    X4, X6
	MOVAPD   X5, X7
	UNPCKHPD X7, X7
	ADDSD    X5, X7
	ADDSD    X7, X6
	UCOMISD  X6, X12
	SETCC    AX
	MOVBLZX  AX, AX
	ADDQ     AX, BX

	INCQ DX
	DECQ CX
	JNZ  nwloop

nwdone:
	MOVQ BX, ret+88(FP)
	RET
