// Portable reference implementations of the phase-1 tile kernels. On
// amd64 the SSE2 routines in phase1_amd64.s run instead; these stay the
// executable specification (the asm parity test asserts bitwise-equal
// outputs) and the fallback for other architectures.
package knn

// phase1x32Go accumulates dims [0,8) of every row of slab into the
// stripe buffers, writing stripes and row ids at the survivor cursor
// (compacted: a failing row is overwritten by the next), and returns the
// number of rows whose partial sum is within bound2.
func phase1x32Go(q, slab []float64, rows int, bound2 float64, s0b, s1b, s2b, s3b []float64, surv []int32) int {
	q = q[:32]
	c1 := 0
	for r := 0; r < rows; r++ {
		row := slab[r*32 : r*32+8 : r*32+8]
		d0 := q[0] - row[0]
		s0 := d0 * d0
		d1 := q[1] - row[1]
		s1 := d1 * d1
		d2 := q[2] - row[2]
		s2 := d2 * d2
		d3 := q[3] - row[3]
		s3 := d3 * d3
		d4 := q[4] - row[4]
		s0 += d4 * d4
		d5 := q[5] - row[5]
		s1 += d5 * d5
		d6 := q[6] - row[6]
		s2 += d6 * d6
		d7 := q[7] - row[7]
		s3 += d7 * d7
		s0b[c1], s1b[c1], s2b[c1], s3b[c1] = s0, s1, s2, s3
		surv[c1] = int32(r)
		inc := 0
		if (s0+s1)+(s2+s3) <= bound2 {
			inc = 1
		}
		c1 += inc
	}
	return c1
}

// phase1x32wGo is the weighted counterpart of phase1x32Go.
func phase1x32wGo(q, w, slab []float64, rows int, bound2 float64, s0b, s1b, s2b, s3b []float64, surv []int32) int {
	q = q[:32]
	w = w[:32]
	c1 := 0
	for r := 0; r < rows; r++ {
		row := slab[r*32 : r*32+8 : r*32+8]
		d0 := q[0] - row[0]
		s0 := w[0] * d0 * d0
		d1 := q[1] - row[1]
		s1 := w[1] * d1 * d1
		d2 := q[2] - row[2]
		s2 := w[2] * d2 * d2
		d3 := q[3] - row[3]
		s3 := w[3] * d3 * d3
		d4 := q[4] - row[4]
		s0 += w[4] * d4 * d4
		d5 := q[5] - row[5]
		s1 += w[5] * d5 * d5
		d6 := q[6] - row[6]
		s2 += w[6] * d6 * d6
		d7 := q[7] - row[7]
		s3 += w[7] * d7 * d7
		s0b[c1], s1b[c1], s2b[c1], s3b[c1] = s0, s1, s2, s3
		surv[c1] = int32(r)
		inc := 0
		if (s0+s1)+(s2+s3) <= bound2 {
			inc = 1
		}
		c1 += inc
	}
	return c1
}

// phaseNext8Go continues the stripe sums of the compacted survivors by
// eight more dimensions: q8 holds the query's 8-dim segment, slab8 is
// the tile slab advanced by the same dimension offset (row r's segment
// at slab8[r*32 : r*32+8]). Stripes are read at the iteration index and
// written back at the survivor cursor, in place.
func phaseNext8Go(q8, slab8 []float64, surv []int32, count int, bound2 float64, s0b, s1b, s2b, s3b []float64) int {
	q8 = q8[:8]
	c := 0
	for j := 0; j < count; j++ {
		r := int(surv[j])
		row := slab8[r*32 : r*32+8 : r*32+8]
		s0, s1, s2, s3 := s0b[j], s1b[j], s2b[j], s3b[j]
		d0 := q8[0] - row[0]
		s0 += d0 * d0
		d1 := q8[1] - row[1]
		s1 += d1 * d1
		d2 := q8[2] - row[2]
		s2 += d2 * d2
		d3 := q8[3] - row[3]
		s3 += d3 * d3
		d4 := q8[4] - row[4]
		s0 += d4 * d4
		d5 := q8[5] - row[5]
		s1 += d5 * d5
		d6 := q8[6] - row[6]
		s2 += d6 * d6
		d7 := q8[7] - row[7]
		s3 += d7 * d7
		s0b[c], s1b[c], s2b[c], s3b[c] = s0, s1, s2, s3
		surv[c] = int32(r)
		inc := 0
		if (s0+s1)+(s2+s3) <= bound2 {
			inc = 1
		}
		c += inc
	}
	return c
}

// phaseNext8wGo is the weighted counterpart of phaseNext8Go.
func phaseNext8wGo(q8, w8, slab8 []float64, surv []int32, count int, bound2 float64, s0b, s1b, s2b, s3b []float64) int {
	q8 = q8[:8]
	w8 = w8[:8]
	c := 0
	for j := 0; j < count; j++ {
		r := int(surv[j])
		row := slab8[r*32 : r*32+8 : r*32+8]
		s0, s1, s2, s3 := s0b[j], s1b[j], s2b[j], s3b[j]
		d0 := q8[0] - row[0]
		s0 += w8[0] * d0 * d0
		d1 := q8[1] - row[1]
		s1 += w8[1] * d1 * d1
		d2 := q8[2] - row[2]
		s2 += w8[2] * d2 * d2
		d3 := q8[3] - row[3]
		s3 += w8[3] * d3 * d3
		d4 := q8[4] - row[4]
		s0 += w8[4] * d4 * d4
		d5 := q8[5] - row[5]
		s1 += w8[5] * d5 * d5
		d6 := q8[6] - row[6]
		s2 += w8[6] * d6 * d6
		d7 := q8[7] - row[7]
		s3 += w8[7] * d7 * d7
		s0b[c], s1b[c], s2b[c], s3b[c] = s0, s1, s2, s3
		surv[c] = int32(r)
		inc := 0
		if (s0+s1)+(s2+s3) <= bound2 {
			inc = 1
		}
		c += inc
	}
	return c
}
