//go:build amd64

package knn

// phase1x32 is the SSE2 phase-1 kernel (phase1_amd64.s): it accumulates
// dims [0,8) of every row into the stripe buffers at the survivor cursor
// and returns the survivor count. Bitwise identical to phase1x32Go.
func phase1x32(q, slab *float64, rows int, bound2 float64, s0b, s1b, s2b, s3b *float64, surv *int32) int

// phase1x32w is the weighted SSE2 phase-1 kernel.
func phase1x32w(q, w, slab *float64, rows int, bound2 float64, s0b, s1b, s2b, s3b *float64, surv *int32) int

// phaseNext8 continues compacted survivors by eight dimensions (SSE2,
// phase1_amd64.s); bitwise identical to phaseNext8Go.
func phaseNext8(q8, slab8 *float64, surv *int32, count int, bound2 float64, s0b, s1b, s2b, s3b *float64, rows int) int

// phaseNext8w is the weighted continuation kernel.
func phaseNext8w(q8, w8, slab8 *float64, surv *int32, count int, bound2 float64, s0b, s1b, s2b, s3b *float64, rows int) int
