package knn

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/distance"
)

// resultsBitwiseEqual demands exact equality: same indices, same float64
// bit patterns.
func resultsBitwiseEqual(a, b []Result) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Index != b[i].Index || a[i].Distance != b[i].Distance {
			return false
		}
	}
	return true
}

// randomCollection builds a collection with deliberate duplicate rows so
// distance ties (resolved by index) are exercised.
func randomCollection(rng *rand.Rand, n, dim int) [][]float64 {
	data := make([][]float64, n)
	for i := range data {
		if i > 0 && rng.Float64() < 0.15 {
			// Duplicate an earlier row: guaranteed distance tie.
			data[i] = data[rng.Intn(i)]
			continue
		}
		v := make([]float64, dim)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		data[i] = v
	}
	return data
}

// TestKernelParityEuclidean: the squared-space early-abandoning kernel
// (including the D=32 fast paths) must return []Result bitwise identical
// to the naive per-row Metric path, across dimensions, collection sizes
// and k, with ties present.
func TestKernelParityEuclidean(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for _, dim := range []int{1, 2, 3, 5, 8, 13, 32, 45} {
		for _, n := range []int{1, 7, 60, 700} {
			data := randomCollection(rng, n, dim)
			scan, err := NewScan(data)
			if err != nil {
				t.Fatal(err)
			}
			m := distance.Euclidean{}
			for trial := 0; trial < 6; trial++ {
				q := make([]float64, dim)
				for j := range q {
					q[j] = rng.NormFloat64()
				}
				if trial == 0 {
					q = data[rng.Intn(n)] // query in the collection: zero distance
				}
				k := 1 + rng.Intn(2*n)
				want, err := scan.SearchNaive(q, k, m)
				if err != nil {
					t.Fatal(err)
				}
				got, err := scan.Search(q, k, m)
				if err != nil {
					t.Fatal(err)
				}
				if !resultsBitwiseEqual(got, want) {
					t.Fatalf("dim=%d n=%d k=%d: kernel %v != naive %v", dim, n, k, got, want)
				}
			}
		}
	}
}

// TestKernelParityWeighted covers the weighted kernel, including zero
// weights (which collapse dimensions and create extra ties).
func TestKernelParityWeighted(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	for _, dim := range []int{2, 8, 32, 33} {
		for _, n := range []int{5, 120, 700} {
			data := randomCollection(rng, n, dim)
			scan, err := NewScan(data)
			if err != nil {
				t.Fatal(err)
			}
			for trial := 0; trial < 6; trial++ {
				w := make([]float64, dim)
				for j := range w {
					w[j] = rng.Float64() * 3
				}
				if trial%2 == 0 {
					// Zero out a random subset (at least one weight stays
					// positive for metric validity).
					for j := 0; j < dim-1; j++ {
						if rng.Float64() < 0.3 {
							w[j] = 0
						}
					}
				}
				m, err := distance.NewWeightedEuclidean(w)
				if err != nil {
					t.Fatal(err)
				}
				q := data[rng.Intn(n)]
				k := 1 + rng.Intn(n)
				want, err := scan.SearchNaive(q, k, m)
				if err != nil {
					t.Fatal(err)
				}
				got, err := scan.Search(q, k, m)
				if err != nil {
					t.Fatal(err)
				}
				if !resultsBitwiseEqual(got, want) {
					t.Fatalf("dim=%d n=%d k=%d: weighted kernel diverges from naive", dim, n, k)
				}
			}
		}
	}
}

// TestSearchBatchParity: the cache-tiled batch scan (and its generic-dim
// fallback) must equal per-query Search bitwise, for both supported
// metric classes and collections larger than one tile.
func TestSearchBatchParity(t *testing.T) {
	rng := rand.New(rand.NewSource(303))
	for _, dim := range []int{6, 32} {
		for _, n := range []int{40, DefaultBatchTile + 37, 3*DefaultBatchTile + 1} {
			data := randomCollection(rng, n, dim)
			scan, err := NewScan(data)
			if err != nil {
				t.Fatal(err)
			}
			w := make([]float64, dim)
			for j := range w {
				w[j] = 0.25 + rng.Float64()
			}
			wm, err := distance.NewWeightedEuclidean(w)
			if err != nil {
				t.Fatal(err)
			}
			for _, m := range []distance.Metric{distance.Euclidean{}, wm} {
				qs := make([][]float64, 9)
				for i := range qs {
					qs[i] = data[rng.Intn(n)]
				}
				k := 1 + rng.Intn(70)
				batch, err := scan.SearchBatch(qs, k, m)
				if err != nil {
					t.Fatal(err)
				}
				for i, q := range qs {
					want, err := scan.Search(q, k, m)
					if err != nil {
						t.Fatal(err)
					}
					if !resultsBitwiseEqual(batch[i], want) {
						t.Fatalf("dim=%d n=%d k=%d metric=%s query %d: batch != search", dim, n, k, m.Name(), i)
					}
				}
			}
		}
	}
}

// TestSearchBatchGenericMetric: metrics without a kernel run the naive
// path query by query.
func TestSearchBatchGenericMetric(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	data := randomCollection(rng, 90, 5)
	scan, err := NewScan(data)
	if err != nil {
		t.Fatal(err)
	}
	qs := [][]float64{data[3], data[11], data[70]}
	batch, err := scan.SearchBatch(qs, 7, distance.Manhattan{})
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range qs {
		want, err := scan.Search(q, 7, distance.Manhattan{})
		if err != nil {
			t.Fatal(err)
		}
		if !resultsBitwiseEqual(batch[i], want) {
			t.Fatalf("query %d: generic batch != search", i)
		}
	}
}

// TestSearchBatchValidation covers batch error paths.
func TestSearchBatchValidation(t *testing.T) {
	scan, _ := NewScan([][]float64{{0, 0}, {1, 1}})
	if _, err := scan.SearchBatch([][]float64{{1, 2, 3}}, 1, distance.Euclidean{}); err == nil {
		t.Error("dimension mismatch should error")
	}
	if _, err := scan.SearchBatch([][]float64{{1, 2}}, 0, distance.Euclidean{}); err == nil {
		t.Error("k=0 should error")
	}
	out, err := scan.SearchBatch(nil, 3, distance.Euclidean{})
	if err != nil || len(out) != 0 {
		t.Errorf("empty batch: %v, %v", out, err)
	}
}

// TestParallelScanParity forces the sharded path (by lowering GOMAXPROCS
// interplay aside, the shard merge runs whenever workers > 1; here we
// call the internals directly to stay deterministic on 1-CPU hosts).
func TestParallelScanParity(t *testing.T) {
	rng := rand.New(rand.NewSource(505))
	data := randomCollection(rng, 2600, 32)
	scan, err := NewScan(data)
	if err != nil {
		t.Fatal(err)
	}
	kern, ok := distance.KernelFor(distance.Euclidean{})
	if !ok {
		t.Fatal("no kernel for Euclidean")
	}
	for trial := 0; trial < 5; trial++ {
		q := data[rng.Intn(len(data))]
		k := 1 + rng.Intn(80)
		want, err := scan.SearchNaive(q, k, distance.Euclidean{})
		if err != nil {
			t.Fatal(err)
		}
		// Emulate a W-way shard split with the same merge the parallel
		// path performs, for several worker counts.
		for _, workers := range []int{2, 3, 7} {
			n := scan.Len()
			merged := newScanState(k)
			for wkr := 0; wkr < workers; wkr++ {
				lo := wkr * n / workers
				hi := (wkr + 1) * n / workers
				st := newScanState(k)
				scanRows(scan.Matrix(), q, kern, lo, hi, &st)
				for _, r := range st.items {
					if r.Distance <= merged.bound2 {
						merged.offer(r.Index, r.Distance)
					}
				}
			}
			got := finishSquared(merged.items, k)
			if !resultsBitwiseEqual(got, want) {
				t.Fatalf("trial %d workers %d: sharded scan != naive", trial, workers)
			}
		}
	}
}

// TestSearchNaiveMatchesBruteSort anchors the reference path itself
// against a full sort, so the parity suite is not self-referential.
func TestSearchNaiveMatchesBruteSort(t *testing.T) {
	rng := rand.New(rand.NewSource(606))
	data := randomCollection(rng, 300, 4)
	scan, err := NewScan(data)
	if err != nil {
		t.Fatal(err)
	}
	m := distance.Euclidean{}
	q := data[17]
	all := make([]Result, len(data))
	for i, v := range data {
		all[i] = Result{Index: i, Distance: m.Distance(q, v)}
	}
	SortResults(all)
	for _, k := range []int{1, 5, 299, 300, 1000} {
		want := all
		if k < len(all) {
			want = all[:k]
		}
		got, err := scan.SearchNaive(q, k, m)
		if err != nil {
			t.Fatal(err)
		}
		if !resultsBitwiseEqual(got, want) {
			t.Fatalf("k=%d: naive != brute sort", k)
		}
	}
}

func ExampleScan_SearchBatch() {
	scan, _ := NewScan([][]float64{{0, 0}, {3, 4}, {6, 8}})
	res, _ := scan.SearchBatch([][]float64{{0, 0}, {6, 8}}, 2, distance.Euclidean{})
	for i, rs := range res {
		fmt.Printf("query %d:", i)
		for _, r := range rs {
			fmt.Printf(" (%d, %g)", r.Index, r.Distance)
		}
		fmt.Println()
	}
	// Output:
	// query 0: (0, 0) (1, 5)
	// query 1: (2, 0) (1, 5)
}

// TestParallelPathsUnderRaisedGOMAXPROCS exercises the real goroutine
// fan-out of Search (sharded scan) and SearchBatch (query split) even on
// single-CPU hosts by raising GOMAXPROCS, and asserts parity with the
// naive path.
func TestParallelPathsUnderRaisedGOMAXPROCS(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)

	rng := rand.New(rand.NewSource(707))
	data := randomCollection(rng, 3*minShardRows, 32)
	scan, err := NewScan(data)
	if err != nil {
		t.Fatal(err)
	}
	m := distance.Euclidean{}
	qs := make([][]float64, 8)
	for i := range qs {
		qs[i] = data[rng.Intn(len(data))]
	}
	batch, err := scan.SearchBatch(qs, 40, m)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range qs {
		want, err := scan.SearchNaive(q, 40, m)
		if err != nil {
			t.Fatal(err)
		}
		if !resultsBitwiseEqual(batch[i], want) {
			t.Fatalf("batch query %d diverges under GOMAXPROCS=4", i)
		}
		got, err := scan.Search(q, 40, m)
		if err != nil {
			t.Fatal(err)
		}
		if !resultsBitwiseEqual(got, want) {
			t.Fatalf("sharded search query %d diverges under GOMAXPROCS=4", i)
		}
	}
}
