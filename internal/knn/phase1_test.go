package knn

import (
	"math"
	"math/rand"
	"testing"
)

// TestPhase1AsmMatchesGo pins the arch-specific phase-1 kernel to the
// portable Go reference bit for bit: same survivor count, same survivor
// row ids, same stripe values. On amd64 this exercises the SSE2 routine;
// elsewhere it is a self-consistency check.
func TestPhase1AsmMatchesGo(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		rows := 1 + rng.Intn(DefaultBatchTile)
		slab := make([]float64, rows*32)
		for i := range slab {
			slab[i] = rng.NormFloat64()
		}
		q := make([]float64, 32)
		w := make([]float64, 32)
		for i := range q {
			q[i] = rng.NormFloat64()
			w[i] = rng.Float64() * 2
		}
		if trial%4 == 0 {
			w[rng.Intn(32)] = 0 // zero weights must be handled
		}
		var bound2 float64
		switch trial % 3 {
		case 0:
			bound2 = math.Inf(1) // everything survives
		case 1:
			bound2 = 0 // (almost) nothing survives
		default:
			bound2 = 10 + 20*rng.Float64()
		}

		for _, weighted := range []bool{false, true} {
			ref := struct {
				s0, s1, s2, s3 []float64
				surv           []int32
				c              int
			}{
				make([]float64, DefaultBatchTile), make([]float64, DefaultBatchTile), make([]float64, DefaultBatchTile),
				make([]float64, DefaultBatchTile), make([]int32, DefaultBatchTile), 0,
			}
			got := struct {
				s0, s1, s2, s3 []float64
				surv           []int32
				c              int
			}{
				make([]float64, DefaultBatchTile), make([]float64, DefaultBatchTile), make([]float64, DefaultBatchTile),
				make([]float64, DefaultBatchTile), make([]int32, DefaultBatchTile), 0,
			}
			if weighted {
				ref.c = phase1x32wGo(q, w, slab, rows, bound2, ref.s0, ref.s1, ref.s2, ref.s3, ref.surv)
				got.c = phase1x32w(&q[0], &w[0], &slab[0], rows, bound2, &got.s0[0], &got.s1[0], &got.s2[0], &got.s3[0], &got.surv[0])
			} else {
				ref.c = phase1x32Go(q, slab, rows, bound2, ref.s0, ref.s1, ref.s2, ref.s3, ref.surv)
				got.c = phase1x32(&q[0], &slab[0], rows, bound2, &got.s0[0], &got.s1[0], &got.s2[0], &got.s3[0], &got.surv[0])
			}
			if got.c != ref.c {
				t.Fatalf("trial %d weighted=%v: survivor count %d, want %d", trial, weighted, got.c, ref.c)
			}
			for j := 0; j < ref.c; j++ {
				if got.surv[j] != ref.surv[j] {
					t.Fatalf("trial %d weighted=%v: surv[%d] = %d, want %d", trial, weighted, j, got.surv[j], ref.surv[j])
				}
				if got.s0[j] != ref.s0[j] || got.s1[j] != ref.s1[j] || got.s2[j] != ref.s2[j] || got.s3[j] != ref.s3[j] {
					t.Fatalf("trial %d weighted=%v: stripes at %d = (%v,%v,%v,%v), want (%v,%v,%v,%v)",
						trial, weighted, j,
						got.s0[j], got.s1[j], got.s2[j], got.s3[j],
						ref.s0[j], ref.s1[j], ref.s2[j], ref.s3[j])
				}
			}

			// Continue the cascade one 8-dim segment at a time and keep
			// checking the arch kernel against the reference.
			for seg := 1; seg < 4 && ref.c > 0; seg++ {
				if weighted {
					ref.c = phaseNext8wGo(q[seg*8:seg*8+8], w[seg*8:seg*8+8], slab[seg*8:], ref.surv, ref.c, bound2, ref.s0, ref.s1, ref.s2, ref.s3)
					got.c = phaseNext8w(&q[seg*8], &w[seg*8], &slab[seg*8], &got.surv[0], got.c, bound2, &got.s0[0], &got.s1[0], &got.s2[0], &got.s3[0], rows)
				} else {
					ref.c = phaseNext8Go(q[seg*8:seg*8+8], slab[seg*8:], ref.surv, ref.c, bound2, ref.s0, ref.s1, ref.s2, ref.s3)
					got.c = phaseNext8(&q[seg*8], &slab[seg*8], &got.surv[0], got.c, bound2, &got.s0[0], &got.s1[0], &got.s2[0], &got.s3[0], rows)
				}
				if got.c != ref.c {
					t.Fatalf("trial %d weighted=%v seg %d: survivor count %d, want %d", trial, weighted, seg, got.c, ref.c)
				}
				for j := 0; j < ref.c; j++ {
					if got.surv[j] != ref.surv[j] ||
						got.s0[j] != ref.s0[j] || got.s1[j] != ref.s1[j] || got.s2[j] != ref.s2[j] || got.s3[j] != ref.s3[j] {
						t.Fatalf("trial %d weighted=%v seg %d: mismatch at survivor %d", trial, weighted, seg, j)
					}
				}
			}
		}
	}
}
