package knn

// Phase-kernel dispatch. The names phase1x32 etc. resolve per build to
// the SSE2 assembly (amd64, phase1_amd64.s) or the portable Go loops
// (phase1_generic.go); these selector variables are what the tiled scan
// actually calls, and the amd64 build swaps in the AVX2 kernels at init
// when the CPU supports them (phase1_avx2_amd64.go). All three tiers are
// bitwise identical — the parity tests compare them output-for-output —
// so dispatch is purely a throughput decision made once at startup.
var (
	phase1x32Sel   = phase1x32
	phase1x32wSel  = phase1x32w
	phaseNext8Sel  = phaseNext8
	phaseNext8wSel = phaseNext8w
)
