// Kernelized scan paths: squared-space comparison, early abandonment, a
// sharded parallel scan with a deterministic merge, and a cache-tiled
// batch scan. The naive path pays a virtual Metric.Distance call and a
// math.Sqrt per database vector; the kernel path walks the contiguous
// feature slab, compares candidates by their squared distance (monotone
// in the true distance), abandons a candidate as soon as its partial sum
// exceeds the current k-th best, and takes one square root per *reported
// result*. Batches additionally tile the collection into L2-sized row
// blocks so one streamed block serves every query in the batch — at
// paper scale a lone query is memory-bound (the whole feature slab
// streams through cache per search), so amortizing the stream across a
// query batch is where the large win lives. The parity property tests
// assert every path returns []Result identical to the generic path.
package knn

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"repro/internal/distance"
	"repro/internal/store"
)

// minShardRows is the smallest shard worth a goroutine: below this the
// spawn/merge overhead dominates the scan itself.
const minShardRows = 1024

// DefaultBatchTile is the default number of rows per cache block of the
// tiled batch scan: 512 rows × 32 dims × 8 B = 128 KiB, comfortably
// L2-resident while the batch's query vectors stay in L1. Callers whose
// working set differs — the ANN rerank path scans much shorter row runs —
// can tune it per Scan with SetBatchTile.
const DefaultBatchTile = 512

// scanWorkers returns how many shards to scan n rows with.
func scanWorkers(n int) int {
	w := runtime.GOMAXPROCS(0)
	if max := n / minShardRows; w > max {
		w = max
	}
	if w < 1 {
		w = 1
	}
	return w
}

// scanState carries one query's accumulation across row blocks: the k
// best candidates so far as a sorted insertion array in *squared* space,
// and the current abandon bound (the k-th best squared distance seen so
// far, +Inf until k candidates have been retained). A sorted array beats
// a binary heap here: scan loops pre-filter with bound2, so nearly every
// offer is a real insert, and a binary search plus a ≤ 800-byte memmove
// costs less than a heap sift's cascade of mispredicted compares — while
// keeping the same retained set under the (distance, index) total order.
type scanState struct {
	k      int
	items  []Result // ascending by (squared distance, index)
	bound2 float64
}

func newScanState(k int) scanState {
	return scanState{k: k, items: make([]Result, 0, k), bound2: math.Inf(1)}
}

// offer inserts a candidate with squared distance d2, keeping items
// sorted and at most k long, and refreshes bound2. Callers pre-filter
// with bound2, but offer is also correct for candidates beyond it. The
// insert position comes from a backward shift (insertion sort step), not
// a binary search: the shift loop's branch is perfectly predicted until
// the single exit, while a binary search eats one misprediction per
// level.
func (st *scanState) offer(idx int, d2 float64) {
	cand := Result{Index: idx, Distance: d2}
	items := st.items
	if len(items) < st.k {
		items = append(items, cand)
		j := len(items) - 1
		for j > 0 && worse(items[j-1], cand) {
			items[j] = items[j-1]
			j--
		}
		items[j] = cand
		st.items = items
		if len(items) == st.k {
			st.bound2 = items[st.k-1].Distance
		}
		return
	}
	j := st.k - 1
	if !worse(items[j], cand) {
		return
	}
	for j > 0 && worse(items[j-1], cand) {
		items[j] = items[j-1]
		j--
	}
	items[j] = cand
	st.bound2 = items[st.k-1].Distance
}

// searchKernel answers one k-NN query through the squared-space kernel,
// sharding the collection across workers when it is large enough.
func (s *Scan) searchKernel(q []float64, k int, kern distance.Kernel) []Result {
	n := s.mat.Len()
	workers := scanWorkers(n)
	if workers == 1 {
		st := newScanState(k)
		scanRows(s.mat, q, kern, 0, n, &st)
		return finishSquared(st.items, k)
	}
	// Contiguous shards keep each worker on one linear slab of the store.
	states := make([]scanState, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * n / workers
		hi := (w + 1) * n / workers
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			states[w] = newScanState(k)
			scanRows(s.mat, q, kern, lo, hi, &states[w])
		}(w, lo, hi)
	}
	wg.Wait()
	// Deterministic merge: the union of per-shard candidates is re-ranked
	// under the same (distance, index) total order regardless of worker
	// completion order; shard boundaries are pure functions of (n,
	// workers), so repeated runs see identical candidate sets.
	merged := newScanState(k)
	for w := range states {
		for _, r := range states[w].items {
			if r.Distance <= merged.bound2 {
				merged.offer(r.Index, r.Distance)
			}
		}
	}
	return finishSquared(merged.items, k)
}

// scanRows accumulates rows [lo, hi) into st in *squared* space: the
// state holds squared distances, whose (value, index) order matches the
// true-distance order because x ↦ √x is monotone. Dimensionality 32 (the
// paper's histogram width) dispatches to loops with compile-time-constant
// trip counts; other dimensionalities go through the canonical
// vec-backed kernel, so every path produces sums bitwise identical to
// the naive Metric implementations. Abandon-check cadence varies by
// loop; cadence only changes how much of a doomed row is read, never a
// surviving sum.
func scanRows(mat store.Backend, q []float64, kern distance.Kernel, lo, hi int, st *scanState) {
	dim := mat.Dim()
	if dim == 32 {
		if kern.Weights() == nil {
			scanRows32(mat, q, lo, hi, st)
		} else {
			scanRows32W(mat, q, kern.Weights(), lo, hi, st)
		}
		return
	}
	bound2 := st.bound2
	slab := mat.Slab(lo, hi)
	for i := lo; i < hi; i++ {
		off := (i - lo) * dim
		row := slab[off : off+dim : off+dim]
		s, abandoned := kern.SquaredAbandon(q, row, bound2)
		if abandoned {
			continue
		}
		st.offer(i, s)
		bound2 = st.bound2
	}
}

// scanRows32 is the unweighted D=32 fast path: four 8-element blocks with
// constant indices, abandon check per block.
func scanRows32(mat store.Backend, q []float64, lo, hi int, st *scanState) {
	bound2 := st.bound2
	slab := mat.Slab(lo, hi)
	q = q[:32]
	for i := lo; i < hi; i++ {
		off := (i - lo) * 32
		row := slab[off : off+32 : off+32]
		var s0, s1, s2, s3 float64
		abandoned := false
		for blk := 0; blk < 32; blk += 8 {
			qq := q[blk : blk+8 : blk+8]
			rr := row[blk : blk+8 : blk+8]
			d0 := qq[0] - rr[0]
			s0 += d0 * d0
			d1 := qq[1] - rr[1]
			s1 += d1 * d1
			d2 := qq[2] - rr[2]
			s2 += d2 * d2
			d3 := qq[3] - rr[3]
			s3 += d3 * d3
			d4 := qq[4] - rr[4]
			s0 += d4 * d4
			d5 := qq[5] - rr[5]
			s1 += d5 * d5
			d6 := qq[6] - rr[6]
			s2 += d6 * d6
			d7 := qq[7] - rr[7]
			s3 += d7 * d7
			if (s0+s1)+(s2+s3) > bound2 {
				abandoned = true
				break
			}
		}
		if abandoned {
			continue
		}
		s := (s0 + s1) + (s2 + s3)
		if s <= bound2 {
			st.offer(i, s)
			bound2 = st.bound2
		}
	}
}

// scanRows32W is the weighted D=32 fast path.
func scanRows32W(mat store.Backend, q, w []float64, lo, hi int, st *scanState) {
	bound2 := st.bound2
	slab := mat.Slab(lo, hi)
	q = q[:32]
	w = w[:32]
	for i := lo; i < hi; i++ {
		off := (i - lo) * 32
		row := slab[off : off+32 : off+32]
		var s0, s1, s2, s3 float64
		abandoned := false
		for blk := 0; blk < 32; blk += 8 {
			qq := q[blk : blk+8 : blk+8]
			rr := row[blk : blk+8 : blk+8]
			ww := w[blk : blk+8 : blk+8]
			d0 := qq[0] - rr[0]
			s0 += ww[0] * d0 * d0
			d1 := qq[1] - rr[1]
			s1 += ww[1] * d1 * d1
			d2 := qq[2] - rr[2]
			s2 += ww[2] * d2 * d2
			d3 := qq[3] - rr[3]
			s3 += ww[3] * d3 * d3
			d4 := qq[4] - rr[4]
			s0 += ww[4] * d4 * d4
			d5 := qq[5] - rr[5]
			s1 += ww[5] * d5 * d5
			d6 := qq[6] - rr[6]
			s2 += ww[6] * d6 * d6
			d7 := qq[7] - rr[7]
			s3 += ww[7] * d7 * d7
			if (s0+s1)+(s2+s3) > bound2 {
				abandoned = true
				break
			}
		}
		if abandoned {
			continue
		}
		s := (s0 + s1) + (s2 + s3)
		if s <= bound2 {
			st.offer(i, s)
			bound2 = st.bound2
		}
	}
}

// finishSquared converts squared-space candidates into final results: one
// sqrt per result, then the canonical (distance, index) sort.
func finishSquared(items []Result, k int) []Result {
	for i := range items {
		items[i].Distance = math.Sqrt(items[i].Distance)
	}
	SortResults(items)
	if len(items) > k {
		items = items[:k]
	}
	return items
}

// SearchBatch answers many queries under one metric. With a kernel
// metric, queries are answered through the cache-tiled batch scan —
// every L2-sized row block is streamed from memory once and served to
// all queries — and the batch is split across GOMAXPROCS workers.
// Results are positionally aligned with qs and identical to calling
// Search per query: each query still visits rows in ascending order with
// its own TopK and abandon bound. Metrics without a kernel are answered
// sequentially, since the Metric interface does not promise goroutine
// safety.
func (s *Scan) SearchBatch(qs [][]float64, k int, m distance.Metric) ([][]Result, error) {
	ms := make([]distance.Metric, len(qs))
	for i := range ms {
		ms[i] = m
	}
	return s.SearchBatchMulti(qs, k, ms)
}

// SearchBatchMulti is SearchBatch with one metric per query — the shape
// of the feedback harness, where every retrieval carries its own learned
// weight vector. All queries still share each streamed cache block, so
// mixed-metric batches keep the memory amortization. If any metric lacks
// a kernel, or the batch is a singleton (which the sharded Search serves
// with more parallelism), queries fall back to Search one by one.
func (s *Scan) SearchBatchMulti(qs [][]float64, k int, ms []distance.Metric) ([][]Result, error) {
	if len(ms) != len(qs) {
		return nil, fmt.Errorf("knn: %d queries but %d metrics", len(qs), len(ms))
	}
	for i, q := range qs {
		if err := s.checkQuery(q, k); err != nil {
			return nil, fmt.Errorf("knn: batch query %d: %w", i, err)
		}
	}
	out := make([][]Result, len(qs))
	kerns := make([]distance.Kernel, len(qs))
	allKern := true
	for i, m := range ms {
		var ok bool
		if kerns[i], ok = distance.KernelFor(m); !ok {
			allKern = false
			break
		}
	}
	if !allKern || len(qs) == 1 {
		for i, q := range qs {
			res, err := s.Search(q, k, ms[i])
			if err != nil {
				return nil, err
			}
			out[i] = res
		}
		return out, nil
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(qs) {
		workers = len(qs)
	}
	if workers <= 1 {
		s.scanBatchTiled(qs, k, kerns, out, 0, len(qs))
		return out, nil
	}
	// Split the query batch across workers; each worker tiles its share
	// of queries over the collection.
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * len(qs) / workers
		hi := (w + 1) * len(qs) / workers
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			s.scanBatchTiled(qs, k, kerns, out, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	return out, nil
}

// tileBufs are the per-worker scratch buffers of the phased tile scan:
// the four stripe accumulators of every row in the tile, and the
// survivor row lists between phases.
type tileBufs struct {
	s0, s1, s2, s3 []float64
	surv           []int32
}

func newTileBufs(tile int) *tileBufs {
	return &tileBufs{
		s0:   make([]float64, tile),
		s1:   make([]float64, tile),
		s2:   make([]float64, tile),
		s3:   make([]float64, tile),
		surv: make([]int32, tile),
	}
}

// scanBatchTiled processes queries qs[qlo:qhi] against the whole
// collection, tiling rows into L2-sized blocks: the outer loop streams
// one block, the inner loop advances every query's scan state across it.
// Per query this offers candidates in exactly the row order 0..n-1 with
// exactly the sums a standalone Search computes, so the result list is
// identical to per-query Search.
//
// At D = 32 each tile runs a branch-free vertical cascade instead of the
// abandoning row loop: dims [0,8) are accumulated for every row with
// survivors compacted against the tile-entry bound, then three more
// 8-dimension passes extend the shrinking survivor set, and final sums
// within the live bound are offered. Early abandonment's per-row exit
// branch mispredicts on nearly every row inside a hot tile and costs
// more than the arithmetic it skips; the cascade's filters are branchless
// cursor advances. Filtering against the tile-entry bound (always ≥ the
// live bound) can only keep extra candidates, never drop one a
// sequential scan would keep — the final live-bound check restores
// exactness.
func (s *Scan) scanBatchTiled(qs [][]float64, k int, kerns []distance.Kernel, out [][]Result, qlo, qhi int) {
	n, dim := s.mat.Len(), s.mat.Dim()
	states := make([]scanState, qhi-qlo)
	for i := range states {
		states[i] = newScanState(k)
	}
	tile := s.tile()
	var bufs *tileBufs
	if dim == 32 {
		bufs = newTileBufs(tile)
	}
	for blockLo := 0; blockLo < n; blockLo += tile {
		blockHi := blockLo + tile
		if blockHi > n {
			blockHi = n
		}
		for qi := qlo; qi < qhi; qi++ {
			st := &states[qi-qlo]
			if dim != 32 {
				scanRows(s.mat, qs[qi], kerns[qi], blockLo, blockHi, st)
				continue
			}
			if w := kerns[qi].Weights(); w == nil {
				scanTile32(s.mat, qs[qi], blockLo, blockHi, st, bufs)
			} else {
				scanTile32W(s.mat, qs[qi], w, blockLo, blockHi, st, bufs)
			}
		}
	}
	for qi := qlo; qi < qhi; qi++ {
		out[qi] = finishSquared(states[qi-qlo].items, k)
	}
}

// scanTile32 runs the four-pass cascade over rows [blockLo, blockHi) for
// one unweighted query at D = 32, through the phase kernels (SSE2 on
// amd64, identical Go loops elsewhere — phase1.go).
func scanTile32(mat store.Backend, q []float64, blockLo, blockHi int, st *scanState, b *tileBufs) {
	rows := blockHi - blockLo
	slab := mat.Slab(blockLo, blockHi)
	bound2 := st.bound2
	q = q[:32]
	s0b, s1b, s2b, s3b := b.s0, b.s1, b.s2, b.s3
	surv := b.surv
	c := phase1x32Sel(&q[0], &slab[0], rows, bound2, &s0b[0], &s1b[0], &s2b[0], &s3b[0], &surv[0])
	c = phaseNext8Sel(&q[8], &slab[8], &surv[0], c, bound2, &s0b[0], &s1b[0], &s2b[0], &s3b[0], rows)
	c = phaseNext8Sel(&q[16], &slab[16], &surv[0], c, bound2, &s0b[0], &s1b[0], &s2b[0], &s3b[0], rows)
	c = phaseNext8Sel(&q[24], &slab[24], &surv[0], c, bound2, &s0b[0], &s1b[0], &s2b[0], &s3b[0], rows)
	for j := 0; j < c; j++ {
		if sum := (s0b[j] + s1b[j]) + (s2b[j] + s3b[j]); sum <= bound2 {
			st.offer(blockLo+int(surv[j]), sum)
			bound2 = st.bound2
		}
	}
	st.bound2 = bound2
}

// scanTile32W is the weighted counterpart of scanTile32.
func scanTile32W(mat store.Backend, q, w []float64, blockLo, blockHi int, st *scanState, b *tileBufs) {
	rows := blockHi - blockLo
	slab := mat.Slab(blockLo, blockHi)
	bound2 := st.bound2
	q = q[:32]
	w = w[:32]
	s0b, s1b, s2b, s3b := b.s0, b.s1, b.s2, b.s3
	surv := b.surv
	c := phase1x32wSel(&q[0], &w[0], &slab[0], rows, bound2, &s0b[0], &s1b[0], &s2b[0], &s3b[0], &surv[0])
	c = phaseNext8wSel(&q[8], &w[8], &slab[8], &surv[0], c, bound2, &s0b[0], &s1b[0], &s2b[0], &s3b[0], rows)
	c = phaseNext8wSel(&q[16], &w[16], &slab[16], &surv[0], c, bound2, &s0b[0], &s1b[0], &s2b[0], &s3b[0], rows)
	c = phaseNext8wSel(&q[24], &w[24], &slab[24], &surv[0], c, bound2, &s0b[0], &s1b[0], &s2b[0], &s3b[0], rows)
	for j := 0; j < c; j++ {
		if sum := (s0b[j] + s1b[j]) + (s2b[j] + s3b[j]); sum <= bound2 {
			st.offer(blockLo+int(surv[j]), sum)
			bound2 = st.bound2
		}
	}
	st.bound2 = bound2
}
