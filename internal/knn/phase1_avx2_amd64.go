//go:build amd64

package knn

import "repro/internal/vec"

// AVX2 phase kernels (phase1_avx2_amd64.s): one 4-lane ymm register
// carries all four stripe accumulators, so each row's eight dimensions
// take two packed sub/mul/add sequences instead of four SSE2 ones. No
// FMA — its fused rounding would break bitwise parity with the scalar
// and SSE2 tiers. Selected at init when the CPU supports AVX2.

func phase1x32AVX2(q, slab *float64, rows int, bound2 float64, s0b, s1b, s2b, s3b *float64, surv *int32) int

func phase1x32wAVX2(q, w, slab *float64, rows int, bound2 float64, s0b, s1b, s2b, s3b *float64, surv *int32) int

func phaseNext8AVX2(q8, slab8 *float64, surv *int32, count int, bound2 float64, s0b, s1b, s2b, s3b *float64, rows int) int

func phaseNext8wAVX2(q8, w8, slab8 *float64, surv *int32, count int, bound2 float64, s0b, s1b, s2b, s3b *float64, rows int) int

func init() {
	if vec.HasAVX2() {
		phase1x32Sel = phase1x32AVX2
		phase1x32wSel = phase1x32wAVX2
		phaseNext8Sel = phaseNext8AVX2
		phaseNext8wSel = phaseNext8wAVX2
	}
}
