//go:build !amd64

package knn

import "unsafe"

// phase1x32 delegates to the portable Go implementation on architectures
// without an assembly kernel.
func phase1x32(q, slab *float64, rows int, bound2 float64, s0b, s1b, s2b, s3b *float64, surv *int32) int {
	return phase1x32Go(
		unsafe.Slice(q, 32), unsafe.Slice(slab, rows*32), rows, bound2,
		unsafe.Slice(s0b, rows), unsafe.Slice(s1b, rows), unsafe.Slice(s2b, rows), unsafe.Slice(s3b, rows),
		unsafe.Slice(surv, rows))
}

// phase1x32w delegates to the portable weighted Go implementation.
func phase1x32w(q, w, slab *float64, rows int, bound2 float64, s0b, s1b, s2b, s3b *float64, surv *int32) int {
	return phase1x32wGo(
		unsafe.Slice(q, 32), unsafe.Slice(w, 32), unsafe.Slice(slab, rows*32), rows, bound2,
		unsafe.Slice(s0b, rows), unsafe.Slice(s1b, rows), unsafe.Slice(s2b, rows), unsafe.Slice(s3b, rows),
		unsafe.Slice(surv, rows))
}

// phaseNext8 delegates to the portable continuation kernel. The slab
// view length rows*32-24 is the furthest element any pass reads (the
// last row's 8-dim segment at the deepest offset) and is within the
// allocation for every segment offset (8, 16, or 24 dims in), so the
// view never extends past the feature matrix even on a short final
// tile.
func phaseNext8(q8, slab8 *float64, surv *int32, count int, bound2 float64, s0b, s1b, s2b, s3b *float64, rows int) int {
	return phaseNext8Go(
		unsafe.Slice(q8, 8), unsafe.Slice(slab8, rows*32-24), unsafe.Slice(surv, rows), count, bound2,
		unsafe.Slice(s0b, rows), unsafe.Slice(s1b, rows), unsafe.Slice(s2b, rows), unsafe.Slice(s3b, rows))
}

// phaseNext8w delegates to the portable weighted continuation kernel.
func phaseNext8w(q8, w8, slab8 *float64, surv *int32, count int, bound2 float64, s0b, s1b, s2b, s3b *float64, rows int) int {
	return phaseNext8wGo(
		unsafe.Slice(q8, 8), unsafe.Slice(w8, 8), unsafe.Slice(slab8, rows*32-24), unsafe.Slice(surv, rows), count, bound2,
		unsafe.Slice(s0b, rows), unsafe.Slice(s1b, rows), unsafe.Slice(s2b, rows), unsafe.Slice(s3b, rows))
}
