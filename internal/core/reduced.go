package core

import (
	"errors"
	"fmt"

	"repro/internal/geom"
	"repro/internal/reduce"
	"repro/internal/simplextree"
	"repro/internal/vec"
)

// ReducedBypass is a FeedbackBypass module whose Simplex Tree lives in a
// PCA-reduced query domain (the paper's §3 future-work direction, package
// reduce). Queries are projected to k dimensions before lookup and
// insertion, while the stored OQPs keep their full dimensionality — the
// tree learns a mapping [0,1]^k → R^(D+P). Lower k means denser training
// coverage per region (inserts split into k+1 children instead of D+1) at
// the cost of collapsing queries that differ only along discarded
// components.
type ReducedBypass struct {
	tree    *simplextree.Tree
	reducer *reduce.Reducer
	d, p    int
}

// NewReduced builds a module over the reducer's k-dimensional domain for
// OQPs with a D-dimensional offset and P weight parameters.
func NewReduced(reducer *reduce.Reducer, d, p int, cfg Config) (*ReducedBypass, error) {
	if reducer == nil {
		return nil, errors.New("core: nil reducer")
	}
	if d <= 0 || p < 0 {
		return nil, fmt.Errorf("core: invalid dimensions D=%d, P=%d", d, p)
	}
	defW := cfg.DefaultWeights
	if defW == nil {
		defW = vec.Ones(p)
	}
	if len(defW) != p {
		return nil, fmt.Errorf("core: default weights have dimension %d, want %d", len(defW), p)
	}
	def := OQP{Delta: vec.Zeros(d), Weights: vec.Clone(defW)}
	tree, err := simplextree.New(geom.CoveringSimplex(reducer.K()), def.Encode(), simplextree.Options{
		Epsilon: cfg.Epsilon,
		Tol:     cfg.Tol,
	})
	if err != nil {
		return nil, err
	}
	return &ReducedBypass{tree: tree, reducer: reducer, d: d, p: p}, nil
}

// D returns the OQP offset dimensionality.
func (b *ReducedBypass) D() int { return b.d }

// P returns the number of weight parameters.
func (b *ReducedBypass) P() int { return b.p }

// K returns the reduced query-domain dimensionality.
func (b *ReducedBypass) K() int { return b.reducer.K() }

// Tree exposes the underlying Simplex Tree.
func (b *ReducedBypass) Tree() *simplextree.Tree { return b.tree }

// Predict projects the full-dimensional query point and interpolates the
// OQPs in the reduced domain.
func (b *ReducedBypass) Predict(q []float64) (OQP, error) {
	rq, err := b.reducer.Project(q)
	if err != nil {
		return OQP{}, err
	}
	raw, err := b.tree.Predict(rq)
	if err != nil {
		return OQP{}, err
	}
	return DecodeOQP(raw, b.d, b.p)
}

// Insert stores the OQPs observed for the full-dimensional query point q.
func (b *ReducedBypass) Insert(q []float64, oqp OQP) (bool, error) {
	if len(oqp.Delta) != b.d || len(oqp.Weights) != b.p {
		return false, fmt.Errorf("core: OQP dimensions (%d, %d), want (%d, %d)", len(oqp.Delta), len(oqp.Weights), b.d, b.p)
	}
	if !vec.IsFinite(oqp.Delta) || !vec.IsFinite(oqp.Weights) {
		return false, errors.New("core: OQP contains non-finite values")
	}
	rq, err := b.reducer.Project(q)
	if err != nil {
		return false, err
	}
	return b.tree.Insert(rq, oqp.Encode())
}

// Stats reports the tree shape.
func (b *ReducedBypass) Stats() simplextree.Stats { return b.tree.Stats() }
