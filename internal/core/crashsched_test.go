package core

import (
	"encoding/binary"
	"math"
	"math/rand"
	"testing"

	"repro/internal/faultfs"
	"repro/internal/simplextree"
)

// vertexSet collects a tree's distinct vertices as bitwise keys
// (Point ++ Value, raw float64 bits) — the exact-recovery currency of
// the crash-schedule harness.
func vertexSet(tree *simplextree.Tree) map[string]bool {
	set := make(map[string]bool)
	tree.Walk(func(v *simplextree.Vertex) {
		buf := make([]byte, 0, 8*(len(v.Point)+len(v.Value)))
		var b [8]byte
		for _, x := range v.Point {
			binary.LittleEndian.PutUint64(b[:], math.Float64bits(x))
			buf = append(buf, b[:]...)
		}
		for _, x := range v.Value {
			binary.LittleEndian.PutUint64(b[:], math.Float64bits(x))
			buf = append(buf, b[:]...)
		}
		set[string(buf)] = true
	})
	return set
}

// crashWorkload drives a fixed deterministic insert schedule against a
// DurableBypass opened through fs. It returns the module (nil when the
// open itself died at the crash point); insert errors are expected once
// the crash fires and are swallowed.
func crashWorkload(t *testing.T, dir string, fs *faultfs.FS) *DurableBypass {
	t.Helper()
	const d, p = 3, 2
	db, err := OpenDurable(dir, d, p, Config{Epsilon: 0}, DurableOptions{
		CompactEvery: 4,
		Sync:         true,
		FS:           fs,
	})
	if err != nil {
		return nil
	}
	rng := rand.New(rand.NewSource(41))
	for i := 0; i < 12; i++ {
		q := randomSimplexPoint(rng, d)
		oqp := randomOQP(rng, d, p)
		_, _ = db.Insert(q, oqp) // post-crash failures are the point
	}
	return db
}

// TestCrashScheduleSingleTree enumerates every crash point along
// insert → WAL-append → compact for the single-tree layout: a counting
// run measures the schedule length M, then for each n in 1..M a fresh
// module runs the same workload with a kill at the nth mutating
// filesystem operation (torn write at the point itself, nothing after).
// Recovery from the real on-disk state must contain the crash-time
// in-memory tree bitwise: the write-ahead contract means the journal can
// never lag the tree, so nothing acknowledged may be missing. Recovery
// may exceed it by at most the one insert in flight at the crash — a
// record fully written whose fsync (or rollback-truncate) died is
// un-acknowledged but complete on disk, and replays.
func TestCrashScheduleSingleTree(t *testing.T) {
	const d, p = 3, 2

	counting := faultfs.New(nil)
	db := crashWorkload(t, t.TempDir(), counting)
	if db == nil {
		t.Fatal("counting run failed to open")
	}
	m := counting.Ops()
	if m < 20 {
		t.Fatalf("suspiciously short schedule: %d mutating ops", m)
	}
	if db.Journaled() >= 12 {
		t.Fatalf("no compaction happened in the workload (journaled=%d); the schedule misses the compact path", db.Journaled())
	}
	t.Logf("crash schedule: %d mutating filesystem operations", m)

	for n := 1; n <= m; n++ {
		dir := t.TempDir()
		fs := faultfs.New(nil)
		fs.SetCrashAt(n)
		db := crashWorkload(t, dir, fs)
		if !fs.Crashed() {
			t.Fatalf("crash point %d never fired", n)
		}
		var want map[string]bool
		if db != nil {
			want = vertexSet(db.Tree())
		}

		recovered, err := OpenDurable(dir, d, p, Config{Epsilon: 0}, DurableOptions{})
		if err != nil {
			t.Fatalf("crash point %d/%d: recovery failed: %v", n, m, err)
		}
		got := vertexSet(recovered.Tree())
		if err := recovered.Close(); err != nil {
			t.Fatalf("crash point %d/%d: closing recovered module: %v", n, m, err)
		}
		for k := range want {
			if !got[k] {
				t.Fatalf("crash point %d/%d: acknowledged vertex lost in recovery (%d recovered, %d expected)", n, m, len(got), len(want))
			}
		}
		if db != nil && len(got) > len(want)+1 {
			t.Fatalf("crash point %d/%d: recovered %d vertices, crash-time tree had %d (more than the one in-flight insert extra)", n, m, len(got), len(want))
		}
	}
}
