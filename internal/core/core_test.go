package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/simplextree"
	"repro/internal/vec"
)

func TestOQPEncodeDecodeRoundTrip(t *testing.T) {
	o := OQP{Delta: []float64{1, 2}, Weights: []float64{3, 4, 5}}
	enc := o.Encode()
	if !vec.Equal(enc, []float64{1, 2, 3, 4, 5}) {
		t.Fatalf("Encode = %v", enc)
	}
	back, err := DecodeOQP(enc, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !vec.Equal(back.Delta, o.Delta) || !vec.Equal(back.Weights, o.Weights) {
		t.Errorf("round trip = %+v", back)
	}
	if _, err := DecodeOQP(enc, 3, 3); err == nil {
		t.Error("bad split should error")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 2, Config{}); err == nil {
		t.Error("D=0 should error")
	}
	if _, err := New(2, -1, Config{}); err == nil {
		t.Error("P<0 should error")
	}
	if _, err := New(3, 3, Config{Domain: geom.StandardSimplex(2)}); err == nil {
		t.Error("domain dimension mismatch should error")
	}
	b, err := New(2, 2, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if b.D() != 2 || b.P() != 2 {
		t.Errorf("D=%d P=%d", b.D(), b.P())
	}
}

func TestUntrainedPredictsDefaults(t *testing.T) {
	b, err := New(3, 3, Config{})
	if err != nil {
		t.Fatal(err)
	}
	oqp, err := b.Predict([]float64{0.2, 0.2, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if !vec.EqualTol(oqp.Delta, []float64{0, 0, 0}, 1e-9) {
		t.Errorf("default Δ = %v", oqp.Delta)
	}
	if !vec.EqualTol(oqp.Weights, []float64{1, 1, 1}, 1e-9) {
		t.Errorf("default W = %v", oqp.Weights)
	}
}

func TestInsertPredictRoundTrip(t *testing.T) {
	b, err := New(2, 2, Config{})
	if err != nil {
		t.Fatal(err)
	}
	q := []float64{0.3, 0.3}
	in := OQP{Delta: []float64{0.05, -0.02}, Weights: []float64{2, 0.5}}
	changed, err := b.Insert(q, in)
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Fatal("insert should store")
	}
	out, err := b.Predict(q)
	if err != nil {
		t.Fatal(err)
	}
	if !vec.EqualTol(out.Delta, in.Delta, 1e-9) || !vec.EqualTol(out.Weights, in.Weights, 1e-9) {
		t.Errorf("predict after insert = %+v", out)
	}
}

func TestInsertValidation(t *testing.T) {
	b, _ := New(2, 2, Config{})
	q := []float64{0.3, 0.3}
	if _, err := b.Insert(q, OQP{Delta: []float64{1}, Weights: []float64{1, 1}}); err == nil {
		t.Error("Δ length mismatch should error")
	}
	if _, err := b.Insert(q, OQP{Delta: []float64{0, 0}, Weights: []float64{1}}); err == nil {
		t.Error("W length mismatch should error")
	}
	if _, err := b.Insert(q, OQP{Delta: []float64{math.NaN(), 0}, Weights: []float64{1, 1}}); err == nil {
		t.Error("NaN OQP should error")
	}
}

func TestDefaultWeightsConfig(t *testing.T) {
	b, err := New(2, 2, Config{DefaultWeights: []float64{0, 0}})
	if err != nil {
		t.Fatal(err)
	}
	oqp, err := b.Predict([]float64{0.2, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if !vec.EqualTol(oqp.Weights, []float64{0, 0}, 1e-12) {
		t.Errorf("default weights = %v", oqp.Weights)
	}
	if _, err := New(2, 2, Config{DefaultWeights: []float64{1}}); err == nil {
		t.Error("wrong-length default weights should error")
	}
}

func TestFromTree(t *testing.T) {
	tree, err := simplextree.New(geom.StandardSimplex(2), vec.Zeros(5), simplextree.Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := FromTree(tree, 3)
	if err != nil {
		t.Fatal(err)
	}
	if b.D() != 2 || b.P() != 3 {
		t.Errorf("D=%d P=%d", b.D(), b.P())
	}
	if _, err := FromTree(tree, 4); err == nil {
		t.Error("inconsistent P should error")
	}
	if _, err := FromTree(nil, 1); err == nil {
		t.Error("nil tree should error")
	}
	if b.Tree() != tree {
		t.Error("Tree accessor")
	}
}

func TestStats(t *testing.T) {
	b, _ := New(2, 2, Config{})
	st := b.Stats()
	if st.Points != 0 || st.Leaves != 1 {
		t.Errorf("empty stats = %+v", st)
	}
}

func TestHistogramCodecValidation(t *testing.T) {
	if _, err := NewHistogramCodec(1); err == nil {
		t.Error("1 bin should error")
	}
	c, err := NewHistogramCodec(4)
	if err != nil {
		t.Fatal(err)
	}
	if c.D() != 3 || c.P() != 3 {
		t.Errorf("D=%d P=%d", c.D(), c.P())
	}
}

func TestHistogramCodecQueryPoint(t *testing.T) {
	c, _ := NewHistogramCodec(4)
	q, err := c.QueryPoint([]float64{0.4, 0.3, 0.2, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if !vec.Equal(q, []float64{0.4, 0.3, 0.2}) {
		t.Errorf("QueryPoint = %v", q)
	}
	if _, err := c.QueryPoint([]float64{1, 2}); err == nil {
		t.Error("wrong length should error")
	}
}

func TestHistogramCodecEncodeDecodeRoundTrip(t *testing.T) {
	c, _ := NewHistogramCodec(4)
	q := []float64{0.4, 0.3, 0.2, 0.1}
	qopt := []float64{0.35, 0.35, 0.15, 0.15}
	w := []float64{2, 1, 0.5, 0.25}
	oqp, err := c.EncodeOQP(q, qopt, w)
	if err != nil {
		t.Fatal(err)
	}
	// Weights are stored as log-ratios against the pinned last weight.
	want := []float64{math.Log(8), math.Log(4), math.Log(2)}
	if !vec.EqualTol(oqp.Weights, want, 1e-12) {
		t.Errorf("encoded W = %v, want %v", oqp.Weights, want)
	}
	backQ, backW, err := c.DecodeOQP(q, oqp)
	if err != nil {
		t.Fatal(err)
	}
	if !vec.EqualTol(backQ, qopt, 1e-12) {
		t.Errorf("decoded qopt = %v, want %v", backQ, qopt)
	}
	// Decoded weights are the original scaled by 1/w_last — the same
	// metric up to a global factor.
	for i := range w {
		wantW := w[i] / w[3]
		if math.Abs(backW[i]-wantW) > 1e-9 {
			t.Errorf("decoded w[%d] = %v, want %v", i, backW[i], wantW)
		}
	}
}

func TestHistogramCodecLogClamping(t *testing.T) {
	c, _ := NewHistogramCodec(3)
	q := []float64{0.5, 0.3, 0.2}
	// Extreme weight ratio: clamped to MaxLogWeight at encode time.
	oqp, err := c.EncodeOQP(q, q, []float64{1e30, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if oqp.Weights[0] != MaxLogWeight {
		t.Errorf("encoded extreme ratio = %v", oqp.Weights[0])
	}
	// Negative or zero weights are rejected.
	if _, err := c.EncodeOQP(q, q, []float64{0, 1, 1}); err == nil {
		t.Error("zero weight should error")
	}
	if _, err := c.EncodeOQP(q, q, []float64{-1, 1, 1}); err == nil {
		t.Error("negative weight should error")
	}
	if !vec.Equal(c.DefaultWeights(), []float64{0, 0}) {
		t.Errorf("DefaultWeights = %v", c.DefaultWeights())
	}
}

func TestHistogramCodecDecodeClamps(t *testing.T) {
	c, _ := NewHistogramCodec(3)
	q := []float64{0.5, 0.5, 0}
	// A delta pushing component 1 negative and last bin negative, plus
	// out-of-range and NaN log-ratios.
	oqp := OQP{Delta: []float64{0.2, -0.6}, Weights: []float64{-50, math.NaN()}}
	qopt, w, err := c.DecodeOQP(q, oqp)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range qopt {
		if x < 0 {
			t.Errorf("qopt[%d] = %v negative", i, x)
		}
	}
	if w[0] != math.Exp(-MaxLogWeight) {
		t.Errorf("clamped low weight = %v", w[0])
	}
	if w[1] != 1 { // NaN log-ratio decodes to the neutral weight
		t.Errorf("NaN weight decoded to %v", w[1])
	}
	if w[2] != 1 {
		t.Errorf("pinned weight = %v", w[2])
	}
}

func TestHistogramCodecErrors(t *testing.T) {
	c, _ := NewHistogramCodec(3)
	good := []float64{0.3, 0.3, 0.4}
	if _, err := c.EncodeOQP(good, good, []float64{1, 1}); err == nil {
		t.Error("short weights should error")
	}
	if _, err := c.EncodeOQP(good, good, []float64{1, 1, 0}); err == nil {
		t.Error("zero pinned weight should error")
	}
	if _, _, err := c.DecodeOQP([]float64{1}, OQP{}); err == nil {
		t.Error("short query should error")
	}
	if _, _, err := c.DecodeOQP(good, OQP{Delta: []float64{1}, Weights: []float64{1, 1}}); err == nil {
		t.Error("short OQP should error")
	}
}

func TestEndToEndHistogramFlow(t *testing.T) {
	// Full Example 1 flow at small scale: histograms with 4 bins, learn a
	// mapping, predict for a nearby query.
	c, _ := NewHistogramCodec(4)
	b, err := New(c.D(), c.P(), Config{DefaultWeights: c.DefaultWeights()})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	// Train on queries around (0.4, 0.3, 0.2, 0.1) whose optimum shifts
	// mass to bin 0 and weights bin 0 heavily.
	for i := 0; i < 10; i++ {
		q := []float64{0.4 + rng.Float64()*0.05, 0.3, 0.2, 0}
		q[3] = 1 - q[0] - q[1] - q[2]
		qopt := vec.Clone(q)
		qopt[0] += 0.05
		qopt[3] -= 0.05
		w := []float64{4, 1, 1, 1}
		oqp, err := c.EncodeOQP(q, qopt, w)
		if err != nil {
			t.Fatal(err)
		}
		qp, err := c.QueryPoint(q)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := b.Insert(qp, oqp); err != nil {
			t.Fatal(err)
		}
	}
	// A new query in the trained region should predict a positive Δ on
	// bin 0 and an elevated weight on bin 0.
	q := []float64{0.42, 0.3, 0.2, 0.08}
	qp, _ := c.QueryPoint(q)
	oqp, err := b.Predict(qp)
	if err != nil {
		t.Fatal(err)
	}
	qopt, w, err := c.DecodeOQP(q, oqp)
	if err != nil {
		t.Fatal(err)
	}
	if qopt[0] <= q[0] {
		t.Errorf("predicted qopt[0] = %v, want > %v", qopt[0], q[0])
	}
	if w[0] <= 1.5 {
		t.Errorf("predicted w[0] = %v, want elevated", w[0])
	}
}
