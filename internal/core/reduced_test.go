package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/reduce"
	"repro/internal/vec"
)

// clusterSamples draws query points from two well-separated clusters on a
// 2-D manifold inside a high-dimensional space.
func clusterSamples(rng *rand.Rand, n, dim int) (samples [][]float64, labels []int) {
	dir := make([]float64, dim)
	for i := range dir {
		dir[i] = math.Sin(float64(i + 1))
	}
	for s := 0; s < n; s++ {
		label := s % 2
		center := 1.0
		if label == 1 {
			center = -1.0
		}
		v := make([]float64, dim)
		for i := 0; i < dim; i++ {
			v[i] = center*dir[i] + rng.NormFloat64()*0.05
		}
		samples = append(samples, v)
		labels = append(labels, label)
	}
	return samples, labels
}

func TestNewReducedValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	samples, _ := clusterSamples(rng, 50, 8)
	red, err := reduce.Fit(samples, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewReduced(nil, 8, 8, Config{}); err == nil {
		t.Error("nil reducer should error")
	}
	if _, err := NewReduced(red, 0, 8, Config{}); err == nil {
		t.Error("D=0 should error")
	}
	if _, err := NewReduced(red, 8, 8, Config{DefaultWeights: []float64{1}}); err == nil {
		t.Error("wrong default weights should error")
	}
	b, err := NewReduced(red, 8, 8, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if b.D() != 8 || b.P() != 8 || b.K() != 2 {
		t.Errorf("dims: D=%d P=%d K=%d", b.D(), b.P(), b.K())
	}
	if b.Tree().Dim() != 2 {
		t.Errorf("tree dim = %d", b.Tree().Dim())
	}
}

func TestReducedPredictDefaultsUntrained(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	samples, _ := clusterSamples(rng, 60, 10)
	red, err := reduce.Fit(samples, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewReduced(red, 10, 10, Config{})
	if err != nil {
		t.Fatal(err)
	}
	oqp, err := b.Predict(samples[0])
	if err != nil {
		t.Fatal(err)
	}
	if !vec.EqualTol(oqp.Delta, vec.Zeros(10), 1e-9) {
		t.Errorf("default Δ = %v", oqp.Delta)
	}
	if !vec.EqualTol(oqp.Weights, vec.Ones(10), 1e-9) {
		t.Errorf("default W = %v", oqp.Weights)
	}
}

func TestReducedLearningTransfersWithinCluster(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	dim := 12
	samples, labels := clusterSamples(rng, 300, dim)
	red, err := reduce.Fit(samples, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewReduced(red, dim, dim, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Train: cluster 0 gets weight pattern A, cluster 1 pattern B.
	wA, wB := vec.Ones(dim), vec.Ones(dim)
	wA[0], wB[1] = 7, 7
	trained := 0
	for i := 0; i < 200; i++ {
		w := wA
		if labels[i] == 1 {
			w = wB
		}
		changed, err := b.Insert(samples[i], OQP{Delta: vec.Zeros(dim), Weights: w})
		if err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		if changed {
			trained++
		}
	}
	if trained < 10 {
		t.Fatalf("only %d inserts stored", trained)
	}
	// Evaluate on held-out samples: predictions must lean the right way.
	correct, total := 0, 0
	for i := 200; i < 300; i++ {
		oqp, err := b.Predict(samples[i])
		if err != nil {
			t.Fatal(err)
		}
		predA := oqp.Weights[0] > oqp.Weights[1]
		wantA := labels[i] == 0
		if predA == wantA {
			correct++
		}
		total++
	}
	if correct < total*8/10 {
		t.Errorf("reduced-domain transfer: %d/%d correct", correct, total)
	}
}

func TestReducedInsertValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	samples, _ := clusterSamples(rng, 40, 6)
	red, _ := reduce.Fit(samples, 2)
	b, _ := NewReduced(red, 6, 6, Config{})
	if _, err := b.Insert(samples[0], OQP{Delta: vec.Zeros(3), Weights: vec.Ones(6)}); err == nil {
		t.Error("wrong Δ length should error")
	}
	if _, err := b.Insert(samples[0], OQP{Delta: vec.Zeros(6), Weights: []float64{math.NaN(), 1, 1, 1, 1, 1}}); err == nil {
		t.Error("NaN should error")
	}
	if _, err := b.Insert([]float64{1}, OQP{Delta: vec.Zeros(6), Weights: vec.Ones(6)}); err == nil {
		t.Error("wrong query dimension should error")
	}
	st := b.Stats()
	if st.Points != 0 {
		t.Errorf("failed inserts should not store: %d", st.Points)
	}
}
