package core

import (
	"fmt"
	"math"

	"repro/internal/distance"
	"repro/internal/vec"
)

// QuadraticCodec maps between the quadratic (Mahalanobis-style) distance
// class of §2 and the module's stored OQPs. The learned parameters are a
// symmetric weight matrix W; its upper triangle is flattened into the
// stored weight vector, giving P = Dim·(Dim+1)/2 independent parameters —
// the 31·32/2 = 496 the paper counts for 31 query dimensions. The paper's
// experiments stay with weighted Euclidean because feedback rarely yields
// enough good matches to fit that many parameters (§5), but the class is
// part of the framework and this codec makes the module serve it.
//
// Because the Simplex Tree interpolates stored vectors linearly, a
// predicted matrix can be indefinite even when every stored matrix is
// positive semidefinite; DecodeOQP therefore projects onto the PSD cone by
// clamping eigenvalues at EigenFloor.
type QuadraticCodec struct {
	// Dim is the feature dimensionality; features must lie in [0,1]^Dim
	// (use geom.CoveringSimplex(Dim) as the module's domain).
	Dim int
}

// EigenFloor is the smallest eigenvalue a decoded quadratic weight matrix
// can carry.
const EigenFloor = 1e-6

// NewQuadraticCodec validates the dimensionality.
func NewQuadraticCodec(dim int) (QuadraticCodec, error) {
	if dim < 1 {
		return QuadraticCodec{}, fmt.Errorf("core: quadratic codec needs dim ≥ 1, got %d", dim)
	}
	return QuadraticCodec{Dim: dim}, nil
}

// D returns the query-domain dimensionality.
func (c QuadraticCodec) D() int { return c.Dim }

// P returns the number of stored weight parameters, Dim·(Dim+1)/2.
func (c QuadraticCodec) P() int { return c.Dim * (c.Dim + 1) / 2 }

// DefaultWeights returns the flattened identity matrix — the default
// (Euclidean) member of the quadratic class.
func (c QuadraticCodec) DefaultWeights() []float64 {
	out := make([]float64, c.P())
	idx := 0
	for i := 0; i < c.Dim; i++ {
		for j := i; j < c.Dim; j++ {
			if i == j {
				out[idx] = 1
			}
			idx++
		}
	}
	return out
}

// EncodeOQP flattens the loop outcome (optimal point qopt, symmetric
// weight matrix w) relative to the initial query q.
func (c QuadraticCodec) EncodeOQP(q, qopt []float64, w *vec.Matrix) (OQP, error) {
	if len(q) != c.Dim || len(qopt) != c.Dim {
		return OQP{}, fmt.Errorf("core: expected %d-dimensional points, got %d and %d", c.Dim, len(q), len(qopt))
	}
	if w == nil || w.Rows != c.Dim || w.Cols != c.Dim {
		return OQP{}, fmt.Errorf("core: weight matrix must be %dx%d", c.Dim, c.Dim)
	}
	weights := make([]float64, 0, c.P())
	for i := 0; i < c.Dim; i++ {
		for j := i; j < c.Dim; j++ {
			if math.Abs(w.At(i, j)-w.At(j, i)) > 1e-9 {
				return OQP{}, fmt.Errorf("core: weight matrix asymmetric at (%d,%d)", i, j)
			}
			v := w.At(i, j)
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return OQP{}, fmt.Errorf("core: weight matrix has non-finite entry at (%d,%d)", i, j)
			}
			weights = append(weights, v)
		}
	}
	return OQP{Delta: vec.Sub(qopt, q), Weights: weights}, nil
}

// DecodeOQP reconstructs the optimal query point and a valid quadratic
// metric from a (possibly interpolated) OQP: the matrix is rebuilt from
// the upper triangle and projected onto the PSD cone.
func (c QuadraticCodec) DecodeOQP(q []float64, oqp OQP) (qopt []float64, m *distance.Quadratic, err error) {
	if len(q) != c.Dim {
		return nil, nil, fmt.Errorf("core: query has dimension %d, want %d", len(q), c.Dim)
	}
	if len(oqp.Delta) != c.Dim || len(oqp.Weights) != c.P() {
		return nil, nil, fmt.Errorf("core: OQP dimensions (%d, %d), want (%d, %d)", len(oqp.Delta), len(oqp.Weights), c.Dim, c.P())
	}
	qopt = vec.Add(q, oqp.Delta)
	w := vec.NewMatrix(c.Dim, c.Dim)
	idx := 0
	for i := 0; i < c.Dim; i++ {
		for j := i; j < c.Dim; j++ {
			v := oqp.Weights[idx]
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			w.Set(i, j, v)
			w.Set(j, i, v)
			idx++
		}
	}
	projected, err := projectPSD(w, EigenFloor)
	if err != nil {
		return nil, nil, err
	}
	m, err = distance.NewQuadratic(projected)
	if err != nil {
		return nil, nil, err
	}
	return qopt, m, nil
}

// projectPSD clamps the eigenvalues of the symmetric matrix w at floor.
func projectPSD(w *vec.Matrix, floor float64) (*vec.Matrix, error) {
	e, err := vec.SymmetricEigen(w, 1e-9)
	if err != nil {
		return nil, err
	}
	needsProjection := false
	for _, v := range e.Values {
		if v < floor {
			needsProjection = true
			break
		}
	}
	if !needsProjection {
		return w, nil
	}
	n := w.Rows
	d := vec.NewMatrix(n, n)
	for i, v := range e.Values {
		if v < floor {
			v = floor
		}
		d.Set(i, i, v)
	}
	out := e.Vectors.Mul(d).Mul(e.Vectors.Transpose())
	// Symmetrize against rounding.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			m := (out.At(i, j) + out.At(j, i)) / 2
			out.Set(i, j, m)
			out.Set(j, i, m)
		}
	}
	return out, nil
}
