package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/vec"
)

func TestQuadraticCodecValidation(t *testing.T) {
	if _, err := NewQuadraticCodec(0); err == nil {
		t.Error("dim 0 should error")
	}
	c, err := NewQuadraticCodec(3)
	if err != nil {
		t.Fatal(err)
	}
	if c.D() != 3 || c.P() != 6 {
		t.Errorf("D=%d P=%d", c.D(), c.P())
	}
}

func TestQuadraticCodecPaperParameterCount(t *testing.T) {
	// §5: "31 × 32/2 = 496 for the Mahalanobis distance".
	c, err := NewQuadraticCodec(31)
	if err != nil {
		t.Fatal(err)
	}
	if c.P() != 496 {
		t.Errorf("P = %d, want 496", c.P())
	}
}

func TestQuadraticDefaultWeightsAreIdentity(t *testing.T) {
	c, _ := NewQuadraticCodec(3)
	def := c.DefaultWeights()
	q := []float64{0.1, 0.2, 0.3}
	qopt, m, err := c.DecodeOQP(q, OQP{Delta: vec.Zeros(3), Weights: def})
	if err != nil {
		t.Fatal(err)
	}
	if !vec.Equal(qopt, q) {
		t.Errorf("qopt = %v", qopt)
	}
	// Identity quadratic = Euclidean.
	a, b := []float64{0, 0, 0}, []float64{3, 4, 0}
	if got := m.Distance(a, b); math.Abs(got-5) > 1e-9 {
		t.Errorf("identity quadratic distance = %v", got)
	}
}

func TestQuadraticEncodeDecodeRoundTrip(t *testing.T) {
	c, _ := NewQuadraticCodec(2)
	q := []float64{0.2, 0.3}
	qopt := []float64{0.25, 0.28}
	w := vec.MatrixFromRows([][]float64{{2, 0.5}, {0.5, 1}})
	oqp, err := c.EncodeOQP(q, qopt, w)
	if err != nil {
		t.Fatal(err)
	}
	if len(oqp.Weights) != 3 {
		t.Fatalf("stored weights = %v", oqp.Weights)
	}
	backQ, m, err := c.DecodeOQP(q, oqp)
	if err != nil {
		t.Fatal(err)
	}
	if !vec.EqualTol(backQ, qopt, 1e-12) {
		t.Errorf("qopt = %v", backQ)
	}
	// The decoded metric equals the original quadratic form.
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		a := []float64{rng.NormFloat64(), rng.NormFloat64()}
		b := []float64{rng.NormFloat64(), rng.NormFloat64()}
		diff := vec.Sub(a, b)
		want := math.Sqrt(vec.Dot(diff, w.MulVec(diff)))
		if got := m.Distance(a, b); math.Abs(got-want) > 1e-9 {
			t.Fatalf("distance %v, want %v", got, want)
		}
	}
}

func TestQuadraticEncodeValidation(t *testing.T) {
	c, _ := NewQuadraticCodec(2)
	q := []float64{0.2, 0.3}
	if _, err := c.EncodeOQP([]float64{1}, q, vec.Identity(2)); err == nil {
		t.Error("wrong q dim should error")
	}
	if _, err := c.EncodeOQP(q, q, vec.Identity(3)); err == nil {
		t.Error("wrong matrix size should error")
	}
	if _, err := c.EncodeOQP(q, q, nil); err == nil {
		t.Error("nil matrix should error")
	}
	asym := vec.MatrixFromRows([][]float64{{1, 2}, {0, 1}})
	if _, err := c.EncodeOQP(q, q, asym); err == nil {
		t.Error("asymmetric matrix should error")
	}
	nan := vec.MatrixFromRows([][]float64{{1, math.NaN()}, {math.NaN(), 1}})
	if _, err := c.EncodeOQP(q, q, nan); err == nil {
		t.Error("NaN matrix should error")
	}
}

func TestQuadraticDecodeProjectsIndefiniteMatrices(t *testing.T) {
	c, _ := NewQuadraticCodec(2)
	q := []float64{0.5, 0.5}
	// Upper triangle of [[1, 2], [2, 1]] — eigenvalues 3 and −1.
	oqp := OQP{Delta: vec.Zeros(2), Weights: []float64{1, 2, 1}}
	_, m, err := c.DecodeOQP(q, oqp)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(1e-9); err != nil {
		t.Errorf("decoded metric not PSD: %v", err)
	}
	// Distances along the former negative direction are now ~0 instead of
	// imaginary.
	d := m.Distance([]float64{0, 0}, []float64{1, -1})
	if math.IsNaN(d) || d < 0 {
		t.Errorf("distance = %v", d)
	}
}

func TestQuadraticDecodeValidation(t *testing.T) {
	c, _ := NewQuadraticCodec(2)
	if _, _, err := c.DecodeOQP([]float64{1}, OQP{Delta: vec.Zeros(2), Weights: vec.Zeros(3)}); err == nil {
		t.Error("wrong q dim should error")
	}
	if _, _, err := c.DecodeOQP([]float64{1, 2}, OQP{Delta: vec.Zeros(1), Weights: vec.Zeros(3)}); err == nil {
		t.Error("wrong delta dim should error")
	}
	if _, _, err := c.DecodeOQP([]float64{1, 2}, OQP{Delta: vec.Zeros(2), Weights: vec.Zeros(2)}); err == nil {
		t.Error("wrong weights len should error")
	}
}

func TestQuadraticCodecWithBypass(t *testing.T) {
	// End to end: a Bypass over the covering simplex learns quadratic OQPs
	// and the interpolated matrices decode to valid metrics.
	c, _ := NewQuadraticCodec(2)
	b, err := New(c.D(), c.P(), Config{
		Domain:         geom.CoveringSimplex(2),
		DefaultWeights: c.DefaultWeights(),
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 15; i++ {
		q := []float64{rng.Float64(), rng.Float64()}
		// A correlated PSD matrix: W = AᵀA + small ridge.
		a11, a12 := 1+rng.Float64(), rng.Float64()
		w := vec.MatrixFromRows([][]float64{
			{a11*a11 + 0.1, a11 * a12},
			{a11 * a12, a12*a12 + 0.1},
		})
		oqp, err := c.EncodeOQP(q, q, w)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := b.Insert(q, oqp); err != nil {
			t.Fatal(err)
		}
	}
	for trial := 0; trial < 20; trial++ {
		q := []float64{rng.Float64(), rng.Float64()}
		oqp, err := b.Predict(q)
		if err != nil {
			t.Fatal(err)
		}
		_, m, err := c.DecodeOQP(q, oqp)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Validate(1e-9); err != nil {
			t.Fatalf("interpolated metric invalid: %v", err)
		}
	}
}
