package core

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/persist"
	"repro/internal/simplextree"
)

// Durable file names inside the module directory.
const (
	SnapshotFile = "tree.fbsx"
	JournalFile  = "tree.fbwl"
)

// DurableOptions tunes the persistence behaviour of a DurableBypass.
type DurableOptions struct {
	// CompactEvery triggers an automatic compaction (snapshot + journal
	// truncation) once this many inserts have been journaled since the
	// last snapshot. Zero disables automatic compaction; call Compact.
	CompactEvery int
	// Sync forces an fsync after every journal append. Without it an
	// acknowledged insert survives a process kill (the append is an
	// unbuffered write) but not necessarily a power loss.
	Sync bool
}

// DurableBypass is a Bypass whose learned mapping survives crashes: every
// accepted insert is journaled to a write-ahead log before the tree
// mutates, and opening the module recovers snapshot + journal replay.
// Periodic compaction (snapshot the tree, truncate the journal) keeps
// recovery time proportional to the inserts since the last snapshot, not
// the lifetime of the module.
//
// Reads (Predict, PredictBatch, Stats, ...) are the embedded Bypass's and
// run in parallel. Inserts must go through DurableBypass.Insert /
// InsertBatch — they serialize against Compact so no acknowledged insert
// can fall between a snapshot and a journal truncation.
//
// Replay is deterministic and idempotent: the journal holds exactly the
// accepted inserts in application order, each replayed insert re-derives
// the same ε decision against the same intermediate tree, and a record
// already covered by the snapshot (a crash between the snapshot rename
// and the journal truncation) is rejected — by the ε test when ε > 0, or
// by the tree's exact-duplicate vertex-update check when interpolation
// rounding defeats an ε = 0 skip.
type DurableBypass struct {
	*Bypass

	mu        sync.Mutex // serializes inserts against compaction
	wal       *persist.WAL
	snapPath  string
	journaled int // inserts journaled since the last compaction
	opts      DurableOptions
}

// OpenDurable opens (or initializes) a durable FeedbackBypass module
// rooted at dir. On first open it creates a fresh module from cfg; on
// later opens it recovers the persisted state — snapshot (if any) plus
// write-ahead-log replay — and cfg is consulted only if no snapshot
// exists yet. The directory is created if needed.
func OpenDurable(dir string, d, p int, cfg Config, opts DurableOptions) (*DurableBypass, error) {
	if opts.CompactEvery < 0 {
		return nil, fmt.Errorf("core: negative CompactEvery %d", opts.CompactEvery)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	snapPath := filepath.Join(dir, SnapshotFile)
	walPath := filepath.Join(dir, JournalFile)

	var b *Bypass
	if _, err := os.Stat(snapPath); err == nil {
		tree, err := persist.LoadFile(snapPath)
		if err != nil {
			return nil, fmt.Errorf("core: loading snapshot: %w", err)
		}
		b, err = FromTree(tree, p)
		if err != nil {
			return nil, err
		}
		if b.D() != d {
			return nil, fmt.Errorf("core: snapshot is for D=%d, want %d", b.D(), d)
		}
	} else if errors.Is(err, os.ErrNotExist) {
		if b, err = New(d, p, cfg); err != nil {
			return nil, err
		}
	} else {
		return nil, err
	}

	tree := b.Tree()
	wal, err := persist.OpenWAL(walPath, d, tree.OQPDim())
	if err != nil {
		return nil, err
	}
	replayed, err := wal.Replay(func(q, value []float64) error {
		_, ierr := tree.Insert(q, value)
		return ierr
	})
	if err != nil {
		wal.Close()
		return nil, fmt.Errorf("core: replaying journal: %w", err)
	}
	db := &DurableBypass{
		Bypass:    b,
		wal:       wal,
		snapPath:  snapPath,
		journaled: replayed,
		opts:      opts,
	}
	// Journal every accepted insert before the tree mutates (the
	// observer runs under the tree's exclusive lock, after the insert is
	// certain to succeed). Append is all-or-nothing — a failed write or
	// fsync rolls the log back to the last record boundary — so an
	// aborted insert leaves journal and tree consistent with each other.
	wal.SetSyncOnAppend(opts.Sync)
	tree.SetObserver(func(q, value []float64) error {
		return db.wal.Append(q, value)
	})
	return db, nil
}

// Insert stores a converged feedback outcome durably: an accepted insert
// is journaled before the in-memory tree changes, so once Insert returns
// true the outcome survives a crash.
func (db *DurableBypass) Insert(q []float64, oqp OQP) (bool, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	before := db.wal.Records()
	changed, err := db.Bypass.Insert(q, oqp)
	db.journaled += db.wal.Records() - before
	if err != nil {
		return changed, err
	}
	return changed, db.maybeCompactLocked()
}

// InsertBatch durably stores many outcomes under one exclusive-lock
// acquisition (see Bypass.InsertBatch for ordering and error semantics).
func (db *DurableBypass) InsertBatch(qs [][]float64, oqps []OQP) (int, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	before := db.wal.Records()
	stored, err := db.Bypass.InsertBatch(qs, oqps)
	db.journaled += db.wal.Records() - before
	if err != nil {
		return stored, err
	}
	return stored, db.maybeCompactLocked()
}

// Journaled reports the number of inserts journaled since the last
// compaction (including those replayed at open).
func (db *DurableBypass) Journaled() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.journaled
}

// WALSize reports the journal's current on-disk size in bytes — the
// recovery debt the next compaction would clear. Serving layers export it
// per shard so operators can see write pressure per partition.
func (db *DurableBypass) WALSize() int64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.wal.Size()
}

// Compact snapshots the tree and truncates the journal, bounding future
// recovery time. The snapshot is written to a temporary file, fsynced,
// and atomically renamed before the journal is reset, so a crash at any
// point leaves a recoverable (snapshot, journal) pair.
func (db *DurableBypass) Compact() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.compactLocked()
}

func (db *DurableBypass) maybeCompactLocked() error {
	if db.opts.CompactEvery <= 0 || db.journaled < db.opts.CompactEvery {
		return nil
	}
	return db.compactLocked()
}

func (db *DurableBypass) compactLocked() error {
	tmp := db.snapPath + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := persist.Save(f, db.Tree()); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, db.snapPath); err != nil {
		os.Remove(tmp)
		return err
	}
	// The rename's directory entry must be durable before the journal is
	// truncated: otherwise a power loss could persist the truncation but
	// not the rename, leaving an old snapshot next to an empty journal.
	if err := persist.SyncDir(filepath.Dir(db.snapPath)); err != nil {
		return err
	}
	if err := db.wal.Reset(); err != nil {
		return err
	}
	db.journaled = 0
	return nil
}

// Close flushes and closes the journal. The module must not be used
// afterwards; reopen with OpenDurable.
func (db *DurableBypass) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.Tree().SetObserver(nil)
	if err := db.wal.Sync(); err != nil {
		db.wal.Close()
		return err
	}
	return db.wal.Close()
}

// Observer re-exports the simplextree hook type for callers layering
// their own journaling.
type Observer = simplextree.Observer
