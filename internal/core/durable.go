package core

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/obsv"
	"repro/internal/persist"
	"repro/internal/simplextree"
)

// Durable file names inside the module directory.
const (
	SnapshotFile = "tree.fbsx"
	JournalFile  = "tree.fbwl"
)

// ErrDegraded marks a module that has flipped to read-only serving after
// a persistence failure (failed journal append, failed compaction).
// Predictions keep working from the in-memory tree; inserts are rejected
// with an error satisfying errors.Is(err, ErrDegraded) — joined with the
// root cause, so errors.Is against the underlying failure also holds.
// The flip is sticky: the module stays read-only until it is closed and
// reopened against a healthy disk.
var ErrDegraded = errors.New("core: module degraded to read-only after persistence failure")

// ErrQuotaExceeded re-exports the Simplex Tree's resource-governance
// sentinel so serving layers can classify rejections without importing
// simplextree.
var ErrQuotaExceeded = simplextree.ErrQuotaExceeded

// DurableOptions tunes the persistence behaviour of a DurableBypass.
type DurableOptions struct {
	// CompactEvery triggers an automatic compaction (snapshot + journal
	// truncation) once this many inserts have been journaled since the
	// last snapshot. Zero disables automatic compaction; call Compact.
	CompactEvery int
	// Sync forces an fsync after every journal append. Without it an
	// acknowledged insert survives a process kill (the append is an
	// unbuffered write) but not necessarily a power loss.
	Sync bool
	// FS routes every filesystem operation (journal, snapshot, directory
	// fsyncs) through the given seam. Nil means the real filesystem; the
	// fault-injection plane (internal/faultfs) substitutes scripted
	// failures here.
	FS persist.FS
	// Obs, when non-nil, registers persistence instruments (WAL append
	// and fsync latency, snapshot duration) in the given registry, each
	// carrying ObsLabels. Nil disables instrumentation entirely — the
	// hot paths then take no clock readings.
	Obs *obsv.Registry
	// ObsLabels are attached to every instrument this module registers
	// (typically collection and shard).
	ObsLabels []obsv.Label
}

// DurableBypass is a Bypass whose learned mapping survives crashes: every
// accepted insert is journaled to a write-ahead log before the tree
// mutates, and opening the module recovers snapshot + journal replay.
// Periodic compaction (snapshot the tree, truncate the journal) keeps
// recovery time proportional to the inserts since the last snapshot, not
// the lifetime of the module.
//
// Reads (Predict, PredictBatch, Stats, ...) are the embedded Bypass's and
// run in parallel. Inserts must go through DurableBypass.Insert /
// InsertBatch — they serialize against Compact so no acknowledged insert
// can fall between a snapshot and a journal truncation.
//
// Replay is deterministic and idempotent: the journal holds exactly the
// accepted inserts in application order, each replayed insert re-derives
// the same ε decision against the same intermediate tree, and a record
// already covered by the snapshot (a crash between the snapshot rename
// and the journal truncation) is rejected — by the ε test when ε > 0, or
// by the tree's exact-duplicate vertex-update check when interpolation
// rounding defeats an ε = 0 skip.
type DurableBypass struct {
	*Bypass

	mu        sync.Mutex // serializes inserts against compaction
	fs        persist.FS
	wal       *persist.WAL
	snapPath  string
	journaled int // inserts journaled since the last compaction
	opts      DurableOptions
	snapH     *obsv.Histogram // optional: compaction snapshot duration

	// degMu guards degraded separately from mu: the WAL observer that
	// flips it runs under the tree's exclusive lock while mu is already
	// held by Insert, so it cannot retake mu.
	degMu    sync.Mutex
	degraded error // errors.Join(ErrDegraded, cause); nil while healthy
}

// OpenDurable opens (or initializes) a durable FeedbackBypass module
// rooted at dir. On first open it creates a fresh module from cfg; on
// later opens it recovers the persisted state — snapshot (if any) plus
// write-ahead-log replay — and cfg is consulted only if no snapshot
// exists yet. The directory is created if needed.
func OpenDurable(dir string, d, p int, cfg Config, opts DurableOptions) (*DurableBypass, error) {
	if opts.CompactEvery < 0 {
		return nil, fmt.Errorf("core: negative CompactEvery %d", opts.CompactEvery)
	}
	fsys := persist.OrOS(opts.FS)
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	snapPath := filepath.Join(dir, SnapshotFile)
	walPath := filepath.Join(dir, JournalFile)

	var b *Bypass
	if _, err := fsys.Stat(snapPath); err == nil {
		tree, err := persist.LoadFileFS(fsys, snapPath)
		if err != nil {
			return nil, fmt.Errorf("core: loading snapshot: %w", err)
		}
		b, err = FromTree(tree, p)
		if err != nil {
			return nil, err
		}
		if b.D() != d {
			return nil, fmt.Errorf("core: snapshot is for D=%d, want %d", b.D(), d)
		}
	} else if errors.Is(err, os.ErrNotExist) {
		// Quotas are withheld until after replay (below): recovery must
		// never refuse an insert the module already acknowledged, even if
		// the quota was lowered since.
		freshCfg := cfg
		freshCfg.MaxVertices, freshCfg.MaxBytes = 0, 0
		if b, err = New(d, p, freshCfg); err != nil {
			return nil, err
		}
	} else {
		return nil, err
	}

	tree := b.Tree()
	wal, err := persist.OpenWALFS(fsys, walPath, d, tree.OQPDim())
	if err != nil {
		return nil, err
	}
	replayed, err := wal.Replay(func(q, value []float64) error {
		_, ierr := tree.Insert(q, value)
		return ierr
	})
	if err != nil {
		_ = wal.Close()
		return nil, fmt.Errorf("core: replaying journal: %w", err)
	}
	// Recovery done; from here on cfg's quotas bind new inserts. A tree
	// already past a lowered bound serves reads and rejects growth.
	tree.SetQuota(cfg.MaxVertices, cfg.MaxBytes)
	db := &DurableBypass{
		Bypass:    b,
		fs:        fsys,
		wal:       wal,
		snapPath:  snapPath,
		journaled: replayed,
		opts:      opts,
	}
	if opts.Obs != nil {
		wal.SetMetrics(
			opts.Obs.Histogram("fb_wal_append_seconds", "WAL append latency (encode + write + any per-append fsync).", obsv.LatencyBounds(), opts.ObsLabels...),
			opts.Obs.Histogram("fb_wal_fsync_seconds", "WAL fsync latency.", obsv.LatencyBounds(), opts.ObsLabels...),
		)
		db.snapH = opts.Obs.Histogram("fb_snapshot_seconds", "Compaction snapshot duration (write + fsync + rename + journal reset).", obsv.LatencyBounds(), opts.ObsLabels...)
	}
	// Journal every accepted insert before the tree mutates (the
	// observer runs under the tree's exclusive lock, after the insert is
	// certain to succeed). Append is all-or-nothing — a failed write or
	// fsync rolls the log back to the last record boundary — so an
	// aborted insert leaves journal and tree consistent with each other.
	// A failed append is a persistence failure and flips the module to
	// read-only degraded mode; client-side errors (dimension mismatch,
	// out-of-domain queries, quota) never reach this hook.
	wal.SetSyncOnAppend(opts.Sync)
	tree.SetObserver(func(q, value []float64) error {
		if err := db.wal.Append(q, value); err != nil {
			db.noteDegraded(err)
			return err
		}
		return nil
	})
	return db, nil
}

// Degraded reports the sticky persistence failure that flipped the
// module to read-only, or nil while it is healthy. The returned error
// satisfies errors.Is(err, ErrDegraded) and errors.Is against the root
// cause.
func (db *DurableBypass) Degraded() error {
	db.degMu.Lock()
	defer db.degMu.Unlock()
	return db.degraded
}

func (db *DurableBypass) noteDegraded(cause error) {
	db.degMu.Lock()
	if db.degraded == nil {
		db.degraded = errors.Join(ErrDegraded, cause)
	}
	db.degMu.Unlock()
}

// Insert stores a converged feedback outcome durably: an accepted insert
// is journaled before the in-memory tree changes, so once Insert returns
// true the outcome survives a crash.
func (db *DurableBypass) Insert(q []float64, oqp OQP) (bool, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.Degraded(); err != nil {
		return false, err
	}
	before := db.wal.Records()
	changed, err := db.Bypass.Insert(q, oqp)
	db.journaled += db.wal.Records() - before
	if err != nil {
		// If the failure was the journal append itself, the module just
		// flipped degraded; report the joined error so callers can match
		// ErrDegraded on the very first rejected insert.
		if derr := db.Degraded(); derr != nil {
			return changed, derr
		}
		return changed, err
	}
	return changed, db.maybeCompactLocked()
}

// InsertBatch durably stores many outcomes under one exclusive-lock
// acquisition (see Bypass.InsertBatch for ordering and error semantics).
func (db *DurableBypass) InsertBatch(qs [][]float64, oqps []OQP) (int, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.Degraded(); err != nil {
		return 0, err
	}
	before := db.wal.Records()
	stored, err := db.Bypass.InsertBatch(qs, oqps)
	db.journaled += db.wal.Records() - before
	if err != nil {
		if derr := db.Degraded(); derr != nil {
			return stored, derr
		}
		return stored, err
	}
	return stored, db.maybeCompactLocked()
}

// Journaled reports the number of inserts journaled since the last
// compaction (including those replayed at open).
func (db *DurableBypass) Journaled() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.journaled
}

// WALSize reports the journal's current on-disk size in bytes — the
// recovery debt the next compaction would clear. Serving layers export it
// per shard so operators can see write pressure per partition.
func (db *DurableBypass) WALSize() int64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.wal.Size()
}

// Compact snapshots the tree and truncates the journal, bounding future
// recovery time. The snapshot is written to a temporary file, fsynced,
// and atomically renamed before the journal is reset, so a crash at any
// point leaves a recoverable (snapshot, journal) pair.
func (db *DurableBypass) Compact() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.Degraded(); err != nil {
		return err
	}
	return db.compactLocked()
}

func (db *DurableBypass) maybeCompactLocked() error {
	if db.opts.CompactEvery <= 0 || db.journaled < db.opts.CompactEvery {
		return nil
	}
	return db.compactLocked()
}

// compactLocked runs one compaction; any failure is a persistence
// failure and flips the module to read-only degraded mode. A partial
// compaction always leaves a recoverable (snapshot, journal) pair — the
// journal is only truncated after the new snapshot's rename is durable.
func (db *DurableBypass) compactLocked() error {
	if err := db.compactOnceLocked(); err != nil {
		db.noteDegraded(err)
		return db.Degraded()
	}
	return nil
}

func (db *DurableBypass) compactOnceLocked() error {
	var t0 time.Time
	if db.snapH != nil {
		t0 = time.Now()
	}
	tmp := db.snapPath + ".tmp"
	f, err := persist.CreateFile(db.fs, tmp)
	if err != nil {
		return err
	}
	if err := persist.Save(f, db.Tree()); err != nil {
		_ = f.Close()
		_ = db.fs.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		_ = db.fs.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		_ = db.fs.Remove(tmp)
		return err
	}
	if err := db.fs.Rename(tmp, db.snapPath); err != nil {
		_ = db.fs.Remove(tmp)
		return err
	}
	// The rename's directory entry must be durable before the journal is
	// truncated: otherwise a power loss could persist the truncation but
	// not the rename, leaving an old snapshot next to an empty journal.
	if err := db.fs.SyncDir(filepath.Dir(db.snapPath)); err != nil {
		return err
	}
	if err := db.wal.Reset(); err != nil {
		return err
	}
	db.journaled = 0
	if db.snapH != nil {
		db.snapH.ObserveSince(t0)
	}
	return nil
}

// Close flushes and closes the journal. The module must not be used
// afterwards; reopen with OpenDurable.
func (db *DurableBypass) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.Tree().SetObserver(nil)
	if err := db.wal.Sync(); err != nil {
		_ = db.wal.Close()
		return err
	}
	return db.wal.Close()
}

// Observer re-exports the simplextree hook type for callers layering
// their own journaling.
type Observer = simplextree.Observer
