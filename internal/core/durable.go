package core

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obsv"
	"repro/internal/persist"
	"repro/internal/simplextree"
)

// Durable file names inside the module directory.
const (
	SnapshotFile = "tree.fbsx"
	JournalFile  = "tree.fbwl"
)

// ErrDegraded marks a module that has flipped to read-only serving after
// a persistence failure (failed journal append, failed compaction).
// Predictions keep working from the in-memory tree; inserts are rejected
// with an error satisfying errors.Is(err, ErrDegraded) — joined with the
// root cause, so errors.Is against the underlying failure also holds.
// The flip is sticky: the module stays read-only until it is closed and
// reopened against a healthy disk.
var ErrDegraded = errors.New("core: module degraded to read-only after persistence failure")

// ErrQuotaExceeded re-exports the Simplex Tree's resource-governance
// sentinel so serving layers can classify rejections without importing
// simplextree.
var ErrQuotaExceeded = simplextree.ErrQuotaExceeded

// DurableOptions tunes the persistence behaviour of a DurableBypass.
type DurableOptions struct {
	// CompactEvery triggers an automatic compaction (snapshot + journal
	// truncation) once this many inserts have been journaled since the
	// last snapshot. Zero disables automatic compaction; call Compact.
	CompactEvery int
	// Sync forces an fsync after every journal append. Without it an
	// acknowledged insert survives a process kill (the append is an
	// unbuffered write) but not necessarily a power loss.
	Sync bool
	// FS routes every filesystem operation (journal, snapshot, directory
	// fsyncs) through the given seam. Nil means the real filesystem; the
	// fault-injection plane (internal/faultfs) substitutes scripted
	// failures here.
	FS persist.FS
	// Obs, when non-nil, registers persistence instruments (WAL append
	// and fsync latency, snapshot duration) in the given registry, each
	// carrying ObsLabels. Nil disables instrumentation entirely — the
	// hot paths then take no clock readings.
	Obs *obsv.Registry
	// ObsLabels are attached to every instrument this module registers
	// (typically collection and shard).
	ObsLabels []obsv.Label
}

// DurableBypass is a Bypass whose learned mapping survives crashes: every
// accepted insert is journaled to a write-ahead log before the tree
// mutates, and opening the module recovers snapshot + journal replay.
// Periodic compaction (snapshot the tree, truncate the journal) keeps
// recovery time proportional to the inserts since the last snapshot, not
// the lifetime of the module.
//
// Reads (Predict, PredictBatch, Stats, ...) are the embedded Bypass's and
// run in parallel. Inserts must go through DurableBypass.Insert /
// InsertBatch — they serialize against Compact so no acknowledged insert
// can fall between a snapshot and a journal truncation.
//
// Replay is deterministic and idempotent: the journal holds exactly the
// accepted inserts in application order, each replayed insert re-derives
// the same ε decision against the same intermediate tree, and a record
// already covered by the snapshot (a crash between the snapshot rename
// and the journal truncation) is rejected — by the ε test when ε > 0, or
// by the tree's exact-duplicate vertex-update check when interpolation
// rounding defeats an ε = 0 skip.
type DurableBypass struct {
	*Bypass

	mu        sync.Mutex // serializes inserts against compaction
	fs        persist.FS
	wal       *persist.WAL
	snapPath  string
	journaled int    // inserts journaled since the last compaction
	epoch     uint64 // current compaction epoch (snapshot and WAL agree)
	opts      DurableOptions
	snapH     *obsv.Histogram // optional: compaction snapshot duration

	// Lifecycle instruments (nil without DurableOptions.Obs).
	compactionsC *obsv.Counter   // fb_bypass_compactions_total
	reclaimedC   *obsv.Counter   // fb_bypass_reclaimed_vertices_total
	compactH     *obsv.Histogram // fb_bypass_compaction_seconds
	pointsBefG   *obsv.Gauge     // fb_bypass_compaction_points_before
	pointsAftG   *obsv.Gauge     // fb_bypass_compaction_points_after

	// Lifecycle counters for Stats/ShardInfo exposure.
	compactions atomic.Uint64
	reclaimed   atomic.Uint64

	// degMu guards degraded separately from mu: the WAL observer that
	// flips it runs under the tree's exclusive lock while mu is already
	// held by Insert, so it cannot retake mu.
	degMu    sync.Mutex
	degraded error // errors.Join(ErrDegraded, cause); nil while healthy
}

// OpenDurable opens (or initializes) a durable FeedbackBypass module
// rooted at dir. On first open it creates a fresh module from cfg; on
// later opens it recovers the persisted state — snapshot (if any) plus
// write-ahead-log replay — and cfg is consulted only if no snapshot
// exists yet. The directory is created if needed.
func OpenDurable(dir string, d, p int, cfg Config, opts DurableOptions) (*DurableBypass, error) {
	if opts.CompactEvery < 0 {
		return nil, fmt.Errorf("core: negative CompactEvery %d", opts.CompactEvery)
	}
	fsys := persist.OrOS(opts.FS)
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	snapPath := filepath.Join(dir, SnapshotFile)
	walPath := filepath.Join(dir, JournalFile)

	var b *Bypass
	var snapEpoch uint64
	if _, err := fsys.Stat(snapPath); err == nil {
		tree, epoch, err := persist.LoadFileEpochFS(fsys, snapPath)
		if err != nil {
			return nil, fmt.Errorf("core: loading snapshot: %w", err)
		}
		snapEpoch = epoch
		b, err = FromTree(tree, p)
		if err != nil {
			return nil, err
		}
		if b.D() != d {
			return nil, fmt.Errorf("core: snapshot is for D=%d, want %d", b.D(), d)
		}
	} else if errors.Is(err, os.ErrNotExist) {
		// Quotas are withheld until after replay (below): recovery must
		// never refuse an insert the module already acknowledged, even if
		// the quota was lowered since.
		freshCfg := cfg
		freshCfg.MaxVertices, freshCfg.MaxBytes = 0, 0
		if b, err = New(d, p, freshCfg); err != nil {
			return nil, err
		}
	} else {
		return nil, err
	}

	tree := b.Tree()
	wal, err := persist.OpenWALFS(fsys, walPath, d, tree.OQPDim())
	if err != nil {
		return nil, err
	}
	// Epoch reconciliation: the journal extends exactly the snapshot
	// whose epoch it carries.
	//
	//   wal == snap  — the normal pair: replay the journal.
	//   wal <  snap  — a crash hit between the snapshot rename and the
	//                  journal reset: every journaled record is already
	//                  inside the (newer) snapshot. Discard the stale
	//                  journal; recovery lands on the post-compaction
	//                  census. A crash *during* the reset (torn header)
	//                  reopens as a fresh epoch-0 journal with no records
	//                  and reconciles the same way.
	//   wal >  snap  — impossible under the protocol (the snapshot's
	//                  rename is directory-fsynced before the journal
	//                  moves to its epoch): the snapshot was lost or
	//                  swapped behind our back. Refuse.
	switch walEpoch := wal.Epoch(); {
	case walEpoch == snapEpoch:
		// The normal pair; fall through to replay.
	case wal.Records() == 0:
		// No journaled inserts: adopting the snapshot's epoch loses
		// nothing regardless of which side is ahead (this is also the
		// torn-reset recovery path).
		if err := wal.Reset(snapEpoch); err != nil {
			_ = wal.Close()
			return nil, fmt.Errorf("core: reconciling journal epoch: %w", err)
		}
	case walEpoch < snapEpoch:
		if err := wal.Reset(snapEpoch); err != nil {
			_ = wal.Close()
			return nil, fmt.Errorf("core: discarding stale journal: %w", err)
		}
	default:
		_ = wal.Close()
		return nil, fmt.Errorf("%w: journal epoch %d is ahead of snapshot epoch %d", persist.ErrCorrupt, walEpoch, snapEpoch)
	}
	replayed, err := wal.Replay(func(q, value []float64, stamp uint64) error {
		// Legacy (version-1) records predate stamps: replay them as fresh
		// inserts so they age from the current clock instead of appearing
		// infinitely old.
		var ierr error
		if stamp == 0 {
			_, ierr = tree.Insert(q, value)
		} else {
			_, ierr = tree.InsertStamped(q, value, stamp)
		}
		return ierr
	})
	if err != nil {
		_ = wal.Close()
		return nil, fmt.Errorf("core: replaying journal: %w", err)
	}
	// Recovery done; from here on cfg's quotas bind new inserts. A tree
	// already past a lowered bound serves reads and rejects growth.
	tree.SetQuota(cfg.MaxVertices, cfg.MaxBytes)
	// The aging horizon is serving policy, not persisted state: apply the
	// configured value to whatever tree recovery produced.
	tree.SetAgeHorizon(cfg.AgeHorizon)
	db := &DurableBypass{
		Bypass:    b,
		fs:        fsys,
		wal:       wal,
		snapPath:  snapPath,
		journaled: replayed,
		epoch:     wal.Epoch(),
		opts:      opts,
	}
	if opts.Obs != nil {
		wal.SetMetrics(
			opts.Obs.Histogram("fb_wal_append_seconds", "WAL append latency (encode + write + any per-append fsync).", obsv.LatencyBounds(), opts.ObsLabels...),
			opts.Obs.Histogram("fb_wal_fsync_seconds", "WAL fsync latency.", obsv.LatencyBounds(), opts.ObsLabels...),
		)
		db.snapH = opts.Obs.Histogram("fb_snapshot_seconds", "Compaction snapshot duration (write + fsync + rename + journal reset).", obsv.LatencyBounds(), opts.ObsLabels...)
		db.compactionsC = opts.Obs.Counter("fb_bypass_compactions_total", "Aged tree compactions (rebuild + snapshot + swap) completed.", opts.ObsLabels...)
		db.reclaimedC = opts.Obs.Counter("fb_bypass_reclaimed_vertices_total", "Vertices reclaimed by aged compactions (aged out or ε-absorbed).", opts.ObsLabels...)
		db.compactH = opts.Obs.Histogram("fb_bypass_compaction_seconds", "Aged compaction duration (rebuild + snapshot + journal reset + swap).", obsv.LatencyBounds(), opts.ObsLabels...)
		db.pointsBefG = opts.Obs.Gauge("fb_bypass_compaction_points_before", "Distinct vertices entering the last aged compaction.", opts.ObsLabels...)
		db.pointsAftG = opts.Obs.Gauge("fb_bypass_compaction_points_after", "Distinct vertices surviving the last aged compaction.", opts.ObsLabels...)
	}
	// Journal every accepted insert before the tree mutates (the
	// observer runs under the tree's exclusive lock, after the insert is
	// certain to succeed). Append is all-or-nothing — a failed write or
	// fsync rolls the log back to the last record boundary — so an
	// aborted insert leaves journal and tree consistent with each other.
	// A failed append is a persistence failure and flips the module to
	// read-only degraded mode; client-side errors (dimension mismatch,
	// out-of-domain queries, quota) never reach this hook.
	wal.SetSyncOnAppend(opts.Sync)
	db.attachObserver(tree)
	return db, nil
}

// attachObserver wires the journaling hook to tree. CompactAged re-wires
// it onto each rebuilt tree it swaps in.
func (db *DurableBypass) attachObserver(tree *simplextree.Tree) {
	tree.SetObserver(func(q, value []float64, stamp uint64) error {
		if err := db.wal.Append(q, value, stamp); err != nil {
			db.noteDegraded(err)
			return err
		}
		return nil
	})
}

// Degraded reports the sticky persistence failure that flipped the
// module to read-only, or nil while it is healthy. The returned error
// satisfies errors.Is(err, ErrDegraded) and errors.Is against the root
// cause.
func (db *DurableBypass) Degraded() error {
	db.degMu.Lock()
	defer db.degMu.Unlock()
	return db.degraded
}

func (db *DurableBypass) noteDegraded(cause error) {
	db.degMu.Lock()
	if db.degraded == nil {
		db.degraded = errors.Join(ErrDegraded, cause)
	}
	db.degMu.Unlock()
}

// Insert stores a converged feedback outcome durably: an accepted insert
// is journaled before the in-memory tree changes, so once Insert returns
// true the outcome survives a crash.
func (db *DurableBypass) Insert(q []float64, oqp OQP) (bool, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.Degraded(); err != nil {
		return false, err
	}
	before := db.wal.Records()
	changed, err := db.Bypass.Insert(q, oqp)
	db.journaled += db.wal.Records() - before
	if err != nil && db.retryAfterQuotaLocked(err) {
		// Quota pressure with aging enabled: compact, then give the
		// insert the one retry the reclaimed space earned. The module
		// changed durably even if the retry is ε-skipped, so report
		// changed=true either way (caches over this tree must refresh).
		before = db.wal.Records()
		_, err = db.Bypass.Insert(q, oqp)
		db.journaled += db.wal.Records() - before
		changed = true
	}
	if err != nil {
		// If the failure was the journal append itself, the module just
		// flipped degraded; report the joined error so callers can match
		// ErrDegraded on the very first rejected insert.
		if derr := db.Degraded(); derr != nil {
			return changed, derr
		}
		return changed, err
	}
	return changed, db.maybeCompactLocked()
}

// retryAfterQuotaLocked implements compact-then-retry: when an insert
// bounced off a quota and aging is enabled, run one aged compaction and
// report whether it reclaimed anything (a retry without reclamation
// would bounce identically). Compaction errors are swallowed here — the
// caller returns the original quota error, and a persistence failure has
// already flipped the module degraded for the retry to discover.
func (db *DurableBypass) retryAfterQuotaLocked(err error) bool {
	if !errors.Is(err, ErrQuotaExceeded) || db.Tree().AgeHorizon() == 0 {
		return false
	}
	st, cerr := db.compactAgedLocked()
	return cerr == nil && st.Reclaimed > 0
}

// InsertBatch durably stores many outcomes under one exclusive-lock
// acquisition (see Bypass.InsertBatch for ordering and error semantics).
func (db *DurableBypass) InsertBatch(qs [][]float64, oqps []OQP) (int, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.Degraded(); err != nil {
		return 0, err
	}
	before := db.wal.Records()
	stored, err := db.Bypass.InsertBatch(qs, oqps)
	db.journaled += db.wal.Records() - before
	if err != nil && db.retryAfterQuotaLocked(err) {
		// The batch stopped at the first pair over quota with earlier
		// pairs applied; after a fruitful compaction, re-running the
		// whole batch is safe (applied pairs re-skip by ε/duplicate
		// idempotence) and picks up where the quota cut it off.
		before = db.wal.Records()
		more, rerr := db.Bypass.InsertBatch(qs, oqps)
		db.journaled += db.wal.Records() - before
		stored += more
		err = rerr
	}
	if err != nil {
		if derr := db.Degraded(); derr != nil {
			return stored, derr
		}
		return stored, err
	}
	return stored, db.maybeCompactLocked()
}

// Journaled reports the number of inserts journaled since the last
// compaction (including those replayed at open).
func (db *DurableBypass) Journaled() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.journaled
}

// WALSize reports the journal's current on-disk size in bytes — the
// recovery debt the next compaction would clear. Serving layers export it
// per shard so operators can see write pressure per partition.
func (db *DurableBypass) WALSize() int64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.wal.Size()
}

// Compact snapshots the tree and truncates the journal, bounding future
// recovery time. The snapshot is written to a temporary file, fsynced,
// and atomically renamed before the journal is reset, so a crash at any
// point leaves a recoverable (snapshot, journal) pair.
func (db *DurableBypass) Compact() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.Degraded(); err != nil {
		return err
	}
	return db.compactLocked()
}

func (db *DurableBypass) maybeCompactLocked() error {
	if db.opts.CompactEvery <= 0 || db.journaled < db.opts.CompactEvery {
		return nil
	}
	return db.compactLocked()
}

// compactLocked runs one compaction; any failure is a persistence
// failure and flips the module to read-only degraded mode. A partial
// compaction always leaves a recoverable (snapshot, journal) pair — the
// journal is only truncated after the new snapshot's rename is durable.
func (db *DurableBypass) compactLocked() error {
	if err := db.compactOnceLocked(); err != nil {
		db.noteDegraded(err)
		return db.Degraded()
	}
	return nil
}

func (db *DurableBypass) compactOnceLocked() error {
	var t0 time.Time
	if db.snapH != nil {
		t0 = time.Now()
	}
	if err := db.persistSwapLocked(db.Tree()); err != nil {
		return err
	}
	if db.snapH != nil {
		db.snapH.ObserveSince(t0)
	}
	return nil
}

// persistSwapLocked makes tree the module's durable state under the next
// compaction epoch: write it to a temporary snapshot, fsync, atomically
// rename it over the current snapshot, fsync the directory entry, then
// reset the journal to the new epoch. Every crash point leaves a
// recoverable (snapshot, journal) pair — before the rename recovery sees
// the old pair, after it the stale-journal reconciliation discards the
// pre-compaction records the new snapshot already contains.
func (db *DurableBypass) persistSwapLocked(tree *simplextree.Tree) error {
	newEpoch := db.epoch + 1
	tmp := db.snapPath + ".tmp"
	f, err := persist.CreateFile(db.fs, tmp)
	if err != nil {
		return err
	}
	if err := persist.SaveEpoch(f, tree, newEpoch); err != nil {
		_ = f.Close()
		_ = db.fs.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		_ = db.fs.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		_ = db.fs.Remove(tmp)
		return err
	}
	if err := db.fs.Rename(tmp, db.snapPath); err != nil {
		_ = db.fs.Remove(tmp)
		return err
	}
	// The rename's directory entry must be durable before the journal is
	// truncated: otherwise a power loss could persist the truncation but
	// not the rename, leaving an old snapshot next to an empty journal.
	if err := db.fs.SyncDir(filepath.Dir(db.snapPath)); err != nil {
		return err
	}
	if err := db.wal.Reset(newEpoch); err != nil {
		return err
	}
	db.epoch = newEpoch
	db.journaled = 0
	return nil
}

// CompactAged rebuilds the tree keeping only vertices alive under the
// configured age horizon, persists the rebuilt tree as the new snapshot
// (same atomic rename + journal reset discipline as Compact), and swaps
// it in. Until the swap, predictions and the snapshot both come from the
// old tree, so a crash at any point recovers either the full
// pre-compaction census or the exact rebuilt one — never a hybrid.
// Persistence failures flip the module to degraded read-only mode, like
// any failed compaction. The one-element slice matches the sharded
// module's per-shard shape.
func (db *DurableBypass) CompactAged() ([]CompactionStats, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.Degraded(); err != nil {
		return nil, err
	}
	st, err := db.compactAgedLocked()
	if err != nil {
		return nil, err
	}
	return []CompactionStats{st}, nil
}

func (db *DurableBypass) compactAgedLocked() (CompactionStats, error) {
	var t0 time.Time
	if db.compactH != nil {
		t0 = time.Now()
	}
	tree := db.Tree()
	nt, rst, err := tree.RebuildAged(tree.AgeHorizon())
	if err != nil {
		// A rebuild failure is deterministic geometry, not a persistence
		// failure: the module stays healthy on its current tree.
		return CompactionStats{}, fmt.Errorf("core: aged rebuild: %w", err)
	}
	if err := db.persistSwapLocked(nt); err != nil {
		db.noteDegraded(err)
		return CompactionStats{}, db.Degraded()
	}
	// The rebuilt tree is durable and the journal restarted at its epoch:
	// publish it. The swap holds insMu so a misrouted direct
	// Bypass.Insert cannot land in the tree being retired; the retired
	// tree's observer is detached so late readers of it cannot journal.
	db.attachObserver(nt)
	db.insMu.Lock()
	db.tree.Store(nt)
	db.insMu.Unlock()
	tree.SetObserver(nil)
	st := CompactionStats{Before: rst.Before, After: rst.After, Reclaimed: rst.Reclaimed}
	db.compactions.Add(1)
	db.reclaimed.Add(uint64(rst.Reclaimed))
	if db.compactionsC != nil {
		db.compactionsC.Inc()
		db.reclaimedC.Add(uint64(rst.Reclaimed))
		db.pointsBefG.Set(float64(rst.Before))
		db.pointsAftG.Set(float64(rst.After))
		db.compactH.ObserveSince(t0)
	}
	return st, nil
}

// Compactions reports the number of aged compactions completed since
// open; Reclaimed the total vertices they reclaimed.
func (db *DurableBypass) Compactions() uint64 { return db.compactions.Load() }

// Reclaimed reports the total vertices reclaimed by aged compactions
// since open.
func (db *DurableBypass) Reclaimed() uint64 { return db.reclaimed.Load() }

// Epoch reports the module's current compaction epoch.
func (db *DurableBypass) Epoch() uint64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.epoch
}

// Close flushes and closes the journal. The module must not be used
// afterwards; reopen with OpenDurable.
func (db *DurableBypass) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.Tree().SetObserver(nil)
	if err := db.wal.Sync(); err != nil {
		_ = db.wal.Close()
		return err
	}
	return db.wal.Close()
}

// Observer re-exports the simplextree hook type for callers layering
// their own journaling.
type Observer = simplextree.Observer
