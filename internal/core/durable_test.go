package core

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/persist"
	"repro/internal/vec"
)

func saveSnapshotForTest(path string, db *DurableBypass) error {
	return persist.SaveFile(path, db.Tree())
}

func randomSimplexPoint(rng *rand.Rand, d int) []float64 {
	w := make([]float64, d+1)
	var sum float64
	for i := range w {
		w[i] = 0.05 + rng.Float64()
		sum += w[i]
	}
	q := make([]float64, d)
	for i := 0; i < d; i++ {
		q[i] = w[i+1] / sum
	}
	return q
}

func randomOQP(rng *rand.Rand, d, p int) OQP {
	oqp := OQP{Delta: make([]float64, d), Weights: make([]float64, p)}
	for i := range oqp.Delta {
		oqp.Delta[i] = rng.NormFloat64() * 0.1
	}
	for i := range oqp.Weights {
		oqp.Weights[i] = rng.NormFloat64()
	}
	return oqp
}

// TestDurableKillRecovery is the acceptance test of the durability
// contract: a DurableBypass abandoned mid-run without Close (the
// process-kill simulation) must recover every acknowledged insert via
// snapshot + WAL replay, with bitwise-identical predictions.
func TestDurableKillRecovery(t *testing.T) {
	dir := t.TempDir()
	const d, p = 4, 4
	rng := rand.New(rand.NewSource(11))

	db, err := OpenDurable(dir, d, p, Config{Epsilon: 0.01}, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var qs [][]float64
	for i := 0; i < 40; i++ {
		q := randomSimplexPoint(rng, d)
		if _, err := db.Insert(q, randomOQP(rng, d, p)); err != nil {
			t.Fatal(err)
		}
		qs = append(qs, q)
	}
	// Reference predictions at the moment of the "crash".
	want := make([]OQP, len(qs))
	for i, q := range qs {
		if want[i], err = db.Predict(q); err != nil {
			t.Fatal(err)
		}
	}
	wantStats := db.Stats()
	// Crash: no Close, no Compact. The file handles are abandoned.

	recovered, err := OpenDurable(dir, d, p, Config{Epsilon: 0.01}, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer recovered.Close()
	gotStats := recovered.Stats()
	if gotStats != wantStats {
		t.Errorf("recovered stats %+v, want %+v", gotStats, wantStats)
	}
	for i, q := range qs {
		got, err := recovered.Predict(q)
		if err != nil {
			t.Fatal(err)
		}
		if !vec.Equal(got.Delta, want[i].Delta) || !vec.Equal(got.Weights, want[i].Weights) {
			t.Fatalf("prediction %d diverged after recovery: %+v vs %+v", i, got, want[i])
		}
	}
}

// TestDurableCompaction verifies snapshot + log truncation: automatic
// compaction keeps the journal short, and recovery after compaction (with
// more inserts journaled on top) still reproduces the full state.
func TestDurableCompaction(t *testing.T) {
	dir := t.TempDir()
	const d, p = 3, 3
	rng := rand.New(rand.NewSource(13))

	db, err := OpenDurable(dir, d, p, Config{Epsilon: 0}, DurableOptions{CompactEvery: 10})
	if err != nil {
		t.Fatal(err)
	}
	var qs [][]float64
	for i := 0; i < 25; i++ {
		q := randomSimplexPoint(rng, d)
		if _, err := db.Insert(q, randomOQP(rng, d, p)); err != nil {
			t.Fatal(err)
		}
		qs = append(qs, q)
	}
	// 25 accepted inserts with CompactEvery=10: at least two compactions
	// happened, so the journal holds fewer than 10 records.
	if j := db.Journaled(); j >= 10 {
		t.Errorf("journaled = %d after auto-compaction, want < 10", j)
	}
	if _, err := os.Stat(filepath.Join(dir, SnapshotFile)); err != nil {
		t.Errorf("no snapshot after compaction: %v", err)
	}
	want := make([]OQP, len(qs))
	for i, q := range qs {
		if want[i], err = db.Predict(q); err != nil {
			t.Fatal(err)
		}
	}
	// Crash and recover.
	recovered, err := OpenDurable(dir, d, p, Config{Epsilon: 0}, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer recovered.Close()
	for i, q := range qs {
		got, err := recovered.Predict(q)
		if err != nil {
			t.Fatal(err)
		}
		if !vec.Equal(got.Delta, want[i].Delta) || !vec.Equal(got.Weights, want[i].Weights) {
			t.Fatalf("prediction %d diverged after compacted recovery", i)
		}
	}
}

// TestDurableReplayIdempotent covers the crash window between the
// snapshot rename and the journal truncation: the journal then still
// holds records already baked into the snapshot, and replay must skip
// them instead of corrupting the tree. ε = 0 is the hard case —
// interpolation rounding defeats the ε skip there, and only the tree's
// exact-duplicate vertex-update check keeps replay idempotent.
func TestDurableReplayIdempotent(t *testing.T) {
	for _, epsilon := range []float64{0, 0.01} {
		t.Run(fmt.Sprintf("epsilon=%g", epsilon), func(t *testing.T) {
			dir := t.TempDir()
			const d, p = 3, 3
			rng := rand.New(rand.NewSource(17))
			cfg := Config{Epsilon: epsilon}

			db, err := OpenDurable(dir, d, p, cfg, DurableOptions{})
			if err != nil {
				t.Fatal(err)
			}
			var qs [][]float64
			for i := 0; i < 12; i++ {
				q := randomSimplexPoint(rng, d)
				if _, err := db.Insert(q, randomOQP(rng, d, p)); err != nil {
					t.Fatal(err)
				}
				qs = append(qs, q)
			}
			wantStats := db.Stats()
			want := make([]OQP, len(qs))
			for i, q := range qs {
				if want[i], err = db.Predict(q); err != nil {
					t.Fatal(err)
				}
			}
			// Simulate the torn compaction: write the snapshot but leave
			// the journal untouched (as if the crash hit before WAL.Reset).
			if err := saveSnapshotForTest(filepath.Join(dir, SnapshotFile), db); err != nil {
				t.Fatal(err)
			}

			recovered, err := OpenDurable(dir, d, p, cfg, DurableOptions{})
			if err != nil {
				t.Fatal(err)
			}
			defer recovered.Close()
			if got := recovered.Stats(); got != wantStats {
				t.Errorf("double-replay changed the tree: %+v, want %+v", got, wantStats)
			}
			for i, q := range qs {
				got, err := recovered.Predict(q)
				if err != nil {
					t.Fatal(err)
				}
				if !vec.Equal(got.Delta, want[i].Delta) || !vec.Equal(got.Weights, want[i].Weights) {
					t.Fatalf("prediction %d diverged after double replay", i)
				}
			}
		})
	}
}

// TestDurableBatchInsert exercises the batch write path end to end.
func TestDurableBatchInsert(t *testing.T) {
	dir := t.TempDir()
	const d, p = 3, 3
	rng := rand.New(rand.NewSource(19))
	db, err := OpenDurable(dir, d, p, Config{Epsilon: 0}, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	qs := make([][]float64, 15)
	oqps := make([]OQP, 15)
	for i := range qs {
		qs[i] = randomSimplexPoint(rng, d)
		oqps[i] = randomOQP(rng, d, p)
	}
	stored, err := db.InsertBatch(qs, oqps)
	if err != nil {
		t.Fatal(err)
	}
	if stored == 0 {
		t.Fatal("batch stored nothing")
	}
	if db.Journaled() != stored {
		t.Errorf("journaled %d, stored %d", db.Journaled(), stored)
	}
	want := make([]OQP, len(qs))
	for i, q := range qs {
		if want[i], err = db.Predict(q); err != nil {
			t.Fatal(err)
		}
	}
	recovered, err := OpenDurable(dir, d, p, Config{Epsilon: 0}, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer recovered.Close()
	for i, q := range qs {
		got, err := recovered.Predict(q)
		if err != nil {
			t.Fatal(err)
		}
		if !vec.Equal(got.Delta, want[i].Delta) || !vec.Equal(got.Weights, want[i].Weights) {
			t.Fatalf("prediction %d diverged after batch recovery", i)
		}
	}
}
