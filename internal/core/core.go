// Package core implements the FeedbackBypass module of §3 (Figures 4 and
// 5 of the paper): the component that sits next to an interactive
// retrieval system, learns the optimal query mapping
//
//	Mopt : q ↦ (Δopt, Wopt)
//
// from the outcomes of past feedback loops, and predicts optimal query
// parameters (OQPs) for new queries so the feedback loop can be bypassed
// or shortened.
//
// The mapping is stored in a Simplex Tree (package simplextree). This
// package adds the OQP vocabulary — the (Δ, W) pair, its flat encoding as
// the tree's stored vector — and the histogram codec that realizes
// Example 1 of the paper: 32-bin normalized histograms become points of
// the standard simplex in R^31 by dropping the redundant last bin, and one
// weight is pinned to 1, so Mopt maps R^31 to R^62.
package core

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/geom"
	"repro/internal/simplextree"
	"repro/internal/vec"
)

// ErrOutOfDomain re-exports the Simplex Tree's out-of-domain sentinel at
// the module boundary: every position-caused Predict/Insert failure wraps
// it, so callers (the serving layer in particular) can classify bad query
// points with errors.Is without importing simplextree.
var ErrOutOfDomain = simplextree.ErrOutOfDomain

// OQP is the pair of optimal query parameters of §3: the offset Δopt from
// the initial to the optimal query point, and the distance-function
// parameters Wopt.
type OQP struct {
	Delta   []float64 // length D (query-domain dimensionality)
	Weights []float64 // length P (independent distance parameters)
}

// Encode flattens the OQP into the N = D+P vector the Simplex Tree stores.
func (o OQP) Encode() []float64 {
	out := make([]float64, 0, len(o.Delta)+len(o.Weights))
	out = append(out, o.Delta...)
	out = append(out, o.Weights...)
	return out
}

// DecodeOQP splits a flat N-vector back into (Δ, W).
func DecodeOQP(v []float64, d, p int) (OQP, error) {
	if len(v) != d+p {
		return OQP{}, fmt.Errorf("core: OQP vector has length %d, want %d+%d", len(v), d, p)
	}
	return OQP{Delta: vec.Clone(v[:d]), Weights: vec.Clone(v[d : d+p])}, nil
}

// Config tunes a Bypass module.
type Config struct {
	// Epsilon is the Simplex Tree insert threshold ε (§4.2).
	Epsilon float64
	// Tol is the geometric tolerance; geom.DefaultTol when zero.
	Tol float64
	// Domain overrides the query domain simplex. When nil, the standard
	// simplex of dimension D is used — correct for normalized-histogram
	// features (§4.1). Use geom.CoveringSimplex for [0,1]^D domains.
	Domain *geom.Simplex
	// DefaultWeights seeds the domain corners' weight parameters; all-ones
	// when nil. Codecs that store weights in a transformed domain (e.g.
	// the log-ratio parameterization of HistogramCodec, whose neutral
	// element is zero) must supply their own defaults.
	DefaultWeights []float64
	// MaxVertices bounds the Simplex Tree's distinct vertices (the D+1
	// domain corners included); zero is unbounded. An insert past the
	// bound is rejected with an error wrapping
	// simplextree.ErrQuotaExceeded while predictions stay live. Durable
	// recovery is exempt: a module already past a lowered bound reopens
	// read-mostly instead of failing.
	MaxVertices int
	// MaxBytes bounds the tree's approximate heap footprint
	// (simplextree.Tree.SizeBytes); zero is unbounded.
	MaxBytes int64
	// AgeHorizon enables the lifecycle plane: a vertex not inserted or
	// reinforced (touched by a prediction over its leaf) within this many
	// logical ticks of the tree clock becomes reclaimable by CompactAged.
	// Zero disables aging entirely — the read path then takes no stamp
	// writes and the module behaves bitwise like one without a lifecycle.
	AgeHorizon uint64
}

// Bypass is the FeedbackBypass module: a learned Mopt with Predict and
// Insert, exactly the interface of Figure 5.
//
// The tree is held behind an atomic pointer so CompactAged can swap in a
// rebuilt tree without stalling readers: predictions run against
// whichever tree they loaded, writes serialize on insMu against the
// swap so no accepted insert can land in a tree that is about to be
// discarded.
type Bypass struct {
	tree  atomic.Pointer[simplextree.Tree]
	insMu sync.Mutex // serializes Insert/InsertBatch against CompactAged's swap
	d, p  int
}

// New creates a module for a D-dimensional query domain and P distance
// parameters. The default OQPs — zero offset, unit weights — seed the
// domain corners, so an untrained module predicts the default parameters
// everywhere.
func New(d, p int, cfg Config) (*Bypass, error) {
	if d <= 0 || p < 0 {
		return nil, fmt.Errorf("core: invalid dimensions D=%d, P=%d", d, p)
	}
	domain := cfg.Domain
	if domain == nil {
		domain = geom.StandardSimplex(d)
	}
	if domain.Dim() != d {
		return nil, fmt.Errorf("core: domain has dimension %d, want %d", domain.Dim(), d)
	}
	defW := cfg.DefaultWeights
	if defW == nil {
		defW = vec.Ones(p)
	}
	if len(defW) != p {
		return nil, fmt.Errorf("core: default weights have dimension %d, want %d", len(defW), p)
	}
	def := OQP{Delta: vec.Zeros(d), Weights: vec.Clone(defW)}
	tree, err := simplextree.New(domain, def.Encode(), simplextree.Options{
		Epsilon:     cfg.Epsilon,
		Tol:         cfg.Tol,
		MaxVertices: cfg.MaxVertices,
		MaxBytes:    cfg.MaxBytes,
		AgeHorizon:  cfg.AgeHorizon,
	})
	if err != nil {
		return nil, err
	}
	b := &Bypass{d: d, p: p}
	b.tree.Store(tree)
	return b, nil
}

// FromTree wraps an existing Simplex Tree (e.g. one loaded from disk) as a
// Bypass with the given parameter split.
func FromTree(tree *simplextree.Tree, p int) (*Bypass, error) {
	if tree == nil {
		return nil, errors.New("core: nil tree")
	}
	d := tree.Dim()
	if tree.OQPDim() != d+p {
		return nil, fmt.Errorf("core: tree stores %d-vectors, want D+P = %d+%d", tree.OQPDim(), d, p)
	}
	b := &Bypass{d: d, p: p}
	b.tree.Store(tree)
	return b, nil
}

// D returns the query-domain dimensionality.
func (b *Bypass) D() int { return b.d }

// P returns the number of distance parameters.
func (b *Bypass) P() int { return b.p }

// Tree exposes the underlying Simplex Tree (for persistence and stats).
// After a CompactAged the returned tree is the rebuilt one; callers must
// not cache the pointer across compactions.
func (b *Bypass) Tree() *simplextree.Tree { return b.tree.Load() }

// Predict returns the OQPs for query point q — the Mopt method of
// Figure 5. Weight validity (positivity etc.) is the codec's concern at
// decode time, since the stored parameterization is codec-defined.
// Predictions are pure reads and run in parallel.
func (b *Bypass) Predict(q []float64) (OQP, error) {
	raw, err := b.Tree().Predict(q)
	if err != nil {
		return OQP{}, err
	}
	return DecodeOQP(raw, b.d, b.p)
}

// PredictWithStats is Predict returning the per-call lookup statistics
// (the Figure 16 traversal series) alongside the OQPs.
func (b *Bypass) PredictWithStats(q []float64) (OQP, simplextree.PredictStats, error) {
	raw := make([]float64, b.d+b.p)
	st, err := b.Tree().PredictInto(raw, q)
	if err != nil {
		return OQP{}, st, err
	}
	oqp, err := DecodeOQP(raw, b.d, b.p)
	return oqp, st, err
}

// PredictBatch predicts OQPs for every query point under one read-lock
// acquisition, sharded across GOMAXPROCS goroutines; results are bitwise
// identical to serial Predict calls. On error (lowest-indexed failing
// query) the successful entries are still returned, with zero OQPs at
// the failed indices.
func (b *Bypass) PredictBatch(qs [][]float64) ([]OQP, error) {
	raws, _, err := b.Tree().PredictBatch(qs)
	out := make([]OQP, len(raws))
	for i, raw := range raws {
		if raw == nil {
			continue
		}
		oqp, derr := DecodeOQP(raw, b.d, b.p)
		if derr != nil {
			return out, derr
		}
		out[i] = oqp
	}
	return out, err
}

// Insert stores the OQPs the feedback loop converged to for query point q
// — the Insert method of Figure 5. It reports whether the tree changed
// (an insert within ε of the current prediction is skipped, §4.2).
func (b *Bypass) Insert(q []float64, oqp OQP) (bool, error) {
	if len(oqp.Delta) != b.d {
		return false, fmt.Errorf("core: Δ has dimension %d, want %d", len(oqp.Delta), b.d)
	}
	if len(oqp.Weights) != b.p {
		return false, fmt.Errorf("core: W has dimension %d, want %d", len(oqp.Weights), b.p)
	}
	if !vec.IsFinite(oqp.Delta) || !vec.IsFinite(oqp.Weights) {
		return false, errors.New("core: OQP contains non-finite values")
	}
	b.insMu.Lock()
	defer b.insMu.Unlock()
	return b.Tree().Insert(q, oqp.Encode())
}

// InsertBatch stores many converged feedback outcomes under one
// exclusive-lock acquisition, applying them in order with the same ε
// semantics as repeated Insert calls. It returns the number of pairs
// that changed the tree; on a validation or insert error it stops at the
// failing pair with earlier pairs applied.
func (b *Bypass) InsertBatch(qs [][]float64, oqps []OQP) (stored int, err error) {
	if len(qs) != len(oqps) {
		return 0, fmt.Errorf("core: batch has %d points but %d OQPs", len(qs), len(oqps))
	}
	values := make([][]float64, len(oqps))
	for i, oqp := range oqps {
		if len(oqp.Delta) != b.d {
			return 0, fmt.Errorf("core: OQP %d: Δ has dimension %d, want %d", i, len(oqp.Delta), b.d)
		}
		if len(oqp.Weights) != b.p {
			return 0, fmt.Errorf("core: OQP %d: W has dimension %d, want %d", i, len(oqp.Weights), b.p)
		}
		if !vec.IsFinite(oqp.Delta) || !vec.IsFinite(oqp.Weights) {
			return 0, fmt.Errorf("core: OQP %d contains non-finite values", i)
		}
		values[i] = oqp.Encode()
	}
	b.insMu.Lock()
	defer b.insMu.Unlock()
	return b.Tree().InsertBatch(qs, values)
}

// Stats reports the shape of the underlying Simplex Tree.
func (b *Bypass) Stats() simplextree.Stats { return b.Tree().Stats() }

// CompactionStats reports one tree's aged compaction: the vertex census
// before and after, and the number reclaimed (aged out or ε-absorbed).
type CompactionStats struct {
	Before    int `json:"before"`
	After     int `json:"after"`
	Reclaimed int `json:"reclaimed"`
}

// CompactAged rebuilds the in-memory tree keeping only the vertices
// still alive under the configured age horizon and swaps it in, freeing
// the memory of everything reclaimed. Predictions racing the swap finish
// against whichever tree they loaded; inserts serialize against it. The
// one-element slice matches the sharded module's per-shard shape so
// serving layers handle both uniformly.
//
// A DurableBypass must NOT be compacted through this method (its own
// CompactAged shadows it): a memory-only swap would diverge from the
// snapshot + WAL on disk, and the next recovery would resurrect every
// reclaimed vertex.
func (b *Bypass) CompactAged() ([]CompactionStats, error) {
	b.insMu.Lock()
	defer b.insMu.Unlock()
	tree := b.Tree()
	nt, st, err := tree.RebuildAged(tree.AgeHorizon())
	if err != nil {
		return nil, err
	}
	b.tree.Store(nt)
	return []CompactionStats{{Before: st.Before, After: st.After, Reclaimed: st.Reclaimed}}, nil
}

// HistogramCodec translates between the retrieval engine's world —
// full normalized histograms of Bins dimensions with Bins distance weights
// — and the module's reduced query domain, realizing Example 1: D = P =
// Bins−1, the last bin is dropped (it is redundant under normalization)
// and the last weight is pinned to 1.
//
// Weights are stored as log-ratios, W_i = ln(w_i / w_last). Re-weighting
// produces weights spanning many orders of magnitude (w ∝ 1/σ² with a
// variance floor), and the Simplex Tree interpolates stored vectors
// linearly; in the raw parameterization a single large-ratio neighbour
// dominates every prediction in its leaf. Interpolating log-ratios instead
// performs the geometric mixing appropriate for multiplicative parameters
// and keeps decoded weights positive by construction. The neutral element
// is 0 (= unit weight), matching the module's default OQPs through
// DefaultWeights.
type HistogramCodec struct {
	Bins int
}

// MaxLogWeight clamps decoded log-ratios: ratios are confined to
// [e^-MaxLogWeight, e^+MaxLogWeight] ≈ [1e-7, 1e7].
const MaxLogWeight = 16.0

// NewHistogramCodec validates the bin count.
func NewHistogramCodec(bins int) (HistogramCodec, error) {
	if bins < 2 {
		return HistogramCodec{}, fmt.Errorf("core: need at least 2 bins, got %d", bins)
	}
	return HistogramCodec{Bins: bins}, nil
}

// D returns the query-domain dimensionality (Bins−1).
func (c HistogramCodec) D() int { return c.Bins - 1 }

// P returns the number of independent weights (Bins−1).
func (c HistogramCodec) P() int { return c.Bins - 1 }

// DefaultWeights returns the stored-domain representation of uniform
// weights — all zeros in the log-ratio parameterization. Pass it as
// Config.DefaultWeights when creating the Bypass this codec feeds.
func (c HistogramCodec) DefaultWeights() []float64 { return vec.Zeros(c.Bins - 1) }

// QueryPoint maps a normalized histogram to its query-domain point by
// dropping the last bin.
func (c HistogramCodec) QueryPoint(feature []float64) ([]float64, error) {
	if len(feature) != c.Bins {
		return nil, fmt.Errorf("core: feature has %d bins, want %d", len(feature), c.Bins)
	}
	out := make([]float64, c.Bins-1)
	copy(out, feature[:c.Bins-1])
	return out, nil
}

// EncodeOQP converts the feedback loop's full-dimensional outcome — the
// optimal query point qopt and weight vector w, both of Bins components —
// into the reduced OQP relative to the initial query q:
//
//	Δ_i = qopt_i − q_i            (i < Bins−1; the last component is −ΣΔ)
//	W_i = ln(w_i / w_{Bins−1})    (pinning the last weight to 1)
//
// Every weight must be positive and finite.
func (c HistogramCodec) EncodeOQP(q, qopt, w []float64) (OQP, error) {
	if len(q) != c.Bins || len(qopt) != c.Bins || len(w) != c.Bins {
		return OQP{}, fmt.Errorf("core: expected %d-bin vectors, got q=%d qopt=%d w=%d", c.Bins, len(q), len(qopt), len(w))
	}
	last := w[c.Bins-1]
	if last <= 0 || math.IsNaN(last) || math.IsInf(last, 0) {
		return OQP{}, fmt.Errorf("core: pinned weight must be positive and finite, got %v", last)
	}
	delta := make([]float64, c.Bins-1)
	weights := make([]float64, c.Bins-1)
	for i := 0; i < c.Bins-1; i++ {
		delta[i] = qopt[i] - q[i]
		if w[i] <= 0 || math.IsNaN(w[i]) || math.IsInf(w[i], 0) {
			return OQP{}, fmt.Errorf("core: weight %d must be positive and finite, got %v", i, w[i])
		}
		lr := math.Log(w[i] / last)
		if lr > MaxLogWeight {
			lr = MaxLogWeight
		} else if lr < -MaxLogWeight {
			lr = -MaxLogWeight
		}
		weights[i] = lr
	}
	return OQP{Delta: delta, Weights: weights}, nil
}

// DecodeOQP reconstructs the full-dimensional (qopt, w) from a reduced OQP
// and the initial query q. The last Δ component is recovered from the
// normalization constraint (offsets of normalized points sum to zero); the
// pinned weight is 1; reconstructed query components are clamped at 0, and
// log-ratios at ±MaxLogWeight before exponentiation.
func (c HistogramCodec) DecodeOQP(q []float64, oqp OQP) (qopt, w []float64, err error) {
	if len(q) != c.Bins {
		return nil, nil, fmt.Errorf("core: query has %d bins, want %d", len(q), c.Bins)
	}
	if len(oqp.Delta) != c.Bins-1 || len(oqp.Weights) != c.Bins-1 {
		return nil, nil, fmt.Errorf("core: OQP dimensions (%d, %d), want (%d, %d)", len(oqp.Delta), len(oqp.Weights), c.Bins-1, c.Bins-1)
	}
	qopt = make([]float64, c.Bins)
	var deltaSum float64
	for i := 0; i < c.Bins-1; i++ {
		deltaSum += oqp.Delta[i]
		qopt[i] = q[i] + oqp.Delta[i]
		if qopt[i] < 0 {
			qopt[i] = 0
		}
	}
	qopt[c.Bins-1] = q[c.Bins-1] - deltaSum
	if qopt[c.Bins-1] < 0 {
		qopt[c.Bins-1] = 0
	}
	w = make([]float64, c.Bins)
	for i := 0; i < c.Bins-1; i++ {
		lr := oqp.Weights[i]
		switch {
		case math.IsNaN(lr):
			lr = 0
		case lr > MaxLogWeight:
			lr = MaxLogWeight
		case lr < -MaxLogWeight:
			lr = -MaxLogWeight
		}
		w[i] = math.Exp(lr)
	}
	w[c.Bins-1] = 1
	return qopt, w, nil
}
