package core

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/faultfs"
	"repro/internal/vec"
)

// TestQuotaRejectsInserts: a vertex quota lets exactly the headroom in,
// rejects the rest with the typed sentinel, and leaves predictions
// bitwise-identical to an unbounded twin fed only the accepted inserts.
func TestQuotaRejectsInserts(t *testing.T) {
	const d, p = 3, 2
	const headroom = 3
	rng := rand.New(rand.NewSource(51))

	quotaCfg := Config{Epsilon: 0, MaxVertices: d + 1 + headroom}
	db, err := OpenDurable(t.TempDir(), d, p, quotaCfg, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	twin, err := New(d, p, Config{Epsilon: 0})
	if err != nil {
		t.Fatal(err)
	}

	var accepted, rejected int
	var qs [][]float64
	for i := 0; i < headroom+4; i++ {
		q := randomSimplexPoint(rng, d)
		oqp := randomOQP(rng, d, p)
		qs = append(qs, q)
		_, err := db.Insert(q, oqp)
		switch {
		case err == nil:
			accepted++
			if _, terr := twin.Insert(q, oqp); terr != nil {
				t.Fatal(terr)
			}
		case errors.Is(err, ErrQuotaExceeded):
			rejected++
		default:
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	if accepted != headroom || rejected != 4 {
		t.Fatalf("accepted %d / rejected %d, want %d / 4", accepted, rejected, headroom)
	}
	if db.Degraded() != nil {
		t.Fatal("quota exhaustion must not flip degraded mode")
	}
	for i, q := range qs {
		got, err := db.Predict(q)
		if err != nil {
			t.Fatalf("quota-full predict %d: %v", i, err)
		}
		want, err := twin.Predict(q)
		if err != nil {
			t.Fatal(err)
		}
		if !vec.Equal(got.Delta, want.Delta) || !vec.Equal(got.Weights, want.Weights) {
			t.Fatalf("prediction %d diverged from healthy twin under quota", i)
		}
	}
}

// TestQuotaRecoveryExempt: lowering the quota below a module's persisted
// size must not break recovery — the module reopens, serves reads, and
// rejects further growth.
func TestQuotaRecoveryExempt(t *testing.T) {
	const d, p = 3, 2
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(53))

	db, err := OpenDurable(dir, d, p, Config{Epsilon: 0}, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var qs [][]float64
	for i := 0; i < 6; i++ {
		q := randomSimplexPoint(rng, d)
		if _, err := db.Insert(q, randomOQP(rng, d, p)); err != nil {
			t.Fatal(err)
		}
		qs = append(qs, q)
	}
	want := make([]OQP, len(qs))
	for i, q := range qs {
		if want[i], err = db.Predict(q); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen with a quota far below the six stored inserts.
	tight := Config{Epsilon: 0, MaxVertices: d + 2}
	recovered, err := OpenDurable(dir, d, p, tight, DurableOptions{})
	if err != nil {
		t.Fatalf("recovery with lowered quota failed: %v", err)
	}
	defer recovered.Close()
	for i, q := range qs {
		got, err := recovered.Predict(q)
		if err != nil {
			t.Fatal(err)
		}
		if !vec.Equal(got.Delta, want[i].Delta) || !vec.Equal(got.Weights, want[i].Weights) {
			t.Fatalf("prediction %d diverged after over-quota recovery", i)
		}
	}
	if _, err := recovered.Insert(randomSimplexPoint(rng, d), randomOQP(rng, d, p)); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("over-quota insert = %v, want ErrQuotaExceeded", err)
	}
}

// TestDegradedReadOnlyServing: when the disk under the journal goes bad,
// the module flips sticky read-only — typed rejections on every insert,
// predictions bitwise-identical to a healthy twin holding the same
// acknowledged state, concurrent readers unharmed.
func TestDegradedReadOnlyServing(t *testing.T) {
	const d, p = 3, 2
	rng := rand.New(rand.NewSource(55))
	fs := faultfs.New(nil)

	db, err := OpenDurable(t.TempDir(), d, p, Config{Epsilon: 0}, DurableOptions{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	twin, err := New(d, p, Config{Epsilon: 0})
	if err != nil {
		t.Fatal(err)
	}

	var qs [][]float64
	for i := 0; i < 5; i++ {
		q := randomSimplexPoint(rng, d)
		oqp := randomOQP(rng, d, p)
		if _, err := db.Insert(q, oqp); err != nil {
			t.Fatal(err)
		}
		if _, err := twin.Insert(q, oqp); err != nil {
			t.Fatal(err)
		}
		qs = append(qs, q)
	}

	// The disk goes bad: every further journal write fails.
	fs.AddRule(faultfs.Rule{Op: faultfs.OpWrite, Path: JournalFile, Nth: 0, Kind: faultfs.Fail})

	q := randomSimplexPoint(rng, d)
	if _, err := db.Insert(q, randomOQP(rng, d, p)); !errors.Is(err, ErrDegraded) {
		t.Fatalf("first failed insert = %v, want ErrDegraded", err)
	}
	if db.Degraded() == nil {
		t.Fatal("module not marked degraded")
	}
	// The flip is sticky and fails fast without touching the disk.
	opsBefore := fs.Ops()
	if _, err := db.Insert(randomSimplexPoint(rng, d), randomOQP(rng, d, p)); !errors.Is(err, ErrDegraded) {
		t.Fatalf("degraded insert = %v, want ErrDegraded", err)
	}
	if fs.Ops() != opsBefore {
		t.Fatal("degraded insert touched the disk")
	}
	if err := db.Compact(); !errors.Is(err, ErrDegraded) {
		t.Fatalf("degraded compact = %v, want ErrDegraded", err)
	}

	// Reads stay live and bitwise-correct while degraded, including
	// under concurrency.
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i, q := range qs {
				got, err := db.Predict(q)
				if err != nil {
					t.Errorf("degraded predict %d: %v", i, err)
					return
				}
				want, err := twin.Predict(q)
				if err != nil {
					t.Error(err)
					return
				}
				if !vec.Equal(got.Delta, want.Delta) || !vec.Equal(got.Weights, want.Weights) {
					t.Errorf("prediction %d diverged from healthy twin while degraded", i)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestConcurrentInsertsRaceQuotaFlip: many goroutines race the quota
// boundary; exactly the headroom lands, every loser gets the typed
// sentinel, and the tree stays consistent (run with -race).
func TestConcurrentInsertsRaceQuotaFlip(t *testing.T) {
	const d, p = 3, 2
	const headroom = 5
	rng := rand.New(rand.NewSource(57))

	db, err := OpenDurable(t.TempDir(), d, p, Config{Epsilon: 0, MaxVertices: d + 1 + headroom}, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	const workers = 8
	const perWorker = 2
	points := make([][]float64, workers*perWorker)
	oqps := make([]OQP, len(points))
	for i := range points {
		points[i] = randomSimplexPoint(rng, d)
		oqps[i] = randomOQP(rng, d, p)
	}

	var accepted, quotaRejected, unexpected int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := 0; k < perWorker; k++ {
				i := w*perWorker + k
				_, err := db.Insert(points[i], oqps[i])
				mu.Lock()
				switch {
				case err == nil:
					accepted++
				case errors.Is(err, ErrQuotaExceeded):
					quotaRejected++
				default:
					unexpected++
					t.Errorf("insert %d: %v", i, err)
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	if unexpected != 0 {
		t.Fatalf("%d unexpected errors", unexpected)
	}
	if accepted != headroom {
		t.Fatalf("accepted %d inserts, want exactly the %d headroom", accepted, headroom)
	}
	if quotaRejected != int64(len(points))-headroom {
		t.Fatalf("quota-rejected %d, want %d", quotaRejected, int64(len(points))-headroom)
	}
	if st := db.Stats(); st.DistinctVertices != d+1+headroom {
		t.Fatalf("tree holds %d vertices, want %d", st.DistinctVertices, d+1+headroom)
	}
}
