package core

import (
	"encoding/binary"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/faultfs"
	"repro/internal/simplextree"
)

// stampedVertexSet collects a tree's vertices as bitwise
// Point ++ Value ++ Stamp keys. Unlike vertexSet it distinguishes ages,
// so recovery must reproduce not just the geometry but the lifecycle
// state the aging horizon acts on.
func stampedVertexSet(tree *simplextree.Tree) map[string]bool {
	set := make(map[string]bool)
	tree.Walk(func(v *simplextree.Vertex) {
		buf := make([]byte, 0, 8*(len(v.Point)+len(v.Value)+1))
		var b [8]byte
		for _, x := range v.Point {
			binary.LittleEndian.PutUint64(b[:], math.Float64bits(x))
			buf = append(buf, b[:]...)
		}
		for _, x := range v.Value {
			binary.LittleEndian.PutUint64(b[:], math.Float64bits(x))
			buf = append(buf, b[:]...)
		}
		binary.LittleEndian.PutUint64(b[:], v.Stamp())
		buf = append(buf, b[:]...)
		set[string(buf)] = true
	})
	return set
}

func setSubset(sub, super map[string]bool) bool {
	for k := range sub {
		if !super[k] {
			return false
		}
	}
	return true
}

func setEqual(a, b map[string]bool) bool {
	return len(a) == len(b) && setSubset(a, b)
}

// lifecycleOp is one step of the deterministic compaction workload:
// either a single insert or an explicit aged compaction.
type lifecycleOp struct {
	compact bool
	q       []float64
	oqp     OQP
}

// lifecycleOps builds the fixed schedule: 10 inserts with an aged
// compaction after every 4th. With AgeHorizon 4 the first compaction
// (clock 4) reclaims nothing and the second (clock 8, cutoff 4)
// reclaims the first three inserts — the schedule exercises both the
// no-op and the reclaiming swap.
func lifecycleOps() []lifecycleOp {
	const d, p = 3, 2
	rng := rand.New(rand.NewSource(47))
	var ops []lifecycleOp
	for i := 0; i < 10; i++ {
		ops = append(ops, lifecycleOp{q: randomSimplexPoint(rng, d), oqp: randomOQP(rng, d, p)})
		if (i+1)%4 == 0 {
			ops = append(ops, lifecycleOp{compact: true})
		}
	}
	return ops
}

// openCompacting opens the lifecycle harness module: aging on
// (horizon 4) and journal-depth auto-compaction disabled, so the only
// snapshot swaps in a crash schedule are the workload's explicit
// CompactAged calls.
func openCompacting(dir string, fs *faultfs.FS) (*DurableBypass, error) {
	opts := DurableOptions{CompactEvery: 1 << 30, Sync: true}
	if fs != nil {
		opts.FS = fs
	}
	return OpenDurable(dir, 3, 2, Config{Epsilon: 0, AgeHorizon: 4}, opts)
}

func applyLifecycleOp(db *DurableBypass, op lifecycleOp) error {
	if op.compact {
		_, err := db.CompactAged()
		return err
	}
	_, err := db.Insert(op.q, op.oqp)
	return err
}

// TestCrashScheduleCompaction enumerates every crash point along
// insert → WAL-append → aged-compaction snapshot swap. A healthy run
// records the census sequence S[0..len(ops)] (stamped, bitwise); then
// for each n a fresh module runs the same ops with a kill at the nth
// mutating filesystem operation. With k ops acknowledged before the
// first failure, recovery must land between S[k] and the state the
// in-flight op was moving toward: an insert only adds (S[k] ⊆ got ⊆
// S[k+1]), a compaction only removes (S[k+1] ⊆ got ⊆ S[k] — survivors
// re-insert bitwise, corners carry over). Anything below the floor is
// an acknowledged loss; anything above the ceiling is a hybrid state
// neither run ever held.
func TestCrashScheduleCompaction(t *testing.T) {
	ops := lifecycleOps()

	// Healthy run: census after every op.
	db, err := openCompacting(t.TempDir(), nil)
	if err != nil {
		t.Fatalf("healthy open: %v", err)
	}
	seq := []map[string]bool{stampedVertexSet(db.Tree())}
	for i, op := range ops {
		if err := applyLifecycleOp(db, op); err != nil {
			t.Fatalf("healthy op %d: %v", i, err)
		}
		seq = append(seq, stampedVertexSet(db.Tree()))
	}
	if db.Reclaimed() == 0 {
		t.Fatal("healthy workload reclaimed nothing; the schedule misses the aging path")
	}
	if err := db.Close(); err != nil {
		t.Fatalf("healthy close: %v", err)
	}

	// Counting run: measure the schedule length including Close.
	counting := faultfs.New(nil)
	cdb, err := openCompacting(t.TempDir(), counting)
	if err != nil {
		t.Fatalf("counting open: %v", err)
	}
	for i, op := range ops {
		if err := applyLifecycleOp(cdb, op); err != nil {
			t.Fatalf("counting op %d: %v", i, err)
		}
	}
	if !setEqual(stampedVertexSet(cdb.Tree()), seq[len(ops)]) {
		t.Fatal("counting run diverged from the healthy census sequence")
	}
	if err := cdb.Close(); err != nil {
		t.Fatalf("counting close: %v", err)
	}
	m := counting.Ops()
	if m < 20 {
		t.Fatalf("suspiciously short schedule: %d mutating ops", m)
	}
	t.Logf("compaction crash schedule: %d mutating filesystem operations", m)

	var postCompaction, inFlight int
	for n := 1; n <= m; n++ {
		dir := t.TempDir()
		fs := faultfs.New(nil)
		fs.SetCrashAt(n)

		acked := 0
		opened := false
		if db, err := openCompacting(dir, fs); err == nil {
			opened = true
			for _, op := range ops {
				if applyLifecycleOp(db, op) != nil {
					break // the FS is dead after the crash; later ops all fail
				}
				acked++
			}
			_ = db.Close()
		}
		if !fs.Crashed() {
			t.Fatalf("crash point %d/%d never fired", n, m)
		}

		recovered, err := openCompacting(dir, nil)
		if err != nil {
			t.Fatalf("crash point %d/%d: recovery failed: %v", n, m, err)
		}
		got := stampedVertexSet(recovered.Tree())
		if err := recovered.Close(); err != nil {
			t.Fatalf("crash point %d/%d: closing recovered module: %v", n, m, err)
		}

		var lo, hi map[string]bool
		switch {
		case !opened:
			lo, hi = seq[0], seq[0]
		case acked == len(ops):
			lo, hi = seq[acked], seq[acked]
		case ops[acked].compact:
			lo, hi = seq[acked+1], seq[acked]
		default:
			lo, hi = seq[acked], seq[acked+1]
		}
		if !setSubset(lo, got) {
			t.Fatalf("crash point %d/%d: acknowledged state lost (acked %d ops, recovered %d vertices, floor %d)",
				n, m, acked, len(got), len(lo))
		}
		if !setSubset(got, hi) {
			t.Fatalf("crash point %d/%d: hybrid state: recovery holds vertices neither pre- nor post-op census had (acked %d ops)",
				n, m, acked)
		}
		if opened && acked < len(ops) && setEqual(got, seq[acked+1]) && !setEqual(got, seq[acked]) {
			if ops[acked].compact {
				postCompaction++
			} else {
				inFlight++
			}
		}
	}
	t.Logf("crash sweep: %d points, %d landed post-compaction, %d replayed the in-flight insert", m, postCompaction, inFlight)
}

// TestAgingDisabledParity pins the satellite property that a disabled
// horizon is a bitwise no-op: horizon 0 and horizon 2^64−1 modules fed
// the same inserts produce bitwise-identical predictions, and
// CompactAged on either reclaims nothing and leaves the stamped census
// bitwise unchanged.
func TestAgingDisabledParity(t *testing.T) {
	const d, p = 3, 2
	zero, err := New(d, p, Config{Epsilon: 0})
	if err != nil {
		t.Fatal(err)
	}
	inf, err := New(d, p, Config{Epsilon: 0, AgeHorizon: math.MaxUint64})
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(51))
	var qs [][]float64
	for i := 0; i < 16; i++ {
		q := randomSimplexPoint(rng, d)
		oqp := randomOQP(rng, d, p)
		qs = append(qs, q)
		if _, err := zero.Insert(q, oqp); err != nil {
			t.Fatalf("insert %d (horizon 0): %v", i, err)
		}
		if _, err := inf.Insert(q, oqp); err != nil {
			t.Fatalf("insert %d (horizon max): %v", i, err)
		}
	}
	for i, q := range qs {
		a, errA := zero.Predict(q)
		b, errB := inf.Predict(q)
		if errA != nil || errB != nil {
			t.Fatalf("predict %d: %v / %v", i, errA, errB)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("predict %d: horizon 0 and horizon max disagree bitwise: %+v vs %+v", i, a, b)
		}
	}

	for name, b := range map[string]*Bypass{"horizon-0": zero, "horizon-max": inf} {
		before := stampedVertexSet(b.Tree())
		stats, err := b.CompactAged()
		if err != nil {
			t.Fatalf("%s: CompactAged: %v", name, err)
		}
		for _, st := range stats {
			if st.Reclaimed != 0 {
				t.Fatalf("%s: disabled horizon reclaimed %d vertices", name, st.Reclaimed)
			}
		}
		if !setEqual(before, stampedVertexSet(b.Tree())) {
			t.Fatalf("%s: CompactAged changed the stamped census with aging disabled", name)
		}
	}
	if !setEqual(vertexSet(zero.Tree()), vertexSet(inf.Tree())) {
		t.Fatal("horizon 0 and horizon max trees diverged geometrically")
	}
}

// TestTimestampedReplayIdempotent pins the versioned-WAL satellite:
// timestamped records replay to the same stamped census however many
// times recovery runs, so the aging horizon sees the same ages after
// one replay or five.
func TestTimestampedReplayIdempotent(t *testing.T) {
	const d, p = 3, 2
	dir := t.TempDir()
	db, err := openCompacting(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(53))
	for i := 0; i < 6; i++ {
		if _, err := db.Insert(randomSimplexPoint(rng, d), randomOQP(rng, d, p)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	want := stampedVertexSet(db.Tree())
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	for round := 1; round <= 3; round++ {
		r, err := openCompacting(dir, nil)
		if err != nil {
			t.Fatalf("reopen %d: %v", round, err)
		}
		got := stampedVertexSet(r.Tree())
		if err := r.Close(); err != nil {
			t.Fatalf("close %d: %v", round, err)
		}
		if !setEqual(want, got) {
			t.Fatalf("reopen %d: replay is not idempotent: %d vertices recovered, %d expected (stamped, bitwise)",
				round, len(got), len(want))
		}
	}
}

// TestCompactAgedDurableRecovery pins the swap protocol end to end:
// an aged compaction that reclaims vertices bumps the epoch, and a
// clean reopen reproduces the post-compaction stamped census bitwise —
// reclaimed vertices stay dead (the old WAL generation is discarded,
// not replayed over the new snapshot).
func TestCompactAgedDurableRecovery(t *testing.T) {
	const d, p = 3, 2
	dir := t.TempDir()
	db, err := openCompacting(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(59))
	for i := 0; i < 10; i++ {
		if _, err := db.Insert(randomSimplexPoint(rng, d), randomOQP(rng, d, p)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	epoch0 := db.Epoch()
	stats, err := db.CompactAged()
	if err != nil {
		t.Fatalf("CompactAged: %v", err)
	}
	if len(stats) != 1 || stats[0].Reclaimed == 0 {
		t.Fatalf("expected a reclaiming compaction, got %+v", stats)
	}
	if got := db.Epoch(); got != epoch0+1 {
		t.Fatalf("compaction epoch: got %d, want %d", got, epoch0+1)
	}
	want := stampedVertexSet(db.Tree())
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := openCompacting(dir, nil)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer r.Close()
	if got := r.Epoch(); got != epoch0+1 {
		t.Fatalf("recovered epoch: got %d, want %d", got, epoch0+1)
	}
	got := stampedVertexSet(r.Tree())
	if !setEqual(want, got) {
		if len(got) > len(want) {
			t.Fatalf("reclaimed vertices resurrected on reopen: %d recovered, %d expected", len(got), len(want))
		}
		t.Fatalf("post-compaction census not recovered bitwise: %d recovered, %d expected", len(got), len(want))
	}
}

// hasVertexAt reports whether the tree holds a vertex bitwise equal to q.
func hasVertexAt(tree *simplextree.Tree, q []float64) bool {
	found := false
	tree.Walk(func(v *simplextree.Vertex) {
		if len(v.Point) != len(q) {
			return
		}
		for i := range q {
			if math.Float64bits(v.Point[i]) != math.Float64bits(q[i]) {
				return
			}
		}
		found = true
	})
	return found
}

// TestDurableQuotaCompactRetry pins the serving policy: an insert that
// trips the vertex quota triggers one aged compaction, and when that
// reclaims space the insert is retried and acknowledged instead of
// surfacing ErrQuotaExceeded. Geometry: d=3 gives 4 corners, quota 8
// admits 4 inserts; the 5th trips the quota at clock 4, horizon 2 puts
// the cutoff at 2, and the stamp-1 vertex is reclaimed to make room.
func TestDurableQuotaCompactRetry(t *testing.T) {
	const d, p = 3, 2
	db, err := OpenDurable(t.TempDir(), d, p,
		Config{Epsilon: 0, MaxVertices: 8, AgeHorizon: 2},
		DurableOptions{CompactEvery: 1 << 30, Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	rng := rand.New(rand.NewSource(61))
	pts := make([][]float64, 5)
	for i := range pts {
		pts[i] = randomSimplexPoint(rng, d)
		changed, err := db.Insert(pts[i], randomOQP(rng, d, p))
		if i < 4 {
			if err != nil || !changed {
				t.Fatalf("insert %d under quota: changed=%v err=%v", i, changed, err)
			}
			continue
		}
		// The 5th insert must compact-then-retry, not fail.
		if err != nil {
			t.Fatalf("quota-pressure insert surfaced an error despite reclaimable vertices: %v", err)
		}
		if !changed {
			t.Fatal("quota-pressure insert not acknowledged after compaction")
		}
	}
	if got := db.Compactions(); got != 1 {
		t.Fatalf("compactions after quota retry: got %d, want 1", got)
	}
	if got := db.Reclaimed(); got == 0 {
		t.Fatal("quota-pressure compaction reclaimed nothing")
	}
	if !hasVertexAt(db.Tree(), pts[4]) {
		t.Fatal("retried insert missing from the tree")
	}
	if hasVertexAt(db.Tree(), pts[0]) {
		t.Fatal("oldest vertex survived the quota-pressure compaction")
	}
}
