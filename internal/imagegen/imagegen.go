// Package imagegen synthesizes the categorized colour-image collection
// that substitutes for the IMSI MasterPhotos data set used in §5 of the
// paper (a commercial CD that is not available). See DESIGN.md §4 for the
// substitution argument.
//
// Every image belongs to a category and is rendered as an actual RGB
// raster by sampling pixel colours in HSV space from a category model:
//
//   - a *signature* — colour blobs present in every image of the category
//     (low-variance, discriminative bins: what re-weighting should find);
//   - a *theme* — one of several per-category palettes chosen per image
//     (high-variance bins: why plain Euclidean search struggles, mirroring
//     the paper's observation that e.g. "Fish" images range from blue
//     sharks to yellow and orange tropical fish);
//   - per-image jitter — small hue/saturation shifts so images within a
//     theme are similar but never identical.
//
// Noise categories share hues with the query categories (Ocean vs. Fish,
// Forest vs. TreeLeaf, Desert vs. Mammal, …) so that default-parameter
// retrieval is genuinely hard, as in the paper.
package imagegen

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/histogram"
)

// Blob is a Gaussian colour blob in HSV space.
type Blob struct {
	Hue    float64 // mean hue in degrees [0, 360)
	HueStd float64 // hue standard deviation in degrees
	Sat    float64 // mean saturation in [0, 1]
	SatStd float64 // saturation standard deviation
	Weight float64 // relative pixel mass (normalized within an image)
}

// Theme is a named palette: the per-image colour variation of a category.
type Theme struct {
	Name  string
	Blobs []Blob
}

// Category describes one image category.
type Category struct {
	Name      string
	Count     int
	Query     bool   // true for the 7 categories queries are sampled from
	Signature []Blob // blobs shared by every image of the category
	Themes    []Theme
}

// Config drives the generator.
type Config struct {
	Seed       int64
	ImageW     int
	ImageH     int
	Categories []Category
}

// Generated pairs a rendered image with its category label.
type Generated struct {
	ID       int
	Category string
	Theme    string
	Image    *histogram.Image
}

// Validate checks the configuration for structural errors.
func (c Config) Validate() error {
	if c.ImageW <= 0 || c.ImageH <= 0 {
		return fmt.Errorf("imagegen: invalid image size %dx%d", c.ImageW, c.ImageH)
	}
	if len(c.Categories) == 0 {
		return errors.New("imagegen: no categories")
	}
	for _, cat := range c.Categories {
		if cat.Name == "" {
			return errors.New("imagegen: category with empty name")
		}
		if cat.Count < 0 {
			return fmt.Errorf("imagegen: category %q has negative count", cat.Name)
		}
		if len(cat.Themes) == 0 {
			return fmt.Errorf("imagegen: category %q has no themes", cat.Name)
		}
		for _, th := range cat.Themes {
			if len(th.Blobs)+len(cat.Signature) == 0 {
				return fmt.Errorf("imagegen: category %q theme %q has no blobs", cat.Name, th.Name)
			}
			for _, b := range append(append([]Blob{}, cat.Signature...), th.Blobs...) {
				if b.Weight <= 0 {
					return fmt.Errorf("imagegen: category %q theme %q has non-positive blob weight", cat.Name, th.Name)
				}
				if b.Sat < 0 || b.Sat > 1 {
					return fmt.Errorf("imagegen: category %q theme %q has saturation %v outside [0,1]", cat.Name, th.Name, b.Sat)
				}
			}
		}
	}
	return nil
}

// Generate renders the full collection deterministically from the seed.
// Image i of the configuration always receives the same pixels, regardless
// of how many categories precede it.
func Generate(cfg Config) ([]Generated, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var out []Generated
	id := 0
	for _, cat := range cfg.Categories {
		for n := 0; n < cat.Count; n++ {
			rng := rand.New(rand.NewSource(imageSeed(cfg.Seed, id)))
			theme := cat.Themes[rng.Intn(len(cat.Themes))]
			img, err := renderImage(rng, cfg.ImageW, cfg.ImageH, cat.Signature, theme.Blobs)
			if err != nil {
				return nil, err
			}
			out = append(out, Generated{ID: id, Category: cat.Name, Theme: theme.Name, Image: img})
			id++
		}
	}
	return out, nil
}

// imageSeed derives a well-mixed per-image seed (splitmix64 finalizer).
func imageSeed(seed int64, id int) int64 {
	z := uint64(seed) + uint64(id)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// renderImage samples each pixel from the mixture of signature and theme
// blobs, after applying a per-image jitter to blob centers and masses.
func renderImage(rng *rand.Rand, w, h int, signature, themeBlobs []Blob) (*histogram.Image, error) {
	blobs := make([]Blob, 0, len(signature)+len(themeBlobs))
	blobs = append(blobs, signature...)
	blobs = append(blobs, themeBlobs...)

	// Per-image jitter: the palette drifts and the blob masses vary, so
	// two images of the same theme are similar but clearly distinct —
	// "within each category images largely differ as to color content"
	// (§5). The mass jitter is what keeps default Euclidean retrieval from
	// trivially clustering same-theme images.
	hueJitter := rng.NormFloat64() * 12
	satJitter := rng.NormFloat64() * 0.06
	weights := make([]float64, len(blobs))
	var totalW float64
	for i, b := range blobs {
		weights[i] = b.Weight * math.Exp(rng.NormFloat64()*0.7)
		totalW += weights[i]
	}
	cum := make([]float64, len(blobs))
	acc := 0.0
	for i := range blobs {
		acc += weights[i] / totalW
		cum[i] = acc
	}

	img, err := histogram.NewImage(w, h)
	if err != nil {
		return nil, err
	}
	for i := range img.Pix {
		b := blobs[pickBlob(cum, rng.Float64())]
		hue := wrapHue(b.Hue + hueJitter + rng.NormFloat64()*b.HueStd)
		sat := clamp01(b.Sat + satJitter + rng.NormFloat64()*b.SatStd)
		val := 0.35 + 0.65*rng.Float64() // brightness is not a feature; keep it away from 0 so hue is well-defined
		img.Pix[i] = histogram.FromHSV(hue, sat, val)
	}
	return img, nil
}

func pickBlob(cum []float64, u float64) int {
	for i, c := range cum {
		if u <= c {
			return i
		}
	}
	return len(cum) - 1
}

func wrapHue(h float64) float64 {
	h = math.Mod(h, 360)
	if h < 0 {
		h += 360
	}
	return h
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
