package imagegen

import (
	"math"
	"testing"

	"repro/internal/histogram"
)

func smallConfig() Config {
	return Config{
		Seed:   1,
		ImageW: 16,
		ImageH: 16,
		Categories: []Category{
			{
				Name: "A", Count: 5, Query: true,
				Signature: []Blob{{Hue: 100, HueStd: 5, Sat: 0.6, SatStd: 0.05, Weight: 0.5}},
				Themes: []Theme{
					{Name: "t1", Blobs: []Blob{{Hue: 200, HueStd: 5, Sat: 0.5, SatStd: 0.05, Weight: 0.5}}},
					{Name: "t2", Blobs: []Blob{{Hue: 300, HueStd: 5, Sat: 0.5, SatStd: 0.05, Weight: 0.5}}},
				},
			},
			{
				Name: "B", Count: 3,
				Themes: []Theme{
					{Name: "t", Blobs: []Blob{{Hue: 40, HueStd: 5, Sat: 0.8, SatStd: 0.05, Weight: 1}}},
				},
			},
		},
	}
}

func TestValidate(t *testing.T) {
	good := smallConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero width", func(c *Config) { c.ImageW = 0 }},
		{"no categories", func(c *Config) { c.Categories = nil }},
		{"empty name", func(c *Config) { c.Categories[0].Name = "" }},
		{"negative count", func(c *Config) { c.Categories[0].Count = -1 }},
		{"no themes", func(c *Config) { c.Categories[0].Themes = nil }},
		{"zero weight", func(c *Config) { c.Categories[0].Themes[0].Blobs[0].Weight = 0 }},
		{"bad saturation", func(c *Config) { c.Categories[0].Themes[0].Blobs[0].Sat = 1.5 }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cfg := smallConfig()
			c.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Error("expected validation error")
			}
		})
	}
}

func TestGenerateCountsAndLabels(t *testing.T) {
	cfg := smallConfig()
	imgs, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(imgs) != 8 {
		t.Fatalf("generated %d images, want 8", len(imgs))
	}
	counts := map[string]int{}
	for i, g := range imgs {
		if g.ID != i {
			t.Errorf("image %d has ID %d", i, g.ID)
		}
		if g.Image == nil || len(g.Image.Pix) != 256 {
			t.Errorf("image %d has wrong raster", i)
		}
		counts[g.Category]++
	}
	if counts["A"] != 5 || counts["B"] != 3 {
		t.Errorf("category counts = %v", counts)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := smallConfig()
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		for p := range a[i].Image.Pix {
			if a[i].Image.Pix[p] != b[i].Image.Pix[p] {
				t.Fatalf("image %d pixel %d differs between runs", i, p)
			}
		}
		if a[i].Theme != b[i].Theme {
			t.Fatalf("image %d theme differs", i)
		}
	}
}

func TestGenerateDifferentSeedsDiffer(t *testing.T) {
	cfg := smallConfig()
	a, _ := Generate(cfg)
	cfg.Seed = 2
	b, _ := Generate(cfg)
	same := true
	for i := range a {
		for p := range a[i].Image.Pix {
			if a[i].Image.Pix[p] != b[i].Image.Pix[p] {
				same = false
			}
		}
	}
	if same {
		t.Error("different seeds produced identical collections")
	}
}

func TestGenerateInvalidConfig(t *testing.T) {
	cfg := smallConfig()
	cfg.ImageW = -1
	if _, err := Generate(cfg); err == nil {
		t.Error("expected error for invalid config")
	}
}

func TestSignatureBinsAreLowVariance(t *testing.T) {
	// The defining property of the generator: within a category, signature
	// hue bins should have much lower relative spread across images than
	// theme bins. Generate a category with a strong signature and verify.
	cfg := Config{
		Seed: 7, ImageW: 24, ImageH: 24,
		Categories: []Category{{
			Name: "X", Count: 40, Query: true,
			Signature: []Blob{{Hue: 100, HueStd: 4, Sat: 0.6, SatStd: 0.04, Weight: 0.5}},
			Themes: []Theme{
				{Name: "a", Blobs: []Blob{{Hue: 220, HueStd: 4, Sat: 0.6, SatStd: 0.04, Weight: 0.5}}},
				{Name: "b", Blobs: []Blob{{Hue: 310, HueStd: 4, Sat: 0.6, SatStd: 0.04, Weight: 0.5}}},
			},
		}},
	}
	imgs, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ex := histogram.DefaultExtractor
	// hueMass sums histogram mass over every (hue, sat) bin whose hue range
	// intersects [lo, hi] degrees — jitter spreads blobs across adjacent
	// bins, so region masses are the stable observable.
	hueMass := func(hist []float64, lo, hi float64) float64 {
		binWidth := 360.0 / float64(ex.HueBins)
		var m float64
		for hb := 0; hb < ex.HueBins; hb++ {
			bLo, bHi := float64(hb)*binWidth, float64(hb+1)*binWidth
			if bHi <= lo || bLo >= hi {
				continue
			}
			for sb := 0; sb < ex.SatBins; sb++ {
				m += hist[hb*ex.SatBins+sb]
			}
		}
		return m
	}
	var feats [][]float64
	for _, g := range imgs {
		h, err := ex.Extract(g.Image)
		if err != nil {
			t.Fatal(err)
		}
		feats = append(feats, h)
	}
	var sig, themeA, themeB []float64
	for _, h := range feats {
		sig = append(sig, hueMass(h, 60, 140))        // signature hue 100 ± drift
		themeA = append(themeA, hueMass(h, 180, 260)) // theme a hue 220
		themeB = append(themeB, hueMass(h, 270, 350)) // theme b hue 310
	}
	min := func(xs []float64) float64 {
		m := xs[0]
		for _, x := range xs {
			if x < m {
				m = x
			}
		}
		return m
	}
	max := func(xs []float64) float64 {
		m := xs[0]
		for _, x := range xs {
			if x > m {
				m = x
			}
		}
		return m
	}
	// The signature region is present in every image, while each theme
	// region essentially disappears in images of the other theme — the
	// bimodality that makes default Euclidean retrieval struggle within a
	// category (§5).
	if got := min(sig); got < 0.08 {
		t.Errorf("signature region min mass %v — signature missing from some image", got)
	}
	if got := min(themeA); got > 0.05 {
		t.Errorf("theme A region min %v — theme A present in every image", got)
	}
	if got := min(themeB); got > 0.05 {
		t.Errorf("theme B region min %v — theme B present in every image", got)
	}
	if max(themeA) < 0.2 || max(themeB) < 0.2 {
		t.Errorf("theme regions never dominant: maxA=%v maxB=%v", max(themeA), max(themeB))
	}
}

func TestIMSILikeCardinalities(t *testing.T) {
	cfg := IMSILike(1, 1)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	want := map[string]int{
		"Bird": 318, "Fish": 129, "Mammal": 834, "Blossom": 189,
		"TreeLeaf": 575, "Bridge": 148, "Monument": 298,
	}
	queryTotal := 0
	for _, cat := range cfg.Categories {
		if w, ok := want[cat.Name]; ok {
			if cat.Count != w {
				t.Errorf("%s count = %d, want %d", cat.Name, cat.Count, w)
			}
			if !cat.Query {
				t.Errorf("%s should be a query category", cat.Name)
			}
			queryTotal += cat.Count
		} else if cat.Query {
			t.Errorf("unexpected query category %s", cat.Name)
		}
	}
	if queryTotal != 2491 {
		t.Errorf("query image total = %d, want 2491 (paper §5)", queryTotal)
	}
	total := cfg.TotalCount()
	if total < 9000 || total > 11000 {
		t.Errorf("collection size = %d, want ≈10,000", total)
	}
	names := cfg.QueryCategoryNames()
	if len(names) != 7 {
		t.Errorf("query categories = %v", names)
	}
}

func TestIMSILikeScaling(t *testing.T) {
	cfg := IMSILike(1, 0.1)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, cat := range cfg.Categories {
		if cat.Count < 2 {
			t.Errorf("%s scaled below minimum: %d", cat.Name, cat.Count)
		}
	}
	full := IMSILike(1, 1).TotalCount()
	small := cfg.TotalCount()
	if small >= full/5 {
		t.Errorf("scale 0.1 should shrink the collection: %d vs %d", small, full)
	}
}

func TestIMSILikeGeneratesAtSmallScale(t *testing.T) {
	cfg := IMSILike(3, 0.02)
	imgs, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(imgs) != cfg.TotalCount() {
		t.Fatalf("generated %d, config says %d", len(imgs), cfg.TotalCount())
	}
	// All histograms must be valid (normalized, finite).
	ex := histogram.DefaultExtractor
	for _, g := range imgs[:10] {
		h, err := ex.Extract(g.Image)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for _, v := range h {
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("image %d histogram sum %v", g.ID, sum)
		}
	}
}

func TestImageSeedMixing(t *testing.T) {
	// Adjacent IDs must give well-separated seeds.
	seen := map[int64]bool{}
	for id := 0; id < 1000; id++ {
		s := imageSeed(42, id)
		if seen[s] {
			t.Fatalf("seed collision at id %d", id)
		}
		seen[s] = true
	}
}

func TestWrapHue(t *testing.T) {
	for _, c := range []struct{ in, want float64 }{{-10, 350}, {370, 10}, {720, 0}, {0, 0}, {359, 359}} {
		if got := wrapHue(c.in); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("wrapHue(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestClamp01(t *testing.T) {
	for _, c := range []struct{ in, want float64 }{{-0.5, 0}, {0.5, 0.5}, {1.5, 1}} {
		if got := clamp01(c.in); got != c.want {
			t.Errorf("clamp01(%v) = %v", c.in, got)
		}
	}
}
