package imagegen

import "math"

// IMSILike returns the configuration mirroring the paper's experimental
// setup (§5): the 7 query categories with the paper's exact cardinalities
// (Bird 318, Fish 129, Mammal 834, Blossom 189, TreeLeaf 575, Bridge 148,
// Monument 298 — 2,491 images) plus noise categories bringing the
// collection to roughly 10,000 images, "just used to add further noise to
// the retrieval process".
//
// scale multiplies every category cardinality (minimum 2 per category) so
// tests can run the identical distributional structure at a fraction of
// the size; scale = 1 reproduces the paper's collection.
func IMSILike(seed int64, scale float64) Config {
	n := func(count int) int {
		s := int(math.Round(float64(count) * scale))
		if s < 2 {
			s = 2
		}
		return s
	}

	// Shared palette building blocks. Hues in degrees: red 0, orange 30,
	// yellow 60, green 120, cyan 180, blue 240, magenta 300.
	sky := Blob{Hue: 215, HueStd: 10, Sat: 0.35, SatStd: 0.08, Weight: 0.30}
	water := Blob{Hue: 200, HueStd: 12, Sat: 0.55, SatStd: 0.10, Weight: 0.35}
	foliage := Blob{Hue: 110, HueStd: 12, Sat: 0.60, SatStd: 0.10, Weight: 0.30}
	stone := Blob{Hue: 40, HueStd: 15, Sat: 0.22, SatStd: 0.08, Weight: 0.45}
	fur := Blob{Hue: 32, HueStd: 10, Sat: 0.50, SatStd: 0.08, Weight: 0.40}
	gray := Blob{Hue: 0, HueStd: 60, Sat: 0.06, SatStd: 0.03, Weight: 0.30}

	queryCats := []Category{
		{
			Name: "Bird", Count: n(318), Query: true,
			Signature: []Blob{sky},
			Themes: []Theme{
				{Name: "blue", Blobs: []Blob{{Hue: 225, HueStd: 12, Sat: 0.65, SatStd: 0.08, Weight: 0.7}}},
				{Name: "red", Blobs: []Blob{{Hue: 355, HueStd: 8, Sat: 0.75, SatStd: 0.08, Weight: 0.7}}},
				{Name: "yellow", Blobs: []Blob{{Hue: 58, HueStd: 8, Sat: 0.70, SatStd: 0.08, Weight: 0.7}}},
				{Name: "brown", Blobs: []Blob{{Hue: 28, HueStd: 10, Sat: 0.45, SatStd: 0.08, Weight: 0.7}}},
			},
		},
		{
			// Mirrors the paper's Figure 9 commentary: "only the 2nd image
			// (shark) has a dominant blue color, whereas others have strong
			// components of yellow, gray, and orange".
			Name: "Fish", Count: n(129), Query: true,
			Signature: []Blob{water},
			Themes: []Theme{
				{Name: "shark", Blobs: []Blob{{Hue: 230, HueStd: 10, Sat: 0.50, SatStd: 0.08, Weight: 0.65}}},
				{Name: "tropical", Blobs: []Blob{{Hue: 55, HueStd: 8, Sat: 0.85, SatStd: 0.06, Weight: 0.65}}},
				{Name: "gray", Blobs: []Blob{{Hue: 0, HueStd: 60, Sat: 0.07, SatStd: 0.03, Weight: 0.65}}},
				{Name: "orange", Blobs: []Blob{{Hue: 25, HueStd: 8, Sat: 0.85, SatStd: 0.06, Weight: 0.65}}},
			},
		},
		{
			Name: "Mammal", Count: n(834), Query: true,
			Signature: []Blob{fur},
			Themes: []Theme{
				{Name: "savanna", Blobs: []Blob{{Hue: 48, HueStd: 10, Sat: 0.38, SatStd: 0.08, Weight: 0.6}}},
				{Name: "forest", Blobs: []Blob{{Hue: 115, HueStd: 12, Sat: 0.35, SatStd: 0.08, Weight: 0.6}}},
				{Name: "snow", Blobs: []Blob{{Hue: 210, HueStd: 20, Sat: 0.05, SatStd: 0.03, Weight: 0.6}}},
				{Name: "dusk", Blobs: []Blob{{Hue: 20, HueStd: 10, Sat: 0.55, SatStd: 0.08, Weight: 0.6}}},
			},
		},
		{
			Name: "Blossom", Count: n(189), Query: true,
			Signature: []Blob{foliage},
			Themes: []Theme{
				{Name: "pink", Blobs: []Blob{{Hue: 330, HueStd: 8, Sat: 0.60, SatStd: 0.08, Weight: 0.7}}},
				{Name: "red", Blobs: []Blob{{Hue: 5, HueStd: 7, Sat: 0.80, SatStd: 0.06, Weight: 0.7}}},
				{Name: "yellow", Blobs: []Blob{{Hue: 55, HueStd: 7, Sat: 0.85, SatStd: 0.06, Weight: 0.7}}},
				{Name: "white", Blobs: []Blob{{Hue: 0, HueStd: 60, Sat: 0.05, SatStd: 0.03, Weight: 0.7}}},
			},
		},
		{
			// Colour-coherent category: feedback has little to improve, as
			// the paper observes for TreeLeaf in Figure 14.
			Name: "TreeLeaf", Count: n(575), Query: true,
			Signature: []Blob{{Hue: 110, HueStd: 10, Sat: 0.70, SatStd: 0.08, Weight: 0.6}},
			Themes: []Theme{
				{Name: "light", Blobs: []Blob{{Hue: 90, HueStd: 8, Sat: 0.60, SatStd: 0.08, Weight: 0.4}}},
				{Name: "dark", Blobs: []Blob{{Hue: 140, HueStd: 8, Sat: 0.80, SatStd: 0.06, Weight: 0.4}}},
				{Name: "autumn", Blobs: []Blob{{Hue: 35, HueStd: 10, Sat: 0.80, SatStd: 0.06, Weight: 0.4}}},
			},
		},
		{
			Name: "Bridge", Count: n(148), Query: true,
			Signature: []Blob{gray, {Hue: 215, HueStd: 10, Sat: 0.35, SatStd: 0.08, Weight: 0.25}},
			Themes: []Theme{
				{Name: "sunset", Blobs: []Blob{{Hue: 20, HueStd: 10, Sat: 0.60, SatStd: 0.08, Weight: 0.45}}},
				{Name: "day", Blobs: []Blob{{Hue: 210, HueStd: 10, Sat: 0.50, SatStd: 0.08, Weight: 0.45}}},
				{Name: "night", Blobs: []Blob{{Hue: 240, HueStd: 12, Sat: 0.20, SatStd: 0.06, Weight: 0.45}}},
			},
		},
		{
			Name: "Monument", Count: n(298), Query: true,
			Signature: []Blob{stone},
			Themes: []Theme{
				{Name: "day", Blobs: []Blob{{Hue: 210, HueStd: 10, Sat: 0.45, SatStd: 0.08, Weight: 0.55}}},
				{Name: "sunset", Blobs: []Blob{{Hue: 15, HueStd: 10, Sat: 0.65, SatStd: 0.08, Weight: 0.55}}},
				{Name: "overcast", Blobs: []Blob{{Hue: 0, HueStd: 60, Sat: 0.07, SatStd: 0.03, Weight: 0.55}}},
			},
		},
	}

	// Noise categories overlap the query palettes so colour search alone
	// cannot separate categories.
	noiseCats := []Category{
		{
			Name: "Sunset", Count: n(600),
			Themes: []Theme{
				{Name: "deep", Blobs: []Blob{{Hue: 18, HueStd: 8, Sat: 0.75, SatStd: 0.08, Weight: 1}, {Hue: 300, HueStd: 15, Sat: 0.30, SatStd: 0.08, Weight: 0.3}}},
				{Name: "gold", Blobs: []Blob{{Hue: 45, HueStd: 8, Sat: 0.70, SatStd: 0.08, Weight: 1}}},
			},
		},
		{
			Name: "Ocean", Count: n(700),
			Themes: []Theme{
				{Name: "deep", Blobs: []Blob{{Hue: 215, HueStd: 10, Sat: 0.70, SatStd: 0.08, Weight: 1}}},
				{Name: "shallow", Blobs: []Blob{{Hue: 185, HueStd: 10, Sat: 0.55, SatStd: 0.08, Weight: 1}}},
			},
		},
		{
			Name: "Urban", Count: n(800),
			Themes: []Theme{
				{Name: "concrete", Blobs: []Blob{gray, {Hue: 220, HueStd: 15, Sat: 0.25, SatStd: 0.08, Weight: 0.5}}},
				{Name: "brick", Blobs: []Blob{{Hue: 10, HueStd: 10, Sat: 0.50, SatStd: 0.10, Weight: 0.6}, gray}},
			},
		},
		{
			Name: "Forest", Count: n(900),
			Themes: []Theme{
				{Name: "summer", Blobs: []Blob{{Hue: 118, HueStd: 12, Sat: 0.65, SatStd: 0.10, Weight: 1}}},
				{Name: "pine", Blobs: []Blob{{Hue: 150, HueStd: 10, Sat: 0.55, SatStd: 0.08, Weight: 1}}},
			},
		},
		{
			Name: "Desert", Count: n(700),
			Themes: []Theme{
				{Name: "dune", Blobs: []Blob{{Hue: 40, HueStd: 8, Sat: 0.40, SatStd: 0.08, Weight: 1}}},
				{Name: "rock", Blobs: []Blob{{Hue: 25, HueStd: 10, Sat: 0.45, SatStd: 0.10, Weight: 1}}},
			},
		},
		{
			Name: "Sky", Count: n(800),
			Themes: []Theme{
				{Name: "clear", Blobs: []Blob{{Hue: 212, HueStd: 8, Sat: 0.40, SatStd: 0.08, Weight: 1}}},
				{Name: "cloud", Blobs: []Blob{{Hue: 210, HueStd: 10, Sat: 0.12, SatStd: 0.05, Weight: 1}}},
			},
		},
		{
			Name: "Abstract", Count: n(1000),
			Themes: []Theme{
				{Name: "warm", Blobs: []Blob{{Hue: 0, HueStd: 80, Sat: 0.60, SatStd: 0.20, Weight: 1}}},
				{Name: "cool", Blobs: []Blob{{Hue: 200, HueStd: 80, Sat: 0.60, SatStd: 0.20, Weight: 1}}},
				{Name: "pastel", Blobs: []Blob{{Hue: 180, HueStd: 120, Sat: 0.25, SatStd: 0.10, Weight: 1}}},
			},
		},
		{
			Name: "Food", Count: n(500),
			Themes: []Theme{
				{Name: "fruit", Blobs: []Blob{{Hue: 35, HueStd: 20, Sat: 0.80, SatStd: 0.08, Weight: 1}}},
				{Name: "greens", Blobs: []Blob{{Hue: 100, HueStd: 15, Sat: 0.60, SatStd: 0.10, Weight: 1}}},
			},
		},
		{
			Name: "People", Count: n(600),
			Themes: []Theme{
				{Name: "portrait", Blobs: []Blob{{Hue: 25, HueStd: 6, Sat: 0.35, SatStd: 0.08, Weight: 0.7}, gray}},
				{Name: "crowd", Blobs: []Blob{{Hue: 25, HueStd: 8, Sat: 0.30, SatStd: 0.10, Weight: 0.5}, {Hue: 220, HueStd: 40, Sat: 0.40, SatStd: 0.15, Weight: 0.5}}},
			},
		},
		{
			Name: "Garden", Count: n(700),
			Themes: []Theme{
				{Name: "bloom", Blobs: []Blob{foliage, {Hue: 325, HueStd: 12, Sat: 0.55, SatStd: 0.10, Weight: 0.5}}},
				{Name: "lawn", Blobs: []Blob{{Hue: 105, HueStd: 10, Sat: 0.55, SatStd: 0.10, Weight: 1}}},
			},
		},
	}

	return Config{
		Seed:       seed,
		ImageW:     24,
		ImageH:     24,
		Categories: append(queryCats, noiseCats...),
	}
}

// QueryCategoryNames returns the names of the categories marked Query in
// the configuration, in order.
func (c Config) QueryCategoryNames() []string {
	var out []string
	for _, cat := range c.Categories {
		if cat.Query {
			out = append(out, cat.Name)
		}
	}
	return out
}

// TotalCount returns the number of images the configuration generates.
func (c Config) TotalCount() int {
	total := 0
	for _, cat := range c.Categories {
		total += cat.Count
	}
	return total
}
