package reduce

import (
	"math"
	"math/rand"
	"testing"
)

// manifoldSamples generates points on a 2-dimensional affine manifold
// embedded in dim dimensions, plus tiny orthogonal noise.
func manifoldSamples(rng *rand.Rand, n, dim int) [][]float64 {
	basis1 := make([]float64, dim)
	basis2 := make([]float64, dim)
	for i := 0; i < dim; i++ {
		basis1[i] = math.Sin(float64(i))
		basis2[i] = math.Cos(float64(2 * i))
	}
	out := make([][]float64, n)
	for s := range out {
		a, b := rng.NormFloat64()*3, rng.NormFloat64()
		v := make([]float64, dim)
		for i := 0; i < dim; i++ {
			v[i] = a*basis1[i] + b*basis2[i] + rng.NormFloat64()*0.01
		}
		out[s] = v
	}
	return out
}

func TestFitValidation(t *testing.T) {
	if _, err := Fit(nil, 1); err == nil {
		t.Error("no samples should error")
	}
	if _, err := Fit([][]float64{{1, 2}}, 1); err == nil {
		t.Error("single sample should error")
	}
	samples := [][]float64{{1, 2}, {3, 4}}
	if _, err := Fit(samples, 0); err == nil {
		t.Error("k=0 should error")
	}
	if _, err := Fit(samples, 3); err == nil {
		t.Error("k > dim should error")
	}
	if _, err := Fit([][]float64{{1, 2}, {3}}, 1); err == nil {
		t.Error("ragged samples should error")
	}
}

func TestProjectInUnitCube(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	samples := manifoldSamples(rng, 200, 10)
	r, err := Fit(samples, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.K() != 2 || r.InputDim() != 10 {
		t.Errorf("K=%d InputDim=%d", r.K(), r.InputDim())
	}
	for _, s := range samples {
		p, err := r.Project(s)
		if err != nil {
			t.Fatal(err)
		}
		for j, x := range p {
			if x < 0 || x > 1 {
				t.Fatalf("component %d = %v outside [0,1]", j, x)
			}
		}
		// Fitted samples should sit inside the margin, away from the
		// clamped boundary.
		for _, x := range p {
			if x == 0 || x == 1 {
				t.Fatalf("fitted sample clamped to boundary: %v", p)
			}
		}
	}
	// A far-out point clamps instead of escaping.
	far := make([]float64, 10)
	for i := range far {
		far[i] = 1e6
	}
	p, err := r.Project(far)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range p {
		if x < 0 || x > 1 {
			t.Fatalf("far point escaped the cube: %v", p)
		}
	}
	if _, err := r.Project([]float64{1}); err == nil {
		t.Error("dimension mismatch should error")
	}
}

func TestExplainedVarianceHighOnManifold(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	samples := manifoldSamples(rng, 300, 12)
	r2, err := Fit(samples, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ev := r2.ExplainedVariance(); ev < 0.99 {
		t.Errorf("2 components should capture a 2-D manifold: %v", ev)
	}
	r1, err := Fit(samples, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r1.ExplainedVariance() >= r2.ExplainedVariance() {
		t.Error("explained variance must grow with k")
	}
}

func TestProjectPreservesNeighborhoods(t *testing.T) {
	// Nearby points in the original space stay nearby after reduction —
	// the property the reduced Simplex Tree relies on.
	rng := rand.New(rand.NewSource(3))
	samples := manifoldSamples(rng, 200, 10)
	r, err := Fit(samples, 2)
	if err != nil {
		t.Fatal(err)
	}
	base := samples[0]
	near := make([]float64, len(base))
	copy(near, base)
	near[0] += 1e-4
	p1, err := r.Project(base)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := r.Project(near)
	if err != nil {
		t.Fatal(err)
	}
	var d float64
	for j := range p1 {
		d += (p1[j] - p2[j]) * (p1[j] - p2[j])
	}
	if math.Sqrt(d) > 1e-3 {
		t.Errorf("tiny perturbation moved projection by %v", math.Sqrt(d))
	}
}

func TestConstantComponent(t *testing.T) {
	// Samples identical along every direction but one: the degenerate
	// component ranges must not divide by zero.
	samples := [][]float64{{0, 5}, {1, 5}, {2, 5}, {3, 5}}
	r, err := Fit(samples, 2)
	if err != nil {
		t.Fatal(err)
	}
	p, err := r.Project([]float64{1.5, 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range p {
		if math.IsNaN(x) || x < 0 || x > 1 {
			t.Fatalf("degenerate projection = %v", p)
		}
	}
}
