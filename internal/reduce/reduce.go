// Package reduce implements the dimensionality-reduction hook the paper
// leaves as future work (§3: "statistical techniques for dimensionality
// reduction could be applied to lower the dimensionality of both the input
// and the output space"). A Reducer fits PCA on a sample of query points
// and affinely maps the leading components into [0,1]^k, so the reduced
// query domain is covered by geom.CoveringSimplex(k) and a Simplex Tree
// over k dimensions can learn the optimal query mapping with far fewer
// stored points per region.
package reduce

import (
	"errors"
	"fmt"

	"repro/internal/vec"
)

// Reducer projects query points into a k-dimensional unit cube.
type Reducer struct {
	eig   *vec.Eigen
	means []float64
	k     int
	lo    []float64 // per-component minimum over the fitted sample
	hi    []float64
}

// margin widens the fitted component ranges so unseen queries slightly
// outside the sample still land inside [0,1].
const margin = 0.25

// Fit computes the PCA basis from sample query points and records the
// component ranges. k must not exceed the feature dimensionality and at
// least two samples are required.
func Fit(samples [][]float64, k int) (*Reducer, error) {
	if len(samples) < 2 {
		return nil, errors.New("reduce: need at least 2 samples")
	}
	dim := len(samples[0])
	if k < 1 || k > dim {
		return nil, fmt.Errorf("reduce: k=%d outside [1,%d]", k, dim)
	}
	x := vec.NewMatrix(len(samples), dim)
	for i, s := range samples {
		if len(s) != dim {
			return nil, fmt.Errorf("reduce: sample %d has dimension %d, want %d", i, len(s), dim)
		}
		copy(x.Row(i), s)
	}
	eig, means, err := vec.PCA(x)
	if err != nil {
		return nil, err
	}
	r := &Reducer{eig: eig, means: means, k: k}
	r.lo = vec.Constant(k, 0)
	r.hi = vec.Constant(k, 0)
	for i := range r.lo {
		r.lo[i] = 1e300
		r.hi[i] = -1e300
	}
	for _, s := range samples {
		p := eig.Project(s, means, k)
		for j, v := range p {
			if v < r.lo[j] {
				r.lo[j] = v
			}
			if v > r.hi[j] {
				r.hi[j] = v
			}
		}
	}
	for j := range r.lo {
		span := r.hi[j] - r.lo[j]
		if span <= 0 {
			span = 1 // constant component: any position maps to 0.5
		}
		r.lo[j] -= margin * span
		r.hi[j] += margin * span
	}
	return r, nil
}

// K returns the reduced dimensionality.
func (r *Reducer) K() int { return r.k }

// InputDim returns the original feature dimensionality.
func (r *Reducer) InputDim() int { return len(r.means) }

// ExplainedVariance returns the fraction of total sample variance captured
// by the k leading components.
func (r *Reducer) ExplainedVariance() float64 {
	var total, kept float64
	for i, v := range r.eig.Values {
		if v < 0 {
			v = 0
		}
		total += v
		if i < r.k {
			kept += v
		}
	}
	if total == 0 {
		return 0
	}
	return kept / total
}

// Project maps a query point into [0,1]^k (clamped at the boundaries for
// points outside the widened fitted ranges).
func (r *Reducer) Project(v []float64) ([]float64, error) {
	if len(v) != len(r.means) {
		return nil, fmt.Errorf("reduce: point has dimension %d, want %d", len(v), len(r.means))
	}
	p := r.eig.Project(v, r.means, r.k)
	out := make([]float64, r.k)
	for j, x := range p {
		u := (x - r.lo[j]) / (r.hi[j] - r.lo[j])
		if u < 0 {
			u = 0
		}
		if u > 1 {
			u = 1
		}
		out[j] = u
	}
	return out, nil
}
