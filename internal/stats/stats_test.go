package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	m, err := Mean(xs)
	if err != nil || m != 5 {
		t.Errorf("Mean = %v, %v", m, err)
	}
	v, err := Variance(xs)
	if err != nil || v != 4 {
		t.Errorf("Variance = %v, %v", v, err)
	}
	s, err := StdDev(xs)
	if err != nil || s != 2 {
		t.Errorf("StdDev = %v, %v", s, err)
	}
}

func TestEmptyErrors(t *testing.T) {
	if _, err := Mean(nil); err != ErrEmpty {
		t.Errorf("Mean(nil) err = %v", err)
	}
	if _, err := Variance(nil); err != ErrEmpty {
		t.Errorf("Variance(nil) err = %v", err)
	}
	if _, err := StdDev(nil); err != ErrEmpty {
		t.Errorf("StdDev(nil) err = %v", err)
	}
	if _, err := Quantile(nil, 0.5); err != ErrEmpty {
		t.Errorf("Quantile(nil) err = %v", err)
	}
	if _, err := PerDimension(nil); err != ErrEmpty {
		t.Errorf("PerDimension(nil) err = %v", err)
	}
}

func TestOnlineMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 1000)
	var o Online
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 7
		o.Add(xs[i])
	}
	m, _ := Mean(xs)
	v, _ := Variance(xs)
	if math.Abs(o.Mean()-m) > 1e-10 {
		t.Errorf("online mean %v vs batch %v", o.Mean(), m)
	}
	if math.Abs(o.Variance()-v) > 1e-10 {
		t.Errorf("online var %v vs batch %v", o.Variance(), v)
	}
	if o.N() != 1000 {
		t.Errorf("N = %d", o.N())
	}
}

func TestOnlineEmpty(t *testing.T) {
	var o Online
	if o.Mean() != 0 || o.Variance() != 0 || o.StdDev() != 0 || o.N() != 0 {
		t.Error("zero-value Online should report zeros")
	}
}

func TestOnlineMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var a, b, all Online
	for i := 0; i < 500; i++ {
		x := rng.NormFloat64()
		a.Add(x)
		all.Add(x)
	}
	for i := 0; i < 300; i++ {
		x := rng.NormFloat64()*2 + 1
		b.Add(x)
		all.Add(x)
	}
	a.Merge(b)
	if a.N() != all.N() {
		t.Fatalf("merged N = %d, want %d", a.N(), all.N())
	}
	if math.Abs(a.Mean()-all.Mean()) > 1e-10 {
		t.Errorf("merged mean %v vs %v", a.Mean(), all.Mean())
	}
	if math.Abs(a.Variance()-all.Variance()) > 1e-10 {
		t.Errorf("merged var %v vs %v", a.Variance(), all.Variance())
	}
}

func TestOnlineMergeEdgeCases(t *testing.T) {
	var a Online
	var empty Online
	a.Add(5)
	a.Merge(empty) // merging empty is a no-op
	if a.N() != 1 || a.Mean() != 5 {
		t.Error("merge with empty changed state")
	}
	var c Online
	c.Merge(a) // merging into empty copies
	if c.N() != 1 || c.Mean() != 5 {
		t.Error("merge into empty failed")
	}
}

func TestPerDimension(t *testing.T) {
	vs := [][]float64{
		{1, 10},
		{3, 10},
		{5, 10},
	}
	ds, err := PerDimension(vs)
	if err != nil {
		t.Fatal(err)
	}
	if ds[0].Mean != 3 || ds[0].Min != 1 || ds[0].Max != 5 {
		t.Errorf("dim 0 = %+v", ds[0])
	}
	wantVar := (4.0 + 0 + 4.0) / 3.0
	if math.Abs(ds[0].Variance-wantVar) > 1e-12 {
		t.Errorf("dim 0 variance = %v, want %v", ds[0].Variance, wantVar)
	}
	// Constant dimension: zero variance.
	if ds[1].Variance != 0 || ds[1].StdDev != 0 {
		t.Errorf("dim 1 should be constant: %+v", ds[1])
	}
}

func TestPerDimensionRagged(t *testing.T) {
	if _, err := PerDimension([][]float64{{1, 2}, {3}}); err == nil {
		t.Error("expected ragged error")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2, 4}
	for _, c := range []struct{ q, want float64 }{
		{0, 1}, {1, 4}, {0.5, 2.5}, {1.0 / 3.0, 2},
	} {
		got, err := Quantile(xs, c.q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if _, err := Quantile(xs, -0.1); err == nil {
		t.Error("expected range error")
	}
	if _, err := Quantile(xs, 1.1); err == nil {
		t.Error("expected range error")
	}
	one, err := Quantile([]float64{7}, 0.3)
	if err != nil || one != 7 {
		t.Errorf("single-element quantile = %v, %v", one, err)
	}
	m, err := Median(xs)
	if err != nil || m != 2.5 {
		t.Errorf("Median = %v, %v", m, err)
	}
}

func TestMovingAverage(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	out, err := MovingAverage(xs, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1.5, 2, 3, 4, 4.5}
	for i := range want {
		if math.Abs(out[i]-want[i]) > 1e-12 {
			t.Errorf("MA[%d] = %v, want %v", i, out[i], want[i])
		}
	}
	if _, err := MovingAverage(xs, 2); err == nil {
		t.Error("even width should error")
	}
	if _, err := MovingAverage(xs, 0); err == nil {
		t.Error("zero width should error")
	}
	copyOut, err := MovingAverage(xs, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range xs {
		if copyOut[i] != xs[i] {
			t.Error("width-1 MA should copy")
		}
	}
}

func TestCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	r, err := Correlation(xs, ys)
	if err != nil || math.Abs(r-1) > 1e-12 {
		t.Errorf("perfect correlation = %v, %v", r, err)
	}
	neg := []float64{8, 6, 4, 2}
	r, err = Correlation(xs, neg)
	if err != nil || math.Abs(r+1) > 1e-12 {
		t.Errorf("perfect anticorrelation = %v, %v", r, err)
	}
	if _, err := Correlation(xs, []float64{1}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := Correlation([]float64{1}, []float64{1}); err == nil {
		t.Error("too few samples should error")
	}
	if _, err := Correlation(xs, []float64{5, 5, 5, 5}); err == nil {
		t.Error("constant series should error")
	}
}

// Property: variance is non-negative and insensitive to shifting.
func TestVarianceShiftInvarianceQuick(t *testing.T) {
	f := func(xs []float64, shift float64) bool {
		if len(xs) == 0 {
			return true
		}
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e6 {
				return true
			}
		}
		if math.IsNaN(shift) || math.IsInf(shift, 0) || math.Abs(shift) > 1e6 {
			return true
		}
		v1, err := Variance(xs)
		if err != nil {
			return false
		}
		shifted := make([]float64, len(xs))
		for i := range xs {
			shifted[i] = xs[i] + shift
		}
		v2, err := Variance(shifted)
		if err != nil {
			return false
		}
		return v1 >= 0 && math.Abs(v1-v2) <= 1e-4*(1+v1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: quantile is monotone in q.
func TestQuantileMonotoneQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v, err := Quantile(xs, q)
			if err != nil {
				t.Fatal(err)
			}
			if v < prev-1e-9 {
				t.Fatalf("quantile not monotone at q=%v: %v < %v", q, v, prev)
			}
			prev = v
		}
	}
}
