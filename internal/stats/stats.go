// Package stats provides the descriptive statistics used by the
// re-weighting feedback strategies and by the experiment harness: plain and
// Welford-style online moments, per-dimension statistics over sets of
// feature vectors, and simple series utilities (quantiles, moving
// averages).
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty is returned when a statistic is requested over no samples.
var ErrEmpty = errors.New("stats: no samples")

// Mean returns the arithmetic mean of xs, or an error when xs is empty.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs)), nil
}

// Variance returns the population variance of xs (dividing by n, matching
// the re-weighting formulas of [ISF98] which use the sample spread of the
// good matches themselves).
func Variance(xs []float64) (float64, error) {
	m, err := Mean(xs)
	if err != nil {
		return 0, err
	}
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)), nil
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) (float64, error) {
	v, err := Variance(xs)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(v), nil
}

// Online accumulates mean and variance incrementally using Welford's
// algorithm. The zero value is ready to use.
type Online struct {
	n    int
	mean float64
	m2   float64
}

// Add incorporates a new observation.
func (o *Online) Add(x float64) {
	o.n++
	d := x - o.mean
	o.mean += d / float64(o.n)
	o.m2 += d * (x - o.mean)
}

// N returns the number of observations so far.
func (o *Online) N() int { return o.n }

// Mean returns the running mean (0 when empty).
func (o *Online) Mean() float64 { return o.mean }

// Variance returns the running population variance (0 when fewer than one
// observation).
func (o *Online) Variance() float64 {
	if o.n == 0 {
		return 0
	}
	return o.m2 / float64(o.n)
}

// StdDev returns the running population standard deviation.
func (o *Online) StdDev() float64 { return math.Sqrt(o.Variance()) }

// Merge combines another accumulator into o (parallel Welford merge).
func (o *Online) Merge(other Online) {
	if other.n == 0 {
		return
	}
	if o.n == 0 {
		*o = other
		return
	}
	n1, n2 := float64(o.n), float64(other.n)
	delta := other.mean - o.mean
	total := n1 + n2
	o.mean += delta * n2 / total
	o.m2 += other.m2 + delta*delta*n1*n2/total
	o.n += other.n
}

// Dimension summarizes one coordinate of a set of vectors.
type Dimension struct {
	Mean, Variance, StdDev float64
	Min, Max               float64
}

// PerDimension computes per-coordinate statistics over the given vectors,
// which must all share the same length. It is the workhorse behind the
// re-weighting strategies: each coordinate's spread among the "good"
// matches determines its weight.
func PerDimension(vectors [][]float64) ([]Dimension, error) {
	if len(vectors) == 0 {
		return nil, ErrEmpty
	}
	d := len(vectors[0])
	for i, v := range vectors {
		if len(v) != d {
			return nil, fmt.Errorf("stats: vector %d has dimension %d, want %d", i, len(v), d)
		}
	}
	out := make([]Dimension, d)
	acc := make([]Online, d)
	for j := range out {
		out[j].Min = math.Inf(1)
		out[j].Max = math.Inf(-1)
	}
	for _, v := range vectors {
		for j, x := range v {
			acc[j].Add(x)
			if x < out[j].Min {
				out[j].Min = x
			}
			if x > out[j].Max {
				out[j].Max = x
			}
		}
	}
	for j := range out {
		out[j].Mean = acc[j].Mean()
		out[j].Variance = acc[j].Variance()
		out[j].StdDev = acc[j].StdDev()
	}
	return out, nil
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 {
		return 0, fmt.Errorf("stats: quantile %v out of [0,1]", q)
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Median returns the 0.5-quantile of xs.
func Median(xs []float64) (float64, error) { return Quantile(xs, 0.5) }

// MovingAverage smooths xs with a centered window of the given odd width,
// truncating the window at the boundaries. Width 1 returns a copy.
func MovingAverage(xs []float64, width int) ([]float64, error) {
	if width < 1 || width%2 == 0 {
		return nil, fmt.Errorf("stats: window width must be odd and positive, got %d", width)
	}
	out := make([]float64, len(xs))
	half := width / 2
	for i := range xs {
		lo := i - half
		if lo < 0 {
			lo = 0
		}
		hi := i + half
		if hi >= len(xs) {
			hi = len(xs) - 1
		}
		var s float64
		for j := lo; j <= hi; j++ {
			s += xs[j]
		}
		out[i] = s / float64(hi-lo+1)
	}
	return out, nil
}

// Correlation returns the Pearson correlation coefficient between xs and
// ys, or an error when the lengths differ, there are fewer than two
// samples, or either series is constant.
func Correlation(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("stats: series lengths differ: %d vs %d", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return 0, ErrEmpty
	}
	mx, _ := Mean(xs)
	my, _ := Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, errors.New("stats: correlation undefined for constant series")
	}
	return sxy / math.Sqrt(sxx*syy), nil
}
