// Package histogram implements the feature extractor of §5 of the paper:
// images are converted to the HSV colour space and summarized by a 32-bin
// colour histogram obtained by dividing the hue channel into 8 ranges and
// the saturation channel into 4 ranges. Histograms are normalized so their
// bins sum to 1, which makes the query domain (after dropping the last
// bin) the standard simplex in R^31 — exactly the S0 of §4.1.
package histogram

import (
	"errors"
	"fmt"
	"math"
)

// RGB is a pixel with components in [0, 1].
type RGB struct {
	R, G, B float64
}

// Image is a dense raster of RGB pixels.
type Image struct {
	W, H int
	Pix  []RGB // row-major, len == W*H
}

// NewImage allocates a zeroed (black) W×H image.
func NewImage(w, h int) (*Image, error) {
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("histogram: invalid image size %dx%d", w, h)
	}
	return &Image{W: w, H: h, Pix: make([]RGB, w*h)}, nil
}

// At returns the pixel at (x, y).
func (im *Image) At(x, y int) RGB { return im.Pix[y*im.W+x] }

// Set assigns the pixel at (x, y).
func (im *Image) Set(x, y int, p RGB) { im.Pix[y*im.W+x] = p }

// HSV converts an RGB triple (components in [0,1]) to HSV with
// h ∈ [0, 360), s ∈ [0, 1], v ∈ [0, 1], using the standard hexcone model.
func HSV(r, g, b float64) (h, s, v float64) {
	max := math.Max(r, math.Max(g, b))
	min := math.Min(r, math.Min(g, b))
	v = max
	delta := max - min
	if max > 0 {
		s = delta / max
	}
	if delta == 0 {
		return 0, s, v
	}
	switch max {
	case r:
		h = 60 * math.Mod((g-b)/delta, 6)
	case g:
		h = 60 * ((b-r)/delta + 2)
	default: // max == b
		h = 60 * ((r-g)/delta + 4)
	}
	if h < 0 {
		h += 360
	}
	return h, s, v
}

// FromHSV converts HSV (h in degrees, s and v in [0,1]) back to RGB. The
// synthetic image generator samples colours in HSV — the space the paper's
// features live in — and renders them to RGB rasters through this
// function, so the extractor exercises the full RGB→HSV→bins path.
func FromHSV(h, s, v float64) RGB {
	h = math.Mod(h, 360)
	if h < 0 {
		h += 360
	}
	c := v * s
	x := c * (1 - math.Abs(math.Mod(h/60, 2)-1))
	m := v - c
	var r, g, b float64
	switch {
	case h < 60:
		r, g, b = c, x, 0
	case h < 120:
		r, g, b = x, c, 0
	case h < 180:
		r, g, b = 0, c, x
	case h < 240:
		r, g, b = 0, x, c
	case h < 300:
		r, g, b = x, 0, c
	default:
		r, g, b = c, 0, x
	}
	return RGB{R: r + m, G: g + m, B: b + m}
}

// Extractor converts images into normalized HSV colour histograms.
type Extractor struct {
	HueBins int // number of hue ranges (paper: 8)
	SatBins int // number of saturation ranges (paper: 4)
	// Smoothing is the Laplace pseudocount added to every bin before
	// normalization. Exact-zero bins are hostile to the Simplex Tree's
	// barycentric descent (a zero coordinate pins the query to a facet and
	// dilutes interpolation weights), so a small pseudocount keeps every
	// histogram strictly inside the domain simplex.
	Smoothing float64
}

// DefaultExtractor is the paper's 32-bin configuration: 8 hue × 4
// saturation ranges, with one pseudocount of smoothing per bin.
var DefaultExtractor = Extractor{HueBins: 8, SatBins: 4, Smoothing: 1}

// Bins returns the total histogram dimensionality.
func (e Extractor) Bins() int { return e.HueBins * e.SatBins }

// BinOf returns the histogram bin index for an HSV colour.
func (e Extractor) BinOf(h, s float64) int {
	hb := int(h / 360 * float64(e.HueBins))
	if hb >= e.HueBins {
		hb = e.HueBins - 1
	}
	if hb < 0 {
		hb = 0
	}
	sb := int(s * float64(e.SatBins))
	if sb >= e.SatBins {
		sb = e.SatBins - 1
	}
	if sb < 0 {
		sb = 0
	}
	return hb*e.SatBins + sb
}

// Extract computes the normalized colour histogram of an image. The bins
// sum to 1 ("the sum of the color bins is constant", Example 1 of the
// paper).
func (e Extractor) Extract(im *Image) ([]float64, error) {
	if e.HueBins <= 0 || e.SatBins <= 0 {
		return nil, fmt.Errorf("histogram: invalid extractor %dx%d", e.HueBins, e.SatBins)
	}
	if e.Smoothing < 0 {
		return nil, fmt.Errorf("histogram: negative smoothing %v", e.Smoothing)
	}
	if im == nil || len(im.Pix) == 0 {
		return nil, errors.New("histogram: empty image")
	}
	hist := make([]float64, e.Bins())
	for i := range hist {
		hist[i] = e.Smoothing
	}
	for _, p := range im.Pix {
		h, s, _ := HSV(p.R, p.G, p.B)
		hist[e.BinOf(h, s)]++
	}
	inv := 1 / (float64(len(im.Pix)) + e.Smoothing*float64(e.Bins()))
	for i := range hist {
		hist[i] *= inv
	}
	return hist, nil
}

// DropLast removes the final bin of a normalized histogram, producing the
// query-domain representation of Example 1: because the bins sum to 1, the
// last bin is redundant and the reduced vector lives in the standard
// simplex of R^(n-1).
func DropLast(hist []float64) []float64 {
	if len(hist) == 0 {
		return nil
	}
	out := make([]float64, len(hist)-1)
	copy(out, hist[:len(hist)-1])
	return out
}

// RestoreLast inverts DropLast for a normalized histogram: the final bin
// is 1 − Σ(front bins), clamped at 0 against rounding.
func RestoreLast(front []float64) []float64 {
	out := make([]float64, len(front)+1)
	copy(out, front)
	var sum float64
	for _, x := range front {
		sum += x
	}
	last := 1 - sum
	if last < 0 {
		last = 0
	}
	out[len(front)] = last
	return out
}
