package histogram

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHSVPrimaries(t *testing.T) {
	cases := []struct {
		r, g, b    string
		rr, gg, bb float64
		h, s, v    float64
	}{
		{"red", "", "", 1, 0, 0, 0, 1, 1},
		{"green", "", "", 0, 1, 0, 120, 1, 1},
		{"blue", "", "", 0, 0, 1, 240, 1, 1},
		{"white", "", "", 1, 1, 1, 0, 0, 1},
		{"black", "", "", 0, 0, 0, 0, 0, 0},
		{"yellow", "", "", 1, 1, 0, 60, 1, 1},
		{"cyan", "", "", 0, 1, 1, 180, 1, 1},
		{"magenta", "", "", 1, 0, 1, 300, 1, 1},
		{"gray", "", "", 0.5, 0.5, 0.5, 0, 0, 0.5},
	}
	for _, c := range cases {
		h, s, v := HSV(c.rr, c.gg, c.bb)
		if math.Abs(h-c.h) > 1e-9 || math.Abs(s-c.s) > 1e-9 || math.Abs(v-c.v) > 1e-9 {
			t.Errorf("%s: HSV = (%v,%v,%v), want (%v,%v,%v)", c.r, h, s, v, c.h, c.s, c.v)
		}
	}
}

func TestHSVRangeQuick(t *testing.T) {
	f := func(r, g, b float64) bool {
		clamp := func(x float64) float64 {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return 0.5
			}
			return math.Abs(math.Mod(x, 1))
		}
		h, s, v := HSV(clamp(r), clamp(g), clamp(b))
		return h >= 0 && h < 360 && s >= 0 && s <= 1 && v >= 0 && v <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestHSVRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 500; trial++ {
		h := rng.Float64() * 360
		s := rng.Float64()
		v := rng.Float64()
		p := FromHSV(h, s, v)
		h2, s2, v2 := HSV(p.R, p.G, p.B)
		if math.Abs(v2-v) > 1e-9 {
			t.Fatalf("v mismatch: %v vs %v", v2, v)
		}
		// Saturation and hue are only defined when chroma is nonzero.
		if v > 1e-9 {
			if math.Abs(s2-s) > 1e-9 {
				t.Fatalf("s mismatch: %v vs %v (h=%v v=%v)", s2, s, h, v)
			}
			if s > 1e-9 {
				dh := math.Abs(h2 - h)
				if dh > 180 {
					dh = 360 - dh
				}
				if dh > 1e-7 {
					t.Fatalf("h mismatch: %v vs %v", h2, h)
				}
			}
		}
	}
}

func TestFromHSVNegativeAndLargeHue(t *testing.T) {
	a := FromHSV(-90, 1, 1)
	b := FromHSV(270, 1, 1)
	if math.Abs(a.R-b.R) > 1e-12 || math.Abs(a.G-b.G) > 1e-12 || math.Abs(a.B-b.B) > 1e-12 {
		t.Error("hue should wrap")
	}
	c := FromHSV(360+120, 1, 1)
	d := FromHSV(120, 1, 1)
	if math.Abs(c.G-d.G) > 1e-12 {
		t.Error("hue > 360 should wrap")
	}
}

func TestNewImageValidation(t *testing.T) {
	if _, err := NewImage(0, 5); err == nil {
		t.Error("zero width should error")
	}
	if _, err := NewImage(5, -1); err == nil {
		t.Error("negative height should error")
	}
	im, err := NewImage(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	im.Set(1, 2, RGB{R: 1})
	if got := im.At(1, 2); got.R != 1 {
		t.Errorf("At = %+v", got)
	}
}

func TestBinOfLayout(t *testing.T) {
	e := DefaultExtractor
	if e.Bins() != 32 {
		t.Fatalf("Bins = %d", e.Bins())
	}
	// Hue 0, saturation 0 is bin 0.
	if got := e.BinOf(0, 0); got != 0 {
		t.Errorf("BinOf(0,0) = %d", got)
	}
	// Last hue range, last sat range is bin 31.
	if got := e.BinOf(359.9, 0.99); got != 31 {
		t.Errorf("BinOf(359.9,0.99) = %d", got)
	}
	// Boundary values clamp instead of overflowing.
	if got := e.BinOf(360, 1); got != 31 {
		t.Errorf("BinOf(360,1) = %d", got)
	}
	if got := e.BinOf(-1, -0.1); got != 0 {
		t.Errorf("BinOf(-1,-0.1) = %d", got)
	}
	// Hue 90° (range 2 of 8), saturation 0.6 (range 2 of 4): bin 2*4+2.
	if got := e.BinOf(90, 0.6); got != 10 {
		t.Errorf("BinOf(90,0.6) = %d", got)
	}
}

func TestExtractUniformRed(t *testing.T) {
	im, _ := NewImage(4, 4)
	for i := range im.Pix {
		im.Pix[i] = RGB{R: 1}
	}
	raw := Extractor{HueBins: 8, SatBins: 4} // no smoothing
	hist, err := raw.Extract(im)
	if err != nil {
		t.Fatal(err)
	}
	// Pure red: hue 0 (bin range 0), saturation 1 (clamped to last range).
	wantBin := raw.BinOf(0, 1)
	for i, v := range hist {
		if i == wantBin {
			if math.Abs(v-1) > 1e-12 {
				t.Errorf("bin %d = %v, want 1", i, v)
			}
		} else if v != 0 {
			t.Errorf("bin %d = %v, want 0", i, v)
		}
	}
}

func TestExtractSmoothingKeepsBinsPositive(t *testing.T) {
	im, _ := NewImage(4, 4)
	for i := range im.Pix {
		im.Pix[i] = RGB{R: 1}
	}
	hist, err := DefaultExtractor.Extract(im)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for i, v := range hist {
		if v <= 0 {
			t.Errorf("smoothed bin %d = %v, want > 0", i, v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("smoothed histogram sum = %v", sum)
	}
	// The dominant bin still carries most of the mass.
	wantBin := DefaultExtractor.BinOf(0, 1)
	if hist[wantBin] < 0.2 {
		t.Errorf("dominant bin mass = %v", hist[wantBin])
	}
	bad := Extractor{HueBins: 8, SatBins: 4, Smoothing: -1}
	if _, err := bad.Extract(im); err == nil {
		t.Error("negative smoothing should error")
	}
}

func TestExtractNormalized(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	im, _ := NewImage(8, 8)
	for i := range im.Pix {
		im.Pix[i] = RGB{R: rng.Float64(), G: rng.Float64(), B: rng.Float64()}
	}
	hist, err := DefaultExtractor.Extract(im)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, v := range hist {
		if v < 0 {
			t.Fatal("negative bin")
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("histogram sum = %v", sum)
	}
}

func TestExtractErrors(t *testing.T) {
	if _, err := DefaultExtractor.Extract(nil); err == nil {
		t.Error("nil image should error")
	}
	bad := Extractor{HueBins: 0, SatBins: 4}
	im, _ := NewImage(2, 2)
	if _, err := bad.Extract(im); err == nil {
		t.Error("invalid extractor should error")
	}
}

func TestDropRestoreLast(t *testing.T) {
	hist := []float64{0.5, 0.3, 0.2}
	front := DropLast(hist)
	if len(front) != 2 || front[0] != 0.5 || front[1] != 0.3 {
		t.Fatalf("DropLast = %v", front)
	}
	back := RestoreLast(front)
	for i := range hist {
		if math.Abs(back[i]-hist[i]) > 1e-12 {
			t.Fatalf("RestoreLast = %v", back)
		}
	}
	// Front sums above 1 clamp the last bin at zero.
	over := RestoreLast([]float64{0.8, 0.4})
	if over[2] != 0 {
		t.Errorf("over-full restore = %v", over)
	}
	if DropLast(nil) != nil {
		t.Error("DropLast(nil) should be nil")
	}
}

func TestDropLastDoesNotAliasInput(t *testing.T) {
	hist := []float64{0.5, 0.5}
	front := DropLast(hist)
	front[0] = 9
	if hist[0] != 0.5 {
		t.Error("DropLast must copy")
	}
}
