package simplextree

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/vec"
)

// buildTrainedTree grows a D-dimensional tree with n stored points and
// returns it with a fresh query workload.
func buildTrainedTree(t *testing.T, d, n, queries int, seed int64) (*Tree, [][]float64) {
	t.Helper()
	tr := newTestTree(t, d, make([]float64, 2*d), 0)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		v := make([]float64, 2*d)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		if _, err := tr.Insert(randomInterior(rng, d), v); err != nil {
			t.Fatal(err)
		}
	}
	qs := make([][]float64, queries)
	for i := range qs {
		qs[i] = randomInterior(rng, d)
	}
	return tr, qs
}

// TestPredictIntoAllocationFree pins the acceptance criterion of the
// concurrent prediction plane: after the scratch pool is warm, a lookup
// at the paper's D = 31 performs zero heap allocations.
func TestPredictIntoAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under -race; allocation count is meaningless")
	}
	tr, qs := buildTrainedTree(t, 31, 100, 64, 41)
	dst := make([]float64, tr.OQPDim())
	// Warm the scratch pool.
	for _, q := range qs {
		if _, err := tr.PredictInto(dst, q); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := tr.PredictInto(dst, qs[i%len(qs)]); err != nil {
			t.Fatal(err)
		}
		i++
	})
	if allocs != 0 {
		t.Errorf("PredictInto allocates %v objects per call, want 0", allocs)
	}
}

// TestConcurrentPredictBitwiseParity freezes a trained tree, computes the
// serial reference predictions, and asserts that concurrent readers —
// plain Predict, PredictInto and PredictBatch goroutines racing each
// other — reproduce every reference bitwise.
func TestConcurrentPredictBitwiseParity(t *testing.T) {
	tr, qs := buildTrainedTree(t, 8, 150, 256, 43)
	want := make([][]float64, len(qs))
	for i, q := range qs {
		ref, err := tr.Predict(q)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = ref
	}
	const readers = 4
	errCh := make(chan error, 3*readers)
	var wg sync.WaitGroup
	check := func(i int, got []float64, path string) error {
		if !vec.Equal(got, want[i]) {
			return fmt.Errorf("%s: query %d: got %v, want %v", path, i, got, want[i])
		}
		return nil
	}
	for g := 0; g < readers; g++ {
		wg.Add(3)
		go func() {
			defer wg.Done()
			for i, q := range qs {
				got, err := tr.Predict(q)
				if err == nil {
					err = check(i, got, "Predict")
				}
				if err != nil {
					errCh <- err
					return
				}
			}
		}()
		go func() {
			defer wg.Done()
			dst := make([]float64, tr.OQPDim())
			for i, q := range qs {
				_, err := tr.PredictInto(dst, q)
				if err == nil {
					err = check(i, dst, "PredictInto")
				}
				if err != nil {
					errCh <- err
					return
				}
			}
		}()
		go func() {
			defer wg.Done()
			out, _, err := tr.PredictBatch(qs)
			if err != nil {
				errCh <- err
				return
			}
			for i := range qs {
				if err := check(i, out[i], "PredictBatch"); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

// TestConcurrentReadersWithWriter interleaves predictions with inserts.
// Under a changing tree exact values are not pinned; the test asserts the
// read/write split stays memory-safe (run with -race) and that every
// prediction is a well-formed finite vector.
func TestConcurrentReadersWithWriter(t *testing.T) {
	tr, qs := buildTrainedTree(t, 6, 30, 128, 47)
	stop := make(chan struct{})
	errCh := make(chan error, 4)
	var writerWG, readerWG sync.WaitGroup

	writerWG.Add(1)
	go func() { // writer: keep splitting leaves
		defer writerWG.Done()
		rng := rand.New(rand.NewSource(101))
		for {
			select {
			case <-stop:
				return
			default:
			}
			v := make([]float64, tr.OQPDim())
			for j := range v {
				v[j] = rng.NormFloat64()
			}
			if _, err := tr.Insert(randomInterior(rng, 6), v); err != nil {
				errCh <- err
				return
			}
		}
	}()
	for g := 0; g < 3; g++ {
		readerWG.Add(1)
		go func(g int) {
			defer readerWG.Done()
			dst := make([]float64, tr.OQPDim())
			for round := 0; round < 20; round++ {
				switch g % 3 {
				case 0:
					for _, q := range qs {
						if _, err := tr.PredictInto(dst, q); err != nil {
							errCh <- err
							return
						}
						if !vec.IsFinite(dst) {
							errCh <- fmt.Errorf("non-finite prediction %v", dst)
							return
						}
					}
				case 1:
					out, _, err := tr.PredictBatch(qs)
					if err != nil {
						errCh <- err
						return
					}
					for _, o := range out {
						if len(o) != tr.OQPDim() || !vec.IsFinite(o) {
							errCh <- fmt.Errorf("malformed batch prediction %v", o)
							return
						}
					}
				default:
					tr.Stats()
					tr.Walk(func(v *Vertex) {})
				}
			}
		}(g)
	}
	// Readers run to completion against the live writer, then the writer
	// is stopped.
	readerWG.Wait()
	close(stop)
	writerWG.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

// TestLookupFailuresAreOutOfDomain asserts the satellite requirement that
// every position-caused lookup failure is classifiable with
// errors.Is(err, ErrOutOfDomain) on every read path.
func TestLookupFailuresAreOutOfDomain(t *testing.T) {
	tr, _ := buildTrainedTree(t, 4, 20, 0, 51)
	outside := []float64{0.9, 0.9, 0.9, 0.9} // Σ > 1: outside the standard simplex
	if _, err := tr.Predict(outside); !errors.Is(err, ErrOutOfDomain) {
		t.Errorf("Predict error %v is not ErrOutOfDomain", err)
	}
	if _, err := tr.PredictNaive(outside); !errors.Is(err, ErrOutOfDomain) {
		t.Errorf("PredictNaive error %v is not ErrOutOfDomain", err)
	}
	dst := make([]float64, tr.OQPDim())
	if _, err := tr.PredictInto(dst, outside); !errors.Is(err, ErrOutOfDomain) {
		t.Errorf("PredictInto error %v is not ErrOutOfDomain", err)
	}
	inside := []float64{0.1, 0.1, 0.1, 0.1}
	out, _, err := tr.PredictBatch([][]float64{inside, outside})
	if !errors.Is(err, ErrOutOfDomain) {
		t.Errorf("PredictBatch error %v is not ErrOutOfDomain", err)
	}
	if out[0] == nil {
		t.Error("PredictBatch dropped the valid query of a mixed batch")
	}
	if out[1] != nil {
		t.Error("PredictBatch produced a result for an out-of-domain query")
	}
	if _, err := tr.Insert(outside, make([]float64, tr.OQPDim())); !errors.Is(err, ErrOutOfDomain) {
		t.Errorf("Insert error %v is not ErrOutOfDomain", err)
	}
}

// TestInsertObserver verifies the write-path hook contract: the observer
// sees exactly the accepted inserts, in order, before the tree mutates,
// and an observer error aborts the insert leaving the tree unchanged.
func TestInsertObserver(t *testing.T) {
	tr := newTestTree(t, 3, []float64{0}, 0.5)
	type rec struct {
		q []float64
		v []float64
	}
	var seen []rec
	tr.SetObserver(func(q, value []float64, stamp uint64) error {
		seen = append(seen, rec{q: vec.Clone(q), v: vec.Clone(value)})
		return nil
	})
	q1 := []float64{0.2, 0.3, 0.2}
	if changed, err := tr.Insert(q1, []float64{2}); err != nil || !changed {
		t.Fatalf("insert 1: changed=%v err=%v", changed, err)
	}
	// Within ε of the new prediction: must be skipped AND unobserved.
	if changed, err := tr.Insert(q1, []float64{2.1}); err != nil || changed {
		t.Fatalf("insert 2: changed=%v err=%v, want skip", changed, err)
	}
	if len(seen) != 1 || !vec.Equal(seen[0].q, q1) || seen[0].v[0] != 2 {
		t.Fatalf("observer saw %v, want exactly the one accepted insert", seen)
	}

	// A failing observer aborts the insert with the tree unchanged.
	boom := errors.New("journal full")
	tr.SetObserver(func(q, value []float64, stamp uint64) error { return boom })
	before := tr.Stats()
	q2 := []float64{0.1, 0.15, 0.4}
	if _, err := tr.Insert(q2, []float64{9}); !errors.Is(err, boom) {
		t.Fatalf("insert with failing observer: err=%v, want %v", err, boom)
	}
	after := tr.Stats()
	if before != after {
		t.Errorf("tree changed despite observer failure: %+v -> %+v", before, after)
	}
	pred, err := tr.Predict(q2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pred[0]-9) < 1 {
		t.Errorf("aborted insert leaked into predictions: %v", pred)
	}
}

// TestInsertBatchMatchesSerial pins InsertBatch to the serial reference:
// the same pairs inserted one by one yield a bitwise-identical tree.
func TestInsertBatchMatchesSerial(t *testing.T) {
	d := 5
	rng := rand.New(rand.NewSource(59))
	qs := make([][]float64, 60)
	vs := make([][]float64, 60)
	for i := range qs {
		qs[i] = randomInterior(rng, d)
		vs[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
	}
	serial := newTestTree(t, d, []float64{0, 0}, 0.1)
	wantStored := 0
	for i := range qs {
		changed, err := serial.Insert(qs[i], vs[i])
		if err != nil {
			t.Fatal(err)
		}
		if changed {
			wantStored++
		}
	}
	batched := newTestTree(t, d, []float64{0, 0}, 0.1)
	stored, err := batched.InsertBatch(qs, vs)
	if err != nil {
		t.Fatal(err)
	}
	if stored != wantStored {
		t.Errorf("InsertBatch stored %d, serial stored %d", stored, wantStored)
	}
	probes := make([][]float64, 128)
	for i := range probes {
		probes[i] = randomInterior(rng, d)
	}
	for _, q := range probes {
		a, err := serial.Predict(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := batched.Predict(q)
		if err != nil {
			t.Fatal(err)
		}
		if !vec.Equal(a, b) {
			t.Fatalf("batched tree diverges at %v: %v vs %v", q, a, b)
		}
	}
}
