//go:build race

package simplextree

// raceEnabled reports whether the race detector is active; sync.Pool
// intentionally drops items under -race, so allocation-count assertions
// are skipped there.
const raceEnabled = true
