package simplextree

import (
	"math/rand"
	"testing"

	"repro/internal/vec"
)

func TestSnapshotRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	tr := newTestTree(t, 3, vec.Zeros(5), 0.01)
	for i := 0; i < 25; i++ {
		v := make([]float64, 5)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		if _, err := tr.Insert(randomInterior(rng, 3), v); err != nil {
			t.Fatal(err)
		}
	}
	snap := tr.Snapshot()
	if snap.Dim != 3 || snap.OQPDim != 5 || snap.Epsilon != 0.01 {
		t.Errorf("snapshot header: %+v", snap)
	}
	if snap.Points != tr.NumPoints() {
		t.Errorf("snapshot points = %d, want %d", snap.Points, tr.NumPoints())
	}
	back, err := FromSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumPoints() != tr.NumPoints() || back.NumLeaves() != tr.NumLeaves() || back.Depth() != tr.Depth() {
		t.Error("shape mismatch after snapshot round trip")
	}
	for trial := 0; trial < 30; trial++ {
		q := randomInterior(rng, 3)
		want, err1 := tr.Predict(q)
		got, err2 := back.Predict(q)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("error mismatch: %v vs %v", err1, err2)
		}
		if err1 == nil && !vec.EqualTol(got, want, 1e-12) {
			t.Fatalf("prediction mismatch: %v vs %v", got, want)
		}
	}
}

func TestFromSnapshotValidation(t *testing.T) {
	tr := newTestTree(t, 2, []float64{1}, 0)
	if _, err := tr.Insert([]float64{0.3, 0.3}, []float64{2}); err != nil {
		t.Fatal(err)
	}
	base := tr.Snapshot()

	cases := []struct {
		name   string
		mutate func(*Snapshot)
	}{
		{"zero dim", func(s *Snapshot) { s.Dim = 0 }},
		{"zero oqp dim", func(s *Snapshot) { s.OQPDim = 0 }},
		{"negative epsilon", func(s *Snapshot) { s.Epsilon = -1 }},
		{"zero tol", func(s *Snapshot) { s.Tol = 0 }},
		{"negative points", func(s *Snapshot) { s.Points = -1 }},
		{"nil root", func(s *Snapshot) { s.Root = nil }},
		{"bad vertex point dim", func(s *Snapshot) { s.Vertices[0].Point = []float64{1} }},
		{"bad vertex value dim", func(s *Snapshot) { s.Vertices[0].Value = []float64{1, 2} }},
		{"vertex index out of range", func(s *Snapshot) { s.Root.Verts[0] = 99 }},
		{"wrong vertex count", func(s *Snapshot) { s.Root.Verts = s.Root.Verts[:1] }},
		{"leaf with split", func(s *Snapshot) { s.Root.Children[0].Split = 0 }},
		{"child/replaced mismatch", func(s *Snapshot) { s.Root.Replaced = s.Root.Replaced[:1] }},
		{"single child", func(s *Snapshot) {
			s.Root.Children = s.Root.Children[:1]
			s.Root.Replaced = s.Root.Replaced[:1]
		}},
		{"bad mu length", func(s *Snapshot) { s.Root.Mu = s.Root.Mu[:1] }},
		{"replaced out of range", func(s *Snapshot) { s.Root.Replaced[0] = 7 }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			// Each case gets a fresh deep-enough copy by re-snapshotting.
			snap := tr.Snapshot()
			c.mutate(snap)
			if _, err := FromSnapshot(snap); err == nil {
				t.Error("expected validation error")
			}
		})
	}
	// The base snapshot still reconstructs (mutations copied, not shared).
	if _, err := FromSnapshot(base); err != nil {
		t.Fatal(err)
	}
}
