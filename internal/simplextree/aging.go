package simplextree

import (
	"fmt"

	"repro/internal/vec"
)

// RebuildStats reports what one aged rebuild did.
type RebuildStats struct {
	// Before and After are the distinct vertex counts of the source tree
	// and the rebuilt tree.
	Before, After int
	// Reclaimed = Before − After: vertices dropped by the age cutoff plus
	// survivors absorbed by the ε threshold during re-insertion.
	Reclaimed int
}

// RebuildAged builds a fresh tree containing only the vertices still
// alive under the aging horizon: the domain corners always survive
// (carrying their current values and stamps — they define the root
// simplex), and every other vertex survives iff its stamp is within
// horizon logical ticks of the tree clock. Survivors are re-inserted in
// creation order with their stamps preserved, so the rebuilt tree's
// predictions over surviving regions match the source and its WAL/
// snapshot round-trips carry the same ages. A survivor whose value the
// shrunken triangulation already predicts within ε is absorbed — extra
// reclamation the threshold earns back.
//
// horizon = 0 means no age cutoff (every vertex survives the cutoff;
// only ε absorption can shrink the tree). The source tree is not
// modified; the caller swaps the result in. The logical clock, the ε/tol
// thresholds, the quotas and the aging horizon all carry over.
func (t *Tree) RebuildAged(horizon uint64) (*Tree, RebuildStats, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()

	var cutoff uint64
	if horizon > 0 && t.clock > horizon {
		cutoff = t.clock - horizon
	}

	corners := make([]*Vertex, len(t.root.verts))
	isCorner := make([]bool, t.numVerts)
	for i, v := range t.root.verts {
		c := &Vertex{Point: vec.Clone(v.Point), Value: vec.Clone(v.Value), id: int32(i)}
		c.stamp.Store(v.stamp.Load())
		corners[i] = c
		isCorner[v.id] = true
	}
	nt := &Tree{
		dim:        t.dim,
		oqpDim:     t.oqpDim,
		epsilon:    t.epsilon,
		tol:        t.tol,
		root:       &node{verts: corners},
		numLeaves:  1,
		numVerts:   int32(len(corners)),
		clock:      t.clock,
		maxVerts:   t.maxVerts,
		maxBytes:   t.maxBytes,
		ageHorizon: t.ageHorizon,
	}
	if err := nt.initDerived(); err != nil {
		return nil, RebuildStats{}, fmt.Errorf("simplextree: rebuild root simplex is degenerate: %w", err)
	}

	// Re-insert survivors in creation order: the rebuilt triangulation is
	// then deterministic, and earlier vertices recreate the descent
	// structure later ones were inserted into.
	byID := make([]*Vertex, t.numVerts)
	t.walkLocked(func(v *Vertex) { byID[v.id] = v })
	stats := RebuildStats{}
	for _, v := range byID {
		if v == nil {
			continue
		}
		stats.Before++
		if isCorner[v.id] {
			continue
		}
		if stamp := v.stamp.Load(); !(cutoff > 0 && stamp < cutoff) {
			// nt is private to this call — no lock needed for its
			// insertLocked (the receiver is unreachable by other
			// goroutines until the caller publishes it).
			if _, err := nt.insertLocked(v.Point, v.Value, stamp); err != nil {
				return nil, RebuildStats{}, fmt.Errorf("simplextree: rebuild re-insert: %w", err)
			}
		}
	}
	stats.After = int(nt.numVerts)
	stats.Reclaimed = stats.Before - stats.After
	return nt, stats, nil
}
