package simplextree

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/vec"
)

func TestCompressValuesValidation(t *testing.T) {
	tr := newTestTree(t, 2, []float64{1, 2}, 0)
	if _, err := tr.CompressValues(-1); err == nil {
		t.Error("negative eps should error")
	}
	dropped, err := tr.CompressValues(0)
	if err != nil || dropped != 0 {
		t.Errorf("eps=0 should be a no-op: %d, %v", dropped, err)
	}
}

func TestCompressValuesBoundsError(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := 5
	n := 62 // the paper's OQP length
	tr := newTestTree(t, d, vec.Zeros(n), 0)
	type stored struct{ q, v []float64 }
	var pts []stored
	for i := 0; i < 25; i++ {
		q := randomInterior(rng, d)
		v := make([]float64, n)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		changed, err := tr.Insert(q, v)
		if err != nil {
			t.Fatal(err)
		}
		if changed {
			pts = append(pts, stored{q, v})
		}
	}
	eps := 0.05
	dropped, err := tr.CompressValues(eps)
	if err != nil {
		t.Fatal(err)
	}
	if dropped == 0 {
		t.Error("no coefficients dropped at eps=0.05 on N(0,1) values")
	}
	// Per-vertex reconstruction error is bounded by eps·√(padded length).
	bound := eps * math.Sqrt(64)
	for i, p := range pts {
		got, err := tr.Predict(p.q)
		if err != nil {
			t.Fatal(err)
		}
		var e float64
		for j := range got {
			d := got[j] - p.v[j]
			e += d * d
		}
		if math.Sqrt(e) > bound {
			t.Fatalf("point %d: L2 error %v exceeds bound %v", i, math.Sqrt(e), bound)
		}
	}
}

func TestCompressValuesMonotoneInEps(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	build := func() *Tree {
		tr := newTestTree(t, 3, vec.Zeros(16), 0)
		r := rand.New(rand.NewSource(7))
		for i := 0; i < 20; i++ {
			v := make([]float64, 16)
			for j := range v {
				v[j] = r.NormFloat64()
			}
			if _, err := tr.Insert(randomInterior(r, 3), v); err != nil {
				t.Fatal(err)
			}
		}
		return tr
	}
	_ = rng
	prev := -1
	for _, eps := range []float64{0.01, 0.1, 1, 10} {
		tr := build()
		dropped, err := tr.CompressValues(eps)
		if err != nil {
			t.Fatal(err)
		}
		if dropped < prev {
			t.Errorf("eps=%v dropped %d < previous %d", eps, dropped, prev)
		}
		prev = dropped
	}
}

func TestCompressValuesPreservesTreeStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tr := newTestTree(t, 2, vec.Zeros(4), 0)
	for i := 0; i < 15; i++ {
		v := make([]float64, 4)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		if _, err := tr.Insert(randomInterior(rng, 2), v); err != nil {
			t.Fatal(err)
		}
	}
	before := tr.Stats()
	if _, err := tr.CompressValues(0.5); err != nil {
		t.Fatal(err)
	}
	after := tr.Stats()
	if before.Points != after.Points || before.Leaves != after.Leaves || before.Depth != after.Depth {
		t.Errorf("compression changed the tree shape: %+v -> %+v", before, after)
	}
	// Predictions still work everywhere.
	for trial := 0; trial < 20; trial++ {
		got, err := tr.Predict(randomInterior(rng, 2))
		if err != nil {
			t.Fatal(err)
		}
		if !vec.IsFinite(got) {
			t.Fatal("non-finite prediction after compression")
		}
	}
}
