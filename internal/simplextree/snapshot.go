package simplextree

import (
	"errors"
	"fmt"

	"repro/internal/vec"
)

// Snapshot is a structural dump of a Simplex Tree suitable for
// serialization: vertices are deduplicated into a table and nodes
// reference them by index. Package persist encodes snapshots in a
// versioned binary format.
type Snapshot struct {
	Dim     int
	OQPDim  int
	Epsilon float64
	Tol     float64
	Points  int // stored-point counter (NumPoints)
	// Clock is the logical time of the lifecycle plane (see Tree.Clock);
	// 0 for snapshots of trees that never aged (and for legacy formats).
	Clock uint64

	Vertices []SnapshotVertex
	Root     *SnapshotNode
}

// SnapshotVertex is a vertex row of the snapshot table.
type SnapshotVertex struct {
	Point []float64
	Value []float64
	// Stamp is the vertex's last-reinforcement logical time (0 in
	// legacy snapshots, which predate aging).
	Stamp uint64
}

// SnapshotNode mirrors one tree node with vertex-table references.
type SnapshotNode struct {
	Verts    []int32 // D+1 indices into Snapshot.Vertices
	Split    int32   // index of the split vertex; -1 for leaves
	Mu       []float64
	Replaced []int32
	Children []*SnapshotNode
}

// Snapshot captures the tree's full structure.
func (t *Tree) Snapshot() *Snapshot {
	t.mu.RLock()
	defer t.mu.RUnlock()
	s := &Snapshot{
		Dim:     t.dim,
		OQPDim:  t.oqpDim,
		Epsilon: t.epsilon,
		Tol:     t.tol,
		Points:  t.numPoints,
		Clock:   t.clock,
	}
	index := make(map[*Vertex]int32)
	var vertexID func(v *Vertex) int32
	vertexID = func(v *Vertex) int32 {
		if id, ok := index[v]; ok {
			return id
		}
		id := int32(len(s.Vertices))
		index[v] = id
		s.Vertices = append(s.Vertices, SnapshotVertex{
			Point: vec.Clone(v.Point),
			Value: vec.Clone(v.Value),
			Stamp: v.stamp.Load(),
		})
		return id
	}
	var dump func(n *node) *SnapshotNode
	dump = func(n *node) *SnapshotNode {
		sn := &SnapshotNode{Split: -1}
		for _, v := range n.verts {
			sn.Verts = append(sn.Verts, vertexID(v))
		}
		if !n.leaf() {
			sn.Split = vertexID(n.split)
			sn.Mu = vec.Clone(n.mu)
			for i, c := range n.children {
				sn.Replaced = append(sn.Replaced, int32(n.replaced[i]))
				sn.Children = append(sn.Children, dump(c))
			}
		}
		return sn
	}
	s.Root = dump(t.root)
	return s
}

// FromSnapshot reconstructs a tree, validating structural integrity: index
// bounds, dimension consistency, child/replaced parity, and that children
// reference their parent's vertices correctly.
func FromSnapshot(s *Snapshot) (*Tree, error) {
	if s == nil || s.Root == nil {
		return nil, errors.New("simplextree: nil snapshot")
	}
	if s.Dim <= 0 || s.OQPDim <= 0 {
		return nil, fmt.Errorf("simplextree: invalid snapshot dims D=%d N=%d", s.Dim, s.OQPDim)
	}
	if s.Epsilon < 0 || s.Tol <= 0 {
		return nil, fmt.Errorf("simplextree: invalid snapshot thresholds ε=%v tol=%v", s.Epsilon, s.Tol)
	}
	if s.Points < 0 {
		return nil, fmt.Errorf("simplextree: negative point count %d", s.Points)
	}
	verts := make([]*Vertex, len(s.Vertices))
	for i, sv := range s.Vertices {
		if len(sv.Point) != s.Dim {
			return nil, fmt.Errorf("simplextree: vertex %d point has dimension %d, want %d", i, len(sv.Point), s.Dim)
		}
		if len(sv.Value) != s.OQPDim {
			return nil, fmt.Errorf("simplextree: vertex %d value has dimension %d, want %d", i, len(sv.Value), s.OQPDim)
		}
		if !vec.IsFinite(sv.Point) || !vec.IsFinite(sv.Value) {
			return nil, fmt.Errorf("simplextree: vertex %d contains non-finite values", i)
		}
		v := &Vertex{Point: vec.Clone(sv.Point), Value: vec.Clone(sv.Value), id: int32(i)}
		v.stamp.Store(sv.Stamp)
		verts[i] = v
	}
	lookupVert := func(id int32) (*Vertex, error) {
		if id < 0 || int(id) >= len(verts) {
			return nil, fmt.Errorf("simplextree: vertex index %d out of range [0,%d)", id, len(verts))
		}
		return verts[id], nil
	}
	leaves := 0
	var build func(sn *SnapshotNode) (*node, error)
	build = func(sn *SnapshotNode) (*node, error) {
		if len(sn.Verts) != s.Dim+1 {
			return nil, fmt.Errorf("simplextree: node has %d vertices, want %d", len(sn.Verts), s.Dim+1)
		}
		n := &node{}
		for _, id := range sn.Verts {
			v, err := lookupVert(id)
			if err != nil {
				return nil, err
			}
			n.verts = append(n.verts, v)
		}
		if len(sn.Children) == 0 {
			if sn.Split != -1 || len(sn.Mu) != 0 || len(sn.Replaced) != 0 {
				return nil, errors.New("simplextree: leaf node carries split metadata")
			}
			leaves++
			return n, nil
		}
		if len(sn.Children) != len(sn.Replaced) {
			return nil, fmt.Errorf("simplextree: %d children but %d replaced entries", len(sn.Children), len(sn.Replaced))
		}
		if len(sn.Children) < 2 {
			return nil, fmt.Errorf("simplextree: inner node with %d children", len(sn.Children))
		}
		if len(sn.Mu) != s.Dim+1 {
			return nil, fmt.Errorf("simplextree: split coordinates have length %d, want %d", len(sn.Mu), s.Dim+1)
		}
		split, err := lookupVert(sn.Split)
		if err != nil {
			return nil, err
		}
		n.split = split
		n.mu = vec.Clone(sn.Mu)
		for i, sc := range sn.Children {
			h := int(sn.Replaced[i])
			if h < 0 || h > s.Dim {
				return nil, fmt.Errorf("simplextree: replaced index %d out of range", h)
			}
			child, err := build(sc)
			if err != nil {
				return nil, err
			}
			// Structural consistency: the child must equal the parent with
			// vertex h swapped for the split vertex.
			if child.verts[h] != split {
				return nil, fmt.Errorf("simplextree: child %d does not reference the split vertex at position %d", i, h)
			}
			for j := range child.verts {
				if j != h && child.verts[j] != n.verts[j] {
					return nil, fmt.Errorf("simplextree: child %d vertex %d does not match parent", i, j)
				}
			}
			n.children = append(n.children, child)
			n.replaced = append(n.replaced, h)
		}
		return n, nil
	}
	root, err := build(s.Root)
	if err != nil {
		return nil, err
	}
	clock := s.Clock
	for _, v := range verts {
		// A legacy snapshot has Clock 0 while stamps may not (or, after
		// hand-editing, vice versa); the clock must cover every stamp for
		// aging arithmetic to stay monotone.
		if st := v.stamp.Load(); st > clock {
			clock = st
		}
	}
	t := &Tree{
		dim:       s.Dim,
		oqpDim:    s.OQPDim,
		epsilon:   s.Epsilon,
		tol:       s.Tol,
		root:      root,
		numPoints: s.Points,
		numLeaves: leaves,
		numVerts:  int32(len(verts)),
		clock:     clock,
	}
	if err := t.initDerived(); err != nil {
		return nil, fmt.Errorf("simplextree: snapshot root simplex is degenerate: %w", err)
	}
	return t, nil
}
