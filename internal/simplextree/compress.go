package simplextree

import (
	"fmt"

	"repro/internal/haar"
)

// CompressValues applies the storage/accuracy trade-off of §3.1 to the
// stored OQP vectors: each distinct vertex value is passed through the
// Haar transform, detail coefficients below eps are dropped, and the
// vector is reconstructed in place. Predictions afterwards interpolate the
// smoothed values; in the orthonormal Haar basis the per-vertex L2 error
// is bounded by eps·√N' (N' the padded vector length).
//
// It returns the total number of coefficients dropped across all vertices
// — the storage a coefficient-level persistence format would save. The
// in-memory tree keeps dense vectors; the measure (and the persisted
// sparse form in package haar) is what the trade-off buys.
func (t *Tree) CompressValues(eps float64) (dropped int, err error) {
	if eps < 0 {
		return 0, fmt.Errorf("simplextree: negative compression threshold %v", eps)
	}
	if eps == 0 {
		return 0, nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	seen := make(map[*Vertex]bool)
	var rec func(n *node) error
	rec = func(n *node) error {
		for _, v := range n.verts {
			if seen[v] {
				continue
			}
			seen[v] = true
			sparse, cerr := haar.Compress(v.Value, eps)
			if cerr != nil {
				return cerr
			}
			dropped += haar.NextPowerOfTwo(len(v.Value)) - sparse.StorageSize()
			back, derr := sparse.Decompress()
			if derr != nil {
				return derr
			}
			copy(v.Value, back)
		}
		for _, c := range n.children {
			if err := rec(c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(t.root); err != nil {
		return 0, err
	}
	return dropped, nil
}
