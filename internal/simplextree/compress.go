package simplextree

import (
	"fmt"

	"repro/internal/haar"
)

// CompressValues applies the storage/accuracy trade-off of §3.1 to the
// stored OQP vectors: each distinct vertex value is passed through the
// Haar transform, detail coefficients below eps are dropped, and the
// vector is reconstructed in place. Predictions afterwards interpolate the
// smoothed values; in the orthonormal Haar basis the per-vertex L2 error
// is bounded by eps·√N' (N' the padded vector length).
//
// It returns the total number of coefficients dropped across all vertices
// — the storage a coefficient-level persistence format would save. The
// in-memory tree keeps dense vectors; the measure (and the persisted
// sparse form in package haar) is what the trade-off buys.
func (t *Tree) CompressValues(eps float64) (dropped int, err error) {
	if eps < 0 {
		return 0, fmt.Errorf("simplextree: negative compression threshold %v", eps)
	}
	if eps == 0 {
		return 0, nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.walkLocked(func(v *Vertex) {
		if err != nil {
			return
		}
		sparse, cerr := haar.Compress(v.Value, eps)
		if cerr != nil {
			err = cerr
			return
		}
		dropped += haar.NextPowerOfTwo(len(v.Value)) - sparse.StorageSize()
		back, derr := sparse.Decompress()
		if derr != nil {
			err = derr
			return
		}
		copy(v.Value, back)
	})
	if err != nil {
		return 0, err
	}
	return dropped, nil
}
