//go:build !race

package simplextree

const raceEnabled = false
