// Package simplextree implements the Simplex Tree of §4 — the wavelet-
// based data structure at the core of FeedbackBypass. It organizes the
// query domain Q ⊆ R^D as an incremental triangulation: every node is a
// simplex of D+1 vertices; inserting a query point splits its enclosing
// leaf into up to D+1 children around the point; every stored vertex
// carries its N-dimensional vector of optimal query parameters (OQPs).
//
// Prediction evaluates the unbalanced Haar wavelet the triangulation
// defines: a linear interpolation of the vertex OQPs of the enclosing
// simplex at the query's barycentric coordinates, which is algebraically
// the determinant equation of §4.2 (tests verify the equivalence).
// Insertion is ε-thresholded: a point whose actual OQPs are already
// predicted within ε is not stored, so resource usage tracks the intrinsic
// complexity of the optimal query mapping, not the number of queries.
//
// # Concurrency model
//
// The tree is split into a read plane and a write plane. The read plane —
// Predict, PredictInto, PredictBatch, PredictNaive, Walk, Stats, Snapshot
// and the accessors — is pure: it runs under the shared read lock, never
// mutates the tree, and reports per-call traversal counts through
// PredictStats instead of storing them. Any number of readers proceed in
// parallel. The write plane — Insert, InsertBatch, SetObserver,
// CompressValues — takes the exclusive lock. Lookups are allocation-free
// after warm-up: the root barycentric system is LU-factorized once at
// construction (the root simplex never changes), descent uses the O(D)
// incremental child update (geom.ChildBarycentricInto), and per-call
// buffers come from a scratch pool; see DESIGN.md ("Concurrent prediction
// plane").
package simplextree

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/geom"
	"repro/internal/vec"
)

// ErrOutOfDomain is returned for query points outside the root simplex.
// Every lookup failure caused by a point's position (outside the domain,
// or unresolvable numerical boundary) wraps it, so callers can classify
// with errors.Is.
var ErrOutOfDomain = errors.New("simplextree: query point outside the root simplex")

// ErrQuotaExceeded is wrapped by inserts that would grow the tree past a
// configured vertex or byte quota (Options.MaxVertices / MaxBytes). It
// is a resource-governance rejection, not a failure: the tree is
// unchanged, predictions keep working, and vertex-value updates (which
// store no new vertex) are still accepted.
var ErrQuotaExceeded = errors.New("simplextree: tree quota exceeded")

// boundarySlack widens the containment band used while descending:
// a child accepts a point when every barycentric coordinate is
// ≥ -boundarySlack·tol. Descent multiplies the rounding of the root solve
// by up to 1/μ_h per level (geom.ChildBarycentric), so coordinates of
// points genuinely on a facet drift below -tol after a few levels; the
// slack absorbs that drift. Both the incremental fast path and the
// re-solving fallback use this one constant so they accept the same
// points (the fallback used to be 10x looser than the fast path, which
// made the two paths disagree exactly on the boundary queries the
// fallback exists for).
const boundarySlack = 10

// Vertex is a stored query point with its OQP vector. Vertices are shared
// by every simplex they delimit, so updating a vertex's value is visible
// tree-wide.
type Vertex struct {
	Point []float64
	Value []float64

	id int32 // creation-order index; keys the mark slices of Walk/Stats

	// stamp is the logical time the vertex was last stored or reinforced
	// (see Tree.Clock). It is atomic because predictions touch it under
	// the shared read lock when aging is enabled; all other mutation
	// happens under the exclusive lock. Vertices are always shared by
	// pointer, never copied, so the atomic is safe to embed.
	stamp atomic.Uint64
}

// Stamp reports the logical time the vertex was last stored or
// reinforced; 0 for vertices that predate aging (legacy snapshots/WALs).
func (v *Vertex) Stamp() uint64 { return v.stamp.Load() }

type node struct {
	verts    []*Vertex // D+1 vertices spanning this simplex
	split    *Vertex   // the point this node was split at (inner nodes)
	mu       []float64 // barycentric coordinates of split.Point w.r.t. verts
	children []*node   // one per non-degenerate child
	replaced []int     // children[i] replaces vertex replaced[i] with split
}

func (n *node) leaf() bool { return len(n.children) == 0 }

// Observer is the write-path hook: it is invoked, while the exclusive
// lock is held, for every insert the tree has decided to store — after
// the ε check and the structural validation, immediately before the tree
// mutates. Returning an error aborts the insert with the tree unchanged,
// which gives the hook write-ahead semantics (package persist journals
// accepted inserts to a WAL through it). stamp is the logical timestamp
// the stored vertex will carry, so a journaling observer persists
// exactly what replay must restore. The slices are the caller's;
// implementations must not retain them past the call.
type Observer func(q, value []float64, stamp uint64) error

// PredictStats reports per-call measurements of one lookup.
type PredictStats struct {
	// Traversed is the number of simplices visited — the "no. of
	// simplices traversed" series of Figure 16.
	Traversed int
}

// scratch holds the per-call buffers of one lookup, recycled through the
// tree's pool so warmed-up predictions allocate nothing.
type scratch struct {
	rhs  []float64 // right-hand side of the root barycentric solve
	lam  []float64 // barycentric coordinates at the current node
	bufA []float64 // candidate/best child coordinates (descent juggles
	bufB []float64 // three equal-size buffers without copying)
}

// Tree is a Simplex Tree mapping points of a D-dimensional query domain to
// N-dimensional OQP vectors. It is safe for concurrent use: predictions
// run in parallel under a read lock, inserts serialize under the write
// lock (see the package comment).
type Tree struct {
	mu sync.RWMutex

	dim     int     // D
	oqpDim  int     // N
	epsilon float64 // insert threshold ε of §4.2
	tol     float64 // geometric tolerance

	root       *node
	rootSolver *geom.BarycentricSolver // LU of the fixed root system
	numPoints  int                     // stored (split or updated) query points
	numLeaves  int
	numVerts   int32 // distinct vertices ever created (next Vertex.id)

	// clock is the monotonic logical time of the lifecycle plane: it
	// advances on every accepted insert, and the accepting vertex is
	// stamped with the new value. Mutated only under the exclusive lock;
	// read under either lock mode (readers copy it into vertex stamps).
	clock uint64

	maxVerts int   // vertex quota; 0 = unbounded
	maxBytes int64 // approximate byte quota; 0 = unbounded

	// ageHorizon > 0 enables aging: predictions reinforce the enclosing
	// leaf's vertex stamps, and RebuildAged reclaims vertices whose stamp
	// trails the clock by more than the horizon. 0 disables aging — the
	// read path then never writes a stamp, keeping it bitwise identical
	// to the pre-lifecycle tree.
	ageHorizon uint64

	observer Observer

	scratch sync.Pool // *scratch

	lastTraversed int // Deprecated bookkeeping; see LastTraversed
}

// Options configures a Tree.
type Options struct {
	// Epsilon is the insert threshold ε: a new point is stored only when
	// max_i |m_i(q) − v̂_i| > ε. Zero stores every point with a prediction
	// mismatch; larger values trade accuracy for storage (§4.2).
	Epsilon float64
	// Tol is the geometric tolerance for containment and degeneracy
	// decisions; geom.DefaultTol when zero.
	Tol float64
	// MaxVertices bounds the number of distinct vertices the tree may
	// hold, counting the D+1 domain corners. Zero means unbounded. An
	// insert that would create a vertex past the bound is rejected with
	// ErrQuotaExceeded; vertex-value updates stay accepted.
	MaxVertices int
	// MaxBytes bounds the tree's approximate heap footprint (see
	// SizeBytes). Zero means unbounded; enforcement matches MaxVertices.
	MaxBytes int64
	// AgeHorizon, when positive, enables OQP aging: vertices whose stamp
	// trails the logical clock by more than the horizon become
	// reclaimable by RebuildAged, and predictions reinforce the stamps of
	// the enclosing simplex's vertices. Zero disables aging entirely.
	AgeHorizon uint64
}

// New builds a Simplex Tree over the given root domain simplex. Every
// corner of the domain is seeded with defaultOQP, so an empty tree
// predicts exactly the default parameters everywhere (the paper's limit
// case in which nothing is ever stored).
func New(domain *geom.Simplex, defaultOQP []float64, opts Options) (*Tree, error) {
	if domain == nil {
		return nil, errors.New("simplextree: nil domain")
	}
	if len(defaultOQP) == 0 {
		return nil, errors.New("simplextree: empty default OQP vector")
	}
	if opts.Epsilon < 0 {
		return nil, fmt.Errorf("simplextree: negative epsilon %v", opts.Epsilon)
	}
	if opts.Tol == 0 {
		opts.Tol = geom.DefaultTol
	}
	if opts.Tol < 0 {
		return nil, fmt.Errorf("simplextree: negative tolerance %v", opts.Tol)
	}
	if opts.MaxVertices < 0 || opts.MaxBytes < 0 {
		return nil, fmt.Errorf("simplextree: negative quota (MaxVertices=%d, MaxBytes=%d)", opts.MaxVertices, opts.MaxBytes)
	}
	d := domain.Dim()
	verts := make([]*Vertex, d+1)
	for i := range verts {
		verts[i] = &Vertex{
			Point: vec.Clone(domain.Vertex(i)),
			Value: vec.Clone(defaultOQP),
			id:    int32(i),
		}
	}
	t := &Tree{
		dim:        d,
		oqpDim:     len(defaultOQP),
		epsilon:    opts.Epsilon,
		tol:        opts.Tol,
		root:       &node{verts: verts},
		numLeaves:  1,
		numVerts:   int32(d + 1),
		maxVerts:   opts.MaxVertices,
		maxBytes:   opts.MaxBytes,
		ageHorizon: opts.AgeHorizon,
	}
	if err := t.initDerived(); err != nil {
		// Degeneracy check: the barycentric system must be solvable. (A
		// volume threshold would wrongly reject high-dimensional domains,
		// whose volume 1/D! underflows any fixed tolerance.)
		return nil, fmt.Errorf("simplextree: domain is degenerate: %w", err)
	}
	return t, nil
}

// initDerived builds the state derived from the root simplex: the
// once-per-tree LU factorization of the root barycentric system and the
// scratch pool. Called by New and FromSnapshot.
func (t *Tree) initDerived() error {
	rootSimplex, err := t.simplexOf(t.root)
	if err != nil {
		return err
	}
	solver, err := rootSimplex.Solver()
	if err != nil {
		return err
	}
	t.rootSolver = solver
	n := t.dim + 1
	t.scratch.New = func() interface{} {
		return &scratch{
			rhs:  make([]float64, n),
			lam:  make([]float64, n),
			bufA: make([]float64, n),
			bufB: make([]float64, n),
		}
	}
	return nil
}

// Dim returns the query-domain dimensionality D.
func (t *Tree) Dim() int { return t.dim }

// OQPDim returns the stored vector dimensionality N.
func (t *Tree) OQPDim() int { return t.oqpDim }

// SetQuota installs (or clears, with zeros) the vertex and byte bounds
// after construction. Recovery paths use it to apply quotas only once
// the persisted state is replayed: a tree already past a newly lowered
// bound keeps serving reads and rejects further growth, rather than
// failing to open.
func (t *Tree) SetQuota(maxVertices int, maxBytes int64) {
	t.mu.Lock()
	t.maxVerts = maxVertices
	t.maxBytes = maxBytes
	t.mu.Unlock()
}

// perVertexBytes approximates the heap cost of one stored vertex: its
// point and value float64 slices plus struct, pointer and node-sharing
// overhead. A constant per-vertex model keeps the byte quota monotone
// and cheap to enforce.
func (t *Tree) perVertexBytes() int64 { return int64(8*(t.dim+t.oqpDim)) + 128 }

// SizeBytes reports the tree's approximate heap footprint — the
// quantity Options.MaxBytes bounds.
func (t *Tree) SizeBytes() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.sizeBytesLocked()
}

func (t *Tree) sizeBytesLocked() int64 { return int64(t.numVerts) * t.perVertexBytes() }

// Epsilon returns the insert threshold.
func (t *Tree) Epsilon() float64 { return t.epsilon }

// AgeHorizon returns the configured aging horizon (0 = aging disabled).
func (t *Tree) AgeHorizon() uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.ageHorizon
}

// SetAgeHorizon installs (or disables, with 0) the aging horizon after
// construction. Recovery paths use it the way they use SetQuota: a tree
// rebuilt from a snapshot carries data (stamps, clock) but not policy,
// which the owning configuration re-applies once the tree is live.
func (t *Tree) SetAgeHorizon(horizon uint64) {
	t.mu.Lock()
	t.ageHorizon = horizon
	t.mu.Unlock()
}

// Clock returns the tree's logical time: the number of accepted inserts
// observed over its whole history (it survives snapshots and replay).
func (t *Tree) Clock() uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.clock
}

// NumPoints returns the number of query points stored (inserted splits
// plus vertex-value updates of re-seen points).
func (t *Tree) NumPoints() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.numPoints
}

// NumLeaves returns the number of leaf simplices.
func (t *Tree) NumLeaves() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.numLeaves
}

// SetObserver installs the write-path hook invoked for every accepted
// insert (nil removes it). See Observer for the exact contract.
func (t *Tree) SetObserver(fn Observer) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.observer = fn
}

// LastTraversed reports the number of simplices visited by the most
// recent Insert.
//
// Deprecated: predictions no longer store traversal counts — the read
// path is pure so it can run in parallel. Use the PredictStats returned
// by PredictInto/PredictBatch (or InsertStats) instead. Only the write
// path still updates this counter.
func (t *Tree) LastTraversed() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.lastTraversed
}

// Depth returns the maximum node depth (1 = root only) — the "Depth of
// Simplex Tree" series of Figure 16.
func (t *Tree) Depth() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return maxDepth(t.root)
}

func maxDepth(n *node) int {
	if n == nil {
		return 0
	}
	best := 0
	for _, c := range n.children {
		if d := maxDepth(c); d > best {
			best = d
		}
	}
	return 1 + best
}

// lookup descends to the leaf containing q, maintaining barycentric
// coordinates incrementally in the scratch buffers. It returns the leaf,
// the coordinates of q with respect to it (aliasing one of the scratch
// buffers), and the number of simplices traversed. The caller must hold
// the lock (either mode) and own sc.
func (t *Tree) lookup(q []float64, sc *scratch) (*node, []float64, int, error) {
	if len(q) != t.dim {
		return nil, nil, 0, fmt.Errorf("simplextree: query has dimension %d, want %d", len(q), t.dim)
	}
	if err := t.rootSolver.BarycentricInto(sc.lam, sc.rhs, q); err != nil {
		return nil, nil, 0, err
	}
	if !geom.AllNonNegative(sc.lam, t.tol) {
		return nil, nil, 0, ErrOutOfDomain
	}
	n := t.root
	lam := sc.lam
	spareA, spareB := sc.bufA, sc.bufB
	traversed := 1
	for !n.leaf() {
		next, nextLam := t.descendOnce(n, lam, spareA, spareB)
		if next == nil {
			// Numerically ambiguous boundary point: no child accepted it.
			// Resolve by a fresh solve against each child (robust path).
			next, nextLam = t.descendSolve(n, q)
			if next == nil {
				return nil, nil, traversed, fmt.Errorf("simplextree: no child contains point %v (numerical boundary): %w", q, ErrOutOfDomain)
			}
		}
		// Rotate buffers: nextLam took one of the spares (or is freshly
		// allocated by the fallback); the buffer holding the old lam is
		// free again. Slices are compared by backing array since all
		// buffers share one length.
		if &nextLam[0] == &spareA[0] {
			spareA = lam
		} else if &nextLam[0] == &spareB[0] {
			spareB = lam
		}
		n, lam = next, nextLam
		traversed++
	}
	return n, lam, traversed, nil
}

// descendOnce picks the child containing the point with coordinates lam
// using the O(D)-per-child incremental update, writing candidate
// coordinates into the two spare buffers (no allocation). Among children
// accepting the point (boundary points may be accepted by several), the
// one whose minimum coordinate is largest is chosen, which is stable
// under rounding.
func (t *Tree) descendOnce(n *node, lam, spareA, spareB []float64) (*node, []float64) {
	var best *node
	var bestLam []float64
	cand := spareA
	bestMin := math.Inf(-1)
	for i, c := range n.children {
		if !geom.ChildBarycentricInto(cand, lam, n.mu, n.replaced[i], t.tol) {
			continue
		}
		min := math.Inf(1)
		for _, x := range cand {
			if x < min {
				min = x
			}
		}
		if min >= -boundarySlack*t.tol && min > bestMin {
			best, bestLam, bestMin = c, cand, min
			if &cand[0] == &spareA[0] {
				cand = spareB
			} else {
				cand = spareA
			}
		}
	}
	return best, bestLam
}

// descendSolve is the slow fallback: solve the barycentric system directly
// for each child. It allocates, but runs only for numerically ambiguous
// boundary points.
func (t *Tree) descendSolve(n *node, q []float64) (*node, []float64) {
	var best *node
	var bestLam []float64
	bestMin := math.Inf(-1)
	for _, c := range n.children {
		s, err := t.simplexOf(c)
		if err != nil {
			continue
		}
		nu, err := s.Barycentric(q)
		if err != nil {
			continue
		}
		min := math.Inf(1)
		for _, x := range nu {
			if x < min {
				min = x
			}
		}
		if min >= -boundarySlack*t.tol && min > bestMin {
			best, bestLam, bestMin = c, nu, min
		}
	}
	return best, bestLam
}

func (t *Tree) simplexOf(n *node) (*geom.Simplex, error) {
	pts := make([][]float64, len(n.verts))
	for i, v := range n.verts {
		pts[i] = v.Point
	}
	return geom.NewSimplex(pts)
}

// interpolateInto evaluates the piecewise-linear wavelet at barycentric
// coordinates lam over the leaf's vertices into dst:
// v̂ = Σ_j λ_j · Value(s_j).
func interpolateInto(dst []float64, n *node, lam []float64) {
	for i := range dst {
		dst[i] = 0
	}
	for j, v := range n.verts {
		vec.Axpy(dst, lam[j], v.Value)
	}
}

// Predict returns the interpolated OQP vector for q — the Mopt method of
// Figure 5. An empty tree returns the default OQPs everywhere inside the
// domain. Predict is pure: it takes only the read lock, so any number of
// predictions run in parallel. The single allocation is the result
// vector; use PredictInto to avoid it.
func (t *Tree) Predict(q []float64) ([]float64, error) {
	out := make([]float64, t.oqpDim)
	if _, err := t.PredictInto(out, q); err != nil {
		return nil, err
	}
	return out, nil
}

// PredictInto interpolates the OQP vector for q into dst (length N) and
// reports per-call traversal statistics. It is the allocation-free read
// path: after the scratch pool is warm, a call performs zero heap
// allocations (asserted by TestPredictIntoAllocationFree).
func (t *Tree) PredictInto(dst, q []float64) (PredictStats, error) {
	if len(dst) != t.oqpDim {
		return PredictStats{}, fmt.Errorf("simplextree: dst has dimension %d, want %d", len(dst), t.oqpDim)
	}
	sc := t.scratch.Get().(*scratch)
	t.mu.RLock()
	leaf, lam, traversed, err := t.lookup(q, sc)
	st := PredictStats{Traversed: traversed}
	if err == nil {
		interpolateInto(dst, leaf, lam)
		t.touchLeaf(leaf)
	}
	t.mu.RUnlock()
	t.scratch.Put(sc)
	return st, err
}

// touchLeaf reinforces the stamps of a served simplex's vertices: a
// prediction read from them means they still describe live traffic, so
// aging must not reclaim them. Atomic stores keep this legal under the
// shared read lock (the clock is frozen while any reader holds it, so
// stamps only ever move forward). With aging disabled this is a no-op —
// the read path stays bitwise identical to the pre-lifecycle tree.
func (t *Tree) touchLeaf(leaf *node) {
	if t.ageHorizon == 0 {
		return
	}
	now := t.clock
	for _, v := range leaf.verts {
		v.stamp.Store(now)
	}
}

// PredictBatch predicts OQP vectors for every query under one read-lock
// acquisition, sharding the batch across GOMAXPROCS goroutines (each with
// its own scratch). Results are bitwise identical to serial Predict calls
// — descent is deterministic and readers share no mutable state. On
// failure it returns the error of the lowest-indexed failing query of the
// lowest-indexed failing shard; out[i] is nil for failed queries and the
// remaining queries are still predicted.
func (t *Tree) PredictBatch(qs [][]float64) (out [][]float64, stats []PredictStats, err error) {
	out = make([][]float64, len(qs))
	stats = make([]PredictStats, len(qs))
	if len(qs) == 0 {
		return out, stats, nil
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(qs) {
		workers = len(qs)
	}
	chunk := (len(qs) + workers - 1) / workers
	errs := make([]error, workers)

	t.mu.RLock()
	defer t.mu.RUnlock()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(qs) {
			hi = len(qs)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			sc := t.scratch.Get().(*scratch)
			defer t.scratch.Put(sc)
			for i := lo; i < hi; i++ {
				leaf, lam, traversed, lerr := t.lookup(qs[i], sc)
				stats[i] = PredictStats{Traversed: traversed}
				if lerr != nil {
					if errs[w] == nil {
						errs[w] = fmt.Errorf("simplextree: batch query %d: %w", i, lerr)
					}
					continue
				}
				dst := make([]float64, t.oqpDim)
				interpolateInto(dst, leaf, lam)
				t.touchLeaf(leaf)
				out[i] = dst
			}
		}(w, lo, hi)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return out, stats, e
		}
	}
	return out, stats, nil
}

// Insert stores the OQP vector observed for q — the Insert method of
// Figure 5. Following §4.2, the point is stored only when the prediction
// error max_i |value_i − v̂_i| exceeds ε; the return value reports whether
// the tree changed. A q coinciding with an already-stored vertex updates
// that vertex's value in place (the mapping changed for a re-seen query).
// Accepted inserts are announced to the observer before the tree mutates.
func (t *Tree) Insert(q, value []float64) (bool, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.insertLocked(q, value, t.clock+1)
}

// InsertStamped is Insert with an explicit logical timestamp: the
// accepted vertex is stamped with stamp and the tree clock advances to
// at least stamp. It is the replay path — re-applying a journaled
// (q, value, stamp) record restores exactly the vertex the original
// insert created, including its age. Replay is idempotent: a record
// whose effect is already present leaves the tree's structure unchanged
// (stamps may be refreshed, which replaying cannot make older).
func (t *Tree) InsertStamped(q, value []float64, stamp uint64) (bool, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.insertLocked(q, value, stamp)
}

// InsertBatch stores many (q, value) pairs under one exclusive-lock
// acquisition, applying them in order with identical semantics to
// repeated Insert calls (each accepted insert is announced to the
// observer). It returns the number of pairs that changed the tree; on
// error it stops at the failing pair, with earlier pairs applied.
func (t *Tree) InsertBatch(qs, values [][]float64) (stored int, err error) {
	if len(qs) != len(values) {
		return 0, fmt.Errorf("simplextree: batch has %d points but %d values", len(qs), len(values))
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := range qs {
		changed, err := t.insertLocked(qs[i], values[i], t.clock+1)
		if changed {
			stored++
		}
		if err != nil {
			return stored, fmt.Errorf("simplextree: batch insert %d: %w", i, err)
		}
	}
	return stored, nil
}

// insertLocked implements Insert under the already-held exclusive lock.
// The observer is invoked only once the insert is certain to succeed and
// before any mutation, so a journaling observer achieves write-ahead
// semantics and an observer error leaves the tree unchanged. stamp is
// the logical time the accepted vertex will carry; accepted inserts
// advance the clock to at least stamp (ε-skips and no-ops do not).
func (t *Tree) insertLocked(q, value []float64, stamp uint64) (bool, error) {
	if len(value) != t.oqpDim {
		return false, fmt.Errorf("simplextree: OQP vector has dimension %d, want %d", len(value), t.oqpDim)
	}
	sc := t.scratch.Get().(*scratch)
	defer t.scratch.Put(sc)
	leaf, lam, traversed, err := t.lookup(q, sc)
	t.lastTraversed = traversed
	if err != nil {
		return false, err
	}
	pred := make([]float64, t.oqpDim)
	interpolateInto(pred, leaf, lam)
	if maxAbsDiff(pred, value) <= t.epsilon {
		return false, nil
	}
	// A point (numerically) equal to a vertex cannot split the simplex;
	// update the vertex value instead. Re-asserting the exact stored
	// value is a no-op (not observed, not counted): WAL replay of a
	// record already covered by a snapshot lands here when ε = 0, where
	// interpolation rounding defeats the ε skip above, and must leave
	// the tree untouched for recovery to be idempotent.
	for j, l := range lam {
		if l >= 1-t.tol {
			if vec.Equal(leaf.verts[j].Value, value) {
				return false, nil
			}
			if err := t.notifyObserver(q, value, stamp); err != nil {
				return false, err
			}
			leaf.verts[j].Value = vec.Clone(value)
			t.stampVertex(leaf.verts[j], stamp)
			t.numPoints++
			return true, nil
		}
	}
	// Quota gate: only the split path below creates a vertex, so it alone
	// is subject to the resource bounds. The check precedes the observer
	// (nothing rejected here ever reaches a journal) and the rejection
	// leaves the tree untouched — reads keep serving the existing state.
	if t.maxVerts > 0 && int(t.numVerts)+1 > t.maxVerts {
		return false, fmt.Errorf("%w: %d vertices stored, limit %d", ErrQuotaExceeded, t.numVerts, t.maxVerts)
	}
	if t.maxBytes > 0 && (int64(t.numVerts)+1)*t.perVertexBytes() > t.maxBytes {
		return false, fmt.Errorf("%w: ~%d bytes stored of %d-byte limit", ErrQuotaExceeded, t.sizeBytesLocked(), t.maxBytes)
	}
	newVert := &Vertex{Point: vec.Clone(q), Value: vec.Clone(value), id: t.numVerts}
	var children []*node
	var replaced []int
	for h, l := range lam {
		if l <= t.tol {
			continue // degenerate child: q lies on the facet opposite vertex h
		}
		childVerts := make([]*Vertex, len(leaf.verts))
		copy(childVerts, leaf.verts)
		childVerts[h] = newVert
		children = append(children, &node{verts: childVerts})
		replaced = append(replaced, h)
	}
	if len(children) < 2 {
		// q is effectively a vertex (all mass on one coordinate); the
		// loop above should have caught it, but guard against tolerance
		// corner cases.
		return false, fmt.Errorf("simplextree: split of %v produced %d children", q, len(children))
	}
	if err := t.notifyObserver(q, value, stamp); err != nil {
		return false, err
	}
	// The split's mu must outlive the scratch buffers lam aliases.
	leaf.split = newVert
	leaf.mu = vec.Clone(lam)
	leaf.children = children
	leaf.replaced = replaced
	t.stampVertex(newVert, stamp)
	t.numVerts++
	t.numPoints++
	t.numLeaves += len(children) - 1
	return true, nil
}

// stampVertex records an accepted insert's logical time on its vertex
// and advances the clock to cover it. Replaying an old record (stamp ≤
// clock) never rewinds the clock, and a vertex's stamp never moves
// backwards, so replay after a partial snapshot stays idempotent.
func (t *Tree) stampVertex(v *Vertex, stamp uint64) {
	if stamp > v.stamp.Load() {
		v.stamp.Store(stamp)
	}
	if stamp > t.clock {
		t.clock = stamp
	}
}

func (t *Tree) notifyObserver(q, value []float64, stamp uint64) error {
	if t.observer == nil {
		return nil
	}
	if err := t.observer(q, value, stamp); err != nil {
		return fmt.Errorf("simplextree: insert observer: %w", err)
	}
	return nil
}

// Walk visits every stored vertex exactly once (root corners included),
// in an unspecified order. It is the traversal used by persistence and by
// statistics. Walk is a read operation: concurrent walks are safe, and fn
// must not mutate the vertices.
func (t *Tree) Walk(fn func(v *Vertex)) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	t.walkLocked(fn)
}

// walkLocked visits each distinct vertex once under an already-held lock.
// Visited vertices are marked in a slice keyed by the creation-order
// vertex id — one allocation per walk instead of a hash insert per node
// visit.
func (t *Tree) walkLocked(fn func(v *Vertex)) {
	seen := make([]bool, t.numVerts)
	var rec func(n *node)
	rec = func(n *node) {
		for _, v := range n.verts {
			if !seen[v.id] {
				seen[v.id] = true
				fn(v)
			}
		}
		for _, c := range n.children {
			rec(c)
		}
	}
	rec(t.root)
}

// Stats summarizes the tree shape.
type Stats struct {
	Dim, OQPDim      int
	Points           int // stored query points
	Leaves           int
	Depth            int
	Nodes            int
	AvgLeafDepth     float64
	DistinctVertices int
}

// Stats computes shape statistics in one traversal.
func (t *Tree) Stats() Stats {
	t.mu.RLock()
	defer t.mu.RUnlock()
	s := Stats{Dim: t.dim, OQPDim: t.oqpDim, Points: t.numPoints, Leaves: t.numLeaves}
	var sumLeafDepth, leaves int
	seen := make([]bool, t.numVerts)
	var rec func(n *node, depth int)
	rec = func(n *node, depth int) {
		s.Nodes++
		if depth > s.Depth {
			s.Depth = depth
		}
		for _, v := range n.verts {
			if !seen[v.id] {
				seen[v.id] = true
				s.DistinctVertices++
			}
		}
		if n.leaf() {
			leaves++
			sumLeafDepth += depth
			return
		}
		for _, c := range n.children {
			rec(c, depth+1)
		}
	}
	rec(t.root, 1)
	if leaves > 0 {
		s.AvgLeafDepth = float64(sumLeafDepth) / float64(leaves)
	}
	return s
}

func maxAbsDiff(a, b []float64) float64 {
	var m float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

// PredictNaive is the reference implementation of Predict that re-solves
// the full (D+1)×(D+1) barycentric system at every node instead of using
// the incremental O(D) update. It exists for the ablation benchmark and
// for cross-checking the fast path in tests. Like Predict it is pure and
// runs under the read lock.
func (t *Tree) PredictNaive(q []float64) ([]float64, error) {
	if len(q) != t.dim {
		return nil, fmt.Errorf("simplextree: query has dimension %d, want %d", len(q), t.dim)
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := t.root
	s, err := t.simplexOf(n)
	if err != nil {
		return nil, err
	}
	lam, err := s.Barycentric(q)
	if err != nil {
		return nil, err
	}
	if !geom.AllNonNegative(lam, t.tol) {
		return nil, ErrOutOfDomain
	}
	for !n.leaf() {
		next, nextLam := t.descendSolve(n, q)
		if next == nil {
			return nil, fmt.Errorf("simplextree: no child contains point %v: %w", q, ErrOutOfDomain)
		}
		n, lam = next, nextLam
	}
	out := make([]float64, t.oqpDim)
	interpolateInto(out, n, lam)
	return out, nil
}
