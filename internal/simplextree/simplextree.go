// Package simplextree implements the Simplex Tree of §4 — the wavelet-
// based data structure at the core of FeedbackBypass. It organizes the
// query domain Q ⊆ R^D as an incremental triangulation: every node is a
// simplex of D+1 vertices; inserting a query point splits its enclosing
// leaf into up to D+1 children around the point; every stored vertex
// carries its N-dimensional vector of optimal query parameters (OQPs).
//
// Prediction evaluates the unbalanced Haar wavelet the triangulation
// defines: a linear interpolation of the vertex OQPs of the enclosing
// simplex at the query's barycentric coordinates, which is algebraically
// the determinant equation of §4.2 (tests verify the equivalence).
// Insertion is ε-thresholded: a point whose actual OQPs are already
// predicted within ε is not stored, so resource usage tracks the intrinsic
// complexity of the optimal query mapping, not the number of queries.
//
// Lookups descend with an O(D)-per-child incremental barycentric update
// (geom.ChildBarycentric) instead of a fresh O(D³) solve per node; see
// DESIGN.md ("Incremental barycentric descent").
package simplextree

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"repro/internal/geom"
	"repro/internal/vec"
)

// ErrOutOfDomain is returned for query points outside the root simplex.
var ErrOutOfDomain = errors.New("simplextree: query point outside the root simplex")

// Vertex is a stored query point with its OQP vector. Vertices are shared
// by every simplex they delimit, so updating a vertex's value is visible
// tree-wide.
type Vertex struct {
	Point []float64
	Value []float64
}

type node struct {
	verts    []*Vertex // D+1 vertices spanning this simplex
	split    *Vertex   // the point this node was split at (inner nodes)
	mu       []float64 // barycentric coordinates of split.Point w.r.t. verts
	children []*node   // one per non-degenerate child
	replaced []int     // children[i] replaces vertex replaced[i] with split
}

func (n *node) leaf() bool { return len(n.children) == 0 }

// Tree is a Simplex Tree mapping points of a D-dimensional query domain to
// N-dimensional OQP vectors. It is safe for concurrent use.
type Tree struct {
	mu sync.RWMutex

	dim     int     // D
	oqpDim  int     // N
	epsilon float64 // insert threshold ε of §4.2
	tol     float64 // geometric tolerance

	root      *node
	numPoints int // stored (split or updated) query points
	numLeaves int

	lastTraversed int // simplices visited by the most recent operation
}

// Options configures a Tree.
type Options struct {
	// Epsilon is the insert threshold ε: a new point is stored only when
	// max_i |m_i(q) − v̂_i| > ε. Zero stores every point with a prediction
	// mismatch; larger values trade accuracy for storage (§4.2).
	Epsilon float64
	// Tol is the geometric tolerance for containment and degeneracy
	// decisions; geom.DefaultTol when zero.
	Tol float64
}

// New builds a Simplex Tree over the given root domain simplex. Every
// corner of the domain is seeded with defaultOQP, so an empty tree
// predicts exactly the default parameters everywhere (the paper's limit
// case in which nothing is ever stored).
func New(domain *geom.Simplex, defaultOQP []float64, opts Options) (*Tree, error) {
	if domain == nil {
		return nil, errors.New("simplextree: nil domain")
	}
	if len(defaultOQP) == 0 {
		return nil, errors.New("simplextree: empty default OQP vector")
	}
	if opts.Epsilon < 0 {
		return nil, fmt.Errorf("simplextree: negative epsilon %v", opts.Epsilon)
	}
	if opts.Tol == 0 {
		opts.Tol = geom.DefaultTol
	}
	if opts.Tol < 0 {
		return nil, fmt.Errorf("simplextree: negative tolerance %v", opts.Tol)
	}
	// Degeneracy check: the barycentric system must be solvable. (A volume
	// threshold would wrongly reject high-dimensional domains, whose volume
	// 1/D! underflows any fixed tolerance.)
	if _, err := domain.Barycentric(domain.Centroid()); err != nil {
		return nil, fmt.Errorf("simplextree: domain is degenerate: %w", err)
	}
	d := domain.Dim()
	verts := make([]*Vertex, d+1)
	for i := range verts {
		verts[i] = &Vertex{
			Point: vec.Clone(domain.Vertex(i)),
			Value: vec.Clone(defaultOQP),
		}
	}
	return &Tree{
		dim:       d,
		oqpDim:    len(defaultOQP),
		epsilon:   opts.Epsilon,
		tol:       opts.Tol,
		root:      &node{verts: verts},
		numLeaves: 1,
	}, nil
}

// Dim returns the query-domain dimensionality D.
func (t *Tree) Dim() int { return t.dim }

// OQPDim returns the stored vector dimensionality N.
func (t *Tree) OQPDim() int { return t.oqpDim }

// Epsilon returns the insert threshold.
func (t *Tree) Epsilon() float64 { return t.epsilon }

// NumPoints returns the number of query points stored (inserted splits
// plus vertex-value updates of re-seen points).
func (t *Tree) NumPoints() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.numPoints
}

// NumLeaves returns the number of leaf simplices.
func (t *Tree) NumLeaves() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.numLeaves
}

// LastTraversed reports the number of simplices visited by the most recent
// Predict/Insert — the "no. of simplices traversed" series of Figure 16.
func (t *Tree) LastTraversed() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.lastTraversed
}

// Depth returns the maximum node depth (1 = root only) — the "Depth of
// Simplex Tree" series of Figure 16.
func (t *Tree) Depth() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return maxDepth(t.root)
}

func maxDepth(n *node) int {
	if n == nil {
		return 0
	}
	best := 0
	for _, c := range n.children {
		if d := maxDepth(c); d > best {
			best = d
		}
	}
	return 1 + best
}

// lookup descends to the leaf containing q, maintaining barycentric
// coordinates incrementally. It returns the leaf, the coordinates of q
// with respect to it, and the number of simplices traversed.
func (t *Tree) lookup(q []float64) (*node, []float64, int, error) {
	if len(q) != t.dim {
		return nil, nil, 0, fmt.Errorf("simplextree: query has dimension %d, want %d", len(q), t.dim)
	}
	rootSimplex, err := t.simplexOf(t.root)
	if err != nil {
		return nil, nil, 0, err
	}
	lam, err := rootSimplex.Barycentric(q)
	if err != nil {
		return nil, nil, 0, err
	}
	if !geom.AllNonNegative(lam, t.tol) {
		return nil, nil, 0, ErrOutOfDomain
	}
	n := t.root
	traversed := 1
	for !n.leaf() {
		next, nextLam := t.descendOnce(n, lam)
		if next == nil {
			// Numerically ambiguous boundary point: no child accepted it.
			// Resolve by a fresh solve against each child (robust path).
			next, nextLam = t.descendSolve(n, q)
			if next == nil {
				return nil, nil, traversed, fmt.Errorf("simplextree: no child contains point %v (numerical boundary)", q)
			}
		}
		n, lam = next, nextLam
		traversed++
	}
	return n, lam, traversed, nil
}

// descendOnce picks the child containing the point with coordinates lam
// using the O(D)-per-child incremental update. Among children accepting
// the point (boundary points may be accepted by several), the one whose
// minimum coordinate is largest is chosen, which is stable under rounding.
func (t *Tree) descendOnce(n *node, lam []float64) (*node, []float64) {
	var best *node
	var bestLam []float64
	bestMin := math.Inf(-1)
	for i, c := range n.children {
		nu, ok := geom.ChildBarycentric(lam, n.mu, n.replaced[i], t.tol)
		if !ok {
			continue
		}
		min := math.Inf(1)
		for _, x := range nu {
			if x < min {
				min = x
			}
		}
		if min >= -t.tol && min > bestMin {
			best, bestLam, bestMin = c, nu, min
		}
	}
	return best, bestLam
}

// descendSolve is the slow fallback: solve the barycentric system directly
// for each child.
func (t *Tree) descendSolve(n *node, q []float64) (*node, []float64) {
	var best *node
	var bestLam []float64
	bestMin := math.Inf(-1)
	for _, c := range n.children {
		s, err := t.simplexOf(c)
		if err != nil {
			continue
		}
		nu, err := s.Barycentric(q)
		if err != nil {
			continue
		}
		min := math.Inf(1)
		for _, x := range nu {
			if x < min {
				min = x
			}
		}
		if min >= -10*t.tol && min > bestMin {
			best, bestLam, bestMin = c, nu, min
		}
	}
	return best, bestLam
}

func (t *Tree) simplexOf(n *node) (*geom.Simplex, error) {
	pts := make([][]float64, len(n.verts))
	for i, v := range n.verts {
		pts[i] = v.Point
	}
	return geom.NewSimplex(pts)
}

// interpolate evaluates the piecewise-linear wavelet at barycentric
// coordinates lam over the leaf's vertices: v̂ = Σ_j λ_j · Value(s_j).
func interpolate(n *node, lam []float64, oqpDim int) []float64 {
	out := make([]float64, oqpDim)
	for j, v := range n.verts {
		vec.Axpy(out, lam[j], v.Value)
	}
	return out
}

// Predict returns the interpolated OQP vector for q — the Mopt method of
// Figure 5. An empty tree returns the default OQPs everywhere inside the
// domain.
func (t *Tree) Predict(q []float64) ([]float64, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	leaf, lam, traversed, err := t.lookup(q)
	t.lastTraversed = traversed
	if err != nil {
		return nil, err
	}
	return interpolate(leaf, lam, t.oqpDim), nil
}

// Insert stores the OQP vector observed for q — the Insert method of
// Figure 5. Following §4.2, the point is stored only when the prediction
// error max_i |value_i − v̂_i| exceeds ε; the return value reports whether
// the tree changed. A q coinciding with an already-stored vertex updates
// that vertex's value in place (the mapping changed for a re-seen query).
func (t *Tree) Insert(q, value []float64) (bool, error) {
	if len(value) != t.oqpDim {
		return false, fmt.Errorf("simplextree: OQP vector has dimension %d, want %d", len(value), t.oqpDim)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	leaf, lam, traversed, err := t.lookup(q)
	t.lastTraversed = traversed
	if err != nil {
		return false, err
	}
	pred := interpolate(leaf, lam, t.oqpDim)
	if maxAbsDiff(pred, value) <= t.epsilon {
		return false, nil
	}
	// A point (numerically) equal to a vertex cannot split the simplex;
	// update the vertex value instead.
	for j, l := range lam {
		if l >= 1-t.tol {
			leaf.verts[j].Value = vec.Clone(value)
			t.numPoints++
			return true, nil
		}
	}
	newVert := &Vertex{Point: vec.Clone(q), Value: vec.Clone(value)}
	var children []*node
	var replaced []int
	for h, l := range lam {
		if l <= t.tol {
			continue // degenerate child: q lies on the facet opposite vertex h
		}
		childVerts := make([]*Vertex, len(leaf.verts))
		copy(childVerts, leaf.verts)
		childVerts[h] = newVert
		children = append(children, &node{verts: childVerts})
		replaced = append(replaced, h)
	}
	if len(children) < 2 {
		// q is effectively a vertex (all mass on one coordinate); the
		// loop above should have caught it, but guard against tolerance
		// corner cases.
		return false, fmt.Errorf("simplextree: split of %v produced %d children", q, len(children))
	}
	leaf.split = newVert
	leaf.mu = lam
	leaf.children = children
	leaf.replaced = replaced
	t.numPoints++
	t.numLeaves += len(children) - 1
	return true, nil
}

// Walk visits every stored vertex exactly once (root corners included),
// in an unspecified order. It is the traversal used by persistence and by
// statistics.
func (t *Tree) Walk(fn func(v *Vertex)) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	seen := make(map[*Vertex]bool)
	var rec func(n *node)
	rec = func(n *node) {
		for _, v := range n.verts {
			if !seen[v] {
				seen[v] = true
				fn(v)
			}
		}
		for _, c := range n.children {
			rec(c)
		}
	}
	rec(t.root)
}

// Stats summarizes the tree shape.
type Stats struct {
	Dim, OQPDim      int
	Points           int // stored query points
	Leaves           int
	Depth            int
	Nodes            int
	AvgLeafDepth     float64
	DistinctVertices int
}

// Stats computes shape statistics in one traversal.
func (t *Tree) Stats() Stats {
	t.mu.RLock()
	defer t.mu.RUnlock()
	s := Stats{Dim: t.dim, OQPDim: t.oqpDim, Points: t.numPoints, Leaves: t.numLeaves}
	var sumLeafDepth, leaves int
	seen := make(map[*Vertex]bool)
	var rec func(n *node, depth int)
	rec = func(n *node, depth int) {
		s.Nodes++
		if depth > s.Depth {
			s.Depth = depth
		}
		for _, v := range n.verts {
			if !seen[v] {
				seen[v] = true
			}
		}
		if n.leaf() {
			leaves++
			sumLeafDepth += depth
			return
		}
		for _, c := range n.children {
			rec(c, depth+1)
		}
	}
	rec(t.root, 1)
	if leaves > 0 {
		s.AvgLeafDepth = float64(sumLeafDepth) / float64(leaves)
	}
	s.DistinctVertices = len(seen)
	return s
}

func maxAbsDiff(a, b []float64) float64 {
	var m float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

// PredictNaive is the reference implementation of Predict that re-solves
// the full (D+1)×(D+1) barycentric system at every node instead of using
// the incremental O(D) update. It exists for the ablation benchmark and
// for cross-checking the fast path in tests.
func (t *Tree) PredictNaive(q []float64) ([]float64, error) {
	if len(q) != t.dim {
		return nil, fmt.Errorf("simplextree: query has dimension %d, want %d", len(q), t.dim)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.root
	s, err := t.simplexOf(n)
	if err != nil {
		return nil, err
	}
	lam, err := s.Barycentric(q)
	if err != nil {
		return nil, err
	}
	if !geom.AllNonNegative(lam, t.tol) {
		return nil, ErrOutOfDomain
	}
	traversed := 1
	for !n.leaf() {
		next, nextLam := t.descendSolve(n, q)
		if next == nil {
			return nil, fmt.Errorf("simplextree: no child contains point %v", q)
		}
		n, lam = next, nextLam
		traversed++
	}
	t.lastTraversed = traversed
	return interpolate(n, lam, t.oqpDim), nil
}
