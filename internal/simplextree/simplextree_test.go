package simplextree

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/vec"
)

func newTestTree(t *testing.T, d int, oqp []float64, eps float64) *Tree {
	t.Helper()
	tr, err := New(geom.StandardSimplex(d), oqp, Options{Epsilon: eps})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// randomInterior returns a strictly interior point of the standard simplex.
func randomInterior(rng *rand.Rand, d int) []float64 {
	w := make([]float64, d+1)
	var sum float64
	for i := range w {
		w[i] = 0.05 + rng.Float64()
		sum += w[i]
	}
	q := make([]float64, d)
	for i := 0; i < d; i++ {
		q[i] = w[i+1] / sum
	}
	return q
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, []float64{1}, Options{}); err == nil {
		t.Error("nil domain should error")
	}
	if _, err := New(geom.StandardSimplex(2), nil, Options{}); err == nil {
		t.Error("empty OQP should error")
	}
	if _, err := New(geom.StandardSimplex(2), []float64{1}, Options{Epsilon: -1}); err == nil {
		t.Error("negative epsilon should error")
	}
	if _, err := New(geom.StandardSimplex(2), []float64{1}, Options{Tol: -1}); err == nil {
		t.Error("negative tol should error")
	}
	degenerate, _ := geom.NewSimplex([][]float64{{0, 0}, {1, 1}, {2, 2}})
	if _, err := New(degenerate, []float64{1}, Options{}); err == nil {
		t.Error("degenerate domain should error")
	}
}

func TestEmptyTreePredictsDefault(t *testing.T) {
	def := []float64{0.5, -1, 2}
	tr := newTestTree(t, 3, def, 0)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		q := randomInterior(rng, 3)
		got, err := tr.Predict(q)
		if err != nil {
			t.Fatal(err)
		}
		if !vec.EqualTol(got, def, 1e-9) {
			t.Fatalf("empty tree predicted %v, want default %v", got, def)
		}
	}
	if tr.NumPoints() != 0 || tr.NumLeaves() != 1 || tr.Depth() != 1 {
		t.Errorf("empty tree shape: points=%d leaves=%d depth=%d", tr.NumPoints(), tr.NumLeaves(), tr.Depth())
	}
}

func TestPredictOutOfDomain(t *testing.T) {
	tr := newTestTree(t, 2, []float64{0}, 0)
	if _, err := tr.Predict([]float64{0.9, 0.9}); !errors.Is(err, ErrOutOfDomain) {
		t.Errorf("err = %v", err)
	}
	if _, err := tr.Predict([]float64{0.1}); err == nil {
		t.Error("dimension mismatch should error")
	}
}

func TestInsertThenPredictExact(t *testing.T) {
	tr := newTestTree(t, 2, []float64{0, 0}, 0)
	q := []float64{0.3, 0.3}
	val := []float64{1.5, -2}
	changed, err := tr.Insert(q, val)
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Fatal("insert should have stored the point")
	}
	got, err := tr.Predict(q)
	if err != nil {
		t.Fatal(err)
	}
	if !vec.EqualTol(got, val, 1e-9) {
		t.Errorf("prediction at stored point = %v, want %v", got, val)
	}
	if tr.NumPoints() != 1 {
		t.Errorf("NumPoints = %d", tr.NumPoints())
	}
	if tr.NumLeaves() != 3 {
		t.Errorf("NumLeaves = %d, want 3 (interior split in 2D)", tr.NumLeaves())
	}
	if tr.Depth() != 2 {
		t.Errorf("Depth = %d", tr.Depth())
	}
}

func TestInsertDimensionMismatch(t *testing.T) {
	tr := newTestTree(t, 2, []float64{0}, 0)
	if _, err := tr.Insert([]float64{0.3, 0.3}, []float64{1, 2}); err == nil {
		t.Error("OQP dimension mismatch should error")
	}
	if _, err := tr.Insert([]float64{0.3}, []float64{1}); err == nil {
		t.Error("query dimension mismatch should error")
	}
	if _, err := tr.Insert([]float64{0.9, 0.9}, []float64{1}); !errors.Is(err, ErrOutOfDomain) {
		t.Error("out of domain insert should error")
	}
}

func TestEpsilonSuppressesRedundantInserts(t *testing.T) {
	tr := newTestTree(t, 2, []float64{0}, 0.5)
	// Value within ε of the default prediction: not stored.
	changed, err := tr.Insert([]float64{0.2, 0.2}, []float64{0.4})
	if err != nil {
		t.Fatal(err)
	}
	if changed {
		t.Error("insert within epsilon should be suppressed")
	}
	if tr.NumPoints() != 0 {
		t.Errorf("NumPoints = %d", tr.NumPoints())
	}
	// Value beyond ε: stored.
	changed, err = tr.Insert([]float64{0.2, 0.2}, []float64{0.9})
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Error("insert beyond epsilon should be stored")
	}
}

func TestInsertAtVertexUpdatesValue(t *testing.T) {
	tr := newTestTree(t, 2, []float64{0}, 0)
	q := []float64{0.25, 0.25}
	if _, err := tr.Insert(q, []float64{1}); err != nil {
		t.Fatal(err)
	}
	leavesBefore := tr.NumLeaves()
	// Re-inserting the same point with a new value must update, not split.
	changed, err := tr.Insert(q, []float64{2})
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Error("vertex update should report change")
	}
	if tr.NumLeaves() != leavesBefore {
		t.Errorf("vertex update changed leaf count: %d -> %d", leavesBefore, tr.NumLeaves())
	}
	got, err := tr.Predict(q)
	if err != nil {
		t.Fatal(err)
	}
	if !vec.EqualTol(got, []float64{2}, 1e-9) {
		t.Errorf("updated prediction = %v", got)
	}
	// And re-inserting the same value is suppressed by epsilon=0 exact match.
	changed, err = tr.Insert(q, []float64{2})
	if err != nil {
		t.Fatal(err)
	}
	if changed {
		t.Error("identical re-insert should be suppressed")
	}
}

func TestPredictionIsExactAtAllStoredPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := 4
	tr := newTestTree(t, d, vec.Zeros(6), 0)
	type stored struct{ q, v []float64 }
	var pts []stored
	for i := 0; i < 40; i++ {
		q := randomInterior(rng, d)
		v := make([]float64, 6)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		changed, err := tr.Insert(q, v)
		if err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		if changed {
			pts = append(pts, stored{q, v})
		}
	}
	for i, p := range pts {
		got, err := tr.Predict(p.q)
		if err != nil {
			t.Fatalf("predict %d: %v", i, err)
		}
		if !vec.EqualTol(got, p.v, 1e-7) {
			t.Fatalf("stored point %d: predicted %v, want %v", i, got, p.v)
		}
	}
}

func TestPredictMatchesNaiveDescent(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := 3
	tr := newTestTree(t, d, vec.Zeros(2), 0)
	for i := 0; i < 30; i++ {
		q := randomInterior(rng, d)
		v := []float64{rng.NormFloat64(), rng.NormFloat64()}
		if _, err := tr.Insert(q, v); err != nil {
			t.Fatal(err)
		}
	}
	for trial := 0; trial < 50; trial++ {
		q := randomInterior(rng, d)
		fast, err := tr.Predict(q)
		if err != nil {
			t.Fatal(err)
		}
		naive, err := tr.PredictNaive(q)
		if err != nil {
			t.Fatal(err)
		}
		if !vec.EqualTol(fast, naive, 1e-6) {
			t.Fatalf("trial %d: fast %v vs naive %v", trial, fast, naive)
		}
	}
}

// detInterpolate solves the determinant equation of §4.2 directly for a
// single OQP component: the matrix is linear in v̂, so the root of
// det(M(v̂)) = 0 is found from evaluations at v̂ = 0 and v̂ = 1.
func detInterpolate(s *geom.Simplex, vals []float64, q []float64) float64 {
	d := s.Dim()
	build := func(vhat float64) *vec.Matrix {
		m := vec.NewMatrix(d+1, d+1)
		for j := 0; j < d; j++ {
			m.Set(0, j, q[j]-s.Vertex(0)[j])
		}
		m.Set(0, d, vhat-vals[0])
		for r := 1; r <= d; r++ {
			for j := 0; j < d; j++ {
				m.Set(r, j, s.Vertex(r)[j]-s.Vertex(0)[j])
			}
			m.Set(r, d, vals[r]-vals[0])
		}
		return m
	}
	d0 := vec.Det(build(0))
	d1 := vec.Det(build(1))
	return -d0 / (d1 - d0)
}

func TestInterpolationEqualsDeterminantFormulation(t *testing.T) {
	// The paper defines interpolation via a vanishing determinant; our
	// barycentric evaluation must agree with it.
	rng := rand.New(rand.NewSource(4))
	for _, d := range []int{2, 3, 5} {
		s := geom.StandardSimplex(d)
		vals := make([]float64, d+1)
		for i := range vals {
			vals[i] = rng.NormFloat64()
		}
		for trial := 0; trial < 10; trial++ {
			q := randomInterior(rng, d)
			lam, err := s.Barycentric(q)
			if err != nil {
				t.Fatal(err)
			}
			var bary float64
			for j, l := range lam {
				bary += l * vals[j]
			}
			det := detInterpolate(s, vals, q)
			if math.Abs(bary-det) > 1e-8 {
				t.Fatalf("d=%d: barycentric %v vs determinant %v", d, bary, det)
			}
		}
	}
}

func TestPredictionIsContinuousAcrossSplits(t *testing.T) {
	// Linear interpolation over a triangulation is continuous: predictions
	// at points on shared facets must agree no matter which child claims
	// them. Probe near the split point where three children meet.
	tr := newTestTree(t, 2, []float64{0}, 0)
	if _, err := tr.Insert([]float64{0.3, 0.3}, []float64{3}); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Insert([]float64{0.2, 0.25}, []float64{-1}); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		base := randomInterior(rng, 2)
		jit := 1e-9 * (rng.Float64() - 0.5)
		q1 := []float64{base[0] + jit, base[1]}
		q2 := []float64{base[0] - jit, base[1]}
		p1, err1 := tr.Predict(q1)
		p2, err2 := tr.Predict(q2)
		if err1 != nil || err2 != nil {
			continue // a jitter may step outside the domain near the boundary
		}
		if math.Abs(p1[0]-p2[0]) > 1e-5 {
			t.Fatalf("discontinuity at %v: %v vs %v", base, p1[0], p2[0])
		}
	}
}

func TestLocalityOfInserts(t *testing.T) {
	// Wavelet locality (§3): inserting far from a stored point must not
	// change predictions in the stored point's neighbourhood.
	tr := newTestTree(t, 2, []float64{0}, 0)
	if _, err := tr.Insert([]float64{0.1, 0.1}, []float64{5}); err != nil {
		t.Fatal(err)
	}
	probe := []float64{0.11, 0.1}
	before, err := tr.Predict(probe)
	if err != nil {
		t.Fatal(err)
	}
	// Insert in a different leaf: the probe lives in the child spanned by
	// {(0.1,0.1), (1,0), (0,1)}, while (0.05, 0.3) lies in the child that
	// excludes the (1,0) corner.
	if _, err := tr.Insert([]float64{0.05, 0.3}, []float64{-9}); err != nil {
		t.Fatal(err)
	}
	after, err := tr.Predict(probe)
	if err != nil {
		t.Fatal(err)
	}
	if !vec.EqualTol(before, after, 1e-9) {
		t.Errorf("far insert changed local prediction: %v -> %v", before, after)
	}
}

func TestBoundaryFacetInsert(t *testing.T) {
	// A point on a facet of the domain (one barycentric coordinate zero)
	// must produce a valid split with fewer children.
	tr := newTestTree(t, 2, []float64{0}, 0)
	changed, err := tr.Insert([]float64{0.5, 0}, []float64{1}) // on the edge y=0
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Fatal("facet insert should store")
	}
	if tr.NumLeaves() != 2 {
		t.Errorf("facet split leaves = %d, want 2", tr.NumLeaves())
	}
	got, err := tr.Predict([]float64{0.5, 0})
	if err != nil {
		t.Fatal(err)
	}
	if !vec.EqualTol(got, []float64{1}, 1e-9) {
		t.Errorf("prediction at facet point = %v", got)
	}
	// Interior predictions still work on both sides.
	for _, q := range [][]float64{{0.2, 0.1}, {0.7, 0.1}} {
		if _, err := tr.Predict(q); err != nil {
			t.Errorf("predict %v: %v", q, err)
		}
	}
}

func TestHighDimensionalTreeD31(t *testing.T) {
	// The paper's operating point: D=31, N=62.
	rng := rand.New(rand.NewSource(6))
	d := 31
	def := vec.Zeros(62)
	for i := 31; i < 62; i++ {
		def[i] = 1 // default weights
	}
	tr := newTestTree(t, d, def, 0)
	var insertedQ [][]float64
	var insertedV [][]float64
	for i := 0; i < 20; i++ {
		q := randomInterior(rng, d)
		v := make([]float64, 62)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		changed, err := tr.Insert(q, v)
		if err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		if changed {
			insertedQ = append(insertedQ, q)
			insertedV = append(insertedV, v)
		}
	}
	for i := range insertedQ {
		got, err := tr.Predict(insertedQ[i])
		if err != nil {
			t.Fatal(err)
		}
		if !vec.EqualTol(got, insertedV[i], 1e-6) {
			t.Fatalf("stored point %d mispredicted", i)
		}
	}
	st := tr.Stats()
	if st.Dim != 31 || st.OQPDim != 62 {
		t.Errorf("stats dims: %+v", st)
	}
	if st.Points != len(insertedQ) {
		t.Errorf("stats points = %d, want %d", st.Points, len(insertedQ))
	}
}

func TestStatsAndWalk(t *testing.T) {
	tr := newTestTree(t, 2, []float64{0}, 0)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 10; i++ {
		if _, err := tr.Insert(randomInterior(rng, 2), []float64{rng.NormFloat64()}); err != nil {
			t.Fatal(err)
		}
	}
	st := tr.Stats()
	if st.Leaves != tr.NumLeaves() {
		t.Errorf("stats leaves %d vs %d", st.Leaves, tr.NumLeaves())
	}
	if st.Depth != tr.Depth() {
		t.Errorf("stats depth %d vs %d", st.Depth, tr.Depth())
	}
	if st.AvgLeafDepth > float64(st.Depth) || st.AvgLeafDepth < 1 {
		t.Errorf("avg leaf depth %v out of range", st.AvgLeafDepth)
	}
	// Distinct vertices: 3 root corners + stored points.
	if st.DistinctVertices != 3+st.Points {
		t.Errorf("distinct vertices = %d, want %d", st.DistinctVertices, 3+st.Points)
	}
	count := 0
	tr.Walk(func(v *Vertex) { count++ })
	if count != st.DistinctVertices {
		t.Errorf("walk visited %d, want %d", count, st.DistinctVertices)
	}
}

func TestTraversedStatsGrowWithDepth(t *testing.T) {
	tr := newTestTree(t, 2, []float64{0}, 0)
	q := []float64{0.31, 0.32}
	dst := make([]float64, 1)
	st, err := tr.PredictInto(dst, q)
	if err != nil {
		t.Fatal(err)
	}
	if st.Traversed != 1 {
		t.Errorf("empty tree traversal = %d", st.Traversed)
	}
	// Insert nested points around q to deepen its leaf.
	pts := [][]float64{{0.3, 0.3}, {0.305, 0.31}, {0.308, 0.315}}
	for _, p := range pts {
		if _, err := tr.Insert(p, []float64{1}); err != nil {
			t.Fatal(err)
		}
	}
	// The write path still records its own traversal for the deprecated
	// accessor.
	if tr.LastTraversed() < 1 {
		t.Errorf("insert traversal = %d, want ≥ 1", tr.LastTraversed())
	}
	st, err = tr.PredictInto(dst, q)
	if err != nil {
		t.Fatal(err)
	}
	if st.Traversed < 3 {
		t.Errorf("deep traversal = %d, want ≥ 3", st.Traversed)
	}
	if st.Traversed > tr.Depth() {
		t.Errorf("traversed %d exceeds depth %d", st.Traversed, tr.Depth())
	}
	// The batch path reports the same per-query stats.
	out, stats, err := tr.PredictBatch([][]float64{q})
	if err != nil {
		t.Fatal(err)
	}
	if stats[0] != st {
		t.Errorf("batch stats = %+v, want %+v", stats[0], st)
	}
	if out[0][0] != dst[0] {
		t.Errorf("batch prediction %v differs from PredictInto %v", out[0], dst)
	}
}

func TestConcurrentPredict(t *testing.T) {
	tr := newTestTree(t, 3, []float64{0}, 0)
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 20; i++ {
		if _, err := tr.Insert(randomInterior(rng, 3), []float64{rng.NormFloat64()}); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(seed int64) {
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 100; i++ {
				if _, err := tr.Predict(randomInterior(r, 3)); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(int64(g))
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestAccessors(t *testing.T) {
	tr := newTestTree(t, 5, vec.Zeros(7), 0.25)
	if tr.Dim() != 5 || tr.OQPDim() != 7 || tr.Epsilon() != 0.25 {
		t.Errorf("accessors: %d %d %v", tr.Dim(), tr.OQPDim(), tr.Epsilon())
	}
}

func TestManyInsertsPartitionInvariant(t *testing.T) {
	// After many inserts, every interior point must still land in exactly
	// one leaf and predictions must be finite.
	rng := rand.New(rand.NewSource(9))
	tr := newTestTree(t, 3, []float64{0, 0}, 0)
	for i := 0; i < 120; i++ {
		v := []float64{rng.NormFloat64(), rng.NormFloat64()}
		if _, err := tr.Insert(randomInterior(rng, 3), v); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	for trial := 0; trial < 300; trial++ {
		q := randomInterior(rng, 3)
		got, err := tr.Predict(q)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !vec.IsFinite(got) {
			t.Fatalf("trial %d: non-finite prediction %v", trial, got)
		}
	}
}
