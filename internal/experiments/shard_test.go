package experiments

import "testing"

// TestRunShardSmall runs the sharded-plane sweep at toy scale and checks
// the structural invariants: every level populated, the insert stream
// spread across shards when S > 1, and cache retention behaving like the
// design says — all-or-nothing at S = 1, partial survival at S > 1.
func TestRunShardSmall(t *testing.T) {
	cfg := ShardConfig{
		Seed:        3,
		Scale:       0.03,
		K:           5,
		Epsilon:     0.05,
		Sessions:    12,
		ShardCounts: []int{1, 4},
		InsertOps:   64,
		Writers:     4,
		Clients:     2,
	}
	res, err := RunShard(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Collection == 0 || res.Dim == 0 {
		t.Fatalf("empty meta: %+v", res)
	}
	if len(res.Levels) != 2 {
		t.Fatalf("got %d levels, want 2", len(res.Levels))
	}
	for _, lvl := range res.Levels {
		if lvl.InsertsPerSec <= 0 {
			t.Errorf("S=%d: non-positive insert throughput", lvl.Shards)
		}
		if lvl.Train.Sessions != cfg.Sessions || lvl.Bypass.Sessions != 2*cfg.Sessions {
			t.Errorf("S=%d: phase sessions %d/%d", lvl.Shards, lvl.Train.Sessions, lvl.Bypass.Sessions)
		}
		if lvl.CacheEntriesBefore == 0 {
			t.Errorf("S=%d: cache never warmed", lvl.Shards)
		}
		if lvl.CacheRetention < 0 || lvl.CacheRetention > 1 {
			t.Errorf("S=%d: retention %v outside [0,1]", lvl.Shards, lvl.CacheRetention)
		}
	}
	s1, s4 := res.Levels[0], res.Levels[1]
	if s1.ShardsTouched != 1 {
		t.Errorf("S=1 touched %d shards", s1.ShardsTouched)
	}
	if s4.ShardsTouched < 2 {
		t.Errorf("S=4 insert stream touched %d shards, want ≥ 2", s4.ShardsTouched)
	}
	// S=1 is the pre-sharding all-or-nothing mode: one insert empties the
	// cache (up to the inserting session's own entry being re-added and
	// then dropped with its shard — retention must be ~0).
	if s1.CacheRetention > 0.2 {
		t.Errorf("S=1 retention %v, want ~0 (all-or-nothing invalidation)", s1.CacheRetention)
	}
	if s4.CacheRetention <= s1.CacheRetention {
		t.Errorf("S=4 retention %v not above S=1 retention %v", s4.CacheRetention, s1.CacheRetention)
	}
}

// TestRunShardValidation covers the config guards.
func TestRunShardValidation(t *testing.T) {
	bad := []ShardConfig{
		{},
		{Scale: 0.03, K: 5, Sessions: 4, InsertOps: 8, Writers: 2, Clients: 1, ShardCounts: []int{0}},
		{Scale: 0.03, K: 0, Sessions: 4, InsertOps: 8, Writers: 2, Clients: 1},
	}
	for i, cfg := range bad {
		if _, err := RunShard(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}
