package experiments

import (
	"testing"

	"repro/internal/eval"
)

// sharedSession runs one small session for the whole test file (building
// the dataset and replaying feedback loops is the expensive part).
var sharedSession *Session

func getSession(t *testing.T) *Session {
	t.Helper()
	if sharedSession != nil {
		return sharedSession
	}
	cfg := TestConfig()
	cfg.NumQueries = 80
	s, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	sharedSession = s
	return s
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Scale: 0, NumQueries: 1, K: 1},
		{Scale: 1, NumQueries: 0, K: 1},
		{Scale: 1, NumQueries: 1, K: 0},
		{Scale: 1, NumQueries: 1, K: 1, Epsilon: -1},
	}
	for i, cfg := range bad {
		if _, err := NewSession(cfg); err == nil {
			t.Errorf("config %d should be rejected", i)
		}
	}
}

func TestSessionRecordsComplete(t *testing.T) {
	s := getSession(t)
	if len(s.Records) != s.Config.NumQueries {
		t.Fatalf("records = %d, want %d", len(s.Records), s.Config.NumQueries)
	}
	for i, r := range s.Records {
		if r.Position != i+1 {
			t.Errorf("record %d has position %d", i, r.Position)
		}
		if r.K != s.Config.K || r.Relevant <= 0 {
			t.Errorf("record %d: K=%d relevant=%d", i, r.K, r.Relevant)
		}
		if r.GoodDefault < 0 || r.GoodDefault > r.K {
			t.Errorf("record %d: GoodDefault=%d", i, r.GoodDefault)
		}
		if r.ItersFromDefault < 0 || r.ItersFromPredicted < 0 {
			t.Errorf("record %d: iteration counts %d, %d", i, r.ItersFromDefault, r.ItersFromPredicted)
		}
		if r.Traversed < 1 {
			t.Errorf("record %d: traversed %d", i, r.Traversed)
		}
		if r.TreeDepth < 1 || r.TreeLeaves < 1 {
			t.Errorf("record %d: tree shape depth=%d leaves=%d", i, r.TreeDepth, r.TreeLeaves)
		}
	}
}

// The headline result of the paper: feedback improves over default, and
// FeedbackBypass predictions for new queries close a meaningful part of
// that gap (Figure 10 ordering: AlreadySeen ≥ FeedbackBypass ≥ Default on
// average, with strict improvement for the learned strategies).
func TestScenarioOrdering(t *testing.T) {
	s := getSession(t)
	// Evaluate over the second half of the stream, after the tree has had
	// a chance to learn.
	half := s.Records[len(s.Records)/2:]
	var def, fb, seen float64
	for _, r := range half {
		def += r.PrecisionDefault()
		fb += r.PrecisionBypass()
		seen += r.PrecisionSeen()
	}
	n := float64(len(half))
	def, fb, seen = def/n, fb/n, seen/n
	t.Logf("avg precision: default=%.3f bypass=%.3f alreadySeen=%.3f", def, fb, seen)
	if seen <= def {
		t.Errorf("feedback loop does not improve over default: %.3f vs %.3f", seen, def)
	}
	if fb <= def {
		t.Errorf("FeedbackBypass predictions do not improve over default: %.3f vs %.3f", fb, def)
	}
	if seen < fb {
		t.Errorf("AlreadySeen %.3f below FeedbackBypass %.3f", seen, fb)
	}
}

// Figure 15's premise. At this micro scale the training stream contains no
// repeats, so we assert (a) new-query predictions cost at most marginally
// more cycles than defaults, and (b) replaying an already-trained query
// from its prediction converges at least as fast as from defaults — the
// deterministic core of the savings claim.
func TestSavedCycles(t *testing.T) {
	s := getSession(t)
	half := s.Records[len(s.Records)/2:]
	var saved float64
	for _, r := range half {
		saved += float64(eval.SavedCycles(r.ItersFromDefault, r.ItersFromPredicted))
	}
	saved /= float64(len(half))
	t.Logf("avg saved cycles for new queries (2nd half) = %.2f", saved)
	if saved < -0.75 {
		t.Errorf("predictions cost substantially more cycles: %.2f", saved)
	}
	// Replay trained queries: prediction is (near-)exact.
	replayed, savedTotal := 0, 0
	for _, r := range s.Records[:10] {
		item := s.DS.Items[r.ItemIndex]
		qp, err := s.Codec.QueryPoint(item.Feature)
		if err != nil {
			t.Fatal(err)
		}
		oqp, err := s.Bypass.Predict(qp)
		if err != nil {
			t.Fatal(err)
		}
		qPred, wPred, err := s.Codec.DecodeOQP(item.Feature, oqp)
		if err != nil {
			t.Fatal(err)
		}
		fromPred, err := s.Engine.RunLoop(item.Category, qPred, wPred, s.Config.K)
		if err != nil {
			t.Fatal(err)
		}
		fromDef, err := s.Engine.RunLoop(item.Category, item.Feature, s.Engine.UniformWeights(), s.Config.K)
		if err != nil {
			t.Fatal(err)
		}
		replayed++
		savedTotal += eval.SavedCycles(fromDef.Iterations, fromPred.Iterations)
	}
	t.Logf("replayed %d trained queries, total saved cycles = %d", replayed, savedTotal)
	if savedTotal < 0 {
		t.Errorf("replaying trained queries saved %d cycles, want ≥ 0", savedTotal)
	}
}

func TestTreeGrowthBounded(t *testing.T) {
	s := getSession(t)
	last := s.Records[len(s.Records)-1]
	if last.TreePoints == 0 {
		t.Error("tree learned nothing")
	}
	if last.TreePoints > s.Config.NumQueries {
		t.Errorf("tree stored %d points for %d queries", last.TreePoints, s.Config.NumQueries)
	}
	// Depth must stay far below the stored-point count (logarithmic-ish
	// growth, Figure 16).
	if last.TreeDepth > last.TreePoints/2+2 {
		t.Errorf("depth %d too close to point count %d", last.TreeDepth, last.TreePoints)
	}
}

func TestProcessQueryValidation(t *testing.T) {
	s := getSession(t)
	if _, err := s.ProcessQuery(-1); err == nil {
		t.Error("negative index should error")
	}
	if _, err := s.ProcessQuery(s.DS.Len()); err == nil {
		t.Error("out-of-range index should error")
	}
}

func TestEvaluateAtK(t *testing.T) {
	s := getSession(t)
	qs, err := s.SampleEvalQueries(3)
	if err != nil {
		t.Fatal(err)
	}
	rs := []int{5, 10, 20}
	for _, qi := range qs {
		gd, gb, gs, err := s.EvaluateAtK(qi, rs)
		if err != nil {
			t.Fatal(err)
		}
		if len(gd) != 3 || len(gb) != 3 || len(gs) != 3 {
			t.Fatalf("lengths: %d %d %d", len(gd), len(gb), len(gs))
		}
		// Good counts are monotone in the number of retrieved objects.
		for i := 1; i < 3; i++ {
			if gd[i] < gd[i-1] || gb[i] < gb[i-1] || gs[i] < gs[i-1] {
				t.Errorf("good counts not monotone: %v %v %v", gd, gb, gs)
			}
		}
	}
	if _, _, _, err := s.EvaluateAtK(qs[0], []int{0}); err == nil {
		t.Error("r=0 should error")
	}
}
