package experiments

import "testing"

// TestRunStoreSmoke runs the multi-backend benchmark at toy scale and
// checks its invariants: both backends measured, the serve phases
// completed, and the mmap backend retrieved the same collection (counts
// and inserts are workload-deterministic per backend, so train phases
// must agree across backends — the oracle and query stream are
// identical, only residency differs).
func TestRunStoreSmoke(t *testing.T) {
	cfg := StoreConfig{
		Seed:     3,
		Scale:    0.03,
		K:        5,
		Epsilon:  0.05,
		Sessions: 8,
		// One client keeps the session stream strictly sequential, so the
		// learned-outcome comparison across backends below is exact (with
		// concurrent clients, completion order — and hence ε-rejection —
		// may interleave differently per run).
		Clients:     1,
		ScanQueries: 16,
	}
	res, err := RunStore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Collection == 0 || res.Dim == 0 {
		t.Fatalf("empty collection in result: %+v", res)
	}
	if res.FileBytes <= 4096 {
		t.Errorf("FBMX file suspiciously small: %d bytes", res.FileBytes)
	}
	if len(res.Backends) != 2 || res.Backends[0].Backend != "heap" || res.Backends[1].Backend != "mmap" {
		t.Fatalf("backends: %+v", res.Backends)
	}
	for _, b := range res.Backends {
		if b.ColdScanMicros <= 0 || b.WarmScanMicros <= 0 || b.BatchMicrosPerQuery <= 0 {
			t.Errorf("%s: non-positive scan measurements: %+v", b.Backend, b)
		}
		if b.Train.Sessions != cfg.Sessions || b.Bypass.Sessions != 2*cfg.Sessions {
			t.Errorf("%s: phase session counts %d/%d", b.Backend, b.Train.Sessions, b.Bypass.Sessions)
		}
		if b.Train.Feedbacks == 0 {
			t.Errorf("%s: train phase did no feedback", b.Backend)
		}
	}
	if res.WarmRatio <= 0 {
		t.Errorf("warm ratio not computed: %v", res.WarmRatio)
	}
	// The two backends ran the same deterministic workload against the
	// same features; the learned outcome must match exactly.
	h, m := res.Backends[0], res.Backends[1]
	if h.Train.Inserted != m.Train.Inserted {
		t.Errorf("train inserts diverge across backends: heap %d, mmap %d", h.Train.Inserted, m.Train.Inserted)
	}
	if h.Train.Feedbacks != m.Train.Feedbacks {
		t.Errorf("train feedbacks diverge across backends: heap %d, mmap %d", h.Train.Feedbacks, m.Train.Feedbacks)
	}
}

// TestRunStoreValidation covers config error paths.
func TestRunStoreValidation(t *testing.T) {
	bad := []StoreConfig{
		{},
		{Scale: 0.1},
		{Scale: 0.1, K: 5},
		{Scale: 0.1, K: 5, Sessions: 4},
		{Scale: 0.1, K: 5, Sessions: 4, Clients: 1},
	}
	for i, cfg := range bad {
		if _, err := RunStore(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}
