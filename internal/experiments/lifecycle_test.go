package experiments

import "testing"

// TestRunLifecycleBounded is the CI-sized soak regression gate for the
// lifecycle plane: with aging on, the tree's vertex count stays bounded
// (compactions reclaim the drifted-past regions) while the hit rate
// over the recent window stays perfect; with aging off, the same
// drifting workload grows the tree without bound (ε=0: one vertex per
// insert). The embedded crash sweeps must report zero acked-insert
// loss, zero recovery failures and zero hybrid states on both layouts.
func TestRunLifecycleBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("lifecycle soak skipped in -short mode")
	}
	cfg := DefaultLifecycleConfig()
	cfg.Inserts = 400
	cfg.AgeHorizon = 100
	cfg.CompactEvery = 50
	res, err := RunLifecycle(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Control: ε=0 on a drifting workload means strictly linear growth.
	if res.Control.FinalPoints < cfg.Inserts {
		t.Fatalf("control grew %d points for %d inserts; expected one per insert", res.Control.FinalPoints, cfg.Inserts)
	}
	if res.Control.Compactions != 0 || res.Control.Reclaimed != 0 {
		t.Fatalf("control mode compacted: %d compactions, %d reclaimed", res.Control.Compactions, res.Control.Reclaimed)
	}

	// Aging: bounded growth at the same hit rate.
	if res.Aging.FinalPoints >= res.Control.FinalPoints {
		t.Fatalf("aging did not bound growth: %d final points vs control %d", res.Aging.FinalPoints, res.Control.FinalPoints)
	}
	if res.Aging.Compactions == 0 || res.Aging.Reclaimed == 0 {
		t.Fatalf("aging mode never reclaimed: %d compactions, %d reclaimed", res.Aging.Compactions, res.Aging.Reclaimed)
	}
	for _, series := range []LifecycleSeries{res.Aging, res.Control} {
		if len(series.Samples) == 0 {
			t.Fatalf("%s mode produced no samples", series.Mode)
		}
		for _, s := range series.Samples {
			if s.HitRate < 1.0 {
				t.Fatalf("%s mode hit rate dropped to %.3f at %d inserts: aging reclaimed live regions", series.Mode, s.HitRate, s.Inserts)
			}
		}
	}

	// Crash sweeps: compaction swap safety on both durable layouts.
	for _, sweep := range []LifecycleCrashSweep{res.SingleTree, res.Sharded} {
		if sweep.CrashPoints == 0 {
			t.Fatalf("%s sweep enumerated no crash points", sweep.Layout)
		}
		if sweep.RecoveryFailures != 0 || sweep.AckedLost != 0 || sweep.HybridStates != 0 {
			t.Fatalf("%s sweep: %d recovery failures, %d acked vertices lost, %d hybrid states (want all zero)",
				sweep.Layout, sweep.RecoveryFailures, sweep.AckedLost, sweep.HybridStates)
		}
	}
}
