package experiments

import (
	"testing"
	"time"

	"repro/internal/obsv"
)

func TestRunSoakSmall(t *testing.T) {
	cfg := SoakConfig{
		Seed:        1,
		Scale:       0.05,
		K:           5,
		Epsilon:     0.05,
		Clients:     2,
		Duration:    300 * time.Millisecond,
		SampleEvery: 50 * time.Millisecond,
	}
	res, err := RunSoak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sessions == 0 {
		t.Fatal("soak completed no sessions")
	}
	if res.Ops < res.Sessions*2 {
		t.Fatalf("ops %d < 2 per session (%d sessions): every session is at least Open+Close", res.Ops, res.Sessions)
	}
	if len(res.Samples) < 2 {
		t.Fatalf("got %d samples, want >= 2 (interval + terminal)", len(res.Samples))
	}
	last := res.Samples[len(res.Samples)-1]
	if last.Sessions != res.Sessions {
		t.Fatalf("terminal sample sessions %d != total %d", last.Sessions, res.Sessions)
	}
	if last.HeapAllocBytes == 0 || last.Goroutines == 0 {
		t.Fatalf("runtime fields empty: %+v", last)
	}

	// Budgets: both rows present, monotone (500ms admits at least the
	// 100ms cohort), fractions in [0, 1].
	if len(res.Budgets) != 2 || res.Budgets[0].BudgetSecs != 0.1 || res.Budgets[1].BudgetSecs != 0.5 {
		t.Fatalf("budgets = %+v", res.Budgets)
	}
	if res.Budgets[1].Sessions < res.Budgets[0].Sessions {
		t.Fatalf("budget rows not monotone: %+v", res.Budgets)
	}
	for _, b := range res.Budgets {
		if b.Fraction < 0 || b.Fraction > 1 {
			t.Fatalf("fraction out of range: %+v", b)
		}
	}

	// The registry snapshot rode along, and the op latencies were read
	// from it.
	if res.Metrics == nil {
		t.Fatal("no registry snapshot in result")
	}
	if m := res.Metrics.Find("fb_service_requests_total", obsv.L("op", "open"), obsv.L("outcome", "ok")); m == nil || m.Value == 0 {
		t.Fatalf("open/ok counter = %+v", m)
	}
	var sawOpen bool
	for _, ol := range res.OpLatencies {
		if ol.Op == "open" {
			sawOpen = true
			if ol.Count == 0 || !(ol.P50Secs <= ol.P95Secs && ol.P95Secs <= ol.P99Secs) {
				t.Fatalf("open latency row inconsistent: %+v", ol)
			}
		}
	}
	if !sawOpen {
		t.Fatalf("no open row in op latencies: %+v", res.OpLatencies)
	}
}

func TestRunSoakValidation(t *testing.T) {
	bad := []SoakConfig{
		{Scale: 0, K: 5, Clients: 1, Duration: time.Second},
		{Scale: 0.1, K: 0, Clients: 1, Duration: time.Second},
		{Scale: 0.1, K: 5, Clients: 0, Duration: time.Second},
		{Scale: 0.1, K: 5, Clients: 1, Duration: 0},
	}
	for i, cfg := range bad {
		if _, err := RunSoak(cfg); err == nil {
			t.Errorf("config %d: want error, got nil", i)
		}
	}
}
