package experiments

import "testing"

// TestRunChaosInvariants runs a reduced chaos figure and pins its
// headline invariants: every crash schedule recovers with zero
// acknowledged loss, the degraded module serves bitwise-correct reads
// with full availability, and the quota phase admits exactly its
// headroom.
func TestRunChaosInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("crash sweep is slow in -short mode")
	}
	cfg := DefaultChaosConfig()
	cfg.Inserts = 6
	cfg.CompactEvery = 3
	cfg.Shards = 2
	cfg.DegradedInserts = 8
	cfg.QuotaHeadroom = 2

	res, err := RunChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, sweep := range []ChaosCrashSweep{res.SingleTree, res.Sharded} {
		if sweep.CrashPoints == 0 {
			t.Fatalf("%s: no crash points enumerated", sweep.Layout)
		}
		if sweep.RecoveryFailures != 0 {
			t.Errorf("%s: %d recovery failures", sweep.Layout, sweep.RecoveryFailures)
		}
		if sweep.AckedLost != 0 {
			t.Errorf("%s: %d acknowledged inserts lost", sweep.Layout, sweep.AckedLost)
		}
		if sweep.ExtraReplayed > sweep.CrashPoints {
			t.Errorf("%s: %d extra replays over %d schedules", sweep.Layout, sweep.ExtraReplayed, sweep.CrashPoints)
		}
	}
	d := res.Degraded
	if d.AckedBefore != cfg.Inserts {
		t.Errorf("degraded: acked %d, want %d", d.AckedBefore, cfg.Inserts)
	}
	if d.TypedRejections != cfg.DegradedInserts || d.UntypedErrors != 0 {
		t.Errorf("degraded: %d typed / %d untyped, want %d / 0", d.TypedRejections, d.UntypedErrors, cfg.DegradedInserts)
	}
	if d.ReadAvailability != 1 || !d.ParityOK {
		t.Errorf("degraded reads: availability %.2f parity %v", d.ReadAvailability, d.ParityOK)
	}
	if !d.RecoveredOK {
		t.Error("degraded module did not recover cleanly on a healthy disk")
	}
	q := res.Quota
	if q.Accepted != cfg.QuotaHeadroom {
		t.Errorf("quota: accepted %d, want %d", q.Accepted, cfg.QuotaHeadroom)
	}
	if q.UntypedErrors != 0 {
		t.Errorf("quota: %d untyped errors", q.UntypedErrors)
	}
	if q.ReadAvailability != 1 || !q.ParityOK {
		t.Errorf("quota reads: availability %.2f parity %v", q.ReadAvailability, q.ParityOK)
	}
}
