package experiments

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/distance"
	"repro/internal/engine"
	"repro/internal/histogram"
	"repro/internal/imagegen"
	"repro/internal/knn"
	"repro/internal/service"
	"repro/internal/store"
)

// StoreConfig drives the multi-backend store benchmark: the same
// collection served from the in-heap FlatMatrix and from an
// mmap-resident FBMX file, through every layer — raw scans, the tiled
// batch kernel, and the full serve protocol.
type StoreConfig struct {
	// Seed makes the collection and query streams deterministic.
	Seed int64
	// Scale multiplies the paper's collection cardinality.
	Scale float64
	// K is the result-list size per query.
	K int
	// Epsilon is the Simplex Tree insert threshold ε.
	Epsilon float64
	// Sessions is the number of complete sessions per serve phase.
	Sessions int
	// Clients is the closed-loop client count of the serve phases.
	Clients int
	// ScanQueries sizes the scan and batch measurement streams.
	ScanQueries int
}

// DefaultStoreConfig is the operating point of the committed benchmark
// artifact.
func DefaultStoreConfig() StoreConfig {
	return StoreConfig{
		Seed:        1,
		Scale:       0.3,
		K:           10,
		Epsilon:     0.05,
		Sessions:    128,
		Clients:     4,
		ScanQueries: 256,
	}
}

// StoreBackendResult measures one backend end to end. Scan numbers are
// per-query microseconds; Train/Bypass are the serve-protocol phases of
// the serving benchmark run against this backend.
type StoreBackendResult struct {
	Backend string `json:"backend"` // "heap" or "mmap"
	// ColdScanMicros is the first full-collection kernel scan after the
	// backend is opened. For the mmap backend this pass takes the page
	// faults that pull the collection into the process (from the page
	// cache when the file was recently written — an in-process "cold" is
	// first-touch cost, not disk latency); the heap backend's rows were
	// written by the builder and are already resident.
	ColdScanMicros float64 `json:"cold_scan_us"`
	// WarmScanMicros is the steady-state single-query kernel scan.
	WarmScanMicros float64 `json:"warm_scan_us"`
	// BatchMicrosPerQuery is the cache-tiled SearchBatch path — the
	// acceptance metric (mmap within 1.15x of heap).
	BatchMicrosPerQuery float64 `json:"batch_us_per_query"`
	// Train/Bypass are the serve-protocol phases (oracle feedback loops,
	// then the no-feedback bypass stream) against a service whose engine
	// retrieves from this backend.
	Train  ServePhaseResult `json:"train"`
	Bypass ServePhaseResult `json:"bypass"`
}

// StoreResult is the full multi-backend benchmark output.
type StoreResult struct {
	Collection int   `json:"collection"`
	Dim        int   `json:"dim"`
	K          int   `json:"k"`
	FileBytes  int64 `json:"file_bytes"` // size of the FBMX image on disk
	// WarmRatio is mmap.BatchMicrosPerQuery / heap.BatchMicrosPerQuery —
	// the headline number the acceptance bound (≤ 1.15) applies to.
	WarmRatio float64              `json:"warm_batch_ratio"`
	Backends  []StoreBackendResult `json:"backends"`
}

// RunStore builds one collection, exports it to an FBMX file, and
// measures heap-resident versus mmap-resident serving across the scan
// kernels and the serve protocol. Retrieval results are bitwise
// identical across backends (pinned by the knn mmap parity suite), so
// the comparison is purely about where the bytes live.
func RunStore(cfg StoreConfig) (StoreResult, error) {
	if cfg.Scale <= 0 {
		return StoreResult{}, fmt.Errorf("experiments: scale must be positive, got %v", cfg.Scale)
	}
	if cfg.K <= 0 || cfg.Sessions <= 0 || cfg.Clients <= 0 || cfg.ScanQueries <= 0 {
		return StoreResult{}, fmt.Errorf("experiments: K, Sessions, Clients and ScanQueries must be positive")
	}
	ds, err := dataset.Build(imagegen.IMSILike(cfg.Seed, cfg.Scale), histogram.DefaultExtractor)
	if err != nil {
		return StoreResult{}, err
	}
	dir, err := os.MkdirTemp("", "fbstore")
	if err != nil {
		return StoreResult{}, err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "collection.fbmx")
	if err := store.WriteFBMX(path, ds.Matrix()); err != nil {
		return StoreResult{}, err
	}
	info, err := os.Stat(path)
	if err != nil {
		return StoreResult{}, err
	}
	out := StoreResult{Collection: ds.Len(), Dim: ds.Dim, K: cfg.K, FileBytes: info.Size()}

	for _, kind := range []string{"heap", "mmap"} {
		var backend store.Backend
		var dsB *dataset.Dataset
		switch kind {
		case "heap":
			backend, dsB = ds.Matrix(), ds
		case "mmap":
			mm, err := store.OpenMmap(path)
			if err != nil {
				return StoreResult{}, err
			}
			defer mm.Close()
			backend = mm
			// Reuse the builder's labels so the serve phases' oracle works
			// identically over the mapped rows.
			dsB, err = dataset.FromBackend(mm, ds.Items, ds.QueryCats)
			if err != nil {
				return StoreResult{}, err
			}
		}
		res, err := runStoreBackend(cfg, kind, backend, dsB)
		if err != nil {
			return StoreResult{}, fmt.Errorf("experiments: %s backend: %w", kind, err)
		}
		out.Backends = append(out.Backends, res)
	}
	if h, m := out.Backends[0].BatchMicrosPerQuery, out.Backends[1].BatchMicrosPerQuery; h > 0 {
		out.WarmRatio = m / h
	}
	return out, nil
}

// runStoreBackend measures one backend: cold scan (the backend's very
// first kernel pass), warm scans, the tiled batch, and the serve
// protocol over a fresh service.
func runStoreBackend(cfg StoreConfig, kind string, backend store.Backend, ds *dataset.Dataset) (StoreBackendResult, error) {
	res := StoreBackendResult{Backend: kind}
	scan, err := knn.NewScanBackend(backend)
	if err != nil {
		return res, err
	}
	qs := make([][]float64, cfg.ScanQueries)
	for i := range qs {
		qs[i] = ds.Items[(i*131)%ds.Len()].Feature
	}
	metric := distance.Euclidean{}

	// Cold: the first full-collection pass this backend ever serves.
	t0 := time.Now()
	if _, err := scan.Search(qs[0], cfg.K, metric); err != nil {
		return res, err
	}
	res.ColdScanMicros = float64(time.Since(t0).Nanoseconds()) / 1e3

	// Warm: steady-state single-query scans over the query stream.
	t0 = time.Now()
	for _, q := range qs {
		if _, err := scan.Search(q, cfg.K, metric); err != nil {
			return res, err
		}
	}
	res.WarmScanMicros = float64(time.Since(t0).Nanoseconds()) / 1e3 / float64(len(qs))

	// Tiled batch: the L2-tiled SearchBatch path, warmed by the pass
	// above — the acceptance comparison.
	t0 = time.Now()
	if _, err := scan.SearchBatch(qs, cfg.K, metric); err != nil {
		return res, err
	}
	res.BatchMicrosPerQuery = float64(time.Since(t0).Nanoseconds()) / 1e3 / float64(len(qs))

	// Serve protocol: a fresh engine + bypass + service retrieving from
	// this backend, driven through the shared phase runner.
	eng, err := engine.New(ds, engine.Options{})
	if err != nil {
		return res, err
	}
	codec, err := core.NewHistogramCodec(ds.Dim)
	if err != nil {
		return res, err
	}
	byp, err := core.New(codec.D(), codec.P(), core.Config{
		Epsilon:        cfg.Epsilon,
		DefaultWeights: codec.DefaultWeights(),
	})
	if err != nil {
		return res, err
	}
	svc, err := service.New(eng, byp, service.Options{
		MaxSessions: 1 << 16,
		DefaultK:    cfg.K,
	})
	if err != nil {
		return res, err
	}
	serveCfg := ServeConfig{Seed: cfg.Seed, Scale: cfg.Scale, K: cfg.K, Epsilon: cfg.Epsilon, SessionsPerLevel: cfg.Sessions}
	rng := rand.New(rand.NewSource(cfg.Seed + 8111))
	items, err := ds.SampleQueries(rng, cfg.Sessions)
	if err != nil {
		return res, err
	}
	res.Train, err = runServePhase(svc, ds, serveCfg, cfg.Clients, items, true)
	if err != nil {
		return res, err
	}
	twice := append(append(make([]int, 0, 2*len(items)), items...), items...)
	res.Bypass, err = runServePhase(svc, ds, serveCfg, cfg.Clients, twice, false)
	if err != nil {
		return res, err
	}
	return res, nil
}
