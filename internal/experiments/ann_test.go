package experiments

import (
	"runtime"
	"testing"

	"repro/internal/ann"
)

func smallANNConfig() ANNConfig {
	return ANNConfig{
		Seed:     1,
		Dim:      8,
		Clusters: 12,
		K:        5,
		Queries:  48,
		Scales: []ANNScaleConfig{
			{Label: "1x", Rows: 600, NLists: []int{16}},
		},
		NProbes: []int{2, 16},
		Quants:  []ann.Quant{ann.QuantF32, ann.QuantI8},
	}
}

func TestRunANNSmall(t *testing.T) {
	res, err := RunANN(smallANNConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scales) != 1 || len(res.Scales[0].Indexes) != 2 {
		t.Fatalf("unexpected sweep shape: %+v", res.Scales)
	}
	sc := res.Scales[0]
	if sc.ExactBatchMicros <= 0 || sc.ExactP99Micros < sc.ExactP50Micros {
		t.Fatalf("baseline not measured: %+v", sc)
	}
	for _, ix := range sc.Indexes {
		if len(ix.Points) != 2 {
			t.Fatalf("index %s swept %d points, want 2", ix.Quant, len(ix.Points))
		}
		if ix.SlabBytes <= 0 || ix.BandwidthRatio <= 0 || ix.BuildMillis < 0 {
			t.Fatalf("index costs not measured: %+v", ix)
		}
		if ix.Quant == "i8" && ix.BandwidthRatio >= sc.Indexes[0].BandwidthRatio {
			t.Fatalf("i8 slab (%v) not smaller than f32 (%v)", ix.BandwidthRatio, sc.Indexes[0].BandwidthRatio)
		}
		for _, pt := range ix.Points {
			if pt.RecallAtK < 0 || pt.RecallAtK > 1 {
				t.Fatalf("recall out of range: %+v", pt)
			}
			// nprobe = nlist is the exact tier: recall must be perfect.
			if pt.NProbe == ix.NList && pt.RecallAtK != 1 {
				t.Fatalf("full probe recall %v != 1: %+v", pt.RecallAtK, pt)
			}
			if pt.BatchMicrosPerQuery <= 0 || pt.Speedup <= 0 {
				t.Fatalf("latency not measured: %+v", pt)
			}
		}
	}
}

func TestRunANNValidation(t *testing.T) {
	bad := smallANNConfig()
	bad.K = 0
	if _, err := RunANN(bad); err == nil {
		t.Fatal("K=0 accepted")
	}
	bad = smallANNConfig()
	bad.NProbes = nil
	if _, err := RunANN(bad); err == nil {
		t.Fatal("empty nprobe sweep accepted")
	}
	bad = smallANNConfig()
	bad.Scales[0].Rows = 4
	if _, err := RunANN(bad); err == nil {
		t.Fatal("rows < clusters accepted")
	}
}

func TestCollectEnvelope(t *testing.T) {
	env := CollectEnvelope()
	if env.GOOS != runtime.GOOS || env.GOARCH != runtime.GOARCH {
		t.Fatalf("envelope = %+v", env)
	}
	if env.NumCPU < 1 || env.GOMAXPROCS < 1 || env.GoVersion == "" {
		t.Fatalf("envelope = %+v", env)
	}
}
