package experiments

import (
	"os"
	"runtime"

	"repro/internal/vec"
)

// Envelope is the shared metadata block every committed benchmark
// artifact carries. Numbers without provenance are noise: recall and
// latency depend on the kernel tier that actually ran (AVX2 vs
// fallback), on GOMAXPROCS, and on the Go release, so the envelope pins
// all of them next to the figures instead of leaving them in a shell
// transcript.
type Envelope struct {
	Host       string `json:"host,omitempty"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	GoVersion  string `json:"go_version"`
	// AVX2 reports the dispatch decision, not raw CPUID: it is false
	// when GODEBUG=cpu.avx2=off forced the fallback kernels.
	AVX2 bool `json:"avx2"`
}

// CollectEnvelope snapshots the current process environment.
func CollectEnvelope() Envelope {
	host, _ := os.Hostname()
	return Envelope{
		Host:       host,
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		AVX2:       vec.HasAVX2(),
	}
}
