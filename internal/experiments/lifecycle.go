package experiments

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"

	"repro/internal/core"
	"repro/internal/faultfs"
	"repro/internal/shardedbypass"
	"repro/internal/simplextree"
)

// LifecycleConfig drives the bypass-lifecycle figure: a count-based soak
// whose query stream drifts across the simplex — so vertices learned
// early stop being reinforced — run twice (aging on with periodic
// compaction vs an aging-off control), plus a crash-schedule sweep over
// every mutating filesystem operation of a workload that compacts
// mid-stream, on both durable layouts.
type LifecycleConfig struct {
	// Seed makes the workloads deterministic.
	Seed int64
	// D and P are the module's simplex and weight dimensionalities.
	D, P int

	// Soak phase.
	//
	// Inserts is the drifting workload length per mode; AgeHorizon the
	// reclamation horizon of the aging mode (logical inserts); the aging
	// mode compacts every CompactEvery inserts. Every SampleEvery inserts
	// the tree shape, process memory and recent-window hit rate are
	// sampled; the hit rate probes the RecentWindow most recent inserts.
	Inserts      int
	AgeHorizon   uint64
	CompactEvery int
	SampleEvery  int
	RecentWindow int

	// Crash phase.
	//
	// Each schedule drives CrashInserts inserts with an aging compaction
	// after every CrashCompactEvery of them, under CrashAgeHorizon, so
	// crash points cover the compaction swap (snapshot write, rename,
	// directory fsync, journal reset) with real reclamation happening.
	// Shards is the sharded layout's partition count.
	CrashInserts      int
	CrashCompactEvery int
	CrashAgeHorizon   uint64
	Shards            int
}

// DefaultLifecycleConfig is the committed-artifact operating point: the
// soak long enough that the aging mode reaches its plateau while the
// control is still growing, the crash phase small enough that two full
// per-operation sweeps stay in CI budget.
func DefaultLifecycleConfig() LifecycleConfig {
	return LifecycleConfig{
		Seed:              1,
		D:                 3,
		P:                 2,
		Inserts:           600,
		AgeHorizon:        150,
		CompactEvery:      75,
		SampleEvery:       50,
		RecentWindow:      40,
		CrashInserts:      10,
		CrashCompactEvery: 4,
		CrashAgeHorizon:   4,
		Shards:            3,
	}
}

// LifecyclePoint is one sample of a soak series: the tree's shape and
// footprint next to the process memory and the recent-window hit rate.
type LifecyclePoint struct {
	Inserts        int     `json:"inserts"`
	Points         int     `json:"points"`
	SizeBytes      int64   `json:"size_bytes"`
	HeapAllocBytes uint64  `json:"heap_alloc_bytes"`
	RSSBytes       uint64  `json:"rss_bytes"`
	HitRate        float64 `json:"hit_rate"`
}

// LifecycleSeries is one soak mode's full result. The headline contrast:
// with aging on, FinalPoints plateaus near AgeHorizon while HitRate on
// the live window stays at 1; with aging off, FinalPoints grows with
// every insert.
type LifecycleSeries struct {
	Mode        string           `json:"mode"`
	AgeHorizon  uint64           `json:"age_horizon"`
	Compactions int              `json:"compactions"`
	Reclaimed   int              `json:"reclaimed"`
	FinalPoints int              `json:"final_points"`
	PeakPoints  int              `json:"peak_points"`
	Samples     []LifecyclePoint `json:"samples"`
}

// LifecycleCrashSweep is one layout's compaction crash-schedule result.
// Every schedule kills the module at exactly one mutating filesystem
// operation, recovers on a healthy disk, and checks the recovered census
// (vertex point, value AND stamp, bitwise) against the healthy run's
// census sequence: it must land on the last acknowledged state, or on
// the in-flight operation's state — never between or beside them.
type LifecycleCrashSweep struct {
	Layout      string `json:"layout"`
	CrashPoints int    `json:"crash_points"`
	// RecoveryFailures counts schedules whose reopen failed (must be 0).
	RecoveryFailures int `json:"recovery_failures"`
	// AckedLost counts acknowledged vertices the recovered census is
	// missing, summed over all schedules (must be 0).
	AckedLost int `json:"acked_lost"`
	// HybridStates counts schedules whose recovered census matches no
	// state the healthy run ever passed through (must be 0).
	HybridStates int `json:"hybrid_states"`
	// PostCompaction counts recoveries that landed on the state of an
	// unacknowledged in-flight compaction (its snapshot rename committed
	// before the crash); InFlightReplayed likewise for an in-flight
	// insert whose journal record survived.
	PostCompaction   int `json:"post_compaction"`
	InFlightReplayed int `json:"in_flight_replayed"`
}

// LifecycleResult aggregates the whole figure.
type LifecycleResult struct {
	D            int                 `json:"d"`
	P            int                 `json:"p"`
	Inserts      int                 `json:"inserts"`
	AgeHorizon   uint64              `json:"age_horizon"`
	CompactEvery int                 `json:"compact_every"`
	Aging        LifecycleSeries     `json:"aging"`
	Control      LifecycleSeries     `json:"control"`
	SingleTree   LifecycleCrashSweep `json:"single_tree"`
	Sharded      LifecycleCrashSweep `json:"sharded"`
}

// driftPoint draws an interior simplex point from a window whose center
// drifts monotonically along the first coordinate as t goes 0 → 1, so
// the regions learned early in the run are never queried or reinforced
// again — exactly the access pattern aging exists for.
func driftPoint(rng *rand.Rand, d int, t float64) []float64 {
	q := make([]float64, d)
	q[0] = 0.08 + 0.72*t + 0.01*rng.Float64()
	rest := 0.12 / float64(d)
	for i := 1; i < d; i++ {
		q[i] = rest * (0.8 + 0.4*rng.Float64())
	}
	return q
}

// oqpClose reports whether a prediction reproduces the inserted outcome
// (the stored vertex answers bitwise up to interpolation rounding).
func oqpClose(got, want core.OQP) bool {
	const tol = 1e-6
	for i := range want.Delta {
		if math.Abs(got.Delta[i]-want.Delta[i]) > tol {
			return false
		}
	}
	for i := range want.Weights {
		if math.Abs(got.Weights[i]-want.Weights[i]) > tol {
			return false
		}
	}
	return true
}

// runLifecycleMode drives one soak mode: horizon 0 is the control (no
// aging, no compaction), a positive horizon compacts every
// cfg.CompactEvery inserts.
func runLifecycleMode(cfg LifecycleConfig, horizon uint64) (LifecycleSeries, error) {
	mode := "aging"
	if horizon == 0 {
		mode = "control"
	}
	out := LifecycleSeries{Mode: mode, AgeHorizon: horizon}
	byp, err := core.New(cfg.D, cfg.P, core.Config{Epsilon: 0, AgeHorizon: horizon})
	if err != nil {
		return out, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 53))
	type recent struct {
		q   []float64
		oqp core.OQP
	}
	window := make([]recent, 0, cfg.RecentWindow)
	for i := 0; i < cfg.Inserts; i++ {
		t := float64(i) / float64(cfg.Inserts-1)
		q := driftPoint(rng, cfg.D, t)
		oqp := chaosOQP(rng, cfg.D, cfg.P)
		if _, err := byp.Insert(q, oqp); err != nil {
			return out, fmt.Errorf("insert %d: %w", i, err)
		}
		if len(window) == cfg.RecentWindow {
			window = window[1:]
		}
		window = append(window, recent{q, oqp})

		if horizon > 0 && cfg.CompactEvery > 0 && (i+1)%cfg.CompactEvery == 0 {
			stats, err := byp.CompactAged()
			if err != nil {
				return out, fmt.Errorf("compaction at insert %d: %w", i, err)
			}
			out.Compactions++
			for _, st := range stats {
				out.Reclaimed += st.Reclaimed
			}
		}
		if (i+1)%cfg.SampleEvery == 0 || i == cfg.Inserts-1 {
			hits := 0
			for _, r := range window {
				got, err := byp.Predict(r.q)
				if err == nil && oqpClose(got, r.oqp) {
					hits++
				}
			}
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			st := byp.Stats()
			p := LifecyclePoint{
				Inserts:        i + 1,
				Points:         st.Points,
				SizeBytes:      byp.Tree().SizeBytes(),
				HeapAllocBytes: ms.HeapAlloc,
				RSSBytes:       readRSS(),
				HitRate:        float64(hits) / float64(len(window)),
			}
			out.Samples = append(out.Samples, p)
			if p.Points > out.PeakPoints {
				out.PeakPoints = p.Points
			}
		}
	}
	out.FinalPoints = byp.Stats().Points
	return out, nil
}

// lcModule abstracts the two durable layouts behind the operations the
// compaction crash sweep needs.
type lcModule struct {
	insert  func(q []float64, oqp core.OQP) (bool, error)
	compact func() ([]core.CompactionStats, error)
	walk    func(fn func(v *simplextree.Vertex)) error
	close   func() error
}

// lcVertexKey is a vertex's full bitwise identity — point, value and
// aging stamp — so census equality also pins that recovery restored the
// timestamps replay depends on.
func lcVertexKey(v *simplextree.Vertex) string {
	buf := make([]byte, 0, 8*(len(v.Point)+len(v.Value)+1))
	for _, x := range v.Point {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(x))
	}
	for _, x := range v.Value {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(x))
	}
	buf = binary.LittleEndian.AppendUint64(buf, v.Stamp())
	return string(buf)
}

func (m lcModule) census() (map[string]bool, error) {
	set := map[string]bool{}
	err := m.walk(func(v *simplextree.Vertex) { set[lcVertexKey(v)] = true })
	return set, err
}

// lcLayout opens one durable layout rooted at dir over fs (nil = the
// real filesystem), with aging enabled so compactions actually reclaim.
type lcLayout struct {
	name string
	open func(dir string, fs *faultfs.FS) (lcModule, error)
}

func lifecycleLayouts(cfg LifecycleConfig) []lcLayout {
	treeCfg := core.Config{Epsilon: 0, AgeHorizon: cfg.CrashAgeHorizon}
	dur := func(fs *faultfs.FS) core.DurableOptions {
		// Journal-depth compaction is disabled: every snapshot swap in
		// the schedule is an explicit CompactAged, so the sweep's crash
		// points map one-to-one onto the lifecycle path under test.
		opts := core.DurableOptions{CompactEvery: 1 << 30, Sync: true}
		if fs != nil {
			opts.FS = fs
		}
		return opts
	}
	return []lcLayout{
		{
			name: "single-tree",
			open: func(dir string, fs *faultfs.FS) (lcModule, error) {
				db, err := core.OpenDurable(dir, cfg.D, cfg.P, treeCfg, dur(fs))
				if err != nil {
					return lcModule{}, err
				}
				return lcModule{
					insert:  db.Insert,
					compact: db.CompactAged,
					walk: func(fn func(v *simplextree.Vertex)) error {
						db.Tree().Walk(fn)
						return nil
					},
					close: db.Close,
				}, nil
			},
		},
		{
			name: fmt.Sprintf("sharded(%d)", cfg.Shards),
			open: func(dir string, fs *faultfs.FS) (lcModule, error) {
				s, err := shardedbypass.Open(dir, cfg.D, cfg.P, treeCfg, shardedbypass.Options{
					Shards:  cfg.Shards,
					Durable: dur(fs),
				})
				if err != nil {
					return lcModule{}, err
				}
				return lcModule{
					insert:  s.Insert,
					compact: s.CompactAged,
					walk:    s.Walk,
					close:   s.Close,
				}, nil
			},
		},
	}
}

// lcOp is one step of the deterministic crash-phase workload.
type lcOp struct {
	compact bool
	q       []float64
	oqp     core.OQP
}

func lifecycleOps(cfg LifecycleConfig) []lcOp {
	rng := rand.New(rand.NewSource(cfg.Seed + 59))
	var ops []lcOp
	for i := 0; i < cfg.CrashInserts; i++ {
		ops = append(ops, lcOp{q: chaosPoint(rng, cfg.D), oqp: chaosOQP(rng, cfg.D, cfg.P)})
		if cfg.CrashCompactEvery > 0 && (i+1)%cfg.CrashCompactEvery == 0 {
			ops = append(ops, lcOp{compact: true})
		}
	}
	return ops
}

func lcApply(m lcModule, op lcOp) error {
	if op.compact {
		_, err := m.compact()
		return err
	}
	_, err := m.insert(op.q, op.oqp)
	return err
}

// lcMissing counts keys of a that b lacks.
func lcMissing(a, b map[string]bool) int {
	n := 0
	for k := range a {
		if !b[k] {
			n++
		}
	}
	return n
}

func lcEqual(a, b map[string]bool) bool {
	return len(a) == len(b) && lcMissing(a, b) == 0
}

// runLifecycleCrashSweep enumerates every crash point of one layout's
// compacting workload and verifies recovery against the healthy run's
// census sequence.
//
// The invariant: with k acknowledged operations at crash time, the
// recovered census must satisfy lo ⊆ census ⊆ hi, where lo/hi bracket
// the last acknowledged state S[k] and the in-flight operation's target
// state S[k+1] (an insert only adds, a compaction only removes — so the
// bracket is ordered either way). A census outside the bracket is a
// hybrid: it either lost acknowledged state or mixes pre- and
// post-compaction trees.
func runLifecycleCrashSweep(root string, lay lcLayout, cfg LifecycleConfig) (LifecycleCrashSweep, error) {
	out := LifecycleCrashSweep{Layout: lay.name}
	ops := lifecycleOps(cfg)

	// Healthy run: the census sequence S[0..len(ops)] every schedule's
	// recovery is checked against. S[0] is the fresh module (domain
	// corners only).
	sm, err := lay.open(filepath.Join(root, "seq"), nil)
	if err != nil {
		return out, fmt.Errorf("sequence open: %w", err)
	}
	seq := make([]map[string]bool, 0, len(ops)+1)
	c0, err := sm.census()
	if err != nil {
		return out, fmt.Errorf("sequence census: %w", err)
	}
	seq = append(seq, c0)
	for i, op := range ops {
		if err := lcApply(sm, op); err != nil {
			return out, fmt.Errorf("sequence op %d: %w", i, err)
		}
		c, err := sm.census()
		if err != nil {
			return out, fmt.Errorf("sequence census %d: %w", i, err)
		}
		seq = append(seq, c)
	}
	if err := sm.close(); err != nil {
		return out, fmt.Errorf("sequence close: %w", err)
	}

	// Counting run: mutating filesystem operations of the fault-free
	// workload (including close) = the number of crash schedules.
	countFS := faultfs.New(nil)
	cm, err := lay.open(filepath.Join(root, "count"), countFS)
	if err != nil {
		return out, fmt.Errorf("counting open: %w", err)
	}
	for i, op := range ops {
		if err := lcApply(cm, op); err != nil {
			return out, fmt.Errorf("counting op %d: %w", i, err)
		}
	}
	if err := cm.close(); err != nil {
		return out, fmt.Errorf("counting close: %w", err)
	}
	total := countFS.Ops()
	out.CrashPoints = total

	for n := 1; n <= total; n++ {
		dir := filepath.Join(root, fmt.Sprintf("crash-%04d", n))
		fs := faultfs.New(nil)
		fs.SetCrashAt(n)
		m, err := lay.open(dir, fs)
		acked := 0
		if err == nil {
			for _, op := range ops {
				if lcApply(m, op) != nil {
					// The filesystem is dead from the crash point on;
					// every later operation fails too.
					break
				}
				acked++
			}
			_ = m.close() // post-crash close errors are expected
		}
		if !fs.Crashed() {
			return out, fmt.Errorf("crash %d/%d never fired", n, total)
		}

		rm, err := lay.open(dir, nil)
		if err != nil {
			out.RecoveryFailures++
			continue
		}
		got, err := rm.census()
		if err != nil {
			_ = rm.close()
			return out, fmt.Errorf("recovery %d census: %w", n, err)
		}
		if err := rm.close(); err != nil {
			return out, fmt.Errorf("recovery %d close: %w", n, err)
		}

		lo, hi := seq[acked], seq[acked]
		if acked < len(ops) {
			if ops[acked].compact {
				lo = seq[acked+1] // compaction only removes: post ⊆ pre
			} else {
				hi = seq[acked+1] // insert only adds: pre ⊆ post
			}
		}
		lost := lcMissing(lo, got)
		extra := lcMissing(got, hi)
		out.AckedLost += lost
		switch {
		case lost > 0 || extra > 0:
			out.HybridStates++
		case !lcEqual(got, seq[acked]):
			// Valid but ahead of the last acknowledged state: the
			// in-flight operation's effect survived the crash.
			if ops[acked].compact {
				out.PostCompaction++
			} else {
				out.InFlightReplayed++
			}
		}
	}
	return out, nil
}

// RunLifecycle runs the full lifecycle figure: both soak modes, then the
// compaction crash sweep on both durable layouts in a temp directory.
func RunLifecycle(cfg LifecycleConfig) (LifecycleResult, error) {
	if cfg.D <= 0 || cfg.P < 0 || cfg.Inserts <= 1 || cfg.AgeHorizon == 0 ||
		cfg.SampleEvery <= 0 || cfg.RecentWindow <= 0 ||
		cfg.CrashInserts <= 0 || cfg.CrashAgeHorizon == 0 || cfg.Shards < 1 {
		return LifecycleResult{}, fmt.Errorf("experiments: invalid lifecycle config %+v", cfg)
	}
	res := LifecycleResult{
		D: cfg.D, P: cfg.P, Inserts: cfg.Inserts,
		AgeHorizon: cfg.AgeHorizon, CompactEvery: cfg.CompactEvery,
	}
	var err error
	if res.Aging, err = runLifecycleMode(cfg, cfg.AgeHorizon); err != nil {
		return res, fmt.Errorf("aging soak: %w", err)
	}
	if res.Control, err = runLifecycleMode(cfg, 0); err != nil {
		return res, fmt.Errorf("control soak: %w", err)
	}

	root, err := os.MkdirTemp("", "fb-lifecycle-*")
	if err != nil {
		return res, err
	}
	defer os.RemoveAll(root)
	layouts := lifecycleLayouts(cfg)
	if res.SingleTree, err = runLifecycleCrashSweep(filepath.Join(root, "single"), layouts[0], cfg); err != nil {
		return res, fmt.Errorf("single-tree crash sweep: %w", err)
	}
	if res.Sharded, err = runLifecycleCrashSweep(filepath.Join(root, "sharded"), layouts[1], cfg); err != nil {
		return res, fmt.Errorf("sharded crash sweep: %w", err)
	}
	return res, nil
}
