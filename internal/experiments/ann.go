package experiments

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/ann"
	"repro/internal/distance"
	"repro/internal/knn"
	"repro/internal/store"
)

// ANNConfig drives the IVF approximate-retrieval benchmark: a clustered
// synthetic collection at one or more scales, an exact-scan baseline,
// and a sweep over (nlist, nprobe, quantization) measuring recall@k
// against that baseline alongside latency and slab bandwidth.
type ANNConfig struct {
	// Seed makes the collection, query stream and k-means training
	// deterministic (the generator is a pinned splitmix64, not
	// math/rand, so committed figures survive Go releases).
	Seed int64
	// Dim is the feature dimensionality (default 32, matching the
	// paper's histogram bins).
	Dim int
	// Clusters is the number of Gaussian modes in the synthetic data.
	Clusters int
	// K is the result-list size recall is measured at.
	K int
	// Queries sizes the measurement stream per scale.
	Queries int
	// Scales are the corpus sizes swept, each with its own nlist grid.
	Scales []ANNScaleConfig
	// NProbes is the probe-width sweep applied to every built index.
	NProbes []int
	// Quants is the slab-encoding sweep.
	Quants []ann.Quant
}

// ANNScaleConfig is one corpus size in the sweep.
type ANNScaleConfig struct {
	Label  string // "1x", "10x"
	Rows   int
	NLists []int
}

// DefaultANNConfig is the operating point of the committed benchmark
// artifact: 1x ≈ the paper's collection cardinality, 10x stresses the
// bandwidth argument where the approximate tier pays off.
func DefaultANNConfig() ANNConfig {
	return ANNConfig{
		Seed:     1,
		Dim:      32,
		Clusters: 96,
		K:        10,
		Queries:  256,
		Scales: []ANNScaleConfig{
			{Label: "1x", Rows: 9800, NLists: []int{64, 256}},
			{Label: "10x", Rows: 98000, NLists: []int{256, 1024}},
		},
		NProbes: []int{4, 8, 16, 32},
		Quants:  []ann.Quant{ann.QuantF32, ann.QuantI8},
	}
}

// ANNPointResult is one (scale, nlist, nprobe, quant) cell of the sweep.
type ANNPointResult struct {
	NList  int    `json:"nlist"`
	NProbe int    `json:"nprobe"`
	Quant  string `json:"quant"`
	// RecallAtK is mean |approx ∩ exact| / k over the query stream.
	RecallAtK float64 `json:"recall_at_k"`
	// P50/P99Micros are single-query latencies through Index.Search.
	P50Micros float64 `json:"p50_us"`
	P99Micros float64 `json:"p99_us"`
	// BatchMicrosPerQuery is the SearchBatch path — the acceptance
	// metric (compare ExactBatchMicros at the same scale).
	BatchMicrosPerQuery float64 `json:"batch_us_per_query"`
	// Speedup is exact batch µs/q divided by this cell's batch µs/q.
	Speedup float64 `json:"speedup_vs_exact"`
}

// ANNIndexResult groups the nprobe sweep of one built index and its
// one-time costs (training, slab footprint).
type ANNIndexResult struct {
	NList int    `json:"nlist"`
	Quant string `json:"quant"`
	// BuildMillis covers k-means training, assignment and slab encoding.
	BuildMillis float64 `json:"build_ms"`
	// SlabBytes is the probe-stage working set; BandwidthRatio divides
	// it by the exact scan's 8·n·dim float64 footprint.
	SlabBytes      int64            `json:"slab_bytes"`
	BandwidthRatio float64          `json:"bandwidth_ratio"`
	Points         []ANNPointResult `json:"points"`
}

// ANNScaleResult is one corpus size: the exact baseline plus every
// index swept at that scale.
type ANNScaleResult struct {
	Scale string `json:"scale"`
	Rows  int    `json:"rows"`
	Dim   int    `json:"dim"`
	// Exact-scan baseline over the same query stream (tiled batch
	// kernel and single-query path).
	ExactBatchMicros float64          `json:"exact_batch_us_per_query"`
	ExactP50Micros   float64          `json:"exact_p50_us"`
	ExactP99Micros   float64          `json:"exact_p99_us"`
	Indexes          []ANNIndexResult `json:"indexes"`
	// BestSpeedupAtRecall is the largest batched speedup among cells
	// with recall@k ≥ 0.95 — the headline the acceptance bound (≥ 3x at
	// 10x scale) applies to.
	BestSpeedupAtRecall float64 `json:"best_speedup_recall95"`
}

// ANNResult is the full benchmark output.
type ANNResult struct {
	Env     Envelope         `json:"env"`
	K       int              `json:"k"`
	Queries int              `json:"queries"`
	Seed    int64            `json:"seed"`
	Scales  []ANNScaleResult `json:"scales"`
}

// annRNG is a splitmix64 stream; the experiments package keeps its own
// copy so committed figures do not depend on math/rand's unspecified
// stream stability across Go releases.
type annRNG struct{ s uint64 }

func (r *annRNG) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *annRNG) float64() float64 { return float64(r.next()>>11) / (1 << 53) }

// norm is an Irwin–Hall approximate standard normal (sum of 12
// uniforms, centred) — plenty for benchmark data and fully pinned.
func (r *annRNG) norm() float64 {
	s := 0.0
	for i := 0; i < 12; i++ {
		s += r.float64()
	}
	return s - 6
}

// annCollection generates rows around `clusters` Gaussian modes plus a
// query stream of perturbed members, all from one seeded stream.
func annCollection(rows, dim, clusters, queries int, seed int64) ([][]float64, [][]float64) {
	rng := &annRNG{s: uint64(seed)}
	centers := make([][]float64, clusters)
	for c := range centers {
		centers[c] = make([]float64, dim)
		for j := range centers[c] {
			centers[c][j] = 20 * rng.float64()
		}
	}
	data := make([][]float64, rows)
	for i := range data {
		ctr := centers[i%clusters]
		row := make([]float64, dim)
		for j := range row {
			row[j] = ctr[j] + rng.norm()
		}
		data[i] = row
	}
	qs := make([][]float64, queries)
	for i := range qs {
		base := data[int(rng.next()%uint64(rows))]
		q := make([]float64, dim)
		for j := range q {
			q[j] = base[j] + 0.25*rng.norm()
		}
		qs[i] = q
	}
	return data, qs
}

// latencyStats runs fn once per query, returning p50 and p99 in µs.
func latencyStats(n int, fn func(i int) error) (p50, p99 float64, err error) {
	lats := make([]float64, n)
	for i := 0; i < n; i++ {
		t0 := time.Now()
		if err := fn(i); err != nil {
			return 0, 0, err
		}
		lats[i] = float64(time.Since(t0).Nanoseconds()) / 1e3
	}
	sort.Float64s(lats)
	return lats[n/2], lats[n*99/100], nil
}

// RunANN builds the clustered collection at each scale, measures the
// exact-scan baseline, then sweeps IVF indexes over (nlist, quant) —
// reprobing each built index across the nprobe grid — and reports
// recall@k, latency and slab bandwidth per cell.
func RunANN(cfg ANNConfig) (ANNResult, error) {
	if cfg.Dim <= 0 || cfg.K <= 0 || cfg.Queries <= 0 || cfg.Clusters <= 0 {
		return ANNResult{}, fmt.Errorf("experiments: Dim, K, Queries and Clusters must be positive")
	}
	if len(cfg.Scales) == 0 || len(cfg.NProbes) == 0 || len(cfg.Quants) == 0 {
		return ANNResult{}, fmt.Errorf("experiments: empty sweep")
	}
	out := ANNResult{Env: CollectEnvelope(), K: cfg.K, Queries: cfg.Queries, Seed: cfg.Seed}
	metric := distance.Euclidean{}

	for _, sc := range cfg.Scales {
		if sc.Rows < cfg.Clusters {
			return ANNResult{}, fmt.Errorf("experiments: scale %s has %d rows < %d clusters", sc.Label, sc.Rows, cfg.Clusters)
		}
		data, qs := annCollection(sc.Rows, cfg.Dim, cfg.Clusters, cfg.Queries, cfg.Seed)
		backend, err := store.FromRows(data)
		if err != nil {
			return ANNResult{}, err
		}
		scan, err := knn.NewScanBackend(backend)
		if err != nil {
			return ANNResult{}, err
		}
		sres := ANNScaleResult{Scale: sc.Label, Rows: sc.Rows, Dim: cfg.Dim}

		// Exact baseline: ground truth for recall, and the latency the
		// speedup column is measured against. One warm-up batch pass
		// first so first-touch cost does not land in the baseline.
		if _, err := scan.SearchBatch(qs[:min(len(qs), 32)], cfg.K, metric); err != nil {
			return ANNResult{}, err
		}
		t0 := time.Now()
		truth, err := scan.SearchBatch(qs, cfg.K, metric)
		if err != nil {
			return ANNResult{}, err
		}
		sres.ExactBatchMicros = float64(time.Since(t0).Nanoseconds()) / 1e3 / float64(len(qs))
		truthSets := make([]map[int]bool, len(truth))
		for i, rs := range truth {
			truthSets[i] = make(map[int]bool, len(rs))
			for _, r := range rs {
				truthSets[i][r.Index] = true
			}
		}
		sres.ExactP50Micros, sres.ExactP99Micros, err = latencyStats(len(qs), func(i int) error {
			_, err := scan.Search(qs[i], cfg.K, metric)
			return err
		})
		if err != nil {
			return ANNResult{}, err
		}
		exactBytes := float64(8 * sc.Rows * cfg.Dim)

		for _, nlist := range sc.NLists {
			for _, quant := range cfg.Quants {
				t0 := time.Now()
				idx, err := ann.Build(backend, ann.Options{
					NList: nlist, NProbe: cfg.NProbes[0], Quant: quant, Seed: cfg.Seed,
				})
				if err != nil {
					return ANNResult{}, fmt.Errorf("experiments: build nlist=%d quant=%s: %w", nlist, quant, err)
				}
				ires := ANNIndexResult{
					NList:       nlist,
					Quant:       quant.String(),
					BuildMillis: float64(time.Since(t0).Nanoseconds()) / 1e6,
					SlabBytes:   idx.SlabBytes(),
				}
				ires.BandwidthRatio = float64(ires.SlabBytes) / exactBytes

				for _, nprobe := range cfg.NProbes {
					if nprobe > nlist {
						continue
					}
					if err := idx.SetNProbe(nprobe); err != nil {
						return ANNResult{}, err
					}
					pt := ANNPointResult{NList: nlist, NProbe: nprobe, Quant: quant.String()}

					// Warm, then measure the batch path.
					if _, err := idx.SearchBatch(qs[:min(len(qs), 32)], cfg.K, metric); err != nil {
						return ANNResult{}, err
					}
					t0 := time.Now()
					got, err := idx.SearchBatch(qs, cfg.K, metric)
					if err != nil {
						return ANNResult{}, err
					}
					pt.BatchMicrosPerQuery = float64(time.Since(t0).Nanoseconds()) / 1e3 / float64(len(qs))
					if pt.BatchMicrosPerQuery > 0 {
						pt.Speedup = sres.ExactBatchMicros / pt.BatchMicrosPerQuery
					}

					hits := 0
					for i, rs := range got {
						for _, r := range rs {
							if truthSets[i][r.Index] {
								hits++
							}
						}
					}
					pt.RecallAtK = float64(hits) / float64(len(qs)*cfg.K)

					pt.P50Micros, pt.P99Micros, err = latencyStats(len(qs), func(i int) error {
						_, err := idx.Search(qs[i], cfg.K, metric)
						return err
					})
					if err != nil {
						return ANNResult{}, err
					}
					if pt.RecallAtK >= 0.95 {
						sres.BestSpeedupAtRecall = math.Max(sres.BestSpeedupAtRecall, pt.Speedup)
					}
					ires.Points = append(ires.Points, pt)
				}
				sres.Indexes = append(sres.Indexes, ires)
			}
		}
		out.Scales = append(out.Scales, sres)
	}
	return out, nil
}
