package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/histogram"
	"repro/internal/imagegen"
	"repro/internal/service"
	"repro/internal/shardedbypass"
)

// ShardConfig drives the sharded-bypass-plane benchmark: for each shard
// count S it measures the raw durable insert path under concurrent
// writers, a train phase and a bypass phase through the serving layer,
// and how much of the prediction cache survives a single-shard insert.
type ShardConfig struct {
	// Seed makes the collection, workloads and query streams deterministic.
	Seed int64
	// Scale multiplies the paper's collection cardinality.
	Scale float64
	// K is the result-list size per session.
	K int
	// Epsilon is the Simplex Tree insert threshold ε for the serving
	// phases (the insert microbench always uses ε = 0 so every write
	// exercises the full journal+tree path).
	Epsilon float64
	// Sessions is the number of complete sessions per serving phase.
	Sessions int
	// ShardCounts are the S values to sweep (default 1, 2, 4, 8).
	ShardCounts []int
	// InsertOps is the insert count of the write-throughput microbench.
	InsertOps int
	// Writers is the number of concurrent writer goroutines of the
	// microbench.
	Writers int
	// Trials repeats the insert microbench (fresh module each time),
	// interleaving the shard counts within each round, and keeps the
	// fastest run per shard count — one-sided noise (CPU stolen by
	// neighbors) can only slow a trial down, so the max is the least
	// contaminated estimate. 1 when zero.
	Trials int
	// Clients is the closed-loop client count of the serving phases.
	Clients int
	// CacheSize is the service's LRU prediction cache capacity.
	CacheSize int
}

// DefaultShardConfig is the operating point of the committed benchmark
// artifact.
func DefaultShardConfig() ShardConfig {
	return ShardConfig{
		Seed:        1,
		Scale:       0.3,
		K:           10,
		Epsilon:     0.05,
		Sessions:    128,
		ShardCounts: []int{1, 2, 4, 8},
		InsertOps:   4096,
		Writers:     8,
		Trials:      7,
		Clients:     8,
	}
}

// ShardLevelResult is one row of the sweep: every number is measured on a
// fresh sharded bypass with S partitions over the shared collection.
type ShardLevelResult struct {
	Shards int `json:"shards"`
	// Insert microbench: InsertOps durable inserts (WAL + tree, ε = 0)
	// from Writers concurrent goroutines; best of Trials runs.
	InsertOps       int     `json:"insert_ops"`
	InsertWallSecs  float64 `json:"insert_wall_secs"`
	InsertsPerSec   float64 `json:"inserts_per_sec"`
	InsertTrials    int     `json:"insert_trials"`
	ShardsTouched   int     `json:"shards_touched"`
	MaxShardInserts int64   `json:"max_shard_inserts"`
	// Serving phases (same protocol as the serve benchmark: train =
	// oracle feedback loops with inserts, bypass = the same stream
	// re-issued twice with no feedback, answered through the cache).
	Train  ServePhaseResult `json:"train"`
	Bypass ServePhaseResult `json:"bypass"`
	// Cache retention: with the cache warmed by the bypass phase, one
	// more training session inserts into exactly one shard;
	// CacheRetention is the fraction of cached entries that survive.
	// All-or-nothing invalidation (S = 1) scores 0 here.
	CacheEntriesBefore int     `json:"cache_entries_before"`
	CacheEntriesAfter  int     `json:"cache_entries_after"`
	CacheRetention     float64 `json:"cache_retention"`
}

// ShardResult is the full benchmark output.
type ShardResult struct {
	Collection int                `json:"collection"`
	Dim        int                `json:"dim"`
	K          int                `json:"k"`
	Writers    int                `json:"writers"`
	Clients    int                `json:"clients"`
	Levels     []ShardLevelResult `json:"levels"`
}

// RunShard builds one collection and engine, then sweeps the shard
// counts; each level gets a fresh sharded bypass so levels are
// independent trials (unlike the serve benchmark's warm-up trajectory).
func RunShard(cfg ShardConfig) (ShardResult, error) {
	if cfg.Scale <= 0 {
		return ShardResult{}, fmt.Errorf("experiments: scale must be positive, got %v", cfg.Scale)
	}
	if cfg.Sessions <= 0 || cfg.K <= 0 || cfg.InsertOps <= 0 || cfg.Writers <= 0 || cfg.Clients <= 0 {
		return ShardResult{}, fmt.Errorf("experiments: non-positive shard-benchmark parameter: %+v", cfg)
	}
	if len(cfg.ShardCounts) == 0 {
		cfg.ShardCounts = []int{1, 2, 4, 8}
	}
	ds, err := dataset.Build(imagegen.IMSILike(cfg.Seed, cfg.Scale), histogram.DefaultExtractor)
	if err != nil {
		return ShardResult{}, err
	}
	eng, err := engine.New(ds, engine.Options{})
	if err != nil {
		return ShardResult{}, err
	}
	codec, err := core.NewHistogramCodec(ds.Dim)
	if err != nil {
		return ShardResult{}, err
	}
	out := ShardResult{Collection: ds.Len(), Dim: ds.Dim, K: cfg.K, Writers: cfg.Writers, Clients: cfg.Clients}
	out.Levels = make([]ShardLevelResult, len(cfg.ShardCounts))
	for i, s := range cfg.ShardCounts {
		if s <= 0 {
			return ShardResult{}, fmt.Errorf("experiments: non-positive shard count %d", s)
		}
		out.Levels[i] = ShardLevelResult{Shards: s}
	}

	// Insert microbench first, with trials interleaved across the shard
	// counts: on a shared host the available CPU drifts over seconds, so
	// running every S inside each trial round exposes all levels to the
	// same noise windows and best-of-trials compares like with like.
	rng := rand.New(rand.NewSource(cfg.Seed + 7777))
	qs := make([][]float64, cfg.InsertOps)
	oqps := make([]core.OQP, cfg.InsertOps)
	for i := range qs {
		qs[i] = randomInterior(rng, codec.D())
		oqps[i] = core.OQP{Delta: randomVec(rng, codec.D(), 0.05), Weights: randomVec(rng, codec.P(), 0.5)}
	}
	trials := cfg.Trials
	if trials <= 0 {
		trials = 1
	}
	for trial := 0; trial < trials; trial++ {
		for i := range out.Levels {
			level := &out.Levels[i]
			wall, infos, err := runInsertTrial(codec, cfg, level.Shards, qs, oqps)
			if err != nil {
				return ShardResult{}, err
			}
			level.InsertOps = cfg.InsertOps
			level.InsertTrials = trials
			if level.InsertWallSecs != 0 && wall.Seconds() >= level.InsertWallSecs {
				continue
			}
			level.InsertWallSecs = wall.Seconds()
			level.InsertsPerSec = float64(cfg.InsertOps) / wall.Seconds()
			level.ShardsTouched = 0
			level.MaxShardInserts = 0
			for _, info := range infos {
				if info.Inserts > 0 {
					level.ShardsTouched++
				}
				if info.Inserts > level.MaxShardInserts {
					level.MaxShardInserts = info.Inserts
				}
			}
		}
	}

	for i := range out.Levels {
		if err := runShardServePhases(eng, ds, codec, cfg, &out.Levels[i]); err != nil {
			return ShardResult{}, err
		}
	}
	return out, nil
}

// runShardServePhases fills in the serving-layer measurements of one
// level: a fresh in-memory sharded bypass behind the full service
// (matching the serve benchmark's protocol so the S = 1 row is
// comparable to benchmarks/bench_serve.json), then the cache-retention
// instrument.
func runShardServePhases(eng *engine.Engine, ds *dataset.Dataset, codec core.HistogramCodec, cfg ShardConfig, level *ShardLevelResult) error {
	shards := level.Shards
	byp, err := shardedbypass.New(codec.D(), codec.P(), core.Config{
		Epsilon:        cfg.Epsilon,
		DefaultWeights: codec.DefaultWeights(),
	}, shardedbypass.Options{Shards: shards})
	if err != nil {
		return err
	}
	svc, err := service.New(eng, byp, service.Options{
		MaxSessions: 1 << 16,
		CacheSize:   cfg.CacheSize,
		DefaultK:    cfg.K,
	})
	if err != nil {
		return err
	}
	srng := rand.New(rand.NewSource(cfg.Seed + int64(shards)*271))
	items, err := ds.SampleQueries(srng, cfg.Sessions)
	if err != nil {
		return err
	}
	phaseCfg := ServeConfig{K: cfg.K}
	if level.Train, err = runServePhase(svc, ds, phaseCfg, cfg.Clients, items, true); err != nil {
		return err
	}
	twice := make([]int, 0, 2*len(items))
	twice = append(twice, items...)
	twice = append(twice, items...)
	if level.Bypass, err = runServePhase(svc, ds, phaseCfg, cfg.Clients, twice, false); err != nil {
		return err
	}

	// --- Cache retention: the cache is warm from the bypass phase; drive
	// training sessions until one inserts, then compare occupancy. The
	// occupancy snapshots bracket exactly the inserting Close — sessions
	// only add cache entries at Open (Feedback never predicts), so the
	// only mutation between the two snapshots is that Close's
	// invalidation, and probe sessions whose insert was ε-rejected cannot
	// bias the ratio. The insert lands in exactly one shard, so S−1 of S
	// shards keep their entries (S = 1 drops everything — the
	// pre-sharding behavior).
	inserted := false
	for tries := 0; tries < 64 && !inserted; tries++ {
		idx := ds.Items[srng.Intn(ds.Len())]
		st, err := svc.Open(context.Background(), idx.Feature, cfg.K)
		if err != nil {
			return err
		}
		for !st.Converged {
			scores := make([]float64, len(st.Results))
			for i, r := range st.Results {
				if ds.IsGood(r.Index, idx.Category) {
					scores[i] = 1
				}
			}
			if st, err = svc.Feedback(context.Background(), st.ID, scores); err != nil {
				return err
			}
		}
		before := svc.Stats().CacheEntries
		res, err := svc.Close(context.Background(), st.ID)
		if err != nil {
			return err
		}
		inserted = res.Inserted
		if inserted {
			level.CacheEntriesBefore = before
			level.CacheEntriesAfter = svc.Stats().CacheEntries
			if before > 0 {
				level.CacheRetention = float64(level.CacheEntriesAfter) / float64(before)
			}
		}
	}
	if !inserted {
		return fmt.Errorf("experiments: no training session inserted (shards=%d)", shards)
	}
	return nil
}

// runInsertTrial writes the point stream into a fresh durable sharded
// module from cfg.Writers concurrent goroutines and returns the wall
// time and final per-shard counters.
func runInsertTrial(codec core.HistogramCodec, cfg ShardConfig, shards int, qs [][]float64, oqps []core.OQP) (time.Duration, []shardedbypass.ShardInfo, error) {
	dir, err := os.MkdirTemp("", "fbshard-bench")
	if err != nil {
		return 0, nil, err
	}
	defer os.RemoveAll(dir)
	target, err := shardedbypass.Open(dir, codec.D(), codec.P(), core.Config{
		Epsilon:        0,
		DefaultWeights: codec.DefaultWeights(),
	}, shardedbypass.Options{Shards: shards})
	if err != nil {
		return 0, nil, err
	}
	defer target.Close()
	var next atomic.Int64
	var wg sync.WaitGroup
	werrs := make([]error, cfg.Writers)
	start := time.Now()
	for w := 0; w < cfg.Writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(qs) {
					return
				}
				if _, err := target.Insert(qs[i], oqps[i]); err != nil {
					werrs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)
	for _, err := range werrs {
		if err != nil {
			return 0, nil, err
		}
	}
	return wall, target.ShardInfos(), nil
}

// randomInterior samples a strictly interior point of the standard
// simplex of dimension d (the tree's query domain).
func randomInterior(rng *rand.Rand, d int) []float64 {
	w := make([]float64, d+1)
	var sum float64
	for i := range w {
		w[i] = 0.05 + rng.Float64()
		sum += w[i]
	}
	q := make([]float64, d)
	for i := 0; i < d; i++ {
		q[i] = w[i+1] / sum
	}
	return q
}

func randomVec(rng *rand.Rand, n int, scale float64) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64() * scale
	}
	return v
}
