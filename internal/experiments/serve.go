package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/histogram"
	"repro/internal/imagegen"
	"repro/internal/service"
)

// ServeConfig drives the closed-loop serving benchmark: oracle-driven
// sessions (the session-replay protocol of §5, §ProcessQuery, re-cast as
// concurrent clients) against one shared service.
type ServeConfig struct {
	// Seed makes the collection and query streams deterministic.
	Seed int64
	// Scale multiplies the paper's collection cardinality.
	Scale float64
	// K is the result-list size per session.
	K int
	// Epsilon is the Simplex Tree insert threshold ε.
	Epsilon float64
	// SessionsPerLevel is the number of complete sessions each
	// concurrency level runs.
	SessionsPerLevel int
	// Levels are the closed-loop client counts to measure (default
	// 1, 4, 8, 16).
	Levels []int
	// IterationBudget bounds feedback rounds per session.
	IterationBudget int
	// CacheSize is the service's LRU prediction cache capacity.
	CacheSize int
}

// DefaultServeConfig is the operating point of the committed benchmark
// artifact.
func DefaultServeConfig() ServeConfig {
	return ServeConfig{
		Seed:             1,
		Scale:            0.3,
		K:                10,
		Epsilon:          0.05,
		SessionsPerLevel: 128,
		Levels:           []int{1, 4, 8, 16},
	}
}

// ServePhaseResult measures one phase of a concurrency level: a set of
// complete sessions with their throughput, per-operation latency
// distribution, and bypass effectiveness.
type ServePhaseResult struct {
	Sessions int `json:"sessions"`
	// Ops counts service calls (Open + Feedback + Close).
	Ops int `json:"ops"`
	// Feedbacks counts feedback rounds across the phase's sessions.
	Feedbacks int     `json:"feedbacks"`
	WallSecs  float64 `json:"wall_secs"`
	// SessionsPerSec is completed sessions per wall-clock second.
	SessionsPerSec float64 `json:"sessions_per_sec"`
	// P50/P99 are per-operation latencies in microseconds.
	P50Micros float64 `json:"p50_us"`
	P99Micros float64 `json:"p99_us"`
	// CacheHitRate is LRU hits / predictions; WarmRate the fraction of
	// sessions whose prediction was non-default (the tree had learned the
	// region); Inserted the closes that changed the tree.
	CacheHitRate float64 `json:"cache_hit_rate"`
	WarmRate     float64 `json:"warm_rate"`
	Inserted     int64   `json:"inserted"`
}

// ServeLevelResult is one row of the serving benchmark. Each level runs
// two phases at the same client count: Train — interactive sessions
// driving the oracle feedback loop to convergence and inserting outcomes
// (inserts invalidate the prediction cache, so its hit rate is naturally
// near zero here) — and Bypass, the paper's payoff workload: the same
// query stream re-issued without feedback, answered straight from the
// trained tree through the LRU cache.
type ServeLevelResult struct {
	Clients int              `json:"clients"`
	Train   ServePhaseResult `json:"train"`
	Bypass  ServePhaseResult `json:"bypass"`
}

// ServeResult is the full benchmark output.
type ServeResult struct {
	Collection int                `json:"collection"`
	Dim        int                `json:"dim"`
	K          int                `json:"k"`
	Levels     []ServeLevelResult `json:"levels"`
	// FinalStats snapshots the service after every level ran (the tree
	// keeps warming across levels — levels are a time series over one
	// service, not independent trials).
	FinalStats service.Stats `json:"final_stats"`
}

// RunServe builds a collection, a shared engine + Bypass + service, and
// measures closed-loop oracle-driven sessions at each concurrency level.
// The service is shared across levels, so later levels run against a
// warmer tree — exactly a production service's trajectory.
func RunServe(cfg ServeConfig) (ServeResult, error) {
	if cfg.Scale <= 0 {
		return ServeResult{}, fmt.Errorf("experiments: scale must be positive, got %v", cfg.Scale)
	}
	if cfg.SessionsPerLevel <= 0 {
		return ServeResult{}, fmt.Errorf("experiments: need at least one session per level, got %d", cfg.SessionsPerLevel)
	}
	if cfg.K <= 0 {
		return ServeResult{}, fmt.Errorf("experiments: k must be positive, got %d", cfg.K)
	}
	if len(cfg.Levels) == 0 {
		cfg.Levels = []int{1, 4, 8, 16}
	}
	ds, err := dataset.Build(imagegen.IMSILike(cfg.Seed, cfg.Scale), histogram.DefaultExtractor)
	if err != nil {
		return ServeResult{}, err
	}
	eng, err := engine.New(ds, engine.Options{})
	if err != nil {
		return ServeResult{}, err
	}
	codec, err := core.NewHistogramCodec(ds.Dim)
	if err != nil {
		return ServeResult{}, err
	}
	byp, err := core.New(codec.D(), codec.P(), core.Config{
		Epsilon:        cfg.Epsilon,
		DefaultWeights: codec.DefaultWeights(),
	})
	if err != nil {
		return ServeResult{}, err
	}
	svc, err := service.New(eng, byp, service.Options{
		MaxSessions:     1 << 16, // closed loop: admission never binds
		IterationBudget: cfg.IterationBudget,
		CacheSize:       cfg.CacheSize,
		DefaultK:        cfg.K,
	})
	if err != nil {
		return ServeResult{}, err
	}
	out := ServeResult{Collection: ds.Len(), Dim: ds.Dim, K: cfg.K}
	for _, clients := range cfg.Levels {
		if clients <= 0 {
			return ServeResult{}, fmt.Errorf("experiments: non-positive client count %d", clients)
		}
		level, err := runServeLevel(svc, ds, cfg, clients)
		if err != nil {
			return ServeResult{}, err
		}
		out.Levels = append(out.Levels, level)
	}
	out.FinalStats = svc.Stats()
	return out, nil
}

// runServeLevel measures one concurrency level: a train phase (feedback
// loops to convergence, outcomes inserted) followed by a bypass phase
// (the same query stream re-issued without feedback) at the same client
// count.
func runServeLevel(svc *service.Service, ds *dataset.Dataset, cfg ServeConfig, clients int) (ServeLevelResult, error) {
	rng := rand.New(rand.NewSource(cfg.Seed + int64(clients)*1009))
	items, err := ds.SampleQueries(rng, cfg.SessionsPerLevel)
	if err != nil {
		return ServeLevelResult{}, err
	}
	train, err := runServePhase(svc, ds, cfg, clients, items, true)
	if err != nil {
		return ServeLevelResult{}, err
	}
	// The bypass phase re-issues the stream twice: every query in the
	// first pass misses the (insert-invalidated) cache and fills it; the
	// second pass models the repeat traffic an interactive service
	// actually sees and is answered from the LRU.
	twice := make([]int, 0, 2*len(items))
	twice = append(twice, items...)
	twice = append(twice, items...)
	bypass, err := runServePhase(svc, ds, cfg, clients, twice, false)
	if err != nil {
		return ServeLevelResult{}, err
	}
	return ServeLevelResult{Clients: clients, Train: train, Bypass: bypass}, nil
}

// runServePhase drives `clients` goroutines through complete sessions
// over the shared query stream. With feedback, sessions run the oracle
// loop to convergence; without, they are pure bypass reads (Open + Close).
func runServePhase(svc *service.Service, ds *dataset.Dataset, cfg ServeConfig, clients int, items []int, withFeedback bool) (ServePhaseResult, error) {
	before := svc.Stats()

	type clientOut struct {
		latencies []time.Duration
		feedbacks int
		err       error
	}
	outs := make([]clientOut, clients)
	next := make(chan int)
	done := make(chan struct{})
	go func() {
		defer close(next)
		for i := range items {
			select {
			case next <- i:
			case <-done:
				return
			}
		}
	}()
	start := time.Now()
	wgDone := make(chan struct{}, clients)
	for c := 0; c < clients; c++ {
		go func(c int) {
			defer func() { wgDone <- struct{}{} }()
			o := &outs[c]
			for idx := range next {
				item := ds.Items[items[idx]]
				t0 := time.Now()
				st, err := svc.Open(context.Background(), item.Feature, cfg.K)
				o.latencies = append(o.latencies, time.Since(t0))
				if err != nil {
					o.err = err
					return
				}
				for withFeedback && !st.Converged {
					scores := make([]float64, len(st.Results))
					for i, r := range st.Results {
						if ds.IsGood(r.Index, item.Category) {
							scores[i] = 1
						}
					}
					t0 = time.Now()
					st, err = svc.Feedback(context.Background(), st.ID, scores)
					o.latencies = append(o.latencies, time.Since(t0))
					if err != nil {
						o.err = err
						return
					}
					o.feedbacks++
				}
				t0 = time.Now()
				_, err = svc.Close(context.Background(), st.ID)
				o.latencies = append(o.latencies, time.Since(t0))
				if err != nil {
					o.err = err
					return
				}
			}
		}(c)
	}
	for c := 0; c < clients; c++ {
		<-wgDone
	}
	close(done)
	wall := time.Since(start)

	var all []time.Duration
	feedbacks := 0
	for c := range outs {
		if outs[c].err != nil {
			return ServePhaseResult{}, outs[c].err
		}
		all = append(all, outs[c].latencies...)
		feedbacks += outs[c].feedbacks
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	after := svc.Stats()

	res := ServePhaseResult{
		Sessions:       len(items),
		Ops:            len(all),
		Feedbacks:      feedbacks,
		WallSecs:       wall.Seconds(),
		SessionsPerSec: float64(len(items)) / wall.Seconds(),
		P50Micros:      float64(percentile(all, 0.50).Microseconds()),
		P99Micros:      float64(percentile(all, 0.99).Microseconds()),
		Inserted:       after.InsertsStored - before.InsertsStored,
	}
	if dp := after.Predictions - before.Predictions; dp > 0 {
		res.CacheHitRate = float64(after.CacheHits-before.CacheHits) / float64(dp)
	}
	if do := after.Opened - before.Opened; do > 0 {
		res.WarmRate = float64(after.WarmStarts-before.WarmStarts) / float64(do)
	}
	return res, nil
}

// percentile returns the p-quantile (0 ≤ p ≤ 1) of sorted durations by
// nearest-rank.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}
