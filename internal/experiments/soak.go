package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/histogram"
	"repro/internal/imagegen"
	"repro/internal/obsv"
	"repro/internal/service"
)

// SoakConfig drives the soak instrument: a duration-bounded closed loop
// of oracle-driven sessions against one instrumented service, sampled
// on an interval. Where the serve benchmark measures throughput at
// fixed session counts, the soak answers the operational questions —
// does latency hold across minutes of sustained load, does memory
// creep, what fraction of sessions meet the interactivity budgets.
type SoakConfig struct {
	// Seed makes the collection and query streams deterministic.
	Seed int64
	// Scale multiplies the paper's collection cardinality.
	Scale float64
	// K is the result-list size per session.
	K int
	// Epsilon is the Simplex Tree insert threshold ε.
	Epsilon float64
	// Clients is the closed-loop client count.
	Clients int
	// Duration bounds the run.
	Duration time.Duration
	// SampleEvery is the registry/runtime sampling interval.
	SampleEvery time.Duration
	// IterationBudget bounds feedback rounds per session.
	IterationBudget int
	// CacheSize is the service's LRU prediction cache capacity.
	CacheSize int
	// Obs receives the service/WAL/shard instruments; a private registry
	// is created when nil so the result always carries a snapshot.
	Obs *obsv.Registry
}

// DefaultSoakConfig is the committed-artifact operating point: small
// enough for CI, long enough that the sampler sees several intervals.
func DefaultSoakConfig() SoakConfig {
	return SoakConfig{
		Seed:        1,
		Scale:       0.3,
		K:           10,
		Epsilon:     0.05,
		Clients:     8,
		Duration:    10 * time.Second,
		SampleEvery: time.Second,
	}
}

// SoakSample is one point of the time series: cumulative work counters
// next to the process's memory and scheduler state, so a leak or a GC
// death spiral shows as a trend, not a single end-state number.
type SoakSample struct {
	ElapsedSecs    float64 `json:"elapsed_secs"`
	Sessions       uint64  `json:"sessions"`
	Ops            uint64  `json:"ops"`
	HeapAllocBytes uint64  `json:"heap_alloc_bytes"`
	// RSSBytes is resident memory from /proc/self/statm (0 where the
	// proc filesystem is unavailable).
	RSSBytes   uint64 `json:"rss_bytes"`
	Goroutines int    `json:"goroutines"`
	GCCycles   uint32 `json:"gc_cycles"`
}

// SoakBudget is one interactivity budget row: the fraction of complete
// sessions (Open → feedback rounds → Close, wall clock) that finished
// within the budget.
type SoakBudget struct {
	BudgetSecs float64 `json:"budget_secs"`
	Sessions   uint64  `json:"sessions"`
	Fraction   float64 `json:"fraction"`
}

// SoakOpLatency is one service operation's latency distribution, read
// back from the observability registry — the soak consumes the same
// series /metrics exposes, so the report doubles as a check that the
// instrumentation plane measures what operators will scrape.
type SoakOpLatency struct {
	Op      string  `json:"op"`
	Count   uint64  `json:"count"`
	P50Secs float64 `json:"p50_secs"`
	P95Secs float64 `json:"p95_secs"`
	P99Secs float64 `json:"p99_secs"`
}

// SoakResult is the full soak report.
type SoakResult struct {
	Collection   int     `json:"collection"`
	Dim          int     `json:"dim"`
	K            int     `json:"k"`
	Clients      int     `json:"clients"`
	DurationSecs float64 `json:"duration_secs"`
	Sessions     uint64  `json:"sessions"`
	Ops          uint64  `json:"ops"`
	// SessionsPerSec is completed sessions per wall-clock second over the
	// whole run.
	SessionsPerSec float64 `json:"sessions_per_sec"`
	// Budgets reports the 100ms/500ms interactivity fractions.
	Budgets []SoakBudget `json:"budgets"`
	// OpLatencies are per-operation quantiles from the registry.
	OpLatencies []SoakOpLatency `json:"op_latencies"`
	Samples     []SoakSample    `json:"samples"`
	FinalStats  service.Stats   `json:"final_stats"`
	// Metrics is the full registry snapshot at shutdown — every series
	// the /metrics endpoint would have served.
	Metrics *obsv.Snapshot `json:"metrics"`
}

// InteractivityBudgets are the session wall-clock budgets the soak
// reports against: the sub-100ms "feels instantaneous" bar and the
// 500ms "still interactive" bar of interactive-exploration benchmarks.
var InteractivityBudgets = []float64{0.100, 0.500}

// RunSoak builds an instrumented serving stack and drives closed-loop
// oracle sessions for cfg.Duration, sampling the registry and runtime
// every cfg.SampleEvery.
func RunSoak(cfg SoakConfig) (SoakResult, error) {
	if cfg.Scale <= 0 {
		return SoakResult{}, fmt.Errorf("experiments: scale must be positive, got %v", cfg.Scale)
	}
	if cfg.K <= 0 {
		return SoakResult{}, fmt.Errorf("experiments: k must be positive, got %d", cfg.K)
	}
	if cfg.Clients <= 0 {
		return SoakResult{}, fmt.Errorf("experiments: need at least one client, got %d", cfg.Clients)
	}
	if cfg.Duration <= 0 {
		return SoakResult{}, fmt.Errorf("experiments: duration must be positive, got %v", cfg.Duration)
	}
	if cfg.SampleEvery <= 0 {
		cfg.SampleEvery = time.Second
	}
	reg := cfg.Obs
	if reg == nil {
		reg = obsv.NewRegistry()
	}
	ds, err := dataset.Build(imagegen.IMSILike(cfg.Seed, cfg.Scale), histogram.DefaultExtractor)
	if err != nil {
		return SoakResult{}, err
	}
	eng, err := engine.New(ds, engine.Options{})
	if err != nil {
		return SoakResult{}, err
	}
	codec, err := core.NewHistogramCodec(ds.Dim)
	if err != nil {
		return SoakResult{}, err
	}
	byp, err := core.New(codec.D(), codec.P(), core.Config{
		Epsilon:        cfg.Epsilon,
		DefaultWeights: codec.DefaultWeights(),
	})
	if err != nil {
		return SoakResult{}, err
	}
	svc, err := service.New(eng, byp, service.Options{
		MaxSessions:     1 << 16, // closed loop: admission never binds
		IterationBudget: cfg.IterationBudget,
		CacheSize:       cfg.CacheSize,
		DefaultK:        cfg.K,
		Obs:             reg,
		ObsLabels:       []obsv.Label{obsv.L("collection", "soak")},
	})
	if err != nil {
		return SoakResult{}, err
	}

	var (
		sessions atomic.Uint64
		ops      atomic.Uint64
		// withinBudget[i] counts sessions whose wall time fit
		// InteractivityBudgets[i].
		withinBudget = make([]atomic.Uint64, len(InteractivityBudgets))
		clientErr    atomic.Value
	)
	ctx, cancel := context.WithTimeout(context.Background(), cfg.Duration)
	defer cancel()

	var wg sync.WaitGroup
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(c)*7919))
			for ctx.Err() == nil {
				item := ds.Items[rng.Intn(ds.Len())]
				t0 := time.Now()
				n, err := runSoakSession(svc, ds, item, cfg.K)
				if err != nil {
					// Shutdown races (ctx expired mid-session) are expected;
					// anything else aborts the soak.
					if ctx.Err() != nil {
						return
					}
					clientErr.Store(err)
					cancel()
					return
				}
				wall := time.Since(t0).Seconds()
				sessions.Add(1)
				ops.Add(uint64(n))
				for i, b := range InteractivityBudgets {
					if wall <= b {
						withinBudget[i].Add(1)
					}
				}
			}
		}(c)
	}

	start := time.Now()
	out := SoakResult{Collection: ds.Len(), Dim: ds.Dim, K: cfg.K, Clients: cfg.Clients}
	ticker := time.NewTicker(cfg.SampleEvery)
	for running := true; running; {
		select {
		case <-ticker.C:
			out.Samples = append(out.Samples, collectSoakSample(start, &sessions, &ops))
		case <-ctx.Done():
			running = false
		}
	}
	ticker.Stop()
	wg.Wait()
	if err, _ := clientErr.Load().(error); err != nil {
		return SoakResult{}, err
	}
	// One terminal sample so the series always covers the full run.
	out.Samples = append(out.Samples, collectSoakSample(start, &sessions, &ops))

	wall := time.Since(start).Seconds()
	out.DurationSecs = wall
	out.Sessions = sessions.Load()
	out.Ops = ops.Load()
	if wall > 0 {
		out.SessionsPerSec = float64(out.Sessions) / wall
	}
	for i, b := range InteractivityBudgets {
		row := SoakBudget{BudgetSecs: b, Sessions: withinBudget[i].Load()}
		if out.Sessions > 0 {
			row.Fraction = float64(row.Sessions) / float64(out.Sessions)
		}
		out.Budgets = append(out.Budgets, row)
	}
	out.FinalStats = svc.Stats()
	out.Metrics = reg.Snapshot()
	for _, op := range []string{"open", "feedback", "close", "predict"} {
		m := out.Metrics.Find("fb_service_request_seconds", obsv.L("op", op))
		if m == nil || m.Hist == nil || m.Hist.Count == 0 {
			continue
		}
		out.OpLatencies = append(out.OpLatencies, SoakOpLatency{
			Op:      op,
			Count:   m.Hist.Count,
			P50Secs: m.Hist.Quantile(0.50),
			P95Secs: m.Hist.Quantile(0.95),
			P99Secs: m.Hist.Quantile(0.99),
		})
	}
	return out, nil
}

// runSoakSession drives one full oracle-scored session and returns the
// number of service calls it made.
func runSoakSession(svc *service.Service, ds *dataset.Dataset, item dataset.Item, k int) (int, error) {
	ctx := context.Background()
	st, err := svc.Open(ctx, item.Feature, k)
	if err != nil {
		return 0, err
	}
	n := 1
	for !st.Converged {
		scores := make([]float64, len(st.Results))
		for i, r := range st.Results {
			if ds.IsGood(r.Index, item.Category) {
				scores[i] = 1
			}
		}
		st, err = svc.Feedback(ctx, st.ID, scores)
		n++
		if err != nil {
			return n, err
		}
	}
	_, err = svc.Close(ctx, st.ID)
	n++
	return n, err
}

// collectSoakSample reads the cumulative counters and the runtime.
func collectSoakSample(start time.Time, sessions, ops *atomic.Uint64) SoakSample {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return SoakSample{
		ElapsedSecs:    time.Since(start).Seconds(),
		Sessions:       sessions.Load(),
		Ops:            ops.Load(),
		HeapAllocBytes: ms.HeapAlloc,
		RSSBytes:       readRSS(),
		Goroutines:     runtime.NumGoroutine(),
		GCCycles:       ms.NumGC,
	}
}

// readRSS reports resident memory from /proc/self/statm (second field,
// in pages). Returns 0 on platforms without procfs — the sample's heap
// number still stands.
func readRSS() uint64 {
	data, err := os.ReadFile("/proc/self/statm")
	if err != nil {
		return 0
	}
	fields := strings.Fields(string(data))
	if len(fields) < 2 {
		return 0
	}
	pages, err := strconv.ParseUint(fields[1], 10, 64)
	if err != nil {
		return 0
	}
	return pages * uint64(os.Getpagesize())
}
