package experiments

import (
	"testing"
)

func TestFigure10Shapes(t *testing.T) {
	s := getSession(t)
	res, err := Figure10(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.K != s.Config.K {
		t.Errorf("K = %d", res.K)
	}
	for _, series := range []struct {
		name string
		len  int
	}{
		{"default", res.Precision.Default.Len()},
		{"bypass", res.Precision.Bypass.Len()},
		{"seen", res.Precision.AlreadySeen.Len()},
	} {
		if series.len == 0 {
			t.Errorf("%s series empty", series.name)
		}
	}
	// X axes aligned and increasing.
	for i := 1; i < res.Precision.Default.Len(); i++ {
		if res.Precision.Default.X[i] <= res.Precision.Default.X[i-1] {
			t.Fatal("X not increasing")
		}
	}
	// All precisions in [0,1].
	for _, ys := range [][]float64{res.Precision.Default.Y, res.Precision.Bypass.Y, res.Precision.AlreadySeen.Y} {
		for _, y := range ys {
			if y < 0 || y > 1 {
				t.Fatalf("precision %v out of range", y)
			}
		}
	}
	// Final-point ordering: AlreadySeen ≥ Default (the loop can only help).
	n := res.Precision.Default.Len() - 1
	if res.Precision.AlreadySeen.Y[n] < res.Precision.Default.Y[n] {
		t.Errorf("final AlreadySeen %v below Default %v", res.Precision.AlreadySeen.Y[n], res.Precision.Default.Y[n])
	}
	// Gains parallel the precision series.
	if res.GainFB.Len() == 0 || res.GainSeen.Len() == 0 {
		t.Error("gain series empty")
	}
	if res.GainSeen.Y[res.GainSeen.Len()-1] < 0 {
		t.Errorf("final AlreadySeen gain negative: %v", res.GainSeen.Y[res.GainSeen.Len()-1])
	}
}

func TestFigure10RequiresRecords(t *testing.T) {
	cfg := TestConfig()
	s, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Figure10(s); err == nil {
		t.Error("empty session should error")
	}
	if _, err := Figure14(s); err == nil {
		t.Error("empty session should error for Figure14")
	}
	if _, err := Figure16(s); err == nil {
		t.Error("empty session should error for Figure16")
	}
	if _, err := Figure11(s, nil, 5); err == nil {
		t.Error("empty session should error for Figure11")
	}
}

func TestFigure11Shapes(t *testing.T) {
	s := getSession(t)
	ks := []int{5, 10, 20}
	res, err := Figure11(s, ks, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Ks) != 3 {
		t.Fatalf("Ks = %v", res.Ks)
	}
	if res.Precision.Default.Len() != 3 || res.Recall.Bypass.Len() != 3 || res.PR.AlreadySeen.Len() != 3 {
		t.Fatal("series lengths wrong")
	}
	// Precision decreases (weakly) with k on average; recall increases.
	pd := res.Precision.Default.Y
	if pd[0] < pd[len(pd)-1]-0.05 {
		t.Errorf("default precision should fall with k: %v", pd)
	}
	rd := res.Recall.Default.Y
	if rd[len(rd)-1] < rd[0] {
		t.Errorf("default recall should rise with k: %v", rd)
	}
	// PR curve X equals recall Y.
	for i := range res.PR.Default.X {
		if res.PR.Default.X[i] != res.Recall.Default.Y[i] {
			t.Fatal("PR X should be recall")
		}
	}
}

func TestFigure12And13SmallRun(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-session figure in -short mode")
	}
	cfg := TestConfig()
	cfg.NumQueries = 20
	res12, err := Figure12(cfg, []int{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(res12.Precision) != 2 || len(res12.Recall) != 2 {
		t.Fatalf("Figure12 series count: %d, %d", len(res12.Precision), len(res12.Recall))
	}
	if res12.Precision[0].Len() == 0 {
		t.Error("Figure12 precision series empty")
	}
	// Recall at larger k dominates recall at smaller k at the final point.
	n0 := res12.Recall[0].Len() - 1
	n1 := res12.Recall[1].Len() - 1
	if res12.Recall[1].Y[n1] < res12.Recall[0].Y[n0] {
		t.Errorf("recall(k=10)=%v below recall(k=5)=%v", res12.Recall[1].Y[n1], res12.Recall[0].Y[n0])
	}

	res13, err := Figure13(cfg, []int{5, 10}, []int{5, 15}, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(res13.Precision) != 2 || res13.Precision[0].Len() != 2 {
		t.Fatal("Figure13 shape wrong")
	}
	for _, series := range res13.Precision {
		for _, y := range series.Y {
			if y < 0 || y > 1 {
				t.Fatalf("precision %v out of range", y)
			}
		}
	}
}

func TestFigure14Shapes(t *testing.T) {
	s := getSession(t)
	res, err := Figure14(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Fatal("no categories")
	}
	total := 0
	for _, c := range res {
		total += c.Queries
		if c.PrecDefault < 0 || c.PrecDefault > 1 || c.RecallSeen < 0 || c.RecallSeen > 1 {
			t.Errorf("%s: metrics out of range: %+v", c.Category, c)
		}
		if c.PrecSeen+1e-9 < c.PrecDefault-0.2 {
			t.Errorf("%s: AlreadySeen far below default", c.Category)
		}
	}
	if total != len(s.Records) {
		t.Errorf("category query counts sum to %d, want %d", total, len(s.Records))
	}
}

func TestFigure15SmallRun(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-session figure in -short mode")
	}
	cfg := TestConfig()
	cfg.NumQueries = 20
	res, err := Figure15(cfg, []int{5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SavedCycles) != 1 || len(res.SavedObjects) != 1 {
		t.Fatal("series count wrong")
	}
	sc := res.SavedCycles[0]
	so := res.SavedObjects[0]
	if sc.Len() == 0 || so.Len() != sc.Len() {
		t.Fatal("series lengths wrong")
	}
	for i := range sc.Y {
		want := sc.Y[i] * 5
		if so.Y[i] != want {
			t.Fatalf("SavedObjects[%d] = %v, want cycles×k = %v", i, so.Y[i], want)
		}
	}
}

func TestFigure16Shapes(t *testing.T) {
	s := getSession(t)
	res, err := Figure16(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Traversed.Len() == 0 || res.Depth.Len() == 0 {
		t.Fatal("empty series")
	}
	// Depth is a non-decreasing step function; traversed stays below it.
	for i := 1; i < res.Depth.Len(); i++ {
		if res.Depth.Y[i] < res.Depth.Y[i-1] {
			t.Error("depth decreased")
		}
	}
	lastT := res.Traversed.Y[res.Traversed.Len()-1]
	lastD := res.Depth.Y[res.Depth.Len()-1]
	if lastT > lastD {
		t.Errorf("avg traversed %v exceeds depth %v", lastT, lastD)
	}
	if lastT < 1 {
		t.Errorf("avg traversed %v below 1", lastT)
	}
}

func TestFigure1Driver(t *testing.T) {
	s := getSession(t)
	idx := s.Records[0].ItemIndex
	res, err := Figure1(s, idx, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.DefaultTop) != 5 || len(res.BypassTop) != 5 {
		t.Fatalf("top lists: %d, %d", len(res.DefaultTop), len(res.BypassTop))
	}
	if res.QueryCategory == "" {
		t.Error("missing category")
	}
	countGood := func(lines []ResultLine) int {
		n := 0
		for _, l := range lines {
			if l.Good {
				n++
			}
		}
		return n
	}
	if countGood(res.DefaultTop) != res.GoodDefault || countGood(res.BypassTop) != res.GoodBypass {
		t.Error("good counts inconsistent with lines")
	}
	if _, err := Figure1(s, -1, 5); err == nil {
		t.Error("bad index should error")
	}
	// n defaulting.
	res2, err := Figure1(s, idx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.DefaultTop) != 5 {
		t.Errorf("default n = %d", len(res2.DefaultTop))
	}
}

func TestFigure9Driver(t *testing.T) {
	s := getSession(t)
	samples, err := Figure9(s, "Fish", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 3 {
		t.Fatalf("samples = %d", len(samples))
	}
	for _, smp := range samples {
		if s.DS.Items[smp.ItemIndex].Category != "Fish" {
			t.Error("sample not from Fish")
		}
		if len(smp.DominantBins) == 0 {
			t.Error("no dominant bins")
		}
		if smp.Theme == "" {
			t.Error("missing theme")
		}
	}
	if _, err := Figure9(s, "NoSuchCategory", 3); err == nil {
		t.Error("missing category should error")
	}
}
