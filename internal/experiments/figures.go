package experiments

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/eval"
)

// defaultSampleEvery picks a readable sampling interval for series over a
// query stream.
func defaultSampleEvery(numQueries int) int {
	every := numQueries / 20
	if every < 1 {
		every = 1
	}
	return every
}

// Figure10 reproduces Figure 10: (a) running-average precision versus the
// number of processed queries for the Default, FeedbackBypass, and
// AlreadySeen strategies at the session's K, and (b) the precision gains
// of FeedbackBypass and AlreadySeen over Default.
type Figure10Result struct {
	K         int
	Precision SeriesByScenario
	GainFB    *eval.Series
	GainSeen  *eval.Series
}

// Figure10 requires a completed session.
func Figure10(s *Session) (*Figure10Result, error) {
	if len(s.Records) == 0 {
		return nil, errors.New("experiments: session has no records; call Run first")
	}
	every := defaultSampleEvery(len(s.Records))
	var def, fb, seen []float64
	for _, r := range s.Records {
		def = append(def, r.PrecisionDefault())
		fb = append(fb, r.PrecisionBypass())
		seen = append(seen, r.PrecisionSeen())
	}
	defS, err := eval.CumulativeSeries("Default", def, every)
	if err != nil {
		return nil, err
	}
	fbS, err := eval.CumulativeSeries("FeedbackBypass", fb, every)
	if err != nil {
		return nil, err
	}
	seenS, err := eval.CumulativeSeries("AlreadySeen", seen, every)
	if err != nil {
		return nil, err
	}
	gainFB := &eval.Series{Label: "FeedbackBypass"}
	gainSeen := &eval.Series{Label: "AlreadySeen"}
	for i := range defS.X {
		if defS.Y[i] <= 0 {
			continue
		}
		gFB, err := eval.PrecisionGain(fbS.Y[i], defS.Y[i])
		if err != nil {
			return nil, err
		}
		gSeen, err := eval.PrecisionGain(seenS.Y[i], defS.Y[i])
		if err != nil {
			return nil, err
		}
		gainFB.Append(defS.X[i], gFB)
		gainSeen.Append(defS.X[i], gSeen)
	}
	return &Figure10Result{
		K:         s.Config.K,
		Precision: SeriesByScenario{Default: defS, Bypass: fbS, AlreadySeen: seenS},
		GainFB:    gainFB,
		GainSeen:  gainSeen,
	}, nil
}

// Figure11Result reproduces Figure 11: precision (a), recall (b), and the
// precision-recall curve (c) as functions of the number of retrieved
// objects k after the training stream has been processed.
type Figure11Result struct {
	Ks        []int
	Precision SeriesByScenario
	Recall    SeriesByScenario
	// PR is precision (Y) against recall (X) per scenario, parameterized
	// by k.
	PR SeriesByScenario
}

// Figure11 evaluates the trained session on fresh queries over a sweep of
// k values (the paper sweeps 10..80).
func Figure11(s *Session, ks []int, numEval int) (*Figure11Result, error) {
	if len(s.Records) == 0 {
		return nil, errors.New("experiments: session has no records; call Run first")
	}
	if len(ks) == 0 {
		ks = []int{10, 20, 30, 40, 50, 60, 70, 80}
	}
	sorted := append([]int(nil), ks...)
	sort.Ints(sorted)
	if numEval <= 0 {
		numEval = 100
	}
	evalQs, err := s.SampleEvalQueries(numEval)
	if err != nil {
		return nil, err
	}
	nK := len(sorted)
	sumPrec := map[string][]float64{"d": make([]float64, nK), "b": make([]float64, nK), "s": make([]float64, nK)}
	sumRec := map[string][]float64{"d": make([]float64, nK), "b": make([]float64, nK), "s": make([]float64, nK)}
	// One batched evaluation: all Mopt predictions for the eval stream
	// are answered by a single read-locked PredictBatch.
	counts, err := s.EvaluateManyAtK(evalQs, sorted)
	if err != nil {
		return nil, err
	}
	for qidx, qi := range evalQs {
		c := counts[qidx]
		rel := s.DS.Relevant(s.DS.Items[qi].Category)
		for i, k := range sorted {
			sumPrec["d"][i] += float64(c.GoodDefault[i]) / float64(k)
			sumPrec["b"][i] += float64(c.GoodBypass[i]) / float64(k)
			sumPrec["s"][i] += float64(c.GoodSeen[i]) / float64(k)
			sumRec["d"][i] += float64(c.GoodDefault[i]) / float64(rel)
			sumRec["b"][i] += float64(c.GoodBypass[i]) / float64(rel)
			sumRec["s"][i] += float64(c.GoodSeen[i]) / float64(rel)
		}
	}
	n := float64(len(evalQs))
	mk := func(label string, xs []int, ys []float64) *eval.Series {
		out := &eval.Series{Label: label}
		for i, x := range xs {
			out.Append(float64(x), ys[i]/n)
		}
		return out
	}
	res := &Figure11Result{Ks: sorted}
	res.Precision = SeriesByScenario{
		Default:     mk("Default", sorted, sumPrec["d"]),
		Bypass:      mk("FeedbackBypass", sorted, sumPrec["b"]),
		AlreadySeen: mk("AlreadySeen", sorted, sumPrec["s"]),
	}
	res.Recall = SeriesByScenario{
		Default:     mk("Default", sorted, sumRec["d"]),
		Bypass:      mk("FeedbackBypass", sorted, sumRec["b"]),
		AlreadySeen: mk("AlreadySeen", sorted, sumRec["s"]),
	}
	pr := func(label string, prec, rec *eval.Series) *eval.Series {
		out := &eval.Series{Label: label}
		for i := range prec.Y {
			out.Append(rec.Y[i], prec.Y[i])
		}
		return out
	}
	res.PR = SeriesByScenario{
		Default:     pr("Default", res.Precision.Default, res.Recall.Default),
		Bypass:      pr("FeedbackBypass", res.Precision.Bypass, res.Recall.Bypass),
		AlreadySeen: pr("AlreadySeen", res.Precision.AlreadySeen, res.Recall.AlreadySeen),
	}
	return res, nil
}

// Figure12Result reproduces Figure 12: FeedbackBypass precision (a) and
// recall (b) learning curves for several values of k. Each entry pairs a k
// with its curves.
type Figure12Result struct {
	Ks        []int
	Precision []*eval.Series // one per k
	Recall    []*eval.Series
}

// Figure12 runs one session per k over the same collection (the paper uses
// k = 20, 50, 80).
func Figure12(cfg Config, ks []int) (*Figure12Result, error) {
	if len(ks) == 0 {
		ks = []int{20, 50, 80}
	}
	base, err := NewSession(cfg)
	if err != nil {
		return nil, err
	}
	res := &Figure12Result{Ks: ks}
	for _, k := range ks {
		kcfg := cfg
		kcfg.K = k
		kcfg.MeasureSavings = false
		sess, err := NewSessionOver(kcfg, base.DS)
		if err != nil {
			return nil, err
		}
		if err := sess.Run(); err != nil {
			return nil, err
		}
		every := defaultSampleEvery(len(sess.Records))
		var prec, rec []float64
		for _, r := range sess.Records {
			prec = append(prec, r.PrecisionBypass())
			rec = append(rec, r.RecallBypass())
		}
		p, err := eval.CumulativeSeries(fmt.Sprintf("k = %d", k), prec, every)
		if err != nil {
			return nil, err
		}
		r, err := eval.CumulativeSeries(fmt.Sprintf("k = %d", k), rec, every)
		if err != nil {
			return nil, err
		}
		res.Precision = append(res.Precision, p)
		res.Recall = append(res.Recall, r)
	}
	return res, nil
}

// Figure13Result reproduces Figure 13: FeedbackBypass versions trained
// with different k values, evaluated while retrieving r = 10..80 objects.
type Figure13Result struct {
	TrainKs   []int
	Rs        []int
	Precision []*eval.Series // one per training k, X = retrieved objects
	Recall    []*eval.Series
}

// Figure13 trains one session per k over the same collection and evaluates
// each at every r.
func Figure13(cfg Config, trainKs, rs []int, numEval int) (*Figure13Result, error) {
	if len(trainKs) == 0 {
		trainKs = []int{20, 50, 80}
	}
	if len(rs) == 0 {
		rs = []int{10, 20, 30, 40, 50, 60, 70, 80}
	}
	if numEval <= 0 {
		numEval = 100
	}
	base, err := NewSession(cfg)
	if err != nil {
		return nil, err
	}
	res := &Figure13Result{TrainKs: trainKs, Rs: rs}
	for _, k := range trainKs {
		kcfg := cfg
		kcfg.K = k
		kcfg.MeasureSavings = false
		sess, err := NewSessionOver(kcfg, base.DS)
		if err != nil {
			return nil, err
		}
		if err := sess.Run(); err != nil {
			return nil, err
		}
		evalQs, err := sess.SampleEvalQueries(numEval)
		if err != nil {
			return nil, err
		}
		sumPrec := make([]float64, len(rs))
		sumRec := make([]float64, len(rs))
		counts, err := sess.EvaluateManyAtK(evalQs, rs)
		if err != nil {
			return nil, err
		}
		for qidx, qi := range evalQs {
			rel := sess.DS.Relevant(sess.DS.Items[qi].Category)
			for i, r := range rs {
				sumPrec[i] += float64(counts[qidx].GoodBypass[i]) / float64(r)
				sumRec[i] += float64(counts[qidx].GoodBypass[i]) / float64(rel)
			}
		}
		p := &eval.Series{Label: fmt.Sprintf("k = %d", k)}
		r := &eval.Series{Label: fmt.Sprintf("k = %d", k)}
		for i, rv := range rs {
			p.Append(float64(rv), sumPrec[i]/float64(len(evalQs)))
			r.Append(float64(rv), sumRec[i]/float64(len(evalQs)))
		}
		res.Precision = append(res.Precision, p)
		res.Recall = append(res.Recall, r)
	}
	return res, nil
}

// CategoryResult is one bar group of Figure 14.
type CategoryResult struct {
	Category                                string
	Queries                                 int
	PrecDefault, PrecBypass, PrecSeen       float64
	RecallDefault, RecallBypass, RecallSeen float64
}

// Figure14 reproduces Figure 14: per-category average precision and recall
// for the three strategies, from a completed session's records.
func Figure14(s *Session) ([]CategoryResult, error) {
	if len(s.Records) == 0 {
		return nil, errors.New("experiments: session has no records; call Run first")
	}
	byCat := map[string][]QueryRecord{}
	for _, r := range s.Records {
		byCat[r.Category] = append(byCat[r.Category], r)
	}
	var out []CategoryResult
	for _, cat := range s.DS.QueryCats {
		recs := byCat[cat]
		if len(recs) == 0 {
			continue
		}
		cr := CategoryResult{Category: cat, Queries: len(recs)}
		for _, r := range recs {
			cr.PrecDefault += r.PrecisionDefault()
			cr.PrecBypass += r.PrecisionBypass()
			cr.PrecSeen += r.PrecisionSeen()
			cr.RecallDefault += r.RecallDefault()
			cr.RecallBypass += r.RecallBypass()
			cr.RecallSeen += r.RecallSeen()
		}
		n := float64(len(recs))
		cr.PrecDefault /= n
		cr.PrecBypass /= n
		cr.PrecSeen /= n
		cr.RecallDefault /= n
		cr.RecallBypass /= n
		cr.RecallSeen /= n
		out = append(out, cr)
	}
	return out, nil
}

// Figure15Result reproduces Figure 15: average saved feedback cycles (a)
// and saved retrieved objects (b) versus the number of processed queries,
// for several k values.
type Figure15Result struct {
	Ks           []int
	SavedCycles  []*eval.Series
	SavedObjects []*eval.Series
}

// Figure15 runs one savings-enabled session per k over the same collection
// (the paper uses k = 20, 50).
func Figure15(cfg Config, ks []int) (*Figure15Result, error) {
	if len(ks) == 0 {
		ks = []int{20, 50}
	}
	base, err := NewSession(cfg)
	if err != nil {
		return nil, err
	}
	res := &Figure15Result{Ks: ks}
	for _, k := range ks {
		kcfg := cfg
		kcfg.K = k
		kcfg.MeasureSavings = true
		sess, err := NewSessionOver(kcfg, base.DS)
		if err != nil {
			return nil, err
		}
		if err := sess.Run(); err != nil {
			return nil, err
		}
		every := defaultSampleEvery(len(sess.Records))
		var saved []float64
		for _, r := range sess.Records {
			saved = append(saved, float64(eval.SavedCycles(r.ItersFromDefault, r.ItersFromPredicted)))
		}
		// The paper plots the trailing behaviour from query 300 on; a
		// window average shows the improvement over time without the
		// early-training drag a cumulative average would carry.
		window := len(saved) / 3
		if window < 1 {
			window = 1
		}
		sc, err := eval.WindowSeries(fmt.Sprintf("k = %d", k), saved, window, every)
		if err != nil {
			return nil, err
		}
		so := &eval.Series{Label: fmt.Sprintf("k = %d", k)}
		for i := range sc.X {
			so.Append(sc.X[i], sc.Y[i]*float64(k))
		}
		res.SavedCycles = append(res.SavedCycles, sc)
		res.SavedObjects = append(res.SavedObjects, so)
	}
	return res, nil
}

// Figure16Result reproduces Figure 16: average number of simplices
// traversed per query and the depth of the Simplex Tree, as functions of
// the number of processed queries.
type Figure16Result struct {
	Traversed *eval.Series
	Depth     *eval.Series
}

// Figure16 derives both series from a completed session's records.
func Figure16(s *Session) (*Figure16Result, error) {
	if len(s.Records) == 0 {
		return nil, errors.New("experiments: session has no records; call Run first")
	}
	every := defaultSampleEvery(len(s.Records))
	var traversed []float64
	for _, r := range s.Records {
		traversed = append(traversed, float64(r.Traversed))
	}
	tr, err := eval.CumulativeSeries("no. of simplices traversed", traversed, every)
	if err != nil {
		return nil, err
	}
	depth := &eval.Series{Label: "Depth of Simplex Tree"}
	for i, r := range s.Records {
		if (i+1)%every == 0 || i == len(s.Records)-1 {
			depth.Append(float64(i+1), float64(r.TreeDepth))
		}
	}
	return &Figure16Result{Traversed: tr, Depth: depth}, nil
}

// Figure1Result reproduces the qualitative Figure 1: the top-5 results for
// one query under default parameters versus FeedbackBypass predictions.
type Figure1Result struct {
	QueryIndex    int
	QueryCategory string
	DefaultTop    []ResultLine
	BypassTop     []ResultLine
	GoodDefault   int
	GoodBypass    int
}

// ResultLine is one retrieved object with its relevance.
type ResultLine struct {
	ItemIndex int
	Category  string
	Theme     string
	Distance  float64
	Good      bool
}

// Figure1 retrieves the top-n results for a query under both strategies.
// The session should be trained first, so predictions are informative.
func Figure1(s *Session, itemIdx, n int) (*Figure1Result, error) {
	if itemIdx < 0 || itemIdx >= s.DS.Len() {
		return nil, fmt.Errorf("experiments: item index %d out of range", itemIdx)
	}
	if n <= 0 {
		n = 5
	}
	item := s.DS.Items[itemIdx]
	q := item.Feature
	qp, err := s.Codec.QueryPoint(q)
	if err != nil {
		return nil, err
	}
	oqp, err := s.Bypass.Predict(qp)
	if err != nil {
		return nil, err
	}
	qPred, wPred, err := s.Codec.DecodeOQP(q, oqp)
	if err != nil {
		return nil, err
	}
	res := &Figure1Result{QueryIndex: itemIdx, QueryCategory: item.Category}
	defRes, err := s.Engine.Retrieve(q, s.Engine.UniformWeights(), n)
	if err != nil {
		return nil, err
	}
	bypRes, err := s.Engine.Retrieve(qPred, wPred, n)
	if err != nil {
		return nil, err
	}
	for _, r := range defRes {
		it := s.DS.Items[r.Index]
		good := it.Category == item.Category
		res.DefaultTop = append(res.DefaultTop, ResultLine{ItemIndex: r.Index, Category: it.Category, Theme: it.Theme, Distance: r.Distance, Good: good})
		if good {
			res.GoodDefault++
		}
	}
	for _, r := range bypRes {
		it := s.DS.Items[r.Index]
		good := it.Category == item.Category
		res.BypassTop = append(res.BypassTop, ResultLine{ItemIndex: r.Index, Category: it.Category, Theme: it.Theme, Distance: r.Distance, Good: good})
		if good {
			res.GoodBypass++
		}
	}
	return res, nil
}

// Figure9Sample describes one sampled image of a category — the textual
// stand-in for the paper's Figure 9 strip of Fish images.
type Figure9Sample struct {
	ItemIndex    int
	Theme        string
	DominantBins []int // top histogram bins by mass
}

// Figure9 samples n images of a category and reports their themes and
// dominant colour bins, demonstrating the within-category colour diversity
// the paper illustrates with the Fish category.
func Figure9(s *Session, category string, n int) ([]Figure9Sample, error) {
	idxs := s.DS.ByCategory[category]
	if len(idxs) == 0 {
		return nil, fmt.Errorf("experiments: category %q has no items", category)
	}
	if n <= 0 || n > len(idxs) {
		n = 4
		if n > len(idxs) {
			n = len(idxs)
		}
	}
	var out []Figure9Sample
	for i := 0; i < n; i++ {
		idx := idxs[i*len(idxs)/n]
		item := s.DS.Items[idx]
		type bm struct {
			bin  int
			mass float64
		}
		var bins []bm
		for b, m := range item.Feature {
			bins = append(bins, bm{b, m})
		}
		sort.Slice(bins, func(a, b int) bool { return bins[a].mass > bins[b].mass })
		top := []int{}
		for j := 0; j < 3 && j < len(bins); j++ {
			top = append(top, bins[j].bin)
		}
		out = append(out, Figure9Sample{ItemIndex: idx, Theme: item.Theme, DominantBins: top})
	}
	return out, nil
}
