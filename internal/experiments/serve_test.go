package experiments

import "testing"

func TestRunServeSmallScale(t *testing.T) {
	cfg := ServeConfig{
		Seed:             3,
		Scale:            0.03,
		K:                6,
		Epsilon:          0.05,
		SessionsPerLevel: 12,
		Levels:           []int{1, 4},
	}
	res, err := RunServe(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Levels) != 2 {
		t.Fatalf("got %d levels", len(res.Levels))
	}
	for _, lvl := range res.Levels {
		if lvl.Train.Sessions != cfg.SessionsPerLevel {
			t.Errorf("level %d train: completed %d sessions", lvl.Clients, lvl.Train.Sessions)
		}
		if lvl.Bypass.Sessions != 2*cfg.SessionsPerLevel {
			t.Errorf("level %d bypass: completed %d sessions, want two passes", lvl.Clients, lvl.Bypass.Sessions)
		}
		for name, ph := range map[string]ServePhaseResult{"train": lvl.Train, "bypass": lvl.Bypass} {
			// Every session is at least Open + Close.
			if ph.Ops < 2*ph.Sessions {
				t.Errorf("level %d %s: only %d ops", lvl.Clients, name, ph.Ops)
			}
			if ph.P50Micros < 0 || ph.P99Micros < ph.P50Micros {
				t.Errorf("level %d %s: implausible latencies p50=%v p99=%v", lvl.Clients, name, ph.P50Micros, ph.P99Micros)
			}
			if ph.CacheHitRate < 0 || ph.CacheHitRate > 1 || ph.WarmRate < 0 || ph.WarmRate > 1 {
				t.Errorf("level %d %s: rates out of range: %+v", lvl.Clients, name, ph)
			}
		}
		// The bypass phase gives no feedback, so it can never insert and
		// never runs a refinement round.
		if lvl.Bypass.Feedbacks != 0 || lvl.Bypass.Inserted != 0 {
			t.Errorf("level %d bypass phase trained: %+v", lvl.Clients, lvl.Bypass)
		}
	}
	// The bypass phase re-issues the train phase's stream with no
	// intervening inserts, so by the last level the LRU must be serving.
	last := res.Levels[len(res.Levels)-1]
	if last.Bypass.CacheHitRate == 0 {
		t.Error("bypass phase never hit the prediction cache")
	}
	if res.FinalStats.ActiveSessions != 0 {
		t.Error("benchmark leaked sessions")
	}
	if want := int64(2 * 3 * cfg.SessionsPerLevel); res.FinalStats.Opened != want { // 2 levels × (1 train + 2 bypass passes)
		t.Errorf("opened %d sessions, want %d", res.FinalStats.Opened, want)
	}
	if res.FinalStats.Inserts == 0 {
		t.Error("no session ever inserted")
	}
	bad := []ServeConfig{
		{Scale: 0, SessionsPerLevel: 1, K: 1},
		{Scale: 1, SessionsPerLevel: 0, K: 1},
		{Scale: 1, SessionsPerLevel: 1, K: 0},
		{Scale: 0.02, SessionsPerLevel: 1, K: 1, Levels: []int{0}},
	}
	for i, cfg := range bad {
		if _, err := RunServe(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}
