package experiments

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/faultfs"
	"repro/internal/shardedbypass"
	"repro/internal/simplextree"
	"repro/internal/vec"
)

// ChaosConfig drives the fault-injection benchmark: a crash-schedule
// sweep over every mutating filesystem operation of a durable insert
// workload (single-tree and sharded layouts), a degraded-mode phase (the
// disk under the journal goes bad mid-flight), and a quota-exhaustion
// phase — each reporting availability, error taxonomy and recovery time.
type ChaosConfig struct {
	// Seed makes the workloads deterministic.
	Seed int64
	// D and P are the module's simplex and weight dimensionalities.
	D, P int
	// Inserts is the workload length of each crash schedule.
	Inserts int
	// CompactEvery triggers compaction inside the workload so crash
	// points cover snapshot rename and journal truncation, not just
	// appends.
	CompactEvery int
	// Shards is the sharded layout's partition count.
	Shards int
	// DegradedInserts is the number of insert attempts against the
	// read-only degraded module.
	DegradedInserts int
	// QuotaHeadroom is the vertex quota above the D+1 domain corners in
	// the quota phase.
	QuotaHeadroom int
}

// DefaultChaosConfig is the operating point of the committed artifact:
// small enough that the full crash sweep (one fresh module + recovery
// per mutating op, two layouts) stays in CI budget, large enough that
// every crash-point class — header write, append, append fsync, snapshot
// write/rename, directory fsync, journal truncation — is enumerated.
func DefaultChaosConfig() ChaosConfig {
	return ChaosConfig{
		Seed:            1,
		D:               3,
		P:               2,
		Inserts:         12,
		CompactEvery:    4,
		Shards:          3,
		DegradedInserts: 48,
		QuotaHeadroom:   4,
	}
}

// ChaosCrashSweep is one layout's crash-schedule result: the workload is
// run once per mutating filesystem operation with a process-kill
// injected at exactly that operation, then recovered on a healthy disk.
type ChaosCrashSweep struct {
	Layout string `json:"layout"`
	// CrashPoints is the number of schedules = mutating ops of the
	// fault-free workload.
	CrashPoints int `json:"crash_points"`
	// RecoveryFailures counts schedules whose reopen failed (must be 0).
	RecoveryFailures int `json:"recovery_failures"`
	// AckedLost counts acknowledged inserts missing after recovery,
	// summed over all schedules (the headline invariant: must be 0).
	AckedLost int `json:"acked_lost"`
	// ExtraReplayed counts un-acknowledged in-flight inserts that
	// recovery resurrected (a fully written record whose fsync or
	// rollback died with the crash) — bounded by 1 per schedule.
	ExtraReplayed int `json:"extra_replayed"`
	// Recovery time over all schedules.
	RecoveryMeanMicros float64 `json:"recovery_mean_us"`
	RecoveryMaxMicros  float64 `json:"recovery_max_us"`
}

// ChaosDegraded is the degraded-mode phase: a healthy module's journal
// disk goes bad, and the module must keep serving reads (parity-pinned
// against a healthy twin) while rejecting writes with the typed sentinel.
type ChaosDegraded struct {
	AckedBefore int `json:"acked_before"`
	// Insert attempts after the disk failure, by classification.
	TypedRejections int `json:"typed_rejections"`
	UntypedErrors   int `json:"untyped_errors"`
	// Reads against the degraded module at every acknowledged point.
	ReadsAttempted int  `json:"reads_attempted"`
	ReadsOK        int  `json:"reads_ok"`
	ParityOK       bool `json:"parity_ok"` // bitwise vs the healthy twin
	// ReadAvailability is ReadsOK/ReadsAttempted — 1.0 means the read
	// plane never noticed the disk failure.
	ReadAvailability float64 `json:"read_availability"`
	// RecoveryMicros is the reopen time against a healthy disk: the
	// journal holds every acknowledged insert, so nothing is lost.
	RecoveryMicros float64 `json:"recovery_us"`
	RecoveredOK    bool    `json:"recovered_ok"`
}

// ChaosQuota is the quota-exhaustion phase: a module with a vertex quota
// accepts exactly its headroom, rejects the rest typed, and keeps the
// read plane live at full occupancy.
type ChaosQuota struct {
	MaxVertices      int     `json:"max_vertices"`
	Accepted         int     `json:"accepted"`
	TypedRejections  int     `json:"typed_rejections"`
	UntypedErrors    int     `json:"untyped_errors"`
	ReadsAttempted   int     `json:"reads_attempted"`
	ReadsOK          int     `json:"reads_ok"`
	ParityOK         bool    `json:"parity_ok"`
	ReadAvailability float64 `json:"read_availability"`
}

// ChaosResult aggregates the whole figure.
type ChaosResult struct {
	D          int             `json:"d"`
	P          int             `json:"p"`
	SingleTree ChaosCrashSweep `json:"single_tree"`
	Sharded    ChaosCrashSweep `json:"sharded"`
	Degraded   ChaosDegraded   `json:"degraded"`
	Quota      ChaosQuota      `json:"quota"`
}

// chaosPoint draws a strictly interior simplex point: every coordinate
// positive, sum < 1, away from faces so interpolation stays well
// conditioned.
func chaosPoint(rng *rand.Rand, d int) []float64 {
	for {
		q := make([]float64, d)
		sum := 0.0
		for i := range q {
			q[i] = rng.Float64()
			sum += q[i]
		}
		if sum <= 0 {
			continue
		}
		scale := (0.2 + 0.6*rng.Float64()) / sum
		ok := true
		for i := range q {
			q[i] *= scale
			if q[i] < 1e-3 {
				ok = false
			}
		}
		if ok {
			return q
		}
	}
}

func chaosOQP(rng *rand.Rand, d, p int) core.OQP {
	oqp := core.OQP{Delta: make([]float64, d), Weights: make([]float64, p)}
	for i := range oqp.Delta {
		oqp.Delta[i] = rng.NormFloat64() * 0.05
	}
	for i := range oqp.Weights {
		oqp.Weights[i] = rng.NormFloat64() * 0.3
	}
	return oqp
}

// chaosVertexKey is a vertex's bitwise identity: Point ++ Value as raw
// float64 bits, so two vertices compare equal iff they are bit-identical.
func chaosVertexKey(v *simplextree.Vertex) string {
	buf := make([]byte, 0, 8*(len(v.Point)+len(v.Value)))
	for _, x := range v.Point {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(x))
	}
	for _, x := range v.Value {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(x))
	}
	return string(buf)
}

// chaosModule abstracts the two layouts behind the operations the sweep
// needs: insert, census, close.
type chaosModule interface {
	Insert(q []float64, oqp core.OQP) (bool, error)
	Census() (map[string]bool, error)
	Close() error
}

type singleModule struct{ db *core.DurableBypass }

func (m singleModule) Insert(q []float64, oqp core.OQP) (bool, error) { return m.db.Insert(q, oqp) }
func (m singleModule) Close() error                                   { return m.db.Close() }
func (m singleModule) Census() (map[string]bool, error) {
	set := map[string]bool{}
	m.db.Tree().Walk(func(v *simplextree.Vertex) { set[chaosVertexKey(v)] = true })
	return set, nil
}

type shardedModule struct{ s *shardedbypass.Sharded }

func (m shardedModule) Insert(q []float64, oqp core.OQP) (bool, error) { return m.s.Insert(q, oqp) }
func (m shardedModule) Close() error                                   { return m.s.Close() }
func (m shardedModule) Census() (map[string]bool, error) {
	set := map[string]bool{}
	err := m.s.Walk(func(v *simplextree.Vertex) { set[chaosVertexKey(v)] = true })
	return set, err
}

// chaosLayout opens one of the two layouts rooted at dir over fs (nil =
// the real filesystem).
type chaosLayout struct {
	name string
	open func(dir string, fs *faultfs.FS, cfg ChaosConfig) (chaosModule, error)
}

func chaosLayouts(cfg ChaosConfig) []chaosLayout {
	dur := func(fs *faultfs.FS) core.DurableOptions {
		opts := core.DurableOptions{CompactEvery: cfg.CompactEvery, Sync: true}
		if fs != nil {
			opts.FS = fs
		}
		return opts
	}
	return []chaosLayout{
		{
			name: "single-tree",
			open: func(dir string, fs *faultfs.FS, cfg ChaosConfig) (chaosModule, error) {
				db, err := core.OpenDurable(dir, cfg.D, cfg.P, core.Config{Epsilon: 0}, dur(fs))
				if err != nil {
					return nil, err
				}
				return singleModule{db}, nil
			},
		},
		{
			name: fmt.Sprintf("sharded(%d)", cfg.Shards),
			open: func(dir string, fs *faultfs.FS, cfg ChaosConfig) (chaosModule, error) {
				s, err := shardedbypass.Open(dir, cfg.D, cfg.P, core.Config{Epsilon: 0}, shardedbypass.Options{
					Shards:  cfg.Shards,
					Durable: dur(fs),
				})
				if err != nil {
					return nil, err
				}
				return shardedModule{s}, nil
			},
		},
	}
}

// chaosWorkload drives cfg.Inserts inserts; insert errors are swallowed
// (a crashed run errors by design) — the census of the module's own
// in-memory tree at return is exactly the acknowledged state.
func chaosWorkload(m chaosModule, cfg ChaosConfig) {
	rng := rand.New(rand.NewSource(cfg.Seed + 41))
	for i := 0; i < cfg.Inserts; i++ {
		_, _ = m.Insert(chaosPoint(rng, cfg.D), chaosOQP(rng, cfg.D, cfg.P))
	}
}

// runCrashSweep enumerates every crash point of one layout's workload.
func runCrashSweep(root string, lay chaosLayout, cfg ChaosConfig) (ChaosCrashSweep, error) {
	out := ChaosCrashSweep{Layout: lay.name}

	// Counting run: how many mutating filesystem operations does the
	// fault-free workload perform?
	countFS := faultfs.New(nil)
	m, err := lay.open(filepath.Join(root, "count"), countFS, cfg)
	if err != nil {
		return out, fmt.Errorf("counting run: %w", err)
	}
	chaosWorkload(m, cfg)
	if err := m.Close(); err != nil {
		return out, fmt.Errorf("counting run close: %w", err)
	}
	total := countFS.Ops()
	out.CrashPoints = total

	// Baseline census of a fresh, insert-free module: the D+1 domain
	// corner vertices every open seeds. A schedule that crashes during
	// open acknowledges nothing, but its recovery still (re)creates a
	// fresh module — so the corner set, not the empty set, is what
	// recovery owes it.
	bm, err := lay.open(filepath.Join(root, "baseline"), nil, cfg)
	if err != nil {
		return out, fmt.Errorf("baseline open: %w", err)
	}
	baseline, err := bm.Census()
	if err != nil {
		_ = bm.Close()
		return out, fmt.Errorf("baseline census: %w", err)
	}
	if err := bm.Close(); err != nil {
		return out, fmt.Errorf("baseline close: %w", err)
	}

	var recSum, recMax float64
	for n := 1; n <= total; n++ {
		dir := filepath.Join(root, fmt.Sprintf("crash-%04d", n))
		fs := faultfs.New(nil)
		fs.SetCrashAt(n)
		m, err := lay.open(dir, fs, cfg)
		var want map[string]bool
		if err == nil {
			chaosWorkload(m, cfg)
			want, err = m.Census()
			if err != nil {
				return out, fmt.Errorf("crash %d census: %w", n, err)
			}
			_ = m.Close() // post-crash close errors are expected
		} else {
			// Crashed during open: nothing was acknowledged, and recovery
			// owes exactly a fresh module (the corner vertices).
			want = baseline
		}
		if !fs.Crashed() {
			return out, fmt.Errorf("crash %d/%d never fired", n, total)
		}

		// Recovery on a healthy disk.
		t0 := time.Now()
		rm, err := lay.open(dir, nil, cfg)
		rec := float64(time.Since(t0).Microseconds())
		if err != nil {
			out.RecoveryFailures++
			continue
		}
		recSum += rec
		if rec > recMax {
			recMax = rec
		}
		got, err := rm.Census()
		if err != nil {
			_ = rm.Close()
			return out, fmt.Errorf("recovery %d census: %w", n, err)
		}
		if err := rm.Close(); err != nil {
			return out, fmt.Errorf("recovery %d close: %w", n, err)
		}
		for key := range want {
			if !got[key] {
				out.AckedLost++
			}
		}
		if extra := len(got) - len(want); extra > 0 {
			out.ExtraReplayed += extra
		}
	}
	if ok := total - out.RecoveryFailures; ok > 0 {
		out.RecoveryMeanMicros = recSum / float64(ok)
	}
	out.RecoveryMaxMicros = recMax
	return out, nil
}

// runDegraded exercises read-only degraded serving: journal disk goes
// bad, writes reject typed, reads stay bitwise-correct, and reopening on
// a healthy disk recovers every acknowledged insert.
func runDegraded(root string, cfg ChaosConfig) (ChaosDegraded, error) {
	out := ChaosDegraded{ParityOK: true}
	rng := rand.New(rand.NewSource(cfg.Seed + 43))
	dir := filepath.Join(root, "degraded")
	fs := faultfs.New(nil)
	db, err := core.OpenDurable(dir, cfg.D, cfg.P, core.Config{Epsilon: 0},
		core.DurableOptions{CompactEvery: cfg.CompactEvery, Sync: true, FS: fs})
	if err != nil {
		return out, err
	}
	twin, err := core.New(cfg.D, cfg.P, core.Config{Epsilon: 0})
	if err != nil {
		return out, err
	}

	var acked [][]float64
	for i := 0; i < cfg.Inserts; i++ {
		q := chaosPoint(rng, cfg.D)
		oqp := chaosOQP(rng, cfg.D, cfg.P)
		if _, err := db.Insert(q, oqp); err != nil {
			return out, fmt.Errorf("healthy insert %d: %w", i, err)
		}
		if _, err := twin.Insert(q, oqp); err != nil {
			return out, err
		}
		acked = append(acked, q)
	}
	out.AckedBefore = len(acked)

	// The disk goes bad: every further journal write fails.
	fs.AddRule(faultfs.Rule{Op: faultfs.OpWrite, Path: core.JournalFile, Nth: 0, Kind: faultfs.Fail})
	for i := 0; i < cfg.DegradedInserts; i++ {
		_, err := db.Insert(chaosPoint(rng, cfg.D), chaosOQP(rng, cfg.D, cfg.P))
		switch {
		case errors.Is(err, core.ErrDegraded):
			out.TypedRejections++
		case err != nil:
			out.UntypedErrors++
		default:
			// An accepted insert after the disk failure would be a
			// durability lie.
			out.UntypedErrors++
		}
	}

	// The read plane at every acknowledged point, parity-pinned.
	for _, q := range acked {
		out.ReadsAttempted++
		got, err := db.Predict(q)
		if err != nil {
			continue
		}
		out.ReadsOK++
		want, err := twin.Predict(q)
		if err != nil {
			return out, err
		}
		if !vec.Equal(got.Delta, want.Delta) || !vec.Equal(got.Weights, want.Weights) {
			out.ParityOK = false
		}
	}
	if out.ReadsAttempted > 0 {
		out.ReadAvailability = float64(out.ReadsOK) / float64(out.ReadsAttempted)
	}
	_ = db.Close()

	// Recovery on a healthy disk: the journal holds every acknowledged
	// insert, so reopening restores exactly the pre-failure state.
	t0 := time.Now()
	rdb, err := core.OpenDurable(dir, cfg.D, cfg.P, core.Config{Epsilon: 0}, core.DurableOptions{})
	out.RecoveryMicros = float64(time.Since(t0).Microseconds())
	if err != nil {
		return out, nil // recovered_ok stays false
	}
	defer rdb.Close()
	out.RecoveredOK = true
	for _, q := range acked {
		got, err := rdb.Predict(q)
		if err != nil {
			out.RecoveredOK = false
			break
		}
		want, _ := twin.Predict(q)
		if !vec.Equal(got.Delta, want.Delta) || !vec.Equal(got.Weights, want.Weights) {
			out.RecoveredOK = false
			break
		}
	}
	return out, nil
}

// runQuota exercises quota governance: exactly the headroom is accepted,
// the rest reject typed, and reads stay live and parity-pinned at full
// occupancy.
func runQuota(root string, cfg ChaosConfig) (ChaosQuota, error) {
	max := cfg.D + 1 + cfg.QuotaHeadroom
	out := ChaosQuota{MaxVertices: max, ParityOK: true}
	rng := rand.New(rand.NewSource(cfg.Seed + 47))
	db, err := core.OpenDurable(filepath.Join(root, "quota"), cfg.D, cfg.P,
		core.Config{Epsilon: 0, MaxVertices: max}, core.DurableOptions{Sync: true})
	if err != nil {
		return out, err
	}
	defer db.Close()
	twin, err := core.New(cfg.D, cfg.P, core.Config{Epsilon: 0})
	if err != nil {
		return out, err
	}

	var kept [][]float64
	for i := 0; i < 4*max; i++ {
		q := chaosPoint(rng, cfg.D)
		oqp := chaosOQP(rng, cfg.D, cfg.P)
		_, err := db.Insert(q, oqp)
		switch {
		case err == nil:
			out.Accepted++
			kept = append(kept, q)
			if _, err := twin.Insert(q, oqp); err != nil {
				return out, err
			}
		case errors.Is(err, core.ErrQuotaExceeded):
			out.TypedRejections++
		default:
			out.UntypedErrors++
		}
	}
	for _, q := range kept {
		out.ReadsAttempted++
		got, err := db.Predict(q)
		if err != nil {
			continue
		}
		out.ReadsOK++
		want, err := twin.Predict(q)
		if err != nil {
			return out, err
		}
		if !vec.Equal(got.Delta, want.Delta) || !vec.Equal(got.Weights, want.Weights) {
			out.ParityOK = false
		}
	}
	if out.ReadsAttempted > 0 {
		out.ReadAvailability = float64(out.ReadsOK) / float64(out.ReadsAttempted)
	}
	return out, nil
}

// RunChaos runs the full fault-injection figure in a temporary directory.
func RunChaos(cfg ChaosConfig) (ChaosResult, error) {
	if cfg.D <= 0 || cfg.P < 0 || cfg.Inserts <= 0 || cfg.Shards < 1 {
		return ChaosResult{}, fmt.Errorf("experiments: invalid chaos config %+v", cfg)
	}
	root, err := os.MkdirTemp("", "fb-chaos-*")
	if err != nil {
		return ChaosResult{}, err
	}
	defer os.RemoveAll(root)

	res := ChaosResult{D: cfg.D, P: cfg.P}
	layouts := chaosLayouts(cfg)
	if res.SingleTree, err = runCrashSweep(filepath.Join(root, "single"), layouts[0], cfg); err != nil {
		return res, fmt.Errorf("single-tree crash sweep: %w", err)
	}
	if res.Sharded, err = runCrashSweep(filepath.Join(root, "sharded"), layouts[1], cfg); err != nil {
		return res, fmt.Errorf("sharded crash sweep: %w", err)
	}
	if res.Degraded, err = runDegraded(root, cfg); err != nil {
		return res, fmt.Errorf("degraded phase: %w", err)
	}
	if res.Quota, err = runQuota(root, cfg); err != nil {
		return res, fmt.Errorf("quota phase: %w", err)
	}
	return res, nil
}
