// Package experiments reproduces the evaluation of §5: it builds the
// synthetic IMSI-like collection, processes query streams through the
// interactive engine with FeedbackBypass attached, and provides one driver
// per figure of the paper (Figures 1 and 9–16). cmd/fbbench prints the
// resulting series; bench_test.go wraps the drivers as benchmarks;
// EXPERIMENTS.md records paper-vs-measured shapes.
package experiments

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/eval"
	"repro/internal/feedback"
	"repro/internal/histogram"
	"repro/internal/imagegen"
	"repro/internal/knn"
	"repro/internal/vec"
)

// Config drives a training/evaluation session.
type Config struct {
	// Seed makes the whole session deterministic.
	Seed int64
	// Scale multiplies the paper's collection cardinalities (1 = ~10,000
	// images; tests use a small fraction).
	Scale float64
	// NumQueries is the length of the training query stream (paper: 1000).
	NumQueries int
	// K is the number of results retrieved per query (paper default: 50).
	K int
	// Epsilon is the Simplex Tree insert threshold ε.
	Epsilon float64
	// MaxIterations bounds each feedback loop.
	MaxIterations int
	// MeasureSavings additionally replays each feedback loop from the
	// predicted parameters, enabling the Figure 15 metrics (doubles the
	// loop cost).
	MeasureSavings bool
	// Feedback selects the relevance-feedback strategy (paper default
	// when zero).
	Feedback feedback.Options
}

// DefaultConfig reproduces the paper's operating point.
func DefaultConfig() Config {
	return Config{
		Seed:           1,
		Scale:          1,
		NumQueries:     1000,
		K:              50,
		Epsilon:        0.05,
		MeasureSavings: true,
	}
}

// TestConfig is a fast, small-scale configuration exercising the identical
// code paths.
func TestConfig() Config {
	return Config{
		Seed:           7,
		Scale:          0.04,
		NumQueries:     40,
		K:              10,
		Epsilon:        0.05,
		MeasureSavings: true,
	}
}

func (c Config) validate() error {
	if c.Scale <= 0 {
		return fmt.Errorf("experiments: scale must be positive, got %v", c.Scale)
	}
	if c.NumQueries <= 0 {
		return fmt.Errorf("experiments: need at least one query, got %d", c.NumQueries)
	}
	if c.K <= 0 {
		return fmt.Errorf("experiments: k must be positive, got %d", c.K)
	}
	if c.Epsilon < 0 {
		return fmt.Errorf("experiments: negative epsilon %v", c.Epsilon)
	}
	return nil
}

// QueryRecord captures everything measured while processing one query.
type QueryRecord struct {
	Position  int // 1-based position in the stream
	ItemIndex int
	Category  string
	K         int
	Relevant  int // category size (recall denominator)

	GoodDefault int // relevant results with default parameters
	GoodBypass  int // relevant results with predicted parameters
	GoodSeen    int // relevant results with the converged optimal parameters

	ItersFromDefault   int // feedback cycles starting from default parameters
	ItersFromPredicted int // feedback cycles starting from predicted (−1 if not measured)

	Traversed  int // simplices traversed by the prediction
	TreeDepth  int
	TreePoints int
	TreeLeaves int

	Inserted bool // whether the OQPs were stored
}

// PrecisionDefault returns GoodDefault/K.
func (r QueryRecord) PrecisionDefault() float64 { return float64(r.GoodDefault) / float64(r.K) }

// PrecisionBypass returns GoodBypass/K.
func (r QueryRecord) PrecisionBypass() float64 { return float64(r.GoodBypass) / float64(r.K) }

// PrecisionSeen returns GoodSeen/K.
func (r QueryRecord) PrecisionSeen() float64 { return float64(r.GoodSeen) / float64(r.K) }

// RecallDefault returns GoodDefault/Relevant.
func (r QueryRecord) RecallDefault() float64 { return float64(r.GoodDefault) / float64(r.Relevant) }

// RecallBypass returns GoodBypass/Relevant.
func (r QueryRecord) RecallBypass() float64 { return float64(r.GoodBypass) / float64(r.Relevant) }

// RecallSeen returns GoodSeen/Relevant.
func (r QueryRecord) RecallSeen() float64 { return float64(r.GoodSeen) / float64(r.Relevant) }

// Session wires the dataset, engine and FeedbackBypass module together and
// records per-query measurements.
type Session struct {
	Config  Config
	DS      *dataset.Dataset
	Engine  *engine.Engine
	Bypass  *core.Bypass
	Codec   core.HistogramCodec
	Records []QueryRecord

	rng     *rand.Rand
	queries []int // sampled query stream
}

// NewSession builds the collection and components without processing any
// queries.
func NewSession(cfg Config) (*Session, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	ds, err := dataset.Build(imagegen.IMSILike(cfg.Seed, cfg.Scale), histogram.DefaultExtractor)
	if err != nil {
		return nil, err
	}
	return newSessionOver(cfg, ds)
}

// NewSessionOver reuses an existing dataset (several figures compare
// sessions over the same collection).
func NewSessionOver(cfg Config, ds *dataset.Dataset) (*Session, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return newSessionOver(cfg, ds)
}

func newSessionOver(cfg Config, ds *dataset.Dataset) (*Session, error) {
	eng, err := engine.New(ds, engine.Options{Feedback: cfg.Feedback, MaxIterations: cfg.MaxIterations})
	if err != nil {
		return nil, err
	}
	codec, err := core.NewHistogramCodec(ds.Dim)
	if err != nil {
		return nil, err
	}
	bypass, err := core.New(codec.D(), codec.P(), core.Config{
		Epsilon:        cfg.Epsilon,
		DefaultWeights: codec.DefaultWeights(),
	})
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 1000))
	queries, err := ds.SampleQueries(rng, cfg.NumQueries)
	if err != nil {
		return nil, err
	}
	return &Session{
		Config:  cfg,
		DS:      ds,
		Engine:  eng,
		Bypass:  bypass,
		Codec:   codec,
		rng:     rng,
		queries: queries,
	}, nil
}

// Run processes the full query stream.
func (s *Session) Run() error {
	for _, itemIdx := range s.queries {
		if _, err := s.ProcessQuery(itemIdx); err != nil {
			return err
		}
	}
	return nil
}

// ProcessQuery runs the complete per-query protocol of §5:
//
//  1. predict OQPs for the query from the current tree (FeedbackBypass);
//  2. measure first-round precision under default and predicted
//     parameters;
//  3. run the feedback loop to convergence from the default parameters
//     (the training signal) and measure its final precision (AlreadySeen);
//  4. optionally replay the loop from the predicted parameters to measure
//     saved cycles;
//  5. insert the converged OQPs into the tree.
func (s *Session) ProcessQuery(itemIdx int) (QueryRecord, error) {
	if itemIdx < 0 || itemIdx >= s.DS.Len() {
		return QueryRecord{}, fmt.Errorf("experiments: item index %d out of range", itemIdx)
	}
	item := s.DS.Items[itemIdx]
	k := s.Config.K
	rec := QueryRecord{
		Position:           len(s.Records) + 1,
		ItemIndex:          itemIdx,
		Category:           item.Category,
		K:                  k,
		Relevant:           s.DS.Relevant(item.Category),
		ItersFromPredicted: -1,
	}
	q := item.Feature
	uniform := s.Engine.UniformWeights()

	// (1) Predict OQPs — always for a query whose own optimum has not yet
	// been inserted at this position (records measure never-seen-before
	// behaviour as positions increase).
	qp, err := s.Codec.QueryPoint(q)
	if err != nil {
		return rec, err
	}
	oqp, pst, err := s.Bypass.PredictWithStats(qp)
	if err != nil {
		return rec, err
	}
	rec.Traversed = pst.Traversed
	qPred, wPred, err := s.Codec.DecodeOQP(q, oqp)
	if err != nil {
		return rec, err
	}

	// (2) First-round retrieval under default and predicted parameters,
	// batched so the collection streams through cache once for both.
	firstRound, err := s.Engine.RetrieveBatch([]engine.WeightedQuery{
		{Q: q, W: uniform},
		{Q: qPred, W: wPred},
	}, k)
	if err != nil {
		return rec, err
	}
	rec.GoodDefault = s.Engine.GoodCount(item.Category, firstRound[0])
	rec.GoodBypass = s.Engine.GoodCount(item.Category, firstRound[1])

	// (3) Feedback loop from the default parameters.
	out, err := s.Engine.RunLoop(item.Category, q, uniform, k)
	if err != nil {
		return rec, err
	}
	rec.ItersFromDefault = out.Iterations
	rec.GoodSeen = s.Engine.GoodCount(item.Category, out.FinalResults)

	// (4) Replay from predicted parameters for the savings metrics.
	if s.Config.MeasureSavings {
		outPred, err := s.Engine.RunLoop(item.Category, qPred, wPred, k)
		if err != nil {
			return rec, err
		}
		rec.ItersFromPredicted = outPred.Iterations
	}

	// (5) Store the converged OQPs — skipped entirely when the loop had no
	// feedback to work with (Figure 5: "if(vPred != v)").
	if !vec.Equal(out.QOpt, q) || !vec.Equal(out.WOpt, uniform) {
		stored, err := s.Codec.EncodeOQP(q, out.QOpt, out.WOpt)
		if err != nil {
			return rec, err
		}
		rec.Inserted, err = s.Bypass.Insert(qp, stored)
		if err != nil {
			return rec, err
		}
	}
	st := s.Bypass.Stats()
	rec.TreeDepth = st.Depth
	rec.TreePoints = st.Points
	rec.TreeLeaves = st.Leaves
	s.Records = append(s.Records, rec)
	return rec, nil
}

// SampleEvalQueries draws n fresh evaluation queries (uniformly from the
// query categories) using the session's RNG stream.
func (s *Session) SampleEvalQueries(n int) ([]int, error) {
	return s.DS.SampleQueries(s.rng, n)
}

// EvalCounts holds, for one evaluated query, the number of good matches
// among the top r results (one entry per requested r) under the three
// scenarios: default parameters, predicted parameters, and the optimal
// parameters from a converged loop.
type EvalCounts struct {
	GoodDefault []int
	GoodBypass  []int
	GoodSeen    []int
}

// EvaluateAtK measures one query item against a trained tree. It powers
// Figures 11 and 13; batch several items with EvaluateManyAtK.
func (s *Session) EvaluateAtK(itemIdx int, rs []int) (goodDefault, goodBypass, goodSeen []int, err error) {
	res, err := s.EvaluateManyAtK([]int{itemIdx}, rs)
	if err != nil {
		return nil, nil, nil, err
	}
	return res[0].GoodDefault, res[0].GoodBypass, res[0].GoodSeen, nil
}

// EvaluateManyAtK evaluates a batch of query items against the trained
// tree. The evaluation loop is read-only with respect to the Simplex
// Tree, so all Mopt predictions for the batch are answered by one
// Bypass.PredictBatch call — a single read-lock acquisition sharded
// across goroutines — before the per-item retrievals run.
func (s *Session) EvaluateManyAtK(itemIdxs []int, rs []int) ([]EvalCounts, error) {
	maxR := 0
	for _, r := range rs {
		if r <= 0 {
			return nil, errors.New("experiments: retrieved-object counts must be positive")
		}
		if r > maxR {
			maxR = r
		}
	}
	qps := make([][]float64, len(itemIdxs))
	for i, itemIdx := range itemIdxs {
		if itemIdx < 0 || itemIdx >= s.DS.Len() {
			return nil, fmt.Errorf("experiments: item index %d out of range", itemIdx)
		}
		qp, err := s.Codec.QueryPoint(s.DS.Items[itemIdx].Feature)
		if err != nil {
			return nil, err
		}
		qps[i] = qp
	}
	oqps, err := s.Bypass.PredictBatch(qps)
	if err != nil {
		return nil, err
	}
	uniform := s.Engine.UniformWeights()
	out := make([]EvalCounts, len(itemIdxs))
	for i, itemIdx := range itemIdxs {
		item := s.DS.Items[itemIdx]
		q := item.Feature
		qPred, wPred, err := s.Codec.DecodeOQP(q, oqps[i])
		if err != nil {
			return nil, err
		}
		loop, err := s.Engine.RunLoop(item.Category, q, uniform, s.Config.K)
		if err != nil {
			return nil, err
		}
		// One batched call answers all three scenario retrievals: the scan
		// streams each cache block of the collection once for the batch,
		// evaluating every scenario's metric against the hot block.
		batch, err := s.Engine.RetrieveBatch([]engine.WeightedQuery{
			{Q: q, W: uniform},
			{Q: qPred, W: wPred},
			{Q: loop.QOpt, W: loop.WOpt},
		}, maxR)
		if err != nil {
			return nil, err
		}
		countTop := func(resIdx []int, r int) int {
			n := 0
			for j := 0; j < r && j < len(resIdx); j++ {
				if s.DS.IsGood(resIdx[j], item.Category) {
					n++
				}
			}
			return n
		}
		defIdx := knn.Indices(batch[0])
		bypIdx := knn.Indices(batch[1])
		seenIdx := knn.Indices(batch[2])
		for _, r := range rs {
			out[i].GoodDefault = append(out[i].GoodDefault, countTop(defIdx, r))
			out[i].GoodBypass = append(out[i].GoodBypass, countTop(bypIdx, r))
			out[i].GoodSeen = append(out[i].GoodSeen, countTop(seenIdx, r))
		}
	}
	return out, nil
}

// SeriesByScenario bundles the three per-scenario curves most figures
// plot.
type SeriesByScenario struct {
	Default     *eval.Series
	Bypass      *eval.Series
	AlreadySeen *eval.Series
}
